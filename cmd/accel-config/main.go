// Command accel-config mirrors the accel-config utility from idxd-config
// (§3.3): it discovers simulated devices, applies group/WQ configurations
// from JSON, enables devices, and lists the resulting topology.
//
// Subcommands:
//
//	accel-config list                       # show the device inventory
//	accel-config load-config -c cfg.json    # apply a JSON config
//	accel-config enable-device dsa0         # enable a configured device
//	accel-config demo                       # discover+configure+enable+copy
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/idxd"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// newPlatform builds the simulated SPR platform with four discoverable but
// unconfigured DSA instances, as a freshly booted system presents.
func newPlatform() (*sim.Engine, *mem.System, *idxd.Registry) {
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	reg := idxd.NewRegistry(e, sys)
	for i := 0; i < 4; i++ {
		if _, err := reg.Discover(fmt.Sprintf("dsa%d", i), 0); err != nil {
			fail("discover: %v", err)
		}
	}
	return e, sys, reg
}

func list(reg *idxd.Registry) {
	for _, name := range reg.Names() {
		ent, _ := reg.Get(name)
		fmt.Printf("%-6s state=%-10s engines=%d wq-entries=%d read-bufs=%d\n",
			name, ent.State, ent.Dev.Cfg.Engines, ent.Dev.Cfg.WQEntries, ent.Dev.Cfg.ReadBufs)
		wqs, _ := reg.WQNames(name)
		for _, wq := range wqs {
			fmt.Printf("  wq %s\n", wq)
		}
	}
}

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fail("usage: accel-config <list|load-config|enable-device|demo> [args]\n(this is a simulation-backed accel-config; state is per-invocation)")
	}
	e, sys, reg := newPlatform()

	switch args[0] {
	case "list":
		list(reg)

	case "load-config":
		fs := flag.NewFlagSet("load-config", flag.ExitOnError)
		path := fs.String("c", "", "JSON config file (accel-config format)")
		_ = fs.Parse(args[1:])
		if *path == "" {
			fail("load-config requires -c <file>")
		}
		data, err := os.ReadFile(*path)
		if err != nil {
			fail("%v", err)
		}
		if err := reg.ConfigureJSON(data); err != nil {
			fail("%v", err)
		}
		fmt.Println("configuration applied:")
		list(reg)

	case "enable-device":
		if len(args) < 2 {
			fail("enable-device requires a device name")
		}
		if err := reg.Configure(idxd.DefaultSpec(args[1])); err != nil {
			fail("%v", err)
		}
		if err := reg.Enable(args[1]); err != nil {
			fail("%v", err)
		}
		fmt.Printf("%s enabled with the default configuration\n", args[1])
		list(reg)

	case "demo":
		// Full control-path walk: configure dsa0 with two groups, enable,
		// open a WQ through the char-dev interface, and run one copy.
		spec := idxd.DeviceSpec{
			Name: "dsa0",
			Groups: []idxd.GroupSpec{
				{Engines: 2, ReadBufs: 64, WQs: []idxd.WQSpec{
					{Name: "dsa0/wq0.0", Mode: "dedicated", Size: 32, Priority: 10},
				}},
				{Engines: 2, WQs: []idxd.WQSpec{
					{Name: "dsa0/wq1.0", Mode: "shared", Size: 16},
				}},
			},
		}
		if err := reg.Configure(spec); err != nil {
			fail("%v", err)
		}
		if err := reg.Enable("dsa0"); err != nil {
			fail("%v", err)
		}
		list(reg)

		wq, err := reg.OpenWQ("dsa0", "dsa0/wq0.0")
		if err != nil {
			fail("%v", err)
		}
		as := mem.NewAddressSpace(1)
		wq.Dev.BindPASID(as)
		src := as.Alloc(1<<20, mem.OnNode(sys.Node(0)))
		dst := as.Alloc(1<<20, mem.OnNode(sys.Node(0)))
		sim.NewRand(1).Bytes(src.Bytes())
		cl := dsa.NewClient(wq, nil)
		e.Go("demo", func(p *sim.Proc) {
			comp, err := cl.RunSync(p, dsa.Descriptor{
				Op: dsa.OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 1 << 20,
			}, dsa.Poll)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("copied 1MB via %s in %v (%.1f GB/s)\n",
				"dsa0/wq0.0", comp.Latency(), sim.Rate(1<<20, comp.Latency()))
		})
		e.Run()

	default:
		fail("unknown subcommand %q", args[0])
	}
}
