// Command dsa-bench regenerates the paper's evaluation artifacts (every
// table and figure) on the simulated platform and renders them as text
// tables or CSV.
//
// Usage:
//
//	dsa-bench                  # run everything
//	dsa-bench -list            # list experiment ids
//	dsa-bench -run fig3,fig10  # run a subset
//	dsa-bench -csv dir         # also write one CSV per table into dir
//	dsa-bench -json dir        # also write one BENCH_<id>.json per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dsasim/internal/exp"
	"dsasim/internal/report"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	csvDir := flag.String("csv", "", "directory to write per-table CSV files")
	jsonDir := flag.String("json", "", "directory to write machine-readable BENCH_<id>.json files")
	submitters := flag.Int("submitters", 0, "narrow the contention experiment's sweep to {1, N} submitters (0: full sweep)")
	fleetScale := flag.Float64("fleetscale", 0, "scale the fleet scenarios' durations/connections by this factor (0: full scale)")
	flag.Parse()

	if *fleetScale > 0 {
		exp.FleetScale = *fleetScale
	}

	if *submitters > 0 {
		// A quick local scaling check: one anchor point plus the requested
		// count, instead of the full committed sweep.
		if *submitters == 1 {
			exp.ContentionSweep = []int{1}
		} else {
			exp.ContentionSweep = []int{1, *submitters}
		}
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []exp.Experiment
	if *run == "" {
		todo = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	for _, e := range todo {
		start := time.Now()
		tables := e.Run()
		fmt.Printf("\n### %s (%s) [%v]\n\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			fmt.Println(t.String())
			if *csvDir != "" {
				path := filepath.Join(*csvDir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		if *jsonDir != "" {
			data, err := report.MarshalBench(e.ID, e.Title, tables)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+e.ID+".json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
