// Command dsa-perf-micros mirrors the intel/dsa-perf-micros microbenchmark
// the paper uses (§4.1): it drives one operation against the simulated DSA
// with configurable transfer size, batch size, queue depth, WQ mode, and
// buffer placement, and prints achieved throughput and latency.
//
// Example:
//
//	dsa-perf-micros -op memmove -size 65536 -qd 32 -iters 200
//	dsa-perf-micros -op crc_gen -size 4096 -batch 16 -wq shared
//	dsa-perf-micros -op memmove -size 262144 -src cxl -dst dram
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

var opNames = map[string]dsa.OpType{
	"memmove":         dsa.OpMemmove,
	"fill":            dsa.OpFill,
	"compare":         dsa.OpCompare,
	"compare_pattern": dsa.OpComparePattern,
	"crc_gen":         dsa.OpCRCGen,
	"copy_crc":        dsa.OpCopyCRC,
	"dualcast":        dsa.OpDualcast,
	"dif_insert":      dsa.OpDIFInsert,
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	opName := flag.String("op", "memmove", "operation: memmove fill compare compare_pattern crc_gen copy_crc dualcast dif_insert")
	size := flag.Int64("size", 4096, "transfer size per work descriptor (bytes)")
	batch := flag.Int("batch", 1, "work descriptors per batch descriptor")
	qd := flag.Int("qd", 32, "client queue depth (1 = synchronous)")
	iters := flag.Int("iters", 200, "submissions to run")
	wqMode := flag.String("wq", "dedicated", "work queue mode: dedicated or shared")
	wqSize := flag.Int("wq-size", 32, "work queue entries")
	engines := flag.Int("engines", 4, "engines in the group")
	srcLoc := flag.String("src", "dram", "source placement: dram, remote, cxl, llc")
	dstLoc := flag.String("dst", "dram", "destination placement: dram, remote, cxl, llc")
	cacheCtl := flag.Bool("cache-control", false, "steer destination writes to the LLC (G3)")
	block := flag.Bool("block-on-fault", false, "set the block-on-fault flag")
	flag.Parse()

	op, ok := opNames[*opName]
	if !ok {
		fail("unknown op %q", *opName)
	}
	mode := dsa.Dedicated
	switch *wqMode {
	case "dedicated":
	case "shared":
		mode = dsa.Shared
	default:
		fail("unknown WQ mode %q", *wqMode)
	}

	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 0, Kind: mem.CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
		},
	})
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{
		Engines: *engines,
		WQs:     []dsa.WQConfig{{Mode: mode, Size: *wqSize}},
	}); err != nil {
		fail("configuring device: %v", err)
	}
	if err := dev.Enable(); err != nil {
		fail("enabling device: %v", err)
	}
	as := mem.NewAddressSpace(1)
	dev.BindPASID(as)

	place := func(loc string) (*mem.Node, bool) {
		switch loc {
		case "dram":
			return sys.Node(0), false
		case "remote":
			return sys.Node(1), false
		case "cxl":
			return sys.Node(2), false
		case "llc":
			return sys.Node(0), true
		default:
			fail("unknown placement %q", loc)
			return nil, false
		}
	}
	srcNode, srcLLC := place(*srcLoc)
	dstNode, dstLLC := place(*dstLoc)

	span := *size * int64(*batch)
	alloc := func(node *mem.Node, llc bool, n int64) *mem.Buffer {
		b := as.Alloc(n, mem.OnNode(node))
		b.CacheResident = llc
		sim.NewRand(uint64(n)).Bytes(b.Bytes())
		return b
	}
	src := alloc(srcNode, srcLLC, span)
	src2 := alloc(srcNode, srcLLC, span)
	dst := alloc(dstNode, dstLLC, span/512*520+520)
	dst2 := alloc(dstNode, dstLLC, span)

	var flags dsa.Flags
	if *cacheCtl {
		flags |= dsa.FlagCacheControl
	}
	if *block {
		flags |= dsa.FlagBlockOnFault
	}

	mkOne := func(off int64) dsa.Descriptor {
		d := dsa.Descriptor{Op: op, Flags: flags, Size: *size,
			Src: src.Addr(off), Dst: dst.Addr(off), Pattern: 0xA5A5A5A5A5A5A5A5}
		switch op {
		case dsa.OpCompare:
			d.Src2 = src2.Addr(off)
		case dsa.OpDualcast:
			d.Dst2 = dst2.Addr(off)
		case dsa.OpDIFInsert:
			d.Dst = dst.Addr(off / 512 * 520)
			d.DIFBlock = 512
		}
		return d
	}

	cl := dsa.NewClient(dev.WQs()[0], nil)
	var elapsed sim.Time
	var latSum sim.Time
	var n int64
	e.Go("bench", func(p *sim.Proc) {
		start := p.Now()
		var window []*dsa.Completion
		for i := 0; i < *iters; i++ {
			cl.Prepare(p)
			var d dsa.Descriptor
			if *batch == 1 {
				d = mkOne(0)
				d.PASID = 1
			} else {
				subs := make([]dsa.Descriptor, *batch)
				for j := range subs {
					subs[j] = mkOne(int64(j) * *size)
				}
				d = dsa.Descriptor{Op: dsa.OpBatch, PASID: 1, Descs: subs}
			}
			comp, err := cl.Submit(p, d)
			if err != nil {
				fail("submit: %v", err)
			}
			window = append(window, comp)
			if len(window) >= *qd {
				w := window[0]
				window = window[1:]
				w.Wait(p)
				latSum += w.Latency()
				n++
			}
		}
		for _, w := range window {
			w.Wait(p)
			latSum += w.Latency()
			n++
		}
		elapsed = p.Now() - start
	})
	e.Run()

	bytes := *size * int64(*batch) * int64(*iters)
	st := dev.Stats()
	fmt.Printf("op=%s size=%d batch=%d qd=%d wq=%s engines=%d src=%s dst=%s\n",
		*opName, *size, *batch, *qd, *wqMode, *engines, *srcLoc, *dstLoc)
	fmt.Printf("throughput:  %.2f GB/s\n", sim.Rate(bytes, elapsed))
	fmt.Printf("avg latency: %v per submission\n", time.Duration(int64(latSum)/n))
	fmt.Printf("device:      %d descriptors, %d ATC hits, %d misses, %d retries, %d faults\n",
		st.Completed, st.ATCHits, st.ATCMisses, st.Retries, st.PageFaults)
	fmt.Printf("traffic:     %d read, %d written, %d leaked past DDIO\n",
		st.BytesRead, st.BytesWritten, st.DDIOLeaked)
}
