// Command bench-diff is CI's perf-regression gate: it compares the
// BENCH_<id>.json trajectories of the current tree against the committed
// baselines and fails when any asserted speedup (bench/gates.json)
// regressed by more than the threshold.
//
// Gates track ratios, not raw GB/s: a uniform cost-model recalibration
// shifts both series of an experiment and passes, while a change that
// erodes what an experiment asserts — placement beating numa-local,
// load-aware placement beating data-only under skew, the QoS express
// lane protecting the foreground p99 — fails the PR.
//
// Usage:
//
//	dsa-bench -run placement,sched,qos,skew -json bench-current
//	bench-diff -baseline bench/baseline -current bench-current
//
// Baselines are refreshed by regenerating them on main and committing:
//
//	go run ./cmd/dsa-bench -run placement,sched,qos,skew -json bench/baseline
//
// Exit codes: 0 all gates pass; 1 a measured speedup regressed; 2 usage
// error; 3 a gate references an experiment/table/series missing from the
// BENCH documents (a wiring break, reported distinctly from a
// regression). When $GITHUB_STEP_SUMMARY is set, the per-gate verdict
// table is appended there as markdown on pass and fail alike.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsasim/internal/report"
)

func main() {
	baselineDir := flag.String("baseline", "bench/baseline", "directory of committed BENCH_<id>.json baselines")
	currentDir := flag.String("current", "", "directory of freshly generated BENCH_<id>.json files")
	gatesPath := flag.String("gates", "", "gates file (default: <baseline>/gates.json)")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional regression of each asserted speedup")
	flag.Parse()

	if *currentDir == "" {
		fmt.Fprintln(os.Stderr, "bench-diff: -current is required")
		os.Exit(2)
	}
	if *gatesPath == "" {
		*gatesPath = filepath.Join(*baselineDir, "gates.json")
	}

	gateData, err := os.ReadFile(*gatesPath)
	if err != nil {
		fatal(err)
	}
	gates, err := report.ParseGates(gateData)
	if err != nil {
		fatal(err)
	}
	baseline, err := loadDocs(*baselineDir)
	if err != nil {
		fatal(err)
	}
	current, err := loadDocs(*currentDir)
	if err != nil {
		fatal(err)
	}

	results := report.CompareGates(gates, baseline, current, *threshold)
	failed, missing := 0, 0
	fmt.Printf("%-52s %9s %9s %7s  %s\n", "gate", "baseline", "current", "delta", "verdict")
	for _, r := range results {
		verdict := "ok"
		switch {
		case r.Missing:
			missing++
			verdict = "MISSING: " + r.Reason
		case r.Failed:
			failed++
			verdict = "FAIL: " + r.Reason
		}
		delta := "-"
		if r.Baseline > 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.Current/r.Baseline-1)*100)
		}
		fmt.Printf("%-52s %8.2fx %8.2fx %7s  %s\n", r.Gate.String(), r.Baseline, r.Current, delta, verdict)
	}

	// The verdict table lands in the CI step summary on pass and fail
	// alike, so the measured ratios are always one click away.
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-diff: step summary:", err)
		} else {
			fmt.Fprintln(f, report.MarkdownGates(results, *threshold))
			f.Close()
		}
	}

	// Unevaluable gates are a distinct failure: the gate references an
	// experiment, table, or series that is not in the candidate (or
	// baseline) documents — a renamed series or a dropped experiment is
	// a wiring break, not a measured regression, and must not read as one.
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "bench-diff: %d of %d gates reference data missing from the BENCH documents (wiring break, not a regression)\n",
			missing, len(results))
		os.Exit(3)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bench-diff: %d of %d asserted speedups regressed more than %.0f%%\n",
			failed, len(results), *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("all %d asserted speedups within %.0f%% of baseline\n", len(results), *threshold*100)
}

// loadDocs reads every BENCH_*.json in dir, keyed by experiment id.
func loadDocs(dir string) (map[string]report.BenchDoc, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	docs := make(map[string]report.BenchDoc)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var doc report.BenchDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		docs[doc.Experiment] = doc
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json files in %s", dir)
	}
	return docs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-diff:", err)
	os.Exit(1)
}
