module dsasim

go 1.22
