// Caching: the CacheLib case study (Appendix B) as an application — an LRU
// item cache under a get/set workload with the paper's bimodal size
// distribution, with large copies transparently offloaded through the
// DTO-style interposer over four shared work queues.
package main

import (
	"fmt"

	"dsasim/internal/cachesim"
	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

func run(hwCores, threads int, useDSA bool) cachesim.Result {
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110, WriteLat: 110, ReadGBps: 120, WriteGBps: 75},
		},
	})
	cfg := cachesim.Config{
		HWCores: hwCores, Threads: threads, OpsPerThd: 500,
		CacheSize: 64 << 20, Seed: 42,
	}
	if useDSA {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
		for g := 0; g < 4; g++ {
			if _, err := dev.AddGroup(dsa.GroupConfig{
				Engines: 1,
				WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 16}},
			}); err != nil {
				panic(err)
			}
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		cfg.WQs = dev.WQs()
	}
	res, err := cachesim.Run(e, sys, sys.Node(0), cpu.SPRModel(), cfg)
	if err != nil {
		panic(err)
	}
	if res.Corrupt > 0 {
		panic("cache returned corrupted items")
	}
	return res
}

func main() {
	fmt.Println("CacheLib-style cache: get/set rates and p99.999 tails, CPU vs transparent DSA offload")
	fmt.Printf("%-8s %14s %14s %12s %12s\n", "config", "get rate", "get w/ DSA", "find tail", "w/ DSA")
	for _, c := range []struct{ h, s int }{{1, 1}, {4, 4}, {4, 8}, {8, 16}} {
		cpuRes := run(c.h, c.s, false)
		dsaRes := run(c.h, c.s, true)
		fmt.Printf("%dh%-6d %11.0f/s %11.0f/s %12v %12v\n",
			c.h, c.s, cpuRes.GetRate, dsaRes.GetRate, cpuRes.FindTail, dsaRes.FindTail)
	}
	fmt.Println("\nall returned items passed content verification")
}
