// Tieredmem: guideline G4 in practice — a tiered-memory manager demoting
// cold pages from DRAM to CXL-attached memory and promoting hot ones back,
// comparing core-driven page migration (load/store copies that saturate the
// LSQ on CXL, §5) against DSA batch offload through the offload service.
// Tier placement uses the tenant allocator's node selection (AllocOn), so
// the migrator never touches the platform memory system directly.
//
// Migrations ride the SPR-Placement platform: one DSA per socket and the
// data-home-aware Placement scheduler, so each batch lands on the device
// local to the pages it moves — and a mixed-home flush (the final row) is
// split into per-socket sub-batches that run on both devices in parallel.
package main

import (
	"fmt"

	"dsasim"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

const (
	pages    = 256
	pageSize = int64(2 << 20) // migrate 2MB huge pages
)

// migrate moves n pages between tiers — page i from nodes(i)'s first node
// to its second — and returns the total virtual time.
func migrate(useDSA bool, nodes func(i int) (src, dst int)) sim.Time {
	pl := dsasim.NewPlatform(dsasim.SPRPlacement())
	// Page migration is background traffic: declare it Bulk so a QoS-aware
	// scheduler would keep it off any reserved WQ, and let the adaptive
	// threshold shed sub-threshold stragglers to the core if the device
	// saturates mid-migration.
	pol := offload.DefaultPolicy()
	pol.AdaptiveThreshold = true
	tn := pl.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))

	src := make([]*mem.Buffer, pages)
	dst := make([]*mem.Buffer, pages)
	for i := range src {
		from, to := nodes(i)
		src[i] = tn.AllocOn(from, pageSize, mem.WithPageSize(mem.Page2M))
		dst[i] = tn.AllocOn(to, pageSize, mem.WithPageSize(mem.Page2M))
		sim.NewRand(uint64(i)).Bytes(src[i].Bytes()[:64])
	}

	var elapsed sim.Time
	pl.Run(func(p *sim.Proc) {
		start := p.Now()
		if useDSA {
			// Batch 32 page copies per batch descriptor, pipelined (G1+G2).
			// The placement scheduler routes each flush — or each of its
			// per-socket sub-batches — to the device local to its pages.
			const batch = 32
			var futs []*offload.Future
			for base := 0; base < pages; base += batch {
				b := tn.NewBatch()
				for i := base; i < base+batch && i < pages; i++ {
					b.Copy(dst[i].Addr(0), src[i].Addr(0), pageSize)
				}
				f, err := b.Submit(p)
				if err != nil {
					panic(err)
				}
				futs = append(futs, f)
				if len(futs) > 4 {
					if _, err := futs[0].Wait(p, offload.Poll); err != nil {
						panic(err)
					}
					futs = futs[1:]
				}
			}
			for _, f := range futs {
				if _, err := f.Wait(p, offload.Poll); err != nil {
					panic(err)
				}
			}
		} else {
			for i := range src {
				f, err := tn.Copy(p, dst[i].Addr(0), src[i].Addr(0), pageSize, offload.On(offload.Software))
				if err != nil {
					panic(err)
				}
				if _, err := f.Wait(p, offload.Poll); err != nil {
					panic(err)
				}
			}
		}
		elapsed = p.Now() - start
	})

	// Verify the migration moved real bytes.
	for i := range src {
		for j := 0; j < 64; j++ {
			if dst[i].Bytes()[j] != src[i].Bytes()[j] {
				panic("page corrupted during migration")
			}
		}
	}
	return elapsed
}

func main() {
	total := int64(pages) * pageSize
	fmt.Printf("migrating %d x 2MB pages (%d MB total) between memory tiers\n\n", pages, total>>20)
	fmt.Printf("%-28s %12s %12s %8s\n", "direction", "CPU", "DSA", "speedup")
	uniform := func(from, to int) func(int) (int, int) {
		return func(int) (int, int) { return from, to }
	}
	for _, dir := range []struct {
		name  string
		nodes func(i int) (int, int)
	}{
		{"DRAM -> CXL (demote)", uniform(0, 2)},
		{"CXL -> DRAM (promote)", uniform(2, 0)},
		{"DRAM -> remote DRAM", uniform(0, 1)},
		// A realistic rebalance cycle mixes homes in one flush: even pages
		// demote socket-0 DRAM to CXL while odd pages compact within
		// socket-1 DRAM. The placement scheduler splits each batch across
		// both devices.
		{"mixed demote + rebalance", func(i int) (int, int) {
			if i%2 == 0 {
				return 0, 2
			}
			return 1, 1
		}},
	} {
		cpu := migrate(false, dir.nodes)
		dsa := migrate(true, dir.nodes)
		fmt.Printf("%-28s %12v %12v %7.1fx\n", dir.name, cpu, dsa, float64(cpu)/float64(dsa))
	}
	fmt.Println("\npromotion beats demotion on DSA: CXL reads are faster than CXL writes (G4)")
	fmt.Println("the mixed flush splits per socket, so both devices migrate in parallel (G4)")
}
