// Tieredmem: guideline G4 in practice — a tiered-memory manager demoting
// cold pages from DRAM to CXL-attached memory and promoting hot ones back,
// comparing core-driven page migration (load/store copies that saturate the
// LSQ on CXL, §5) against DSA batch offload with block-on-fault.
package main

import (
	"fmt"

	"dsasim"
	"dsasim/internal/dml"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

const (
	pages    = 256
	pageSize = int64(2 << 20) // migrate 2MB huge pages
)

// migrate moves n pages between tiers and returns the total virtual time.
func migrate(useDSA bool, srcNode, dstNode int) sim.Time {
	pl := dsasim.NewPlatform(dsasim.SPR())
	ws := pl.NewWorkspace()

	src := make([]*mem.Buffer, pages)
	dst := make([]*mem.Buffer, pages)
	for i := range src {
		src[i] = ws.AS.Alloc(pageSize, mem.OnNode(pl.Node(srcNode)), mem.WithPageSize(mem.Page2M))
		dst[i] = ws.AS.Alloc(pageSize, mem.OnNode(pl.Node(dstNode)), mem.WithPageSize(mem.Page2M))
		sim.NewRand(uint64(i)).Bytes(src[i].Bytes()[:64])
	}

	var elapsed sim.Time
	pl.Run(func(p *sim.Proc) {
		start := p.Now()
		if useDSA {
			// Batch 32 page copies per batch descriptor, pipelined (G1+G2).
			const batch = 32
			var jobs []*dml.Job
			for base := 0; base < pages; base += batch {
				b := ws.DML.NewBatch()
				for i := base; i < base+batch && i < pages; i++ {
					b.Copy(dst[i].Addr(0), src[i].Addr(0), pageSize)
				}
				j, err := b.Submit(p)
				if err != nil {
					panic(err)
				}
				jobs = append(jobs, j)
				if len(jobs) > 4 {
					if _, err := jobs[0].Wait(p); err != nil {
						panic(err)
					}
					jobs = jobs[1:]
				}
			}
			for _, j := range jobs {
				if _, err := j.Wait(p); err != nil {
					panic(err)
				}
			}
		} else {
			for i := range src {
				if _, err := ws.DML.Copy(p, dst[i].Addr(0), src[i].Addr(0), pageSize, dml.Software); err != nil {
					panic(err)
				}
			}
		}
		elapsed = p.Now() - start
	})

	// Verify the migration moved real bytes.
	for i := range src {
		for j := 0; j < 64; j++ {
			if dst[i].Bytes()[j] != src[i].Bytes()[j] {
				panic("page corrupted during migration")
			}
		}
	}
	return elapsed
}

func main() {
	total := int64(pages) * pageSize
	fmt.Printf("migrating %d x 2MB pages (%d MB total) between memory tiers\n\n", pages, total>>20)
	fmt.Printf("%-22s %12s %12s %8s\n", "direction", "CPU", "DSA", "speedup")
	for _, dir := range []struct {
		name     string
		from, to int
	}{
		{"DRAM -> CXL (demote)", 0, 2},
		{"CXL -> DRAM (promote)", 2, 0},
		{"DRAM -> remote DRAM", 0, 1},
	} {
		cpu := migrate(false, dir.from, dir.to)
		dsa := migrate(true, dir.from, dir.to)
		fmt.Printf("%-22s %12v %12v %7.1fx\n", dir.name, cpu, dsa, float64(cpu)/float64(dsa))
	}
	fmt.Println("\npromotion beats demotion on DSA: CXL reads are faster than CXL writes (G4)")
}
