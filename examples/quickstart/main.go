// Quickstart: build an SPR platform, open a workspace, and run the basic
// DSA operations through the DML executor — synchronously, asynchronously,
// and batched — printing the modelled timings.
package main

import (
	"fmt"

	"dsasim"
	"dsasim/internal/dml"
	"dsasim/internal/sim"
)

func main() {
	pl := dsasim.NewPlatform(dsasim.SPR())
	ws := pl.NewWorkspace()

	const n = 1 << 20
	src := ws.Alloc(n)
	dst := ws.Alloc(n)
	sim.NewRand(1).Bytes(src.Bytes())

	pl.Run(func(p *sim.Proc) {
		// Synchronous copy: the executor picks DSA for 1 MB (≥ threshold).
		res, err := ws.DML.Copy(p, dst.Addr(0), src.Addr(0), n, dml.Auto)
		if err != nil {
			panic(err)
		}
		fmt.Printf("sync copy 1MB:      %-12v hardware=%v\n", res.Duration, res.Hardware)

		// Small copy: routed to the core per guideline G2.
		res, err = ws.DML.Copy(p, dst.Addr(0), src.Addr(0), 1024, dml.Auto)
		if err != nil {
			panic(err)
		}
		fmt.Printf("sync copy 1KB:      %-12v hardware=%v\n", res.Duration, res.Hardware)

		// CRC32 on both paths gives bit-identical results.
		hw, _ := ws.DML.CRC32(p, src.Addr(0), n, 0, dml.Hardware)
		sw, _ := ws.DML.CRC32(p, src.Addr(0), n, 0, dml.Software)
		fmt.Printf("crc32 hw=%08x sw=%08x match=%v (hw %v vs sw %v)\n",
			hw.CRC, sw.CRC, hw.CRC == sw.CRC, hw.Duration, sw.Duration)

		// Asynchronous offload: submit, do other work, then wait (G2).
		job, err := ws.DML.CopyAsync(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			panic(err)
		}
		fmt.Printf("async submitted; core free while DSA copies (done=%v)\n", job.Done())
		if _, err := job.Wait(p); err != nil {
			panic(err)
		}

		// Batch: eight 4KB copies in one batch descriptor (G1).
		b := ws.DML.NewBatch()
		for i := int64(0); i < 8; i++ {
			b.Copy(dst.Addr(i*4096), src.Addr(i*4096), 4096)
		}
		bj, err := b.Submit(p)
		if err != nil {
			panic(err)
		}
		bres, err := bj.Wait(p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("batch of 8x4KB:     %-12v completed=%d\n", bres.Duration, bres.Record.Result)
	})

	st := pl.Devices[0].Stats()
	fmt.Printf("device counters: %d descriptors, %d bytes read, %d bytes written\n",
		st.Completed, st.BytesRead, st.BytesWritten)
}
