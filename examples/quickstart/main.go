// Quickstart: build an SPR platform, create an offload tenant, and run the
// basic DSA operations through the unified offload API — futures for every
// operation, policy-driven path selection, explicit batches, and the
// transparent AutoBatcher — printing the modelled timings.
package main

import (
	"fmt"

	"dsasim"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

func main() {
	pl := dsasim.NewPlatform(dsasim.SPR())
	tn := pl.NewTenant()

	const n = 1 << 20
	src := tn.Alloc(n)
	dst := tn.Alloc(n)
	sim.NewRand(1).Bytes(src.Bytes())

	pl.Run(func(p *sim.Proc) {
		// Synchronous copy: submit and wait. The policy picks DSA for 1 MB
		// (≥ the G2 threshold).
		fut, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			panic(err)
		}
		res, err := fut.Wait(p, offload.Poll)
		if err != nil {
			panic(err)
		}
		fmt.Printf("sync copy 1MB:      %-12v hardware=%v\n", res.Duration, res.Hardware)

		// Small copy: routed to the core per guideline G2. The future is
		// already resolved when it returns.
		fut, err = tn.Copy(p, dst.Addr(0), src.Addr(0), 1024)
		if err != nil {
			panic(err)
		}
		res, _ = fut.Wait(p, offload.Poll)
		fmt.Printf("sync copy 1KB:      %-12v hardware=%v\n", res.Duration, res.Hardware)

		// CRC32 on both paths gives bit-identical results.
		hwF, _ := tn.CRC32(p, src.Addr(0), n, 0, offload.On(offload.Hardware))
		hw, _ := hwF.Wait(p, offload.Poll)
		swF, _ := tn.CRC32(p, src.Addr(0), n, 0, offload.On(offload.Software))
		sw, _ := swF.Wait(p, offload.Poll)
		fmt.Printf("crc32 hw=%08x sw=%08x match=%v (hw %v vs sw %v)\n",
			hw.CRC, sw.CRC, hw.CRC == sw.CRC, hw.Duration, sw.Duration)

		// Asynchronous offload: submit, do other work, then wait — in any
		// completion mode (Poll, UMWait, Interrupt).
		fut, err = tn.Copy(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			panic(err)
		}
		fmt.Printf("async submitted; core free while DSA copies (done=%v)\n", fut.Done())
		if _, err := fut.Wait(p, offload.UMWait); err != nil {
			panic(err)
		}

		// Explicit batch: eight 4KB copies in one batch descriptor (G1).
		b := tn.NewBatch()
		for i := int64(0); i < 8; i++ {
			b.Copy(dst.Addr(i*4096), src.Addr(i*4096), 4096)
		}
		bf, err := b.Submit(p)
		if err != nil {
			panic(err)
		}
		bres, err := bf.Wait(p, offload.Poll)
		if err != nil {
			panic(err)
		}
		fmt.Printf("batch of 8x4KB:     %-12v completed=%d\n", bres.Duration, bres.Record.Result)

		// AutoBatcher: with coalescing enabled, sub-threshold copies queue
		// transparently and flush as one batch — G1 applied as policy
		// instead of hand-built batches.
		pol := tn.Policy()
		pol.AutoBatch = 16
		tn.SetPolicy(pol)
		var futs []*offload.Future
		start := p.Now()
		for i := int64(0); i < 16; i++ {
			f, err := tn.Copy(p, dst.Addr(i*1024), src.Addr(i*1024), 1024)
			if err != nil {
				panic(err)
			}
			futs = append(futs, f)
		}
		for _, f := range futs {
			if _, err := f.Wait(p, offload.Poll); err != nil {
				panic(err)
			}
		}
		fmt.Printf("auto-batch 16x1KB:  %-12v coalesced=%d\n", p.Now()-start, tn.Stats().Coalesce)
	})

	st := pl.Devices[0].Stats()
	fmt.Printf("device counters: %d descriptors, %d bytes read, %d bytes written\n",
		st.Completed, st.BytesRead, st.BytesWritten)
	fmt.Printf("scheduler: %s over %d WQs\n", pl.Offload.Scheduler().Name(), len(pl.Offload.WQs()))
}
