// Packetswitch: the paper's DPDK Vhost case study (§6.4) end to end — a
// VirtIO backend forwarding packet bursts into guest memory, comparing the
// CPU copy path against the DSA batch-offload pipeline across packet sizes,
// and verifying in-order, intact delivery.
package main

import (
	"fmt"
	"time"

	"dsasim"
	"dsasim/internal/dsa"
	"dsasim/internal/fleet"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
	"dsasim/internal/vhost"
)

func forwardingRate(mode vhost.Mode, pktSize int64) (float64, bool) {
	// The QoS profile: each device exposes a reserved high-priority WQ
	// that the PriorityAware scheduler hands to latency-sensitive tenants
	// — packet forwarding is exactly that class of traffic.
	pl := dsasim.NewPlatform(dsasim.SPRQoS())
	tn := pl.NewTenant(offload.WithClass(offload.LatencySensitive))
	vq := vhost.NewVirtqueue(tn.AS, pl.Node(0), 256, 2048)
	var wq *dsa.WQ
	if mode == vhost.DSACopy {
		// The backend drives one queue directly; take the scheduler's pick
		// for this tenant's socket and class — the express WQ.
		wq = pl.Offload.Scheduler().Pick(offload.Request{
			Socket: tn.Core.Socket,
			Class:  offload.LatencySensitive,
		}, pl.Offload.WQs())
	}
	backend, err := vhost.NewBackend(mode, vq, tn.Core, tn.AS, wq)
	if err != nil {
		panic(err)
	}
	gen := vhost.NewGenerator(pktSize, 7)

	const bursts = 50
	var elapsed sim.Time
	pl.Run(func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < bursts; i++ {
			pkts := gen.Burst(32)
			off := 0
			for off < len(pkts) {
				n, err := backend.EnqueueBurst(p, pkts[off:])
				if err != nil {
					panic(err)
				}
				off += n
				for vq.UsedLen() > 0 {
					vq.PopUsed() // the guest consumes and refills
				}
				if n == 0 {
					p.Sleep(100 * time.Nanosecond)
				}
			}
		}
		backend.Drain(p)
		elapsed = p.Now() - start
	})
	return float64(bursts*32) / (float64(elapsed) / 1e3), backend.InOrder()
}

func main() {
	fmt.Println("DPDK-Vhost-style packet forwarding (Mpps), CPU copies vs DSA offload")
	fmt.Printf("%-10s %10s %10s %8s\n", "pkt size", "CPU", "DSA", "DSA/CPU")
	for _, size := range []int64{64, 128, 256, 512, 1024, 1280, 1518} {
		cpu, okC := forwardingRate(vhost.CPUCopy, size)
		dsaR, okD := forwardingRate(vhost.DSACopy, size)
		if !okC || !okD {
			panic("packets delivered out of order")
		}
		fmt.Printf("%-10d %10.2f %10.2f %8.2fx\n", size, cpu, dsaR, dsaR/cpu)
	}
	fmt.Println("\nall packets delivered intact and in order (reorder array, §6.4)")

	// The same switch as a fleet: the packetswitch-fleet scenario drives
	// thousands of connections of open-loop phased traffic through the
	// sharded submission plane while latency-sensitive tenants share the
	// devices — the capacity-planning view of the per-burst loop above.
	fmt.Println("\nfleet view: packetswitch-fleet steady vs overload (internal/fleet, 0.2x scale)")
	r := fleet.Run(fleet.Packetswitch().Scaled(0.2))
	fmt.Printf("%-10s %14s %14s %12s %12s\n", "phase", "fg good kops/s", "bg good kops/s", "fg p99", "bg p99")
	for _, ph := range r.Phases {
		fmt.Printf("%-10s %14.0f %14.0f %12v %12v\n",
			ph.Name, ph.Goodput[fleet.FG], ph.Goodput[fleet.BG], ph.P99[fleet.FG], ph.P99[fleet.BG])
	}
	fmt.Println("full ramp + SLO-attained throughput: go run ./cmd/dsa-bench -run fleet")
}
