package dsasim

// The benchmark harness: one testing.B benchmark per paper table/figure
// (deliverable d). Each benchmark regenerates its artifact through
// internal/exp and reports a headline metric; the rendered tables come from
// cmd/dsa-bench. Additional micro- and ablation benchmarks at the bottom
// exercise the device model directly with b.SetBytes so ns/op and MB/s are
// meaningful.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"dsasim/internal/dml"
	"dsasim/internal/dsa"
	"dsasim/internal/exp"
	"dsasim/internal/idxd"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// benchExperiment reruns one experiment per iteration and reports the
// largest throughput-like value it produced as a sanity metric.
func benchExperiment(b *testing.B, id string, metric string) {
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var headline float64
	for i := 0; i < b.N; i++ {
		tables := e.Run()
		headline = 0
		for _, t := range tables {
			for _, s := range t.Series() {
				for _, x := range t.Xs() {
					if v, ok := t.Get(s, x); ok && v > headline {
						headline = v
					}
				}
			}
		}
	}
	b.ReportMetric(headline, metric)
}

func BenchmarkTable1Ops(b *testing.B)            { benchExperiment(b, "table1", "verified") }
func BenchmarkCBDMAComparison(b *testing.B)      { benchExperiment(b, "cbdma", "GBps_max") }
func BenchmarkFig2aSyncSpeedup(b *testing.B)     { benchExperiment(b, "fig2a", "speedup_max") }
func BenchmarkFig2bAsyncSpeedup(b *testing.B)    { benchExperiment(b, "fig2b", "speedup_max") }
func BenchmarkFig3Batching(b *testing.B)         { benchExperiment(b, "fig3", "GBps_max") }
func BenchmarkFig4WQDepth(b *testing.B)          { benchExperiment(b, "fig4", "GBps_max") }
func BenchmarkFig5LatencyBreakdown(b *testing.B) { benchExperiment(b, "fig5", "us_max") }
func BenchmarkFig6aNUMA(b *testing.B)            { benchExperiment(b, "fig6a", "GBps_max") }
func BenchmarkFig6bCXL(b *testing.B)             { benchExperiment(b, "fig6b", "GBps_max") }
func BenchmarkFig7PEScaling(b *testing.B)        { benchExperiment(b, "fig7", "GBps_max") }
func BenchmarkFig8HugePages(b *testing.B)        { benchExperiment(b, "fig8", "GBps_max") }
func BenchmarkFig9WQConfig(b *testing.B)         { benchExperiment(b, "fig9", "GBps_max") }
func BenchmarkFig10MultiDevice(b *testing.B)     { benchExperiment(b, "fig10", "GBps_max") }
func BenchmarkFig11UMWAIT(b *testing.B)          { benchExperiment(b, "fig11", "pct_max") }
func BenchmarkFig12LLCOccupancy(b *testing.B)    { benchExperiment(b, "fig12", "MB_max") }
func BenchmarkFig13CachePollution(b *testing.B)  { benchExperiment(b, "fig13", "ns_max") }
func BenchmarkFig14BatchBalance(b *testing.B)    { benchExperiment(b, "fig14", "GBps_max") }
func BenchmarkFig15CacheSource(b *testing.B)     { benchExperiment(b, "fig15", "GBps_max") }
func BenchmarkFig16Vhost(b *testing.B)           { benchExperiment(b, "fig16", "Mpps_max") }
func BenchmarkFig17aLibfabric(b *testing.B)      { benchExperiment(b, "fig17a", "GBps_max") }
func BenchmarkFig17bOSU(b *testing.B)            { benchExperiment(b, "fig17b", "speedup_max") }
func BenchmarkFig18BERT(b *testing.B)            { benchExperiment(b, "fig18", "sec_max") }
func BenchmarkFig19CacheLib(b *testing.B)        { benchExperiment(b, "fig19", "rel_max") }
func BenchmarkFig21SPDK(b *testing.B)            { benchExperiment(b, "fig21", "rel_max") }
func BenchmarkSchedComparison(b *testing.B)      { benchExperiment(b, "sched", "GBps_max") }
func BenchmarkQoSInterference(b *testing.B)      { benchExperiment(b, "qos", "p99us_max") }
func BenchmarkPlacementComparison(b *testing.B)  { benchExperiment(b, "placement", "GBps_max") }
func BenchmarkSkewWindow(b *testing.B)           { benchExperiment(b, "skew", "GBps_max") }
func BenchmarkCoalesceDelivery(b *testing.B)     { benchExperiment(b, "coalesce", "GBps_max") }
func BenchmarkAdaptiveClosedLoop(b *testing.B)   { benchExperiment(b, "adaptive", "score_max") }
func BenchmarkContentionExperiment(b *testing.B) { benchExperiment(b, "contention", "Mops_max") }

// BenchmarkSubmitContention drives the sharded submission plane's host
// fast path (offload.Lane.TrySubmit) with real concurrent goroutines —
// the lock-free rings and atomic counters under actual parallelism, not
// virtual time. ns/op is the per-submission software cost at each
// submitter count; the CI race job runs the 16-submitter point under
// -race as the memory-ordering exerciser.
func BenchmarkSubmitContention(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("submitters-%d", n), func(b *testing.B) {
			benchSubmitContention(b, n)
		})
	}
}

func benchSubmitContention(b *testing.B, submitters int) {
	pr := SPR()
	pr.WQs = []idxd.WQSpec{{Mode: "shared", Size: 128}}
	pl := NewPlatform(pr)
	tn := pl.NewTenant()
	plane, err := tn.NewPlane(submitters)
	if err != nil {
		b.Fatal(err)
	}
	d := dsa.Descriptor{Op: dsa.OpMemmove, Size: 4096}

	// A host-side drain stands in for the engine's: Pop keeps the rings
	// from filling so the producers measure push cost, not backoff.
	stop := make(chan struct{})
	var drained sync.WaitGroup
	drained.Add(1)
	go func() {
		defer drained.Done()
		rings := make([]*dsa.SubmitRing, 0)
		for _, wq := range plane.WQs() {
			rings = append(rings, wq.Ring())
		}
		for {
			idle := true
			for _, r := range rings {
				if _, ok := r.Pop(); ok {
					idle = false
				}
			}
			if idle {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}
	}()

	per := (b.N + submitters - 1) / submitters
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(lane *offload.Lane) {
			defer wg.Done()
			var now sim.Time
			for j := 0; j < per; j++ {
				now += 2000 // each submitter's private virtual clock
				for lane.TrySubmit(now, d) != nil {
					runtime.Gosched() // ring momentarily full
				}
			}
		}(plane.Lane(i))
	}
	wg.Wait()
	b.StopTimer()
	close(stop)
	drained.Wait()
}

// Device micro-benchmarks: virtual-time throughput of the model itself.
// b.SetBytes reflects simulated payload per iteration, so MB/s measures
// simulator speed (host work per simulated byte), while the reported
// sim_GBps metric is the modelled device throughput.

func benchDeviceCopy(b *testing.B, size int64, qd int) {
	pl := NewPlatform(SPR())
	ws := pl.NewWorkspace()
	src := ws.Alloc(size)
	dst := ws.Alloc(size)
	wq := pl.Devices[0].WQs()[0]
	cl := dsa.NewClient(wq, nil)
	b.SetBytes(size)
	b.ResetTimer()
	var start, end sim.Time
	pl.E.Go("bench", func(p *sim.Proc) {
		start = p.Now()
		var window []*dsa.Completion
		for i := 0; i < b.N; i++ {
			cl.Prepare(p)
			comp, err := cl.Submit(p, dsa.Descriptor{
				Op: dsa.OpMemmove, PASID: ws.AS.PASID,
				Src: src.Addr(0), Dst: dst.Addr(0), Size: size,
			})
			if err != nil {
				b.Error(err)
				return
			}
			window = append(window, comp)
			if len(window) >= qd {
				window[0].Wait(p)
				window = window[1:]
			}
		}
		for _, c := range window {
			c.Wait(p)
		}
		end = p.Now()
	})
	pl.E.Run()
	b.ReportMetric(sim.Rate(size*int64(b.N), end-start), "sim_GBps")
}

func BenchmarkDeviceCopy4KSync(b *testing.B)   { benchDeviceCopy(b, 4<<10, 1) }
func BenchmarkDeviceCopy4KAsync(b *testing.B)  { benchDeviceCopy(b, 4<<10, 32) }
func BenchmarkDeviceCopy64KAsync(b *testing.B) { benchDeviceCopy(b, 64<<10, 32) }
func BenchmarkDeviceCopy1MAsync(b *testing.B)  { benchDeviceCopy(b, 1<<20, 32) }

// Ablation: read-buffer starvation (the §3.4 F3 QoS knob).
func BenchmarkAblationReadBufs(b *testing.B) {
	for _, bufs := range []int{8, 32, 96} {
		bufs := bufs
		b.Run(map[int]string{8: "bufs8", 32: "bufs32", 96: "bufs96"}[bufs], func(b *testing.B) {
			pl := NewPlatform(SPR())
			dev, err := pl.AddDevice("dsa-ab", 0, dsa.GroupConfig{
				Engines:  4,
				ReadBufs: bufs,
				WQs:      []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
			})
			if err != nil {
				b.Fatal(err)
			}
			ws := pl.NewWorkspace()
			size := int64(64 << 10)
			src := ws.Alloc(size)
			dst := ws.Alloc(size)
			cl := dsa.NewClient(dev.WQs()[0], nil)
			b.SetBytes(size)
			b.ResetTimer()
			var start, end sim.Time
			pl.E.Go("bench", func(p *sim.Proc) {
				start = p.Now()
				var window []*dsa.Completion
				for i := 0; i < b.N; i++ {
					cl.Prepare(p)
					comp, err := cl.Submit(p, dsa.Descriptor{
						Op: dsa.OpMemmove, PASID: ws.AS.PASID,
						Src: src.Addr(0), Dst: dst.Addr(0), Size: size,
					})
					if err != nil {
						b.Error(err)
						return
					}
					window = append(window, comp)
					if len(window) >= 16 {
						window[0].Wait(p)
						window = window[1:]
					}
				}
				for _, c := range window {
					c.Wait(p)
				}
				end = p.Now()
			})
			pl.E.Run()
			b.ReportMetric(sim.Rate(size*int64(b.N), end-start), "sim_GBps")
		})
	}
}

// Ablation: DML auto-threshold routing cost at the boundary.
func BenchmarkAblationDMLThreshold(b *testing.B) {
	pl := NewPlatform(SPR())
	ws := pl.NewWorkspace()
	src := ws.Alloc(8 << 10)
	dst := ws.Alloc(8 << 10)
	b.SetBytes(8 << 10)
	b.ResetTimer()
	pl.E.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := ws.DML.Copy(p, dst.Addr(0), src.Addr(0), 8<<10, dml.Auto); err != nil {
				b.Error(err)
				return
			}
		}
	})
	pl.E.Run()
}
