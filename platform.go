// Package dsasim is a simulation-based reproduction of "A Quantitative
// Analysis and Guidelines of Data Streaming Accelerator in Modern Intel Xeon
// Scalable Processors" (ASPLOS 2024).
//
// The package bundles the building blocks under internal/ into platforms
// matching the paper's evaluated systems (Table 2): a virtual-time engine,
// a memory system (NUMA DRAM, CXL, LLC with DDIO), CPU cores running
// software baselines, and one or more DSA (or CBDMA) device instances. The
// experiment harness in internal/exp regenerates every figure and table of
// the paper's evaluation on top of these platforms; cmd/dsa-bench renders
// them.
//
// Quick start:
//
//	pl := dsasim.NewPlatform(dsasim.SPR())
//	ws := pl.NewWorkspace()
//	pl.Run(func(p *sim.Proc) {
//	    src := ws.Alloc(1 << 20)
//	    dst := ws.Alloc(1 << 20)
//	    res, _ := ws.DML.Copy(p, dst.Addr(0), src.Addr(0), 1<<20, dml.Auto)
//	    fmt.Println("copied in", res.Duration)
//	})
package dsasim

import (
	"fmt"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dml"
	"dsasim/internal/dsa"
	"dsasim/internal/idxd"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Profile describes a platform generation (Table 2).
type Profile struct {
	Name    string
	Cores   int
	LLC     mem.LLCConfig
	UPILat  time.Duration
	UPIGBps float64
	Nodes   []mem.NodeConfig
	CPU     cpu.Model
	// Devices is the number of DMA devices to create and enable with the
	// default group configuration (one group, all engines, one 32-entry
	// dedicated WQ).
	Devices int
	// DeviceConfig templates each device (socket/name are overridden).
	DeviceConfig dsa.Config
}

// SPR returns the Sapphire Rapids profile: 56 cores, 105 MB LLC, eight DDR5
// channels, CXL 1.1 support (modelled as a CPU-less NUMA node), and up to
// four DSA instances (Table 2, Fig 10).
func SPR() Profile {
	return Profile{
		Name:    "SPR",
		Cores:   56,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		Nodes: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 0, Kind: mem.CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
		},
		CPU:          cpu.SPRModel(),
		Devices:      1,
		DeviceConfig: dsa.DefaultConfig("dsa", 0),
	}
}

// ICX returns the Ice Lake predecessor profile: 40 cores, 57 MB LLC, six
// DDR4 channels, and a CBDMA engine instead of DSA (Table 2).
func ICX() Profile {
	cfg := dsa.DefaultConfig("cbdma", 0)
	cfg.Timing = dsa.CBDMATiming()
	cfg.Engines = 1 // one logical channel used per the paper's methodology
	return Profile{
		Name:    "ICX",
		Cores:   40,
		LLC:     mem.LLCConfig{Capacity: 57 << 20, Ways: 12, DDIOWays: 2},
		UPILat:  75 * time.Nanosecond,
		UPIGBps: 50,
		Nodes: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 120 * time.Nanosecond, WriteLat: 120 * time.Nanosecond, ReadGBps: 100, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 120 * time.Nanosecond, WriteLat: 120 * time.Nanosecond, ReadGBps: 100, WriteGBps: 75},
		},
		CPU:          cpu.ICXModel(),
		Devices:      1,
		DeviceConfig: cfg,
	}
}

// Platform is a constructed system ready to run workloads.
type Platform struct {
	Profile  Profile
	E        *sim.Engine
	Sys      *mem.System
	Registry *idxd.Registry
	Devices  []*dsa.Device

	nextPASID int
	nextCore  int
}

// NewPlatform builds and enables a platform from profile.
func NewPlatform(pr Profile) *Platform {
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets:  2,
		LLC:      pr.LLC,
		UPILat:   pr.UPILat,
		UPIGBps:  pr.UPIGBps,
		NodeDefs: pr.Nodes,
	})
	pl := &Platform{
		Profile:   pr,
		E:         e,
		Sys:       sys,
		Registry:  idxd.NewRegistry(e, sys),
		nextPASID: 1,
	}
	for i := 0; i < pr.Devices; i++ {
		cfg := pr.DeviceConfig
		cfg.Name = fmt.Sprintf("%s%d", pr.DeviceConfig.Name, i)
		dev := dsa.New(e, sys, cfg)
		ent, err := pl.Registry.Adopt(dev)
		if err != nil {
			panic(err)
		}
		spec := idxd.DeviceSpec{
			Name: cfg.Name,
			Groups: []idxd.GroupSpec{{
				Engines: cfg.Engines,
				WQs:     []idxd.WQSpec{{Mode: "dedicated", Size: 32}},
			}},
		}
		if err := pl.Registry.Configure(spec); err != nil {
			panic(err)
		}
		if err := pl.Registry.Enable(cfg.Name); err != nil {
			panic(err)
		}
		pl.Devices = append(pl.Devices, ent.Dev)
	}
	return pl
}

// AddDevice creates, configures, and enables an additional device with a
// custom group layout, returning it.
func (pl *Platform) AddDevice(name string, socket int, groups ...dsa.GroupConfig) (*dsa.Device, error) {
	cfg := pl.Profile.DeviceConfig
	cfg.Name = name
	cfg.Socket = socket
	dev := dsa.New(pl.E, pl.Sys, cfg)
	for _, g := range groups {
		if _, err := dev.AddGroup(g); err != nil {
			return nil, err
		}
	}
	if err := dev.Enable(); err != nil {
		return nil, err
	}
	if _, err := pl.Registry.Adopt(dev); err != nil {
		return nil, err
	}
	pl.Devices = append(pl.Devices, dev)
	return dev, nil
}

// Node returns platform memory node id (0 = socket-0 DRAM, 1 = socket-1
// DRAM, 2 = CXL on SPR).
func (pl *Platform) Node(id int) *mem.Node { return pl.Sys.Node(id) }

// Workspace is one process's execution context: an address space bound to
// the platform devices, a core, and a DML executor.
type Workspace struct {
	Platform *Platform
	AS       *mem.AddressSpace
	Core     *cpu.Core
	DML      *dml.Executor
}

// NewWorkspace creates a process context on socket 0 bound to every device.
func (pl *Platform) NewWorkspace(opts ...dml.Option) *Workspace {
	return pl.NewWorkspaceOn(0, opts...)
}

// NewWorkspaceOn creates a process context on the given socket.
func (pl *Platform) NewWorkspaceOn(socket int, opts ...dml.Option) *Workspace {
	as := mem.NewAddressSpace(pl.nextPASID)
	pl.nextPASID++
	core := cpu.NewCore(pl.nextCore, socket, pl.Sys, as, pl.Profile.CPU)
	pl.nextCore++
	var wqs []*dsa.WQ
	for _, dev := range pl.Devices {
		wqs = append(wqs, dev.WQs()...)
	}
	x, err := dml.New(as, core, wqs, opts...)
	if err != nil {
		panic(err)
	}
	return &Workspace{Platform: pl, AS: as, Core: core, DML: x}
}

// Alloc allocates a buffer on the workspace's local DRAM node.
func (w *Workspace) Alloc(size int64, opts ...mem.AllocOption) *mem.Buffer {
	node := w.Platform.Sys.SocketOf(w.Core.Socket).Nodes[0]
	opts = append([]mem.AllocOption{mem.OnNode(node)}, opts...)
	return w.AS.Alloc(size, opts...)
}

// Run starts fn as a simulated process and runs the engine to completion.
func (pl *Platform) Run(fn func(p *sim.Proc)) {
	pl.E.Go("main", fn)
	pl.E.Run()
}
