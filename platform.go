// Package dsasim is a simulation-based reproduction of "A Quantitative
// Analysis and Guidelines of Data Streaming Accelerator in Modern Intel Xeon
// Scalable Processors" (ASPLOS 2024).
//
// The package bundles the building blocks under internal/ into platforms
// matching the paper's evaluated systems (Table 2): a virtual-time engine,
// a memory system (NUMA DRAM, CXL, LLC with DDIO), CPU cores running
// software baselines, and one or more DSA (or CBDMA) device instances. The
// experiment harness in internal/exp regenerates every figure and table of
// the paper's evaluation on top of these platforms; cmd/dsa-bench renders
// them.
//
// Work is submitted through the unified offload API (internal/offload): the
// platform owns an offload.Service whose pluggable Scheduler places each
// descriptor on a work queue (round-robin, NUMA-local, least-loaded, the
// QoS-aware priority scheduler of the SPRQoS profile, or the data-home
// Placement scheduler of the SPRPlacement profile, which routes on where
// the data lives and splits mixed-home batches across sockets — G4), and
// each client of the service is an offload.Tenant — a PASID-bound address
// space plus a submitting core, carrying a QoS class and an
// admission-control budget.
// Every operation returns a Future; Wait(p, mode) covers the polled,
// UMWAIT, and interrupt completion paths, and the paper's guidelines are
// policy: G2's offload threshold (static or pressure-adaptive) and G1's
// small-transfer coalescing (AutoBatcher) live in offload.Policy.
//
// Quick start:
//
//	pl := dsasim.NewPlatform(dsasim.SPR())
//	tn := pl.NewTenant()
//	pl.Run(func(p *sim.Proc) {
//	    src := tn.Alloc(1 << 20)
//	    dst := tn.Alloc(1 << 20)
//	    fut, _ := tn.Copy(p, dst.Addr(0), src.Addr(0), 1<<20)
//	    res, _ := fut.Wait(p, offload.Poll)
//	    fmt.Println("copied in", res.Duration)
//	})
//
// The legacy Workspace/DML surface remains as a compatibility shim over the
// same service (internal/dml).
package dsasim

import (
	"fmt"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dml"
	"dsasim/internal/dsa"
	"dsasim/internal/idxd"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// Profile describes a platform generation (Table 2).
type Profile struct {
	Name    string
	Cores   int
	LLC     mem.LLCConfig
	UPILat  time.Duration
	UPIGBps float64
	Nodes   []mem.NodeConfig
	CPU     cpu.Model
	// Devices is the number of DMA devices to create and enable with the
	// default group configuration (one group, all engines, one 32-entry
	// dedicated WQ).
	Devices int
	// DeviceSockets optionally places device i on DeviceSockets[i]
	// (devices beyond the list keep DeviceConfig.Socket). Placement-aware
	// profiles use it to put one DSA on each socket.
	DeviceSockets []int
	// DeviceConfig templates each device (socket/name are overridden).
	DeviceConfig dsa.Config
	// WQs overrides the per-device work-queue layout (one group holding
	// these queues). Empty means the default single 32-entry dedicated WQ.
	// QoS profiles use this to expose a reserved high-priority WQ next to
	// a bulk one (§3.4 F3).
	WQs []idxd.WQSpec
	// ExpressReadBufs reserves this many of each device group's read
	// buffers for its top-priority WQs (§3.4 F3): express reads draw
	// bandwidth from the reserved share and never queue behind bulk
	// floods. Zero leaves the group's read pipe shared.
	ExpressReadBufs int
	// Scheduler builds the offload service's WQ-selection policy
	// (default: offload.NewRoundRobin).
	Scheduler func() offload.Scheduler
	// Policy is the offload service's default tenant policy (zero value:
	// offload.DefaultPolicy).
	Policy *offload.Policy
}

// SPR returns the Sapphire Rapids profile: 56 cores, 105 MB LLC, eight DDR5
// channels, CXL 1.1 support (modelled as a CPU-less NUMA node), and up to
// four DSA instances (Table 2, Fig 10).
func SPR() Profile {
	return Profile{
		Name:    "SPR",
		Cores:   56,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		Nodes: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 0, Kind: mem.CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
		},
		CPU:          cpu.SPRModel(),
		Devices:      1,
		DeviceConfig: dsa.DefaultConfig("dsa", 0),
	}
}

// SPRQoS returns the SPR profile configured for QoS-aware offload: each
// device exposes a small high-priority shared WQ (the express lane the
// PriorityAware scheduler reserves for latency-sensitive tenants) next to
// a larger bulk shared WQ, and the default policy adapts the offload
// threshold to device pressure. Tenants default to the Bulk class; mark
// foreground tenants with offload.WithClass(offload.LatencySensitive).
func SPRQoS() Profile {
	pr := SPR()
	pr.Name = "SPR-QoS"
	pr.WQs = []idxd.WQSpec{
		{Mode: "shared", Size: 8, Priority: 15},
		{Mode: "shared", Size: 24, Priority: 5},
	}
	pr.Scheduler = func() offload.Scheduler { return offload.NewPriorityAware() }
	pol := offload.DefaultPolicy()
	pol.AdaptiveThreshold = true
	pr.Policy = &pol
	return pr
}

// SPRPlacement returns the SPR profile configured for data-home placement
// (G4): one DSA instance per socket and the Placement scheduler, which
// routes each descriptor to the device local to its source/destination
// data (falling back to the tenant's socket) and lets the batch paths
// split mixed-home flushes into per-socket sub-batches
// (offload.Policy.SplitBatches, on by default). Use it when workloads
// touch memory the submitting core is not adjacent to: tiered-memory
// migration, cross-socket shuffles, CXL traffic.
func SPRPlacement() Profile {
	pr := SPR()
	pr.Name = "SPR-Placement"
	pr.Devices = 2
	pr.DeviceSockets = []int{0, 1}
	pr.Scheduler = func() offload.Scheduler { return offload.NewPlacement() }
	return pr
}

// SPRSkew returns the placement profile hardened for skewed load: on top
// of SPRPlacement's one-DSA-per-socket layout, the default policy turns
// on load-aware placement (offload.Policy.LoadAware), so a tenant whose
// data all lives next to a backlogged device detours across UPI to the
// idle socket's DSA exactly when the modelled queueing delay (WQ latency
// EWMA × occupancy, Service.SocketPressure's signals) exceeds the
// transfer penalty. Use it when tenants' data placement is lopsided —
// one hot socket, one cold — and raw service throughput matters more
// than strict data locality.
func SPRSkew() Profile {
	pr := SPRPlacement()
	pr.Name = "SPR-Skew"
	pol := offload.DefaultPolicy()
	pol.LoadAware = true
	pr.Policy = &pol
	return pr
}

// SPRCoalesce returns the QoS profile hardened for the completion path
// (§4.4): on top of SPRQoS's express/bulk WQ split and PriorityAware
// scheduler, the default policy waits in Interrupt mode with completion
// coalescing on — up to 16 finished records per tenant are announced by
// one interrupt, bounded by an 8µs moderation window — so bulk tenants
// pay one delivery latency per window instead of one per descriptor,
// while latency-sensitive tenants bypass moderation entirely (the QoS
// class resolution in offload.Policy) and keep their per-descriptor
// interrupts on the express lane. Use it when completions are drained by
// interrupt (cores shared with other work) and small-op throughput
// matters.
func SPRCoalesce() Profile {
	pr := SPRQoS()
	pr.Name = "SPR-Coalesce"
	pol := offload.DefaultPolicy()
	pol.AdaptiveThreshold = true
	pol.Wait = offload.Interrupt
	pol.CoalesceCount = 16
	pol.CoalesceWindow = 8 * time.Microsecond
	pr.Policy = &pol
	return pr
}

// SPRAdaptive returns the profile whose every knob closes the loop on the
// telemetry plane instead of a hand-picked constant: one DSA per socket,
// each exposing an express/bulk WQ pair with part of the group's read
// buffers reserved for the express lane; the QoS-aware placement
// scheduler; and a policy that adapts the offload threshold to device
// pressure, detours around backlogged sockets, and sizes interrupt
// coalescing windows from each tenant's measured completion rate
// (Policy.CoalesceAdaptive). Use it when the workload mix shifts at
// runtime — the control loop retunes where a static profile would need
// re-profiling.
func SPRAdaptive() Profile {
	pr := SPR()
	pr.Name = "SPR-Adaptive"
	pr.Devices = 2
	pr.DeviceSockets = []int{0, 1}
	pr.WQs = []idxd.WQSpec{
		{Mode: "shared", Size: 8, Priority: 15},
		{Mode: "shared", Size: 24, Priority: 5},
	}
	pr.ExpressReadBufs = 24
	pr.Scheduler = func() offload.Scheduler { return offload.NewPlacementQoS() }
	pol := offload.DefaultPolicy()
	pol.AdaptiveThreshold = true
	pol.LoadAware = true
	pol.Wait = offload.Interrupt
	pol.CoalesceCount = 16
	pol.CoalesceWindow = 8 * time.Microsecond
	pol.CoalesceAdaptive = true
	pr.Policy = &pol
	return pr
}

// ICX returns the Ice Lake predecessor profile: 40 cores, 57 MB LLC, six
// DDR4 channels, and a CBDMA engine instead of DSA (Table 2).
func ICX() Profile {
	cfg := dsa.DefaultConfig("cbdma", 0)
	cfg.Timing = dsa.CBDMATiming()
	cfg.Engines = 1 // one logical channel used per the paper's methodology
	return Profile{
		Name:    "ICX",
		Cores:   40,
		LLC:     mem.LLCConfig{Capacity: 57 << 20, Ways: 12, DDIOWays: 2},
		UPILat:  75 * time.Nanosecond,
		UPIGBps: 50,
		Nodes: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 120 * time.Nanosecond, WriteLat: 120 * time.Nanosecond, ReadGBps: 100, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 120 * time.Nanosecond, WriteLat: 120 * time.Nanosecond, ReadGBps: 100, WriteGBps: 75},
		},
		CPU:          cpu.ICXModel(),
		Devices:      1,
		DeviceConfig: cfg,
	}
}

// Platform is a constructed system ready to run workloads.
type Platform struct {
	Profile  Profile
	E        *sim.Engine
	Sys      *mem.System
	Registry *idxd.Registry
	Devices  []*dsa.Device

	// Offload is the platform's submission service: every tenant and
	// workspace submits through it, and its Scheduler owns device/WQ
	// placement.
	Offload *offload.Service
}

// NewPlatform builds and enables a platform from profile.
func NewPlatform(pr Profile) *Platform {
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets:  2,
		LLC:      pr.LLC,
		UPILat:   pr.UPILat,
		UPIGBps:  pr.UPIGBps,
		NodeDefs: pr.Nodes,
	})
	pl := &Platform{
		Profile:  pr,
		E:        e,
		Sys:      sys,
		Registry: idxd.NewRegistry(e, sys),
	}
	for i := 0; i < pr.Devices; i++ {
		cfg := pr.DeviceConfig
		cfg.Name = fmt.Sprintf("%s%d", pr.DeviceConfig.Name, i)
		if i < len(pr.DeviceSockets) {
			cfg.Socket = pr.DeviceSockets[i]
		}
		dev := dsa.New(e, sys, cfg)
		ent, err := pl.Registry.Adopt(dev)
		if err != nil {
			panic(err)
		}
		wqspecs := pr.WQs
		if len(wqspecs) == 0 {
			wqspecs = []idxd.WQSpec{{Mode: "dedicated", Size: 32}}
		}
		spec := idxd.DeviceSpec{
			Name: cfg.Name,
			Groups: []idxd.GroupSpec{{
				Engines:     cfg.Engines,
				ExpressBufs: pr.ExpressReadBufs,
				WQs:         wqspecs,
			}},
		}
		if err := pl.Registry.Configure(spec); err != nil {
			panic(err)
		}
		if err := pl.Registry.Enable(cfg.Name); err != nil {
			panic(err)
		}
		pl.Devices = append(pl.Devices, ent.Dev)
	}
	var wqs []*dsa.WQ
	for _, dev := range pl.Devices {
		wqs = append(wqs, dev.WQs()...)
	}
	// A device-less profile (CPU-only baseline) constructs fine; the
	// service comes up with the first device (here or via AddDevice), and
	// tenant creation fails until then — matching the legacy behavior of
	// failing at workspace creation, not platform construction.
	if len(wqs) > 0 {
		pl.initService(wqs)
	}
	return pl
}

// initService builds the offload service from the profile knobs.
func (pl *Platform) initService(wqs []*dsa.WQ) {
	opts := []offload.ServiceOption{offload.WithCPUModel(pl.Profile.CPU)}
	if pl.Profile.Scheduler != nil {
		opts = append(opts, offload.WithScheduler(pl.Profile.Scheduler()))
	}
	if pl.Profile.Policy != nil {
		opts = append(opts, offload.WithPolicy(*pl.Profile.Policy))
	}
	svc, err := offload.NewService(pl.E, pl.Sys, wqs, opts...)
	if err != nil {
		panic(err)
	}
	pl.Offload = svc
}

// AddDevice creates, configures, and enables an additional device with a
// custom group layout, registering its WQs with the offload service, and
// returns it.
func (pl *Platform) AddDevice(name string, socket int, groups ...dsa.GroupConfig) (*dsa.Device, error) {
	cfg := pl.Profile.DeviceConfig
	cfg.Name = name
	cfg.Socket = socket
	dev := dsa.New(pl.E, pl.Sys, cfg)
	for _, g := range groups {
		if _, err := dev.AddGroup(g); err != nil {
			return nil, err
		}
	}
	if err := dev.Enable(); err != nil {
		return nil, err
	}
	if _, err := pl.Registry.Adopt(dev); err != nil {
		return nil, err
	}
	pl.Devices = append(pl.Devices, dev)
	if pl.Offload == nil {
		pl.initService(dev.WQs())
	} else {
		pl.Offload.AddWQs(dev.WQs()...)
	}
	return dev, nil
}

// Node returns platform memory node id (0 = socket-0 DRAM, 1 = socket-1
// DRAM, 2 = CXL on SPR).
func (pl *Platform) Node(id int) *mem.Node { return pl.Sys.Node(id) }

// NewTenant creates an offload tenant on socket 0: a fresh PASID-bound
// address space and core, submitting through the platform scheduler.
func (pl *Platform) NewTenant(opts ...offload.TenantOption) *offload.Tenant {
	if pl.Offload == nil {
		panic("dsasim: platform has no devices (no work queues to submit to)")
	}
	tn, err := pl.Offload.NewTenant(opts...)
	if err != nil {
		panic(err)
	}
	return tn
}

// NewTenantOn creates a tenant on the given socket.
func (pl *Platform) NewTenantOn(socket int, opts ...offload.TenantOption) *offload.Tenant {
	opts = append([]offload.TenantOption{offload.OnSocket(socket)}, opts...)
	return pl.NewTenant(opts...)
}

// Workspace is the legacy process context, kept as a compatibility shim:
// the same tenant exposed through the dml.Executor API.
type Workspace struct {
	Platform *Platform
	Tenant   *offload.Tenant
	AS       *mem.AddressSpace
	Core     *cpu.Core
	DML      *dml.Executor
}

// NewWorkspace creates a process context on socket 0 bound to every device.
func (pl *Platform) NewWorkspace(opts ...dml.Option) *Workspace {
	return pl.NewWorkspaceOn(0, opts...)
}

// NewWorkspaceOn creates a process context on the given socket.
func (pl *Platform) NewWorkspaceOn(socket int, opts ...dml.Option) *Workspace {
	tn := pl.NewTenantOn(socket)
	return &Workspace{
		Platform: pl,
		Tenant:   tn,
		AS:       tn.AS,
		Core:     tn.Core,
		DML:      dml.FromTenant(tn, opts...),
	}
}

// Alloc allocates a buffer on the workspace's local DRAM node (delegating
// to the tenant allocator, which prefers the socket's DRAM node and honors
// explicit placement options).
func (w *Workspace) Alloc(size int64, opts ...mem.AllocOption) *mem.Buffer {
	return w.Tenant.Alloc(size, opts...)
}

// Run starts fn as a simulated process and runs the engine to completion.
func (pl *Platform) Run(fn func(p *sim.Proc)) {
	pl.E.Go("main", fn)
	pl.E.Run()
}
