package dsasim

import (
	"bytes"
	"testing"

	"dsasim/internal/dml"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

func TestSPRPlatformBasics(t *testing.T) {
	pl := NewPlatform(SPR())
	if len(pl.Devices) != 1 {
		t.Fatalf("devices = %d, want 1", len(pl.Devices))
	}
	if !pl.Devices[0].Enabled() {
		t.Fatal("device not enabled")
	}
	if pl.Node(2).Kind != mem.CXL {
		t.Fatal("SPR profile missing CXL node")
	}
	ws := pl.NewWorkspace()
	src := ws.Alloc(1 << 20)
	dst := ws.Alloc(1 << 20)
	sim.NewRand(1).Bytes(src.Bytes())
	pl.Run(func(p *sim.Proc) {
		res, err := ws.DML.Copy(p, dst.Addr(0), src.Addr(0), 1<<20, dml.Auto)
		if err != nil {
			t.Error(err)
			return
		}
		if !res.Hardware {
			t.Error("1MB copy should take the hardware path")
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("platform copy incomplete")
	}
}

func TestICXPlatformUsesCBDMA(t *testing.T) {
	pl := NewPlatform(ICX())
	if pl.Devices[0].Cfg.Engines != 1 {
		t.Fatalf("ICX CBDMA engines = %d, want 1", pl.Devices[0].Cfg.Engines)
	}
	if got := pl.Devices[0].Cfg.Timing.FabricGBps; got >= dsa.DefaultTiming().FabricGBps {
		t.Fatalf("CBDMA fabric %v should be below DSA's", got)
	}
	ws := pl.NewWorkspace()
	src := ws.Alloc(64 << 10)
	dst := ws.Alloc(64 << 10)
	pl.Run(func(p *sim.Proc) {
		if _, err := ws.DML.Copy(p, dst.Addr(0), src.Addr(0), 64<<10, dml.Hardware); err != nil {
			t.Error(err)
		}
	})
}

func TestAddDeviceCustomGroups(t *testing.T) {
	pl := NewPlatform(SPR())
	dev, err := pl.AddDevice("dsa-extra", 0, dsa.GroupConfig{
		Engines: 2,
		WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dev.WQs()) != 1 || dev.WQs()[0].Mode != dsa.Shared {
		t.Fatal("custom group not applied")
	}
	if len(pl.Devices) != 2 {
		t.Fatalf("devices = %d, want 2", len(pl.Devices))
	}
}

func TestWorkspacesAreIsolated(t *testing.T) {
	pl := NewPlatform(SPR())
	w1 := pl.NewWorkspace()
	w2 := pl.NewWorkspace()
	if w1.AS.PASID == w2.AS.PASID {
		t.Fatal("workspaces share a PASID")
	}
	b1 := w1.Alloc(4096)
	// w2 must not resolve w1's addresses.
	if _, _, err := w2.AS.Lookup(b1.Addr(0)); err == nil {
		t.Fatal("cross-workspace address resolved")
	}
}

func TestMultiSocketWorkspace(t *testing.T) {
	pl := NewPlatform(SPR())
	ws := pl.NewWorkspaceOn(1)
	buf := ws.Alloc(4096)
	if buf.Node.Socket != 1 {
		t.Fatalf("socket-1 workspace allocated on socket %d", buf.Node.Socket)
	}
}
