package dsasim

import (
	"bytes"
	"testing"

	"dsasim/internal/dml"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
	"dsasim/internal/telemetry"
)

func TestSPRPlatformBasics(t *testing.T) {
	pl := NewPlatform(SPR())
	if len(pl.Devices) != 1 {
		t.Fatalf("devices = %d, want 1", len(pl.Devices))
	}
	if !pl.Devices[0].Enabled() {
		t.Fatal("device not enabled")
	}
	if pl.Node(2).Kind != mem.CXL {
		t.Fatal("SPR profile missing CXL node")
	}
	ws := pl.NewWorkspace()
	src := ws.Alloc(1 << 20)
	dst := ws.Alloc(1 << 20)
	sim.NewRand(1).Bytes(src.Bytes())
	pl.Run(func(p *sim.Proc) {
		res, err := ws.DML.Copy(p, dst.Addr(0), src.Addr(0), 1<<20, dml.Auto)
		if err != nil {
			t.Error(err)
			return
		}
		if !res.Hardware {
			t.Error("1MB copy should take the hardware path")
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("platform copy incomplete")
	}
}

func TestICXPlatformUsesCBDMA(t *testing.T) {
	pl := NewPlatform(ICX())
	if pl.Devices[0].Cfg.Engines != 1 {
		t.Fatalf("ICX CBDMA engines = %d, want 1", pl.Devices[0].Cfg.Engines)
	}
	if got := pl.Devices[0].Cfg.Timing.FabricGBps; got >= dsa.DefaultTiming().FabricGBps {
		t.Fatalf("CBDMA fabric %v should be below DSA's", got)
	}
	ws := pl.NewWorkspace()
	src := ws.Alloc(64 << 10)
	dst := ws.Alloc(64 << 10)
	pl.Run(func(p *sim.Proc) {
		if _, err := ws.DML.Copy(p, dst.Addr(0), src.Addr(0), 64<<10, dml.Hardware); err != nil {
			t.Error(err)
		}
	})
}

func TestAddDeviceCustomGroups(t *testing.T) {
	pl := NewPlatform(SPR())
	dev, err := pl.AddDevice("dsa-extra", 0, dsa.GroupConfig{
		Engines: 2,
		WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dev.WQs()) != 1 || dev.WQs()[0].Mode != dsa.Shared {
		t.Fatal("custom group not applied")
	}
	if len(pl.Devices) != 2 {
		t.Fatalf("devices = %d, want 2", len(pl.Devices))
	}
}

func TestWorkspacesAreIsolated(t *testing.T) {
	pl := NewPlatform(SPR())
	w1 := pl.NewWorkspace()
	w2 := pl.NewWorkspace()
	if w1.AS.PASID == w2.AS.PASID {
		t.Fatal("workspaces share a PASID")
	}
	b1 := w1.Alloc(4096)
	// w2 must not resolve w1's addresses.
	if _, _, err := w2.AS.Lookup(b1.Addr(0)); err == nil {
		t.Fatal("cross-workspace address resolved")
	}
}

func TestMultiSocketWorkspace(t *testing.T) {
	pl := NewPlatform(SPR())
	ws := pl.NewWorkspaceOn(1)
	buf := ws.Alloc(4096)
	if buf.Node.Socket != 1 {
		t.Fatalf("socket-1 workspace allocated on socket %d", buf.Node.Socket)
	}
}

func TestTenantOffloadAPI(t *testing.T) {
	pl := NewPlatform(SPR())
	tn := pl.NewTenant()
	n := int64(1 << 20)
	src := tn.Alloc(n)
	dst := tn.Alloc(n)
	sim.NewRand(11).Bytes(src.Bytes())
	pl.Run(func(p *sim.Proc) {
		fut, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := fut.Wait(p, offload.Poll)
		if err != nil {
			t.Error(err)
			return
		}
		if !res.Hardware {
			t.Error("1MB copy should take the hardware path")
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("tenant copy incomplete")
	}
	if tn.Stats().HWOps != 1 {
		t.Fatalf("stats = %+v", tn.Stats())
	}
}

func TestTenantAllocOnCXLNode(t *testing.T) {
	pl := NewPlatform(SPR())
	tn := pl.NewTenant()
	if b := tn.AllocOn(2, 4096); b.Node.Kind != mem.CXL {
		t.Fatalf("AllocOn(2) landed on %v, want CXL", b.Node.Kind)
	}
	if b := tn.Alloc(4096); b.Node.Kind != mem.DRAM || b.Node.Socket != 0 {
		t.Fatal("default tenant allocation should land on socket-0 DRAM")
	}
}

// sprSchedElapsed builds the acceptance scenario — the SPR profile with a
// second DSA instance on socket 1 — and measures count synchronous 16KB
// copies from a socket-0 tenant under the profile's scheduler.
func sprSchedElapsed(t *testing.T, mk func() offload.Scheduler, count int) sim.Time {
	t.Helper()
	pr := SPR()
	pr.Scheduler = mk
	pl := NewPlatform(pr)
	if _, err := pl.AddDevice("dsa1", 1, dsa.GroupConfig{
		Engines: 4,
		WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
	}); err != nil {
		t.Fatal(err)
	}
	tn := pl.NewTenant()
	n := int64(16 << 10)
	src := tn.Alloc(n)
	dst := tn.Alloc(n)
	var elapsed sim.Time
	pl.Run(func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < count; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
				return
			}
		}
		elapsed = p.Now() - start
	})
	return elapsed
}

// TestSPRQoSProfileWiring checks the QoS profile construction end to end:
// per-device express + bulk WQ layout, the PriorityAware scheduler, the
// adaptive-threshold default policy, and class-aware tenant steering.
func TestSPRQoSProfileWiring(t *testing.T) {
	pl := NewPlatform(SPRQoS())
	wqs := pl.Offload.WQs()
	if len(wqs) != 2 {
		t.Fatalf("SPRQoS WQs = %d, want 2 (express + bulk)", len(wqs))
	}
	var express, rest *dsa.WQ
	for _, wq := range wqs {
		if wq.Mode != dsa.Shared {
			t.Fatalf("SPRQoS WQ %d not shared-mode", wq.ID)
		}
		if wq.Priority == 15 {
			express = wq
		} else {
			rest = wq
		}
	}
	if express == nil || rest == nil {
		t.Fatal("SPRQoS device missing the express/bulk WQ split")
	}
	if got := pl.Offload.Scheduler().Name(); got != "priority-aware" {
		t.Fatalf("scheduler = %q, want priority-aware", got)
	}
	if !pl.Offload.Policy().AdaptiveThreshold {
		t.Fatal("SPRQoS default policy should adapt the offload threshold")
	}
	fg := pl.NewTenant(offload.WithClass(offload.LatencySensitive))
	bg := pl.NewTenant()
	n := int64(64 << 10)
	fsrc, fdst := fg.Alloc(n), fg.Alloc(n)
	bsrc, bdst := bg.Alloc(n), bg.Alloc(n)
	pl.Run(func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			ff, err := fg.Copy(p, fdst.Addr(0), fsrc.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			bf, err := bg.Copy(p, bdst.Addr(0), bsrc.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := ff.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
			if _, err := bf.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
		}
	})
	if express.Submitted() != 4 {
		t.Errorf("express WQ saw %d descriptors, want the 4 latency-sensitive ops", express.Submitted())
	}
	if rest.Submitted() != 4 {
		t.Errorf("bulk WQ saw %d descriptors, want the 4 bulk ops", rest.Submitted())
	}
}

// TestSPRPlacementProfileWiring checks the placement profile end to end:
// one device per socket, the Placement scheduler, and data-home routing —
// a socket-0 tenant's copy between socket-1 buffers must land on the
// socket-1 device, and a mixed-home batch must split across both.
func TestSPRPlacementProfileWiring(t *testing.T) {
	pl := NewPlatform(SPRPlacement())
	if len(pl.Devices) != 2 {
		t.Fatalf("devices = %d, want 2", len(pl.Devices))
	}
	for i, want := range []int{0, 1} {
		if got := pl.Devices[i].Cfg.Socket; got != want {
			t.Fatalf("device %d on socket %d, want %d", i, got, want)
		}
	}
	if got := pl.Offload.Scheduler().Name(); got != "placement" {
		t.Fatalf("scheduler = %q, want placement", got)
	}
	tn := pl.NewTenant()
	n := int64(256 << 10)
	rsrc := tn.AllocOn(1, 2*n)
	rdst := tn.AllocOn(1, 2*n)
	lsrc := tn.AllocOn(0, n)
	ldst := tn.AllocOn(0, n)
	sim.NewRand(21).Bytes(rsrc.Bytes())
	sim.NewRand(22).Bytes(lsrc.Bytes())
	pl.Run(func(p *sim.Proc) {
		f, err := tn.Copy(p, rdst.Addr(0), rsrc.Addr(0), n)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
			return
		}
		// Mixed-home batch: one socket-0 copy, one socket-1 copy.
		bf, err := tn.NewBatch().
			Copy(ldst.Addr(0), lsrc.Addr(0), n).
			Copy(rdst.Addr(n), rsrc.Addr(n), n).
			Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := bf.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(rdst.Bytes(), rsrc.Bytes()) || !bytes.Equal(ldst.Bytes(), lsrc.Bytes()) {
		t.Fatal("placement-profile copies incomplete")
	}
	if got := pl.Devices[1].Cfg.Socket; got != 1 {
		t.Fatalf("device 1 socket = %d", got)
	}
	// The remote copy and the batch's socket-1 slice ride device 1.
	if got := pl.Devices[1].Stats().Submitted; got != 2 {
		t.Errorf("socket-1 device saw %d descriptors, want 2", got)
	}
	if got := pl.Devices[0].Stats().Submitted; got != 1 {
		t.Errorf("socket-0 device saw %d descriptors, want 1", got)
	}
	if got := tn.Stats().Splits; got != 2 {
		t.Errorf("Splits = %d, want 2", got)
	}
}

// TestSPRSkewProfileWiring checks the load-aware profile end to end: the
// placement layout with LoadAware defaulted on, so a burst against one
// backlogged socket spills onto the idle socket's device.
func TestSPRSkewProfileWiring(t *testing.T) {
	pl := NewPlatform(SPRSkew())
	if len(pl.Devices) != 2 {
		t.Fatalf("devices = %d, want 2", len(pl.Devices))
	}
	if got := pl.Offload.Scheduler().Name(); got != "placement" {
		t.Fatalf("scheduler = %q, want placement", got)
	}
	if !pl.Offload.Policy().LoadAware {
		t.Fatal("SPRSkew default policy must set LoadAware")
	}
	tn := pl.NewTenant()
	n := int64(256 << 10)
	src := tn.AllocOn(0, n) // all data on socket 0 — the skew
	dst := tn.AllocOn(0, n)
	pl.Run(func(p *sim.Proc) {
		// Warmup builds the latency history the cost model prices with.
		f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
			return
		}
		var futs []*offload.Future
		for i := 0; i < 24; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			futs = append(futs, f)
		}
		for _, f := range futs {
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
		}
	})
	if got := pl.Devices[1].Stats().Submitted; got == 0 {
		t.Error("no submission detoured to the idle socket-1 device under backlog")
	}
	if got := pl.Devices[0].Stats().Submitted; got == 0 {
		t.Error("home device saw no traffic")
	}
}

// TestSPRAdaptiveProfileWiring checks the closed-loop profile end to end:
// one device per socket with an express read-buffer partition, the
// placement-qos scheduler, every adaptive policy knob on, and the
// telemetry plane live (streams registered, windows advancing) after a
// burst of traffic.
func TestSPRAdaptiveProfileWiring(t *testing.T) {
	pl := NewPlatform(SPRAdaptive())
	if len(pl.Devices) != 2 {
		t.Fatalf("devices = %d, want 2", len(pl.Devices))
	}
	if got := pl.Offload.Scheduler().Name(); got != "placement-qos" {
		t.Fatalf("scheduler = %q, want placement-qos", got)
	}
	pol := pl.Offload.Policy()
	if !pol.AdaptiveThreshold || !pol.LoadAware || !pol.CoalesceAdaptive {
		t.Fatalf("adaptive knobs = (threshold %v, load %v, coalesce %v), want all on",
			pol.AdaptiveThreshold, pol.LoadAware, pol.CoalesceAdaptive)
	}
	if pol.Wait != offload.Interrupt {
		t.Fatalf("default wait mode = %v, want Interrupt", pol.Wait)
	}
	for i, dev := range pl.Devices {
		g := dev.Groups()[0]
		if g.ExpressBufs != 24 {
			t.Fatalf("device %d express share = %d, want 24", i, g.ExpressBufs)
		}
	}
	tn := pl.NewTenant()
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	sim.NewRand(41).Bytes(src.Bytes())
	pl.Run(func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, pol.Wait); err != nil {
				t.Error(err)
			}
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("adaptive-profile copies incomplete")
	}
	hub := pl.Offload.Telemetry()
	if hub == nil {
		t.Fatal("platform service exposes no telemetry hub")
	}
	var sawLat bool
	for id := 0; id < hub.Streams(); id++ {
		if hub.Digest(telemetry.ID(id)).Count() > 0 {
			sawLat = true
			break
		}
	}
	if !sawLat {
		t.Error("no telemetry stream recorded any samples after traffic")
	}
}

// Scheduler comparison on the real SPR profile with one device per socket:
// NUMA-local placement must deliver at least round-robin's throughput for
// a socket-local workload (Fig 6a's remote-placement penalty).
func TestSchedulerComparisonOnSPR(t *testing.T) {
	const count = 100
	rr := sprSchedElapsed(t, func() offload.Scheduler { return offload.NewRoundRobin() }, count)
	local := sprSchedElapsed(t, func() offload.Scheduler { return offload.NewNUMALocal() }, count)
	if local > rr {
		t.Fatalf("NUMALocal (%v) slower than RoundRobin (%v) on the 2-device SPR platform", local, rr)
	}
}

// TestSPRCoalesceProfileWiring checks the completion-path profile end to
// end: the QoS WQ layout with Interrupt-mode coalescing defaulted on, a
// bulk tenant's window costing one delivery, and the latency-sensitive
// bypass.
func TestSPRCoalesceProfileWiring(t *testing.T) {
	pl := NewPlatform(SPRCoalesce())
	pol := pl.Offload.Policy()
	if pol.Wait != offload.Interrupt {
		t.Fatalf("default wait mode = %v, want Interrupt", pol.Wait)
	}
	if pol.CoalesceCount != 16 || pol.CoalesceWindow <= 0 {
		t.Fatalf("coalescing knobs = (%d, %v), want (16, >0)", pol.CoalesceCount, pol.CoalesceWindow)
	}
	bulk := pl.NewTenant()
	ls := pl.NewTenant(offload.WithClass(offload.LatencySensitive))
	if ls.Coalescer() != nil {
		t.Error("latency-sensitive tenant should bypass moderation")
	}
	const ops = 16
	n := int64(16 << 10)
	src, dst := bulk.Alloc(n), bulk.Alloc(n)
	sim.NewRand(31).Bytes(src.Bytes())
	pl.Run(func(p *sim.Proc) {
		futs := make([]*offload.Future, 0, ops)
		for i := 0; i < ops; i++ {
			f, err := bulk.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Error(err)
				return
			}
			futs = append(futs, f)
		}
		for _, f := range futs {
			if _, err := f.Wait(p, pol.Wait); err != nil {
				t.Error(err)
			}
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("coalesced copies incomplete")
	}
	k := bulk.Coalescer()
	if k == nil {
		t.Fatal("bulk tenant has no coalescer under SPRCoalesce")
	}
	if k.Deliveries() >= ops {
		t.Errorf("Deliveries = %d for %d completions — nothing coalesced", k.Deliveries(), ops)
	}
	if k.Deliveries()+k.CoalescedRecords() != ops {
		t.Errorf("deliveries %d + coalesced %d != %d completions", k.Deliveries(), k.CoalescedRecords(), ops)
	}
}
