package pcm

import (
	"strings"
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

func TestMonitorDeltas(t *testing.T) {
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace(1)
	dev.BindPASID(as)
	src := as.Alloc(16<<10, mem.OnNode(sys.Node(0)))
	dst := as.Alloc(16<<10, mem.OnNode(sys.Node(0)))

	m := NewMonitor(e, dev)
	cl := dsa.NewClient(dev.WQs()[0], nil)
	e.Go("load", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := cl.RunSync(p, dsa.Descriptor{
				Op: dsa.OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 16 << 10,
			}, dsa.Poll); err != nil {
				t.Error(err)
				return
			}
		}
	})
	e.Run()

	s := m.Sample()
	if len(s) != 1 {
		t.Fatalf("samples = %d", len(s))
	}
	if s[0].InboundBytes != 4*16<<10 || s[0].OutboundBytes != 4*16<<10 {
		t.Fatalf("traffic = %+v", s[0])
	}
	if s[0].Descriptors != 4 {
		t.Fatalf("descriptors = %d", s[0].Descriptors)
	}
	// Second sample with no traffic: all deltas zero.
	s2 := m.Sample()
	if s2[0].InboundBytes != 0 || s2[0].Descriptors != 0 {
		t.Fatalf("second sample not zero: %+v", s2[0])
	}
	out := Format(s)
	if !strings.Contains(out, "dsa0") || !strings.Contains(out, "DESCS") {
		t.Fatalf("Format output missing fields:\n%s", out)
	}
}
