// Package pcm mirrors the DSA telemetry the Intel PCM library exposes (§5):
// per-device inbound/outbound traffic and request counts read from hardware
// counters, with interval sampling for occupancy-over-time plots (Fig 12).
package pcm

import (
	"fmt"
	"strings"

	"dsasim/internal/dsa"
	"dsasim/internal/sim"
)

// Sample is one interval's counter deltas for a device.
type Sample struct {
	Device        string
	At            sim.Time
	InboundBytes  int64 // device reads from memory
	OutboundBytes int64 // device writes to memory
	Descriptors   int64 // work descriptors completed in the interval
	Retries       int64 // ENQCMD retries in the interval
	PageFaults    int64
}

// Monitor samples a set of devices.
type Monitor struct {
	e    *sim.Engine
	devs []*dsa.Device
	last []dsa.DeviceStats
}

// NewMonitor starts monitoring devs, latching their current counters.
func NewMonitor(e *sim.Engine, devs ...*dsa.Device) *Monitor {
	m := &Monitor{e: e, devs: devs, last: make([]dsa.DeviceStats, len(devs))}
	for i, d := range devs {
		m.last[i] = d.Stats()
	}
	return m
}

// Sample returns counter deltas since the previous call, one per device.
func (m *Monitor) Sample() []Sample {
	out := make([]Sample, len(m.devs))
	for i, d := range m.devs {
		cur := d.Stats()
		prev := m.last[i]
		out[i] = Sample{
			Device:        d.Cfg.Name,
			At:            m.e.Now(),
			InboundBytes:  cur.BytesRead - prev.BytesRead,
			OutboundBytes: cur.BytesWritten - prev.BytesWritten,
			Descriptors:   cur.Completed - prev.Completed,
			Retries:       cur.Retries - prev.Retries,
			PageFaults:    cur.PageFaults - prev.PageFaults,
		}
		m.last[i] = cur
	}
	return out
}

// Format renders samples as the pcm-style one-line-per-device table.
func Format(samples []Sample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s %10s %8s %8s\n",
		"DEV", "IB (bytes)", "OB (bytes)", "DESCS", "RETRY", "FAULTS")
	for _, s := range samples {
		fmt.Fprintf(&b, "%-8s %14d %14d %10d %8d %8d\n",
			s.Device, s.InboundBytes, s.OutboundBytes, s.Descriptors, s.Retries, s.PageFaults)
	}
	return b.String()
}
