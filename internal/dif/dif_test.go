package dif

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"dsasim/internal/sim"
)

func fillRandom(p []byte, seed uint64) {
	sim.NewRand(seed).Bytes(p)
}

func TestInsertCheckStripRoundTrip(t *testing.T) {
	for _, bs := range []BlockSize{Block512, Block4096} {
		for _, blocks := range []int{1, 2, 7} {
			src := make([]byte, int(bs)*blocks)
			fillRandom(src, uint64(bs)+uint64(blocks))
			tags := Tags{AppTag: 0xBEEF, RefTag: 1000, IncrementRef: true}
			prot := make([]byte, bs.Protected()*int64(blocks))
			if err := Insert(prot, src, bs, tags); err != nil {
				t.Fatalf("Insert(bs=%d,blocks=%d): %v", bs, blocks, err)
			}
			if err := Check(prot, bs, tags); err != nil {
				t.Fatalf("Check(bs=%d,blocks=%d): %v", bs, blocks, err)
			}
			out := make([]byte, len(src))
			if err := Strip(out, prot, bs, tags); err != nil {
				t.Fatalf("Strip: %v", err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("Strip did not round-trip (bs=%d, blocks=%d)", bs, blocks)
			}
		}
	}
}

func TestCheckDetectsGuardCorruption(t *testing.T) {
	src := make([]byte, 512)
	fillRandom(src, 3)
	tags := Tags{AppTag: 1, RefTag: 7}
	prot := make([]byte, Block512.Protected())
	if err := Insert(prot, src, Block512, tags); err != nil {
		t.Fatal(err)
	}
	prot[100] ^= 0x01 // corrupt data, guard now wrong
	var ce *CheckError
	if err := Check(prot, Block512, tags); !errors.As(err, &ce) || ce.Field != "guard" {
		t.Fatalf("Check = %v, want guard CheckError", err)
	}
}

func TestCheckDetectsTagMismatches(t *testing.T) {
	src := make([]byte, 1024)
	fillRandom(src, 4)
	tags := Tags{AppTag: 0x1234, RefTag: 55, IncrementRef: true}
	prot := make([]byte, Block512.Protected()*2)
	if err := Insert(prot, src, Block512, tags); err != nil {
		t.Fatal(err)
	}
	var ce *CheckError
	wrongApp := tags
	wrongApp.AppTag = 0x4321
	if err := Check(prot, Block512, wrongApp); !errors.As(err, &ce) || ce.Field != "app" {
		t.Fatalf("Check wrong app = %v", err)
	}
	wrongRef := tags
	wrongRef.RefTag = 56
	if err := Check(prot, Block512, wrongRef); !errors.As(err, &ce) || ce.Field != "ref" {
		t.Fatalf("Check wrong ref = %v", err)
	}
	// Error should identify block 0.
	if ce.Block != 0 {
		t.Fatalf("error block = %d, want 0", ce.Block)
	}
}

func TestIncrementingRefTag(t *testing.T) {
	src := make([]byte, 512*3)
	fillRandom(src, 5)
	tags := Tags{RefTag: 100, IncrementRef: true}
	prot := make([]byte, Block512.Protected()*3)
	if err := Insert(prot, src, Block512, tags); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pi := DecodeBlockPI(prot, Block512, i)
		if pi.RefTag != uint32(100+i) {
			t.Fatalf("block %d ref = %d, want %d", i, pi.RefTag, 100+i)
		}
	}
}

func TestFixedRefTag(t *testing.T) {
	src := make([]byte, 512*2)
	tags := Tags{RefTag: 42}
	prot := make([]byte, Block512.Protected()*2)
	if err := Insert(prot, src, Block512, tags); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if pi := DecodeBlockPI(prot, Block512, i); pi.RefTag != 42 {
			t.Fatalf("block %d ref = %d, want 42", i, pi.RefTag)
		}
	}
}

func TestUpdateRewritesTags(t *testing.T) {
	src := make([]byte, 4096)
	fillRandom(src, 6)
	old := Tags{AppTag: 1, RefTag: 10}
	prot := make([]byte, Block4096.Protected())
	if err := Insert(prot, src, Block4096, old); err != nil {
		t.Fatal(err)
	}
	newTags := Tags{AppTag: 2, RefTag: 99, IncrementRef: true}
	out := make([]byte, len(prot))
	if err := Update(out, prot, Block4096, old, newTags); err != nil {
		t.Fatal(err)
	}
	if err := Check(out, Block4096, newTags); err != nil {
		t.Fatalf("Check after Update: %v", err)
	}
	// Data must be untouched.
	if !bytes.Equal(out[:4096], src) {
		t.Fatal("Update altered data")
	}
}

func TestUpdateRejectsBadSource(t *testing.T) {
	src := make([]byte, 512)
	old := Tags{AppTag: 1}
	prot := make([]byte, Block512.Protected())
	if err := Insert(prot, src, Block512, old); err != nil {
		t.Fatal(err)
	}
	prot[0] ^= 0xFF
	out := make([]byte, len(prot))
	if err := Update(out, prot, Block512, old, Tags{AppTag: 2}); err == nil {
		t.Fatal("Update accepted corrupted source")
	}
}

func TestSizeValidation(t *testing.T) {
	if err := Insert(make([]byte, 520), make([]byte, 500), Block512, Tags{}); err == nil {
		t.Fatal("Insert accepted partial block")
	}
	if err := Insert(make([]byte, 100), make([]byte, 512), Block512, Tags{}); err == nil {
		t.Fatal("Insert accepted wrong destination size")
	}
	if err := Check(make([]byte, 500), Block512, Tags{}); err == nil {
		t.Fatal("Check accepted partial protected block")
	}
	if err := Insert(make([]byte, 521), make([]byte, 512), BlockSize(513), Tags{}); err == nil {
		t.Fatal("Insert accepted invalid block size")
	}
}

func TestInsertStripQuick(t *testing.T) {
	f := func(seed uint64, nBlocks uint8) bool {
		blocks := int(nBlocks)%4 + 1
		src := make([]byte, 512*blocks)
		fillRandom(src, seed)
		tags := Tags{AppTag: uint16(seed), RefTag: uint32(seed >> 16), IncrementRef: seed%2 == 0}
		prot := make([]byte, Block512.Protected()*int64(blocks))
		if err := Insert(prot, src, Block512, tags); err != nil {
			return false
		}
		out := make([]byte, len(src))
		if err := Strip(out, prot, Block512, tags); err != nil {
			return false
		}
		return bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
