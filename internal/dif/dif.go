// Package dif implements the T10 Data Integrity Field codec used by the DSA
// DIF operations (Table 1): check, insert, strip, and update of 8-byte
// protection information (PI) per data block. Supported block sizes follow
// the DSA specification: 512- or 4096-byte data blocks, with protected
// blocks of 520 or 4104 bytes respectively.
//
// PI layout (big-endian, per T10): 2-byte guard (CRC-16 of the data block),
// 2-byte application tag, 4-byte reference tag.
package dif

import (
	"encoding/binary"
	"fmt"

	"dsasim/internal/isal"
)

// PISize is the size of the protection information appended to each block.
const PISize = 8

// BlockSize enumerates the data-block sizes DSA supports.
type BlockSize int64

// Supported data block sizes (the protected sizes are BlockSize+PISize:
// 520 and 4104).
const (
	Block512  BlockSize = 512
	Block4096 BlockSize = 4096
)

// Valid reports whether b is a supported block size.
func (b BlockSize) Valid() bool { return b == Block512 || b == Block4096 }

// Protected returns the on-disk block size including PI.
func (b BlockSize) Protected() int64 { return int64(b) + PISize }

// Tags configures PI generation and checking.
type Tags struct {
	// AppTag is the 16-bit application tag written into generated PI.
	AppTag uint16
	// RefTag is the 32-bit reference tag of the first block.
	RefTag uint32
	// IncrementRef makes the reference tag advance by one per block (the
	// common "type 1" protection mode); otherwise it is fixed.
	IncrementRef bool
	// GuardSeed seeds the guard CRC (normally zero).
	GuardSeed uint16
}

func (t Tags) refFor(block int) uint32 {
	if t.IncrementRef {
		return t.RefTag + uint32(block)
	}
	return t.RefTag
}

// PI is one decoded protection-information tuple.
type PI struct {
	Guard  uint16
	AppTag uint16
	RefTag uint32
}

// encodePI writes pi into an 8-byte slice.
func encodePI(dst []byte, pi PI) {
	binary.BigEndian.PutUint16(dst[0:2], pi.Guard)
	binary.BigEndian.PutUint16(dst[2:4], pi.AppTag)
	binary.BigEndian.PutUint32(dst[4:8], pi.RefTag)
}

// decodePI reads an 8-byte PI field.
func decodePI(src []byte) PI {
	return PI{
		Guard:  binary.BigEndian.Uint16(src[0:2]),
		AppTag: binary.BigEndian.Uint16(src[2:4]),
		RefTag: binary.BigEndian.Uint32(src[4:8]),
	}
}

// CheckError describes the first failed PI verification.
type CheckError struct {
	Block int    // index of the failing block
	Field string // "guard", "app", or "ref"
	Want  uint64
	Got   uint64
}

// Error implements error.
func (e *CheckError) Error() string {
	return fmt.Sprintf("dif: block %d %s tag mismatch: got %#x, want %#x", e.Block, e.Field, e.Got, e.Want)
}

// Insert produces protected blocks: for each bs-sized block of src it writes
// the block plus generated PI to dst. dst must be exactly
// len(src)/bs*(bs+8) bytes; src must be a whole number of blocks.
func Insert(dst, src []byte, bs BlockSize, tags Tags) error {
	if !bs.Valid() {
		return fmt.Errorf("dif: unsupported block size %d", bs)
	}
	b := int(bs)
	if len(src)%b != 0 {
		return fmt.Errorf("dif: source length %d not a multiple of block size %d", len(src), b)
	}
	blocks := len(src) / b
	if len(dst) != blocks*(b+PISize) {
		return fmt.Errorf("dif: destination length %d, want %d", len(dst), blocks*(b+PISize))
	}
	for i := 0; i < blocks; i++ {
		data := src[i*b : (i+1)*b]
		out := dst[i*(b+PISize):]
		copy(out, data)
		encodePI(out[b:b+PISize], PI{
			Guard:  isal.CRC16T10DIF(tags.GuardSeed, data),
			AppTag: tags.AppTag,
			RefTag: tags.refFor(i),
		})
	}
	return nil
}

// Check verifies the PI on each protected block of src (length must be a
// whole number of bs+8 blocks). It returns a *CheckError for the first
// mismatch.
func Check(src []byte, bs BlockSize, tags Tags) error {
	if !bs.Valid() {
		return fmt.Errorf("dif: unsupported block size %d", bs)
	}
	pb := int(bs) + PISize
	if len(src)%pb != 0 {
		return fmt.Errorf("dif: source length %d not a multiple of protected size %d", len(src), pb)
	}
	for i := 0; i < len(src)/pb; i++ {
		block := src[i*pb : (i+1)*pb]
		data, pi := block[:bs], decodePI(block[bs:])
		if want := isal.CRC16T10DIF(tags.GuardSeed, data); pi.Guard != want {
			return &CheckError{Block: i, Field: "guard", Want: uint64(want), Got: uint64(pi.Guard)}
		}
		if pi.AppTag != tags.AppTag {
			return &CheckError{Block: i, Field: "app", Want: uint64(tags.AppTag), Got: uint64(pi.AppTag)}
		}
		if want := tags.refFor(i); pi.RefTag != want {
			return &CheckError{Block: i, Field: "ref", Want: uint64(want), Got: uint64(pi.RefTag)}
		}
	}
	return nil
}

// Strip verifies and removes PI: protected blocks in src become raw data
// blocks in dst. dst must be exactly len(src)/(bs+8)*bs bytes.
func Strip(dst, src []byte, bs BlockSize, tags Tags) error {
	if err := Check(src, bs, tags); err != nil {
		return err
	}
	pb := int(bs) + PISize
	blocks := len(src) / pb
	if len(dst) != blocks*int(bs) {
		return fmt.Errorf("dif: destination length %d, want %d", len(dst), blocks*int(bs))
	}
	for i := 0; i < blocks; i++ {
		copy(dst[i*int(bs):], src[i*pb:i*pb+int(bs)])
	}
	return nil
}

// Update verifies src against old tags and rewrites each block's PI with new
// tags into dst (same protected layout). dst and src must be the same length.
func Update(dst, src []byte, bs BlockSize, old, new Tags) error {
	if err := Check(src, bs, old); err != nil {
		return err
	}
	if len(dst) != len(src) {
		return fmt.Errorf("dif: update length mismatch: dst %d, src %d", len(dst), len(src))
	}
	pb := int(bs) + PISize
	for i := 0; i < len(src)/pb; i++ {
		data := src[i*pb : i*pb+int(bs)]
		out := dst[i*pb:]
		copy(out, data)
		encodePI(out[int(bs):int(bs)+PISize], PI{
			Guard:  isal.CRC16T10DIF(new.GuardSeed, data),
			AppTag: new.AppTag,
			RefTag: new.refFor(i),
		})
	}
	return nil
}

// DecodeBlockPI returns the PI of protected block i in src, for inspection
// in tests and tooling.
func DecodeBlockPI(src []byte, bs BlockSize, i int) PI {
	pb := int(bs) + PISize
	return decodePI(src[i*pb+int(bs) : (i+1)*pb])
}
