package offload

import (
	"dsasim/internal/dsa"
)

// Scheduler picks the work queue for one submission. Implementations see
// the submitting tenant's socket and the service's full WQ set; they are
// simulation-domain objects (no locking needed).
//
// The three built-ins ladder up the paper's placement findings: RoundRobin
// is the blind spreading the old per-thread executor did; NUMALocal honors
// Fig 6a (a same-socket device avoids the UPI crossing that roughly halves
// throughput); LeastLoaded honors Figs 4/9 (WQ backlog, not device count,
// bounds completion latency under asymmetric load).
type Scheduler interface {
	// Name identifies the policy in reports and experiment tables.
	Name() string
	// Pick returns the submission target for a tenant on the given socket.
	// wqs is non-empty; Pick must return one of its elements.
	Pick(socket int, wqs []*dsa.WQ) *dsa.WQ
}

// RoundRobin cycles through every WQ regardless of locality or load — the
// legacy executor behavior, kept as the baseline policy.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns the baseline scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(socket int, wqs []*dsa.WQ) *dsa.WQ {
	wq := wqs[r.next%len(wqs)]
	r.next++
	return wq
}

// NUMALocal prefers WQs whose device sits on the submitting tenant's
// socket, round-robining within that set, and falls back to the full set
// (crossing UPI) only when the socket has no local device.
type NUMALocal struct {
	next map[int]int
}

// NewNUMALocal returns the locality-aware scheduler.
func NewNUMALocal() *NUMALocal { return &NUMALocal{next: make(map[int]int)} }

// Name implements Scheduler.
func (s *NUMALocal) Name() string { return "numa-local" }

// Pick implements Scheduler.
func (s *NUMALocal) Pick(socket int, wqs []*dsa.WQ) *dsa.WQ {
	var local []*dsa.WQ
	for _, wq := range wqs {
		if wq.Dev.Cfg.Socket == socket {
			local = append(local, wq)
		}
	}
	if len(local) == 0 {
		local = wqs
	}
	wq := local[s.next[socket]%len(local)]
	s.next[socket]++
	return wq
}

// LeastLoaded picks the WQ with the fewest occupied entries, breaking ties
// round-robin so equal queues still spread. Occupancy counts descriptors
// accepted but not yet dispatched to an engine, so a hogged or slow queue
// is routed around instead of blocking the submitter in the retry loop.
type LeastLoaded struct {
	next int
}

// NewLeastLoaded returns the occupancy-aware scheduler.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Scheduler.
func (s *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Scheduler.
func (s *LeastLoaded) Pick(socket int, wqs []*dsa.WQ) *dsa.WQ {
	s.next++
	best := wqs[s.next%len(wqs)]
	for i := 1; i < len(wqs); i++ {
		wq := wqs[(s.next+i)%len(wqs)]
		if wq.Occupancy() < best.Occupancy() {
			best = wq
		}
	}
	return best
}
