package offload

import (
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
)

// Request describes one hardware submission to the scheduler: the
// submitting tenant's socket, its QoS class, the descriptor payload size
// (zero for batch parents), and — when resolvable — the home nodes of the
// descriptor's source and destination data (G4's placement inputs).
// Schedulers are free to ignore any field.
type Request struct {
	Socket int
	Class  QoSClass
	Size   int64

	// SrcNode and DstNode are the home NUMA nodes of the data the
	// descriptor reads and writes (nil when unknown: unplaced buffers, or
	// operations without that side). Data-aware schedulers route on them.
	SrcNode *mem.Node
	DstNode *mem.Node

	// LoadAware lets a data-aware scheduler trade the data's home for a
	// less backlogged socket when its cost model says the UPI detour is
	// cheaper than the queueing delay (Policy.LoadAware; the service
	// fills it from the submitting tenant's policy).
	LoadAware bool

	// Topo is the service's precomputed WQ placement index. The service
	// fills it on every submission; direct Pick callers may leave it nil,
	// in which case schedulers derive (and allocate) the subsets per call.
	Topo *Topology
}

// localPool returns the WQs local to socket, preferring the precomputed
// index and falling back to a per-call scan when the request carries none.
func (req *Request) localPool(socket int, wqs []*dsa.WQ) []*dsa.WQ {
	if req.Topo != nil {
		return req.Topo.Local(socket)
	}
	return localWQs(socket, wqs)
}

// Scheduler picks the work queue for one submission. Implementations see
// the full request context and the service's WQ set; they are
// simulation-domain objects (no locking needed).
//
// The built-ins ladder up the paper's placement findings: RoundRobin is
// the blind spreading the old per-thread executor did; NUMALocal honors
// Fig 6a (a same-socket device avoids the UPI crossing that roughly halves
// throughput); LeastLoaded honors Figs 4/9 (WQ backlog, not device count,
// bounds completion latency under asymmetric load); PriorityAware adds the
// §3.4 F3 QoS dimension, reserving the highest-priority WQ per socket for
// latency-sensitive tenants (see qos.go); Placement adds the G4 data
// dimension, routing each descriptor to the device local to the data it
// touches rather than to the submitting core (see placement.go).
type Scheduler interface {
	// Name identifies the policy in reports and experiment tables.
	Name() string
	// Pick returns the submission target for the request. wqs is
	// non-empty; Pick must return one of its elements.
	Pick(req Request, wqs []*dsa.WQ) *dsa.WQ
}

// RoundRobin cycles through every WQ regardless of locality or load — the
// legacy executor behavior, kept as the baseline policy.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns the baseline scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(req Request, wqs []*dsa.WQ) *dsa.WQ {
	n := len(wqs)
	i := r.next % n
	// Wrap instead of growing forever: a long simulation would otherwise
	// overflow the counter (and modulo of a negative index panics).
	r.next = (r.next + 1) % n
	// Skip WQs inside a fault window (two atomic loads per probe, no
	// allocation); with everything healthy the pick is the plain rotation.
	for k := 0; k < n; k++ {
		if wq := wqs[(i+k)%n]; wq.Healthy() {
			return wq
		}
	}
	return wqs[i]
}

// NUMALocal prefers WQs whose device sits on the submitting tenant's
// socket, round-robining within that set, and falls back to the full set
// (crossing UPI) only when the socket has no local device.
type NUMALocal struct {
	next map[int]int
}

// NewNUMALocal returns the locality-aware scheduler.
func NewNUMALocal() *NUMALocal { return &NUMALocal{next: make(map[int]int)} }

// Name implements Scheduler.
func (s *NUMALocal) Name() string { return "numa-local" }

// Pick implements Scheduler.
func (s *NUMALocal) Pick(req Request, wqs []*dsa.WQ) *dsa.WQ {
	local := req.localPool(req.Socket, wqs)
	n := len(local)
	i := s.next[req.Socket] % n
	s.next[req.Socket] = (i + 1) % n
	for k := 0; k < n; k++ {
		if wq := local[(i+k)%n]; wq.Healthy() {
			return wq
		}
	}
	// The whole local pool is inside a fault window: crossing UPI to a
	// healthy remote WQ beats submitting into a dead queue.
	for k := 0; k < len(wqs); k++ {
		if wq := wqs[(i+k)%len(wqs)]; wq.Healthy() {
			return wq
		}
	}
	return local[i]
}

// LeastLoaded picks the WQ with the fewest occupied entries, breaking ties
// round-robin so equal queues still spread. Occupancy counts descriptors
// accepted but not yet dispatched to an engine, so a hogged or slow queue
// is routed around instead of blocking the submitter in the retry loop.
type LeastLoaded struct {
	next int
}

// NewLeastLoaded returns the occupancy-aware scheduler.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Scheduler.
func (s *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Scheduler.
func (s *LeastLoaded) Pick(req Request, wqs []*dsa.WQ) *dsa.WQ {
	s.next = (s.next + 1) % len(wqs)
	return leastLoadedOf(wqs, s.next)
}

// localWQs returns the subset of wqs on the given socket, or wqs itself
// when the socket has no local device (the UPI-crossing fallback). It
// allocates; the service hot path uses the Topology cache instead.
func localWQs(socket int, wqs []*dsa.WQ) []*dsa.WQ {
	var local []*dsa.WQ
	for _, wq := range wqs {
		if wq.Dev.Cfg.Socket == socket {
			local = append(local, wq)
		}
	}
	if len(local) == 0 {
		return wqs
	}
	return local
}

// leastLoadedOf returns the healthy WQ with the fewest occupied entries,
// scanning from the rotating offset so ties spread round-robin. When the
// whole pool is inside a fault window it returns the rotation pick — the
// submission fails fast with the WQ's fault sentinel and recovery (or
// the caller) deals with it. The index wraps by comparison, not by a
// modulo per element — this runs on every submission.
func leastLoadedOf(wqs []*dsa.WQ, offset int) *dsa.WQ {
	if wq := leastLoadedHealthy(wqs, offset); wq != nil {
		return wq
	}
	return wqs[offset%len(wqs)]
}

// leastLoadedHealthy is leastLoadedOf restricted to healthy WQs, returning
// nil when the pool is entirely inside a fault window. Allocation-free:
// the health probe is two atomic flag loads per WQ.
func leastLoadedHealthy(wqs []*dsa.WQ, offset int) *dsa.WQ {
	n := len(wqs)
	i := offset % n
	var best *dsa.WQ
	for k := 0; k < n; k++ {
		if wq := wqs[i]; wq.Healthy() && (best == nil || wq.Occupancy() < best.Occupancy()) {
			best = wq
		}
		if i++; i == n {
			i = 0
		}
	}
	return best
}
