package offload

import (
	"fmt"

	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Batch accumulates work descriptors for one explicit batch submission
// (§3.4 F2, guideline G1). Submit returns a Future for the batch parent.
type Batch struct {
	t     *Tenant
	descs []dsa.Descriptor
	flags dsa.Flags
}

// WithFlags ORs extra descriptor flags into the batch submission.
func (b *Batch) WithFlags(f dsa.Flags) *Batch {
	b.flags |= f
	return b
}

// NewBatch starts an empty batch.
func (t *Tenant) NewBatch() *Batch { return &Batch{t: t} }

// Len returns the number of queued descriptors.
func (b *Batch) Len() int { return len(b.descs) }

// Copy appends a copy operation.
func (b *Batch) Copy(dst, src mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpMemmove, Src: src, Dst: dst, Size: n})
	return b
}

// Fill appends a pattern-fill operation.
func (b *Batch) Fill(dst mem.Addr, n int64, pattern uint64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpFill, Dst: dst, Size: n, Pattern: pattern})
	return b
}

// Compare appends a compare operation.
func (b *Batch) Compare(x, y mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpCompare, Src: x, Src2: y, Size: n})
	return b
}

// CRC32 appends a CRC generation operation.
func (b *Batch) CRC32(src mem.Addr, n int64, seed uint32) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpCRCGen, Src: src, Size: n, CRCSeed: seed})
	return b
}

// Dualcast appends a dualcast operation.
func (b *Batch) Dualcast(dst1, dst2, src mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpDualcast, Src: src, Dst: dst1, Dst2: dst2, Size: n})
	return b
}

// DIFInsert appends a DIF insert operation.
func (b *Batch) DIFInsert(dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{
		Op: dsa.OpDIFInsert, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: tags,
	})
	return b
}

// Fence appends a fence: descriptors after it wait for all before it.
func (b *Batch) Fence() *Batch {
	if len(b.descs) > 0 {
		b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpNop, Flags: dsa.FlagFence})
	}
	return b
}

// Submit sends the batch through the scheduler and returns the in-flight
// Future. A batch needs at least two descriptors (device rule);
// single-entry batches are submitted as plain descriptors.
//
// Under a data-aware scheduler (Placement), a batch whose descriptors are
// homed on different sockets is sharded into per-socket sub-batches, each
// submitted to a device local to its slice's data; the returned Future
// joins the sub-batch completions (Wait drains each once, the first error
// wins). When a later sub-batch fails to submit, the Future is still
// returned alongside the error so the already-submitted slices can be
// drained.
func (b *Batch) Submit(p *sim.Proc) (*Future, error) {
	switch len(b.descs) {
	case 0:
		return nil, fmt.Errorf("offload: empty batch")
	case 1:
		b.t.stats.batches.Add(1)
		d := b.descs[0]
		b.descs = nil
		return b.t.submit(p, d, b.flags)
	default:
		descs := b.descs
		b.descs = nil
		// One logical flush costs one admission token, however many
		// per-socket sub-batches placement shards it into: splitting is a
		// placement decision, not extra work, so the same batch must not
		// cost more under Placement than under NUMALocal (a shed flush
		// counts once in Stats.Shed).
		if err := b.t.admit(p); err != nil {
			return nil, err
		}
		groups := b.t.splitByHome(descs, b.flags)
		if groups == nil {
			return b.t.submitSlice(p, descs, b.flags)
		}
		b.t.stats.splits.Add(int64(len(groups)))
		parts := make([]*Future, 0, len(groups))
		for _, idx := range groups {
			sub := make([]dsa.Descriptor, len(idx))
			for j, i := range idx {
				sub[j] = descs[i]
			}
			f, err := b.t.submitSlice(p, sub, b.flags)
			if err != nil {
				parts = append(parts, completed(Result{}, err))
				return joinFutures(parts), err
			}
			parts = append(parts, f)
		}
		return joinFutures(parts), nil
	}
}

// submitSlice submits one run of an already-admitted flush as a batch
// parent (or, for a single descriptor, as a plain submission — the
// device's ≥2 rule).
func (t *Tenant) submitSlice(p *sim.Proc, descs []dsa.Descriptor, flags dsa.Flags) (*Future, error) {
	if len(descs) == 1 {
		// A lone descriptor goes plain and is not a batch descriptor —
		// Stats.Batches counts real parents, matching flushSlice.
		return t.submitAdmitted(p, descs[0], flags)
	}
	t.stats.batches.Add(1)
	f, err := t.submitAdmitted(p, dsa.Descriptor{Op: dsa.OpBatch, Descs: descs}, flags)
	if err == nil {
		// The OpBatch parent carries Size 0; account the payload.
		for _, d := range descs {
			t.stats.hwBytes.Add(d.Size)
		}
	}
	return f, err
}

// splitByHome groups descriptors into per-socket sub-batches by data home
// (Tenant.dataHome), returning index groups in first-seen order, with
// submission order preserved inside each group. Under Policy.LoadAware the
// grouping key is not the raw home but where the scheduler's cost model
// says the descriptor will actually run (loadRouter): a slice homed on a
// saturated socket detours with the rest of the traffic instead of being
// dutifully split out and submitted into the backlog, and slices whose
// routes coincide merge into one sub-batch. It returns nil — submit as
// one batch — when splitting is disabled (Policy.SplitBatches), the active
// scheduler is not data-aware (a blind policy would route every sub-batch
// to the same device, making the split pure parent overhead), the flush
// carries a Fence anywhere (fences order descriptors across the whole
// batch, which independent devices cannot honor), or every descriptor
// shares a target.
//
// flags are the batch-level flags the parent will be submitted with: a
// fence arriving via Batch.WithFlags (or the tenant policy) makes the chain
// exactly as unsplittable as a per-descriptor fence. The fence scan is a
// pure pre-pass, before any load-aware routing: routeSocket folds a sample
// into the placement cost EWMA and moves the hysteresis incumbent, so
// discovering a mid-chain fence only after routing earlier descriptors
// would leave phantom route state behind for a flush that is then never
// split — under a saturated socket those phantom samples can flip the
// detour decision for unrelated traffic.
func (t *Tenant) splitByHome(descs []dsa.Descriptor, flags dsa.Flags) [][]int {
	if !t.policy.SplitBatches || !t.S.dataAware {
		return nil
	}
	if (flags|t.policy.Flags)&dsa.FlagFence != 0 {
		return nil
	}
	for i := range descs {
		if descs[i].Flags&dsa.FlagFence != 0 || descs[i].Op == dsa.OpNop {
			return nil
		}
	}
	var lr loadRouter
	if t.policy.LoadAware {
		lr, _ = t.S.sched.(loadRouter)
	}
	var groups [][]int
	bySocket := make(map[int]int, 2)
	// One logical flush is one routing decision per distinct home: the
	// cost model's EWMA folds one sample per route lookup, so pricing
	// every descriptor individually would compound the smoothing away
	// with flush width (and let the estimate drift mid-scan).
	var routed map[int]int
	for i := range descs {
		d := &descs[i]
		home := t.dataHome(d)
		if lr != nil {
			if routed == nil {
				routed = make(map[int]int, 2)
			}
			r, ok := routed[home]
			if !ok {
				r = lr.routeSocket(t.request(d), home)
				routed[home] = r
			}
			home = r
		}
		g, ok := bySocket[home]
		if !ok {
			g = len(groups)
			bySocket[home] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	if len(groups) < 2 {
		return nil
	}
	return groups
}

// AutoBatcher transparently coalesces sub-threshold Auto-path copies and
// fills into batch descriptors (G1 as policy): each absorbed operation
// immediately returns a pending Future, and the accumulated batch flushes
// once Policy.AutoBatch operations queue — or earlier, when any pending
// Future is waited on or Flush is called. Only operations without result
// values (copy and fill) coalesce; result-producing operations keep their
// own descriptors.
//
// Failure semantics are batch-granular: the device writes one completion
// record for the whole batch, so if any coalesced operation fails, every
// sibling Future resolves with the batch error (conservative — a sibling's
// copy may in fact have completed). Callers that redo on error stay
// correct because coalesced copies and fills are idempotent; the failure
// counts once toward Stats.Failures.
type AutoBatcher struct {
	t       *Tenant
	pending []dsa.Descriptor
	futs    []*Future
}

// Batcher returns the tenant's AutoBatcher, creating it on first use. It
// is functional even when Policy.AutoBatch is zero (explicit Add/Flush);
// the transparent path only engages when the policy enables it.
func (t *Tenant) Batcher() *AutoBatcher {
	if t.batcher == nil {
		t.batcher = &AutoBatcher{t: t}
	}
	return t.batcher
}

// Pending returns the number of queued, unflushed operations.
func (ab *AutoBatcher) Pending() int { return len(ab.pending) }

// add queues one descriptor and returns its pending Future, flushing when
// the policy's batch size is reached.
func (ab *AutoBatcher) add(p *sim.Proc, d dsa.Descriptor) (*Future, error) {
	ab.pending = append(ab.pending, d)
	f := &Future{t: ab.t, op: d.Op, ab: ab, start: p.Now()}
	ab.futs = append(ab.futs, f)
	ab.t.stats.coalesce.Add(1)
	limit := ab.t.policy.AutoBatch
	if devMax := ab.t.S.maxBatch; limit > devMax {
		limit = devMax
	}
	if limit > 0 && len(ab.pending) >= limit {
		if err := ab.Flush(p); err != nil {
			return f, err
		}
	}
	return f, nil
}

// Flush submits the queued operations and binds every pending Future to
// its batch completion. Under a data-aware scheduler a mixed-home flush is
// sharded into per-socket sub-batches (see Batch.Submit); each sub-batch's
// futures share one completion, so the wait cost is paid once per
// sub-batch and a failure resolves only that sub-batch's siblings. On a
// submission failure the affected futures resolve with the error, the
// remaining sub-batches are still submitted, and the first error is
// returned.
func (ab *AutoBatcher) Flush(p *sim.Proc) error {
	if len(ab.pending) == 0 {
		return nil
	}
	descs := ab.pending
	futs := ab.futs
	ab.pending = nil
	ab.futs = nil

	// As in Batch.Submit, the whole logical flush is admitted once; a
	// shed flush resolves every coalesced future with the error.
	if err := ab.t.admit(p); err != nil {
		for _, f := range futs {
			f.ab = nil
			f.done = true
			f.err = err
		}
		return err
	}
	groups := ab.t.splitByHome(descs, 0)
	if groups == nil {
		return ab.flushSlice(p, descs, futs)
	}
	ab.t.stats.splits.Add(int64(len(groups)))
	var firstErr error
	for _, idx := range groups {
		sub := make([]dsa.Descriptor, len(idx))
		subFuts := make([]*Future, len(idx))
		for j, i := range idx {
			sub[j], subFuts[j] = descs[i], futs[i]
		}
		if err := ab.flushSlice(p, sub, subFuts); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// flushSlice submits one run of an already-admitted flush as a batch (or
// a plain descriptor when alone) and binds its pending futures to the
// completion through a shared batchWait. On submission failure the slice's
// futures resolve with the error.
func (ab *AutoBatcher) flushSlice(p *sim.Proc, descs []dsa.Descriptor, futs []*Future) error {
	var parent *Future
	var err error
	if len(descs) == 1 {
		parent, err = ab.t.submitAdmitted(p, descs[0], 0)
	} else {
		ab.t.stats.batches.Add(1)
		parent, err = ab.t.submitAdmitted(p, dsa.Descriptor{Op: dsa.OpBatch, Descs: descs}, 0)
	}
	if err != nil {
		for _, f := range futs {
			f.ab = nil
			f.done = true
			f.err = err
		}
		return err
	}
	if len(descs) > 1 {
		// The OpBatch parent carries Size 0; account the coalesced
		// payload (a single-descriptor flush was counted by submit).
		for _, d := range descs {
			ab.t.stats.hwBytes.Add(d.Size)
		}
	}
	shared := &batchWait{}
	for _, f := range futs {
		f.ab = nil
		f.cl = parent.cl
		f.comp = parent.comp
		f.sharedWait = shared
	}
	return nil
}
