package offload

import (
	"fmt"

	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Batch accumulates work descriptors for one explicit batch submission
// (§3.4 F2, guideline G1). Submit returns a Future for the batch parent.
type Batch struct {
	t     *Tenant
	descs []dsa.Descriptor
	flags dsa.Flags
}

// WithFlags ORs extra descriptor flags into the batch submission.
func (b *Batch) WithFlags(f dsa.Flags) *Batch {
	b.flags |= f
	return b
}

// NewBatch starts an empty batch.
func (t *Tenant) NewBatch() *Batch { return &Batch{t: t} }

// Len returns the number of queued descriptors.
func (b *Batch) Len() int { return len(b.descs) }

// Copy appends a copy operation.
func (b *Batch) Copy(dst, src mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpMemmove, Src: src, Dst: dst, Size: n})
	return b
}

// Fill appends a pattern-fill operation.
func (b *Batch) Fill(dst mem.Addr, n int64, pattern uint64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpFill, Dst: dst, Size: n, Pattern: pattern})
	return b
}

// Compare appends a compare operation.
func (b *Batch) Compare(x, y mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpCompare, Src: x, Src2: y, Size: n})
	return b
}

// CRC32 appends a CRC generation operation.
func (b *Batch) CRC32(src mem.Addr, n int64, seed uint32) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpCRCGen, Src: src, Size: n, CRCSeed: seed})
	return b
}

// Dualcast appends a dualcast operation.
func (b *Batch) Dualcast(dst1, dst2, src mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpDualcast, Src: src, Dst: dst1, Dst2: dst2, Size: n})
	return b
}

// DIFInsert appends a DIF insert operation.
func (b *Batch) DIFInsert(dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{
		Op: dsa.OpDIFInsert, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: tags,
	})
	return b
}

// Fence appends a fence: descriptors after it wait for all before it.
func (b *Batch) Fence() *Batch {
	if len(b.descs) > 0 {
		b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpNop, Flags: dsa.FlagFence})
	}
	return b
}

// Submit sends the batch through the scheduler and returns the in-flight
// Future. A batch needs at least two descriptors (device rule);
// single-entry batches are submitted as plain descriptors.
func (b *Batch) Submit(p *sim.Proc) (*Future, error) {
	switch len(b.descs) {
	case 0:
		return nil, fmt.Errorf("offload: empty batch")
	case 1:
		b.t.stats.Batches++
		d := b.descs[0]
		b.descs = nil
		return b.t.submit(p, d, b.flags)
	default:
		b.t.stats.Batches++
		descs := b.descs
		b.descs = nil
		f, err := b.t.submit(p, dsa.Descriptor{Op: dsa.OpBatch, Descs: descs}, b.flags)
		if err == nil {
			// The OpBatch parent carries Size 0; account the payload.
			for _, d := range descs {
				b.t.stats.HWBytes += d.Size
			}
		}
		return f, err
	}
}

// AutoBatcher transparently coalesces sub-threshold Auto-path copies and
// fills into batch descriptors (G1 as policy): each absorbed operation
// immediately returns a pending Future, and the accumulated batch flushes
// once Policy.AutoBatch operations queue — or earlier, when any pending
// Future is waited on or Flush is called. Only operations without result
// values (copy and fill) coalesce; result-producing operations keep their
// own descriptors.
//
// Failure semantics are batch-granular: the device writes one completion
// record for the whole batch, so if any coalesced operation fails, every
// sibling Future resolves with the batch error (conservative — a sibling's
// copy may in fact have completed). Callers that redo on error stay
// correct because coalesced copies and fills are idempotent; the failure
// counts once toward Stats.Failures.
type AutoBatcher struct {
	t       *Tenant
	pending []dsa.Descriptor
	futs    []*Future
}

// Batcher returns the tenant's AutoBatcher, creating it on first use. It
// is functional even when Policy.AutoBatch is zero (explicit Add/Flush);
// the transparent path only engages when the policy enables it.
func (t *Tenant) Batcher() *AutoBatcher {
	if t.batcher == nil {
		t.batcher = &AutoBatcher{t: t}
	}
	return t.batcher
}

// Pending returns the number of queued, unflushed operations.
func (ab *AutoBatcher) Pending() int { return len(ab.pending) }

// add queues one descriptor and returns its pending Future, flushing when
// the policy's batch size is reached.
func (ab *AutoBatcher) add(p *sim.Proc, d dsa.Descriptor) (*Future, error) {
	ab.pending = append(ab.pending, d)
	f := &Future{t: ab.t, op: d.Op, ab: ab, start: p.Now()}
	ab.futs = append(ab.futs, f)
	ab.t.stats.Coalesce++
	limit := ab.t.policy.AutoBatch
	if devMax := ab.t.S.maxBatch; limit > devMax {
		limit = devMax
	}
	if limit > 0 && len(ab.pending) >= limit {
		if err := ab.Flush(p); err != nil {
			return f, err
		}
	}
	return f, nil
}

// Flush submits the queued operations as one batch descriptor and binds
// every pending Future to the batch completion. On submission failure all
// pending Futures resolve with the error.
func (ab *AutoBatcher) Flush(p *sim.Proc) error {
	if len(ab.pending) == 0 {
		return nil
	}
	descs := ab.pending
	futs := ab.futs
	ab.pending = nil
	ab.futs = nil

	var parent *Future
	var err error
	if len(descs) == 1 {
		parent, err = ab.t.submit(p, descs[0], 0)
	} else {
		ab.t.stats.Batches++
		parent, err = ab.t.submit(p, dsa.Descriptor{Op: dsa.OpBatch, Descs: descs}, 0)
	}
	if err != nil {
		for _, f := range futs {
			f.ab = nil
			f.done = true
			f.err = err
		}
		return err
	}
	if len(descs) > 1 {
		// The OpBatch parent carries Size 0; account the coalesced
		// payload (a single-descriptor flush was counted by submit).
		for _, d := range descs {
			ab.t.stats.HWBytes += d.Size
		}
	}
	shared := &batchWait{}
	for _, f := range futs {
		f.ab = nil
		f.cl = parent.cl
		f.comp = parent.comp
		f.sharedWait = shared
	}
	return nil
}
