package offload_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// planeRig builds a service plus one plane-backed tenant over the rig's
// WQs. wqcfg defaults to the rig's (one 32-entry dedicated WQ/device).
func planeRig(t *testing.T, sockets, lanes int, class offload.QoSClass, wqcfg ...dsa.WQConfig) (*rig, *offload.Tenant, *offload.Plane) {
	t.Helper()
	r := newRig(t, sockets, wqcfg...)
	svc := r.service(t)
	tn, err := svc.NewTenant(offload.WithClass(class))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tn.NewPlane(lanes)
	if err != nil {
		t.Fatal(err)
	}
	return r, tn, pl
}

func TestPlaneOnePerWQSet(t *testing.T) {
	r, tn, _ := planeRig(t, 1, 2, offload.Bulk)
	if _, err := tn.NewPlane(2); err == nil {
		t.Fatal("second plane on one tenant did not fail")
	}
	svc2, err := offload.NewService(r.e, r.sys, r.wqs())
	if err != nil {
		t.Fatal(err)
	}
	tn2, err := svc2.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn2.NewPlane(2); err == nil {
		t.Fatal("plane over already-ringed WQs did not fail")
	}
	if _, err := tn2.NewPlane(0); err == nil {
		t.Fatal("zero-lane plane did not fail")
	}
}

// TestPlaneQoSCandidates checks the lanes honor the same express/rest
// reservation the PriorityAware Pick path applies: a latency-sensitive
// tenant's pushes land only on the top-priority WQ rings, a bulk
// tenant's only on the rest.
func TestPlaneQoSCandidates(t *testing.T) {
	cfg := []dsa.WQConfig{
		{Mode: dsa.Shared, Size: 32, Priority: 10},
		{Mode: dsa.Shared, Size: 32, Priority: 1},
	}
	for _, tc := range []struct {
		class   offload.QoSClass
		wantPri int
	}{
		{offload.LatencySensitive, 10},
		{offload.Bulk, 1},
	} {
		_, _, pl := planeRig(t, 1, 2, tc.class, cfg...)
		lane := pl.Lane(0)
		for i := 0; i < 8; i++ {
			if err := lane.TrySubmit(0, dsa.Descriptor{Op: dsa.OpMemmove, Size: 4096}); err != nil {
				t.Fatal(err)
			}
		}
		for _, wq := range pl.WQs() {
			got := wq.Ring().Len()
			if wq.Priority == tc.wantPri && got != 8 {
				t.Errorf("%v: priority-%d ring holds %d entries, want 8", tc.class, wq.Priority, got)
			}
			if wq.Priority != tc.wantPri && got != 0 {
				t.Errorf("%v: priority-%d ring holds %d entries, want 0", tc.class, wq.Priority, got)
			}
		}
	}
}

// TestPlaneRoutingLeastLoaded checks the snapshot+backlog routing: with
// one ring pre-loaded, new submissions spread to the emptier rings.
func TestPlaneRoutingLeastLoaded(t *testing.T) {
	cfg := []dsa.WQConfig{
		{Mode: dsa.Shared, Size: 32},
		{Mode: dsa.Shared, Size: 32},
	}
	_, _, pl := planeRig(t, 1, 1, offload.Bulk, cfg...)
	wqs := pl.WQs()
	// Pre-load ring 0 out of band, as a sibling lane's burst would.
	for i := 0; i < 6; i++ {
		if !wqs[0].Ring().TryPush(dsa.Descriptor{Op: dsa.OpNop}, 0) {
			t.Fatal("pre-load push failed")
		}
	}
	lane := pl.Lane(0)
	for i := 0; i < 6; i++ {
		if err := lane.TrySubmit(0, dsa.Descriptor{Op: dsa.OpMemmove, Size: 4096}); err != nil {
			t.Fatal(err)
		}
	}
	if got := wqs[1].Ring().Len(); got != 6 {
		t.Errorf("ring 1 holds %d entries, want all 6 routed around the backlog", got)
	}
}

// TestPlaneAdmissionShards checks each lane's bucket is an independent
// shard of the tenant rate: every lane admits its burst share, then
// sheds, without any lane stealing a sibling's tokens.
func TestPlaneAdmissionShards(t *testing.T) {
	_, tn, pl := planeRig(t, 1, 4, offload.Bulk)
	pol := tn.Policy()
	pol.AdmitRate = 1000 // ~1 token/ms: nothing re-accrues within the test
	pol.AdmitBurst = 4   // one per lane
	tn.SetPolicy(pol)
	d := dsa.Descriptor{Op: dsa.OpMemmove, Size: 4096}
	for i := 0; i < pl.Lanes(); i++ {
		if err := pl.Lane(i).TrySubmit(0, d); err != nil {
			t.Fatalf("lane %d burst submission shed: %v", i, err)
		}
	}
	for i := 0; i < pl.Lanes(); i++ {
		if err := pl.Lane(i).TrySubmit(0, d); !errors.Is(err, offload.ErrAdmission) {
			t.Fatalf("lane %d over-burst submission err = %v, want ErrAdmission", i, err)
		}
	}
	if s := tn.Stats(); s.HWOps != 4 || s.Shed != 4 {
		t.Errorf("stats = %d admitted / %d shed, want 4/4", s.HWOps, s.Shed)
	}
}

// TestPlaneSimSubmitCompletes drives the full simulation path: N procs
// each own a lane, submit copies through it, and barrier on
// WaitInflight(0); every descriptor must reach a WQ, complete, and be
// accounted, with the drain exiting cleanly (Engine.Run returning).
func TestPlaneSimSubmitCompletes(t *testing.T) {
	const lanes, perLane = 8, 25
	r, tn, pl := planeRig(t, 2, lanes, offload.Bulk,
		dsa.WQConfig{Mode: dsa.Shared, Size: 32})
	src := tn.Alloc(4096)
	dst := tn.Alloc(4096)
	d := dsa.Descriptor{Op: dsa.OpMemmove, Src: src.Addr(0), Dst: dst.Addr(0), Size: 4096}
	for i := 0; i < lanes; i++ {
		lane := pl.Lane(i)
		r.e.Go("submitter", func(p *sim.Proc) {
			for j := 0; j < perLane; j++ {
				if err := lane.Submit(p, d); err != nil {
					t.Error(err)
					return
				}
			}
			pl.WaitInflight(p, 0)
		})
	}
	r.e.Run()
	if pl.Pending() != 0 || pl.Inflight() != 0 {
		t.Fatalf("after run: pending %d inflight %d, want 0/0", pl.Pending(), pl.Inflight())
	}
	var submitted int64
	for _, wq := range pl.WQs() {
		submitted += wq.Submitted()
	}
	if submitted != lanes*perLane {
		t.Errorf("WQs accepted %d descriptors, want %d", submitted, lanes*perLane)
	}
	if s := tn.Stats(); s.HWOps != lanes*perLane || s.HWBytes != lanes*perLane*4096 {
		t.Errorf("stats = %d ops / %d bytes, want %d / %d",
			s.HWOps, s.HWBytes, lanes*perLane, lanes*perLane*4096)
	}
}

// TestSubmitZeroAllocsParallel is the satellite alloc gate: the host
// fast path must stay allocation-free under parallel submitters, the
// property that makes 64-goroutine scaling possible at all.
func TestSubmitZeroAllocsParallel(t *testing.T) {
	_, _, pl := planeRig(t, 1, 64, offload.Bulk,
		dsa.WQConfig{Mode: dsa.Shared, Size: 128})
	d := dsa.Descriptor{Op: dsa.OpMemmove, Size: 4096}
	var next atomic.Int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			lane := pl.Lane(int(next.Add(1)-1) % pl.Lanes())
			var now sim.Time
			for pb.Next() {
				now += 100
				// A full ring sheds with a sentinel error — still
				// allocation-free, so saturation cannot mask a leak.
				_ = lane.TrySubmit(now, d)
			}
		})
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("Lane.TrySubmit allocates %d times per op under RunParallel, want 0", allocs)
	}
}
