package offload

import (
	"fmt"

	"dsasim/internal/dsa"
	"dsasim/internal/sim"
	"dsasim/internal/telemetry"
)

// metrics is the service's telemetry plane: the dsa.Probe that feeds raw
// device events into one telemetry.Hub, and the typed views every adaptive
// policy reads back out. It replaces the per-WQ occupancy/latency EWMAs
// that used to live inside internal/dsa — the device now only reports
// events, and all smoothing, windowing, and drift detection happen here,
// keyed per WQ, per socket, and per tenant.
//
// Recording is shard-local: the device plane (occupancy transitions, WQ
// and socket completion latencies) writes through one shard, and each
// tenant's completion/inter-arrival streams write through the tenant's
// own shard. Views call sync() first, which drains every shard and
// rotates windows up to the current virtual instant — the pull half of
// the record-locally/merge-periodically design.
type metrics struct {
	e   *sim.Engine
	hub *telemetry.Hub
	dev *telemetry.Shard

	wq   map[*dsa.WQ]wqStreams
	sock []telemetry.ID // per-socket completion-latency streams
	ten  map[int]*tenantStreams

	// Service-wide fault-recovery event streams (one count per event, so
	// the digests' windowed rates are faults/retries/fallbacks/failovers
	// per second): the observability half of the failure plane.
	faultID    telemetry.ID
	retryID    telemetry.ID
	fallbackID telemetry.ID
	failoverID telemetry.ID
}

// wqStreams are one work queue's device-plane streams.
type wqStreams struct {
	occ telemetry.ID // occupancy, in per-mille of the WQ size
	lat telemetry.ID // submit→finish completion latency, ns
}

// tenantStreams are one tenant's completion streams, recorded through the
// tenant's own shard.
type tenantStreams struct {
	lat    telemetry.ID // completion latency, ns
	iat    telemetry.ID // completion inter-arrival gap, ns
	shard  *telemetry.Shard
	lastAt sim.Time
	seen   bool
}

func newMetrics(e *sim.Engine) *metrics {
	h := telemetry.NewHub(telemetry.DefaultWindow)
	return &metrics{
		e:          e,
		hub:        h,
		dev:        h.NewShard(),
		wq:         make(map[*dsa.WQ]wqStreams),
		ten:        make(map[int]*tenantStreams),
		faultID:    h.Stream("service.faults"),
		retryID:    h.Stream("service.retries"),
		fallbackID: h.Stream("service.fallbacks"),
		failoverID: h.Stream("service.failovers"),
	}
}

// Fault-recovery event hooks. All run engine-side (device completion
// events, the plane drain, Future recovery), so the shared dev shard is
// safe to record through.
func (m *metrics) fault()    { m.dev.Record(m.faultID, m.e.Now(), 1) }
func (m *metrics) retry()    { m.dev.Record(m.retryID, m.e.Now(), 1) }
func (m *metrics) fallback() { m.dev.Record(m.fallbackID, m.e.Now(), 1) }
func (m *metrics) failover() { m.dev.Record(m.failoverID, m.e.Now(), 1) }

// observe registers streams for newly added WQs (and their sockets) and
// installs the probe on their devices. Idempotent per WQ, so hot-plugged
// additions extend the plane without disturbing existing streams.
func (m *metrics) observe(wqs []*dsa.WQ) {
	for _, wq := range wqs {
		if _, ok := m.wq[wq]; ok {
			continue
		}
		sock := wq.Dev.Cfg.Socket
		for len(m.sock) <= sock {
			m.sock = append(m.sock, m.hub.Stream(fmt.Sprintf("socket%d.lat", len(m.sock))))
		}
		name := fmt.Sprintf("%s.wq%d", wq.Dev.Cfg.Name, wq.ID)
		m.wq[wq] = wqStreams{
			occ: m.hub.Stream(name + ".occ"),
			lat: m.hub.Stream(name + ".lat"),
		}
		wq.Dev.SetProbe(m)
	}
}

// tenant returns the streams registered for a PASID, creating them (and
// the tenant's shard) on first use.
func (m *metrics) tenant(pasid int) *tenantStreams {
	ts, ok := m.ten[pasid]
	if !ok {
		name := fmt.Sprintf("pasid%d", pasid)
		ts = &tenantStreams{
			lat:   m.hub.Stream(name + ".lat"),
			iat:   m.hub.Stream(name + ".iat"),
			shard: m.hub.NewShard(),
		}
		m.ten[pasid] = ts
	}
	return ts
}

// WQOccupancy implements dsa.Probe.
func (m *metrics) WQOccupancy(wq *dsa.WQ, at sim.Time, occupied, size int) {
	s, ok := m.wq[wq]
	if !ok {
		return
	}
	m.dev.Record(s.occ, at, int64(occupied)*1000/int64(size))
}

// Completed implements dsa.Probe.
func (m *metrics) Completed(wq *dsa.WQ, at sim.Time, pasid int, lat sim.Time) {
	s, ok := m.wq[wq]
	if !ok {
		return
	}
	if lat > 0 {
		m.dev.Record(s.lat, at, int64(lat))
		m.dev.Record(m.sock[wq.Dev.Cfg.Socket], at, int64(lat))
	}
	if ts := m.ten[pasid]; ts != nil {
		if lat > 0 {
			ts.shard.Record(ts.lat, at, int64(lat))
		}
		if ts.seen {
			ts.shard.Record(ts.iat, at, int64(at-ts.lastAt))
		}
		ts.seen, ts.lastAt = true, at
	}
}

// sync drains the shards and rotates windows up to now. Policy views call
// it before reading; the underlying digests make repeated syncs at one
// instant cheap, so callers need no extra memoization.
func (m *metrics) sync() { m.hub.Sync(m.e.Now()) }

// occEWMA returns the WQ's smoothed occupancy fraction in [0,1] — the
// same 1/8-per-event signal the device-local history used to expose.
func (m *metrics) occEWMA(wq *dsa.WQ) float64 {
	s, ok := m.wq[wq]
	if !ok {
		return 0
	}
	return m.hub.Digest(s.occ).EWMA() / 1000
}

// latEWMA returns the WQ's smoothed completion latency (0 until the first
// completion).
func (m *metrics) latEWMA(wq *dsa.WQ) sim.Time {
	s, ok := m.wq[wq]
	if !ok {
		return 0
	}
	return sim.Time(m.hub.Digest(s.lat).EWMA())
}

// tenantGap returns the tenant's recent completion inter-arrival gap (the
// live ring's mean; 0 until two completions have been observed) — the
// signal adaptive coalescing sizes its windows from.
func (m *metrics) tenantGap(pasid int) sim.Time {
	ts, ok := m.ten[pasid]
	if !ok {
		return 0
	}
	m.sync()
	return sim.Time(m.hub.Digest(ts.iat).RecentMean(m.e.Now()))
}

// tenantDrifts returns the regime shifts flagged on one tenant's
// completion streams.
func (m *metrics) tenantDrifts(pasid int) int64 {
	ts, ok := m.ten[pasid]
	if !ok {
		return 0
	}
	m.sync()
	return m.hub.Digest(ts.lat).Drifts() + m.hub.Digest(ts.iat).Drifts()
}

// drifts totals the regime shifts flagged across the per-socket latency
// streams and every tenant's completion streams.
func (m *metrics) drifts() int64 {
	m.sync()
	var n int64
	for _, id := range m.sock {
		n += m.hub.Digest(id).Drifts()
	}
	for _, ts := range m.ten {
		n += m.hub.Digest(ts.lat).Drifts()
		n += m.hub.Digest(ts.iat).Drifts()
	}
	return n
}
