package offload_test

import (
	"errors"
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// TestPriorityAwareSteering drives the QoS scheduler through every
// partition shape: a reserved express WQ per socket, uniform priorities
// (nothing to reserve), a remote socket with no local device, and a
// single-WQ device. anyPrio/anySocket (-1) relax the assertion.
func TestPriorityAwareSteering(t *testing.T) {
	const (
		anyPrio   = -1
		anySocket = -1
	)
	reserved := []dsa.WQConfig{
		{Mode: dsa.Shared, Size: 8, Priority: 15},
		{Mode: dsa.Shared, Size: 24, Priority: 5},
	}
	uniform := []dsa.WQConfig{
		{Mode: dsa.Shared, Size: 16, Priority: 5},
		{Mode: dsa.Shared, Size: 16, Priority: 5},
	}
	single := []dsa.WQConfig{{Mode: dsa.Shared, Size: 8, Priority: 15}}

	cases := []struct {
		name       string
		sockets    int
		wqcfg      []dsa.WQConfig
		class      offload.QoSClass
		socket     int
		wantPrio   int
		wantSocket int
	}{
		{"latency-sensitive gets the socket-0 express WQ", 2, reserved, offload.LatencySensitive, 0, 15, 0},
		{"latency-sensitive gets the socket-1 express WQ", 2, reserved, offload.LatencySensitive, 1, 15, 1},
		{"bulk steers to the non-reserved WQ", 2, reserved, offload.Bulk, 0, 5, 0},
		{"bulk on a device-less socket falls back across UPI", 2, reserved, offload.Bulk, 5, 5, anySocket},
		{"latency-sensitive on a device-less socket falls back across UPI", 2, reserved, offload.LatencySensitive, 5, 15, anySocket},
		{"uniform priorities: latency-sensitive shares the pool", 1, uniform, offload.LatencySensitive, 0, 5, 0},
		{"uniform priorities: bulk shares the pool", 1, uniform, offload.Bulk, 0, 5, 0},
		{"single WQ serves both classes", 1, single, offload.LatencySensitive, 0, 15, 0},
		{"single WQ serves bulk too (no starvation)", 1, single, offload.Bulk, 0, 15, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, tc.sockets, tc.wqcfg...)
			wqs := r.wqs()
			s := offload.NewPriorityAware()
			for i := 0; i < 8; i++ {
				got := s.Pick(offload.Request{Socket: tc.socket, Class: tc.class}, wqs)
				if got == nil {
					t.Fatalf("pick %d returned nil", i)
				}
				if tc.wantPrio != anyPrio && got.Priority != tc.wantPrio {
					t.Fatalf("pick %d landed on priority %d, want %d", i, got.Priority, tc.wantPrio)
				}
				if tc.wantSocket != anySocket && got.Dev.Cfg.Socket != tc.wantSocket {
					t.Fatalf("pick %d landed on socket %d, want %d", i, got.Dev.Cfg.Socket, tc.wantSocket)
				}
			}
		})
	}
}

// An all-bulk workload on a QoS rig must leave the reserved WQ untouched:
// the express lane stays empty for a latency-sensitive arrival.
func TestPriorityAwareAllBulkLeavesExpressIdle(t *testing.T) {
	r := newRig(t, 1,
		dsa.WQConfig{Mode: dsa.Shared, Size: 8, Priority: 15},
		dsa.WQConfig{Mode: dsa.Shared, Size: 24, Priority: 5})
	svc := r.service(t, offload.WithScheduler(offload.NewPriorityAware()))
	tn, err := svc.NewTenant() // default class is Bulk
	if err != nil {
		t.Fatal(err)
	}
	if tn.Class() != offload.Bulk {
		t.Fatalf("default tenant class = %v, want bulk", tn.Class())
	}
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
		}
	})
	var express, rest *dsa.WQ
	for _, wq := range r.wqs() {
		if wq.Priority == 15 {
			express = wq
		} else {
			rest = wq
		}
	}
	if express.Submitted() != 0 {
		t.Errorf("bulk traffic occupied the reserved WQ: %d descriptors", express.Submitted())
	}
	if rest.Submitted() != 16 {
		t.Errorf("bulk WQ saw %d descriptors, want 16", rest.Submitted())
	}
}

// admissionRig builds a single-device service whose tenant runs under the
// given admission policy fields.
func admissionRig(t *testing.T, rate float64, burst int, wait bool) (*rig, *offload.Tenant) {
	t.Helper()
	r := newRig(t, 1)
	pol := offload.DefaultPolicy()
	pol.AdmitRate = rate
	pol.AdmitBurst = burst
	pol.AdmitWait = wait
	svc := r.service(t, offload.WithPolicy(pol))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	return r, tn
}

func TestAdmissionZeroRateIsUnlimited(t *testing.T) {
	r, tn := admissionRig(t, 0, 0, false)
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Fatalf("op %d rejected with zero admission rate: %v", i, err)
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Fatal(err)
			}
		}
	})
	if st := tn.Stats(); st.Shed != 0 || st.Delayed != 0 {
		t.Fatalf("zero-rate policy touched the bucket: %+v", st)
	}
}

func TestAdmissionBurstExhaustionSurfacesErrAdmission(t *testing.T) {
	r, tn := admissionRig(t, 1000, 2, false) // 1 token/ms, 2 back-to-back
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware)); err != nil {
				t.Fatalf("burst op %d rejected: %v", i, err)
			}
		}
		_, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err == nil {
			t.Fatal("third back-to-back op admitted past a burst of 2")
		}
		if !errors.Is(err, offload.ErrAdmission) {
			t.Fatalf("error %v does not wrap ErrAdmission", err)
		}
		// A token accrues with virtual time: ~1 ms at 1000 ops/s.
		p.Sleep(2 * time.Millisecond)
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware)); err != nil {
			t.Fatalf("op after refill interval rejected: %v", err)
		}
	})
	if st := tn.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1 (stats: %+v)", st.Shed, st)
	}
}

func TestAdmissionWaitDelaysInsteadOfShedding(t *testing.T) {
	r, tn := admissionRig(t, 1000, 1, true)
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware)); err != nil {
			t.Fatal(err)
		}
		before := p.Now()
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware)); err != nil {
			t.Fatalf("AdmitWait surfaced an error: %v", err)
		}
		if waited := p.Now() - before; waited < 500*time.Microsecond {
			t.Fatalf("second op delayed only %v, want ~1ms token accrual", waited)
		}
	})
	st := tn.Stats()
	if st.Delayed != 1 || st.Shed != 0 {
		t.Fatalf("stats = %+v, want exactly one delayed, none shed", st)
	}
}

// The adaptive threshold (G2 made dynamic): an idle device accepts
// operations below the static 4 KB floor, and a saturated one sheds an
// above-floor operation to the core.
func TestAdaptiveThresholdTracksDevicePressure(t *testing.T) {
	r := newRig(t, 1)
	pol := offload.DefaultPolicy()
	pol.AdaptiveThreshold = true
	svc := r.service(t, offload.WithPolicy(pol))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	small := int64(3 << 10) // between base/2 and base
	mid := int64(16 << 10)  // above base, below the saturated threshold
	big := int64(1 << 20)
	src, dst := tn.Alloc(big), tn.Alloc(big)
	r.run(func(p *sim.Proc) {
		if eff := tn.EffectiveThreshold(); eff >= 4096 {
			t.Errorf("idle effective threshold = %d, want below the 4096 base", eff)
		}
		f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), small)
		if err != nil {
			t.Fatal(err)
		}
		if res, _ := f.Wait(p, offload.Poll); !res.Hardware {
			t.Error("idle device should accept a 3KB Auto op on hardware (lowered threshold)")
		}

		// Saturate the 32-entry WQ with megabyte copies.
		var futs []*offload.Future
		for i := 0; i < 30; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), big, offload.On(offload.Hardware))
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		if eff := tn.EffectiveThreshold(); eff <= 4096 {
			t.Errorf("saturated effective threshold = %d, want above the 4096 base", eff)
		}
		f2, err := tn.Copy(p, dst.Addr(0), src.Addr(0), mid)
		if err != nil {
			t.Fatal(err)
		}
		if res, _ := f2.Wait(p, offload.Poll); res.Hardware {
			t.Error("16KB Auto op should shed to the core while the WQ is saturated")
		}
		for _, f := range futs {
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
		}

		// Recovery: once the backlog drains, the latency history alone
		// must not pin the threshold high — the device is idle again and
		// small operations offload again.
		if eff := tn.EffectiveThreshold(); eff > 4096 {
			t.Errorf("drained effective threshold = %d, want back at or below the 4096 base", eff)
		}
		f3, err := tn.Copy(p, dst.Addr(0), src.Addr(0), mid)
		if err != nil {
			t.Fatal(err)
		}
		if res, _ := f3.Wait(p, offload.Poll); !res.Hardware {
			t.Error("16KB Auto op should offload again after the backlog drains")
		}
	})
	st := tn.Stats()
	if st.SWOps == 0 {
		t.Fatalf("no operation was shed to the core: %+v", st)
	}
}

// occupy queues descriptors on a WQ without running the engine, building
// instantaneous occupancy the pressure estimators must see.
func occupy(t *testing.T, wq *dsa.WQ, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := wq.Submit(dsa.Descriptor{Op: dsa.OpNop}); err != nil {
			t.Fatal(err)
		}
	}
}

// Per-socket pressure must diverge under uneven load: with only the
// socket-0 device backlogged, SocketPressure(0) sits above the aggregate
// Pressure(), which in turn sits above the idle socket's estimate.
func TestSocketPressureDivergesUnderSkew(t *testing.T) {
	r := newRig(t, 2)
	svc := r.service(t)
	occupy(t, r.devs[0].WQs()[0], 16) // half-fill socket 0's 32-entry WQ
	p0 := svc.SocketPressure(0)
	p1 := svc.SocketPressure(1)
	agg := svc.Pressure()
	if !(p0 > agg && agg > p1) {
		t.Fatalf("skewed pressure not ordered: socket0 %.3f, aggregate %.3f, socket1 %.3f", p0, agg, p1)
	}
	if p1 != 0 {
		t.Fatalf("idle socket pressure = %.3f, want 0", p1)
	}
}

// Under uniform load every socket's estimate converges to the aggregate.
func TestSocketPressureConvergesUnderUniformLoad(t *testing.T) {
	r := newRig(t, 2)
	svc := r.service(t)
	occupy(t, r.devs[0].WQs()[0], 12)
	occupy(t, r.devs[1].WQs()[0], 12)
	p0 := svc.SocketPressure(0)
	p1 := svc.SocketPressure(1)
	agg := svc.Pressure()
	if p0 != p1 || p0 != agg {
		t.Fatalf("uniform pressure diverged: socket0 %.3f, socket1 %.3f, aggregate %.3f", p0, p1, agg)
	}
	if p0 == 0 {
		t.Fatal("uniform backlog reported zero pressure")
	}
	// A socket with no local device reports the aggregate: its traffic
	// falls back to the full WQ set.
	if got := svc.SocketPressure(7); got != agg {
		t.Fatalf("device-less socket pressure = %.3f, want aggregate %.3f", got, agg)
	}
}
