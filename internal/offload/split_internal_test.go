package offload

import (
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Regression (in-package: the asserted state is unexported): splitByHome's
// fence check must run as a pure pre-pass BEFORE any load-aware routing.
// The old scan routed descriptors as it walked — each routeSocket call
// folds a queueing-delay sample into the Placement cost EWMA and installs a
// hysteresis incumbent — and only bailed on reaching the fence, leaving
// phantom route state behind for a flush that was then submitted unsplit.
// Under a saturated socket those phantom samples could flip the detour
// decision for unrelated traffic.
func TestSplitByHomeFencePrePassLeavesRoutingUntouched(t *testing.T) {
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	var wqs []*dsa.WQ
	for s := 0; s < 2; s++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", s))
		if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}}); err != nil {
			t.Fatal(err)
		}
		if err := dev.Enable(); err != nil {
			t.Fatal(err)
		}
		wqs = append(wqs, dev.WQs()...)
	}
	sched := NewPlacement()
	pol := DefaultPolicy()
	pol.LoadAware = true
	svc, err := NewService(e, sys, wqs, WithScheduler(sched), WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	a := tn.AllocOn(0, n)
	b := tn.AllocOn(0, n)
	c := tn.AllocOn(1, n)

	// Mixed-home chain with a mid-chain fence: descriptor 0 is scanned
	// before the fence is reachable in a single forward walk.
	fenced := []dsa.Descriptor{
		{Op: dsa.OpMemmove, Src: a.Addr(0), Dst: b.Addr(0), Size: n},
		{Op: dsa.OpMemmove, Flags: dsa.FlagFence, Src: b.Addr(0), Dst: c.Addr(0), Size: n},
	}
	if groups := tn.splitByHome(fenced, 0); groups != nil {
		t.Fatalf("fenced chain split into %d groups, want unsplit", len(groups))
	}
	// loadAwareSocket's first act is sizing the hysteresis tables (ensure);
	// their absence proves no descriptor was routed before the bail-out.
	if len(sched.lastRoute) != 0 || len(sched.smoothed) != 0 {
		t.Fatalf("fence scan touched routing state: lastRoute=%v smoothed=%v",
			sched.lastRoute, sched.smoothed)
	}

	// A batch-level fence (WithFlags / Policy.Flags) must suppress the scan
	// just the same.
	plain := []dsa.Descriptor{
		{Op: dsa.OpMemmove, Src: a.Addr(0), Dst: b.Addr(0), Size: n},
		{Op: dsa.OpMemmove, Src: c.Addr(0), Dst: c.Addr(0), Size: n},
	}
	if groups := tn.splitByHome(plain, dsa.FlagFence); groups != nil {
		t.Fatal("batch-level fence did not suppress splitting")
	}
	if len(sched.lastRoute) != 0 {
		t.Fatal("batch-level fence scan touched routing state")
	}

	// Counterfactual: the same chain unfenced DOES route (state appears)
	// and splits — the pre-pass, not the workload, kept the state clean.
	if groups := tn.splitByHome(plain, 0); len(groups) != 2 {
		t.Fatalf("unfenced mixed-home chain produced %d groups, want 2", len(groups))
	}
	if len(sched.lastRoute) == 0 {
		t.Fatal("unfenced load-aware scan did not engage the router")
	}
}
