package offload_test

import (
	"reflect"
	"testing"
	"time"

	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// A concurrent Done poller during a waitParts drain must never observe a
// premature success: Done flips true only once every sub-batch completed,
// and stays true afterwards.
func TestConcurrentDonePollingDuringWaitPartsDrain(t *testing.T) {
	r := newRig(t, 2)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(256 << 10)
	s0src, s0dst := tn.AllocOn(0, n), tn.AllocOn(0, n)
	s1src, s1dst := tn.AllocOn(1, n), tn.AllocOn(1, n)

	var f *offload.Future
	var doneAt sim.Time = -1
	var waitedAt sim.Time = -1
	r.e.Go("submitter", func(p *sim.Proc) {
		var err error
		f, err = tn.NewBatch().
			Copy(s0dst.Addr(0), s0src.Addr(0), n).
			Copy(s1dst.Addr(0), s1src.Addr(0), n).
			Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
		waitedAt = p.Now()
		if !f.Done() {
			t.Error("future not done after Wait returned")
		}
	})
	r.e.Go("poller", func(p *sim.Proc) {
		for p.Now() < 100*time.Microsecond {
			if f != nil && f.Done() {
				if doneAt < 0 {
					doneAt = p.Now()
				}
			} else if doneAt >= 0 {
				t.Error("Done flipped back to false")
				return
			}
			p.Sleep(200 * time.Nanosecond)
		}
	})
	r.e.Run()
	if doneAt < 0 {
		t.Fatal("poller never observed completion")
	}
	if waitedAt < 0 {
		t.Fatal("Wait never returned")
	}
	// The poller samples every 200ns, so its first Done sighting lands at
	// or shortly after the drain finished — never materially before the
	// waiter resolved (a premature Done would show up microseconds early,
	// while the sub-batches were still in flight).
	if doneAt < waitedAt-time.Microsecond {
		t.Errorf("poller saw Done at %v, well before Wait resolved at %v", doneAt, waitedAt)
	}
	// Done must imply an immediate, cost-free Wait: re-waiting at the end
	// advances nothing.
	r.e.Go("rewait", func(p *sim.Proc) {
		before := p.Now()
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
		if p.Now() != before {
			t.Error("Wait on a Done future advanced virtual time")
		}
	})
	r.e.Run()
}

// Double-Wait stays idempotent under interrupt coalescing: the second Wait
// of a coalesced sibling returns the memoized result without advancing
// time, and siblings of one auto-batch resolve identical records.
func TestDoubleWaitIdempotentUnderCoalescing(t *testing.T) {
	r := newRig(t, 1)
	pol := offload.DefaultPolicy()
	pol.AutoBatch = 4
	pol.CoalesceCount = 4
	pol.CoalesceWindow = 50 * time.Microsecond
	svc := r.service(t, offload.WithPolicy(pol))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1 << 10)
	src, dst := tn.Alloc(4*n), tn.Alloc(4*n)
	r.run(func(p *sim.Proc) {
		futs := make([]*offload.Future, 0, 4)
		for i := int64(0); i < 4; i++ {
			f, err := tn.Copy(p, dst.Addr(i*n), src.Addr(i*n), n)
			if err != nil {
				t.Error(err)
				return
			}
			futs = append(futs, f)
		}
		first := make([]offload.Result, len(futs))
		for i, f := range futs {
			res, err := f.Wait(p, offload.Interrupt)
			if err != nil {
				t.Error(err)
				return
			}
			first[i] = res
		}
		before := p.Now()
		for i, f := range futs {
			res, err := f.Wait(p, offload.Interrupt)
			if err != nil {
				t.Error(err)
			}
			if !reflect.DeepEqual(res, first[i]) {
				t.Errorf("future %d: second Wait = %+v, want %+v", i, res, first[i])
			}
		}
		if p.Now() != before {
			t.Error("second Waits advanced virtual time")
		}
	})
}

// The resolved Wait fast path is the completion hot loop's exit: once a
// future is done, re-reading it must not allocate (the per-Pick analogue
// of TestPickZeroAllocs, extended to the wait side).
func TestResolvedWaitZeroAllocs(t *testing.T) {
	r := newRig(t, 1)
	pol := offload.DefaultPolicy()
	pol.CoalesceCount = 4
	pol.CoalesceWindow = 20 * time.Microsecond
	svc := r.service(t, offload.WithPolicy(pol))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		// One hardware future resolved through the coalesced interrupt
		// path and one software future: both fast paths must be free.
		hw, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := hw.Wait(p, offload.Interrupt); err != nil {
			t.Error(err)
			return
		}
		sw, err := tn.Copy(p, dst.Addr(0), src.Addr(0), 512, offload.On(offload.Software))
		if err != nil {
			t.Error(err)
			return
		}
		for _, f := range []*offload.Future{hw, sw} {
			f := f
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := f.Wait(p, offload.Interrupt); err != nil {
					t.Error(err)
				}
				if !f.Done() {
					t.Error("resolved future not done")
				}
			})
			if allocs != 0 {
				t.Errorf("resolved Wait allocated %.1f times per run, want 0", allocs)
			}
		}
	})
}
