package offload

import (
	"errors"
	"fmt"
	"sync/atomic"

	"dsasim/internal/cpu"
	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// ErrTenantClosed is returned (wrapped) by every submission path of a
// tenant retired with Close. Futures already in flight at Close are not
// affected — they remain waitable and resolve normally.
var ErrTenantClosed = errors.New("tenant closed")

// Tenant is one client of the service: a PASID-bound address space and a
// submitting core, with its own policy, batcher, and counters. Tenants
// sharing a shared-mode WQ model true multi-process submission: each
// ENQCMD carries its own PASID, and the device resolves the address space
// per descriptor.
type Tenant struct {
	S    *Service
	AS   *mem.AddressSpace
	Core *cpu.Core

	class   QoSClass
	policy  Policy
	bucket  tokenBucket
	batcher *AutoBatcher
	clients map[*dsa.WQ]*dsa.Client

	// stats counters are atomic: the submission plane's lanes increment
	// them from concurrent host goroutines while tests and dashboards read
	// Stats() (satellite of the sharded-plane work — the plain counters
	// here used to race at 64 submitters).
	stats statCounters

	// plane, when non-nil, is the tenant's sharded submission front end
	// (one per tenant; see NewPlane).
	plane *Plane

	// scratch pools released intermediate buffers by (node, size) so
	// pipeline flushes reuse instead of allocating (see scratch.go).
	scratch map[scratchKey][]*mem.Buffer

	// coal is the tenant's completion coalescer — one moderation vector
	// shared by every per-WQ client, so completions coalesce across WQs
	// and devices (a split batch's sub-batch interrupts merge into one
	// delivery per window). coalCount/coalWindow memoize the resolved
	// policy knobs so SetPolicy rebuilds the coalescer only when they
	// actually change; in-flight completions keep the window they were
	// submitted under.
	coal       *dsa.Coalescer
	coalCount  int
	coalWindow sim.Time

	// closed marks a retired tenant (Close). Atomic because the plane's
	// host-domain TrySubmit path reads it from concurrent goroutines
	// while Close runs engine-side.
	closed atomic.Bool
}

// Close retires the tenant: its queued auto-batch is flushed so no future
// is stranded unflushed, and every later submission — classic, plane lane,
// pipeline, or software fallback — fails with ErrTenantClosed. Operations
// already in flight are unaffected: their futures remain waitable and
// resolve through the normal completion path (the churn tests pin this,
// including under interrupt coalescing, where a closed tenant's last
// window still delivers). Closing an already-closed tenant is an error.
//
// Fleet-style churn closes tenants with work outstanding as a matter of
// course; the service keeps the PASID binding (address-space teardown is
// out of scope for the simulation), so a replacement tenant is simply
// NewTenant again.
func (t *Tenant) Close(p *sim.Proc) error {
	if t.closed.Load() {
		return fmt.Errorf("offload: close: %w", ErrTenantClosed)
	}
	if t.batcher != nil {
		t.batcher.Flush(p)
	}
	t.closed.Store(true)
	return nil
}

// Closed reports whether the tenant has been retired with Close.
func (t *Tenant) Closed() bool { return t.closed.Load() }

// recordSLO scores one completed operation's latency against the tenant's
// SLO budget. No-op without a budget.
func (t *Tenant) recordSLO(d sim.Time) {
	b := sim.Time(t.policy.SLOBudget)
	if b <= 0 {
		return
	}
	if d <= b {
		t.stats.sloOk.Add(1)
	} else {
		t.stats.sloMiss.Add(1)
	}
}

// Policy returns the tenant's active policy.
func (t *Tenant) Policy() Policy { return t.policy }

// SetPolicy replaces the tenant's policy (taking effect on the next
// operation; a pending auto-batch keeps its queued descriptors, and the
// admission bucket keeps its accrued tokens).
func (t *Tenant) SetPolicy(p Policy) { t.policy = p }

// Class returns the tenant's QoS class.
func (t *Tenant) Class() QoSClass { return t.class }

// Stats returns a copy of the tenant counters. Drifts is read live from
// the telemetry plane: the regime shifts flagged on this tenant's
// completion streams so far.
func (t *Tenant) Stats() Stats {
	s := t.stats.snapshot()
	s.Drifts = t.S.met.tenantDrifts(t.AS.PASID)
	return s
}

// client returns the tenant's accounting client for wq, creating it on
// first use (and late-binding the PASID for WQs added after the tenant).
func (t *Tenant) client(wq *dsa.WQ) *dsa.Client {
	cl, ok := t.clients[wq]
	if !ok {
		wq.Dev.BindPASID(t.AS)
		cl = dsa.NewClient(wq, t.Core)
		t.clients[wq] = cl
	}
	return cl
}

// Coalescer returns the tenant's interrupt-moderation state per the
// resolved policy, or nil when the tenant's class delivers per descriptor.
// The coalescer is shared by all of the tenant's clients and rebuilt when
// the resolved knobs change.
func (t *Tenant) Coalescer() *dsa.Coalescer {
	count, window := t.coalesceParams()
	if count <= 1 {
		t.coal, t.coalCount, t.coalWindow = nil, count, window
		return nil
	}
	if t.coal != nil && count == t.coalCount && window != t.coalWindow && t.policy.CoalesceAdaptive {
		// Adaptive windows are re-estimated per submission; retune the
		// coalescer only on a ≥25% move, so inter-arrival jitter does not
		// churn rebuilds (each rebuild starts a fresh delivery window).
		diff := window - t.coalWindow
		if diff < 0 {
			diff = -diff
		}
		if 4*diff < t.coalWindow {
			window = t.coalWindow
		}
	}
	if t.coal == nil || t.coalCount != count || t.coalWindow != window {
		t.coal = dsa.NewCoalescer(t.S.E, count, window, t.S.coalesceTick())
		t.coalCount, t.coalWindow = count, window
	}
	return t.coal
}

// localNode returns the DRAM node on the tenant's socket (not merely the
// socket's first node, which can be a CXL expander). NewTenant verified
// the socket has at least one node, so the fallback cannot panic.
func (t *Tenant) localNode() *mem.Node {
	sock := t.S.Sys.SocketOf(t.Core.Socket)
	for _, n := range sock.Nodes {
		if n.Kind == mem.DRAM {
			return n
		}
	}
	return sock.Nodes[0]
}

// Alloc allocates a buffer on the tenant's local DRAM node. Additional
// mem options (page size, lazy mapping, explicit node) are honored; an
// explicit mem.OnNode placement overrides the local default.
func (t *Tenant) Alloc(size int64, opts ...mem.AllocOption) *mem.Buffer {
	opts = append([]mem.AllocOption{mem.OnNode(t.localNode())}, opts...)
	return t.AS.Alloc(size, opts...)
}

// AllocOn allocates on the platform node with the given id (0 = socket-0
// DRAM, 1 = socket-1 DRAM, 2 = CXL on SPR), so tiered-memory placement
// never needs to reach into the memory system directly.
func (t *Tenant) AllocOn(node int, size int64, opts ...mem.AllocOption) *mem.Buffer {
	opts = append([]mem.AllocOption{mem.OnNode(t.S.Sys.Node(node))}, opts...)
	return t.AS.Alloc(size, opts...)
}

// submitCfg collects per-operation options.
type submitCfg struct {
	path    Path
	noBatch bool
	flags   dsa.Flags
}

// OpOption customizes one operation.
type OpOption func(*submitCfg)

// On forces the execution path (overriding the Auto policy).
func On(path Path) OpOption { return func(c *submitCfg) { c.path = path } }

// NoBatch bypasses the AutoBatcher for this operation.
func NoBatch() OpOption { return func(c *submitCfg) { c.noBatch = true } }

// OpFlags ORs extra descriptor flags into this operation.
func OpFlags(f dsa.Flags) OpOption { return func(c *submitCfg) { c.flags = f } }

func opCfg(opts []OpOption) submitCfg {
	var c submitCfg
	for _, o := range opts {
		o(&c)
	}
	return c
}

// useHW resolves the path decision for an n-byte operation against the
// effective (possibly pressure-adapted) threshold.
func (t *Tenant) useHW(c submitCfg, n int64) bool {
	switch c.path {
	case Hardware:
		return true
	case Software:
		return false
	default:
		return n >= t.EffectiveThreshold()
	}
}

// autoBatchable reports whether an Auto-path sub-threshold operation
// should coalesce instead of running on the core (G1 over G2: batching
// amortizes the offload overhead that otherwise makes small transfers a
// core job, Fig 3).
func (t *Tenant) autoBatchable(c submitCfg, n int64) bool {
	return c.path == Auto && !c.noBatch && t.policy.AutoBatch > 0 && n < t.EffectiveThreshold()
}

// admit applies the tenant's token bucket to one hardware submission:
// admitted immediately, delayed until a token accrues (Policy.AdmitWait),
// or shed with ErrAdmission.
func (t *Tenant) admit(p *sim.Proc) error {
	if t.closed.Load() {
		return fmt.Errorf("offload: %w", ErrTenantClosed)
	}
	ok, wait := t.bucket.take(p.Now(), t.policy.AdmitRate, t.policy.AdmitBurst)
	if ok {
		return nil
	}
	if !t.policy.AdmitWait {
		t.stats.shed.Add(1)
		return fmt.Errorf("offload: tenant over %.0f ops/s (burst %d): %w",
			t.policy.AdmitRate, t.policy.AdmitBurst, ErrAdmission)
	}
	t.stats.delayed.Add(1)
	// Fold the retry cadence into the tenant's interrupt-moderation window:
	// waking the moment one token accrues burns one wakeup per delayed
	// sub-batch, and each such wakeup delivers into a window that was going
	// to close later anyway. Sleeping at least one coalescing window per
	// retry batches the wakeups the same way deliveries are batched; the
	// bucket keeps accruing while we sleep, so admitted throughput is
	// unchanged. Non-coalescing tenants (count ≤ 1) keep the exact wait.
	var floor sim.Time
	if count, window := t.coalesceParams(); count > 1 {
		floor = window
	}
	for !ok {
		if wait < floor {
			wait = floor
		}
		p.Sleep(wait)
		t.stats.admitWakeups.Add(1)
		ok, wait = t.bucket.take(p.Now(), t.policy.AdmitRate, t.policy.AdmitBurst)
	}
	return nil
}

// request builds the scheduler request for one descriptor, resolving the
// home nodes of the data it reads and writes. For a batch parent the first
// child stands in for the whole batch: the batch paths group children by
// home socket before submitting (batch.go), so any child's home is the
// slice's.
func (t *Tenant) request(d *dsa.Descriptor) Request {
	req := Request{
		Socket:    t.Core.Socket,
		Class:     t.class,
		Size:      d.Size,
		Topo:      t.S.topo,
		LoadAware: t.policy.LoadAware,
	}
	if !t.S.dataAware {
		// No scheduler will read the data homes; skip the lookups.
		return req
	}
	src, dst := d.Src, d.Dst
	if d.Op == dsa.OpBatch && len(d.Descs) > 0 {
		src, dst = d.Descs[0].Src, d.Descs[0].Dst
	}
	if src != 0 {
		req.SrcNode = t.AS.NodeAt(src)
	}
	if dst != 0 {
		req.DstNode = t.AS.NodeAt(dst)
	}
	return req
}

// dataHome resolves the socket one queued descriptor's data places it on,
// falling back to the tenant's socket when the descriptor carries no
// placement information. The batch paths group descriptors by this key.
func (t *Tenant) dataHome(d *dsa.Descriptor) int {
	var src, dst *mem.Node
	if d.Src != 0 {
		src = t.AS.NodeAt(d.Src)
	}
	if d.Dst != 0 {
		dst = t.AS.NodeAt(d.Dst)
	}
	if s, ok := dataSocket(src, dst); ok {
		return s
	}
	return t.Core.Socket
}

// submit schedules, prepares, and submits one hardware descriptor,
// returning its Future. Admission control runs before WQ selection so a
// shed or delayed submission never occupies a queue slot; bounded-retry
// policies surface dsa.ErrWQFull through the error.
func (t *Tenant) submit(p *sim.Proc, d dsa.Descriptor, flags dsa.Flags) (*Future, error) {
	if err := t.admit(p); err != nil {
		return nil, err
	}
	return t.submitAdmitted(p, d, flags)
}

// submitAdmitted is submit past the admission gate. The batch paths call
// it directly for the sub-batches of one already-admitted logical flush:
// a split flush is the same logical work as an unsplit one and must cost
// the same single token (Policy.SplitBatches is a placement knob, not an
// extra submission).
func (t *Tenant) submitAdmitted(p *sim.Proc, d dsa.Descriptor, flags dsa.Flags) (*Future, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("offload: %w", ErrTenantClosed)
	}
	d.PASID = t.AS.PASID
	d.Flags |= t.policy.Flags | flags
	return t.dispatch(p, d, t.request(&d))
}

// submitPinned is submitAdmitted with placement already decided: the
// descriptor goes to a WQ on the given socket regardless of where its data
// lives. The pipeline driver uses it to keep every chain of one fused DAG on
// the socket its intermediate scratch buffers were placed on — re-resolving
// per-descriptor data homes would scatter a chain whose stages deliberately
// share one device.
func (t *Tenant) submitPinned(p *sim.Proc, d dsa.Descriptor, flags dsa.Flags, socket int) (*Future, error) {
	d.PASID = t.AS.PASID
	d.Flags |= t.policy.Flags | flags
	return t.dispatch(p, d, Request{
		Socket: socket,
		Class:  t.class,
		Size:   d.Size,
		Topo:   t.S.topo,
	})
}

// dispatch runs the shared submission tail: scheduler pick, client resolve,
// prepare, portal submit, stats.
func (t *Tenant) dispatch(p *sim.Proc, d dsa.Descriptor, req Request) (*Future, error) {
	wq := t.S.sched.Pick(req, t.S.wqs)
	if wq == nil {
		return nil, fmt.Errorf("offload: scheduler %q returned no work queue", t.S.sched.Name())
	}
	cl := t.client(wq)
	// Re-resolve the moderation vector per submission so SetPolicy takes
	// effect on the next operation, as its contract promises.
	cl.Coal = t.Coalescer()
	cl.Prepare(p)
	start := p.Now()
	comp, err := cl.TrySubmit(p, d, t.policy.MaxRetries)
	if err != nil {
		t.stats.failures.Add(1)
		return nil, err
	}
	t.stats.hwOps.Add(1)
	t.stats.hwBytes.Add(d.Size)
	return &Future{t: t, cl: cl, comp: comp, op: d.Op, start: start, d: d}, nil
}

// sw wraps a completed software-path result, charging the core time.
func (t *Tenant) sw(p *sim.Proc, start sim.Time, bytes int64, dur sim.Time, err error, fill func(*Result)) (*Future, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("offload: %w", ErrTenantClosed)
	}
	if err != nil {
		t.stats.failures.Add(1)
		return nil, err
	}
	p.Sleep(dur)
	t.stats.swOps.Add(1)
	t.stats.swBytes.Add(bytes)
	res := Result{Duration: p.Now() - start}
	if fill != nil {
		fill(&res)
	}
	t.recordSLO(res.Duration)
	return completed(res, nil), nil
}

// Copy moves n bytes from src to dst.
func (t *Tenant) Copy(p *sim.Proc, dst, src mem.Addr, n int64, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{Op: dsa.OpMemmove, Src: src, Dst: dst, Size: n}, c.flags)
	}
	if t.autoBatchable(c, n) {
		return t.Batcher().add(p, dsa.Descriptor{
			Op: dsa.OpMemmove, Src: src, Dst: dst, Size: n, Flags: t.policy.Flags | c.flags,
		})
	}
	start := p.Now()
	dur, err := t.Core.Memcpy(dst, src, n)
	return t.sw(p, start, n, dur, err, nil)
}

// Fill writes the repeating 8-byte pattern over n bytes at dst.
func (t *Tenant) Fill(p *sim.Proc, dst mem.Addr, n int64, pattern uint64, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{Op: dsa.OpFill, Dst: dst, Size: n, Pattern: pattern}, c.flags)
	}
	if t.autoBatchable(c, n) {
		return t.Batcher().add(p, dsa.Descriptor{
			Op: dsa.OpFill, Dst: dst, Size: n, Pattern: pattern, Flags: t.policy.Flags | c.flags,
		})
	}
	start := p.Now()
	dur, err := t.Core.Memset(dst, n, pattern)
	return t.sw(p, start, n, dur, err, nil)
}

// Compare checks n bytes at a and b for equality.
func (t *Tenant) Compare(p *sim.Proc, a, b mem.Addr, n int64, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{Op: dsa.OpCompare, Src: a, Src2: b, Size: n}, c.flags)
	}
	start := p.Now()
	off, eq, dur, err := t.Core.Memcmp(a, b, n)
	return t.sw(p, start, n, dur, err, func(r *Result) { r.Mismatch = !eq; r.Offset = off })
}

// ComparePattern checks n bytes at src against the repeating pattern.
func (t *Tenant) ComparePattern(p *sim.Proc, src mem.Addr, n int64, pattern uint64, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{Op: dsa.OpComparePattern, Src: src, Size: n, Pattern: pattern}, c.flags)
	}
	start := p.Now()
	off, eq, dur, err := t.Core.ComparePattern(src, n, pattern)
	return t.sw(p, start, n, dur, err, func(r *Result) { r.Mismatch = !eq; r.Offset = off })
}

// CRC32 computes the seeded CRC-32 of n bytes at src.
func (t *Tenant) CRC32(p *sim.Proc, src mem.Addr, n int64, seed uint32, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{Op: dsa.OpCRCGen, Src: src, Size: n, CRCSeed: seed}, c.flags)
	}
	start := p.Now()
	crc, dur, err := t.Core.CRC32(src, n, seed)
	return t.sw(p, start, n, dur, err, func(r *Result) { r.CRC = crc })
}

// CopyCRC copies n bytes and returns the CRC-32 of the data.
func (t *Tenant) CopyCRC(p *sim.Proc, dst, src mem.Addr, n int64, seed uint32, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{Op: dsa.OpCopyCRC, Src: src, Dst: dst, Size: n, CRCSeed: seed}, c.flags)
	}
	start := p.Now()
	crc, dur, err := t.Core.CopyCRC(dst, src, n, seed)
	return t.sw(p, start, n, dur, err, func(r *Result) { r.CRC = crc })
}

// Dualcast copies n bytes from src to both destinations.
func (t *Tenant) Dualcast(p *sim.Proc, dst1, dst2, src mem.Addr, n int64, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{Op: dsa.OpDualcast, Src: src, Dst: dst1, Dst2: dst2, Size: n}, c.flags)
	}
	start := p.Now()
	dur, err := t.Core.Dualcast(dst1, dst2, src, n)
	return t.sw(p, start, n, dur, err, nil)
}

// CreateDelta writes a delta record of orig→mod differences into record.
func (t *Tenant) CreateDelta(p *sim.Proc, record, orig, mod mem.Addr, n, maxRecord int64, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{
			Op: dsa.OpCreateDelta, Src: orig, Src2: mod, Dst: record, Size: n, MaxDst: maxRecord,
		}, c.flags)
	}
	start := p.Now()
	used, dur, err := t.Core.DeltaCreate(record, orig, mod, n, maxRecord)
	return t.sw(p, start, 2*n, dur, err, func(r *Result) { r.Size = used })
}

// ApplyDelta replays a recordLen-byte delta record onto dst (dstLen bytes).
func (t *Tenant) ApplyDelta(p *sim.Proc, dst, record mem.Addr, recordLen, dstLen int64, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, recordLen) {
		return t.submit(p, dsa.Descriptor{
			Op: dsa.OpApplyDelta, Src: record, Dst: dst, Size: recordLen, MaxDst: dstLen,
		}, c.flags)
	}
	start := p.Now()
	dur, err := t.Core.DeltaApply(dst, record, recordLen, dstLen)
	return t.sw(p, start, recordLen, dur, err, nil)
}

// DIFInsert generates protected blocks from n raw bytes at src.
func (t *Tenant) DIFInsert(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{
			Op: dsa.OpDIFInsert, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: tags,
		}, c.flags)
	}
	start := p.Now()
	dur, err := t.Core.DIFInsert(dst, src, n, bs, tags)
	return t.sw(p, start, n, dur, err, nil)
}

// DIFCheck verifies n protected bytes at src.
func (t *Tenant) DIFCheck(p *sim.Proc, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{
			Op: dsa.OpDIFCheck, Src: src, Size: n, DIFBlock: bs, DIFTags: tags,
		}, c.flags)
	}
	start := p.Now()
	dur, err := t.Core.DIFCheck(src, n, bs, tags)
	if err != nil {
		t.stats.failures.Add(1)
		return completed(Result{Duration: dur}, err), err
	}
	return t.sw(p, start, n, dur, nil, nil)
}

// DIFStrip verifies and removes protection information.
func (t *Tenant) DIFStrip(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{
			Op: dsa.OpDIFStrip, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: tags,
		}, c.flags)
	}
	start := p.Now()
	dur, err := t.Core.DIFStrip(dst, src, n, bs, tags)
	return t.sw(p, start, n, dur, err, nil)
}

// DIFUpdate rewrites protection information from old to new tags.
func (t *Tenant) DIFUpdate(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, old, new dif.Tags, opts ...OpOption) (*Future, error) {
	c := opCfg(opts)
	if t.useHW(c, n) {
		return t.submit(p, dsa.Descriptor{
			Op: dsa.OpDIFUpdate, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: old, DIFTags2: new,
		}, c.flags)
	}
	start := p.Now()
	dur, err := t.Core.DIFUpdate(dst, src, n, bs, old, new)
	return t.sw(p, start, n, dur, err, nil)
}
