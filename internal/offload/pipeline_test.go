package offload_test

import (
	"bytes"
	"testing"
	"time"

	"dsasim/internal/isal"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// A linear three-stage device DAG (copy → CRC → copy through a scratch
// intermediate) compiles into ONE fenced batch: one batch parent submitted,
// one admission, with per-stage results scattered from the child records.
func TestPipelineLinearChainFusesIntoOneBatch(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(4096)
	src := tn.Alloc(n)
	dst := tn.Alloc(n)
	sim.NewRand(1).Bytes(src.Bytes())

	pl := tn.NewPipeline()
	tmp := pl.Scratch(n)
	s1 := pl.Copy(tmp, offload.At(src.Addr(0)), n)
	s2 := pl.CRC32(tmp, n, 0, offload.After(s1))
	s3 := pl.Copy(offload.At(dst.Addr(0)), tmp, n, offload.After(s2))
	_ = s3

	r.run(func(p *sim.Proc) {
		f, err := pl.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := f.Wait(p, offload.Poll)
		if err != nil {
			t.Error(err)
			return
		}
		if !res.Hardware {
			t.Error("fused chain did not run on hardware")
		}
		if res.Duration <= 0 {
			t.Errorf("duration = %v", res.Duration)
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("pipeline did not move bytes end to end")
	}
	if want := uint64(isal.CRC32(0, src.Bytes())); s2.Result() != want {
		t.Fatalf("CRC stage result = %#x, want %#x", s2.Result(), want)
	}
	st := tn.Stats()
	if st.Pipelines != 1 {
		t.Errorf("Pipelines = %d, want 1", st.Pipelines)
	}
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1 (the whole chain fuses into one parent)", st.Batches)
	}
	if st.HWOps != 1 {
		t.Errorf("HWOps = %d, want 1 submission for the fused chain", st.HWOps)
	}
	if st.Shed != 0 || st.Delayed != 0 {
		t.Errorf("admission charged more than once: %+v", st)
	}
}

// A pipeline mixing engines — ISA-L software inflate, then device CRC and
// move — joins through one Future: the software stage runs between fused
// device chains on the same timeline, and its output feeds the device
// stages through a scratch intermediate.
func TestPipelineCrossEngineFutureJoin(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(4096)
	raw := make([]byte, n)
	for i := range raw {
		raw[i] = byte(i / 97) // runs, so RLE compresses
	}
	comp := tn.Alloc(2 * n)
	clen, err := isal.Compress(comp.Bytes(), raw)
	if err != nil {
		t.Fatal(err)
	}
	dst := tn.Alloc(n)

	pl := tn.NewPipeline()
	inflated := pl.Scratch(n)
	d := pl.Decompress(inflated, offload.At(comp.Addr(0)), int64(clen), n)
	c := pl.CRC32(inflated, n, 0, offload.After(d))
	m := pl.Copy(offload.At(dst.Addr(0)), inflated, n, offload.After(c))
	_ = m

	r.run(func(p *sim.Proc) {
		f, err := pl.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(dst.Bytes(), raw) {
		t.Fatal("decompress→CRC→move pipeline corrupted data")
	}
	if d.Result() != uint64(n) {
		t.Errorf("inflate produced %d bytes, want %d", d.Result(), n)
	}
	if want := uint64(isal.CRC32(0, raw)); c.Result() != want {
		t.Errorf("CRC over inflated data = %#x, want %#x", c.Result(), want)
	}
}

// A terminal fabric-send stage drains through the pipe's modelled
// bandwidth, so the pipeline's observed duration must cover the wire time.
func TestPipelineFabricSendStage(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1 << 20)
	src := tn.Alloc(n)
	nic := sim.NewPipe(r.e, 12.5) // ~100 Gb Ethernet

	pl := tn.NewPipeline()
	staged := pl.Scratch(n)
	s1 := pl.Copy(staged, offload.At(src.Addr(0)), n)
	pl.Send(nic, staged, n, offload.After(s1))

	var dur sim.Time
	r.run(func(p *sim.Proc) {
		f, err := pl.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := f.Wait(p, offload.Poll)
		if err != nil {
			t.Error(err)
			return
		}
		dur = res.Duration
	})
	if wire := sim.GBps(n, 12.5); dur < wire {
		t.Fatalf("pipeline duration %v below the %v wire time of its send stage", dur, wire)
	}
}

// A pipeline survives a SetPolicy rebuild between submissions: the first
// run completes under interrupt + coalesced delivery, the policy is rebuilt
// with a different moderation count, and the SAME Pipeline object re-submits
// and completes — fences, coalescer, and scratch reuse all cross the
// rebuild.
func TestPipelineAcrossSetPolicyCoalesceRebuild(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	pol := offload.DefaultPolicy()
	pol.Wait = offload.Interrupt
	pol.CoalesceCount = 4
	pol.CoalesceWindow = 2 * time.Microsecond
	tn.SetPolicy(pol)

	n := int64(8192)
	src := tn.Alloc(n)
	dst := tn.Alloc(n)
	sim.NewRand(2).Bytes(src.Bytes())

	pl := tn.NewPipeline()
	tmp := pl.Scratch(n)
	s1 := pl.Copy(tmp, offload.At(src.Addr(0)), n)
	crc := pl.CRC32(tmp, n, 0, offload.After(s1))
	pl.Copy(offload.At(dst.Addr(0)), tmp, n, offload.After(crc))

	runOnce := func() {
		r.run(func(p *sim.Proc) {
			f, err := pl.Submit(p)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Interrupt); err != nil {
				t.Error(err)
			}
		})
	}
	runOnce()
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("first (coalesced-interrupt) run corrupted data")
	}
	want := uint64(isal.CRC32(0, src.Bytes()))
	if crc.Result() != want {
		t.Fatalf("first run CRC = %#x, want %#x", crc.Result(), want)
	}

	// Rebuild the coalescer with a different moderation count and re-drive
	// the same DAG over fresh data.
	pol.CoalesceCount = 1
	tn.SetPolicy(pol)
	sim.NewRand(3).Bytes(src.Bytes())
	for i := range dst.Bytes() {
		dst.Bytes()[i] = 0
	}
	runOnce()
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("post-rebuild run corrupted data")
	}
	if want := uint64(isal.CRC32(0, src.Bytes())); crc.Result() != want {
		t.Fatalf("post-rebuild CRC = %#x, want %#x", crc.Result(), want)
	}
	if got := tn.Stats().Pipelines; got != 2 {
		t.Errorf("Pipelines = %d, want 2", got)
	}
}

// The point of fusing: a 3-stage chain as one pipeline beats the same three
// operations submitted sequentially with a full submit→wait round trip
// between each.
func TestPipelineFusedBeatsSequential(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(4096)
	src := tn.Alloc(n)
	mid := tn.Alloc(n)
	dst := tn.Alloc(n)
	sim.NewRand(4).Bytes(src.Bytes())

	var fused, sequential sim.Time
	pl := tn.NewPipeline()
	tmp := pl.Scratch(n)
	s1 := pl.Copy(tmp, offload.At(src.Addr(0)), n)
	s2 := pl.CRC32(tmp, n, 0, offload.After(s1))
	pl.Copy(offload.At(dst.Addr(0)), tmp, n, offload.After(s2))
	r.run(func(p *sim.Proc) {
		f, err := pl.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := f.Wait(p, offload.Poll)
		if err != nil {
			t.Error(err)
			return
		}
		fused = res.Duration

		start := p.Now()
		for _, step := range []func() (*offload.Future, error){
			func() (*offload.Future, error) {
				return tn.Copy(p, mid.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			},
			func() (*offload.Future, error) {
				return tn.CRC32(p, mid.Addr(0), n, 0, offload.On(offload.Hardware))
			},
			func() (*offload.Future, error) {
				return tn.Copy(p, dst.Addr(0), mid.Addr(0), n, offload.On(offload.Hardware))
			},
		} {
			f, err := step()
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
				return
			}
		}
		sequential = p.Now() - start
	})
	if fused >= sequential {
		t.Fatalf("fused chain %v not faster than sequential %v", fused, sequential)
	}
}

func TestPipelineDeclarationErrors(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	buf := tn.Alloc(4096)

	r.run(func(p *sim.Proc) {
		if _, err := tn.NewPipeline().Submit(p); err == nil {
			t.Error("empty pipeline submitted")
		}
		// A dependency on another pipeline's stage is a declaration bug.
		other := tn.NewPipeline()
		foreign := other.CRC32(offload.At(buf.Addr(0)), 4096, 0)
		pl := tn.NewPipeline()
		pl.CRC32(offload.At(buf.Addr(0)), 4096, 0, offload.After(foreign))
		if _, err := pl.Submit(p); err == nil {
			t.Error("cross-pipeline dependency submitted")
		}
	})
}

// A DAG wider than the device batch limit still completes: the compiler
// cuts the chain at MaxBatch, flushes, and continues — correctness over
// fusion width.
func TestPipelineWiderThanBatchLimit(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	width := 2*r.devs[0].Cfg.MaxBatch + 3
	n := int64(512)
	src := tn.Alloc(int64(width) * n)
	dst := tn.Alloc(int64(width) * n)
	sim.NewRand(5).Bytes(src.Bytes())

	pl := tn.NewPipeline()
	for i := 0; i < width; i++ {
		off := int64(i) * n
		pl.Copy(offload.At(dst.Addr(off)), offload.At(src.Addr(off)), n)
	}
	r.run(func(p *sim.Proc) {
		f, err := pl.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("over-wide pipeline dropped stages")
	}
	if st := tn.Stats(); st.Batches < 2 {
		t.Errorf("Batches = %d, want ≥2 (chain must have been cut)", st.Batches)
	}
}

// The scratch pool recycles: after warm-up, an alloc/free cycle of a
// steady-state working set is allocation-free and returns pooled buffers.
func TestScratchPoolZeroAllocs(t *testing.T) {
	r := newRig(t, 2)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{4096, 4096, 64 << 10}
	warm := func(socket int) {
		held := tn.AllocScratch(sizes[0], socket)
		held2 := tn.AllocScratch(sizes[1], socket)
		held3 := tn.AllocScratch(sizes[2], socket)
		tn.FreeScratch(held)
		tn.FreeScratch(held2)
		tn.FreeScratch(held3)
	}
	warm(0)
	warm(1)
	first := tn.AllocScratch(4096, 0)
	tn.FreeScratch(first)
	if again := tn.AllocScratch(4096, 0); again != first {
		t.Error("pool did not recycle the freed buffer")
	} else {
		tn.FreeScratch(again)
	}
	allocs := testing.AllocsPerRun(200, func() {
		warm(0)
		warm(1)
	})
	if allocs != 0 {
		t.Errorf("steady-state AllocScratch/FreeScratch allocated %.1f times per run, want 0", allocs)
	}
}

// Pipeline placement requests stay allocation-free: PipelineSocket scoring
// (per-submission, over the fixed legs) and the pinned-socket Pick the
// chains are then submitted with must not allocate.
func TestPipelinePlacementZeroAllocs(t *testing.T) {
	r := newRig(t, 2)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	topo := svc.Topology()
	wqs := svc.WQs()
	node0, node1 := r.sys.Node(0), r.sys.Node(1)
	legs := []offload.PipelineLeg{
		{Node: node0, Size: 4096},
		{Node: node1, Size: 4096, Write: true},
	}
	if got := offload.PipelineSocket(topo, legs[:1], 0); got != 0 {
		t.Fatalf("single local leg placed on socket %d, want 0", got)
	}
	if got := offload.PipelineSocket(topo, legs[1:], 0); got != 1 {
		t.Fatalf("single remote write leg placed on socket %d, want 1", got)
	}
	if got := offload.PipelineSocket(nil, legs, 7); got != 7 {
		t.Fatalf("nil topology fallback = %d, want 7", got)
	}
	sched := offload.NewPlacement()
	pinned := offload.Request{Socket: 1, Topo: topo, Size: 4096}
	sched.Pick(pinned, wqs) // warm
	allocs := testing.AllocsPerRun(200, func() {
		if offload.PipelineSocket(topo, legs, 0) < 0 {
			t.Fatal("no socket")
		}
		if sched.Pick(pinned, wqs) == nil {
			t.Fatal("nil WQ")
		}
	})
	if allocs != 0 {
		t.Errorf("pipeline placement allocated %.1f times per run, want 0", allocs)
	}
}
