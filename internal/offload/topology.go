package offload

import (
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Topology is the service's precomputed placement index over its work
// queues: per-socket WQ subsets and, within each socket, the express/rest
// priority partition PriorityAware reserves. It is rebuilt on AddWQs and
// shared by every scheduler through Request.Topo, so the submission hot
// path never re-derives (or re-allocates) these subsets per Pick — the
// old localWQs/splitByPriority calls allocated fresh slices on every
// submission.
//
// The index also carries the interconnect prices the load-aware cost
// model reads (Placement.Pick with Request.LoadAware): the UPI hop
// latency and link rate, captured from the memory system at build time.
// Per-socket load signals (QueueDelay, and Service.SocketPressure above
// it) roll the live WQ occupancy/latency EWMAs up through these subsets.
type Topology struct {
	all []*dsa.WQ
	// Indexed by socket id; a socket with no local device holds nil and
	// falls back to the full set (the UPI-crossing fallback).
	local   [][]*dsa.WQ
	express [][]*dsa.WQ // top-priority subset per socket
	rest    [][]*dsa.WQ // remaining WQs per socket (nil when uniform)
	// Full-set partition, used when a socket has no local device.
	allExpress []*dsa.WQ
	allRest    []*dsa.WQ

	// upiLat and upiGBps price a cross-socket detour for the load-aware
	// placement path: the added hop latency and the shared link's
	// serialization rate (zero when the system models no UPI pipe).
	upiLat  sim.Time
	upiGBps float64

	// met is the service's telemetry plane the queueing-delay model reads
	// its smoothed completion latencies from (set by Service.AddWQs).
	met *metrics
}

// newTopology indexes wqs by device socket over the system's sockets;
// devices on sockets beyond the platform count extend the index.
func newTopology(wqs []*dsa.WQ, sys *mem.System) *Topology {
	sockets := 0
	var upiLat sim.Time
	var upiGBps float64
	if sys != nil {
		sockets = len(sys.Sockets)
		upiLat = sys.UPILat
		upiGBps = sys.UPIGBps()
	}
	for _, wq := range wqs {
		if s := wq.Dev.Cfg.Socket + 1; s > sockets {
			sockets = s
		}
	}
	t := &Topology{
		all:     wqs,
		local:   make([][]*dsa.WQ, sockets),
		express: make([][]*dsa.WQ, sockets),
		rest:    make([][]*dsa.WQ, sockets),
		upiLat:  upiLat,
		upiGBps: upiGBps,
	}
	for _, wq := range wqs {
		s := wq.Dev.Cfg.Socket
		t.local[s] = append(t.local[s], wq)
	}
	for s, pool := range t.local {
		if len(pool) == 0 {
			continue
		}
		t.express[s], t.rest[s] = splitByPriority(pool)
	}
	t.allExpress, t.allRest = splitByPriority(wqs)
	return t
}

// Sockets returns the number of sockets the index covers.
func (t *Topology) Sockets() int { return len(t.local) }

// Local returns the WQs on the given socket, or the full set when the
// socket has no local device (or is out of range) — never empty.
func (t *Topology) Local(socket int) []*dsa.WQ {
	if socket < 0 || socket >= len(t.local) || len(t.local[socket]) == 0 {
		return t.all
	}
	return t.local[socket]
}

// HasLocal reports whether the socket has at least one local WQ (Local
// would not fall back to the full set).
func (t *Topology) HasLocal(socket int) bool {
	return socket >= 0 && socket < len(t.local) && len(t.local[socket]) > 0
}

// Split returns the socket's express-lane WQs and the rest. rest is nil
// when the socket's WQs share one priority (nothing to reserve); both fall
// back to the full-set partition when the socket has no local device.
func (t *Topology) Split(socket int) (express, rest []*dsa.WQ) {
	if socket < 0 || socket >= len(t.local) || len(t.local[socket]) == 0 {
		return t.allExpress, t.allRest
	}
	return t.express[socket], t.rest[socket]
}

// QueueDelay rolls the socket's live WQ state up into the estimated
// virtual time a new submission would wait behind the backlog of the
// socket's best (least-backlogged) WQ: the per-descriptor completion-
// latency EWMA times the occupancy. A socket with no local device reports
// the full set's best, matching where its submissions would fall back to.
func (t *Topology) QueueDelay(socket int) sim.Time {
	return t.queueDelayOf(t.Local(socket))
}

// queueDelayOf estimates the queueing delay of the best WQ in pool:
// occupancy (descriptors accepted but not yet completed ahead of a new
// arrival) times the smoothed per-descriptor completion latency from the
// telemetry plane. A WQ with no latency history yet estimates zero — the
// model needs at least one completion before a backlog is priced, which
// the streams deliver within the first handful of descriptors.
func (t *Topology) queueDelayOf(pool []*dsa.WQ) sim.Time {
	if t.met != nil {
		t.met.sync()
	}
	var best sim.Time
	for i, wq := range pool {
		var est sim.Time
		if t.met != nil {
			est = t.met.latEWMA(wq) * sim.Time(wq.Occupancy())
		}
		if i == 0 || est < best {
			best = est
		}
	}
	return best
}
