package offload

import (
	"dsasim/internal/dsa"
)

// Topology is the service's precomputed placement index over its work
// queues: per-socket WQ subsets and, within each socket, the express/rest
// priority partition PriorityAware reserves. It is rebuilt on AddWQs and
// shared by every scheduler through Request.Topo, so the submission hot
// path never re-derives (or re-allocates) these subsets per Pick — the
// old localWQs/splitByPriority calls allocated fresh slices on every
// submission.
type Topology struct {
	all []*dsa.WQ
	// Indexed by socket id; a socket with no local device holds nil and
	// falls back to the full set (the UPI-crossing fallback).
	local   [][]*dsa.WQ
	express [][]*dsa.WQ // top-priority subset per socket
	rest    [][]*dsa.WQ // remaining WQs per socket (nil when uniform)
	// Full-set partition, used when a socket has no local device.
	allExpress []*dsa.WQ
	allRest    []*dsa.WQ
}

// newTopology indexes wqs by device socket. sockets is the platform socket
// count; devices on sockets beyond it extend the index.
func newTopology(wqs []*dsa.WQ, sockets int) *Topology {
	for _, wq := range wqs {
		if s := wq.Dev.Cfg.Socket + 1; s > sockets {
			sockets = s
		}
	}
	t := &Topology{
		all:     wqs,
		local:   make([][]*dsa.WQ, sockets),
		express: make([][]*dsa.WQ, sockets),
		rest:    make([][]*dsa.WQ, sockets),
	}
	for _, wq := range wqs {
		s := wq.Dev.Cfg.Socket
		t.local[s] = append(t.local[s], wq)
	}
	for s, pool := range t.local {
		if len(pool) == 0 {
			continue
		}
		t.express[s], t.rest[s] = splitByPriority(pool)
	}
	t.allExpress, t.allRest = splitByPriority(wqs)
	return t
}

// Sockets returns the number of sockets the index covers.
func (t *Topology) Sockets() int { return len(t.local) }

// Local returns the WQs on the given socket, or the full set when the
// socket has no local device (or is out of range) — never empty.
func (t *Topology) Local(socket int) []*dsa.WQ {
	if socket < 0 || socket >= len(t.local) || len(t.local[socket]) == 0 {
		return t.all
	}
	return t.local[socket]
}

// HasLocal reports whether the socket has at least one local WQ (Local
// would not fall back to the full set).
func (t *Topology) HasLocal(socket int) bool {
	return socket >= 0 && socket < len(t.local) && len(t.local[socket]) > 0
}

// Split returns the socket's express-lane WQs and the rest. rest is nil
// when the socket's WQs share one priority (nothing to reserve); both fall
// back to the full-set partition when the socket has no local device.
func (t *Topology) Split(socket int) (express, rest []*dsa.WQ) {
	if socket < 0 || socket >= len(t.local) || len(t.local[socket]) == 0 {
		return t.allExpress, t.allRest
	}
	return t.express[socket], t.rest[socket]
}
