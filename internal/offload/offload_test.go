package offload_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// rig is a two-socket SPR-like system with one DSA device per socket.
type rig struct {
	e    *sim.Engine
	sys  *mem.System
	devs []*dsa.Device
}

// newRig builds the system. wqcfg defaults to one 32-entry dedicated WQ
// with four engines per device.
func newRig(t *testing.T, sockets int, wqcfg ...dsa.WQConfig) *rig {
	t.Helper()
	e := sim.New()
	nodes := []mem.NodeConfig{
		{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
	}
	if sockets > 1 {
		nodes = append(nodes, mem.NodeConfig{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75})
	}
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets:  2,
		LLC:      mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:   70 * time.Nanosecond,
		UPIGBps:  62,
		NodeDefs: nodes,
	})
	if len(wqcfg) == 0 {
		wqcfg = []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}
	}
	r := &rig{e: e, sys: sys}
	for s := 0; s < sockets; s++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", s))
		if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: wqcfg}); err != nil {
			t.Fatal(err)
		}
		if err := dev.Enable(); err != nil {
			t.Fatal(err)
		}
		r.devs = append(r.devs, dev)
	}
	return r
}

func (r *rig) wqs() []*dsa.WQ {
	var wqs []*dsa.WQ
	for _, d := range r.devs {
		wqs = append(wqs, d.WQs()...)
	}
	return wqs
}

func (r *rig) service(t *testing.T, opts ...offload.ServiceOption) *offload.Service {
	t.Helper()
	svc, err := offload.NewService(r.e, r.sys, r.wqs(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func (r *rig) run(fn func(p *sim.Proc)) {
	r.e.Go("test", fn)
	r.e.Run()
}

func TestCopyRoundTripAndFutureIdempotence(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t)
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(256 << 10)
	src := tn.Alloc(n)
	dst := tn.Alloc(n)
	sim.NewRand(1).Bytes(src.Bytes())
	r.run(func(p *sim.Proc) {
		f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			t.Error(err)
			return
		}
		if f.Done() {
			t.Error("256KB copy completed instantaneously")
		}
		res1, err := f.Wait(p, offload.Poll)
		if err != nil {
			t.Error(err)
			return
		}
		if !res1.Hardware {
			t.Error("above-threshold copy should take the hardware path")
		}
		// Double-Wait is idempotent: same result, no re-accounting.
		before := p.Now()
		res2, err := f.Wait(p, offload.Poll)
		if err != nil {
			t.Error(err)
		}
		if !reflect.DeepEqual(res2, res1) {
			t.Errorf("second Wait returned %+v, want %+v", res2, res1)
		}
		if p.Now() != before {
			t.Error("second Wait advanced virtual time")
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("copy incomplete")
	}
}

func TestSubThresholdRunsOnCore(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t)
	tn, _ := svc.NewTenant()
	src := tn.Alloc(4096)
	dst := tn.Alloc(4096)
	r.run(func(p *sim.Proc) {
		f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), 1024)
		if err != nil {
			t.Error(err)
			return
		}
		if !f.Done() {
			t.Error("software copy should complete before returning")
		}
		res, _ := f.Wait(p, offload.Poll)
		if res.Hardware {
			t.Error("1KB Auto copy should run on the core (G2)")
		}
	})
	st := tn.Stats()
	if st.SWOps != 1 || st.HWOps != 0 {
		t.Fatalf("routing = %+v", st)
	}
}

func TestWaitModesAllComplete(t *testing.T) {
	for _, mode := range []offload.WaitMode{offload.Poll, offload.UMWait, offload.Interrupt} {
		r := newRig(t, 1)
		svc := r.service(t)
		tn, _ := svc.NewTenant()
		n := int64(64 << 10)
		src := tn.Alloc(n)
		dst := tn.Alloc(n)
		sim.NewRand(3).Bytes(src.Bytes())
		r.run(func(p *sim.Proc) {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, mode); err != nil {
				t.Errorf("mode %v: %v", mode, err)
			}
		})
		if !bytes.Equal(dst.Bytes(), src.Bytes()) {
			t.Fatalf("mode %v: copy incomplete", mode)
		}
	}
}

func TestNUMALocalPicksSameSocketWQ(t *testing.T) {
	r := newRig(t, 2)
	wqs := r.wqs()
	s := offload.NewNUMALocal()
	for i := 0; i < 4; i++ {
		if got := s.Pick(offload.Request{Socket: 0}, wqs); got.Dev.Cfg.Socket != 0 {
			t.Fatalf("socket-0 pick %d landed on socket %d", i, got.Dev.Cfg.Socket)
		}
		if got := s.Pick(offload.Request{Socket: 1}, wqs); got.Dev.Cfg.Socket != 1 {
			t.Fatalf("socket-1 pick %d landed on socket %d", i, got.Dev.Cfg.Socket)
		}
	}
	// No local device: socket 5 falls back to the full set.
	if got := s.Pick(offload.Request{Socket: 5}, wqs); got == nil {
		t.Fatal("fallback pick returned nil")
	}
}

// schedElapsed measures the virtual time a socket-0 tenant needs for count
// synchronous 16KB copies between socket-0 buffers under the scheduler.
func schedElapsed(t *testing.T, sched offload.Scheduler, count int) sim.Time {
	t.Helper()
	r := newRig(t, 2)
	svc := r.service(t, offload.WithScheduler(sched))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(16 << 10)
	src := tn.Alloc(n)
	dst := tn.Alloc(n)
	var elapsed sim.Time
	r.run(func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < count; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
				return
			}
		}
		elapsed = p.Now() - start
	})
	return elapsed
}

// The acceptance experiment: on a two-socket platform with one device per
// socket, NUMA-local scheduling must not lose to blind round-robin for a
// local workload — round-robin sends half the descriptors across UPI and
// pays the remote-socket latency on every leg (Fig 6a).
func TestNUMALocalBeatsRoundRobinOnTwoSockets(t *testing.T) {
	const count = 100
	rrT := schedElapsed(t, offload.NewRoundRobin(), count)
	localT := schedElapsed(t, offload.NewNUMALocal(), count)
	if localT > rrT {
		t.Fatalf("NUMALocal (%v) slower than RoundRobin (%v) for socket-local copies", localT, rrT)
	}
	if float64(rrT) < 1.01*float64(localT) {
		t.Logf("warning: NUMA advantage small: RR %v vs local %v", rrT, localT)
	}
}

// loadedElapsed measures count 64KB copies from a tenant while a hog keeps
// the first WQ's backlog deep; sched routes around it or not.
func loadedElapsed(t *testing.T, sched offload.Scheduler, count int) sim.Time {
	t.Helper()
	r := newRig(t, 2)
	svc := r.service(t, offload.WithScheduler(sched))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src := tn.Alloc(n)
	dst := tn.Alloc(n)

	// The hog saturates device 0's WQ with large transfers submitted
	// outside the service (a bulk tenant pinned to one queue).
	hogAS := mem.NewAddressSpace(99)
	r.devs[0].BindPASID(hogAS)
	hogWQ := r.devs[0].WQs()[0]
	hogCl := dsa.NewClient(hogWQ, nil)
	hn := int64(1 << 20)
	hsrc := hogAS.Alloc(hn, mem.OnNode(r.sys.Node(0)))
	hdst := hogAS.Alloc(hn, mem.OnNode(r.sys.Node(0)))

	var elapsed sim.Time
	r.e.Go("hog", func(p *sim.Proc) {
		for i := 0; i < 24; i++ {
			hogCl.Prepare(p)
			if _, err := hogCl.Submit(p, dsa.Descriptor{
				Op: dsa.OpMemmove, PASID: 99, Src: hsrc.Addr(0), Dst: hdst.Addr(0), Size: hn,
			}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.e.Go("tenant", func(p *sim.Proc) {
		p.Sleep(2 * time.Microsecond) // let the hog backlog build
		start := p.Now()
		for i := 0; i < count; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
				return
			}
		}
		elapsed = p.Now() - start
	})
	r.e.Run()
	return elapsed
}

// LeastLoaded must beat RoundRobin when one WQ carries a deep backlog:
// round-robin keeps handing every other descriptor to the hogged queue,
// where it waits behind megabyte transfers.
func TestLeastLoadedBeatsRoundRobinUnderAsymmetricLoad(t *testing.T) {
	const count = 40
	rrT := loadedElapsed(t, offload.NewRoundRobin(), count)
	llT := loadedElapsed(t, offload.NewLeastLoaded(), count)
	if llT >= rrT {
		t.Fatalf("LeastLoaded (%v) not faster than RoundRobin (%v) under asymmetric load", llT, rrT)
	}
}

func TestBoundedRetriesPropagateErrWQFull(t *testing.T) {
	// One engine, one 2-entry WQ: the third in-flight megabyte copy fills
	// the queue and the next submission is rejected.
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 1, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	pol := offload.DefaultPolicy()
	pol.MaxRetries = 2
	svc, err := offload.NewService(e, sys, dev.WQs(), offload.WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1 << 20)
	src := tn.Alloc(4 * n)
	dst := tn.Alloc(4 * n)
	e.Go("test", func(p *sim.Proc) {
		var futs []*offload.Future
		var submitErr error
		for i := int64(0); i < 4; i++ {
			f, err := tn.Copy(p, dst.Addr(i*n), src.Addr(i*n), n)
			if err != nil {
				submitErr = err
				break
			}
			futs = append(futs, f)
		}
		if submitErr == nil {
			t.Error("4th submission onto a full 2-entry WQ should fail after bounded retries")
			return
		}
		if !errors.Is(submitErr, dsa.ErrWQFull) {
			t.Errorf("error %v does not wrap dsa.ErrWQFull", submitErr)
		}
		// The accepted operations still complete.
		for _, f := range futs {
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
		}
	})
	e.Run()
	if tn.Stats().Failures == 0 {
		t.Fatal("failure not counted")
	}
}

func TestAutoBatcherCoalescesSubThresholdCopies(t *testing.T) {
	r := newRig(t, 1)
	pol := offload.DefaultPolicy()
	pol.AutoBatch = 8
	svc := r.service(t, offload.WithPolicy(pol))
	tn, _ := svc.NewTenant()
	n := int64(1 << 10)
	src := tn.Alloc(8 * n)
	dst := tn.Alloc(8 * n)
	sim.NewRand(5).Bytes(src.Bytes())
	r.run(func(p *sim.Proc) {
		var futs []*offload.Future
		for i := int64(0); i < 8; i++ {
			f, err := tn.Copy(p, dst.Addr(i*n), src.Addr(i*n), n)
			if err != nil {
				t.Error(err)
				return
			}
			futs = append(futs, f)
		}
		// The eighth operation reached Policy.AutoBatch and flushed.
		if pend := tn.Batcher().Pending(); pend != 0 {
			t.Errorf("batcher still holds %d ops after reaching the flush size", pend)
		}
		for _, f := range futs {
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("auto-batched copies incomplete")
	}
	st := tn.Stats()
	if st.Coalesce != 8 || st.Batches != 1 || st.HWOps != 1 {
		t.Fatalf("stats = %+v, want 8 coalesced into 1 batch", st)
	}
	if st.SWOps != 0 {
		t.Fatalf("sub-threshold ops leaked to the core: %+v", st)
	}
}

func TestWaitOnPendingFutureFlushesBatch(t *testing.T) {
	r := newRig(t, 1)
	pol := offload.DefaultPolicy()
	pol.AutoBatch = 32
	svc := r.service(t, offload.WithPolicy(pol))
	tn, _ := svc.NewTenant()
	n := int64(512)
	src := tn.Alloc(4 * n)
	dst := tn.Alloc(4 * n)
	sim.NewRand(6).Bytes(src.Bytes())
	r.run(func(p *sim.Proc) {
		var futs []*offload.Future
		for i := int64(0); i < 4; i++ {
			f, err := tn.Copy(p, dst.Addr(i*n), src.Addr(i*n), n)
			if err != nil {
				t.Error(err)
				return
			}
			futs = append(futs, f)
		}
		if futs[0].Done() {
			t.Error("queued operation reported done before flush")
		}
		// Waiting on any queued future flushes the whole batch.
		if _, err := futs[0].Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
		for _, f := range futs[1:] {
			if !f.Done() {
				t.Error("sibling still pending after batch completed")
			}
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("flushed copies incomplete")
	}
}

func TestMultiTenantSharedWQ(t *testing.T) {
	// Two tenants with distinct PASIDs submit concurrently through one
	// shared-mode WQ (the ENQCMD path); each operates in its own address
	// space.
	r := newRig(t, 1, dsa.WQConfig{Mode: dsa.Shared, Size: 32})
	svc := r.service(t)
	t1, _ := svc.NewTenant()
	t2, _ := svc.NewTenant()
	if t1.AS.PASID == t2.AS.PASID {
		t.Fatal("tenants share a PASID")
	}
	n := int64(64 << 10)
	src1, dst1 := t1.Alloc(n), t1.Alloc(n)
	src2, dst2 := t2.Alloc(n), t2.Alloc(n)
	sim.NewRand(7).Bytes(src1.Bytes())
	sim.NewRand(8).Bytes(src2.Bytes())
	for i, pair := range []struct {
		tn       *offload.Tenant
		src, dst *mem.Buffer
	}{{t1, src1, dst1}, {t2, src2, dst2}} {
		pair := pair
		r.e.Go([]string{"t1", "t2"}[i], func(p *sim.Proc) {
			for k := 0; k < 8; k++ {
				f, err := pair.tn.Copy(p, pair.dst.Addr(0), pair.src.Addr(0), n)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := f.Wait(p, offload.Poll); err != nil {
					t.Error(err)
				}
			}
		})
	}
	r.e.Run()
	if !bytes.Equal(dst1.Bytes(), src1.Bytes()) || !bytes.Equal(dst2.Bytes(), src2.Bytes()) {
		t.Fatal("multi-tenant copies incomplete")
	}
	if r.devs[0].Stats().Submitted != 16 {
		t.Fatalf("device saw %d descriptors, want 16", r.devs[0].Stats().Submitted)
	}
}

func TestTenantAllocPrefersDRAM(t *testing.T) {
	// A system whose socket lists CXL before DRAM: the tenant allocator
	// must still land default allocations on DRAM, and AllocOn must honor
	// explicit node ids.
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	svc, err := offload.NewService(e, sys, dev.WQs())
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := svc.NewTenant()
	if b := tn.Alloc(4096); b.Node.Kind != mem.DRAM {
		t.Fatalf("default allocation landed on %v, want DRAM", b.Node.Kind)
	}
	if b := tn.AllocOn(0, 4096); b.Node.Kind != mem.CXL {
		t.Fatalf("AllocOn(0) landed on %v, want the CXL node", b.Node.Kind)
	}
}
