package offload

import (
	"dsasim/internal/mem"
)

// scratchKey identifies one reuse class of the tenant's scratch pool: the
// node the buffer lives on and its exact size. Pipeline intermediates are a
// handful of (socket, size) shapes repeated every flush, so exact-size
// pooling reuses without fragmentation bookkeeping.
type scratchKey struct {
	node *mem.Node
	size int64
}

// AllocScratch returns a size-byte scratch buffer on the given socket's
// DRAM node, reusing a previously released buffer of the same shape when
// one is pooled. Pipeline submissions allocate their intermediate-stage
// buffers through this, so a steady-state pipeline (alloc at Submit,
// FreeScratch at completion) performs zero heap allocations per flush —
// asserted by TestScratchPoolZeroAllocs.
func (t *Tenant) AllocScratch(size int64, socket int) *mem.Buffer {
	node := t.scratchNode(socket)
	k := scratchKey{node: node, size: size}
	if pool := t.scratch[k]; len(pool) > 0 {
		b := pool[len(pool)-1]
		t.scratch[k] = pool[:len(pool)-1]
		return b
	}
	if t.scratch == nil {
		t.scratch = make(map[scratchKey][]*mem.Buffer)
	}
	return t.AS.Alloc(size, mem.OnNode(node))
}

// FreeScratch returns a buffer obtained from AllocScratch to the pool. The
// buffer's contents are not cleared — scratch is transient by contract.
func (t *Tenant) FreeScratch(b *mem.Buffer) {
	if b == nil {
		return
	}
	if t.scratch == nil {
		t.scratch = make(map[scratchKey][]*mem.Buffer)
	}
	k := scratchKey{node: b.Node, size: b.Size}
	t.scratch[k] = append(t.scratch[k], b)
}

// scratchNode resolves the DRAM node scratch lands on for a socket,
// preferring DRAM over expander media (an intermediate buffer is written
// and immediately re-read by the next stage — the last data that belongs on
// a CXL pipe) and falling back to the tenant's local node when the socket
// has none.
func (t *Tenant) scratchNode(socket int) *mem.Node {
	if socket >= 0 && socket < len(t.S.Sys.Sockets) {
		for _, n := range t.S.Sys.SocketOf(socket).Nodes {
			if n.Kind == mem.DRAM {
				return n
			}
		}
		if nodes := t.S.Sys.SocketOf(socket).Nodes; len(nodes) > 0 {
			return nodes[0]
		}
	}
	return t.localNode()
}
