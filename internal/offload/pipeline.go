// Operation pipelines: fused multi-op DAGs (§4/§6, ROADMAP item 4).
//
// The paper's central software lesson is that DSA wins come from amortizing
// fixed costs — descriptor preparation, the portal write, engine setup, the
// completion round trip — across chained work. A Pipeline lets a caller
// declare a small DAG of dependent transform stages (DIF-strip → CRC →
// move, decompress → CRC → move, ...) and submits every run of consecutive
// device stages as ONE fenced batch: one admission token, one portal write,
// one completion window for the whole chain, with FlagFence encoding the
// level ordering inside the batch (the device's issueReady barrier). The
// sequential alternative pays the full submit→wait round trip between every
// stage — the pipeline experiment measures the gap.
//
// Stages that no DSA opcode covers (ISA-L decompression, fabric sends) run
// through the StageExecutor interface on the same sim timeline: the driver
// flushes the pending chain, runs the software stage on the tenant's core,
// and resumes fusing. Placement is intermediate-buffer-aware: most of a
// pipeline's operands are scratch intermediates that do not exist until the
// pipeline picks a socket, so PipelineSocket scores candidates by queueing
// delay plus the UPI penalty of the *fixed* legs only, and AllocScratch
// then pins the intermediates (and with them every stage) to the winner.
package offload

import (
	"fmt"

	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Ref names one stage operand: either a fixed address that exists before
// the pipeline runs (At), or a scratch intermediate the pipeline allocates
// on the placement-chosen socket at Submit (Pipeline.Scratch). The zero Ref
// means "operand unused".
type Ref struct {
	addr mem.Addr
	sc   int // 1+index into the pipeline's scratch declarations; 0 = fixed
	off  int64
}

// At references a fixed address (an existing buffer).
func At(a mem.Addr) Ref { return Ref{addr: a} }

// Off offsets the reference by n bytes.
func (r Ref) Off(n int64) Ref { r.off += n; return r }

// set reports whether the operand is used.
func (r Ref) set() bool { return r != Ref{} }

// StageIO is the resolved operand view handed to a StageExecutor once the
// pipeline has placed its scratch buffers.
type StageIO struct {
	Src, Dst mem.Addr
	Size     int64 // stage input size
	MaxDst   int64 // output bound for expanding stages (0: same as Size)
}

// StageExecutor runs one non-DSA pipeline stage on the sim timeline. Run
// executes in the pipeline driver process after every earlier level has
// completed; it should sleep the stage's modelled duration on p (charging
// the tenant's core where appropriate) and return the stage's result value.
// Engine names the executing engine type for reports.
type StageExecutor interface {
	Engine() string
	Run(p *sim.Proc, t *Tenant, io StageIO) (uint64, error)
}

// Inflate is the ISA-L software decompression stage (DSA has no decompress
// opcode): it inflates Size compressed bytes at Src into at most MaxDst
// bytes at Dst on the tenant's core and returns the produced length.
type Inflate struct{}

// Engine implements StageExecutor.
func (Inflate) Engine() string { return "isal" }

// Run implements StageExecutor.
func (Inflate) Run(p *sim.Proc, t *Tenant, io StageIO) (uint64, error) {
	n, dur, err := t.Core.Decompress(io.Dst, io.Src, io.Size, io.MaxDst)
	if err != nil {
		return 0, err
	}
	p.Sleep(dur)
	return uint64(n), nil
}

// SoftCRC32 is the ISA-L software CRC stage, for pipelines that keep the
// digest on the core (e.g. when the device stages saturate the WQ).
type SoftCRC32 struct{ Seed uint32 }

// Engine implements StageExecutor.
func (SoftCRC32) Engine() string { return "isal" }

// Run implements StageExecutor.
func (s SoftCRC32) Run(p *sim.Proc, t *Tenant, io StageIO) (uint64, error) {
	crc, dur, err := t.Core.CRC32(io.Src, io.Size, s.Seed)
	if err != nil {
		return 0, err
	}
	p.Sleep(dur)
	return uint64(crc), nil
}

// FabricSend streams the stage's source bytes into a fabric pipe (NIC,
// inter-node link) — the terminal stage of a transform-then-transmit
// pipeline. The driver blocks until the pipe drains the payload.
type FabricSend struct{ Pipe *sim.Pipe }

// Engine implements StageExecutor.
func (FabricSend) Engine() string { return "fabric" }

// Run implements StageExecutor.
func (f FabricSend) Run(p *sim.Proc, t *Tenant, io StageIO) (uint64, error) {
	done := f.Pipe.Reserve(io.Size)
	if now := p.Now(); done > now {
		p.Sleep(done - now)
	}
	return uint64(io.Size), nil
}

// Stage is a handle to one pipeline stage, used to declare dependencies
// (After) and to read the stage's result once the pipeline completes.
type Stage struct {
	pl *Pipeline
	i  int
}

// Result returns the stage's op-specific result value (CRC, delta-record
// size, produced bytes), valid once the pipeline's Future has resolved.
func (s *Stage) Result() uint64 { return s.pl.stages[s.i].result }

// Output returns the resolved address of the stage's destination operand,
// valid once Submit has placed the pipeline's scratch buffers.
func (s *Stage) Output() mem.Addr { return s.pl.resolve(s.pl.stages[s.i].dst) }

// StageOption customizes one stage at declaration.
type StageOption func(*pstage)

// After declares dependencies: the stage runs only after every listed stage
// completes. Stages without dependencies form the DAG's first level.
func After(deps ...*Stage) StageOption {
	return func(st *pstage) { st.deps = append(st.deps, deps...) }
}

// pstage is the internal stage record: a descriptor template whose operand
// addresses are re-resolved from the Refs at every Submit, or a software
// executor, plus the DAG level computed from its dependencies.
type pstage struct {
	d    dsa.Descriptor // template for device stages (op, size, op params)
	exec StageExecutor  // non-nil for software/fabric stages

	src, src2, dst, dst2 Ref

	deps   []*Stage
	level  int
	result uint64
}

// Pipeline is one declared DAG. Declare stages once, then Submit per
// iteration: a pipeline is reusable after its Future resolves (scratch
// buffers recycle through the tenant pool and stage state is reset), which
// keeps steady-state submission allocation-light. A Pipeline must not be
// re-submitted while a previous submission is still in flight.
type Pipeline struct {
	t      *Tenant
	stages []pstage
	err    error

	scratchSizes []int64
	scratchBufs  []*mem.Buffer

	// Reused driver buffers.
	order    []int
	chain    []dsa.Descriptor
	chainIdx []int
	legs     []PipelineLeg

	// home is the socket the last Submit placed the pipeline on.
	home int

	// failed is the index of the stage whose fault ended the last
	// submission (-1 when the last run succeeded). Stages after it in a
	// fenced chain were poisoned — never attempted — by the device's
	// fence barrier.
	failed int
}

// NewPipeline starts an empty pipeline DAG for the tenant.
func (t *Tenant) NewPipeline() *Pipeline { return &Pipeline{t: t, home: -1, failed: -1} }

// FailedStage returns the index (declaration order) of the stage whose
// fault ended the last submission, or -1 when it succeeded. Valid once
// the submission's Future has resolved.
func (pl *Pipeline) FailedStage() int { return pl.failed }

// Scratch declares a size-byte intermediate buffer. It is allocated (from
// the tenant's scratch pool) on the pipeline's chosen socket at Submit and
// released when the pipeline completes — referencing it is what makes a
// stage's placement follow the intermediate data.
func (pl *Pipeline) Scratch(size int64) Ref {
	pl.scratchSizes = append(pl.scratchSizes, size)
	return Ref{sc: len(pl.scratchSizes)}
}

// add appends one stage, computing its DAG level from its dependencies.
func (pl *Pipeline) add(st pstage, opts []StageOption) *Stage {
	for _, o := range opts {
		o(&st)
	}
	for _, dep := range st.deps {
		if dep == nil || dep.pl != pl {
			pl.err = fmt.Errorf("offload: pipeline stage depends on a stage of another pipeline")
			continue
		}
		if l := pl.stages[dep.i].level + 1; l > st.level {
			st.level = l
		}
	}
	// Fixed addresses in a generic descriptor template become fixed refs so
	// placement and re-resolution treat every stage uniformly.
	if !st.src.set() && st.d.Src != 0 {
		st.src = At(st.d.Src)
	}
	if !st.src2.set() && st.d.Src2 != 0 {
		st.src2 = At(st.d.Src2)
	}
	if !st.dst.set() && st.d.Dst != 0 {
		st.dst = At(st.d.Dst)
	}
	if !st.dst2.set() && st.d.Dst2 != 0 {
		st.dst2 = At(st.d.Dst2)
	}
	pl.stages = append(pl.stages, st)
	return &Stage{pl: pl, i: len(pl.stages) - 1}
}

// Copy appends a device move stage.
func (pl *Pipeline) Copy(dst, src Ref, n int64, opts ...StageOption) *Stage {
	return pl.add(pstage{d: dsa.Descriptor{Op: dsa.OpMemmove, Size: n}, src: src, dst: dst}, opts)
}

// Fill appends a device pattern-fill stage.
func (pl *Pipeline) Fill(dst Ref, n int64, pattern uint64, opts ...StageOption) *Stage {
	return pl.add(pstage{d: dsa.Descriptor{Op: dsa.OpFill, Size: n, Pattern: pattern}, dst: dst}, opts)
}

// CRC32 appends a device CRC-generation stage; the stage Result is the CRC.
func (pl *Pipeline) CRC32(src Ref, n int64, seed uint32, opts ...StageOption) *Stage {
	return pl.add(pstage{d: dsa.Descriptor{Op: dsa.OpCRCGen, Size: n, CRCSeed: seed}, src: src}, opts)
}

// CopyCRC appends a fused device copy+CRC stage.
func (pl *Pipeline) CopyCRC(dst, src Ref, n int64, seed uint32, opts ...StageOption) *Stage {
	return pl.add(pstage{d: dsa.Descriptor{Op: dsa.OpCopyCRC, Size: n, CRCSeed: seed}, src: src, dst: dst}, opts)
}

// Compare appends a device compare stage; Result is the mismatch offset.
func (pl *Pipeline) Compare(a, b Ref, n int64, opts ...StageOption) *Stage {
	return pl.add(pstage{d: dsa.Descriptor{Op: dsa.OpCompare, Size: n}, src: a, src2: b}, opts)
}

// DIFStrip appends a device DIF verify-and-strip stage over n protected
// bytes.
func (pl *Pipeline) DIFStrip(dst, src Ref, n int64, bs dif.BlockSize, tags dif.Tags, opts ...StageOption) *Stage {
	return pl.add(pstage{
		d:   dsa.Descriptor{Op: dsa.OpDIFStrip, Size: n, DIFBlock: bs, DIFTags: tags},
		src: src, dst: dst,
	}, opts)
}

// DIFInsert appends a device DIF protection-insert stage over n raw bytes.
func (pl *Pipeline) DIFInsert(dst, src Ref, n int64, bs dif.BlockSize, tags dif.Tags, opts ...StageOption) *Stage {
	return pl.add(pstage{
		d:   dsa.Descriptor{Op: dsa.OpDIFInsert, Size: n, DIFBlock: bs, DIFTags: tags},
		src: src, dst: dst,
	}, opts)
}

// CreateDelta appends a device delta-record stage; Result is the record
// bytes used.
func (pl *Pipeline) CreateDelta(record, orig, mod Ref, n, maxRecord int64, opts ...StageOption) *Stage {
	return pl.add(pstage{
		d:   dsa.Descriptor{Op: dsa.OpCreateDelta, Size: n, MaxDst: maxRecord},
		src: orig, src2: mod, dst: record,
	}, opts)
}

// Stage appends a generic device stage from a descriptor template (operand
// addresses may be fixed in the template or left zero and set via refs on
// the specialized helpers).
func (pl *Pipeline) Stage(d dsa.Descriptor, opts ...StageOption) *Stage {
	return pl.add(pstage{d: d}, opts)
}

// Exec appends a software/fabric stage run through x. n is the stage input
// size; maxDst bounds the output for expanding stages (0 means n).
func (pl *Pipeline) Exec(x StageExecutor, dst, src Ref, n, maxDst int64, opts ...StageOption) *Stage {
	return pl.add(pstage{d: dsa.Descriptor{Size: n, MaxDst: maxDst}, exec: x, src: src, dst: dst}, opts)
}

// Decompress appends an ISA-L inflate stage (software: DSA has no
// decompress opcode); Result is the produced byte count.
func (pl *Pipeline) Decompress(dst, src Ref, n, maxDst int64, opts ...StageOption) *Stage {
	return pl.Exec(Inflate{}, dst, src, n, maxDst, opts...)
}

// Send appends a fabric-send stage streaming n bytes from src into pipe.
func (pl *Pipeline) Send(pipe *sim.Pipe, src Ref, n int64, opts ...StageOption) *Stage {
	return pl.Exec(FabricSend{Pipe: pipe}, Ref{}, src, n, 0, opts...)
}

// Home returns the socket the last Submit placed the pipeline on (-1 before
// the first submission).
func (pl *Pipeline) Home() int { return pl.home }

// resolve maps a Ref to its concrete address for the current submission.
func (pl *Pipeline) resolve(r Ref) mem.Addr {
	if r.sc == 0 {
		return r.addr + mem.Addr(r.off)
	}
	return pl.scratchBufs[r.sc-1].Addr(r.off)
}

// homeSocket scores candidate sockets for this submission by the fixed data
// legs only (see PipelineSocket) — scratch intermediates follow the choice.
func (pl *Pipeline) homeSocket() int {
	t := pl.t
	fallback := t.Core.Socket
	if !t.S.dataAware || t.S.topo == nil {
		return fallback
	}
	pl.legs = pl.legs[:0]
	for i := range pl.stages {
		st := &pl.stages[i]
		pl.addLeg(st.src, st.d.Size, false)
		pl.addLeg(st.src2, st.d.Size, false)
		pl.addLeg(st.dst, st.d.Size, true)
		pl.addLeg(st.dst2, st.d.Size, true)
	}
	return PipelineSocket(t.S.topo, pl.legs, fallback)
}

// addLeg records one fixed operand as a placement leg; scratch operands are
// skipped — they live wherever the pipeline lands, by construction.
func (pl *Pipeline) addLeg(r Ref, size int64, write bool) {
	if !r.set() || r.sc != 0 {
		return
	}
	n := pl.t.AS.NodeAt(r.addr + mem.Addr(r.off))
	if n == nil {
		return
	}
	pl.legs = append(pl.legs, PipelineLeg{Node: n, Size: size, Write: write})
}

// buildOrder fills pl.order with stage indices sorted by level (stable:
// declaration order within a level), allocation-free at steady state.
func (pl *Pipeline) buildOrder() {
	pl.order = pl.order[:0]
	maxLevel := 0
	for i := range pl.stages {
		if pl.stages[i].level > maxLevel {
			maxLevel = pl.stages[i].level
		}
	}
	for l := 0; l <= maxLevel; l++ {
		for i := range pl.stages {
			if pl.stages[i].level == l {
				pl.order = append(pl.order, i)
			}
		}
	}
}

// Submit places, compiles, and launches the pipeline, returning a Future
// that resolves when the final stage completes. The whole DAG costs one
// admission token. The driver runs as its own sim process: consecutive
// device levels are fused into fenced batch chains — one portal write and
// one completion wait per chain — with software stages executed between
// chains. Submit returns as soon as the driver is launched, so callers can
// keep several pipelines in flight.
func (pl *Pipeline) Submit(p *sim.Proc) (*Future, error) {
	t := pl.t
	if pl.err != nil {
		return nil, pl.err
	}
	if len(pl.stages) == 0 {
		return nil, fmt.Errorf("offload: empty pipeline")
	}
	if err := t.admit(p); err != nil {
		return nil, err
	}
	t.stats.pipelines.Add(1)
	pl.home = pl.homeSocket()
	pl.scratchBufs = pl.scratchBufs[:0]
	for _, size := range pl.scratchSizes {
		pl.scratchBufs = append(pl.scratchBufs, t.AllocScratch(size, pl.home))
	}
	for i := range pl.stages {
		pl.stages[i].result = 0
	}
	pl.failed = -1
	pl.buildOrder()
	run := &pipeRun{}
	f := &Future{t: t, run: run, op: dsa.OpBatch, start: p.Now()}
	t.S.E.Go("pipeline", func(dp *sim.Proc) {
		pl.drive(dp, run)
	})
	return f, nil
}

// drive walks the DAG level by level: device stages accumulate into the
// current fenced chain (a fence opens every new level, so the device's
// issueReady barrier enforces the dependency order inside one batch), and a
// level containing software stages first flushes the chain — its results
// are inputs — then runs them inline. Chains are bounded by the device
// batch limit; a chain cut mid-level flushes and the remainder continues
// unfenced (the flush wait is a stronger barrier than the fence it
// replaces).
func (pl *Pipeline) drive(p *sim.Proc, run *pipeRun) {
	t := pl.t
	e := t.S.E
	maxChain := t.S.maxBatch
	if maxChain < 2 {
		maxChain = 2
	}
	pl.chain = pl.chain[:0]
	pl.chainIdx = pl.chainIdx[:0]
	hardware := false

	finish := func(err error) {
		for _, b := range pl.scratchBufs {
			t.FreeScratch(b)
		}
		res := Result{Hardware: hardware}
		if err == nil {
			res.Record = dsa.CompletionRecord{Status: dsa.StatusSuccess, Result: uint64(len(pl.stages))}
		}
		run.finish(e, res, err)
	}

	flush := func() error {
		if len(pl.chain) == 0 {
			return nil
		}
		retries := 0
		for {
			f, err := t.submitChainPinned(p, pl.chain, pl.home)
			if err != nil {
				return err
			}
			hardware = true
			res, err := f.Wait(p, t.policy.Wait)
			if err != nil {
				// A batch chain whose first failure is a recoverable fault
				// is re-run whole within the retry budget: the chain's ops
				// are idempotent by construction (they write scratch or
				// their declared outputs), so re-running already-applied
				// children is safe, and the fence barrier poisoned — never
				// ran — everything past the fault. Lone-descriptor chains
				// already recovered on the Future path; a surviving error
				// there is terminal.
				if k := firstFailedChild(&res.Record); k >= 0 &&
					recoverableStatus(res.Record.Children[k].Status) && retries < t.policy.RetryMax {
					retries++
					t.stats.faults.Add(1)
					t.S.met.fault()
					t.stats.retries.Add(1)
					t.S.met.retry()
					if t.policy.RetryBackoff > 0 {
						p.Sleep(sim.Time(t.policy.RetryBackoff))
					}
					continue
				}
				return pl.chainError(&res.Record, err)
			}
			if len(pl.chainIdx) == 1 {
				pl.stages[pl.chainIdx[0]].result = res.Record.Result
			} else {
				for k, rec := range res.Record.Children {
					pl.stages[pl.chainIdx[k]].result = rec.Result
				}
			}
			pl.chain = pl.chain[:0]
			pl.chainIdx = pl.chainIdx[:0]
			return nil
		}
	}

	for i := 0; i < len(pl.order); {
		level := pl.stages[pl.order[i]].level
		j := i
		hasExec := false
		for ; j < len(pl.order) && pl.stages[pl.order[j]].level == level; j++ {
			if pl.stages[pl.order[j]].exec != nil {
				hasExec = true
			}
		}
		if hasExec {
			// Software stages read the previous levels' outputs: the chain
			// must land before they run.
			if err := flush(); err != nil {
				finish(err)
				return
			}
			for _, si := range pl.order[i:j] {
				st := &pl.stages[si]
				if st.exec == nil {
					continue
				}
				io := StageIO{
					Src:    pl.resolve(st.src),
					Dst:    pl.resolve(st.dst),
					Size:   st.d.Size,
					MaxDst: st.d.MaxDst,
				}
				if io.MaxDst == 0 {
					io.MaxDst = io.Size
				}
				res, err := st.exec.Run(p, t, io)
				if err != nil {
					finish(err)
					return
				}
				st.result = res
			}
		}
		newLevel := true
		for _, si := range pl.order[i:j] {
			st := &pl.stages[si]
			if st.exec != nil {
				continue
			}
			if len(pl.chain) >= maxChain {
				if err := flush(); err != nil {
					finish(err)
					return
				}
			}
			d := st.d
			d.Src = pl.resolve(st.src)
			d.Src2 = pl.resolve(st.src2)
			d.Dst = pl.resolve(st.dst)
			d.Dst2 = pl.resolve(st.dst2)
			if newLevel && len(pl.chain) > 0 {
				// The first device stage of a new level fences the chain:
				// everything queued so far must complete before this level
				// issues (engine.go issueReady).
				d.Flags |= dsa.FlagFence
			}
			pl.chain = append(pl.chain, d)
			pl.chainIdx = append(pl.chainIdx, si)
			newLevel = false
		}
		i = j
	}
	if err := flush(); err != nil {
		finish(err)
		return
	}
	finish(nil)
}

// firstFailedChild returns the index of the first child record that
// completed with a failure status, or -1 (success, a non-batch record,
// or only poisoned StatusNone children — the latter cannot happen: a
// poisoned batch has a failed child before the fence).
func firstFailedChild(rec *dsa.CompletionRecord) int {
	for k := range rec.Children {
		if s := rec.Children[k].Status; s != dsa.StatusSuccess && s != dsa.StatusNone {
			return k
		}
	}
	return -1
}

// chainError maps a failed chain wait onto the pipeline stage that
// caused it, recording it in pl.failed and wrapping the error with the
// stage identity. For a batch chain the failing stage is the first
// failed child (later same-chain stages were poisoned by the fence and
// hold StatusNone "never attempted" records); a lone-descriptor chain is
// its only stage. The fault sentinels (ErrFaulted, ErrDeviceFailed)
// stay in the chain via faultError, so errors.Is holds through the
// pipeline Future.
func (pl *Pipeline) chainError(rec *dsa.CompletionRecord, err error) error {
	stage, cause := -1, err
	if k := firstFailedChild(rec); k >= 0 && k < len(pl.chainIdx) {
		stage = pl.chainIdx[k]
		if ferr := faultError(rec.Children[k]); ferr != nil {
			cause = ferr
		}
	} else if len(pl.chainIdx) == 1 {
		stage = pl.chainIdx[0]
	}
	if stage < 0 {
		return err
	}
	pl.failed = stage
	return fmt.Errorf("offload: pipeline stage %d (%v): %w", stage, pl.stages[stage].d.Op, cause)
}

// submitChainPinned submits one compiled chain to the pipeline's socket:
// one batch parent for a multi-descriptor chain, a plain submission for a
// lone survivor (the device's ≥2 batch rule). The chain slice is copied —
// the device holds it asynchronously while the driver reuses its buffer.
func (t *Tenant) submitChainPinned(p *sim.Proc, chain []dsa.Descriptor, socket int) (*Future, error) {
	if len(chain) == 1 {
		d := chain[0]
		d.Flags &^= dsa.FlagFence // nothing precedes it in its batch
		f, err := t.submitPinned(p, d, 0, socket)
		if err == nil {
			t.stats.hwBytes.Add(d.Size)
		}
		return f, err
	}
	sub := make([]dsa.Descriptor, len(chain))
	copy(sub, chain)
	t.stats.batches.Add(1)
	f, err := t.submitPinned(p, dsa.Descriptor{Op: dsa.OpBatch, Descs: sub}, 0, socket)
	if err == nil {
		for i := range sub {
			t.stats.hwBytes.Add(sub[i].Size)
		}
	}
	return f, err
}
