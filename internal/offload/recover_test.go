package offload_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// recoveryPolicy is the default policy with fault recovery armed.
func recoveryPolicy(retries int, backoff time.Duration, fallbackAfter int) offload.Policy {
	pol := offload.DefaultPolicy()
	pol.RetryMax = retries
	pol.RetryBackoff = backoff
	pol.FallbackAfter = fallbackAfter
	return pol
}

// A partial completion is continued, not restarted: the retry resubmits
// only the remainder past CompletionRecord.BytesCompleted, and the
// reassembled buffer is byte-correct. The injected fault storm covers
// the first attempt; the backoff carries the retry past it.
func TestRecoveryContinuesPartialCompletion(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.devs[0].InjectFaults(dsa.FaultConfig{
		Seed:   21,
		Bursts: []dsa.FaultBurst{{At: 0, Dur: sim.Time(2 * time.Microsecond), Per4K: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	svc := r.service(t)
	tn, err := svc.NewTenant(offload.TenantPolicy(recoveryPolicy(3, 3*time.Microsecond, 0)))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(256 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	sim.NewRand(2).Bytes(src.Bytes())
	r.run(func(p *sim.Proc) {
		f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := f.Wait(p, offload.Poll)
		if err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		if !res.Hardware {
			t.Error("recovered copy lost its hardware attribution")
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("recovered copy is not byte-correct")
	}
	st := tn.Stats()
	if st.Faults == 0 || st.Retries == 0 {
		t.Fatalf("faults=%d retries=%d, want both nonzero (the storm covers attempt 1)", st.Faults, st.Retries)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("fallbacks=%d, want 0 (recovery succeeded on hardware)", st.Fallbacks)
	}
}

// Under a persistent fault storm the tenant degrades to the software
// path after FallbackAfter consecutive faulted attempts, bounding
// worst-case latency, and the operation still completes byte-correct.
func TestFallbackAfterConsecutiveFaults(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.devs[0].InjectFaults(dsa.FaultConfig{Seed: 22, PageFaultPer4K: 1}); err != nil {
		t.Fatal(err)
	}
	svc := r.service(t)
	tn, err := svc.NewTenant(offload.TenantPolicy(recoveryPolicy(10, 0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	sim.NewRand(3).Bytes(src.Bytes())
	r.run(func(p *sim.Proc) {
		f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Errorf("Wait: %v (fallback should have absorbed the storm)", err)
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("fallback copy is not byte-correct")
	}
	st := tn.Stats()
	if st.Fallbacks != 1 {
		t.Fatalf("fallbacks=%d, want 1", st.Fallbacks)
	}
	if st.Faults != 2 {
		t.Fatalf("faults=%d, want 2 (FallbackAfter=2 engages on the second)", st.Faults)
	}
}

// A faulted child inside a fused pipeline chain re-runs the whole chain
// within the retry budget (the chain's ops are idempotent by
// construction), and the recovered run is byte-correct end to end.
func TestPipelineChainRetriesFaultedBatch(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.devs[0].InjectFaults(dsa.FaultConfig{
		Seed:   23,
		Bursts: []dsa.FaultBurst{{At: 0, Dur: sim.Time(2 * time.Microsecond), Per4K: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	svc := r.service(t)
	tn, err := svc.NewTenant(offload.TenantPolicy(recoveryPolicy(3, 3*time.Microsecond, 0)))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(32 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	sim.NewRand(4).Bytes(src.Bytes())

	pl := tn.NewPipeline()
	tmp := pl.Scratch(n)
	s1 := pl.Copy(tmp, offload.At(src.Addr(0)), n)
	pl.Copy(offload.At(dst.Addr(0)), tmp, n, offload.After(s1))

	r.run(func(p *sim.Proc) {
		f, err := pl.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Errorf("Wait: %v (chain retry should have recovered)", err)
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("retried chain is not byte-correct")
	}
	if got := pl.FailedStage(); got != -1 {
		t.Fatalf("FailedStage() = %d after a recovered run, want -1", got)
	}
	st := tn.Stats()
	if st.Retries == 0 {
		t.Fatalf("retries=%d, want nonzero (the storm covers the first chain)", st.Retries)
	}
}

// A whole-device outage under a submission plane: queued work completes
// with device_offline and is re-queued onto the surviving socket, the
// drain detaches the dead rings (a failover), lanes detour cross-socket,
// and the healed device serves traffic again.
func TestPlaneFailoverOnDeviceOutage(t *testing.T) {
	r := newRig(t, 2, dsa.WQConfig{Mode: dsa.Shared, Size: 16})
	// 256KB ops service at ~5µs apiece against a ~0.4µs submit cadence,
	// so by the 10µs outage instant device 0's WQ is full of queued,
	// undispatched work — exactly what the outage kills and recovery
	// must re-home.
	if _, err := r.devs[0].InjectFaults(dsa.FaultConfig{
		Outages: []dsa.Outage{{At: sim.Time(10 * time.Microsecond), Dur: sim.Time(60 * time.Microsecond)}},
	}); err != nil {
		t.Fatal(err)
	}
	svc := r.service(t)
	pol := recoveryPolicy(2, 0, 0)
	tn, err := svc.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tn.NewPlane(2)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(256 << 10)
	src, dst := tn.Alloc(32*n), tn.Alloc(32*n)
	var done, failed int
	pl.OnCompletion(func(lat sim.Time, ok bool) {
		if ok {
			done++
		} else {
			failed++
		}
	})
	r.run(func(p *sim.Proc) {
		lane := pl.Lane(0)
		for i := int64(0); i < 32; i++ {
			if err := lane.SubmitStamped(p, dsa.Descriptor{
				Op: dsa.OpMemmove, Src: src.Addr(i * n), Dst: dst.Addr(i * n), Size: n,
			}, p.Now()); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
		pl.WaitInflight(p, 0)
		preHeal := done
		if preHeal == 0 {
			t.Error("no completions during the outage epoch")
		}
		// Past the window: the healed device's rings reattach and serve.
		if heal := sim.Time(75 * time.Microsecond); p.Now() < heal {
			p.SleepUntil(heal)
		}
		for i := int64(0); i < 8; i++ {
			if err := lane.Submit(p, dsa.Descriptor{
				Op: dsa.OpMemmove, Src: src.Addr(i * n), Dst: dst.Addr(i * n), Size: n,
			}); err != nil {
				t.Errorf("post-heal submit %d: %v", i, err)
				return
			}
		}
		pl.WaitInflight(p, 0)
		if done <= preHeal {
			t.Errorf("no post-heal completions (done %d -> %d)", preHeal, done)
		}
	})
	// Every submission is accounted: completed or explicitly shed, never
	// silently stranded behind the dead queue.
	if done+failed != 40 {
		t.Fatalf("done=%d failed=%d, want 40 completions accounted", done, failed)
	}
	st := tn.Stats()
	if st.Failovers == 0 {
		t.Fatalf("failovers=%d, want >=1 (the drain must detach the dead rings)", st.Failovers)
	}
	if st.Faults == 0 || st.Retries == 0 {
		t.Fatalf("faults=%d retries=%d, want both nonzero (queued work re-queued cross-socket)", st.Faults, st.Retries)
	}
	t.Logf("done=%d failed=%d faults=%d retries=%d failovers=%d shed=%d",
		done, failed, st.Faults, st.Retries, st.Failovers, st.Failures)
}

// Every terminal error the stack hands back survives its wrapping: the
// sentinels stay errors.Is-visible through tenant submission, Future
// resolution, and pipeline chain joins.
func TestSentinelErrorsSurviveWrapping(t *testing.T) {
	n := int64(256 << 10)

	t.Run("admission", func(t *testing.T) {
		r := newRig(t, 1)
		svc := r.service(t)
		pol := offload.DefaultPolicy()
		pol.AdmitRate = 1 // one token/s: the second submission finds an empty bucket
		pol.AdmitBurst = 1
		pol.AdmitWait = false
		tn, err := svc.NewTenant(offload.TenantPolicy(pol))
		if err != nil {
			t.Fatal(err)
		}
		src, dst := tn.Alloc(n), tn.Alloc(n)
		r.run(func(p *sim.Proc) {
			if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n); err != nil {
				t.Errorf("first copy: %v", err)
				return
			}
			_, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if !errors.Is(err, offload.ErrAdmission) {
				t.Errorf("second copy err = %v, want ErrAdmission", err)
			}
		})
	})

	t.Run("tenant-closed", func(t *testing.T) {
		r := newRig(t, 1)
		svc := r.service(t)
		tn, err := svc.NewTenant()
		if err != nil {
			t.Fatal(err)
		}
		src, dst := tn.Alloc(n), tn.Alloc(n)
		r.run(func(p *sim.Proc) {
			if err := tn.Close(p); err != nil {
				t.Error(err)
				return
			}
			_, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if !errors.Is(err, offload.ErrTenantClosed) {
				t.Errorf("post-close copy err = %v, want ErrTenantClosed", err)
			}
		})
	})

	t.Run("faulted", func(t *testing.T) {
		r := newRig(t, 1)
		if _, err := r.devs[0].InjectFaults(dsa.FaultConfig{Seed: 24, PageFaultPer4K: 1}); err != nil {
			t.Fatal(err)
		}
		svc := r.service(t)
		tn, err := svc.NewTenant(offload.TenantPolicy(recoveryPolicy(1, 0, 0)))
		if err != nil {
			t.Fatal(err)
		}
		src, dst := tn.Alloc(n), tn.Alloc(n)
		r.run(func(p *sim.Proc) {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			_, err = f.Wait(p, offload.Poll)
			if !errors.Is(err, offload.ErrFaulted) {
				t.Errorf("Wait err = %v, want ErrFaulted", err)
			}
			if errors.Is(err, offload.ErrDeviceFailed) {
				t.Error("a page-fault storm is not a device failure")
			}
		})
		if st := tn.Stats(); st.Retries != 1 {
			t.Fatalf("retries=%d, want exactly RetryMax=1", st.Retries)
		}
	})

	t.Run("device-failed", func(t *testing.T) {
		// One engine so the second submission is still queued when the
		// outage kills the queue.
		r := newRigEngines(t, 1)
		if _, err := r.devs[0].InjectFaults(dsa.FaultConfig{
			Outages: []dsa.Outage{{At: sim.Time(1 * time.Microsecond), Dur: sim.Time(20 * time.Microsecond)}},
		}); err != nil {
			t.Fatal(err)
		}
		svc := r.service(t)
		tn, err := svc.NewTenant(offload.TenantPolicy(recoveryPolicy(0, 0, 0)))
		if err != nil {
			t.Fatal(err)
		}
		src, dst := tn.Alloc(2*n), tn.Alloc(2*n)
		r.run(func(p *sim.Proc) {
			f1, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			f2, err := tn.Copy(p, dst.Addr(n), src.Addr(n), n)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f1.Wait(p, offload.Poll); err != nil {
				t.Errorf("dispatched op: %v (work on the engine drains through an outage)", err)
			}
			_, err = f2.Wait(p, offload.Poll)
			if !errors.Is(err, offload.ErrDeviceFailed) {
				t.Errorf("queued op err = %v, want ErrDeviceFailed", err)
			}
		})
	})

	t.Run("pipeline-stage", func(t *testing.T) {
		r := newRig(t, 1)
		if _, err := r.devs[0].InjectFaults(dsa.FaultConfig{Seed: 25, PageFaultPer4K: 1}); err != nil {
			t.Fatal(err)
		}
		svc := r.service(t)
		tn, err := svc.NewTenant(offload.TenantPolicy(recoveryPolicy(0, 0, 0)))
		if err != nil {
			t.Fatal(err)
		}
		m := int64(32 << 10)
		src, dst := tn.Alloc(m), tn.Alloc(m)
		pl := tn.NewPipeline()
		tmp := pl.Scratch(m)
		s1 := pl.Copy(tmp, offload.At(src.Addr(0)), m)
		pl.Copy(offload.At(dst.Addr(0)), tmp, m, offload.After(s1))
		r.run(func(p *sim.Proc) {
			f, err := pl.Submit(p)
			if err != nil {
				t.Error(err)
				return
			}
			_, err = f.Wait(p, offload.Poll)
			if !errors.Is(err, offload.ErrFaulted) {
				t.Errorf("pipeline err = %v, want ErrFaulted", err)
			}
		})
		if got := pl.FailedStage(); got != 0 {
			t.Fatalf("FailedStage() = %d, want 0 (the first copy faulted, the fence poisoned the rest)", got)
		}
	})
}

// newRigEngines is a single-socket newRig with an explicit engine count,
// for tests that need work to sit queued behind a busy engine.
func newRigEngines(t *testing.T, engines int) *rig {
	t.Helper()
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{Engines: engines, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	return &rig{e: e, sys: sys, devs: []*dsa.Device{dev}}
}
