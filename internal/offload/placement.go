// Data-home placement (guideline G4 made policy).
//
// The paper's Fig 6 shows that where the *data* lives — not where the
// submitting core runs — decides offload throughput: a device on the data's
// socket avoids the UPI crossing that roughly halves bandwidth (Fig 6a),
// and DRAM-vs-CXL destination media shift the picture further (Fig 6b).
// The Placement scheduler routes each descriptor to a WQ local to its
// source/destination data; the batch paths (batch.go) shard a mixed-home
// flush into per-socket sub-batches so one logical batch can ride multiple
// devices, each adjacent to its slice's data.
package offload

import (
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// DataAware marks schedulers that route on the request's SrcNode/DstNode
// data homes. The batch submission paths split mixed-home flushes into
// per-socket sub-batches only for such schedulers — under a blind policy
// the sub-batches would all land on the same device and the split would be
// pure parent-descriptor overhead.
type DataAware interface {
	// DataSocket resolves the socket a request's data is homed on; ok is
	// false when the request carries no usable placement information.
	DataSocket(req Request) (socket int, ok bool)
}

// Placement routes each descriptor to a WQ on its data's socket: the
// socket both ends share when they agree, otherwise the side of the
// faster-write medium (see dataSocket). Requests without placement
// information fall back to NUMALocal semantics (the tenant's socket).
// Within the chosen socket it picks least-loaded; with QoS enabled it
// first applies PriorityAware's express-lane reservation, so data locality
// and the §3.4 F3 express lane compose.
type Placement struct {
	next int
	// qos composes the express/rest partition on top of the socket choice.
	qos bool

	// Detour hysteresis state for the load-aware path. The raw queueing-
	// delay signal (latency EWMA × occupancy) jumps a full completion
	// latency per queued descriptor, so pricing every submission against
	// the instantaneous value lets a workload hovering at the detour
	// threshold ping-pong between sockets, paying the UPI crossing on
	// alternate picks. Two mechanisms make routing flip only on a
	// sustained gap: smoothed holds a per-(socket, pool) EWMA of the
	// queueing delay (costEWMAAlpha), and lastRoute remembers the route
	// last chosen per (home socket, pool kind) — a challenger must
	// undercut the incumbent's smoothed cost by switchMargin before the
	// route moves. The pool-kind key keeps QoS classes from fighting:
	// under express/rest composition an LS and a Bulk request are costed
	// against different pools, so each class holds its own incumbent.
	// Both tables are sized on first load-aware pick and reused, keeping
	// Pick allocation-free.
	smoothed  []float64
	lastRoute []int
}

// Pool-kind indices into the smoothed cost table: each socket tracks the
// whole-socket pool and, under QoS composition, the express and rest
// partitions separately (their backlogs diverge by construction).
const (
	poolLocal = iota
	poolExpress
	poolRest
	poolKinds
)

const (
	// costEWMAAlpha smooths the queueing-delay samples feeding the detour
	// decision: 1/4 per sample reacts within a handful of submissions —
	// fast enough that a genuine backlog still detours inside a burst —
	// while a single spiky sample moves the estimate only a quarter of
	// the way.
	costEWMAAlpha = 0.25
	// switchMargin is the sustained advantage a challenger socket must
	// show before routing flips: its smoothed cost must undercut the
	// incumbent's by 25%. The data home keeps winning ties, and an idle
	// incumbent (cost zero) is never left.
	switchMargin = 0.75
)

// NewPlacement returns the data-home-aware scheduler.
func NewPlacement() *Placement { return &Placement{} }

// NewPlacementQoS returns the data-home-aware scheduler with
// PriorityAware's express-lane reservation layered inside the chosen
// socket: latency-sensitive tenants get the socket's top-priority WQ, bulk
// traffic the rest.
func NewPlacementQoS() *Placement { return &Placement{qos: true} }

// Name implements Scheduler.
func (s *Placement) Name() string {
	if s.qos {
		return "placement-qos"
	}
	return "placement"
}

// DataSocket implements DataAware.
func (s *Placement) DataSocket(req Request) (int, bool) {
	return dataSocket(req.SrcNode, req.DstNode)
}

// Pick implements Scheduler.
func (s *Placement) Pick(req Request, wqs []*dsa.WQ) *dsa.WQ {
	socket, ok := dataSocket(req.SrcNode, req.DstNode)
	if !ok {
		socket = req.Socket
	}
	if req.LoadAware && ok && req.Topo != nil {
		socket = s.loadAwareSocket(req, socket)
	}
	s.next = (s.next + 1) % len(wqs)
	if s.qos {
		return pickExpress(req, socket, wqs, s.next)
	}
	return leastLoadedOf(req.localPool(socket, wqs), s.next)
}

// loadRouter is implemented by data-aware schedulers whose load-aware cost
// model can re-price a target socket (Placement). The batch paths consult
// it through splitByHome so a split flush groups its descriptors by where
// they will actually run — detouring a saturated socket's slice instead of
// dutifully submitting it into the backlog.
type loadRouter interface {
	// routeSocket resolves the socket a request homed on home would be
	// served from once load is priced in; it returns home unchanged when
	// the request is not load-aware.
	routeSocket(req Request, home int) int
}

// routeSocket implements loadRouter.
func (s *Placement) routeSocket(req Request, home int) int {
	if !req.LoadAware || req.Topo == nil {
		return home
	}
	return s.loadAwareSocket(req, home)
}

// loadAwareSocket blends the data-home socket's backlog against remote
// candidates (the paper's §3.3/§5 point that queueing delay on a
// saturated WQ quickly dwarfs the UPI penalty): serving the request from
// candidate socket c costs the smoothed queueing delay of c's pool
// (latency EWMA × occupancy, Topology.QueueDelay, folded through
// costEWMAAlpha) plus the UPI transfer penalty for every data leg homed
// off c. The data's home wins ties, so an unloaded system routes exactly
// like data-only placement; a deeply backlogged local device loses to an
// idle remote one exactly when the model says the detour is cheaper — and
// hysteresis (lastRoute + switchMargin) keeps a workload hovering at that
// threshold from ping-ponging between sockets. Requests without placement
// information never take this path — their detour cannot be priced.
func (s *Placement) loadAwareSocket(req Request, home int) int {
	topo := req.Topo
	s.ensure(topo.Sockets())
	if home < 0 || home >= topo.Sockets() {
		return home
	}
	route := home*poolKinds + s.reqKind(req)
	incumbent := s.lastRoute[route]
	if incumbent < 0 || incumbent >= topo.Sockets() || (incumbent != home && !topo.HasLocal(incumbent)) {
		incumbent = home
	}
	incCost := s.socketCost(req, incumbent)
	best, bestCost := incumbent, incCost
	for c := 0; c < topo.Sockets(); c++ {
		if c == incumbent || (c != home && !topo.HasLocal(c)) {
			continue
		}
		cost := s.socketCost(req, c)
		if cost < bestCost || (cost == bestCost && c == home && best != home) {
			best, bestCost = c, cost
		}
	}
	if best != incumbent && float64(bestCost) < switchMargin*float64(incCost) {
		incumbent = best
	}
	s.lastRoute[route] = incumbent
	return incumbent
}

// reqKind resolves the pool kind a request's cost (and its hysteresis
// incumbent) is tracked under: the class partition under QoS composition,
// the whole-socket pool otherwise.
func (s *Placement) reqKind(req Request) int {
	if !s.qos {
		return poolLocal
	}
	if req.Class == LatencySensitive {
		return poolExpress
	}
	return poolRest
}

// ensure sizes the hysteresis state for n sockets (allocating only when
// the topology grows; steady-state picks just index it).
func (s *Placement) ensure(n int) {
	if len(s.lastRoute) >= n*poolKinds {
		return
	}
	lastRoute := make([]int, n*poolKinds)
	copy(lastRoute, s.lastRoute)
	for i := len(s.lastRoute); i < len(lastRoute); i++ {
		lastRoute[i] = -1
	}
	smoothed := make([]float64, n*poolKinds)
	copy(smoothed, s.smoothed)
	s.lastRoute, s.smoothed = lastRoute, smoothed
}

// socketCost prices serving req from a device on the given socket: the
// smoothed queueing delay of the pool the pick would actually use (the
// express or bulk partition under QoS composition) plus the cross-socket
// transfer penalty of each remote data leg. Each call folds the pool's
// instantaneous queueing delay into its EWMA — the signal is event-
// sampled on load-aware picks, like the WQ histories feeding it.
func (s *Placement) socketCost(req Request, socket int) sim.Time {
	topo := req.Topo
	pool := topo.Local(socket)
	kind := poolLocal
	if s.qos {
		if express, rest := topo.Split(socket); len(rest) > 0 {
			if req.Class == LatencySensitive {
				pool, kind = express, poolExpress
			} else {
				pool, kind = rest, poolRest
			}
		}
	}
	return s.smooth(socket, kind, topo.queueDelayOf(pool)) + upiPenalty(req, socket, topo)
}

// smooth folds one raw queueing-delay sample into the (socket, pool) EWMA
// and returns the updated estimate. A zero sample snaps the estimate to
// zero instead of decaying toward it: an empty pool's queueing delay is
// known exactly, not estimated — smoothing exists to filter the noisy
// occupancy spikes a transient burst produces, and letting a stale spike
// linger over an idle pool would detour traffic away from a device with
// nothing queued (exactly the misroute the cost model exists to avoid).
func (s *Placement) smooth(socket, kind int, raw sim.Time) sim.Time {
	i := socket*poolKinds + kind
	if raw == 0 {
		s.smoothed[i] = 0
		return 0
	}
	s.smoothed[i] += costEWMAAlpha * (float64(raw) - s.smoothed[i])
	return sim.Time(s.smoothed[i])
}

// upiPenalty estimates the extra virtual time a device on devSocket pays
// to move req's data compared to a device adjacent to it: each leg homed
// on another socket crosses UPI, adding the hop latency plus the
// serialization slowdown when the shared link is narrower than the leg's
// node pipe (priced from the mem.Node bandwidths — Fig 6a's roughly
// halved cross-socket throughput falls out of the 62-vs-120 GB/s gap).
func upiPenalty(req Request, devSocket int, topo *Topology) sim.Time {
	return legPenalty(req.SrcNode, req.Size, devSocket, topo, false) +
		legPenalty(req.DstNode, req.Size, devSocket, topo, true)
}

// legPenalty prices one remote data leg: zero when the leg is unknown or
// local to the device's socket.
func legPenalty(n *mem.Node, size int64, devSocket int, topo *Topology, write bool) sim.Time {
	if n == nil || n.Socket == devSocket {
		return 0
	}
	pen := topo.upiLat
	bw := n.ReadGBps()
	if write {
		bw = n.WriteGBps()
	}
	if topo.upiGBps > 0 && (bw <= 0 || topo.upiGBps < bw) {
		pen += sim.GBps(size, topo.upiGBps)
		if bw > 0 {
			pen -= sim.GBps(size, bw)
		}
	}
	return pen
}

// PipelineLeg is one externally-placed data leg of a fused pipeline: a
// stage operand whose buffer already exists (the original input, the final
// output), as opposed to the scratch intermediates the pipeline allocates
// on whichever socket wins. Size is the bytes the stage moves over it.
type PipelineLeg struct {
	Node  *mem.Node
	Size  int64
	Write bool
}

// PipelineSocket scores candidate sockets for a whole fused chain and
// returns the cheapest. This inverts the per-descriptor placement rule: a
// pipeline's stages mostly read and write *intermediate* buffers that do
// not exist yet — they will be allocated on the chosen socket — so only the
// fixed legs (original inputs, final outputs) can pull the chain anywhere.
// Candidate c costs its pool's queueing delay (Topology.QueueDelay, the
// same live backlog signal the load-aware detour reads) plus the UPI
// penalty of every fixed leg homed off c; intermediates cost nothing by
// construction, since AllocScratch places them on the winner. fallback
// (the tenant's socket) is returned when the topology offers no candidates
// and wins cost ties, keeping an unloaded single-socket system stable.
func PipelineSocket(topo *Topology, legs []PipelineLeg, fallback int) int {
	if topo == nil {
		return fallback
	}
	best, bestCost := -1, sim.Time(0)
	for c := 0; c < topo.Sockets(); c++ {
		if !topo.HasLocal(c) {
			continue
		}
		cost := topo.QueueDelay(c)
		for _, l := range legs {
			cost += legPenalty(l.Node, l.Size, c, topo, l.Write)
		}
		switch {
		case best < 0 || cost < bestCost:
			best, bestCost = c, cost
		case cost == bestCost && c == fallback && best != fallback:
			best = c
		}
	}
	if best < 0 {
		return fallback
	}
	return best
}

// dataSocket resolves the socket a (src, dst) data-home pair places a
// descriptor on:
//
//   - both unknown → no placement (ok false; callers fall back to the
//     tenant's socket, i.e. NUMALocal semantics)
//   - one side known → its socket
//   - both on one socket → that socket
//   - straddling sockets → exactly one UPI crossing is unavoidable, so the
//     device lands next to the faster-write medium: a DRAM↔CXL pair goes
//     adjacent to the DRAM side (Fig 6b, G4 — the CXL link is the
//     bottleneck wherever the device sits, while the wide DRAM pipes lose
//     real bandwidth when capped by UPI), and a same-medium pair goes to
//     the destination's socket, keeping the narrower write pipe local.
func dataSocket(src, dst *mem.Node) (int, bool) {
	switch {
	case src == nil && dst == nil:
		return 0, false
	case src == nil:
		return dst.Socket, true
	case dst == nil:
		return src.Socket, true
	case src.Socket == dst.Socket:
		return src.Socket, true
	case src.WriteGBps() > dst.WriteGBps():
		return src.Socket, true
	default:
		return dst.Socket, true
	}
}
