// Data-home placement (guideline G4 made policy).
//
// The paper's Fig 6 shows that where the *data* lives — not where the
// submitting core runs — decides offload throughput: a device on the data's
// socket avoids the UPI crossing that roughly halves bandwidth (Fig 6a),
// and DRAM-vs-CXL destination media shift the picture further (Fig 6b).
// The Placement scheduler routes each descriptor to a WQ local to its
// source/destination data; the batch paths (batch.go) shard a mixed-home
// flush into per-socket sub-batches so one logical batch can ride multiple
// devices, each adjacent to its slice's data.
package offload

import (
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
)

// DataAware marks schedulers that route on the request's SrcNode/DstNode
// data homes. The batch submission paths split mixed-home flushes into
// per-socket sub-batches only for such schedulers — under a blind policy
// the sub-batches would all land on the same device and the split would be
// pure parent-descriptor overhead.
type DataAware interface {
	// DataSocket resolves the socket a request's data is homed on; ok is
	// false when the request carries no usable placement information.
	DataSocket(req Request) (socket int, ok bool)
}

// Placement routes each descriptor to a WQ on its data's socket: the
// socket both ends share when they agree, otherwise the side of the
// faster-write medium (see dataSocket). Requests without placement
// information fall back to NUMALocal semantics (the tenant's socket).
// Within the chosen socket it picks least-loaded; with QoS enabled it
// first applies PriorityAware's express-lane reservation, so data locality
// and the §3.4 F3 express lane compose.
type Placement struct {
	next int
	// qos composes the express/rest partition on top of the socket choice.
	qos bool
}

// NewPlacement returns the data-home-aware scheduler.
func NewPlacement() *Placement { return &Placement{} }

// NewPlacementQoS returns the data-home-aware scheduler with
// PriorityAware's express-lane reservation layered inside the chosen
// socket: latency-sensitive tenants get the socket's top-priority WQ, bulk
// traffic the rest.
func NewPlacementQoS() *Placement { return &Placement{qos: true} }

// Name implements Scheduler.
func (s *Placement) Name() string {
	if s.qos {
		return "placement-qos"
	}
	return "placement"
}

// DataSocket implements DataAware.
func (s *Placement) DataSocket(req Request) (int, bool) {
	return dataSocket(req.SrcNode, req.DstNode)
}

// Pick implements Scheduler.
func (s *Placement) Pick(req Request, wqs []*dsa.WQ) *dsa.WQ {
	socket, ok := dataSocket(req.SrcNode, req.DstNode)
	if !ok {
		socket = req.Socket
	}
	s.next = (s.next + 1) % len(wqs)
	if s.qos {
		return pickExpress(req, socket, wqs, s.next)
	}
	return leastLoadedOf(req.localPool(socket, wqs), s.next)
}

// dataSocket resolves the socket a (src, dst) data-home pair places a
// descriptor on:
//
//   - both unknown → no placement (ok false; callers fall back to the
//     tenant's socket, i.e. NUMALocal semantics)
//   - one side known → its socket
//   - both on one socket → that socket
//   - straddling sockets → exactly one UPI crossing is unavoidable, so the
//     device lands next to the faster-write medium: a DRAM↔CXL pair goes
//     adjacent to the DRAM side (Fig 6b, G4 — the CXL link is the
//     bottleneck wherever the device sits, while the wide DRAM pipes lose
//     real bandwidth when capped by UPI), and a same-medium pair goes to
//     the destination's socket, keeping the narrower write pipe local.
func dataSocket(src, dst *mem.Node) (int, bool) {
	switch {
	case src == nil && dst == nil:
		return 0, false
	case src == nil:
		return dst.Socket, true
	case dst == nil:
		return src.Socket, true
	case src.Socket == dst.Socket:
		return src.Socket, true
	case src.WriteGBps() > dst.WriteGBps():
		return src.Socket, true
	default:
		return dst.Socket, true
	}
}
