package offload_test

import (
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// coalescePolicy returns a policy with interrupt moderation at the given
// count and a window wide enough that count is the effective trigger.
func coalescePolicy(count int) offload.Policy {
	pol := offload.DefaultPolicy()
	pol.CoalesceCount = count
	pol.CoalesceWindow = 50 * time.Microsecond
	return pol
}

// A bulk tenant's window of completions must cost one interrupt delivery,
// and the whole drain must be cheaper than per-descriptor delivery.
func TestCoalescedWaitsPayOneDeliveryPerWindow(t *testing.T) {
	const ops = 8
	elapsed := func(count int) sim.Time {
		r := newRig(t, 1)
		svc := r.service(t, offload.WithPolicy(coalescePolicy(count)))
		tn, err := svc.NewTenant()
		if err != nil {
			t.Fatal(err)
		}
		n := int64(16 << 10)
		src, dst := tn.Alloc(n), tn.Alloc(n)
		var total sim.Time
		r.run(func(p *sim.Proc) {
			start := p.Now()
			futs := make([]*offload.Future, 0, ops)
			for i := 0; i < ops; i++ {
				f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
				if err != nil {
					t.Error(err)
					return
				}
				futs = append(futs, f)
			}
			for _, f := range futs {
				if _, err := f.Wait(p, offload.Interrupt); err != nil {
					t.Error(err)
				}
			}
			total = p.Now() - start
		})
		if count > 1 {
			k := tn.Coalescer()
			if k == nil {
				t.Fatal("bulk tenant with CoalesceCount > 1 has no coalescer")
			}
			if k.Deliveries() != 1 {
				t.Errorf("count %d: Deliveries = %d, want 1", count, k.Deliveries())
			}
			if k.CoalescedRecords() != ops-1 {
				t.Errorf("count %d: CoalescedRecords = %d, want %d", count, k.CoalescedRecords(), ops-1)
			}
		} else if tn.Coalescer() != nil {
			t.Error("CoalesceCount ≤ 1 still built a coalescer")
		}
		return total
	}
	perDesc := elapsed(1)
	coalesced := elapsed(ops)
	if coalesced >= perDesc {
		t.Errorf("coalesced drain (%v) not cheaper than per-descriptor delivery (%v)", coalesced, perDesc)
	}
}

// Latency-sensitive tenants bypass moderation: no coalescer, per-descriptor
// delivery — unless the policy opts every class in.
func TestLatencySensitiveBypassesCoalescing(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithPolicy(coalescePolicy(16)))
	ls, err := svc.NewTenant(offload.WithClass(offload.LatencySensitive))
	if err != nil {
		t.Fatal(err)
	}
	if ls.Coalescer() != nil {
		t.Error("latency-sensitive tenant got a coalescer by default")
	}
	pol := coalescePolicy(16)
	pol.CoalesceAll = true
	ls.SetPolicy(pol)
	if ls.Coalescer() == nil {
		t.Error("CoalesceAll did not opt the latency-sensitive tenant in")
	}
	bulk, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Coalescer() == nil {
		t.Error("bulk tenant with CoalesceCount 16 has no coalescer")
	}
}

// SetPolicy must take effect on the next operation: disabling coalescing
// drops the coalescer, changing the knobs rebuilds it.
func TestSetPolicyRetunesCoalescer(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithPolicy(coalescePolicy(8)))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	first := tn.Coalescer()
	if first == nil || first.Count() != 8 {
		t.Fatalf("initial coalescer = %+v, want count 8", first)
	}
	if again := tn.Coalescer(); again != first {
		t.Error("unchanged policy rebuilt the coalescer")
	}
	tn.SetPolicy(coalescePolicy(32))
	second := tn.Coalescer()
	if second == first || second == nil || second.Count() != 32 {
		t.Error("count change did not rebuild the coalescer")
	}
	pol := offload.DefaultPolicy()
	tn.SetPolicy(pol)
	if tn.Coalescer() != nil {
		t.Error("disabling coalescing left a coalescer attached")
	}
}

// A window left unset falls back to DefaultCoalesceWindow (tick-rounded),
// so a count-triggered policy can never strand a tail.
func TestCoalesceWindowDefaults(t *testing.T) {
	r := newRig(t, 1)
	pol := offload.DefaultPolicy()
	pol.CoalesceCount = 16 // no window
	svc := r.service(t, offload.WithPolicy(pol))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	k := tn.Coalescer()
	if k == nil {
		t.Fatal("no coalescer")
	}
	if k.Window() < offload.DefaultCoalesceWindow {
		t.Errorf("Window = %v, want at least the %v default", k.Window(), offload.DefaultCoalesceWindow)
	}
	// A short tail (fewer than count) must still complete via the timer.
	n := int64(16 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		f1, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		f2, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f1.Wait(p, offload.Interrupt); err != nil {
			t.Error(err)
		}
		if _, err := f2.Wait(p, offload.Interrupt); err != nil {
			t.Error(err)
		}
	})
	if k.Deliveries() != 1 {
		t.Errorf("Deliveries = %d, want 1 timer-fired delivery for the tail", k.Deliveries())
	}
}

// A policy swap under load must not orphan in-flight windows: completions
// tracked on the old moderation vector are announced by it, and waits on
// them resolve through that vector's shared delivery — not the expensive
// per-descriptor fallback. The swapped run must cost exactly what the
// unswapped run costs, since the swap only affects descriptors submitted
// after it.
func TestPolicySwapUnderLoadDeliversInFlight(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithPolicy(coalescePolicy(4)))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(16 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		futs := make([]*offload.Future, 0, 4)
		for i := 0; i < 4; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Error(err)
				return
			}
			futs = append(futs, f)
		}
		old := tn.Coalescer()
		// Retune while the four submissions are in flight. The next
		// operation rebuilds the vector and re-points the (single) client,
		// so the in-flight completions' vector and the client's no longer
		// match — the regression scenario.
		pol := coalescePolicy(2)
		pol.CoalesceWindow = 100 * time.Microsecond
		tn.SetPolicy(pol)
		f5, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		if tn.Coalescer() == old {
			t.Error("policy swap did not rebuild the coalescer")
		}
		// Wait the post-swap future first: by the time its (timer-bounded)
		// delivery resolves, the old vector's count trigger has long since
		// announced the four in-flight records.
		if _, err := f5.Wait(p, offload.Interrupt); err != nil {
			t.Error(err)
		}
		if old.Deliveries() == 0 {
			t.Error("old coalescer announced nothing for its in-flight window")
		}
		if old.Pending() != 0 {
			t.Errorf("old coalescer still holds %d undelivered records", old.Pending())
		}
		// Draining the four already-announced records must cost one shared
		// delivery at most — the per-descriptor fallback would pay the full
		// delivery latency plus handler four times over.
		start := p.Now()
		for _, f := range futs {
			if _, err := f.Wait(p, offload.Interrupt); err != nil {
				t.Error(err)
			}
		}
		drain := p.Now() - start
		tm := dsa.DefaultTiming()
		if limit := 2 * (tm.IntrDeliver + tm.IntrHandler); drain >= limit {
			t.Errorf("draining in-flight records took %v, want under %v (one shared delivery)", drain, limit)
		}
	})
}

// Admission-control retries fold into the coalescing window: a
// backpressured tenant sleeps at least one moderation window per retry,
// so tokens accrue in batches and the wakeup count stays far below one
// per delayed submission.
func TestAdmissionRetriesFoldIntoCoalesceWindows(t *testing.T) {
	wakeups := func(coalesce int) (int64, int64) {
		r := newRig(t, 1)
		pol := coalescePolicy(coalesce)
		pol.CoalesceWindow = 40 * time.Microsecond
		// One token per 10µs with room to bank four: a window-long sleep
		// accrues tokens for the next several sub-batches, which is the
		// whole point of folding the retries.
		pol.AdmitRate = 100e3
		pol.AdmitBurst = 8
		pol.AdmitWait = true
		svc := r.service(t, offload.WithPolicy(pol))
		tn, err := svc.NewTenant()
		if err != nil {
			t.Fatal(err)
		}
		n := int64(16 << 10)
		src, dst := tn.Alloc(n), tn.Alloc(n)
		r.run(func(p *sim.Proc) {
			futs := make([]*offload.Future, 0, 24)
			for i := 0; i < 24; i++ {
				f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
				if err != nil {
					t.Error(err)
					return
				}
				futs = append(futs, f)
			}
			for _, f := range futs {
				if _, err := f.Wait(p, offload.Interrupt); err != nil {
					t.Error(err)
				}
			}
		})
		st := tn.Stats()
		return st.AdmitWakeups, st.Delayed
	}
	folded, foldedDelayed := wakeups(8)
	unfolded, unfoldedDelayed := wakeups(1)
	if foldedDelayed == 0 || unfoldedDelayed == 0 {
		t.Fatalf("admission control never delayed (folded %d, unfolded %d): rate knob broken",
			foldedDelayed, unfoldedDelayed)
	}
	if unfolded == 0 {
		t.Fatal("unfolded run recorded no wakeups")
	}
	if folded >= unfolded {
		t.Errorf("folded wakeups = %d, want fewer than the per-token %d", folded, unfolded)
	}
}

// CoalesceAdaptive sizes the window from the tenant's observed completion
// inter-arrival gap: after a stream of closely spaced completions the
// window shrinks below the static bound; with no history it starts there.
func TestCoalesceAdaptiveWindowTracksArrivalRate(t *testing.T) {
	r := newRig(t, 1)
	pol := coalescePolicy(4)
	pol.CoalesceWindow = 200 * time.Microsecond
	pol.CoalesceAdaptive = true
	svc := r.service(t, offload.WithPolicy(pol))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	first := tn.Coalescer()
	if first == nil {
		t.Fatal("no coalescer")
	}
	if first.Window() < 200*time.Microsecond {
		t.Fatalf("pre-history window = %v, want the static %v", first.Window(), 200*time.Microsecond)
	}
	n := int64(16 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		for round := 0; round < 8; round++ {
			futs := make([]*offload.Future, 0, 4)
			for i := 0; i < 4; i++ {
				f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
				if err != nil {
					t.Error(err)
					return
				}
				futs = append(futs, f)
			}
			for _, f := range futs {
				if _, err := f.Wait(p, offload.Interrupt); err != nil {
					t.Error(err)
				}
			}
		}
	})
	tuned := tn.Coalescer()
	if tuned == nil {
		t.Fatal("coalescer dropped")
	}
	if tuned.Window() >= 200*time.Microsecond {
		t.Errorf("adaptive window = %v, want shrunk below the static 200µs after fast completions", tuned.Window())
	}
	if tick := dsa.DefaultTiming().IntrCoalesceTick; tuned.Window() < tick {
		t.Errorf("adaptive window = %v under the %v moderation tick", tuned.Window(), tick)
	}
}

// A split batch's sub-batch completions share the tenant's moderation
// vector: both sub-batches finishing within one window cost one delivery,
// so the multi-part Wait pays per window, not per sub-batch.
func TestSplitBatchSubBatchesShareOneDelivery(t *testing.T) {
	r := newRig(t, 2)
	pol := coalescePolicy(2)
	pol.CoalesceWindow = 200 * time.Microsecond
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()), offload.WithPolicy(pol))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	s0src, s0dst := tn.AllocOn(0, 2*n), tn.AllocOn(0, 2*n)
	s1src, s1dst := tn.AllocOn(1, 2*n), tn.AllocOn(1, 2*n)
	r.run(func(p *sim.Proc) {
		f, err := tn.NewBatch().
			Copy(s0dst.Addr(0), s0src.Addr(0), n).
			Copy(s0dst.Addr(n), s0src.Addr(n), n).
			Copy(s1dst.Addr(0), s1src.Addr(0), n).
			Copy(s1dst.Addr(n), s1src.Addr(n), n).
			Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := f.Wait(p, offload.Interrupt)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Record.Result != 4 {
			t.Errorf("joined Record.Result = %d, want 4", res.Record.Result)
		}
	})
	if st := tn.Stats(); st.Splits != 2 {
		t.Fatalf("Splits = %d, want 2", st.Splits)
	}
	k := tn.Coalescer()
	if k == nil {
		t.Fatal("no coalescer")
	}
	if k.Deliveries() != 1 {
		t.Errorf("Deliveries = %d, want 1 for both sub-batch records", k.Deliveries())
	}
	if k.CoalescedRecords() != 1 {
		t.Errorf("CoalescedRecords = %d, want 1 (second sub-batch rode the first's interrupt)", k.CoalescedRecords())
	}
}
