package offload_test

import (
	"testing"
	"time"

	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// coalescePolicy returns a policy with interrupt moderation at the given
// count and a window wide enough that count is the effective trigger.
func coalescePolicy(count int) offload.Policy {
	pol := offload.DefaultPolicy()
	pol.CoalesceCount = count
	pol.CoalesceWindow = 50 * time.Microsecond
	return pol
}

// A bulk tenant's window of completions must cost one interrupt delivery,
// and the whole drain must be cheaper than per-descriptor delivery.
func TestCoalescedWaitsPayOneDeliveryPerWindow(t *testing.T) {
	const ops = 8
	elapsed := func(count int) sim.Time {
		r := newRig(t, 1)
		svc := r.service(t, offload.WithPolicy(coalescePolicy(count)))
		tn, err := svc.NewTenant()
		if err != nil {
			t.Fatal(err)
		}
		n := int64(16 << 10)
		src, dst := tn.Alloc(n), tn.Alloc(n)
		var total sim.Time
		r.run(func(p *sim.Proc) {
			start := p.Now()
			futs := make([]*offload.Future, 0, ops)
			for i := 0; i < ops; i++ {
				f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
				if err != nil {
					t.Error(err)
					return
				}
				futs = append(futs, f)
			}
			for _, f := range futs {
				if _, err := f.Wait(p, offload.Interrupt); err != nil {
					t.Error(err)
				}
			}
			total = p.Now() - start
		})
		if count > 1 {
			k := tn.Coalescer()
			if k == nil {
				t.Fatal("bulk tenant with CoalesceCount > 1 has no coalescer")
			}
			if k.Deliveries() != 1 {
				t.Errorf("count %d: Deliveries = %d, want 1", count, k.Deliveries())
			}
			if k.CoalescedRecords() != ops-1 {
				t.Errorf("count %d: CoalescedRecords = %d, want %d", count, k.CoalescedRecords(), ops-1)
			}
		} else if tn.Coalescer() != nil {
			t.Error("CoalesceCount ≤ 1 still built a coalescer")
		}
		return total
	}
	perDesc := elapsed(1)
	coalesced := elapsed(ops)
	if coalesced >= perDesc {
		t.Errorf("coalesced drain (%v) not cheaper than per-descriptor delivery (%v)", coalesced, perDesc)
	}
}

// Latency-sensitive tenants bypass moderation: no coalescer, per-descriptor
// delivery — unless the policy opts every class in.
func TestLatencySensitiveBypassesCoalescing(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithPolicy(coalescePolicy(16)))
	ls, err := svc.NewTenant(offload.WithClass(offload.LatencySensitive))
	if err != nil {
		t.Fatal(err)
	}
	if ls.Coalescer() != nil {
		t.Error("latency-sensitive tenant got a coalescer by default")
	}
	pol := coalescePolicy(16)
	pol.CoalesceAll = true
	ls.SetPolicy(pol)
	if ls.Coalescer() == nil {
		t.Error("CoalesceAll did not opt the latency-sensitive tenant in")
	}
	bulk, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Coalescer() == nil {
		t.Error("bulk tenant with CoalesceCount 16 has no coalescer")
	}
}

// SetPolicy must take effect on the next operation: disabling coalescing
// drops the coalescer, changing the knobs rebuilds it.
func TestSetPolicyRetunesCoalescer(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t, offload.WithPolicy(coalescePolicy(8)))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	first := tn.Coalescer()
	if first == nil || first.Count() != 8 {
		t.Fatalf("initial coalescer = %+v, want count 8", first)
	}
	if again := tn.Coalescer(); again != first {
		t.Error("unchanged policy rebuilt the coalescer")
	}
	tn.SetPolicy(coalescePolicy(32))
	second := tn.Coalescer()
	if second == first || second == nil || second.Count() != 32 {
		t.Error("count change did not rebuild the coalescer")
	}
	pol := offload.DefaultPolicy()
	tn.SetPolicy(pol)
	if tn.Coalescer() != nil {
		t.Error("disabling coalescing left a coalescer attached")
	}
}

// A window left unset falls back to DefaultCoalesceWindow (tick-rounded),
// so a count-triggered policy can never strand a tail.
func TestCoalesceWindowDefaults(t *testing.T) {
	r := newRig(t, 1)
	pol := offload.DefaultPolicy()
	pol.CoalesceCount = 16 // no window
	svc := r.service(t, offload.WithPolicy(pol))
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	k := tn.Coalescer()
	if k == nil {
		t.Fatal("no coalescer")
	}
	if k.Window() < offload.DefaultCoalesceWindow {
		t.Errorf("Window = %v, want at least the %v default", k.Window(), offload.DefaultCoalesceWindow)
	}
	// A short tail (fewer than count) must still complete via the timer.
	n := int64(16 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	r.run(func(p *sim.Proc) {
		f1, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		f2, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f1.Wait(p, offload.Interrupt); err != nil {
			t.Error(err)
		}
		if _, err := f2.Wait(p, offload.Interrupt); err != nil {
			t.Error(err)
		}
	})
	if k.Deliveries() != 1 {
		t.Errorf("Deliveries = %d, want 1 timer-fired delivery for the tail", k.Deliveries())
	}
}

// A split batch's sub-batch completions share the tenant's moderation
// vector: both sub-batches finishing within one window cost one delivery,
// so the multi-part Wait pays per window, not per sub-batch.
func TestSplitBatchSubBatchesShareOneDelivery(t *testing.T) {
	r := newRig(t, 2)
	pol := coalescePolicy(2)
	pol.CoalesceWindow = 200 * time.Microsecond
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()), offload.WithPolicy(pol))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	s0src, s0dst := tn.AllocOn(0, 2*n), tn.AllocOn(0, 2*n)
	s1src, s1dst := tn.AllocOn(1, 2*n), tn.AllocOn(1, 2*n)
	r.run(func(p *sim.Proc) {
		f, err := tn.NewBatch().
			Copy(s0dst.Addr(0), s0src.Addr(0), n).
			Copy(s0dst.Addr(n), s0src.Addr(n), n).
			Copy(s1dst.Addr(0), s1src.Addr(0), n).
			Copy(s1dst.Addr(n), s1src.Addr(n), n).
			Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := f.Wait(p, offload.Interrupt)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Record.Result != 4 {
			t.Errorf("joined Record.Result = %d, want 4", res.Record.Result)
		}
	})
	if st := tn.Stats(); st.Splits != 2 {
		t.Fatalf("Splits = %d, want 2", st.Splits)
	}
	k := tn.Coalescer()
	if k == nil {
		t.Fatal("no coalescer")
	}
	if k.Deliveries() != 1 {
		t.Errorf("Deliveries = %d, want 1 for both sub-batch records", k.Deliveries())
	}
	if k.CoalescedRecords() != 1 {
		t.Errorf("CoalescedRecords = %d, want 1 (second sub-batch rode the first's interrupt)", k.CoalescedRecords())
	}
}
