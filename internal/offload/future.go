package offload

import (
	"fmt"

	"dsasim/internal/dsa"
	"dsasim/internal/sim"
)

// WaitMode aliases the device wait modes so callers need only this package:
// Poll spins, UMWait parks the core in the optimized wait state, Interrupt
// frees the core and pays delivery latency (§4.4).
type WaitMode = dsa.WaitMode

// Completion wait modes.
const (
	Poll      = dsa.Poll
	UMWait    = dsa.UMWait
	Interrupt = dsa.Interrupt
)

// Result is the outcome of one operation.
type Result struct {
	Record   dsa.CompletionRecord // hardware-path completion record
	CRC      uint32               // CRC32 / CopyCRC result
	Mismatch bool                 // Compare / ComparePattern mismatch
	Offset   int64                // first mismatch offset
	Size     int64                // delta-record bytes used
	Hardware bool                 // executed on DSA
	Duration sim.Time             // operation latency observed by the caller
}

// Future is one in-flight operation. Software-path operations complete
// before the Future is returned; hardware-path ones complete when the
// device writes the completion record; auto-batched ones complete when
// their batch flushes and finishes. Wait is idempotent: the first call
// resolves the result, later calls return it without re-accounting.
type Future struct {
	t     *Tenant
	cl    *dsa.Client
	comp  *dsa.Completion
	op    dsa.OpType
	start sim.Time
	ab    *AutoBatcher // non-nil while queued and unflushed

	// d is the submitted descriptor (PASID and flags resolved), kept so
	// fault recovery can re-submit the unfinished remainder. Only set on
	// plain hardware futures built by Tenant.dispatch — the only futures
	// recovery applies to.
	d dsa.Descriptor

	// sharedWait links futures that resolve from one completion record
	// (coalesced batch siblings): the completion is physically observed —
	// and its wait cost paid — once, by the first waiter, and a batch
	// failure counts once toward Stats.Failures. Interrupt coalescing
	// (Policy.CoalesceCount) extends the same idea across *distinct*
	// completion records: every record announced by one moderated
	// interrupt is harvested by the first waiter's delivery, so sibling
	// futures in the same coalescing window drain for free whichever
	// record each one resolves from.
	sharedWait *batchWait

	// run, when non-nil, marks a pipeline future: the result is produced by
	// the pipeline driver process (pipeline.go), which walks the DAG's
	// chains on the sim timeline and broadcasts run.sig when the final
	// chain completes. Done and Wait read the run instead of a completion.
	run *pipeRun

	// parts joins the per-socket sub-batches of one split batch
	// submission (batch.go): the Future is done when every part is, and
	// Wait drains the parts in turn, paying the wait cost once per
	// sub-batch — or, under interrupt coalescing, once per moderation
	// window: the tenant's coalescer spans its per-WQ clients, so
	// sub-batch records finishing within one window share one delivery.
	parts []*Future

	done bool
	res  Result
	err  error
}

// Done reports whether the result is available without waiting. A queued
// auto-batched operation is not done until its batch flushes and finishes.
func (f *Future) Done() bool {
	if f.done {
		return true
	}
	if f.run != nil {
		return f.run.done
	}
	if f.parts != nil {
		for _, part := range f.parts {
			if !part.Done() {
				return false
			}
		}
		return true
	}
	return f.comp != nil && f.comp.Done()
}

// Wait blocks the calling process until the operation finishes, accounting
// the wait on the tenant's core per mode, and returns the result. Waiting
// on an operation still queued in the AutoBatcher flushes the batch first,
// so a dependent caller can never deadlock on an unflushed batch.
func (f *Future) Wait(p *sim.Proc, mode WaitMode) (Result, error) {
	if f.done {
		return f.res, f.err
	}
	if f.run != nil {
		// The driver process pays the per-chain wait costs; the caller just
		// parks until the run resolves (event-driven, allocation-free).
		for !f.run.done {
			p.Wait(&f.run.sig)
		}
		f.done, f.res, f.err = true, f.run.res, f.run.err
		f.res.Duration = p.Now() - f.start
		f.t.recordSLO(f.res.Duration)
		return f.res, f.err
	}
	if f.parts != nil {
		return f.waitParts(p, mode)
	}
	if f.ab != nil {
		// Flush binds this future to its sub-batch parent, or resolves it
		// when that sub-batch failed to submit; a failure in a *different*
		// sub-batch of the same flush leaves this future submitted and
		// waitable, so only f.done decides.
		f.ab.Flush(p)
		if f.done {
			return f.res, f.err
		}
	}
	if f.sharedWait == nil || !f.sharedWait.paid || !f.comp.Done() {
		f.cl.Wait(p, f.comp, mode)
		if f.sharedWait != nil {
			f.sharedWait.paid = true
		}
	}
	// Fault recovery applies only to plain hardware futures: coalesced
	// siblings resolve from a batch parent's record (their fault surfaces
	// as BatchFail), and batch parents recover at the pipeline/batch
	// layer. A fallback resolves the future directly; a successful retry
	// swaps in the retried completion, which resolve() decodes below.
	if f.t != nil && f.sharedWait == nil && f.op != dsa.OpBatch {
		f.t.recover(p, f, mode)
		if f.done {
			return f.res, f.err
		}
	}
	f.resolve(p.Now() - f.start)
	return f.res, f.err
}

// waitParts resolves a joined (split-batch) future: every sub-batch is
// drained — a later part is not abandoned because an earlier one failed —
// and the first error wins, keeping that part's completion record. On
// success the synthesized record counts completed work descriptors
// (Record.Result), matching what the device reports for an unsplit batch.
// The future is marked done only after the drain, so a concurrent waiter
// (or Done poller) never observes a premature success.
func (f *Future) waitParts(p *sim.Proc, mode WaitMode) (Result, error) {
	res := Result{Hardware: true}
	var firstErr error
	var completed uint64
	for _, part := range f.parts {
		pres, err := part.Wait(p, mode)
		if err != nil {
			if firstErr == nil {
				firstErr = err
				res.Record = pres.Record
			}
			continue
		}
		if part.op == dsa.OpBatch {
			// A sub-batch parent's record counts its succeeded children.
			completed += pres.Record.Result
		} else {
			// A lone-descriptor part completed one work descriptor (its
			// Result field carries op-specific data, not a count).
			completed++
		}
	}
	if firstErr == nil {
		res.Record = dsa.CompletionRecord{Status: dsa.StatusSuccess, Result: completed}
	}
	res.Duration = p.Now() - f.start
	f.done, f.res, f.err = true, res, firstErr
	return f.res, f.err
}

// joinFutures links the sub-batch futures of one split submission into a
// single Future whose start is the first part's submission instant. A
// single part is returned as-is.
func joinFutures(parts []*Future) *Future {
	if len(parts) == 1 {
		return parts[0]
	}
	f := &Future{parts: parts}
	if len(parts) > 0 {
		f.start = parts[0].start
	}
	return f
}

// batchWait is the shared wait/accounting state of coalesced siblings.
type batchWait struct {
	paid        bool // wait cost charged by the first waiter
	failCounted bool // batch failure counted once toward Stats.Failures
}

// pipeRun is the driver-side state of one in-flight pipeline submission.
type pipeRun struct {
	done bool
	res  Result
	err  error
	sig  sim.Signal
}

// finish resolves the run and wakes every waiter.
func (r *pipeRun) finish(e *sim.Engine, res Result, err error) {
	r.res, r.err = res, err
	r.done = true
	r.sig.Broadcast(e)
}

// resolve decodes the completion record into the memoized result. Every
// resolved completion — success or failure — is scored against the
// tenant's SLO budget: a failed operation did not serve its client within
// budget either.
func (f *Future) resolve(dur sim.Time) {
	f.done = true
	rec := f.comp.Record()
	f.res = Result{Record: rec, Hardware: true, Duration: dur}
	f.t.recordSLO(dur)
	countFailure := func() {
		if f.sharedWait != nil {
			if f.sharedWait.failCounted {
				return
			}
			f.sharedWait.failCounted = true
		}
		f.t.stats.failures.Add(1)
	}
	switch rec.Status {
	case dsa.StatusSuccess:
	case dsa.StatusRecordFull:
		countFailure()
		f.err = fmt.Errorf("offload: delta record overflow")
		return
	case dsa.StatusDIFError:
		countFailure()
		f.err = fmt.Errorf("offload: DIF check failed at block %d: %w", rec.Result, rec.Err)
		return
	case dsa.StatusBatchFail:
		countFailure()
		f.err = fmt.Errorf("offload: batch completed %d descriptors before failing: %w", rec.Result, rec.Err)
		return
	case dsa.StatusPageFault, dsa.StatusWQError, dsa.StatusDeviceOffline:
		countFailure()
		f.err = faultError(rec)
		return
	default:
		countFailure()
		f.err = fmt.Errorf("offload: %v: %w", rec.Status, rec.Err)
		return
	}
	switch f.op {
	case dsa.OpCRCGen, dsa.OpCopyCRC:
		f.res.CRC = uint32(rec.Result)
	case dsa.OpCompare, dsa.OpComparePattern:
		f.res.Mismatch = rec.Mismatch
		f.res.Offset = int64(rec.Result)
	case dsa.OpCreateDelta:
		f.res.Size = int64(rec.Result)
	}
}

// completed builds an already-resolved Future (software path and submission
// errors).
func completed(res Result, err error) *Future {
	return &Future{done: true, res: res, err: err}
}
