// Package offload is the unified submission surface for accelerator work:
// a Service that owns device/WQ selection behind a pluggable Scheduler, and
// per-PASID Tenants that submit operations and receive Futures.
//
// The package encodes the paper's software guidelines as policy rather than
// code: G1 (batch small transfers) lives in the AutoBatcher, G2 (offload
// asynchronously; below ~4 KB prefer the core) in Policy.OffloadThreshold —
// made dynamic by Policy.AdaptiveThreshold, which feeds WQ occupancy and
// completion-latency history back into the Auto-path decision — and the
// placement findings of Figs 5–11 in the NUMALocal and LeastLoaded
// schedulers. The §3.4 F3 QoS findings live in qos.go: tenants carry a
// QoSClass, the PriorityAware scheduler reserves the highest-priority WQ
// per socket for latency-sensitive tenants, and per-tenant token buckets
// (Policy.AdmitRate) keep bulk bursts from starving shared-WQ slots. Every
// operation returns a *Future whose Wait(p, mode) unifies the sync, async,
// poll, UMWAIT, and interrupt completion paths.
//
// # Completion path (§4.4)
//
// Interrupt-mode completions are moderated per tenant and QoS class
// (Policy.CoalesceCount / CoalesceWindow): each tenant owns one
// dsa.Coalescer shared by its per-WQ clients, so up to CoalesceCount
// finished records — across WQs, devices, and split-batch sub-batches —
// are announced by one interrupt, and the first waiter's single delivery
// harvests every record in the window. Bulk tenants coalesce with the
// full window; latency-sensitive tenants bypass moderation (their
// interrupts fire per descriptor, composing with the express-lane
// reservation so the foreground pays neither queueing nor moderation
// delay). The resolved Future.Wait fast path and the poll wait loop are
// allocation-free (see TestResolvedWaitZeroAllocs and the sim package's
// event-path alloc assertions).
//
// # Placement (G4)
//
// Guideline G4 — put the device next to the data, not the submitter —
// lives in placement.go: the Placement scheduler resolves each
// descriptor's source/destination home nodes (mem.AddressSpace.NodeAt, an
// allocation-free lookup the service fills into every Request) and routes
// to a WQ on the data's socket, preferring the faster-write medium when a
// DRAM↔CXL pair straddles sockets and falling back to NUMALocal semantics
// when the data's home is unknown. Under a data-aware scheduler the batch
// paths go further: Batch.Submit and AutoBatcher.Flush shard a mixed-home
// flush into per-socket sub-batches, each submitted to the device local to
// its slice's data, with the sibling Futures joined so the wait cost is
// paid once per sub-batch and failures stay sub-batch-granular
// (Policy.SplitBatches; fenced batches are never split). Scheduler Pick
// paths are allocation-free: per-socket WQ subsets and express/rest
// priority partitions are precomputed on the Service (Topology) instead of
// being re-derived per submission.
//
// Placement is load-aware on request (Policy.LoadAware): the WQ
// occupancy/latency EWMAs roll up per socket through the Topology
// (Service.SocketPressure, Topology.QueueDelay), and Pick blends the
// data-home socket's queueing delay against remote candidates' plus the
// UPI transfer penalty, detouring to an idle remote device exactly when
// the paper's §3.3/§5 queueing-vs-crossing trade favors it.
//
//	svc, _ := offload.NewService(e, sys, wqs, offload.WithScheduler(offload.NewNUMALocal()))
//	tn, _ := svc.NewTenant(offload.OnSocket(0))
//	fut, _ := tn.Copy(p, dst, src, 1<<20)
//	res, _ := fut.Wait(p, offload.Poll)
package offload

import (
	"fmt"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
	"dsasim/internal/telemetry"
)

// Service is the shared offload front end: one per platform (or per test
// rig), serving many tenants over a common set of work queues. Submission
// targets are chosen by the Scheduler; per-tenant behavior (thresholds,
// batching, wait modes) comes from Policy.
type Service struct {
	E   *sim.Engine
	Sys *mem.System

	sched  Scheduler
	policy Policy
	model  cpu.Model
	wqs    []*dsa.WQ

	// topo is the precomputed per-socket WQ placement index shared with
	// schedulers via Request.Topo (rebuilt on AddWQs), so Pick never
	// re-derives socket subsets on the submission hot path.
	topo *Topology

	// met is the telemetry plane: the dsa.Probe feeding device events into
	// the streaming digests, and the views Pressure, the placement cost
	// model, and adaptive coalescing read (metrics.go).
	met *metrics

	// dataAware caches whether sched routes on data homes, so the
	// submission hot path only pays the per-descriptor NodeAt lookups
	// (and the batch paths only consider splitting) when a scheduler will
	// actually read them.
	dataAware bool

	// maxBatch caches the smallest device batch limit among the WQs (an
	// AutoBatcher flush bound); recomputed on AddWQs.
	maxBatch int

	// latFloor is the best (smallest) per-WQ completion-latency EWMA the
	// service has observed — the unloaded-device reference that Pressure
	// measures latency inflation against. pressure memoizes the estimate
	// for one virtual instant (path decisions read it repeatedly), and
	// sockPressure does the same per socket for SocketPressure.
	latFloor   sim.Time
	pressure   float64
	pressureAt sim.Time
	pressureOK bool

	sockPressure   []float64
	sockPressureAt []sim.Time
	sockPressureOK []bool

	nextPASID int
	nextCore  int
}

// ServiceOption customizes a Service.
type ServiceOption func(*Service)

// WithScheduler selects the WQ-selection policy (default RoundRobin).
func WithScheduler(s Scheduler) ServiceOption { return func(sv *Service) { sv.sched = s } }

// WithPolicy sets the default policy inherited by new tenants.
func WithPolicy(p Policy) ServiceOption { return func(sv *Service) { sv.policy = p } }

// WithCPUModel sets the model used for cores the service creates for
// tenants (default SPR).
func WithCPUModel(m cpu.Model) ServiceOption { return func(sv *Service) { sv.model = m } }

// WithPASIDBase sets the first PASID handed to service-created tenants.
func WithPASIDBase(n int) ServiceOption { return func(sv *Service) { sv.nextPASID = n } }

// WithCoreBase sets the first core id handed to service-created tenants.
func WithCoreBase(n int) ServiceOption { return func(sv *Service) { sv.nextCore = n } }

// NewService builds a service over the given work queues (typically every
// enabled WQ of every platform device).
func NewService(e *sim.Engine, sys *mem.System, wqs []*dsa.WQ, opts ...ServiceOption) (*Service, error) {
	if len(wqs) == 0 {
		return nil, fmt.Errorf("offload: no work queues")
	}
	sv := &Service{
		E:         e,
		Sys:       sys,
		sched:     NewRoundRobin(),
		policy:    DefaultPolicy(),
		model:     cpu.SPRModel(),
		nextPASID: 1,
	}
	for _, o := range opts {
		o(sv)
	}
	_, sv.dataAware = sv.sched.(DataAware)
	sv.AddWQs(wqs...)
	return sv, nil
}

// AddWQs extends the submission target set (hot-plugging a device).
// Existing tenants see the new WQs on their next submission; their PASIDs
// are re-bound lazily by the per-WQ client path.
func (sv *Service) AddWQs(wqs ...*dsa.WQ) {
	sv.wqs = append(sv.wqs, wqs...)
	sv.maxBatch = 0
	for _, wq := range sv.wqs {
		if sv.maxBatch == 0 || wq.Dev.Cfg.MaxBatch < sv.maxBatch {
			sv.maxBatch = wq.Dev.Cfg.MaxBatch
		}
	}
	if sv.met == nil {
		sv.met = newMetrics(sv.E)
	}
	sv.met.observe(wqs)
	sv.topo = newTopology(sv.wqs, sv.Sys)
	sv.topo.met = sv.met
	// The per-socket pools changed; drop the memoized pressure estimates
	// and re-size the per-socket slots.
	sv.pressureOK = false
	n := sv.topo.Sockets()
	sv.sockPressure = make([]float64, n)
	sv.sockPressureAt = make([]sim.Time, n)
	sv.sockPressureOK = make([]bool, n)
}

// WQs returns the service's submission targets.
func (sv *Service) WQs() []*dsa.WQ { return sv.wqs }

// coalesceTick returns the interrupt-moderation timer granularity tenant
// coalescers round their windows to — the first device's, since the
// service's devices share a timing calibration in every supported profile.
func (sv *Service) coalesceTick() sim.Time {
	if len(sv.wqs) == 0 {
		return 0
	}
	return sv.wqs[0].Dev.Cfg.Timing.IntrCoalesceTick
}

// Topology returns the service's per-socket WQ placement index.
func (sv *Service) Topology() *Topology { return sv.topo }

// Telemetry returns the service's streaming-metrics hub, synced to the
// current virtual instant — the raw digests behind the policy views, for
// reports and tests.
func (sv *Service) Telemetry() *telemetry.Hub {
	sv.met.sync()
	return sv.met.hub
}

// Drifts returns the regime shifts the telemetry drift detector has
// flagged so far across the per-socket latency streams and every tenant's
// completion streams (surfaced per tenant in Stats.Drifts).
func (sv *Service) Drifts() int64 { return sv.met.drifts() }

// Scheduler returns the active scheduler.
func (sv *Service) Scheduler() Scheduler { return sv.sched }

// Policy returns the service-level default policy.
func (sv *Service) Policy() Policy { return sv.policy }

// NewTenant creates a submission context. By default it allocates a fresh
// PASID-bound address space and a core on socket 0; options override the
// socket, supply an existing address space (shared-memory tenants), an
// existing core, or a per-tenant policy.
func (sv *Service) NewTenant(opts ...TenantOption) (*Tenant, error) {
	cfg := tenantCfg{socket: 0, policy: sv.policy}
	for _, o := range opts {
		o(&cfg)
	}
	// Validate the tenant's socket up front: an exotic topology (or a typo
	// in OnSocket) must fail here with a clear error, not panic later in
	// the allocator when Tenant.localNode indexes an empty node list.
	socket := cfg.socket
	if cfg.core != nil {
		socket = cfg.core.Socket
	}
	if socket < 0 || socket >= len(sv.Sys.Sockets) {
		return nil, fmt.Errorf("offload: tenant socket %d out of range (platform has %d sockets)",
			socket, len(sv.Sys.Sockets))
	}
	if len(sv.Sys.SocketOf(socket).Nodes) == 0 {
		return nil, fmt.Errorf("offload: socket %d has no memory nodes to allocate from", socket)
	}
	as := cfg.as
	if as == nil && cfg.core != nil {
		// An adopted core already resolves software-path addresses through
		// its own space; a fresh PASID here would split the hardware and
		// software paths across two address spaces.
		as = cfg.core.AS
	}
	if as == nil {
		as = mem.NewAddressSpace(sv.nextPASID)
		sv.nextPASID++
	}
	core := cfg.core
	if core == nil {
		core = cpu.NewCore(sv.nextCore, cfg.socket, sv.Sys, as, sv.model)
		sv.nextCore++
	}
	t := &Tenant{
		S:       sv,
		AS:      as,
		Core:    core,
		class:   cfg.class,
		policy:  cfg.policy,
		clients: make(map[*dsa.WQ]*dsa.Client),
	}
	// Bind the tenant's PASID on every device backing the service, as an
	// SVM process bind would (§3.4 F1). Shared-mode WQs then accept this
	// tenant's ENQCMD submissions alongside every other tenant's.
	seen := make(map[*dsa.Device]bool)
	for _, wq := range sv.wqs {
		if !seen[wq.Dev] {
			seen[wq.Dev] = true
			wq.Dev.BindPASID(as)
		}
	}
	// Register the tenant's completion streams up front so the adaptive
	// policies can read them from the first completion on. Shared-space
	// tenants share a PASID and therefore a stream pair.
	sv.met.tenant(as.PASID)
	return t, nil
}

// tenantCfg collects tenant options.
type tenantCfg struct {
	socket int
	class  QoSClass
	as     *mem.AddressSpace
	core   *cpu.Core
	policy Policy
}

// TenantOption customizes a tenant at creation.
type TenantOption func(*tenantCfg)

// OnSocket places the tenant's core (and default allocations) on a socket.
func OnSocket(s int) TenantOption { return func(c *tenantCfg) { c.socket = s } }

// WithClass sets the tenant's QoS class (default Bulk). QoS-aware
// schedulers reserve the highest-priority WQ per socket for
// LatencySensitive tenants.
func WithClass(class QoSClass) TenantOption { return func(c *tenantCfg) { c.class = class } }

// SharedSpace makes the tenant submit from an existing address space
// instead of allocating a fresh PASID (threads of one process).
func SharedSpace(as *mem.AddressSpace) TenantOption { return func(c *tenantCfg) { c.as = as } }

// OnCore binds the tenant to an existing core instead of creating one.
func OnCore(core *cpu.Core) TenantOption { return func(c *tenantCfg) { c.core = core } }

// TenantPolicy overrides the service default policy for this tenant.
func TenantPolicy(p Policy) TenantOption { return func(c *tenantCfg) { c.policy = p } }
