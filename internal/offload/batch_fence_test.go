package offload_test

import (
	"bytes"
	"testing"

	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// Regression: a fenced chain must never be split into per-socket
// sub-batches, even when LoadAware routing is pricing a saturated home
// socket — a fence orders descriptors across the WHOLE batch, which two
// independent devices cannot honor. Before the pre-pass fix, a fence
// arriving via Batch.WithFlags (batch-level, not per-descriptor) was not
// seen by the split scan at all, so exactly this chain sharded and the
// cross-socket ordering silently evaporated.
func TestFencedChainUnsplitUnderSaturatedSocket(t *testing.T) {
	for _, batchLevel := range []bool{true, false} {
		pol := offload.DefaultPolicy()
		pol.LoadAware = true
		r := newRig(t, 2)
		svc := r.service(t, offload.WithScheduler(offload.NewPlacement()), offload.WithPolicy(pol))
		tn, err := svc.NewTenant(offload.OnSocket(0))
		if err != nil {
			t.Fatal(err)
		}
		n := int64(256 << 10)
		// The fenced chain's data straddles sockets: an unfenced version of
		// this flush WOULD split (that's asserted below).
		a := tn.AllocOn(0, n)
		b := tn.AllocOn(0, n)
		c := tn.AllocOn(1, n)
		sim.NewRand(6).Bytes(a.Bytes())
		busySrc := tn.AllocOn(0, n)
		busyDst := tn.AllocOn(0, n)

		r.run(func(p *sim.Proc) {
			// Saturate socket 0's device so load-aware routing has every
			// incentive to move work off it.
			var futs []*offload.Future
			for i := 0; i < 24; i++ {
				f, err := tn.Copy(p, busyDst.Addr(0), busySrc.Addr(0), n, offload.On(offload.Hardware))
				if err != nil {
					t.Error(err)
					return
				}
				futs = append(futs, f)
			}
			// a→b on socket 0, FENCE, b→c onto socket 1: the second copy
			// reads the first one's output, so splitting is a correctness
			// bug, not a tuning choice.
			bt := tn.NewBatch().Copy(b.Addr(0), a.Addr(0), n)
			if batchLevel {
				bt.Copy(c.Addr(0), b.Addr(0), n).WithFlags(dsa.FlagFence)
			} else {
				bt.Fence()
				bt.Copy(c.Addr(0), b.Addr(0), n)
			}
			f, err := bt.Submit(p)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
			for _, f := range futs {
				if _, err := f.Wait(p, offload.Poll); err != nil {
					t.Error(err)
				}
			}
		})
		if got := tn.Stats().Splits; got != 0 {
			t.Errorf("batchLevel=%v: fenced chain produced %d sub-batches, want 0", batchLevel, got)
		}
		if !bytes.Equal(c.Bytes(), a.Bytes()) {
			t.Errorf("batchLevel=%v: fence ordering lost across the chain", batchLevel)
		}
	}
}

// Counterpart sanity: the SAME mixed-home flush without the fence does
// split — proving the test above exercises the fence suppression, not a
// flush that would never have sharded anyway.
func TestUnfencedMixedHomeChainStillSplits(t *testing.T) {
	r := newRig(t, 2)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	a := tn.AllocOn(0, n)
	b := tn.AllocOn(0, n)
	c := tn.AllocOn(1, n)
	d := tn.AllocOn(1, n)
	sim.NewRand(7).Bytes(a.Bytes())
	sim.NewRand(8).Bytes(c.Bytes())
	r.run(func(p *sim.Proc) {
		f, err := tn.NewBatch().
			Copy(b.Addr(0), a.Addr(0), n).
			Copy(d.Addr(0), c.Addr(0), n).
			Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	if got := tn.Stats().Splits; got != 2 {
		t.Fatalf("mixed-home unfenced flush produced %d sub-batches, want 2", got)
	}
	if !bytes.Equal(b.Bytes(), a.Bytes()) || !bytes.Equal(d.Bytes(), c.Bytes()) {
		t.Fatal("split flush dropped data")
	}
}
