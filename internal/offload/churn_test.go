package offload_test

// Tenant churn: fleet-scale services retire and replace tenants while
// operations are still in flight. These tests pin the lifecycle contract
// Close promises — queued work flushes, in-flight futures stay waitable
// (including under interrupt coalescing, whose last window must still
// deliver for a closed tenant), and every later submission path fails
// with ErrTenantClosed.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

func TestCloseWithInflightFuturesUnderCoalescing(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t)
	pol := offload.DefaultPolicy()
	pol.Wait = offload.Interrupt
	pol.CoalesceCount = 4
	pol.CoalesceWindow = 8 * time.Microsecond
	pol.AutoBatch = 4
	tn, err := svc.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	small := int64(1 << 10)

	r.run(func(p *sim.Proc) {
		var futs []*offload.Future
		// Hardware copies left in flight across Close.
		for i := 0; i < 6; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		// Sub-threshold Auto copies queued unflushed in the AutoBatcher:
		// Close must flush them so their futures are not stranded.
		for i := 0; i < 3; i++ {
			f, err := tn.Copy(p, dst.Addr(small), src.Addr(small), small)
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		if err := tn.Close(p); err != nil {
			t.Fatalf("Close with in-flight futures: %v", err)
		}
		if !tn.Closed() {
			t.Fatal("Closed() false after Close")
		}
		if err := tn.Close(p); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("second Close = %v, want ErrTenantClosed", err)
		}
		// Every submission path is shut: hardware, software, pipeline.
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware)); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("hardware Copy after Close = %v, want ErrTenantClosed", err)
		}
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), small, offload.NoBatch()); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("software Copy after Close = %v, want ErrTenantClosed", err)
		}
		pl := tn.NewPipeline()
		pl.CRC32(offload.At(src.Addr(0)), n, 0)
		if _, err := pl.Submit(p); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("pipeline Submit after Close = %v, want ErrTenantClosed", err)
		}
		// The in-flight and flushed futures all still resolve.
		for i, f := range futs {
			if _, err := f.Wait(p, offload.Interrupt); err != nil {
				t.Fatalf("future %d after Close: %v", i, err)
			}
		}
	})
}

func TestPlaneCloseDetachesRingsForSuccessor(t *testing.T) {
	r := newRig(t, 1, dsa.WQConfig{Mode: dsa.Shared, Size: 32})
	svc := r.service(t)
	tn, err := svc.NewTenant(offload.WithClass(offload.Bulk))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tn.NewPlane(2)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(32 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)

	var lats []sim.Time
	pl.OnCompletion(func(lat sim.Time, ok bool) { lats = append(lats, lat) })

	r.run(func(p *sim.Proc) {
		lane := pl.Lane(0)
		arrival := p.Now()
		p.Sleep(3 * time.Microsecond)
		for i := 0; i < 4; i++ {
			err := lane.SubmitStamped(p, dsa.Descriptor{
				Op: dsa.OpMemmove, Src: src.Addr(0), Dst: dst.Addr(0), Size: n,
			}, arrival)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := pl.Close(); err == nil {
			t.Fatal("Close with work outstanding succeeded")
		}
		pl.WaitInflight(p, 0)
		if len(lats) != 4 {
			t.Fatalf("observer saw %d completions, want 4", len(lats))
		}
		// Stamped latency spans arrival→record, so it includes the 3µs
		// the submitter sat on the ops before submitting.
		for _, lat := range lats {
			if lat < 3*time.Microsecond {
				t.Fatalf("stamped latency %v shorter than the pre-submit delay", lat)
			}
		}
		if err := tn.Close(p); err != nil {
			t.Fatal(err)
		}
		if err := lane.Submit(p, dsa.Descriptor{
			Op: dsa.OpMemmove, Src: src.Addr(0), Dst: dst.Addr(0), Size: n,
		}); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("lane Submit after Close = %v, want ErrTenantClosed", err)
		}
		if err := pl.Close(); err != nil {
			t.Fatalf("drained plane Close: %v", err)
		}
		// The WQ rings are free again: a replacement tenant attaches its
		// own plane where NewPlane would have refused before.
		tn2, err := svc.NewTenant(offload.WithClass(offload.Bulk))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn2.NewPlane(1); err != nil {
			t.Fatalf("successor NewPlane after Close: %v", err)
		}
	})
}

// Tenant retirement racing the recovery plane: one tenant closes while
// its fused pipeline is mid-fault-retry inside a page-fault storm, and a
// second tenant's submission plane rides a whole-device outage through
// drain failover at the same instant. Close's contract must hold under
// fire — the in-flight future stays waitable and resolves through the
// retry, the failed-over plane drains fully, and every post-close
// submission path still reports ErrTenantClosed. Under -race this is the
// engine-domain/host-lane boundary exerciser for the fault plane.
func TestCloseRacesFaultingPipelineWithFailover(t *testing.T) {
	r := newRig(t, 2, dsa.WQConfig{Mode: dsa.Shared, Size: 16})
	if _, err := r.devs[0].InjectFaults(dsa.FaultConfig{
		Seed:    31,
		Bursts:  []dsa.FaultBurst{{At: 0, Dur: sim.Time(4 * time.Microsecond), Per4K: 1}},
		Outages: []dsa.Outage{{At: sim.Time(10 * time.Microsecond), Dur: sim.Time(60 * time.Microsecond)}},
	}); err != nil {
		t.Fatal(err)
	}
	svc := r.service(t)
	pol := offload.DefaultPolicy()
	pol.RetryMax = 3
	pol.RetryBackoff = 3 * time.Microsecond
	ptn, err := svc.NewTenant(offload.TenantPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	btn, err := svc.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(32 << 10)
	psrc, pdst := ptn.Alloc(n), ptn.Alloc(n)
	sim.NewRand(5).Bytes(psrc.Bytes())
	big := int64(256 << 10)
	bsrc, bdst := btn.Alloc(24*big), btn.Alloc(24*big)

	pl := ptn.NewPipeline()
	tmp := pl.Scratch(n)
	s1 := pl.Copy(tmp, offload.At(psrc.Addr(0)), n)
	pl.Copy(offload.At(pdst.Addr(0)), tmp, n, offload.After(s1))

	plane, err := btn.NewPlane(2)
	if err != nil {
		t.Fatal(err)
	}
	var done, failed int
	plane.OnCompletion(func(lat sim.Time, ok bool) {
		if ok {
			done++
		} else {
			failed++
		}
	})

	r.run(func(p *sim.Proc) {
		// The chain submits into the storm: its first attempt faults and
		// the retry is pending when Close lands.
		f, err := pl.Submit(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := ptn.Close(p); err != nil {
			t.Fatalf("Close with a faulting chain in flight: %v", err)
		}
		if _, err := pl.Submit(p); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("pipeline Submit after Close = %v, want ErrTenantClosed", err)
		}
		// Meanwhile the bulk tenant's plane runs head-on into the outage.
		lane := plane.Lane(0)
		for i := int64(0); i < 24; i++ {
			if err := lane.SubmitStamped(p, dsa.Descriptor{
				Op: dsa.OpMemmove, Src: bsrc.Addr(i * big), Dst: bdst.Addr(i * big), Size: big,
			}, p.Now()); err != nil {
				t.Fatalf("plane submit %d: %v", i, err)
			}
		}
		// The closed tenant's future still resolves — through the retry.
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Fatalf("closed tenant's in-flight chain: %v", err)
		}
		plane.WaitInflight(p, 0)
		if err := btn.Close(p); err != nil {
			t.Fatalf("bulk Close after failover drain: %v", err)
		}
		if err := lane.Submit(p, dsa.Descriptor{
			Op: dsa.OpMemmove, Src: bsrc.Addr(0), Dst: bdst.Addr(0), Size: big,
		}); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("lane Submit after Close = %v, want ErrTenantClosed", err)
		}
	})
	if !bytes.Equal(pdst.Bytes(), psrc.Bytes()) {
		t.Fatal("closed tenant's recovered chain is not byte-correct")
	}
	if st := ptn.Stats(); st.Retries == 0 {
		t.Fatalf("pipeline tenant retries=%d, want nonzero (the storm covers attempt 1)", st.Retries)
	}
	if st := btn.Stats(); st.Failovers == 0 {
		t.Fatalf("bulk tenant failovers=%d, want >=1", st.Failovers)
	}
	if done+failed != 24 {
		t.Fatalf("plane accounted %d+%d completions, want 24", done, failed)
	}
}

func TestSLOBudgetAccounting(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t)
	pol := offload.DefaultPolicy()
	pol.SLOBudget = 500 * time.Microsecond
	tn, err := svc.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	tight := pol
	tight.SLOBudget = time.Nanosecond
	miss, err := svc.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(tight))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	msrc, mdst := miss.Alloc(n), miss.Alloc(n)

	r.run(func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Fatal(err)
			}
		}
		// A software-path op is scored too.
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), 256, offload.On(offload.Software)); err != nil {
			t.Fatal(err)
		}
		f, err := miss.Copy(p, mdst.Addr(0), msrc.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Fatal(err)
		}
	})

	if s := tn.Stats(); s.SLOOk != 4 || s.SLOMiss != 0 {
		t.Fatalf("generous budget: ok=%d miss=%d, want 4/0", s.SLOOk, s.SLOMiss)
	}
	if s := miss.Stats(); s.SLOOk != 0 || s.SLOMiss != 1 {
		t.Fatalf("1ns budget: ok=%d miss=%d, want 0/1", s.SLOOk, s.SLOMiss)
	}
}
