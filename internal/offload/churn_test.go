package offload_test

// Tenant churn: fleet-scale services retire and replace tenants while
// operations are still in flight. These tests pin the lifecycle contract
// Close promises — queued work flushes, in-flight futures stay waitable
// (including under interrupt coalescing, whose last window must still
// deliver for a closed tenant), and every later submission path fails
// with ErrTenantClosed.

import (
	"errors"
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

func TestCloseWithInflightFuturesUnderCoalescing(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t)
	pol := offload.DefaultPolicy()
	pol.Wait = offload.Interrupt
	pol.CoalesceCount = 4
	pol.CoalesceWindow = 8 * time.Microsecond
	pol.AutoBatch = 4
	tn, err := svc.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	small := int64(1 << 10)

	r.run(func(p *sim.Proc) {
		var futs []*offload.Future
		// Hardware copies left in flight across Close.
		for i := 0; i < 6; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		// Sub-threshold Auto copies queued unflushed in the AutoBatcher:
		// Close must flush them so their futures are not stranded.
		for i := 0; i < 3; i++ {
			f, err := tn.Copy(p, dst.Addr(small), src.Addr(small), small)
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		if err := tn.Close(p); err != nil {
			t.Fatalf("Close with in-flight futures: %v", err)
		}
		if !tn.Closed() {
			t.Fatal("Closed() false after Close")
		}
		if err := tn.Close(p); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("second Close = %v, want ErrTenantClosed", err)
		}
		// Every submission path is shut: hardware, software, pipeline.
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware)); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("hardware Copy after Close = %v, want ErrTenantClosed", err)
		}
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), small, offload.NoBatch()); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("software Copy after Close = %v, want ErrTenantClosed", err)
		}
		pl := tn.NewPipeline()
		pl.CRC32(offload.At(src.Addr(0)), n, 0)
		if _, err := pl.Submit(p); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("pipeline Submit after Close = %v, want ErrTenantClosed", err)
		}
		// The in-flight and flushed futures all still resolve.
		for i, f := range futs {
			if _, err := f.Wait(p, offload.Interrupt); err != nil {
				t.Fatalf("future %d after Close: %v", i, err)
			}
		}
	})
}

func TestPlaneCloseDetachesRingsForSuccessor(t *testing.T) {
	r := newRig(t, 1, dsa.WQConfig{Mode: dsa.Shared, Size: 32})
	svc := r.service(t)
	tn, err := svc.NewTenant(offload.WithClass(offload.Bulk))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tn.NewPlane(2)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(32 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)

	var lats []sim.Time
	pl.OnCompletion(func(lat sim.Time) { lats = append(lats, lat) })

	r.run(func(p *sim.Proc) {
		lane := pl.Lane(0)
		arrival := p.Now()
		p.Sleep(3 * time.Microsecond)
		for i := 0; i < 4; i++ {
			err := lane.SubmitStamped(p, dsa.Descriptor{
				Op: dsa.OpMemmove, Src: src.Addr(0), Dst: dst.Addr(0), Size: n,
			}, arrival)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := pl.Close(); err == nil {
			t.Fatal("Close with work outstanding succeeded")
		}
		pl.WaitInflight(p, 0)
		if len(lats) != 4 {
			t.Fatalf("observer saw %d completions, want 4", len(lats))
		}
		// Stamped latency spans arrival→record, so it includes the 3µs
		// the submitter sat on the ops before submitting.
		for _, lat := range lats {
			if lat < 3*time.Microsecond {
				t.Fatalf("stamped latency %v shorter than the pre-submit delay", lat)
			}
		}
		if err := tn.Close(p); err != nil {
			t.Fatal(err)
		}
		if err := lane.Submit(p, dsa.Descriptor{
			Op: dsa.OpMemmove, Src: src.Addr(0), Dst: dst.Addr(0), Size: n,
		}); !errors.Is(err, offload.ErrTenantClosed) {
			t.Fatalf("lane Submit after Close = %v, want ErrTenantClosed", err)
		}
		if err := pl.Close(); err != nil {
			t.Fatalf("drained plane Close: %v", err)
		}
		// The WQ rings are free again: a replacement tenant attaches its
		// own plane where NewPlane would have refused before.
		tn2, err := svc.NewTenant(offload.WithClass(offload.Bulk))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn2.NewPlane(1); err != nil {
			t.Fatalf("successor NewPlane after Close: %v", err)
		}
	})
}

func TestSLOBudgetAccounting(t *testing.T) {
	r := newRig(t, 1)
	svc := r.service(t)
	pol := offload.DefaultPolicy()
	pol.SLOBudget = 500 * time.Microsecond
	tn, err := svc.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	tight := pol
	tight.SLOBudget = time.Nanosecond
	miss, err := svc.NewTenant(offload.WithClass(offload.Bulk), offload.TenantPolicy(tight))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src, dst := tn.Alloc(n), tn.Alloc(n)
	msrc, mdst := miss.Alloc(n), miss.Alloc(n)

	r.run(func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Fatal(err)
			}
		}
		// A software-path op is scored too.
		if _, err := tn.Copy(p, dst.Addr(0), src.Addr(0), 256, offload.On(offload.Software)); err != nil {
			t.Fatal(err)
		}
		f, err := miss.Copy(p, mdst.Addr(0), msrc.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Fatal(err)
		}
	})

	if s := tn.Stats(); s.SLOOk != 4 || s.SLOMiss != 0 {
		t.Fatalf("generous budget: ok=%d miss=%d, want 4/0", s.SLOOk, s.SLOMiss)
	}
	if s := miss.Stats(); s.SLOOk != 0 || s.SLOMiss != 1 {
		t.Fatalf("1ns budget: ok=%d miss=%d, want 0/1", s.SLOOk, s.SLOMiss)
	}
}
