package offload_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// cxlRig is a two-socket system with one DSA per socket and a CXL expander
// on socket 0 (node 2), the SPR layout the placement experiments use.
func cxlRig(t *testing.T) *rig {
	t.Helper()
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 0, Kind: mem.CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
		},
	})
	r := &rig{e: e, sys: sys}
	for s := 0; s < 2; s++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", s))
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines: 4,
			WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
		}); err != nil {
			t.Fatal(err)
		}
		if err := dev.Enable(); err != nil {
			t.Fatal(err)
		}
		r.devs = append(r.devs, dev)
	}
	return r
}

// Placement must route on the data's socket, not the tenant's: a socket-0
// tenant copying between socket-1 buffers lands on the socket-1 device,
// and a DRAM↔CXL pair straddling sockets lands next to the faster-write
// DRAM medium (G4, Fig 6b).
func TestPlacementRoutesToDataSocket(t *testing.T) {
	r := cxlRig(t)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src := tn.AllocOn(1, n)
	dst := tn.AllocOn(1, n)
	sim.NewRand(11).Bytes(src.Bytes())
	r.run(func(p *sim.Proc) {
		f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("copy incomplete")
	}
	if got := r.devs[1].Stats().Submitted; got != 1 {
		t.Fatalf("socket-1 device saw %d descriptors, want 1 (data lives on socket 1)", got)
	}
	if got := r.devs[0].Stats().Submitted; got != 0 {
		t.Fatalf("socket-0 device saw %d descriptors, want 0", got)
	}
}

func TestPlacementPrefersFasterWriteMediumAcrossSockets(t *testing.T) {
	r := cxlRig(t)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	dram := tn.AllocOn(1, n) // socket-1 DRAM
	cxl := tn.AllocOn(2, n)  // socket-0 CXL
	r.run(func(p *sim.Proc) {
		// Demote: socket-1 DRAM → socket-0 CXL. The pair straddles
		// sockets; the DRAM side writes faster, so the descriptor goes to
		// the socket-1 device.
		f, err := tn.Copy(p, cxl.Addr(0), dram.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	if got := r.devs[1].Stats().Submitted; got != 1 {
		t.Fatalf("DRAM-side device saw %d descriptors, want 1 (faster-write medium)", got)
	}
}

// A mixed-home explicit batch under Placement shards into per-socket
// sub-batches, one per device, and the joined Future resolves once all
// sub-batches complete.
func TestBatchSplitsAcrossSockets(t *testing.T) {
	r := cxlRig(t)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	var srcs, dsts []*mem.Buffer
	for i := 0; i < 4; i++ {
		node := i % 2 // alternate socket-0 / socket-1 homes
		srcs = append(srcs, tn.AllocOn(node, n))
		dsts = append(dsts, tn.AllocOn(node, n))
		sim.NewRand(uint64(20 + i)).Bytes(srcs[i].Bytes())
	}
	r.run(func(p *sim.Proc) {
		b := tn.NewBatch()
		for i := range srcs {
			b.Copy(dsts[i].Addr(0), srcs[i].Addr(0), n)
		}
		f, err := b.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if f.Done() {
			t.Error("joined future reported done right after submission")
		}
		res, err := f.Wait(p, offload.Poll)
		if err != nil {
			t.Error(err)
		}
		// Like an unsplit batch, the record counts completed work
		// descriptors — not sub-batches.
		if res.Record.Result != 4 {
			t.Errorf("joined Record.Result = %d, want 4 completed descriptors", res.Record.Result)
		}
	})
	for i := range srcs {
		if !bytes.Equal(dsts[i].Bytes(), srcs[i].Bytes()) {
			t.Fatalf("copy %d incomplete", i)
		}
	}
	for s, dev := range r.devs {
		st := dev.Stats()
		if st.Submitted != 1 || st.BatchesFetched != 1 {
			t.Fatalf("socket-%d device stats = %+v, want 1 batch parent", s, st)
		}
	}
	st := tn.Stats()
	if st.Splits != 2 {
		t.Fatalf("Splits = %d, want 2 sub-batches", st.Splits)
	}
	if st.HWBytes != 4*n {
		t.Fatalf("HWBytes = %d, want %d", st.HWBytes, 4*n)
	}
}

// A sub-batch left with one descriptor is submitted as a plain descriptor
// (the device rejects batches of fewer than two).
func TestSplitSingleDescriptorSubBatch(t *testing.T) {
	r := cxlRig(t)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	homes := []int{0, 0, 1} // two descriptors on socket 0, a lone one on 1
	var srcs, dsts []*mem.Buffer
	for i, node := range homes {
		srcs = append(srcs, tn.AllocOn(node, n))
		dsts = append(dsts, tn.AllocOn(node, n))
		sim.NewRand(uint64(30 + i)).Bytes(srcs[i].Bytes())
	}
	r.run(func(p *sim.Proc) {
		b := tn.NewBatch()
		for i := range srcs {
			b.Copy(dsts[i].Addr(0), srcs[i].Addr(0), n)
		}
		f, err := b.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	for i := range srcs {
		if !bytes.Equal(dsts[i].Bytes(), srcs[i].Bytes()) {
			t.Fatalf("copy %d incomplete", i)
		}
	}
	if st := r.devs[0].Stats(); st.BatchesFetched != 1 {
		t.Fatalf("socket-0 device fetched %d batches, want 1", st.BatchesFetched)
	}
	if st := r.devs[1].Stats(); st.Submitted != 1 || st.BatchesFetched != 0 {
		t.Fatalf("socket-1 device stats = %+v, want one plain descriptor and no batch", st)
	}
}

// Fences order descriptors across the whole batch, which two independent
// devices cannot honor: a fence-carrying batch is never split.
func TestFencedBatchNeverSplits(t *testing.T) {
	r := cxlRig(t)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	s0src, s0dst := tn.AllocOn(0, n), tn.AllocOn(0, n)
	s1src, s1dst := tn.AllocOn(1, n), tn.AllocOn(1, n)
	sim.NewRand(40).Bytes(s0src.Bytes())
	sim.NewRand(41).Bytes(s1src.Bytes())
	r.run(func(p *sim.Proc) {
		f, err := tn.NewBatch().
			Copy(s0dst.Addr(0), s0src.Addr(0), n).
			Fence().
			Copy(s1dst.Addr(0), s1src.Addr(0), n).
			Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(s0dst.Bytes(), s0src.Bytes()) || !bytes.Equal(s1dst.Bytes(), s1src.Bytes()) {
		t.Fatal("fenced copies incomplete")
	}
	if st := tn.Stats(); st.Splits != 0 {
		t.Fatalf("Splits = %d, want 0 (fenced batch must stay whole)", st.Splits)
	}
	// The whole batch landed on the first child's home device.
	if got := r.devs[1].Stats().Submitted; got != 0 {
		t.Fatalf("socket-1 device saw %d descriptors, want 0", got)
	}
}

// A failing sub-batch resolves its own siblings with the batch error —
// counted exactly once in Stats.Failures — while the other sub-batch's
// futures succeed untouched.
func TestPartialSubBatchFailureCountsOnce(t *testing.T) {
	r := cxlRig(t)
	pol := offload.DefaultPolicy()
	pol.AutoBatch = 4
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()), offload.WithPolicy(pol))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1 << 10) // sub-threshold: rides the AutoBatcher
	s0srcA, s0dstA := tn.AllocOn(0, n), tn.AllocOn(0, n)
	s0srcB := tn.AllocOn(0, n)
	// Lazy destination: the device faults on the unmapped page and, without
	// block-on-fault, partially completes — failing its sub-batch.
	s0dstB := tn.AllocOn(0, n, mem.Lazy())
	s1src, s1dst := tn.AllocOn(1, n), tn.AllocOn(1, n)
	s1src2, s1dst2 := tn.AllocOn(1, n), tn.AllocOn(1, n)
	sim.NewRand(50).Bytes(s0srcA.Bytes())
	sim.NewRand(51).Bytes(s1src.Bytes())
	r.run(func(p *sim.Proc) {
		copies := []struct {
			dst, src *mem.Buffer
		}{{s0dstA, s0srcA}, {s0dstB, s0srcB}, {s1dst, s1src}, {s1dst2, s1src2}}
		var futs []*offload.Future
		for _, c := range copies {
			f, err := tn.Copy(p, c.dst.Addr(0), c.src.Addr(0), n)
			if err != nil {
				t.Error(err)
				return
			}
			futs = append(futs, f)
		}
		if pend := tn.Batcher().Pending(); pend != 0 {
			t.Errorf("batcher still holds %d ops after reaching the flush size", pend)
		}
		// Socket-0 siblings share the failing sub-batch.
		for _, f := range futs[:2] {
			if _, err := f.Wait(p, offload.Poll); err == nil {
				t.Error("sibling of faulting copy resolved without error")
			}
		}
		// Socket-1 siblings are a different sub-batch and succeed.
		for _, f := range futs[2:] {
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Errorf("unaffected sub-batch failed: %v", err)
			}
		}
	})
	if !bytes.Equal(s1dst.Bytes(), s1src.Bytes()) {
		t.Fatal("socket-1 sub-batch copies incomplete")
	}
	st := tn.Stats()
	if st.Failures != 1 {
		t.Fatalf("Failures = %d, want exactly 1 for one failed sub-batch", st.Failures)
	}
	if st.Splits != 2 {
		t.Fatalf("Splits = %d, want 2", st.Splits)
	}
}

// Splitting must stay off for data-blind schedulers: every sub-batch would
// land on the same device anyway, so the flush stays one batch.
func TestNoSplitUnderDataBlindScheduler(t *testing.T) {
	r := cxlRig(t)
	svc := r.service(t, offload.WithScheduler(offload.NewNUMALocal()))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	s0src, s0dst := tn.AllocOn(0, n), tn.AllocOn(0, n)
	s1src, s1dst := tn.AllocOn(1, n), tn.AllocOn(1, n)
	r.run(func(p *sim.Proc) {
		f, err := tn.NewBatch().
			Copy(s0dst.Addr(0), s0src.Addr(0), n).
			Copy(s1dst.Addr(0), s1src.Addr(0), n).
			Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})
	if st := tn.Stats(); st.Splits != 0 {
		t.Fatalf("Splits = %d under NUMALocal, want 0", st.Splits)
	}
}

// Tenants on sockets without memory must fail with a clear error at
// creation, not panic in the allocator.
func TestTenantOnNodelessSocketFails(t *testing.T) {
	r := newRig(t, 1) // socket 1 exists but has no memory node
	svc := r.service(t)
	if _, err := svc.NewTenant(offload.OnSocket(1)); err == nil {
		t.Fatal("tenant on a node-less socket was created")
	}
	if _, err := svc.NewTenant(offload.OnSocket(7)); err == nil {
		t.Fatal("tenant on an out-of-range socket was created")
	}
	if _, err := svc.NewTenant(offload.OnSocket(-1)); err == nil {
		t.Fatal("tenant on a negative socket was created")
	}
}

// Out-of-range request sockets must fall back to the full WQ set through
// the topology cache, not panic.
func TestSchedulersTolerateForeignSockets(t *testing.T) {
	r := cxlRig(t)
	svc := r.service(t)
	topo := svc.Topology()
	wqs := svc.WQs()
	for _, s := range []offload.Scheduler{
		offload.NewNUMALocal(), offload.NewPlacement(), offload.NewPlacementQoS(), offload.NewPriorityAware(),
	} {
		req := offload.Request{Socket: 9, Topo: topo}
		if got := s.Pick(req, wqs); got == nil {
			t.Fatalf("%s returned nil for a foreign socket", s.Name())
		}
	}
}

// The Pick hot path must not allocate: per-socket WQ subsets and the
// express/rest partitions are precomputed on the Service, so schedulers
// only index them.
func TestPickZeroAllocs(t *testing.T) {
	r := newRig(t, 2, dsa.WQConfig{Mode: dsa.Shared, Size: 8, Priority: 15},
		dsa.WQConfig{Mode: dsa.Shared, Size: 24, Priority: 5})
	svc := r.service(t)
	topo := svc.Topology()
	wqs := svc.WQs()
	node0, node1 := r.sys.Node(0), r.sys.Node(1)
	reqs := []offload.Request{
		{Socket: 0, Topo: topo, SrcNode: node0, DstNode: node0},
		{Socket: 1, Topo: topo, SrcNode: node1, DstNode: node1},
		{Socket: 0, Topo: topo, SrcNode: node0, DstNode: node1},
		{Socket: 1, Class: offload.LatencySensitive, Topo: topo},
		// The load-aware path runs the per-socket cost model on every
		// Pick; it must stay allocation-free too.
		{Socket: 0, Topo: topo, SrcNode: node0, DstNode: node0, LoadAware: true, Size: 256 << 10},
		{Socket: 1, Topo: topo, SrcNode: node0, DstNode: node1, LoadAware: true, Size: 64 << 10},
		{Socket: 0, Class: offload.LatencySensitive, Topo: topo, SrcNode: node1, DstNode: node1, LoadAware: true, Size: 16 << 10},
	}
	scheds := []offload.Scheduler{
		offload.NewNUMALocal(),
		offload.NewLeastLoaded(),
		offload.NewPlacement(),
		offload.NewPlacementQoS(),
		offload.NewPriorityAware(),
	}
	for _, s := range scheds {
		s := s
		// Warm per-socket state (NUMALocal's rotation map) outside the
		// measured window.
		for _, req := range reqs {
			s.Pick(req, wqs)
		}
		allocs := testing.AllocsPerRun(200, func() {
			for _, req := range reqs {
				if s.Pick(req, wqs) == nil {
					t.Fatalf("%s returned nil", s.Name())
				}
			}
		})
		if allocs != 0 {
			t.Errorf("%s.Pick allocated %.1f times per run, want 0", s.Name(), allocs)
		}
	}
}

// BenchmarkPick measures the scheduler hot path; run with -benchmem to see
// the zero allocs/op the precomputed topology buys. The placement-load
// variant exercises the per-socket cost model on every pick.
func BenchmarkPick(b *testing.B) {
	for _, bc := range []struct {
		name      string
		mk        func() offload.Scheduler
		loadAware bool
	}{
		{"numa-local", func() offload.Scheduler { return offload.NewNUMALocal() }, false},
		{"least-loaded", func() offload.Scheduler { return offload.NewLeastLoaded() }, false},
		{"placement", func() offload.Scheduler { return offload.NewPlacement() }, false},
		{"placement-load", func() offload.Scheduler { return offload.NewPlacement() }, true},
		{"priority-aware", func() offload.Scheduler { return offload.NewPriorityAware() }, false},
	} {
		sched := bc.mk()
		b.Run(bc.name, func(b *testing.B) {
			e := sim.New()
			sys := mem.NewSystem(e, mem.SystemConfig{
				Sockets: 2,
				LLC:     mem.LLCConfig{Capacity: 105 << 20},
				NodeDefs: []mem.NodeConfig{
					{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
					{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
				},
			})
			var wqs []*dsa.WQ
			var devs []*dsa.Device
			for s := 0; s < 2; s++ {
				dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", s))
				if _, err := dev.AddGroup(dsa.GroupConfig{
					Engines: 4,
					WQs: []dsa.WQConfig{
						{Mode: dsa.Shared, Size: 8, Priority: 15},
						{Mode: dsa.Shared, Size: 24, Priority: 5},
					},
				}); err != nil {
					b.Fatal(err)
				}
				if err := dev.Enable(); err != nil {
					b.Fatal(err)
				}
				devs = append(devs, dev)
				wqs = append(wqs, dev.WQs()...)
			}
			svc, err := offload.NewService(e, sys, wqs)
			if err != nil {
				b.Fatal(err)
			}
			req := offload.Request{
				Socket:    0,
				Topo:      svc.Topology(),
				SrcNode:   sys.Node(0),
				DstNode:   sys.Node(1),
				Size:      64 << 10,
				LoadAware: bc.loadAware,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req.Socket = i & 1
				if sched.Pick(req, wqs) == nil {
					b.Fatal("nil pick")
				}
			}
			_ = devs
		})
	}
}

// Load-aware placement (Policy.LoadAware): with the data's home device
// backlogged and the remote device idle, submissions detour across UPI
// once the modelled queueing delay (latency EWMA × occupancy) exceeds the
// transfer penalty — and never detour when the policy is off.
func TestLoadAwarePlacementDetoursUnderBacklog(t *testing.T) {
	for _, loadAware := range []bool{false, true} {
		pol := offload.DefaultPolicy()
		pol.LoadAware = loadAware
		r := newRig(t, 2)
		svc := r.service(t, offload.WithScheduler(offload.NewPlacement()), offload.WithPolicy(pol))
		tn, err := svc.NewTenant(offload.OnSocket(0))
		if err != nil {
			t.Fatal(err)
		}
		n := int64(256 << 10)
		src := tn.AllocOn(0, n) // all data homed on socket 0
		dst := tn.AllocOn(0, n)
		r.run(func(p *sim.Proc) {
			// Warmup: one synchronous copy gives the socket-0 WQ a
			// completion-latency history to price the backlog with.
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
				return
			}
			// Burst without waiting: occupancy builds on the home device.
			var futs []*offload.Future
			for i := 0; i < 24; i++ {
				f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
				if err != nil {
					t.Error(err)
					return
				}
				futs = append(futs, f)
			}
			for _, f := range futs {
				if _, err := f.Wait(p, offload.Poll); err != nil {
					t.Error(err)
				}
			}
		})
		remote := r.devs[1].Stats().Submitted
		if loadAware && remote == 0 {
			t.Errorf("load-aware: no submission detoured to the idle socket-1 device under backlog")
		}
		if !loadAware && remote != 0 {
			t.Errorf("data-only: %d submissions left the data's socket", remote)
		}
		if home := r.devs[0].Stats().Submitted; home == 0 {
			t.Errorf("loadAware=%v: home device saw no traffic", loadAware)
		}
	}
}

// An unloaded system must route load-aware placement exactly like
// data-only placement: the data's home wins every tie, so sequential
// (never-queued) traffic pays no UPI detour.
func TestLoadAwarePlacementIdleMatchesDataOnly(t *testing.T) {
	pol := offload.DefaultPolicy()
	pol.LoadAware = true
	r := newRig(t, 2)
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()), offload.WithPolicy(pol))
	tn, err := svc.NewTenant(offload.OnSocket(1))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	src := tn.AllocOn(0, n)
	dst := tn.AllocOn(0, n)
	r.run(func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
		}
	})
	if got := r.devs[1].Stats().Submitted; got != 0 {
		t.Fatalf("idle load-aware placement sent %d descriptors off the data's socket", got)
	}
	if got := r.devs[0].Stats().Submitted; got != 8 {
		t.Fatalf("data's device saw %d descriptors, want 8", got)
	}
}

// A mixed-home flush sharded into per-socket sub-batches costs exactly
// one admission token: the same logical work must not cost more under
// Placement (split on) than under NUMALocal (never splits).
func TestSplitFlushChargesAdmissionOnce(t *testing.T) {
	r := cxlRig(t)
	pol := offload.DefaultPolicy()
	pol.AdmitRate = 1 // no meaningful refill within the test
	pol.AdmitBurst = 2
	svc := r.service(t, offload.WithScheduler(offload.NewPlacement()), offload.WithPolicy(pol))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(64 << 10)
	s0src, s0dst := tn.AllocOn(0, 2*n), tn.AllocOn(0, 2*n)
	s1src, s1dst := tn.AllocOn(1, 2*n), tn.AllocOn(1, 2*n)
	mixedBatch := func() *offload.Batch {
		return tn.NewBatch().
			Copy(s0dst.Addr(0), s0src.Addr(0), n).
			Copy(s0dst.Addr(n), s0src.Addr(n), n).
			Copy(s1dst.Addr(0), s1src.Addr(0), n).
			Copy(s1dst.Addr(n), s1src.Addr(n), n)
	}
	r.run(func(p *sim.Proc) {
		// Two splitting flushes ride the burst of two tokens — under the
		// old per-sub-batch charge the second flush would already be shed.
		for i := 0; i < 2; i++ {
			f, err := mixedBatch().Submit(p)
			if err != nil {
				t.Errorf("flush %d rejected: %v", i, err)
				return
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
		}
		// The bucket is empty: the third logical flush is shed whole.
		if _, err := mixedBatch().Submit(p); err == nil {
			t.Error("third flush admitted past a burst of 2")
		} else if !errors.Is(err, offload.ErrAdmission) {
			t.Errorf("error %v does not wrap ErrAdmission", err)
		}
	})
	st := tn.Stats()
	if st.Splits != 4 {
		t.Errorf("Splits = %d, want 4 (two admitted flushes × two sub-batches)", st.Splits)
	}
	if st.Shed != 1 {
		t.Errorf("Shed = %d, want 1 (shed per logical flush, not per sub-batch)", st.Shed)
	}
}

// Detour hysteresis: the raw cost model re-prices every submission, so a
// workload hovering at the detour threshold would ping-pong between
// sockets. With the smoothed cost and switch margin, a transient
// one-descriptor spike never flips routing, a sustained backlog flips it
// exactly once, and a drained queue brings it home exactly once.
func TestDetourHysteresisResistsFlapping(t *testing.T) {
	pol := offload.DefaultPolicy()
	pol.LoadAware = true
	r := newRig(t, 2)
	sched := offload.NewPlacement()
	svc := r.service(t, offload.WithScheduler(sched), offload.WithPolicy(pol))
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		t.Fatal(err)
	}
	n := int64(256 << 10)
	src := tn.AllocOn(0, n)
	dst := tn.AllocOn(0, n)
	// Warmup: a completed copy seeds the home WQ's latency EWMA — without
	// it the backlog below would price at zero.
	r.run(func(p *sim.Proc) {
		f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), n, offload.On(offload.Hardware))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Wait(p, offload.Poll); err != nil {
			t.Error(err)
		}
	})

	// Drive Pick directly against controlled WQ state: hogSubmit raises
	// the home WQ's occupancy without running the engine; r.e.Run drains.
	homeWQ := r.devs[0].WQs()[0]
	hsrc, hdst := tn.AllocOn(0, n), tn.AllocOn(0, n)
	hogSubmit := func(count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			if _, err := homeWQ.Submit(dsa.Descriptor{
				Op: dsa.OpMemmove, PASID: tn.AS.PASID,
				Src: hsrc.Addr(0), Dst: hdst.Addr(0), Size: n,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	req := offload.Request{
		Socket: 0, Topo: svc.Topology(),
		SrcNode: r.sys.Node(0), DstNode: r.sys.Node(0),
		Size: n, LoadAware: true,
	}
	var picks []int
	pick := func() {
		t.Helper()
		wq := sched.Pick(req, svc.WQs())
		if wq == nil {
			t.Fatal("nil pick")
		}
		picks = append(picks, wq.Dev.Cfg.Socket)
	}
	transitions := func(from int) int {
		t.Helper()
		n := 0
		for i := from + 1; i < len(picks); i++ {
			if picks[i] != picks[i-1] {
				n++
			}
		}
		return n
	}

	// Phase 1 — transient spikes: one queued descriptor per pick, drained
	// between picks. The raw model detours on every busy sample (one
	// same-size descriptor's ~10µs queueing delay beats the ~3µs UPI
	// penalty outright); the smoothed cost damps the single sample below
	// the switch margin, so every pick stays on the data's home.
	for i := 0; i < 8; i++ {
		hogSubmit(1)
		pick()
		r.e.Run()
		pick()
	}
	for i, s := range picks {
		if s != 0 {
			t.Fatalf("phase 1 pick %d detoured to socket %d on a transient spike", i, s)
		}
	}

	// Phase 2 — sustained backlog: a deep queue that never drains must
	// flip routing to the idle socket exactly once, then hold it there.
	p2 := len(picks)
	hogSubmit(24)
	for i := 0; i < 10; i++ {
		pick()
	}
	if got := transitions(p2 - 1); got != 1 {
		t.Errorf("phase 2: %d route transitions under sustained backlog, want exactly 1 (picks %v)", got, picks[p2:])
	}
	if last := picks[len(picks)-1]; last != 1 {
		t.Errorf("phase 2 settled on socket %d, want the idle socket 1", last)
	}

	// Phase 3 — drained: with the home queue empty again, routing returns
	// home exactly once and stays.
	p3 := len(picks)
	r.e.Run()
	for i := 0; i < 10; i++ {
		pick()
	}
	if got := transitions(p3 - 1); got != 1 {
		t.Errorf("phase 3: %d route transitions after the drain, want exactly 1 (picks %v)", got, picks[p3:])
	}
	if last := picks[len(picks)-1]; last != 0 {
		t.Errorf("phase 3 settled on socket %d, want the data's home 0", last)
	}
}

// Load-aware batch splitting: a mixed-home flush must group by where its
// slices will actually run. With the home socket saturated, the cost model
// detours the home slice to the idle socket, the groups coincide, and the
// flush goes out as one batch on the idle device — no sub-batch is
// dutifully submitted into the backlog. Without LoadAware the same flush
// splits by raw data home and feeds the saturated device.
func TestLoadAwareSplitDetoursAwayFromSaturatedSocket(t *testing.T) {
	for _, loadAware := range []bool{false, true} {
		pol := offload.DefaultPolicy()
		pol.LoadAware = loadAware
		r := newRig(t, 2)
		svc := r.service(t, offload.WithScheduler(offload.NewPlacement()), offload.WithPolicy(pol))
		tn, err := svc.NewTenant(offload.OnSocket(0))
		if err != nil {
			t.Fatal(err)
		}
		n := int64(256 << 10)
		s0src, s0dst := tn.AllocOn(0, 2*n), tn.AllocOn(0, 2*n)
		s1src, s1dst := tn.AllocOn(1, 2*n), tn.AllocOn(1, 2*n)
		hsrc, hdst := tn.AllocOn(0, 1<<20), tn.AllocOn(0, 1<<20)
		r.run(func(p *sim.Proc) {
			// Warm both WQs' latency EWMAs with one completed copy each.
			for _, pair := range []struct{ dst, src mem.Addr }{
				{s0dst.Addr(0), s0src.Addr(0)}, {s1dst.Addr(0), s1src.Addr(0)},
			} {
				f, err := tn.Copy(p, pair.dst, pair.src, n, offload.On(offload.Hardware))
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := f.Wait(p, offload.Poll); err != nil {
					t.Error(err)
					return
				}
			}
			// Saturate the home device outside the service, then give the
			// cost model a few samples so the smoothed home cost reflects
			// the backlog (the burst's own picks detour once it does).
			hogCl := dsa.NewClient(r.devs[0].WQs()[0], nil)
			for i := 0; i < 24; i++ {
				if _, err := hogCl.Submit(p, dsa.Descriptor{
					Op: dsa.OpMemmove, PASID: tn.AS.PASID,
					Src: hsrc.Addr(0), Dst: hdst.Addr(0), Size: 1 << 20,
				}); err != nil {
					t.Error(err)
					return
				}
			}
			var prime []*offload.Future
			for i := 0; i < 4; i++ {
				f, err := tn.Copy(p, s0dst.Addr(0), s0src.Addr(0), n, offload.On(offload.Hardware))
				if err != nil {
					t.Error(err)
					return
				}
				prime = append(prime, f)
			}
			before := tn.Stats().Splits
			f, err := tn.NewBatch().
				Copy(s0dst.Addr(0), s0src.Addr(0), n).
				Copy(s0dst.Addr(n), s0src.Addr(n), n).
				Copy(s1dst.Addr(0), s1src.Addr(0), n).
				Copy(s1dst.Addr(n), s1src.Addr(n), n).
				Submit(p)
			if err != nil {
				t.Error(err)
				return
			}
			splits := tn.Stats().Splits - before
			if loadAware && splits != 0 {
				t.Errorf("load-aware: mixed flush split into %d sub-batches, want 0 (routes coincide on the idle socket)", splits)
			}
			if !loadAware && splits != 2 {
				t.Errorf("data-only: mixed flush split into %d sub-batches, want 2", splits)
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				t.Error(err)
			}
			for _, pf := range prime {
				if _, err := pf.Wait(p, offload.Poll); err != nil {
					t.Error(err)
				}
			}
		})
		batchesOn := func(dev int) int64 { return r.devs[dev].Stats().BatchesFetched }
		if loadAware {
			if got := batchesOn(1); got != 1 {
				t.Errorf("load-aware: idle socket-1 device fetched %d batches, want the whole flush (1)", got)
			}
			if got := batchesOn(0); got != 0 {
				t.Errorf("load-aware: saturated socket-0 device fetched %d batches, want 0", got)
			}
		} else if got := batchesOn(0); got != 1 {
			t.Errorf("data-only: socket-0 device fetched %d batches, want its sub-batch (1)", got)
		}
	}
}
