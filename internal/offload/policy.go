package offload

import (
	"sync/atomic"
	"time"

	"dsasim/internal/dsa"
)

// Path selects the execution engine for one operation.
type Path int

// Execution paths.
const (
	// Auto applies the tenant policy: offload at or above OffloadThreshold,
	// coalesce smaller transfers when auto-batching is on, otherwise run
	// them on the core (G1/G2).
	Auto Path = iota
	// Hardware forces DSA execution.
	Hardware
	// Software forces the CPU baseline.
	Software
)

// Policy is the tunable encoding of the paper's guidelines. The zero value
// is not useful; start from DefaultPolicy.
type Policy struct {
	// OffloadThreshold is the G2 size floor: Auto-path operations below it
	// stay on the core (or enter the AutoBatcher when enabled). The paper
	// places the synchronous crossover near 4 KB (Fig 2a).
	OffloadThreshold int64

	// AdaptiveThreshold makes the G2 floor dynamic: WQ occupancy and
	// completion-latency history feed back into the Auto-path decision, so
	// a saturated device raises the effective threshold (shedding small
	// operations to the cores) and an idle one lowers it. See
	// Tenant.EffectiveThreshold and Service.Pressure.
	AdaptiveThreshold bool

	// AdmitRate, when positive, rate-limits this tenant's hardware
	// submissions with a token bucket: tokens accrue at AdmitRate per
	// second of virtual time, and each logical submission — a work
	// descriptor, or one batch flush regardless of how many per-socket
	// sub-batches placement shards it into — costs one. Zero (the
	// default) disables admission control. This is the shared-WQ
	// fairness knob: a bulk tenant's burst is shed or delayed before it
	// occupies slots a latency-sensitive tenant needs.
	AdmitRate float64

	// AdmitBurst is the bucket capacity — the submissions a tenant may
	// issue back-to-back before the rate applies. Values below 1 act as 1.
	AdmitBurst int

	// AdmitWait selects the over-limit behavior: false (default) sheds the
	// submission with ErrAdmission; true delays the submitting process
	// until a token accrues (backpressure instead of load shedding).
	AdmitWait bool

	// AutoBatch, when positive, enables transparent coalescing (G1): Auto-
	// path copies and fills below OffloadThreshold queue in the tenant's
	// AutoBatcher and flush as one batch descriptor once AutoBatch
	// operations accumulate (or on Flush/Wait).
	AutoBatch int

	// LoadAware lets the Placement scheduler leave the data's home socket
	// when it is backlogged: per-socket queueing-delay estimates (WQ
	// latency EWMA × occupancy, rolled up through the service Topology)
	// are blended against the UPI transfer penalty of each remote data
	// leg, so a saturated local device loses to an idle remote one
	// exactly when the detour is cheaper (§3.3/§5: queueing delay dwarfs
	// the cross-socket penalty long before the link saturates). Off by
	// default: data-only placement is deterministic and optimal under
	// even load.
	LoadAware bool

	// SplitBatches lets the batch paths shard a mixed-home flush into
	// per-socket sub-batches, each routed to a device local to its
	// slice's data (G4). It only engages under a data-aware scheduler
	// (Placement); fence-carrying batches are never split. Disable to
	// force every batch onto a single WQ regardless of data placement.
	SplitBatches bool

	// CoalesceCount enables completion-interrupt coalescing for Interrupt-
	// mode waits: up to CoalesceCount finished completion records are
	// announced by one interrupt, so a window of N completions costs one
	// delivery latency + handler instead of N (§4.4's per-descriptor
	// delivery cost, amortized the way production drivers moderate
	// interrupts per queue). Values ≤ 1 disable coalescing. The knob is
	// resolved per QoS class: Bulk tenants coalesce with the full window,
	// while LatencySensitive tenants bypass moderation entirely — their
	// interrupts fire per descriptor, keeping delivery off the foreground
	// tail — unless CoalesceAll opts them in. Poll and UMWAIT waits are
	// never delayed by coalescing.
	CoalesceCount int

	// CoalesceWindow bounds how long a finished record may wait for
	// siblings before the moderation timer announces the partial batch (a
	// count-only trigger would strand tails forever). Zero with a positive
	// CoalesceCount uses DefaultCoalesceWindow; the device rounds the
	// window up to its moderation-timer tick (Timing.IntrCoalesceTick).
	CoalesceWindow time.Duration

	// CoalesceAdaptive sizes the coalescing window from each tenant's
	// observed completion inter-arrival rate instead of the static
	// CoalesceWindow: the window tracks the virtual time a full
	// CoalesceCount of completions actually takes, so a fast tenant's
	// tails are announced promptly while a slow one still fills its count.
	// The telemetry-derived window is clamped between the device's
	// moderation tick and the static window (CoalesceWindow or the
	// default), quantized to the tick, and retuned only on a ≥25% move so
	// jitter does not churn coalescer rebuilds. No effect unless
	// CoalesceCount enables coalescing.
	CoalesceAdaptive bool

	// CoalesceAll applies the coalescing window to every QoS class,
	// including LatencySensitive (whose default is to bypass). Useful to
	// quantify what moderation would cost a foreground tenant's tail —
	// see the coalesce experiment — not recommended as an operating mode.
	CoalesceAll bool

	// Wait is the default completion mode for synchronous helpers and the
	// compatibility shim: Poll, UMWait, or Interrupt (§4.4, Fig 11).
	Wait WaitMode

	// MaxRetries bounds full-WQ submission retries. Negative means retry
	// until the descriptor is accepted (the classic ENQCMD loop); zero or
	// more surfaces dsa.ErrWQFull to the caller after that many retries,
	// letting it re-schedule or shed load.
	MaxRetries int

	// RetryMax bounds fault recovery per operation: how many times a
	// faulted completion (page-fault partial, WQ error, device offline)
	// is re-submitted to hardware before the error surfaces through the
	// Future (or the software fallback engages). Partial completions
	// continue from CompletionRecord.BytesCompleted for byte-prefix ops
	// (copy/fill/dualcast); result-producing ops re-run whole. Zero (the
	// default) disables recovery: the first fault is terminal.
	RetryMax int

	// RetryBackoff is the virtual-time pause between fault retries on the
	// Future path (the sharded plane re-queues remainders immediately —
	// the ring round trip is its backoff). Zero retries immediately.
	RetryBackoff time.Duration

	// FallbackAfter, when positive, runs the remainder of an operation on
	// the submitting core after that many consecutive faulted hardware
	// attempts, bounding worst-case latency under a fault storm the way
	// production offload libraries degrade to memcpy. It engages within
	// the RetryMax budget (a fallback is the terminal attempt) and only
	// for ops with a software equivalent (see Tenant recovery).
	FallbackAfter int

	// SLOBudget, when positive, is the tenant's per-operation completion
	// latency budget — the per-QoS-class p99 target the fleet scenarios
	// gate on. Every resolved operation (hardware, software, plane- or
	// pipeline-submitted) is scored against it on Stats.SLOOk/SLOMiss.
	// Pure accounting: the budget never changes scheduling or admission.
	SLOBudget time.Duration

	// Flags is OR-ed into every hardware descriptor (cache control,
	// block-on-fault, ...).
	Flags dsa.Flags
}

// DefaultCoalesceWindow is the moderation-timer bound used when a policy
// sets CoalesceCount without a window: generous enough that a bulk burst
// usually hits the count trigger first, tight enough that a stranded tail
// is announced within a handful of delivery latencies.
const DefaultCoalesceWindow = 8 * time.Microsecond

// DefaultPolicy returns the guideline defaults: static 4 KB offload
// threshold, auto-batching off, mixed-home batch splitting on (it only
// engages under a data-aware scheduler), polled completions, interrupt
// coalescing off, block-until-accepted submission, admission control off.
func DefaultPolicy() Policy {
	return Policy{
		OffloadThreshold: 4096,
		AutoBatch:        0,
		SplitBatches:     true,
		Wait:             Poll,
		MaxRetries:       -1,
	}
}

// Stats counts tenant activity.
type Stats struct {
	HWOps    int64 // descriptors submitted to hardware (incl. batch parents)
	SWOps    int64 // operations executed on the core
	HWBytes  int64
	SWBytes  int64
	Batches  int64 // batch descriptors submitted (explicit and auto)
	Coalesce int64 // operations absorbed into auto-batches
	Splits   int64 // per-socket sub-batches created from mixed-home flushes
	Failures int64 // submissions or completions that returned errors
	Shed     int64 // logical flushes rejected by admission control
	Delayed  int64 // logical flushes delayed by admission control

	// Pipelines counts pipeline DAG submissions (pipeline.go) — each one
	// cost a single admission token regardless of stage count.
	Pipelines int64

	// AdmitWakeups counts the process wakeups admission-control delays
	// cost. With coalescing on, delayed retries fold into the moderation
	// window, so this stays well below one wakeup per delayed sub-batch.
	AdmitWakeups int64

	// Drifts counts the workload regime shifts the telemetry drift
	// detector flagged on this tenant's completion streams (sustained
	// window-over-window p99/rate deltas).
	Drifts int64

	// SLOOk/SLOMiss score every resolved operation against the tenant's
	// Policy.SLOBudget (both zero when the policy sets no budget). The
	// fleet driver reads them as a cross-check of its own per-class
	// latency sketches.
	SLOOk   int64
	SLOMiss int64

	// Fault-recovery counters (see Policy.RetryMax/FallbackAfter and
	// Plane failover). Faults counts faulted hardware completions
	// observed; Retries the hardware re-submissions recovery issued;
	// Fallbacks the operations finished on-core after consecutive
	// faults; Failovers the WQ-death events where a plane drain detached
	// a dead ring and redistributed its entries.
	Faults    int64
	Retries   int64
	Fallbacks int64
	Failovers int64
}

// statCounters is the tenant's live counter storage. The fields mirror
// Stats but are atomics: the sharded submission plane increments them from
// concurrently running submitter goroutines (host-parallel benchmarks and
// the race job), where the plain int64 increments the public struct used
// to hold would be torn reads/writes. Tenant.Stats assembles a plain Stats
// copy from loads.
type statCounters struct {
	hwOps, swOps     atomic.Int64
	hwBytes, swBytes atomic.Int64
	batches          atomic.Int64
	coalesce         atomic.Int64
	splits           atomic.Int64
	failures         atomic.Int64
	shed, delayed    atomic.Int64
	pipelines        atomic.Int64
	admitWakeups     atomic.Int64
	sloOk, sloMiss   atomic.Int64
	faults           atomic.Int64
	retries          atomic.Int64
	fallbacks        atomic.Int64
	failovers        atomic.Int64
}

// snapshot assembles the public Stats view from atomic loads.
func (c *statCounters) snapshot() Stats {
	return Stats{
		HWOps:        c.hwOps.Load(),
		SWOps:        c.swOps.Load(),
		HWBytes:      c.hwBytes.Load(),
		SWBytes:      c.swBytes.Load(),
		Batches:      c.batches.Load(),
		Coalesce:     c.coalesce.Load(),
		Splits:       c.splits.Load(),
		Failures:     c.failures.Load(),
		Shed:         c.shed.Load(),
		Delayed:      c.delayed.Load(),
		Pipelines:    c.pipelines.Load(),
		AdmitWakeups: c.admitWakeups.Load(),
		SLOOk:        c.sloOk.Load(),
		SLOMiss:      c.sloMiss.Load(),
		Faults:       c.faults.Load(),
		Retries:      c.retries.Load(),
		Fallbacks:    c.fallbacks.Load(),
		Failovers:    c.failovers.Load(),
	}
}
