// The sharded submission plane: per-shard lanes feeding lock-free
// per-WQ rings, with pressure/placement signals aggregated periodically
// instead of read synchronously on every submission.
//
// The classic Tenant path serializes every submitter through shared
// state: one admission bucket, one AutoBatcher, one coalescer rebuild
// check, and scheduler Picks that read live EWMAs. One submitter never
// notices; at 64 the shared state is the queue. The plane shards the
// tenant-side state per submission lane — each submitting context owns a
// lane and touches nothing shared on the fast path — and funnels
// descriptors into each WQ's ENQCMD path through a bounded lock-free
// MPSC ring (dsa.SubmitRing), whose push is a couple of atomics. The
// global signals the classic path read synchronously (WQ occupancy,
// queueing delay) become a periodically published Snapshot: lanes load
// one pointer instead of syncing the telemetry hub per Pick.
//
// Scheduling semantics are preserved, not replaced: lane candidate sets
// are precomputed from the same Topology express/rest partition the
// PriorityAware/Placement schedulers use (a latency-sensitive tenant's
// lanes only ever target the reserved express WQs on its socket), the
// per-lane admission buckets shard the same Policy.AdmitRate, and
// completions flow through the unchanged device completion path —
// including interrupt coalescing, whose resolved count also paces the
// plane's wakeup moderation.
package offload

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/sim"
)

// planeAggCadence is the shard→global aggregation period: how often the
// drain republishes the Snapshot lanes route on, and the sync cadence
// installed on the telemetry hub so policy reads between publishes share
// one merge. A couple of microseconds keeps routing within one device
// service quantum of the truth without per-submission synchronization.
const planeAggCadence = 2 * time.Microsecond

// Plane is a tenant's sharded submission front end: N Lanes (one per
// submitting context) over one lock-free SubmitRing per service WQ, a
// drain that moves ring entries into the device WQs and publishes the
// routing Snapshot, and completion-side wakeup moderation. Build one
// with Tenant.NewPlane; hand each submitter its own Lane.
type Plane struct {
	t     *Tenant
	lanes []*Lane
	wqs   []*dsa.WQ
	rings []*dsa.SubmitRing

	// ringTok serializes concurrent virtual-time pushes into one ring:
	// a capacity-1 slot held for Timing.RingPush models the CAS that
	// publishes a slot — the only cross-submitter serialization left,
	// priced at nanoseconds instead of a lock's microseconds.
	ringTok []*sim.Token

	// lsCand/bulkCand are the ring indices each QoS class may target,
	// precomputed from the Topology express/rest partition on the
	// tenant's socket so the host fast path never walks WQ slices.
	lsCand   []int
	bulkCand []int

	// pending counts entries pushed to rings but not yet accepted by a
	// WQ; inflight counts WQ-accepted descriptors not yet completed.
	// Both are atomics: lanes increment pending from concurrent host
	// goroutines while the drain and completion hooks run engine-side.
	pending  atomic.Int64
	inflight atomic.Int64

	// snap is the periodically published routing signal (per-ring WQ
	// occupancy). Lanes Load it — one atomic pointer read replaces the
	// synchronous telemetry sync the classic Pick path pays.
	snap atomic.Pointer[Snapshot]

	// Completion-side wakeup moderation: completed() broadcasts doneSig
	// every wakeEvery-th completion (resolved from the tenant's
	// coalescing count) or when inflight drains to zero, so a waiter at
	// 64 outstanding ops is not woken 64 times.
	doneSig   sim.Signal
	wakeEvery int64
	compCount atomic.Int64

	// onLat, when set, observes the stamped latency of every completion
	// (see OnCompletion). Engine-domain: installed before traffic starts,
	// invoked from the device completion path.
	onLat func(lat sim.Time, ok bool)

	// dead marks rings whose WQ died (disable window or device outage):
	// the drain detached them from their WQs and redistributed their
	// entries; lanes skip them until the drain observes the WQ healthy
	// again and reattaches. Atomic because lanes read from host
	// goroutines while the drain flips them engine-side.
	dead []atomic.Bool

	drainOn bool
	lastPub sim.Time
	pubbed  bool
}

// Snapshot is the plane's published routing signal: the occupancy of
// each ring's WQ at publish time. Lanes add each ring's live length on
// top, so routing reacts to their own bursts immediately and to device
// drain at the aggregation cadence.
type Snapshot struct {
	At  sim.Time
	Occ []int32 // indexed like Plane.rings
}

// Lane is one submission shard: lane-local admission bucket and routing
// cursor, shared nothing. A Lane belongs to exactly one submitting
// context (goroutine in host-parallel benchmarks, process in the
// simulation) — its methods are not safe for concurrent use on the
// same Lane, which is the point.
type Lane struct {
	pl     *Plane
	id     int
	bucket tokenBucket
	cursor int
}

// NewPlane attaches a sharded submission plane with nlanes lanes to the
// tenant. One plane per tenant, one ring per service WQ; the telemetry
// hub switches to periodic aggregation at the plane's cadence. Returns
// an error if the tenant already has a plane or any service WQ already
// carries a submission ring (one plane per WQ set).
func (t *Tenant) NewPlane(nlanes int) (*Plane, error) {
	if nlanes < 1 {
		return nil, fmt.Errorf("offload: plane needs at least 1 lane, got %d", nlanes)
	}
	if t.plane != nil {
		return nil, fmt.Errorf("offload: tenant already has a submission plane")
	}
	wqs := t.S.wqs
	for _, wq := range wqs {
		if wq.Ring() != nil {
			return nil, fmt.Errorf("offload: wq %d of %s already has a submission ring", wq.ID, wq.Dev.Cfg.Name)
		}
	}
	pl := &Plane{
		t:       t,
		wqs:     wqs,
		rings:   make([]*dsa.SubmitRing, len(wqs)),
		ringTok: make([]*sim.Token, len(wqs)),
		dead:    make([]atomic.Bool, len(wqs)),
	}
	for i, wq := range wqs {
		pl.rings[i] = wq.AttachRing(wq.Size)
		pl.ringTok[i] = sim.NewToken(1)
	}
	pl.lsCand, pl.bulkCand = pl.candidates()
	count, _ := t.coalesceParams()
	pl.wakeEvery = 1
	if count > 1 {
		pl.wakeEvery = int64(count)
	}
	pl.lanes = make([]*Lane, nlanes)
	for i := range pl.lanes {
		// Cursors start strided so lanes spread across the candidate
		// set instead of all hammering ring 0 before the first Snapshot.
		pl.lanes[i] = &Lane{pl: pl, id: i, cursor: i}
	}
	t.S.met.hub.SetSyncCadence(planeAggCadence)
	pl.Publish(t.S.E.Now())
	t.plane = pl
	return pl, nil
}

// candidates precomputes the ring-index sets each QoS class may target,
// mirroring pickExpress: the tenant-socket pool when the socket has a
// local device (full set otherwise), partitioned into the express lane
// for latency-sensitive tenants and the rest for bulk — collapsing to
// the shared pool when priorities are uniform.
func (pl *Plane) candidates() (ls, bulk []int) {
	topo := pl.t.S.topo
	socket := pl.t.Core.Socket
	pool := topo.Local(socket)
	express, rest := topo.Split(socket)
	idx := make(map[*dsa.WQ]int, len(pl.wqs))
	for i, wq := range pl.wqs {
		idx[wq] = i
	}
	toIdx := func(wqs []*dsa.WQ) []int {
		out := make([]int, 0, len(wqs))
		for _, wq := range wqs {
			out = append(out, idx[wq])
		}
		return out
	}
	if len(rest) == 0 {
		shared := toIdx(pool)
		return shared, shared
	}
	return toIdx(express), toIdx(rest)
}

// Plane returns the tenant's submission plane, or nil before NewPlane.
func (t *Tenant) Plane() *Plane { return t.plane }

// Lane returns the i-th lane. Each submitting context must own its lane
// exclusively.
func (pl *Plane) Lane(i int) *Lane { return pl.lanes[i] }

// Lanes returns the lane count.
func (pl *Plane) Lanes() int { return len(pl.lanes) }

// WQs returns the work queues the plane feeds, indexed like its rings.
func (pl *Plane) WQs() []*dsa.WQ { return pl.wqs }

// OnCompletion registers fn to observe the stamped latency of every plane
// completion: the span from the submission's stamp (the submit instant,
// or the caller-provided stamp of SubmitStamped) to the completion record
// write. ok reports whether the operation ultimately succeeded — false
// means a terminal fault after the retry budget (the fleet driver scores
// those against the SLO as failures, not goodput). Install before traffic
// starts; the hook runs on the device completion path, so it must not
// block.
func (pl *Plane) OnCompletion(fn func(lat sim.Time, ok bool)) { pl.onLat = fn }

// Pending returns entries pushed to rings but not yet WQ-accepted.
func (pl *Plane) Pending() int64 { return pl.pending.Load() }

// Inflight returns WQ-accepted descriptors not yet completed.
func (pl *Plane) Inflight() int64 { return pl.inflight.Load() }

// Publish rebuilds and publishes the routing Snapshot from live WQ
// occupancy. The drain calls it at the aggregation cadence; host-side
// tests and benchmarks call it directly (there is no drain off-engine).
func (pl *Plane) Publish(now sim.Time) {
	s := &Snapshot{At: now, Occ: make([]int32, len(pl.wqs))}
	for i, wq := range pl.wqs {
		s.Occ[i] = int32(wq.Occupancy())
	}
	pl.snap.Store(s)
	pl.lastPub, pl.pubbed = now, true
}

// laneShare returns this lane's shard of the tenant's admission policy:
// the rate divides evenly across lanes, the burst divides with a floor
// of one so every lane can issue at least one back-to-back submission.
func (l *Lane) laneShare() (rate float64, burst int) {
	pol := &l.pl.t.policy
	n := len(l.pl.lanes)
	burst = pol.AdmitBurst / n
	if burst < 1 {
		burst = 1
	}
	return pol.AdmitRate / float64(n), burst
}

// pickRing routes one submission: among the lane's class candidates,
// the ring whose published WQ occupancy plus live ring backlog is
// smallest, scanned from a lane-local strided cursor so equally loaded
// rings spread across lanes instead of herding. Allocation-free.
func (l *Lane) pickRing() int {
	cands := l.pl.bulkCand
	if l.pl.t.class == LatencySensitive {
		cands = l.pl.lsCand
	}
	snap := l.pl.snap.Load()
	n := len(cands)
	best, bestLoad := -1, int32(0)
	for k := 0; k < n; k++ {
		i := cands[(l.cursor+k)%n]
		// Skip dead rings and unhealthy WQs (disable window, outage): the
		// two flag loads keep the pick allocation-free while routing
		// around failures the drain has or hasn't yet detached.
		if l.pl.dead[i].Load() || !l.pl.wqs[i].Healthy() {
			continue
		}
		load := int32(l.pl.rings[i].Len())
		if snap != nil {
			load += snap.Occ[i]
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best < 0 {
		// Candidate pool down (disable window or outage): detour to any
		// healthy service ring — cross-socket beats shedding.
		for i := range l.pl.rings {
			if l.pl.dead[i].Load() || !l.pl.wqs[i].Healthy() {
				continue
			}
			load := int32(l.pl.rings[i].Len())
			if snap != nil {
				load += snap.Occ[i]
			}
			if best < 0 || load < bestLoad {
				best, bestLoad = i, load
			}
		}
	}
	if best < 0 {
		// Everything is down: fall back to the plain rotation so the
		// entry lands somewhere; the drain redistributes or sheds it.
		best = cands[l.cursor%n]
	}
	l.cursor++
	return best
}

// TrySubmit is the host-domain fast path: lane-local admission, a
// Snapshot-routed ring pick, and one lock-free push — no engine, no
// locks, no allocation. It returns ErrAdmission when the lane's bucket
// sheds the submission and dsa.ErrWQFull when every candidate ring is
// full (the caller retries or sheds, as with bounded-retry submission).
// now is the submitter's notion of virtual time; concurrent callers on
// distinct lanes never share state beyond the rings' atomics.
func (l *Lane) TrySubmit(now sim.Time, d dsa.Descriptor) error {
	if l.pl.t.closed.Load() {
		return fmt.Errorf("offload: lane %d: %w", l.id, ErrTenantClosed)
	}
	rate, burst := l.laneShare()
	if ok, _ := l.bucket.take(now, rate, burst); !ok {
		l.pl.t.stats.shed.Add(1)
		return ErrAdmission
	}
	d.PASID = l.pl.t.AS.PASID
	d.Flags |= l.pl.t.policy.Flags
	idx := l.pickRing()
	stamp := stampTag(now)
	if !l.pl.rings[idx].TryPush(d, stamp) {
		// Preferred ring full: sweep the remaining candidates once.
		cands := l.pl.bulkCand
		if l.pl.t.class == LatencySensitive {
			cands = l.pl.lsCand
		}
		pushed := false
		for _, i := range cands {
			if i != idx && !l.pl.dead[i].Load() && l.pl.rings[i].TryPush(d, stamp) {
				pushed = true
				break
			}
		}
		if !pushed {
			l.pl.t.stats.failures.Add(1)
			return dsa.ErrWQFull
		}
	}
	l.pl.t.stats.hwOps.Add(1)
	l.pl.t.stats.hwBytes.Add(d.Size)
	l.pl.pending.Add(1)
	return nil
}

// Submit is the simulation-domain path: the same lane-local admission
// and routing as TrySubmit, but charging virtual time the way hardware
// does — the ENQCMD issue in the submitter's own timeline (64 procs pay
// it in parallel, not in series) and the ring's slot-publish CAS as a
// capacity-1 token held for Timing.RingPush, the only serialization
// point left between submitters sharing a ring. The drain is scheduled
// lazily and the submission completes through the normal device path.
// The completion is stamped with the submit instant (see SubmitStamped).
func (l *Lane) Submit(p *sim.Proc, d dsa.Descriptor) error {
	return l.SubmitStamped(p, d, p.Now())
}

// SubmitStamped is Submit with an explicit latency stamp: the instant the
// operation logically entered the system, carried through the ring to the
// completion path, where the stamp-to-record span is scored against the
// tenant's SLO budget and handed to the OnCompletion observer. Open-loop
// drivers (internal/fleet) stamp the scheduled arrival time instead of
// the submit instant, so time an overloaded shard spends behind its own
// backlog counts against the SLO the way a waiting client would see it —
// the standard guard against coordinated omission.
func (l *Lane) SubmitStamped(p *sim.Proc, d dsa.Descriptor, stamp sim.Time) error {
	pl := l.pl
	t := pl.t
	if t.closed.Load() {
		return fmt.Errorf("offload: lane %d: %w", l.id, ErrTenantClosed)
	}
	rate, burst := l.laneShare()
	ok, wait := l.bucket.take(p.Now(), rate, burst)
	if !ok {
		if !t.policy.AdmitWait {
			t.stats.shed.Add(1)
			return fmt.Errorf("offload: lane %d over admission share: %w", l.id, ErrAdmission)
		}
		t.stats.delayed.Add(1)
		for !ok {
			p.Sleep(wait)
			t.stats.admitWakeups.Add(1)
			ok, wait = l.bucket.take(p.Now(), rate, burst)
		}
	}
	d.PASID = t.AS.PASID
	d.Flags |= t.policy.Flags
	tm := pl.wqs[0].Dev.Cfg.Timing
	idx := l.pickRing()
	// The slot-publish CAS: submitters racing into one ring serialize
	// for RingPush nanoseconds each, in arrival order.
	at := pl.ringTok[idx].Acquire(p.Now(), tm.RingPush)
	p.SleepUntil(at + tm.RingPush)
	// The portal write itself is per-submitter work: each lane's proc
	// pays it in its own virtual timeline.
	p.Sleep(tm.SubmitENQCMD)
	for !pl.rings[idx].TryPush(d, stampTag(stamp)) {
		p.Sleep(tm.PollGap)
	}
	t.stats.hwOps.Add(1)
	t.stats.hwBytes.Add(d.Size)
	pl.pending.Add(1)
	pl.ensureDrain()
	return nil
}

// ensureDrain spawns the drain process if it is not already running.
// Engine-domain only (the simulation is single-threaded, so the check
// cannot race); the drain exits when the rings empty, keeping the event
// loop free of perpetual timers.
func (pl *Plane) ensureDrain() {
	if pl.drainOn {
		return
	}
	pl.drainOn = true
	pl.t.S.E.Go("plane-drain", pl.drain)
}

// drain moves ring entries into the device WQs: pop, WQ.Submit (zero
// virtual cost — the submitter already paid the portal write in its own
// timeline), hook the completion for wakeup moderation. A full WQ holds
// the popped entry and retries after a poll gap; a *dead* WQ (disable
// window or device outage — Submit returns dsa.ErrWQDisabled or
// dsa.ErrDeviceOffline, not ErrWQFull) triggers failover: the drain
// detaches the dead ring and redistributes its entries to healthy rings,
// then reattaches once the WQ reports healthy again. The Snapshot
// republishes at the aggregation cadence; the process exits when the
// rings run dry.
func (pl *Plane) drain(p *sim.Proc) {
	held := make([]dsa.RingEntry, len(pl.rings))
	holding := make([]bool, len(pl.rings))
	for {
		progressed := false
		blocked := false
		for i := range pl.rings {
			if pl.dead[i].Load() {
				if pl.wqs[i].Healthy() {
					// The WQ healed: reattach its ring and resume.
					pl.wqs[i].ReattachRing(pl.rings[i])
					pl.dead[i].Store(false)
				} else {
					// Sweep entries lanes raced into the dead ring while
					// every candidate was down.
					pl.sweepDead(i)
					continue
				}
			}
			for {
				if !holding[i] {
					e, ok := pl.rings[i].Pop()
					if !ok {
						break
					}
					held[i], holding[i] = e, true
				}
				comp, err := pl.wqs[i].Submit(held[i].D)
				if err != nil {
					if errors.Is(err, dsa.ErrWQDisabled) || errors.Is(err, dsa.ErrDeviceOffline) {
						pl.failover(i, held, holding)
						progressed = true
					} else {
						blocked = true
					}
					break
				}
				comp.SetOnDone(pl.completed, held[i].Tag)
				holding[i] = false
				pl.inflight.Add(1)
				pl.pending.Add(-1)
				progressed = true
			}
		}
		if now := p.Now(); progressed || now >= pl.lastPub+planeAggCadence {
			pl.Publish(now)
		}
		if pl.pending.Load() == 0 {
			pl.drainOn = false
			return
		}
		if blocked {
			// Waiting on WQ slots: completions free them, paced by the
			// device; poll at the gap the submission retry loop uses.
			p.Sleep(pl.wqs[0].Dev.Cfg.Timing.PollGap)
		} else {
			// New pushes landed behind our scan at this instant.
			p.Yield()
		}
	}
}

// failover handles a dead WQ discovered by the drain: detach its ring so
// a healed queue can reattach cleanly, mark it dead for the lanes, and
// redistribute the held entry plus everything queued behind it onto
// healthy rings. Entries with nowhere to go are shed (counted as
// failures) rather than stranded behind a dead queue.
func (pl *Plane) failover(i int, held []dsa.RingEntry, holding []bool) {
	if !pl.dead[i].Load() {
		pl.dead[i].Store(true)
		pl.wqs[i].DetachRing()
		pl.t.stats.failovers.Add(1)
		pl.t.S.met.failover()
	}
	if holding[i] {
		holding[i] = false
		pl.redistribute(held[i])
	}
	pl.sweepDead(i)
}

// sweepDead drains a dead ring's entries onto healthy rings.
func (pl *Plane) sweepDead(i int) {
	for {
		e, ok := pl.rings[i].Pop()
		if !ok {
			return
		}
		pl.redistribute(e)
	}
}

// redistribute re-queues one failed-over entry onto the first healthy
// candidate ring — falling back to any healthy service ring (a
// cross-socket detour) when the class pool is down — and sheds it when
// every ring is down or full.
func (pl *Plane) redistribute(e dsa.RingEntry) {
	cands := pl.bulkCand
	if pl.t.class == LatencySensitive {
		cands = pl.lsCand
	}
	for _, j := range cands {
		if !pl.dead[j].Load() && pl.wqs[j].Healthy() && pl.rings[j].TryPush(e.D, e.Tag) {
			return
		}
	}
	for j := range pl.rings {
		if !pl.dead[j].Load() && pl.wqs[j].Healthy() && pl.rings[j].TryPush(e.D, e.Tag) {
			return
		}
	}
	pl.pending.Add(-1)
	pl.t.stats.failures.Add(1)
	if stamp := tagStamp(e.Tag); stamp != 0 && pl.onLat != nil {
		pl.onLat(pl.t.S.E.Now()-sim.Time(stamp-1), false)
	}
}

// Ring tags carry the submission's latency stamp in the low 56 bits (+1
// so tag 0 still means "no stamp" at virtual time zero — 2^56 ns is ~2
// years of virtual time) and the fault-retry attempt count in the top 8,
// so recovery needs no per-operation state.
const (
	tagAttemptShift = 56
	tagStampMask    = uint64(1)<<tagAttemptShift - 1
)

// stampTag encodes a submission's latency stamp into the ring tag.
func stampTag(at sim.Time) uint64 { return (uint64(at) + 1) & tagStampMask }

// tagStamp extracts the latency stamp (0 = unstamped).
func tagStamp(tag uint64) uint64 { return tag & tagStampMask }

// tagAttempt extracts the fault-retry attempt count.
func tagAttempt(tag uint64) int { return int(tag >> tagAttemptShift) }

// tagRetry returns the tag for the next attempt, stamp preserved.
func tagRetry(tag uint64) uint64 {
	return tagStamp(tag) | uint64(tagAttempt(tag)+1)<<tagAttemptShift
}

// completed is the plane's completion hook (dsa.Completion.SetOnDone):
// recover faulted completions within the policy's retry budget, then
// score the stamped latency, decrement inflight, and wake waiters —
// every wakeEvery-th completion, or immediately when the plane drains to
// zero, mirroring how interrupt coalescing amortizes delivery.
func (pl *Plane) completed(c *dsa.Completion, tag uint64) {
	rec := c.Record()
	ok := rec.Status == dsa.StatusSuccess
	if !ok && recoverableStatus(rec.Status) {
		pl.t.stats.faults.Add(1)
		pl.t.S.met.fault()
		if pl.retryFault(c, rec, tag) {
			return // remainder re-queued; the op is still in flight
		}
	}
	if stamp := tagStamp(tag); stamp != 0 {
		lat := pl.t.S.E.Now() - sim.Time(stamp-1)
		if ok {
			pl.t.recordSLO(lat)
		} else {
			pl.t.stats.failures.Add(1)
		}
		if pl.onLat != nil {
			pl.onLat(lat, ok)
		}
	}
	left := pl.inflight.Add(-1)
	if left == 0 || pl.compCount.Add(1)%pl.wakeEvery == 0 {
		pl.doneSig.Broadcast(pl.t.S.E)
	}
}

// retryFault re-queues the unfinished remainder of a faulted plane
// submission onto a healthy ring, carrying the original latency stamp so
// the recovered op's SLO span includes every retry round trip. Returns
// false when the retry budget is exhausted or no ring can take it — the
// completion then surfaces as a failure.
func (pl *Plane) retryFault(c *dsa.Completion, rec dsa.CompletionRecord, tag uint64) bool {
	if tagAttempt(tag) >= pl.t.policy.RetryMax {
		return false
	}
	d := remainderOf(*c.Desc(), rec)
	ntag := tagRetry(tag)
	cands := pl.bulkCand
	if pl.t.class == LatencySensitive {
		cands = pl.lsCand
	}
	pushed := false
	for _, j := range cands {
		if !pl.dead[j].Load() && pl.wqs[j].Healthy() && pl.rings[j].TryPush(d, ntag) {
			pushed = true
			break
		}
	}
	if !pushed {
		// Candidate pool down or full: any healthy service ring will do —
		// a cross-socket detour beats failing the op.
		for j := range pl.rings {
			if !pl.dead[j].Load() && pl.wqs[j].Healthy() && pl.rings[j].TryPush(d, ntag) {
				pushed = true
				break
			}
		}
	}
	if !pushed {
		return false
	}
	pl.t.stats.retries.Add(1)
	pl.t.S.met.retry()
	pl.inflight.Add(-1)
	pl.pending.Add(1)
	pl.ensureDrain()
	return true
}

// WaitInflight parks the process until at most max operations remain
// outstanding (pending in rings plus inflight on devices). max 0 is a
// full barrier. Wakeups are moderated by the plane's completion hook,
// so deep pipelines pay one wakeup per coalescing window, not per op.
func (pl *Plane) WaitInflight(p *sim.Proc, max int64) {
	for pl.pending.Load()+pl.inflight.Load() > max {
		pl.ensureDrain()
		p.Wait(&pl.doneSig)
	}
}

// Close detaches the plane from its WQ rings so a successor plane (a
// replacement tenant's, under churn) can attach. It refuses while work
// is outstanding — WaitInflight(p, 0) first — because the rings' single
// consumer is this plane's drain. The tenant is left planeless, not
// closed: Tenant.Close is the lifecycle call, this is its plane half.
func (pl *Plane) Close() error {
	if n := pl.pending.Load() + pl.inflight.Load(); n != 0 {
		return fmt.Errorf("offload: plane closed with %d operations outstanding", n)
	}
	for _, wq := range pl.wqs {
		wq.DetachRing()
	}
	pl.t.plane = nil
	return nil
}
