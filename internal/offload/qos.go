// QoS-aware scheduling and admission control (§3.4 F3 made policy).
//
// The paper shows that WQ priorities and group read-buffer allocations
// shape tail latency under contention, and that WQ backlog — not device
// count — bounds completion latency (Figs 4/9). Three mechanisms turn those
// findings into service policy:
//
//   - QoSClass marks each tenant LatencySensitive or Bulk.
//   - PriorityAware reserves the highest-priority WQ per socket for
//     latency-sensitive tenants and steers bulk traffic to the rest.
//   - A per-tenant token bucket (Policy.AdmitRate/AdmitBurst) sheds or
//     delays bulk bursts before they occupy shared-WQ slots.
//
// The adaptive offload threshold (Policy.AdaptiveThreshold) closes the
// loop on G2: WQ occupancy and completion-latency history feed back into
// the Auto-path decision, so a saturated device sheds small operations to
// the cores and an idle one accepts them earlier than the static 4 KB
// crossover.
package offload

import (
	"errors"

	"dsasim/internal/dsa"
	"dsasim/internal/sim"
)

// QoSClass partitions tenants by service objective.
type QoSClass int

// Tenant QoS classes.
const (
	// Bulk tenants stream throughput-bound work (page migration, cache
	// warmup, packet payloads); they tolerate queueing and are the ones
	// admission control throttles. The zero value, so unmarked tenants
	// never occupy reserved slots.
	Bulk QoSClass = iota
	// LatencySensitive tenants submit foreground operations whose tail
	// latency matters; PriorityAware steers them to the reserved
	// high-priority WQ on their socket.
	LatencySensitive
)

// String returns "bulk" or "latency-sensitive".
func (c QoSClass) String() string {
	if c == LatencySensitive {
		return "latency-sensitive"
	}
	return "bulk"
}

// coalesceParams resolves the tenant's interrupt-moderation knobs for its
// QoS class: Bulk tenants get the policy's full count and window (with the
// default window when unset), LatencySensitive tenants bypass moderation —
// a coalesced foreground completion would trade its tail latency for a
// delivery it can well afford to pay per descriptor — unless the policy
// opts every class in (CoalesceAll). count ≤ 1 means coalescing is off.
func (t *Tenant) coalesceParams() (count int, window sim.Time) {
	pol := &t.policy
	if pol.CoalesceCount <= 1 {
		return 1, 0
	}
	if t.class == LatencySensitive && !pol.CoalesceAll {
		return 1, 0
	}
	window = sim.Time(pol.CoalesceWindow)
	if window <= 0 {
		window = DefaultCoalesceWindow
	}
	if pol.CoalesceAdaptive {
		window = t.adaptiveWindow(window)
	}
	return pol.CoalesceCount, window
}

// adaptiveWindow sizes the moderation window from the tenant's observed
// completion inter-arrival gap: the virtual time a full CoalesceCount of
// completions takes at the current rate, so the window is exactly long
// enough to fill the count trigger and no longer. The estimate is clamped
// between the device's moderation tick (below it the timer cannot resolve
// the window) and the static window (the policy's explicit bound on how
// long a tail may be stranded), and quantized to the tick so gap jitter
// does not produce a stream of near-identical windows.
func (t *Tenant) adaptiveWindow(static sim.Time) sim.Time {
	gap := t.S.met.tenantGap(t.AS.PASID)
	if gap <= 0 {
		return static // no completion history yet: start from the static window
	}
	w := gap * sim.Time(t.policy.CoalesceCount)
	tick := t.S.coalesceTick()
	if tick > 0 {
		w = (w + tick - 1) / tick * tick
		if w < tick {
			w = tick
		}
	}
	if w > static {
		w = static
	}
	return w
}

// ErrAdmission reports a hardware submission shed by the tenant's token
// bucket (Policy.AdmitRate exceeded with the burst exhausted). The
// operation was not submitted; the caller can retry later, fall back to
// the software path, or drop the work.
var ErrAdmission = errors.New("offload: admission control rejected submission")

// PriorityAware reserves the highest-priority WQ per socket for
// latency-sensitive tenants and steers bulk traffic to the remaining WQs,
// least-loaded within each partition. Like NUMALocal it considers only
// same-socket WQs when the socket has a local device, so the QoS split
// never costs a UPI crossing. When a socket's WQs all share one priority
// there is nothing to reserve, and both classes fall back to least-loaded
// over the whole local set.
type PriorityAware struct {
	next int
}

// NewPriorityAware returns the QoS-aware scheduler.
func NewPriorityAware() *PriorityAware { return &PriorityAware{} }

// Name implements Scheduler.
func (s *PriorityAware) Name() string { return "priority-aware" }

// Pick implements Scheduler.
func (s *PriorityAware) Pick(req Request, wqs []*dsa.WQ) *dsa.WQ {
	s.next = (s.next + 1) % len(wqs)
	return pickExpress(req, req.Socket, wqs, s.next)
}

// pickExpress applies the express-lane reservation within a socket's WQ
// pool: latency-sensitive requests get the top-priority subset, bulk the
// rest, least-loaded within each partition. It is shared by PriorityAware
// and the QoS-composed Placement scheduler, which differ only in how the
// socket is chosen.
func pickExpress(req Request, socket int, wqs []*dsa.WQ, offset int) *dsa.WQ {
	var pool, express, rest []*dsa.WQ
	if req.Topo != nil {
		pool = req.Topo.Local(socket)
		express, rest = req.Topo.Split(socket)
	} else {
		pool = localWQs(socket, wqs)
		express, rest = splitByPriority(pool)
	}
	if len(rest) == 0 {
		// Uniform priorities: no WQ can be reserved without starving bulk
		// traffic entirely, so the classes share the pool.
		return leastLoadedOf(pool, offset)
	}
	primary, alt := express, rest
	if req.Class != LatencySensitive {
		primary, alt = rest, express
	}
	if wq := leastLoadedHealthy(primary, offset); wq != nil {
		return wq
	}
	// The class partition is inside a fault window: crossing the QoS
	// split — and, failing that, the socket — beats a dead queue.
	if wq := leastLoadedHealthy(alt, offset); wq != nil {
		return wq
	}
	return leastLoadedOf(wqs, offset)
}

// splitByPriority partitions wqs into the top-priority set (the reserved
// "express lane") and the rest. rest is empty when every WQ shares one
// priority.
func splitByPriority(wqs []*dsa.WQ) (express, rest []*dsa.WQ) {
	top := wqs[0].Priority
	for _, wq := range wqs[1:] {
		if wq.Priority > top {
			top = wq.Priority
		}
	}
	for _, wq := range wqs {
		if wq.Priority == top {
			express = append(express, wq)
		} else {
			rest = append(rest, wq)
		}
	}
	return express, rest
}

// tokenBucket is the per-tenant admission-control state. Tokens accrue in
// virtual time at Policy.AdmitRate per second up to Policy.AdmitBurst; one
// hardware submission (work descriptor or batch parent) costs one token.
// The bucket starts full so a tenant's first burst is admitted.
type tokenBucket struct {
	tokens float64
	last   sim.Time
	primed bool
}

// take attempts to consume one token at virtual instant now under the
// given rate (tokens/second) and burst capacity. A non-positive rate
// means admission control is off (always admitted). When the bucket is
// empty it returns false and the virtual duration until one token will
// have accrued.
func (b *tokenBucket) take(now sim.Time, rate float64, burst int) (bool, sim.Time) {
	if rate <= 0 {
		return true, 0
	}
	capacity := float64(burst)
	if capacity < 1 {
		capacity = 1
	}
	if !b.primed {
		b.primed = true
		b.tokens = capacity
	} else {
		b.tokens += rate * (now - b.last).Seconds()
		if b.tokens > capacity {
			b.tokens = capacity
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// +1ns guards the float64 round-down so a delayed retry cannot land
	// one event before the token actually accrues.
	wait := sim.Time((1-b.tokens)/rate*1e9) + 1
	return false, wait
}

// Adaptive-threshold shape (G2 made dynamic). Pressure is the service-wide
// device saturation estimate in [0,1]; the effective threshold is the
// policy's base value scaled by where pressure sits between the idle and
// saturation watermarks.
const (
	// adaptIdle: below this pressure the device is considered idle and the
	// threshold halves — small operations offload earlier than the static
	// crossover because nothing queues ahead of them.
	adaptIdle = 0.10
	// adaptSaturate: above this pressure the threshold starts rising; at
	// pressure 1.0 it reaches adaptMaxScale × base, shedding everything
	// but large transfers to the cores.
	adaptSaturate = 0.60
	// adaptMaxScale bounds the raised threshold (16 × 4 KB = 64 KB at full
	// saturation — roughly where offload still wins even behind a backlog,
	// Fig 2a).
	adaptMaxScale = 16.0
	// adaptIdleScale is the idle-device discount on the base threshold.
	adaptIdleScale = 0.5
	// adaptLatSaturate: a completion-latency EWMA at this multiple of the
	// best (unloaded) observation counts as full saturation, so latency
	// inflation raises the threshold even while occupancy looks moderate
	// (e.g. few deep descriptors rather than many shallow ones).
	adaptLatSaturate = 4.0
)

// Pressure estimates device saturation across the service's WQs in [0,1]:
// the mean smoothed occupancy fraction (taking the instantaneous value
// when higher, so a just-filled queue registers immediately), pushed up by
// completion-latency inflation relative to the best latency the service
// has observed. The latency term counts only WQs that currently hold
// work: the latency EWMA is event-sampled and would otherwise freeze at
// its last (possibly saturated) value when traffic stops, locking the
// adaptive threshold high on an idle device. The result is memoized per
// virtual instant — an operation's path decision reads it more than once.
func (sv *Service) Pressure() float64 {
	if len(sv.wqs) == 0 {
		return 0
	}
	if now := sv.E.Now(); sv.pressureOK && sv.pressureAt == now {
		return sv.pressure
	}
	p := sv.pressureOver(sv.wqs)
	sv.pressure, sv.pressureAt, sv.pressureOK = p, sv.E.Now(), true
	return p
}

// SocketPressure is the per-socket counterpart of Pressure: the same WQ
// occupancy/latency EWMAs rolled up through the precomputed Topology, but
// restricted to the WQs local to the given socket. Under uniform load
// every socket converges to the aggregate Pressure(); under skew the
// estimates diverge — the signal the load-aware placement path and the
// per-socket adaptive threshold act on. A socket with no local device
// reports the aggregate (its submissions fall back to the full WQ set).
func (sv *Service) SocketPressure(socket int) float64 {
	if sv.topo == nil || !sv.topo.HasLocal(socket) {
		return sv.Pressure()
	}
	if now := sv.E.Now(); sv.sockPressureOK[socket] && sv.sockPressureAt[socket] == now {
		return sv.sockPressure[socket]
	}
	p := sv.pressureOver(sv.topo.Local(socket))
	sv.sockPressure[socket], sv.sockPressureAt[socket], sv.sockPressureOK[socket] = p, sv.E.Now(), true
	return p
}

// pressureOver computes the saturation estimate for one WQ pool. The
// latency floor (the unloaded reference) stays service-wide: the best
// completion latency any WQ ever delivered is the fair baseline to
// measure every socket's inflation against.
func (sv *Service) pressureOver(wqs []*dsa.WQ) float64 {
	if len(wqs) == 0 {
		return 0
	}
	sv.met.sync()
	var occ float64
	var worst sim.Time
	for _, wq := range wqs {
		o := sv.met.occEWMA(wq)
		if inst := float64(wq.Occupancy()) / float64(wq.Size); inst > o {
			o = inst
		}
		occ += o
		if l := sv.met.latEWMA(wq); l > 0 {
			if sv.latFloor == 0 || l < sv.latFloor {
				sv.latFloor = l
			}
			if wq.Occupancy() > 0 && l > worst {
				worst = l
			}
		}
	}
	p := occ / float64(len(wqs))
	if sv.latFloor > 0 && worst > sv.latFloor {
		lp := (float64(worst)/float64(sv.latFloor) - 1) / (adaptLatSaturate - 1)
		if lp > p {
			p = lp
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// EffectiveThreshold resolves the tenant's G2 size floor for this instant:
// the static Policy.OffloadThreshold unless AdaptiveThreshold is set, in
// which case device pressure scales it between half (idle) and
// adaptMaxScale× (saturated) the base value. Under a tenant-socket-routed
// scheduler the pressure read is the tenant's socket's (SocketPressure):
// a tenant next to an idle device should not shed small operations
// because the other socket's DSA is drowning. A data-aware scheduler
// routes by each descriptor's home, which this size-only decision cannot
// know, so it keeps the aggregate estimate rather than guessing a socket
// that may not serve the operation.
func (t *Tenant) EffectiveThreshold() int64 {
	base := t.policy.OffloadThreshold
	if !t.policy.AdaptiveThreshold || base <= 0 {
		return base
	}
	p := t.S.Pressure()
	if !t.S.dataAware {
		p = t.S.SocketPressure(t.Core.Socket)
	}
	switch {
	case p <= adaptIdle:
		return int64(float64(base) * adaptIdleScale)
	case p >= adaptSaturate:
		scale := 1 + (p-adaptSaturate)/(1-adaptSaturate)*(adaptMaxScale-1)
		return int64(float64(base) * scale)
	default:
		return base
	}
}
