// Fault recovery: the software half of the failure plane. The device
// model reports faults through CompletionRecord.Status (page-fault
// partials, WQ disable windows, whole-device outages — internal/dsa's
// fault injector); this file decides what the service does about them.
// The Future path re-submits the unfinished remainder under
// Policy.RetryMax/RetryBackoff and degrades to the submitting core after
// FallbackAfter consecutive faults; the sharded plane re-queues
// remainders through its rings (plane.go) with the attempt count carried
// in the ring tag. Both paths share remainderOf, which continues
// byte-prefix operations from CompletionRecord.BytesCompleted instead of
// re-running work the device already finished.
package offload

import (
	"errors"
	"fmt"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// ErrFaulted is wrapped by results whose hardware execution faulted
// (StatusPageFault) and was not recovered within the retry budget. The
// record's BytesCompleted and FaultAddr say how far the device got.
var ErrFaulted = errors.New("offload: operation faulted")

// ErrDeviceFailed is wrapped by results whose accepting queue or device
// died with the descriptor still queued (StatusWQError /
// StatusDeviceOffline) and recovery did not re-land the work in time.
var ErrDeviceFailed = errors.New("offload: device failed")

// recoverableStatus reports whether a completion status is a fault the
// recovery plane may retry, as opposed to a semantic failure (DIF
// mismatch, delta overflow) that would fail identically on any queue.
func recoverableStatus(s dsa.Status) bool {
	switch s {
	case dsa.StatusPageFault, dsa.StatusWQError, dsa.StatusDeviceOffline:
		return true
	}
	return false
}

// remainderOf returns the descriptor to re-submit after a faulted
// attempt. Byte-prefix operations (copy, fill, dualcast) continue from
// CompletionRecord.BytesCompleted — the partially completed prefix is
// already in place, so only the tail is re-run. Everything else re-runs
// whole: result-producing ops (CRC, compare, delta) accumulate state the
// record does not carry forward, and a queued-but-never-started fault
// (WQ error, outage) completed nothing anyway. The injector faults on
// page boundaries, so a continued fill never splits its 8-byte pattern.
func remainderOf(d dsa.Descriptor, rec dsa.CompletionRecord) dsa.Descriptor {
	done := rec.BytesCompleted
	if done <= 0 || done >= d.Size {
		return d
	}
	switch d.Op {
	case dsa.OpMemmove:
		d.Src += mem.Addr(done)
		d.Dst += mem.Addr(done)
	case dsa.OpFill:
		d.Dst += mem.Addr(done)
	case dsa.OpDualcast:
		d.Src += mem.Addr(done)
		d.Dst += mem.Addr(done)
		d.Dst2 += mem.Addr(done)
	default:
		return d
	}
	d.Size -= done
	return d
}

// recover is the Future-path recovery loop, run by Future.Wait after the
// completion record lands and before it is decoded: while the record
// reports a recoverable fault and the retry budget lasts, re-submit the
// remainder (through the scheduler, which routes around unhealthy WQs)
// and wait again. After Policy.FallbackAfter consecutive faults the
// remainder runs on the submitting core instead — bounded worst-case
// latency under a fault storm — which resolves the future directly.
func (t *Tenant) recover(p *sim.Proc, f *Future, mode WaitMode) {
	pol := t.policy
	if pol.RetryMax <= 0 {
		return
	}
	for faults := 1; ; faults++ {
		rec := f.comp.Record()
		if !recoverableStatus(rec.Status) {
			return
		}
		t.stats.faults.Add(1)
		t.S.met.fault()
		rem := remainderOf(f.d, rec)
		if pol.FallbackAfter > 0 && faults >= pol.FallbackAfter && t.fallback(p, f, rem) {
			return
		}
		if faults > pol.RetryMax {
			return // budget spent: resolve() surfaces the sentinel
		}
		if pol.RetryBackoff > 0 {
			p.Sleep(sim.Time(pol.RetryBackoff))
		}
		nf, err := t.dispatch(p, rem, t.request(&rem))
		if err != nil {
			return // resubmission refused: the faulted record stands
		}
		t.stats.retries.Add(1)
		t.S.met.retry()
		f.cl, f.comp, f.d = nf.cl, nf.comp, nf.d
		f.cl.Wait(p, f.comp, mode)
	}
}

// fallback finishes the remainder of a faulted operation on the
// submitting core, resolving the future as a software completion whose
// Duration spans the whole operation — faulted hardware attempts
// included. Returns false for ops without a software equivalent (the
// hardware retry loop keeps going for those).
func (t *Tenant) fallback(p *sim.Proc, f *Future, rem dsa.Descriptor) bool {
	var (
		dur  sim.Time
		err  error
		fill func(*Result)
	)
	switch rem.Op {
	case dsa.OpMemmove:
		dur, err = t.Core.Memcpy(rem.Dst, rem.Src, rem.Size)
	case dsa.OpFill:
		dur, err = t.Core.Memset(rem.Dst, rem.Size, rem.Pattern)
	case dsa.OpDualcast:
		dur, err = t.Core.Dualcast(rem.Dst, rem.Dst2, rem.Src, rem.Size)
	case dsa.OpCRCGen:
		var crc uint32
		crc, dur, err = t.Core.CRC32(rem.Src, rem.Size, rem.CRCSeed)
		fill = func(r *Result) { r.CRC = crc }
	case dsa.OpCopyCRC:
		var crc uint32
		crc, dur, err = t.Core.CopyCRC(rem.Dst, rem.Src, rem.Size, rem.CRCSeed)
		fill = func(r *Result) { r.CRC = crc }
	case dsa.OpCompare:
		var off int64
		var eq bool
		off, eq, dur, err = t.Core.Memcmp(rem.Src, rem.Src2, rem.Size)
		fill = func(r *Result) { r.Mismatch = !eq; r.Offset = off }
	case dsa.OpComparePattern:
		var off int64
		var eq bool
		off, eq, dur, err = t.Core.ComparePattern(rem.Src, rem.Size, rem.Pattern)
		fill = func(r *Result) { r.Mismatch = !eq; r.Offset = off }
	default:
		return false
	}
	if err != nil {
		return false // core path refused: let the hardware fault surface
	}
	p.Sleep(dur)
	t.stats.swOps.Add(1)
	t.stats.swBytes.Add(rem.Size)
	t.stats.fallbacks.Add(1)
	t.S.met.fallback()
	res := Result{
		Record:   dsa.CompletionRecord{Status: dsa.StatusSuccess},
		Duration: p.Now() - f.start,
	}
	if fill != nil {
		fill(&res)
	}
	f.done, f.res, f.err = true, res, nil
	t.recordSLO(res.Duration)
	return true
}

// faultError maps a faulted terminal record to its sentinel-wrapped
// error. Shared by the Future resolve path and the pipeline driver so
// errors.Is(err, ErrFaulted/ErrDeviceFailed) holds wherever the fault
// surfaces; the device-level cause (dsa.ErrWQDisabled,
// dsa.ErrDeviceOffline, a mem page-fault error) stays wrapped alongside.
func faultError(rec dsa.CompletionRecord) error {
	switch rec.Status {
	case dsa.StatusPageFault:
		if rec.Err != nil {
			return fmt.Errorf("offload: page fault at %#x after %d bytes (%w): %w",
				uint64(rec.FaultAddr), rec.BytesCompleted, ErrFaulted, rec.Err)
		}
		return fmt.Errorf("offload: page fault at %#x after %d bytes: %w",
			uint64(rec.FaultAddr), rec.BytesCompleted, ErrFaulted)
	case dsa.StatusWQError, dsa.StatusDeviceOffline:
		if rec.Err != nil {
			return fmt.Errorf("offload: %v (%w): %w", rec.Status, ErrDeviceFailed, rec.Err)
		}
		return fmt.Errorf("offload: %v: %w", rec.Status, ErrDeviceFailed)
	}
	return nil
}
