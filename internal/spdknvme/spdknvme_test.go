package spdknvme

import (
	"testing"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

func testSystem(e *sim.Engine) *mem.System {
	return mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
}

func run(t *testing.T, cores int, size int64, mode DigestMode, ios int) Result {
	t.Helper()
	e := sim.New()
	sys := testSystem(e)
	cfg := Config{TargetCores: cores, IOSize: size, Mode: mode, IOs: ios, Seed: 3}
	if mode == DSA || mode == DSAPipeline {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
		if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Shared, Size: 64}}}); err != nil {
			t.Fatal(err)
		}
		if err := dev.Enable(); err != nil {
			t.Fatal(err)
		}
		cfg.WQs = dev.WQs()
	}
	if mode == DSAPipeline {
		svc, err := offload.NewService(e, sys, cfg.WQs, offload.WithScheduler(offload.NewPlacement()))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Svc = svc
	}
	res, err := Run(e, sys, sys.Node(0), cpu.SPRModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDigestsVerify(t *testing.T) {
	for _, mode := range []DigestMode{ISAL, DSA, DSAPipeline} {
		res := run(t, 2, 16<<10, mode, 300)
		if res.Mismatched != 0 {
			t.Fatalf("mode %v: %d digests mismatched", mode, res.Mismatched)
		}
		if res.Verified != 300 {
			t.Fatalf("mode %v: verified %d of 300", mode, res.Verified)
		}
	}
}

// The fused DIF-strip→CRC pipeline serves protected reads (two device ops
// per I/O) at an IOPS rate comparable to the accel-fw digest path's single
// op — fusion hides the second stage inside the same submission window.
func TestPipelineModeServesProtectedReads(t *testing.T) {
	plain := run(t, 2, 16<<10, DSA, 400)
	piped := run(t, 2, 16<<10, DSAPipeline, 400)
	if piped.Verified != 400 || piped.Mismatched != 0 {
		t.Fatalf("pipeline digests: %d verified, %d mismatched", piped.Verified, piped.Mismatched)
	}
	if piped.IOPS < 0.6*plain.IOPS {
		t.Fatalf("pipeline mode IOPS %.0f collapsed vs DSA digest mode %.0f despite fusion", piped.IOPS, plain.IOPS)
	}
}

func TestIOPSScalesWithCoresUntilNIC(t *testing.T) {
	// NoDigest 128KB reads: NIC-bound by ~2 cores (Fig 21b).
	one := run(t, 1, 128<<10, NoDigest, 800)
	two := run(t, 2, 128<<10, NoDigest, 800)
	four := run(t, 4, 128<<10, NoDigest, 800)
	if two.IOPS < 1.5*one.IOPS {
		t.Fatalf("2 cores (%.0f) should nearly double 1 core (%.0f)", two.IOPS, one.IOPS)
	}
	if four.IOPS > 1.35*two.IOPS {
		t.Fatalf("4 cores (%.0f) should saturate near 2 cores (%.0f) — NIC bound", four.IOPS, two.IOPS)
	}
}

func TestISALNeedsMoreCoresThanDSA(t *testing.T) {
	// Fig 21: at low core counts, ISA-L digests depress IOPS; DSA tracks
	// NoDigest closely.
	none := run(t, 2, 128<<10, NoDigest, 600)
	isal := run(t, 2, 128<<10, ISAL, 600)
	dsaR := run(t, 2, 128<<10, DSA, 600)
	if isal.IOPS >= 0.8*none.IOPS {
		t.Fatalf("ISA-L (%.0f) should be well below NoDigest (%.0f) at 2 cores", isal.IOPS, none.IOPS)
	}
	if dsaR.IOPS < 0.85*none.IOPS {
		t.Fatalf("DSA (%.0f) should track NoDigest (%.0f) at 2 cores", dsaR.IOPS, none.IOPS)
	}
	if dsaR.IOPS <= isal.IOPS {
		t.Fatalf("DSA (%.0f) should beat ISA-L (%.0f)", dsaR.IOPS, isal.IOPS)
	}
}

func TestSmallRandomReadsSaturateLater(t *testing.T) {
	// 16KB random reads need more cores to saturate than 128KB
	// sequential (Fig 21a vs 21b).
	sat128 := saturationCores(t, 128<<10)
	sat16 := saturationCores(t, 16<<10)
	if sat16 <= sat128 {
		t.Fatalf("16KB saturates at %d cores, 128KB at %d; want 16KB later", sat16, sat128)
	}
}

// saturationCores returns the first core count whose IOPS is within 5% of
// the 8-core ceiling.
func saturationCores(t *testing.T, size int64) int {
	t.Helper()
	ceiling := run(t, 8, size, NoDigest, 800).IOPS
	for c := 1; c <= 8; c++ {
		if run(t, c, size, NoDigest, 800).IOPS >= 0.95*ceiling {
			return c
		}
	}
	return 9
}

func TestValidation(t *testing.T) {
	e := sim.New()
	sys := testSystem(e)
	if _, err := Run(e, sys, sys.Node(0), cpu.SPRModel(), Config{TargetCores: 0, IOSize: 4096}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := Run(e, sys, sys.Node(0), cpu.SPRModel(), Config{TargetCores: 1, IOSize: 4096, Mode: DSA}); err == nil {
		t.Fatal("DSA mode without WQs accepted")
	}
}
