// Package spdknvme reimplements the paper's SPDK NVMe/TCP target case study
// (Appendix C, Fig 21): a polled-mode storage target serving read I/Os over
// TCP, optionally generating a CRC32 Data Digest per PDU — computed either
// with the ISA-L software path on the target cores or offloaded to DSA
// through SPDK's accel framework. The experiment measures IOPS against the
// number of target cores for 16 KB random and 128 KB sequential reads.
package spdknvme

import (
	"fmt"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/isal"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// DigestMode selects the Data Digest configuration (the three curves of
// Fig 21).
type DigestMode int

// Digest modes.
const (
	// NoDigest disables the Data Digest field.
	NoDigest DigestMode = iota
	// ISAL computes CRC32 on the target core with the optimized software
	// library.
	ISAL
	// DSA offloads CRC32 generation through the accel framework.
	DSA
	// DSAPipeline serves end-to-end protected reads through one fused
	// offload pipeline per I/O: the on-disk image carries T10 DIF
	// protection, and a two-stage DAG (DIF verify-and-strip → CRC32 Data
	// Digest over the stripped payload) compiles into a single fenced
	// batch — one submission and one completion window where the accel-fw
	// path would pay two full round trips.
	DSAPipeline
)

// String returns the Fig 21 legend name.
func (m DigestMode) String() string {
	switch m {
	case ISAL:
		return "ISA-L"
	case DSA:
		return "DSA"
	case DSAPipeline:
		return "DSA pipeline"
	default:
		return "No Digest"
	}
}

// Config is one benchmark point.
type Config struct {
	TargetCores int
	IOSize      int64
	Mode        DigestMode
	IOs         int // total I/Os to serve
	WQs         []*dsa.WQ

	// Svc provides tenants for DSAPipeline mode (one per target core);
	// the fused DIF-strip→CRC chains are submitted through it instead of
	// raw WQ clients.
	Svc *offload.Service

	// NICGBps is the target's network bandwidth (200 GbE ≈ 25 GB/s).
	NICGBps float64
	// SSDs and SSDGBps size the backing NVMe array (16 SSDs, Fig 20).
	SSDs    int
	SSDGBps float64
	SSDLat  time.Duration

	// PerIOFixed is the per-I/O TCP+NVMe processing cost on a core, and
	// PerByteGBps the payload-touching rate of the TCP transmit path.
	PerIOFixed  time.Duration
	PerByteGBps float64
	// AccelSubmit is the per-I/O cost to build and submit an accel-fw
	// CRC descriptor and reap its completion (DSA mode).
	AccelSubmit time.Duration

	Seed uint64
}

// Result is one measured point of Fig 21.
type Result struct {
	IOPS       float64
	GBps       float64
	AvgLat     time.Duration
	Verified   int64 // digests recomputed and matched by the initiator
	Mismatched int64
}

// applyDefaults fills zero fields with the Fig 20/21 testbed values.
func (c *Config) applyDefaults() {
	if c.NICGBps == 0 {
		c.NICGBps = 25
	}
	if c.SSDs == 0 {
		c.SSDs = 16
	}
	if c.SSDGBps == 0 {
		c.SSDGBps = 3.5
	}
	if c.SSDLat == 0 {
		c.SSDLat = 60 * time.Microsecond
	}
	if c.PerIOFixed == 0 {
		c.PerIOFixed = 2 * time.Microsecond
	}
	if c.PerByteGBps == 0 {
		c.PerByteGBps = 16
	}
	if c.AccelSubmit == 0 {
		c.AccelSubmit = 400 * time.Nanosecond
	}
	if c.IOs == 0 {
		c.IOs = 2000
	}
}

// Run executes the benchmark and returns the measured point.
func Run(e *sim.Engine, sys *mem.System, node *mem.Node, model cpu.Model, cfg Config) (Result, error) {
	cfg.applyDefaults()
	if cfg.TargetCores <= 0 {
		return Result{}, fmt.Errorf("spdknvme: need at least one target core")
	}
	if cfg.Mode == DSA && len(cfg.WQs) == 0 {
		return Result{}, fmt.Errorf("spdknvme: DSA mode needs work queues")
	}
	if cfg.Mode == DSAPipeline {
		if cfg.Svc == nil {
			return Result{}, fmt.Errorf("spdknvme: pipeline mode needs an offload service")
		}
		if cfg.IOSize%int64(dif.Block512) != 0 {
			return Result{}, fmt.Errorf("spdknvme: pipeline mode needs 512B-aligned I/O size")
		}
	}

	nic := sim.NewPipe(e, cfg.NICGBps)
	ssds := make([]*sim.Pipe, cfg.SSDs)
	for i := range ssds {
		ssds[i] = sim.NewPipe(e, cfg.SSDGBps)
	}

	as := mem.NewAddressSpace(200)
	for _, wq := range cfg.WQs {
		wq.Dev.BindPASID(as)
	}

	perCore := cfg.IOs / cfg.TargetCores
	rem := cfg.IOs % cfg.TargetCores

	res := Result{}
	var done sim.Time
	var totalLat sim.Time
	var served int64
	var runErr error

	for c := 0; c < cfg.TargetCores; c++ {
		c := c
		n := perCore
		if c < rem {
			n++
		}
		if cfg.Mode == DSAPipeline {
			if err := runPipelineCore(e, node, cfg, c, n, nic, ssds, &res, &done, &totalLat, &served, &runErr); err != nil {
				return Result{}, err
			}
			continue
		}
		core := cpu.NewCore(c, 0, sys, as, model)
		// Rotating payload slots: a slot is not rewritten until its CRC
		// offload (if any) has completed, so the device reads stable data.
		const slots = 16
		payloads := make([]*mem.Buffer, slots)
		for s := range payloads {
			payloads[s] = as.Alloc(cfg.IOSize, mem.OnNode(node))
		}
		rng := sim.NewRand(cfg.Seed + uint64(c)*31 + 1)
		var client *dsa.Client
		if cfg.Mode == DSA {
			client = dsa.NewClient(cfg.WQs[c%len(cfg.WQs)], core)
		}
		e.Go(fmt.Sprintf("target-core%d", c), func(p *sim.Proc) {
			type inflight struct {
				comp *dsa.Completion
				want uint32
				mark sim.Time
			}
			var window []inflight
			reapOne := func() {
				io := window[0]
				window = window[1:]
				if !io.comp.Done() {
					io.comp.Wait(p)
				}
				rec := io.comp.Record()
				if uint32(rec.Result) == io.want {
					res.Verified++
				} else {
					res.Mismatched++
				}
				if t := io.comp.FinishTime; t > done {
					done = t
				}
				totalLat += io.comp.FinishTime - io.mark
				served++
			}
			for i := 0; i < n; i++ {
				start := p.Now()
				if len(window) >= slots {
					reapOne() // frees the slot this I/O will reuse
				}
				payload := payloads[i%slots]
				// New "disk contents" for this I/O.
				rng.Bytes(payload.Bytes()[:64])
				// SSD read (polled, not blocking the core).
				ssd := ssds[(c+i)%len(ssds)]
				ssdDone := ssd.Reserve(cfg.IOSize) + cfg.SSDLat
				// Core-side TCP/NVMe processing.
				busy := cfg.PerIOFixed + sim.GBps(cfg.IOSize, cfg.PerByteGBps)
				switch cfg.Mode {
				case ISAL:
					crc, dur, err := core.CRC32(payload.Addr(0), cfg.IOSize, 0)
					if err != nil {
						runErr = err
						return
					}
					busy += dur
					if crc == isal.CRC32(0, payload.Bytes()) {
						res.Verified++
					} else {
						res.Mismatched++
					}
				case DSA:
					busy += cfg.AccelSubmit
				}
				p.Sleep(busy)
				core.ChargeBusy(busy)
				// Response PDU over the NIC.
				nicDone := nic.Reserve(cfg.IOSize)
				end := p.Now()
				if ssdDone > end {
					end = ssdDone
				}
				if nicDone > end {
					end = nicDone
				}
				if cfg.Mode == DSA {
					comp, err := client.Submit(p, dsa.Descriptor{
						Op: dsa.OpCRCGen, PASID: as.PASID,
						Src: payload.Addr(0), Size: cfg.IOSize,
					})
					if err != nil {
						runErr = err
						return
					}
					window = append(window, inflight{
						comp: comp,
						want: isal.CRC32(0, payload.Bytes()),
						mark: start,
					})
					if end > done {
						done = end
					}
					continue
				}
				if end > done {
					done = end
				}
				totalLat += end - start
				served++
			}
			for len(window) > 0 {
				reapOne()
			}
		})
	}
	e.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	if done > 0 {
		secs := float64(done) / 1e9
		res.IOPS = float64(cfg.IOs) / secs
		res.GBps = float64(cfg.IOSize*int64(cfg.IOs)) / float64(done)
	}
	if served > 0 {
		res.AvgLat = totalLat / sim.Time(served)
	}
	return res, nil
}

// runPipelineCore launches one DSAPipeline-mode target core: each window
// slot owns a T10-DIF-protected on-disk image and a two-stage fused
// pipeline (DIF verify-and-strip → CRC32 over the stripped payload). An
// I/O re-submits its slot's pipeline — one batch, one completion — and the
// initiator-side verification compares the CRC stage result against the
// digest of the slot's raw contents.
func runPipelineCore(e *sim.Engine, node *mem.Node, cfg Config, c, n int,
	nic *sim.Pipe, ssds []*sim.Pipe,
	res *Result, done, totalLat *sim.Time, served *int64, runErr *error) error {
	tn, err := cfg.Svc.NewTenant(offload.OnSocket(node.Socket))
	if err != nil {
		return err
	}
	const slots = 16
	blocks := cfg.IOSize / int64(dif.Block512)
	protSize := blocks * dif.Block512.Protected()
	type pipeSlot struct {
		pl   *offload.Pipeline
		crc  *offload.Stage
		want uint32
	}
	rng := sim.NewRand(cfg.Seed + uint64(c)*31 + 1)
	raw := make([]byte, cfg.IOSize)
	ps := make([]pipeSlot, slots)
	for s := range ps {
		rng.Bytes(raw)
		prot := tn.Alloc(protSize, mem.OnNode(node))
		tags := dif.Tags{AppTag: 0x5D, RefTag: uint32(s), IncrementRef: true}
		if err := dif.Insert(prot.Bytes(), raw, dif.Block512, tags); err != nil {
			return err
		}
		pl := tn.NewPipeline()
		stripped := pl.Scratch(cfg.IOSize)
		st := pl.DIFStrip(stripped, offload.At(prot.Addr(0)), protSize, dif.Block512, tags)
		ps[s] = pipeSlot{
			pl:   pl,
			crc:  pl.CRC32(stripped, cfg.IOSize, 0, offload.After(st)),
			want: isal.CRC32(0, raw),
		}
	}
	e.Go(fmt.Sprintf("target-core%d", c), func(p *sim.Proc) {
		type inflight struct {
			fut  *offload.Future
			slot int
			mark sim.Time
		}
		var window []inflight
		reapOne := func() bool {
			io := window[0]
			window = window[1:]
			if _, err := io.fut.Wait(p, offload.Poll); err != nil {
				*runErr = err
				return false
			}
			sl := &ps[io.slot]
			if uint32(sl.crc.Result()) == sl.want {
				res.Verified++
			} else {
				res.Mismatched++
			}
			now := p.Now()
			if now > *done {
				*done = now
			}
			*totalLat += now - io.mark
			*served++
			return true
		}
		for i := 0; i < n; i++ {
			start := p.Now()
			if len(window) >= slots {
				if !reapOne() { // frees the slot this I/O reuses
					return
				}
			}
			ssdDone := ssds[(c+i)%len(ssds)].Reserve(protSize) + cfg.SSDLat
			busy := cfg.PerIOFixed + sim.GBps(cfg.IOSize, cfg.PerByteGBps) + cfg.AccelSubmit
			p.Sleep(busy)
			tn.Core.ChargeBusy(busy)
			nicDone := nic.Reserve(cfg.IOSize)
			end := p.Now()
			if ssdDone > end {
				end = ssdDone
			}
			if nicDone > end {
				end = nicDone
			}
			if end > *done {
				*done = end
			}
			fut, err := ps[i%slots].pl.Submit(p)
			if err != nil {
				*runErr = err
				return
			}
			window = append(window, inflight{fut: fut, slot: i % slots, mark: start})
		}
		for len(window) > 0 {
			if !reapOne() {
				return
			}
		}
	})
	return nil
}
