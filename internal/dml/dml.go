// Package dml is the high-level data-mover library of the model, mirroring
// Intel DML (§5 "Software libraries for DSA"): typed operations over shared
// virtual memory that transparently execute on DSA hardware or on the CPU,
// with synchronous and asynchronous forms, batch construction, load
// balancing across work queues/devices, and an automatic size threshold
// implementing guideline G2 ("use DSA asynchronously when possible; below
// ~4 KB prefer the core").
package dml

import (
	"fmt"

	"dsasim/internal/cpu"
	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Path selects the execution engine for an operation.
type Path int

// Execution paths.
const (
	// Auto offloads transfers at or above the executor threshold and runs
	// smaller ones on the core (G2).
	Auto Path = iota
	// Hardware forces DSA execution.
	Hardware
	// Software forces the CPU baseline.
	Software
)

// Stats counts executor activity.
type Stats struct {
	HWOps    int64
	SWOps    int64
	HWBytes  int64
	SWBytes  int64
	Batches  int64
	Failures int64
}

// Executor issues data-mover operations. Create one per thread (it is a
// simulation-domain object; the underlying device handles cross-client
// concurrency).
type Executor struct {
	AS   *mem.AddressSpace
	Core *cpu.Core

	clients   []*dsa.Client
	rr        int
	Threshold int64
	WaitMode  dsa.WaitMode
	DefPath   Path
	Flags     dsa.Flags // extra descriptor flags (e.g. cache control, block-on-fault)

	stats Stats
}

// Option customizes an Executor.
type Option func(*Executor)

// WithThreshold sets the Auto-path offload threshold in bytes.
func WithThreshold(n int64) Option { return func(x *Executor) { x.Threshold = n } }

// WithWaitMode selects Poll or UMWait for synchronous completions.
func WithWaitMode(m dsa.WaitMode) Option { return func(x *Executor) { x.WaitMode = m } }

// WithPath sets the default execution path.
func WithPath(p Path) Option { return func(x *Executor) { x.DefPath = p } }

// WithFlags adds descriptor flags to every hardware operation.
func WithFlags(f dsa.Flags) Option { return func(x *Executor) { x.Flags = f } }

// New builds an executor over the given WQs (from idxd.Registry.EnabledWQs
// or direct device configuration). core provides the software path and
// submission-cost accounting; it must run on the same address space.
func New(as *mem.AddressSpace, core *cpu.Core, wqs []*dsa.WQ, opts ...Option) (*Executor, error) {
	if len(wqs) == 0 {
		return nil, fmt.Errorf("dml: no work queues")
	}
	x := &Executor{
		AS:        as,
		Core:      core,
		Threshold: 4096,
		WaitMode:  dsa.Poll,
	}
	for _, wq := range wqs {
		wq.Dev.BindPASID(as)
		x.clients = append(x.clients, dsa.NewClient(wq, core))
	}
	for _, o := range opts {
		o(x)
	}
	return x, nil
}

// Stats returns a copy of the executor counters.
func (x *Executor) Stats() Stats { return x.stats }

// next returns the next client round-robin (device/WQ load balancing).
func (x *Executor) next() *dsa.Client {
	c := x.clients[x.rr%len(x.clients)]
	x.rr++
	return c
}

// useHW decides the path for an n-byte operation.
func (x *Executor) useHW(path Path, n int64) bool {
	switch path {
	case Hardware:
		return true
	case Software:
		return false
	default:
		if x.DefPath == Hardware {
			return true
		}
		if x.DefPath == Software {
			return false
		}
		return n >= x.Threshold
	}
}

// Result is the outcome of one operation.
type Result struct {
	Record   dsa.CompletionRecord // hardware-path completion record
	CRC      uint32               // CRC32 / CopyCRC result
	Mismatch bool                 // Compare / ComparePattern mismatch
	Offset   int64                // first mismatch offset
	Size     int64                // delta-record bytes used
	Hardware bool                 // executed on DSA
	Duration sim.Time             // operation latency observed by the caller
}

// Job is an in-flight asynchronous hardware operation.
type Job struct {
	x     *Executor
	comp  *dsa.Completion
	sw    *Result // set when the op ran synchronously on the CPU instead
	start sim.Time
	op    dsa.OpType
}

// Wait blocks until the job finishes and returns its result.
func (j *Job) Wait(p *sim.Proc) (Result, error) {
	if j.sw != nil {
		return *j.sw, nil
	}
	cl := j.x.clients[0]
	cl.Wait(p, j.comp, j.x.WaitMode)
	return j.x.resultFrom(j.op, j.comp, p.Now()-j.start)
}

// Done reports whether the job has completed (software jobs are immediate).
func (j *Job) Done() bool { return j.sw != nil || j.comp.Done() }

func (x *Executor) resultFrom(op dsa.OpType, comp *dsa.Completion, dur sim.Time) (Result, error) {
	rec := comp.Record()
	res := Result{Record: rec, Hardware: true, Duration: dur}
	switch rec.Status {
	case dsa.StatusSuccess:
	case dsa.StatusRecordFull:
		x.stats.Failures++
		return res, fmt.Errorf("dml: delta record overflow")
	case dsa.StatusDIFError:
		x.stats.Failures++
		return res, fmt.Errorf("dml: DIF check failed at block %d: %w", rec.Result, rec.Err)
	default:
		x.stats.Failures++
		return res, fmt.Errorf("dml: %v: %w", rec.Status, rec.Err)
	}
	switch op {
	case dsa.OpCRCGen, dsa.OpCopyCRC:
		res.CRC = uint32(rec.Result)
	case dsa.OpCompare, dsa.OpComparePattern:
		res.Mismatch = rec.Mismatch
		res.Offset = int64(rec.Result)
	case dsa.OpCreateDelta:
		res.Size = int64(rec.Result)
	}
	return res, nil
}

// submitAsync prepares and submits d on the next client.
func (x *Executor) submitAsync(p *sim.Proc, d dsa.Descriptor) (*Job, error) {
	cl := x.next()
	d.PASID = x.AS.PASID
	d.Flags |= x.Flags
	cl.Prepare(p)
	start := p.Now()
	comp, err := cl.Submit(p, d)
	if err != nil {
		x.stats.Failures++
		return nil, err
	}
	x.stats.HWOps++
	x.stats.HWBytes += d.Size
	return &Job{x: x, comp: comp, start: start, op: d.Op}, nil
}

// runSync submits d and waits for completion.
func (x *Executor) runSync(p *sim.Proc, d dsa.Descriptor) (Result, error) {
	j, err := x.submitAsync(p, d)
	if err != nil {
		return Result{}, err
	}
	return j.Wait(p)
}

// Copy moves n bytes from src to dst (sync; path per the executor policy).
func (x *Executor) Copy(p *sim.Proc, dst, src mem.Addr, n int64, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{Op: dsa.OpMemmove, Src: src, Dst: dst, Size: n})
	}
	start := p.Now()
	dur, err := x.Core.Memcpy(dst, src, n)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Duration: p.Now() - start}, nil
}

// CopyAsync starts an asynchronous copy on the hardware path.
func (x *Executor) CopyAsync(p *sim.Proc, dst, src mem.Addr, n int64) (*Job, error) {
	return x.submitAsync(p, dsa.Descriptor{Op: dsa.OpMemmove, Src: src, Dst: dst, Size: n})
}

// Fill writes the repeating 8-byte pattern over n bytes at dst.
func (x *Executor) Fill(p *sim.Proc, dst mem.Addr, n int64, pattern uint64, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{Op: dsa.OpFill, Dst: dst, Size: n, Pattern: pattern})
	}
	start := p.Now()
	dur, err := x.Core.Memset(dst, n, pattern)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Duration: p.Now() - start}, nil
}

// Compare checks n bytes at a and b for equality.
func (x *Executor) Compare(p *sim.Proc, a, b mem.Addr, n int64, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{Op: dsa.OpCompare, Src: a, Src2: b, Size: n})
	}
	start := p.Now()
	off, eq, dur, err := x.Core.Memcmp(a, b, n)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Mismatch: !eq, Offset: off, Duration: p.Now() - start}, nil
}

// ComparePattern checks n bytes at src against the repeating pattern.
func (x *Executor) ComparePattern(p *sim.Proc, src mem.Addr, n int64, pattern uint64, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{Op: dsa.OpComparePattern, Src: src, Size: n, Pattern: pattern})
	}
	start := p.Now()
	off, eq, dur, err := x.Core.ComparePattern(src, n, pattern)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Mismatch: !eq, Offset: off, Duration: p.Now() - start}, nil
}

// CRC32 computes the seeded CRC-32 of n bytes at src.
func (x *Executor) CRC32(p *sim.Proc, src mem.Addr, n int64, seed uint32, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{Op: dsa.OpCRCGen, Src: src, Size: n, CRCSeed: seed})
	}
	start := p.Now()
	crc, dur, err := x.Core.CRC32(src, n, seed)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{CRC: crc, Duration: p.Now() - start}, nil
}

// CopyCRC copies n bytes and returns the CRC-32 of the data.
func (x *Executor) CopyCRC(p *sim.Proc, dst, src mem.Addr, n int64, seed uint32, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{Op: dsa.OpCopyCRC, Src: src, Dst: dst, Size: n, CRCSeed: seed})
	}
	start := p.Now()
	crc, dur, err := x.Core.CopyCRC(dst, src, n, seed)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{CRC: crc, Duration: p.Now() - start}, nil
}

// Dualcast copies n bytes from src to both destinations.
func (x *Executor) Dualcast(p *sim.Proc, dst1, dst2, src mem.Addr, n int64, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{Op: dsa.OpDualcast, Src: src, Dst: dst1, Dst2: dst2, Size: n})
	}
	start := p.Now()
	dur, err := x.Core.Dualcast(dst1, dst2, src, n)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Duration: p.Now() - start}, nil
}

// CreateDelta writes a delta record of orig→mod differences into record.
func (x *Executor) CreateDelta(p *sim.Proc, record, orig, mod mem.Addr, n, maxRecord int64, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{
			Op: dsa.OpCreateDelta, Src: orig, Src2: mod, Dst: record, Size: n, MaxDst: maxRecord,
		})
	}
	start := p.Now()
	used, dur, err := x.Core.DeltaCreate(record, orig, mod, n, maxRecord)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += 2 * n
	return Result{Size: used, Duration: p.Now() - start}, nil
}

// ApplyDelta replays a recordLen-byte delta record onto dst (dstLen bytes).
func (x *Executor) ApplyDelta(p *sim.Proc, dst, record mem.Addr, recordLen, dstLen int64, path Path) (Result, error) {
	if x.useHW(path, recordLen) {
		return x.runSync(p, dsa.Descriptor{
			Op: dsa.OpApplyDelta, Src: record, Dst: dst, Size: recordLen, MaxDst: dstLen,
		})
	}
	start := p.Now()
	dur, err := x.Core.DeltaApply(dst, record, recordLen, dstLen)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += recordLen
	return Result{Duration: p.Now() - start}, nil
}

// DIFInsert generates protected blocks from n raw bytes at src.
func (x *Executor) DIFInsert(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{
			Op: dsa.OpDIFInsert, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: tags,
		})
	}
	start := p.Now()
	dur, err := x.Core.DIFInsert(dst, src, n, bs, tags)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Duration: p.Now() - start}, nil
}

// DIFCheck verifies n protected bytes at src.
func (x *Executor) DIFCheck(p *sim.Proc, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{
			Op: dsa.OpDIFCheck, Src: src, Size: n, DIFBlock: bs, DIFTags: tags,
		})
	}
	start := p.Now()
	dur, err := x.Core.DIFCheck(src, n, bs, tags)
	if err != nil {
		return Result{Duration: dur}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Duration: p.Now() - start}, nil
}

// DIFStrip verifies and removes protection information.
func (x *Executor) DIFStrip(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{
			Op: dsa.OpDIFStrip, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: tags,
		})
	}
	start := p.Now()
	dur, err := x.Core.DIFStrip(dst, src, n, bs, tags)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Duration: p.Now() - start}, nil
}

// DIFUpdate rewrites protection information from old to new tags.
func (x *Executor) DIFUpdate(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, old, new dif.Tags, path Path) (Result, error) {
	if x.useHW(path, n) {
		return x.runSync(p, dsa.Descriptor{
			Op: dsa.OpDIFUpdate, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: old, DIFTags2: new,
		})
	}
	start := p.Now()
	dur, err := x.Core.DIFUpdate(dst, src, n, bs, old, new)
	if err != nil {
		return Result{}, err
	}
	p.Sleep(dur)
	x.stats.SWOps++
	x.stats.SWBytes += n
	return Result{Duration: p.Now() - start}, nil
}
