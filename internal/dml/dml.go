// Package dml is the legacy high-level data-mover interface, kept as a
// thin compatibility shim over internal/offload (the unified submission
// surface). New code should use offload.Service / offload.Tenant directly;
// this package preserves the original per-thread Executor API — typed
// operations with an explicit Path argument, synchronous results, and Jobs
// for async offloads — by delegating every operation to an offload.Tenant
// with a private single-tenant Service.
package dml

import (
	"fmt"

	"dsasim/internal/cpu"
	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// Path selects the execution engine for an operation.
type Path int

// Execution paths.
const (
	// Auto offloads transfers at or above the executor threshold and runs
	// smaller ones on the core (G2).
	Auto Path = iota
	// Hardware forces DSA execution.
	Hardware
	// Software forces the CPU baseline.
	Software
)

// Stats counts executor activity (offload.Stats re-exported: HWOps, SWOps,
// HWBytes, SWBytes, Batches, Failures).
type Stats = offload.Stats

// Result is the outcome of one operation (offload.Result re-exported).
type Result = offload.Result

// Executor issues data-mover operations. Create one per thread. It is a
// compatibility wrapper: routing policy (Threshold, DefPath) stays here so
// existing call sites behave identically, while submission, scheduling,
// and completion run through the wrapped offload.Tenant.
type Executor struct {
	AS   *mem.AddressSpace
	Core *cpu.Core
	T    *offload.Tenant

	Threshold int64
	WaitMode  dsa.WaitMode
	DefPath   Path
	Flags     dsa.Flags // extra descriptor flags (e.g. cache control, block-on-fault)
}

// Option customizes an Executor.
type Option func(*Executor)

// WithThreshold sets the Auto-path offload threshold in bytes.
func WithThreshold(n int64) Option { return func(x *Executor) { x.Threshold = n } }

// WithWaitMode selects Poll or UMWait for synchronous completions.
func WithWaitMode(m dsa.WaitMode) Option { return func(x *Executor) { x.WaitMode = m } }

// WithPath sets the default execution path.
func WithPath(p Path) Option { return func(x *Executor) { x.DefPath = p } }

// WithFlags adds descriptor flags to every hardware operation.
func WithFlags(f dsa.Flags) Option { return func(x *Executor) { x.Flags = f } }

// New builds an executor over the given WQs (from idxd.Registry.EnabledWQs
// or direct device configuration), backed by a private round-robin offload
// service — the legacy load-balancing behavior. core provides the software
// path and submission-cost accounting; it must run on the same address
// space.
func New(as *mem.AddressSpace, core *cpu.Core, wqs []*dsa.WQ, opts ...Option) (*Executor, error) {
	if len(wqs) == 0 {
		return nil, fmt.Errorf("dml: no work queues")
	}
	svc, err := offload.NewService(wqs[0].Dev.E, wqs[0].Dev.Sys, wqs)
	if err != nil {
		return nil, err
	}
	tn, err := svc.NewTenant(offload.SharedSpace(as), offload.OnCore(core))
	if err != nil {
		return nil, err
	}
	return FromTenant(tn, opts...), nil
}

// FromTenant wraps an existing offload tenant in the legacy Executor API.
func FromTenant(tn *offload.Tenant, opts ...Option) *Executor {
	x := &Executor{
		AS:        tn.AS,
		Core:      tn.Core,
		T:         tn,
		Threshold: 4096,
		WaitMode:  dsa.Poll,
	}
	for _, o := range opts {
		o(x)
	}
	return x
}

// Stats returns a copy of the executor counters.
func (x *Executor) Stats() Stats { return x.T.Stats() }

// force resolves the legacy (path, size) routing into a forced offload
// path, keeping the executor's mutable Threshold/DefPath semantics.
func (x *Executor) force(path Path, n int64) offload.OpOption {
	hw := false
	switch path {
	case Hardware:
		hw = true
	case Software:
	default:
		switch x.DefPath {
		case Hardware:
			hw = true
		case Software:
		default:
			hw = n >= x.Threshold
		}
	}
	if hw {
		return offload.On(offload.Hardware)
	}
	return offload.On(offload.Software)
}

// Job is an in-flight asynchronous hardware operation.
type Job struct {
	x *Executor
	f *offload.Future
}

// Wait blocks until the job finishes and returns its result.
func (j *Job) Wait(p *sim.Proc) (Result, error) { return j.f.Wait(p, j.x.WaitMode) }

// Done reports whether the job has completed.
func (j *Job) Done() bool { return j.f.Done() }

// runSync executes op and waits for the result. An error accompanied by a
// resolved future (the software DIF-check path) still yields the future's
// result, preserving the legacy Duration-on-error behavior.
func (x *Executor) runSync(p *sim.Proc, f *offload.Future, err error) (Result, error) {
	if f == nil {
		return Result{}, err
	}
	return f.Wait(p, x.WaitMode)
}

// Copy moves n bytes from src to dst (sync; path per the executor policy).
func (x *Executor) Copy(p *sim.Proc, dst, src mem.Addr, n int64, path Path) (Result, error) {
	f, err := x.T.Copy(p, dst, src, n, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// CopyAsync starts an asynchronous copy on the hardware path.
func (x *Executor) CopyAsync(p *sim.Proc, dst, src mem.Addr, n int64) (*Job, error) {
	f, err := x.T.Copy(p, dst, src, n, offload.On(offload.Hardware), offload.OpFlags(x.Flags))
	if err != nil {
		return nil, err
	}
	return &Job{x: x, f: f}, nil
}

// Fill writes the repeating 8-byte pattern over n bytes at dst.
func (x *Executor) Fill(p *sim.Proc, dst mem.Addr, n int64, pattern uint64, path Path) (Result, error) {
	f, err := x.T.Fill(p, dst, n, pattern, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// Compare checks n bytes at a and b for equality.
func (x *Executor) Compare(p *sim.Proc, a, b mem.Addr, n int64, path Path) (Result, error) {
	f, err := x.T.Compare(p, a, b, n, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// ComparePattern checks n bytes at src against the repeating pattern.
func (x *Executor) ComparePattern(p *sim.Proc, src mem.Addr, n int64, pattern uint64, path Path) (Result, error) {
	f, err := x.T.ComparePattern(p, src, n, pattern, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// CRC32 computes the seeded CRC-32 of n bytes at src.
func (x *Executor) CRC32(p *sim.Proc, src mem.Addr, n int64, seed uint32, path Path) (Result, error) {
	f, err := x.T.CRC32(p, src, n, seed, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// CopyCRC copies n bytes and returns the CRC-32 of the data.
func (x *Executor) CopyCRC(p *sim.Proc, dst, src mem.Addr, n int64, seed uint32, path Path) (Result, error) {
	f, err := x.T.CopyCRC(p, dst, src, n, seed, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// Dualcast copies n bytes from src to both destinations.
func (x *Executor) Dualcast(p *sim.Proc, dst1, dst2, src mem.Addr, n int64, path Path) (Result, error) {
	f, err := x.T.Dualcast(p, dst1, dst2, src, n, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// CreateDelta writes a delta record of orig→mod differences into record.
func (x *Executor) CreateDelta(p *sim.Proc, record, orig, mod mem.Addr, n, maxRecord int64, path Path) (Result, error) {
	f, err := x.T.CreateDelta(p, record, orig, mod, n, maxRecord, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// ApplyDelta replays a recordLen-byte delta record onto dst (dstLen bytes).
func (x *Executor) ApplyDelta(p *sim.Proc, dst, record mem.Addr, recordLen, dstLen int64, path Path) (Result, error) {
	f, err := x.T.ApplyDelta(p, dst, record, recordLen, dstLen, x.force(path, recordLen), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// DIFInsert generates protected blocks from n raw bytes at src.
func (x *Executor) DIFInsert(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, path Path) (Result, error) {
	f, err := x.T.DIFInsert(p, dst, src, n, bs, tags, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// DIFCheck verifies n protected bytes at src.
func (x *Executor) DIFCheck(p *sim.Proc, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, path Path) (Result, error) {
	f, err := x.T.DIFCheck(p, src, n, bs, tags, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// DIFStrip verifies and removes protection information.
func (x *Executor) DIFStrip(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags, path Path) (Result, error) {
	f, err := x.T.DIFStrip(p, dst, src, n, bs, tags, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}

// DIFUpdate rewrites protection information from old to new tags.
func (x *Executor) DIFUpdate(p *sim.Proc, dst, src mem.Addr, n int64, bs dif.BlockSize, old, new dif.Tags, path Path) (Result, error) {
	f, err := x.T.DIFUpdate(p, dst, src, n, bs, old, new, x.force(path, n), offload.OpFlags(x.Flags))
	return x.runSync(p, f, err)
}
