package dml

import (
	"fmt"

	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Batch accumulates work descriptors for a single batch submission (§3.4
// F2, guideline G1: batch small transfers, coalesce contiguous ones).
type Batch struct {
	x     *Executor
	descs []dsa.Descriptor
}

// NewBatch starts an empty batch.
func (x *Executor) NewBatch() *Batch { return &Batch{x: x} }

// Len returns the number of queued descriptors.
func (b *Batch) Len() int { return len(b.descs) }

// Copy appends a copy operation.
func (b *Batch) Copy(dst, src mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpMemmove, Src: src, Dst: dst, Size: n})
	return b
}

// Fill appends a pattern-fill operation.
func (b *Batch) Fill(dst mem.Addr, n int64, pattern uint64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpFill, Dst: dst, Size: n, Pattern: pattern})
	return b
}

// Compare appends a compare operation.
func (b *Batch) Compare(x, y mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpCompare, Src: x, Src2: y, Size: n})
	return b
}

// CRC32 appends a CRC generation operation.
func (b *Batch) CRC32(src mem.Addr, n int64, seed uint32) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpCRCGen, Src: src, Size: n, CRCSeed: seed})
	return b
}

// Dualcast appends a dualcast operation.
func (b *Batch) Dualcast(dst1, dst2, src mem.Addr, n int64) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpDualcast, Src: src, Dst: dst1, Dst2: dst2, Size: n})
	return b
}

// DIFInsert appends a DIF insert operation.
func (b *Batch) DIFInsert(dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags) *Batch {
	b.descs = append(b.descs, dsa.Descriptor{
		Op: dsa.OpDIFInsert, Src: src, Dst: dst, Size: n, DIFBlock: bs, DIFTags: tags,
	})
	return b
}

// Fence appends a fence: descriptors after it wait for all before it.
func (b *Batch) Fence() *Batch {
	if n := len(b.descs); n > 0 {
		// The fence flag lives on the first descriptor after the barrier;
		// mark the next appended descriptor. Record a placeholder via a
		// deferred flag on append: simplest is to set the flag on a Nop.
		b.descs = append(b.descs, dsa.Descriptor{Op: dsa.OpNop, Flags: dsa.FlagFence})
	}
	return b
}

// Submit sends the batch to the next work queue and returns the in-flight
// job. A batch needs at least two descriptors (device rule); single-entry
// batches are submitted as plain descriptors.
func (b *Batch) Submit(p *sim.Proc) (*Job, error) {
	switch len(b.descs) {
	case 0:
		return nil, fmt.Errorf("dml: empty batch")
	case 1:
		b.x.stats.Batches++
		return b.x.submitAsync(p, b.descs[0])
	default:
		b.x.stats.Batches++
		descs := b.descs
		b.descs = nil
		return b.x.submitAsync(p, dsa.Descriptor{Op: dsa.OpBatch, Descs: descs})
	}
}
