package dml

import (
	"dsasim/internal/dif"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// Batch accumulates work descriptors for a single batch submission (§3.4
// F2, guideline G1). It wraps offload.Batch to return legacy Jobs.
type Batch struct {
	x *Executor
	b *offload.Batch
}

// NewBatch starts an empty batch.
func (x *Executor) NewBatch() *Batch { return &Batch{x: x, b: x.T.NewBatch()} }

// Len returns the number of queued descriptors.
func (b *Batch) Len() int { return b.b.Len() }

// Copy appends a copy operation.
func (b *Batch) Copy(dst, src mem.Addr, n int64) *Batch {
	b.b.Copy(dst, src, n)
	return b
}

// Fill appends a pattern-fill operation.
func (b *Batch) Fill(dst mem.Addr, n int64, pattern uint64) *Batch {
	b.b.Fill(dst, n, pattern)
	return b
}

// Compare appends a compare operation.
func (b *Batch) Compare(x, y mem.Addr, n int64) *Batch {
	b.b.Compare(x, y, n)
	return b
}

// CRC32 appends a CRC generation operation.
func (b *Batch) CRC32(src mem.Addr, n int64, seed uint32) *Batch {
	b.b.CRC32(src, n, seed)
	return b
}

// Dualcast appends a dualcast operation.
func (b *Batch) Dualcast(dst1, dst2, src mem.Addr, n int64) *Batch {
	b.b.Dualcast(dst1, dst2, src, n)
	return b
}

// DIFInsert appends a DIF insert operation.
func (b *Batch) DIFInsert(dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags) *Batch {
	b.b.DIFInsert(dst, src, n, bs, tags)
	return b
}

// Fence appends a fence: descriptors after it wait for all before it.
func (b *Batch) Fence() *Batch {
	b.b.Fence()
	return b
}

// Submit sends the batch to the next work queue and returns the in-flight
// job, applying the executor's descriptor flags as the legacy submit path
// did.
func (b *Batch) Submit(p *sim.Proc) (*Job, error) {
	f, err := b.b.WithFlags(b.x.Flags).Submit(p)
	if err != nil {
		return nil, err
	}
	return &Job{x: b.x, f: f}, nil
}
