package dml

import (
	"bytes"
	"testing"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

type rig struct {
	e    *sim.Engine
	sys  *mem.System
	as   *mem.AddressSpace
	core *cpu.Core
	x    *Executor
	node *mem.Node
}

func newRig(t *testing.T, opts ...Option) *rig {
	t.Helper()
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace(1)
	core := cpu.NewCore(0, 0, sys, as, cpu.SPRModel())
	x, err := New(as, core, dev.WQs(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{e: e, sys: sys, as: as, core: core, x: x, node: sys.Node(0)}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.e.Go("test", fn)
	r.e.Run()
}

func (r *rig) alloc(n int64) *mem.Buffer { return r.as.Alloc(n, mem.OnNode(r.node)) }

func TestAutoPathRouting(t *testing.T) {
	r := newRig(t) // threshold 4096
	small := r.alloc(1024)
	big := r.alloc(64 << 10)
	dstS := r.alloc(1024)
	dstB := r.alloc(64 << 10)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.x.Copy(p, dstS.Addr(0), small.Addr(0), 1024, Auto); err != nil {
			t.Error(err)
		}
		if _, err := r.x.Copy(p, dstB.Addr(0), big.Addr(0), 64<<10, Auto); err != nil {
			t.Error(err)
		}
	})
	st := r.x.Stats()
	if st.SWOps != 1 || st.HWOps != 1 {
		t.Fatalf("routing = %d sw, %d hw; want 1,1", st.SWOps, st.HWOps)
	}
	if st.SWBytes != 1024 || st.HWBytes != 64<<10 {
		t.Fatalf("bytes = %d sw, %d hw", st.SWBytes, st.HWBytes)
	}
}

func TestForcedPaths(t *testing.T) {
	r := newRig(t)
	src := r.alloc(512)
	dst := r.alloc(512)
	r.run(t, func(p *sim.Proc) {
		if res, err := r.x.Copy(p, dst.Addr(0), src.Addr(0), 512, Hardware); err != nil || !res.Hardware {
			t.Errorf("forced hardware: %+v, %v", res, err)
		}
		if res, err := r.x.Copy(p, dst.Addr(0), src.Addr(0), 512, Software); err != nil || res.Hardware {
			t.Errorf("forced software: %+v, %v", res, err)
		}
	})
}

func TestResultsMatchAcrossPaths(t *testing.T) {
	r := newRig(t)
	n := int64(32 << 10)
	src := r.alloc(n)
	sim.NewRand(1).Bytes(src.Bytes())
	r.run(t, func(p *sim.Proc) {
		hw, err := r.x.CRC32(p, src.Addr(0), n, 0, Hardware)
		if err != nil {
			t.Error(err)
			return
		}
		sw, err := r.x.CRC32(p, src.Addr(0), n, 0, Software)
		if err != nil {
			t.Error(err)
			return
		}
		if hw.CRC != sw.CRC {
			t.Errorf("hardware CRC %#x != software %#x", hw.CRC, sw.CRC)
		}
	})
}

func TestAsyncJob(t *testing.T) {
	r := newRig(t)
	n := int64(256 << 10)
	src := r.alloc(n)
	dst := r.alloc(n)
	sim.NewRand(2).Bytes(src.Bytes())
	r.run(t, func(p *sim.Proc) {
		j, err := r.x.CopyAsync(p, dst.Addr(0), src.Addr(0), n)
		if err != nil {
			t.Error(err)
			return
		}
		if j.Done() {
			t.Error("256KB copy completed instantaneously")
		}
		if _, err := j.Wait(p); err != nil {
			t.Error(err)
		}
		if !j.Done() {
			t.Error("job not done after Wait")
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("async copy incomplete")
	}
}

func TestBatchSubmit(t *testing.T) {
	r := newRig(t)
	n := int64(4096)
	src := r.alloc(n * 4)
	dst := r.alloc(n * 4)
	sim.NewRand(3).Bytes(src.Bytes())
	crcSrc := r.alloc(n)
	sim.NewRand(4).Bytes(crcSrc.Bytes())

	r.run(t, func(p *sim.Proc) {
		b := r.x.NewBatch()
		for i := int64(0); i < 4; i++ {
			b.Copy(dst.Addr(i*n), src.Addr(i*n), n)
		}
		b.CRC32(crcSrc.Addr(0), n, 0)
		if b.Len() != 5 {
			t.Errorf("batch len = %d", b.Len())
		}
		j, err := b.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := j.Wait(p)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Record.Result != 5 {
			t.Errorf("batch completed %d of 5", res.Record.Result)
		}
	})
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("batch copies incomplete")
	}
}

func TestBatchSingleDescriptorFallsBack(t *testing.T) {
	r := newRig(t)
	src := r.alloc(4096)
	dst := r.alloc(4096)
	r.run(t, func(p *sim.Proc) {
		b := r.x.NewBatch().Copy(dst.Addr(0), src.Addr(0), 4096)
		j, err := b.Submit(p)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := j.Wait(p); err != nil {
			t.Error(err)
		}
	})
}

func TestEmptyBatchRejected(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.x.NewBatch().Submit(p); err == nil {
			t.Error("empty batch accepted")
		}
	})
}

func TestDeltaAndDIFViaExecutor(t *testing.T) {
	r := newRig(t)
	n := int64(8192)
	orig := r.alloc(n)
	mod := r.alloc(n)
	record := r.alloc(n * 2)
	sim.NewRand(5).Bytes(orig.Bytes())
	copy(mod.Bytes(), orig.Bytes())
	mod.Bytes()[100] ^= 0xFF

	raw := r.alloc(4096)
	prot := r.alloc(dif.Block512.Protected() * 8)
	sim.NewRand(6).Bytes(raw.Bytes())
	tags := dif.Tags{AppTag: 3, RefTag: 12, IncrementRef: true}

	r.run(t, func(p *sim.Proc) {
		res, err := r.x.CreateDelta(p, record.Addr(0), orig.Addr(0), mod.Addr(0), n, n*2, Hardware)
		if err != nil {
			t.Error(err)
			return
		}
		if res.Size == 0 {
			t.Error("no delta bytes")
		}
		if _, err := r.x.ApplyDelta(p, orig.Addr(0), record.Addr(0), res.Size, n, Hardware); err != nil {
			t.Error(err)
		}
		if _, err := r.x.DIFInsert(p, prot.Addr(0), raw.Addr(0), 4096, dif.Block512, tags, Hardware); err != nil {
			t.Error(err)
		}
		if _, err := r.x.DIFCheck(p, prot.Addr(0), prot.Size, dif.Block512, tags, Hardware); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(orig.Bytes(), mod.Bytes()) {
		t.Fatal("delta round trip via executor failed")
	}
}

func TestDIFErrorSurfaceAsError(t *testing.T) {
	r := newRig(t)
	prot := r.alloc(dif.Block512.Protected())
	// Garbage protected block: check must fail on both paths.
	sim.NewRand(7).Bytes(prot.Bytes())
	tags := dif.Tags{AppTag: 1}
	r.run(t, func(p *sim.Proc) {
		if _, err := r.x.DIFCheck(p, prot.Addr(0), prot.Size, dif.Block512, tags, Hardware); err == nil {
			t.Error("hardware DIF check passed on garbage")
		}
		if _, err := r.x.DIFCheck(p, prot.Addr(0), prot.Size, dif.Block512, tags, Software); err == nil {
			t.Error("software DIF check passed on garbage")
		}
	})
}

func TestLoadBalancingRoundRobin(t *testing.T) {
	// Two single-WQ devices: ops must alternate between them.
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	var wqs []*dsa.WQ
	var devs []*dsa.Device
	for _, name := range []string{"dsa0", "dsa1"} {
		dev := dsa.New(e, sys, dsa.DefaultConfig(name, 0))
		if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}}); err != nil {
			t.Fatal(err)
		}
		if err := dev.Enable(); err != nil {
			t.Fatal(err)
		}
		wqs = append(wqs, dev.WQs()...)
		devs = append(devs, dev)
	}
	as := mem.NewAddressSpace(1)
	core := cpu.NewCore(0, 0, sys, as, cpu.SPRModel())
	x, err := New(as, core, wqs)
	if err != nil {
		t.Fatal(err)
	}
	src := as.Alloc(8192, mem.OnNode(sys.Node(0)))
	dst := as.Alloc(8192, mem.OnNode(sys.Node(0)))
	e.Go("test", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if _, err := x.Copy(p, dst.Addr(0), src.Addr(0), 8192, Hardware); err != nil {
				t.Error(err)
				return
			}
		}
	})
	e.Run()
	if devs[0].Stats().Submitted != 5 || devs[1].Stats().Submitted != 5 {
		t.Fatalf("load balance = %d / %d, want 5 / 5",
			devs[0].Stats().Submitted, devs[1].Stats().Submitted)
	}
}

func TestExecutorRequiresWQs(t *testing.T) {
	if _, err := New(mem.NewAddressSpace(1), nil, nil); err == nil {
		t.Fatal("executor without WQs accepted")
	}
}

func TestFillAndCompareViaExecutor(t *testing.T) {
	r := newRig(t)
	buf := r.alloc(16 << 10)
	pat := uint64(0x5A5A5A5A5A5A5A5A)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.x.Fill(p, buf.Addr(0), buf.Size, pat, Hardware); err != nil {
			t.Error(err)
		}
		res, err := r.x.ComparePattern(p, buf.Addr(0), buf.Size, pat, Hardware)
		if err != nil || res.Mismatch {
			t.Errorf("pattern verify: %+v, %v", res, err)
		}
		buf.Bytes()[9999] = 0
		res, err = r.x.ComparePattern(p, buf.Addr(0), buf.Size, pat, Hardware)
		if err != nil || !res.Mismatch || res.Offset != 9999 {
			t.Errorf("mismatch detect: %+v, %v", res, err)
		}
	})
}

func TestDualcastViaExecutor(t *testing.T) {
	r := newRig(t)
	n := int64(8192)
	src := r.alloc(n)
	d1 := r.alloc(n)
	d2 := r.alloc(n)
	sim.NewRand(8).Bytes(src.Bytes())
	r.run(t, func(p *sim.Proc) {
		if _, err := r.x.Dualcast(p, d1.Addr(0), d2.Addr(0), src.Addr(0), n, Hardware); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(d1.Bytes(), src.Bytes()) || !bytes.Equal(d2.Bytes(), src.Bytes()) {
		t.Fatal("dualcast incomplete")
	}
}
