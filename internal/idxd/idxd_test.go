package idxd

import (
	"testing"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	return NewRegistry(e, sys)
}

func TestLifecycle(t *testing.T) {
	r := testRegistry(t)
	if _, err := r.Discover("dsa0", 0); err != nil {
		t.Fatal(err)
	}
	ent, err := r.Get("dsa0")
	if err != nil {
		t.Fatal(err)
	}
	if ent.State != Disabled {
		t.Fatalf("initial state = %v", ent.State)
	}
	if err := r.Enable("dsa0"); err == nil {
		t.Fatal("enabled an unconfigured device")
	}
	if err := r.Configure(DefaultSpec("dsa0")); err != nil {
		t.Fatal(err)
	}
	if ent.State != Configured {
		t.Fatalf("state after configure = %v", ent.State)
	}
	if err := r.Enable("dsa0"); err != nil {
		t.Fatal(err)
	}
	if ent.State != Enabled {
		t.Fatalf("state after enable = %v", ent.State)
	}
	if err := r.Configure(DefaultSpec("dsa0")); err == nil {
		t.Fatal("reconfigured an enabled device")
	}
}

func TestOpenWQ(t *testing.T) {
	r := testRegistry(t)
	if _, err := r.Discover("dsa0", 0); err != nil {
		t.Fatal(err)
	}
	spec := DeviceSpec{
		Name: "dsa0",
		Groups: []GroupSpec{{
			Engines: 2,
			WQs: []WQSpec{
				{Name: "dsa0/wq0.0", Mode: "dedicated", Size: 16},
				{Name: "dsa0/wq0.1", Mode: "shared", Size: 16, Priority: 10},
			},
		}},
	}
	if err := r.Configure(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.OpenWQ("dsa0", "dsa0/wq0.0"); err == nil {
		t.Fatal("opened WQ on non-enabled device")
	}
	if err := r.Enable("dsa0"); err != nil {
		t.Fatal(err)
	}
	wq, err := r.OpenWQ("dsa0", "dsa0/wq0.1")
	if err != nil {
		t.Fatal(err)
	}
	if wq.Mode != dsa.Shared || wq.Priority != 10 {
		t.Fatalf("WQ attrs = %v prio %d", wq.Mode, wq.Priority)
	}
	if _, err := r.OpenWQ("dsa0", "nope"); err == nil {
		t.Fatal("opened nonexistent WQ")
	}
	names, err := r.WQNames("dsa0")
	if err != nil || len(names) != 2 {
		t.Fatalf("WQNames = %v, %v", names, err)
	}
}

func TestConfigureJSON(t *testing.T) {
	r := testRegistry(t)
	if _, err := r.Discover("dsa0", 0); err != nil {
		t.Fatal(err)
	}
	doc := []byte(`[
	  {"dev":"dsa0","groups":[
	    {"grouped_engines":4,"grouped_workqueues":[
	      {"dev":"dsa0/wq0.0","mode":"dedicated","size":32}
	    ]}
	  ]}
	]`)
	if err := r.ConfigureJSON(doc); err != nil {
		t.Fatal(err)
	}
	if err := r.Enable("dsa0"); err != nil {
		t.Fatal(err)
	}
	if got := len(r.EnabledWQs()); got != 1 {
		t.Fatalf("EnabledWQs = %d, want 1", got)
	}
}

func TestConfigureJSONRejectsBadMode(t *testing.T) {
	r := testRegistry(t)
	if _, err := r.Discover("dsa0", 0); err != nil {
		t.Fatal(err)
	}
	doc := []byte(`[{"dev":"dsa0","groups":[{"grouped_engines":1,"grouped_workqueues":[{"mode":"bogus","size":8}]}]}]`)
	if err := r.ConfigureJSON(doc); err == nil {
		t.Fatal("accepted bogus WQ mode")
	}
}

func TestDuplicateDiscovery(t *testing.T) {
	r := testRegistry(t)
	if _, err := r.Discover("dsa0", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Discover("dsa0", 0); err == nil {
		t.Fatal("duplicate discovery succeeded")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "dsa0" {
		t.Fatalf("Names = %v", got)
	}
}

func TestEnabledWQsSkipsDisabled(t *testing.T) {
	r := testRegistry(t)
	for _, n := range []string{"dsa0", "dsa1"} {
		if _, err := r.Discover(n, 0); err != nil {
			t.Fatal(err)
		}
		if err := r.Configure(DefaultSpec(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Enable("dsa1"); err != nil {
		t.Fatal(err)
	}
	wqs := r.EnabledWQs()
	if len(wqs) != 1 {
		t.Fatalf("EnabledWQs = %d, want 1 (dsa0 not enabled)", len(wqs))
	}
	if wqs[0].Dev.Cfg.Name != "dsa1" {
		t.Fatalf("wrong device: %s", wqs[0].Dev.Cfg.Name)
	}
}
