// Package idxd mirrors the Linux IDXD driver and libaccel-config stack
// (§3.3, Fig 1b): device discovery, group/WQ/engine configuration from
// declarative specs (the same shape as accel-config's JSON config files),
// an enable/disable state machine, and char-device-style portal hand-out
// that gives user clients access to enabled WQs.
package idxd

import (
	"encoding/json"
	"fmt"
	"sort"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// DeviceSpec is a declarative device configuration, the analog of one
// device stanza in an accel-config JSON file.
type DeviceSpec struct {
	Name   string      `json:"dev"`
	Groups []GroupSpec `json:"groups"`
}

// GroupSpec configures one group.
type GroupSpec struct {
	Engines  int `json:"grouped_engines"`
	ReadBufs int `json:"read_buffers,omitempty"`
	// ExpressBufs reserves part of the group's read buffers for its
	// top-priority WQs (the QoS read-bandwidth partition, §3.4 F3).
	ExpressBufs int      `json:"express_read_buffers,omitempty"`
	WQs         []WQSpec `json:"grouped_workqueues"`
}

// WQSpec configures one work queue.
type WQSpec struct {
	Name     string `json:"dev"`
	Mode     string `json:"mode"` // "dedicated" or "shared"
	Size     int    `json:"size"`
	Priority int    `json:"priority,omitempty"`
}

// State is the driver-visible device lifecycle state.
type State int

// Device lifecycle states.
const (
	// Disabled devices are discovered but unconfigured.
	Disabled State = iota
	// Configured devices have groups defined but are not accepting work.
	Configured
	// Enabled devices accept descriptor submission.
	Enabled
)

// String returns the sysfs-style state name.
func (s State) String() string {
	switch s {
	case Configured:
		return "configured"
	case Enabled:
		return "enabled"
	default:
		return "disabled"
	}
}

// Registry is the driver's device inventory, the analog of
// /sys/bus/dsa/devices.
type Registry struct {
	e    *sim.Engine
	sys  *mem.System
	devs map[string]*Entry
}

// Entry pairs a device with its driver state and the WQ name index.
type Entry struct {
	Dev   *dsa.Device
	State State
	wqs   map[string]*dsa.WQ
}

// NewRegistry creates an empty registry for the platform.
func NewRegistry(e *sim.Engine, sys *mem.System) *Registry {
	return &Registry{e: e, sys: sys, devs: make(map[string]*Entry)}
}

// Discover registers a new unconfigured device with the SPR default
// resources (as device probe does) and returns it.
func (r *Registry) Discover(name string, socket int) (*Entry, error) {
	if _, ok := r.devs[name]; ok {
		return nil, fmt.Errorf("idxd: device %q already registered", name)
	}
	ent := &Entry{
		Dev: dsa.New(r.e, r.sys, dsa.DefaultConfig(name, socket)),
		wqs: make(map[string]*dsa.WQ),
	}
	r.devs[name] = ent
	return ent, nil
}

// Adopt registers an externally constructed device (custom Config).
func (r *Registry) Adopt(dev *dsa.Device) (*Entry, error) {
	name := dev.Cfg.Name
	if _, ok := r.devs[name]; ok {
		return nil, fmt.Errorf("idxd: device %q already registered", name)
	}
	ent := &Entry{Dev: dev, wqs: make(map[string]*dsa.WQ)}
	r.devs[name] = ent
	return ent, nil
}

// Get returns the entry for a device name.
func (r *Registry) Get(name string) (*Entry, error) {
	ent, ok := r.devs[name]
	if !ok {
		return nil, fmt.Errorf("idxd: no device %q", name)
	}
	return ent, nil
}

// Names lists registered device names in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.devs))
	for n := range r.devs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Configure applies spec to the named device. The device must be Disabled.
func (r *Registry) Configure(spec DeviceSpec) error {
	ent, err := r.Get(spec.Name)
	if err != nil {
		return err
	}
	if ent.State != Disabled {
		return fmt.Errorf("idxd: %s is %v; disable before reconfiguring", spec.Name, ent.State)
	}
	for gi, gs := range spec.Groups {
		gc := dsa.GroupConfig{Engines: gs.Engines, ReadBufs: gs.ReadBufs, ExpressBufs: gs.ExpressBufs}
		for _, ws := range gs.WQs {
			mode := dsa.Dedicated
			switch ws.Mode {
			case "dedicated", "":
				mode = dsa.Dedicated
			case "shared":
				mode = dsa.Shared
			default:
				return fmt.Errorf("idxd: group %d: unknown WQ mode %q", gi, ws.Mode)
			}
			gc.WQs = append(gc.WQs, dsa.WQConfig{Mode: mode, Size: ws.Size, Priority: ws.Priority})
		}
		g, err := ent.Dev.AddGroup(gc)
		if err != nil {
			return fmt.Errorf("idxd: group %d: %w", gi, err)
		}
		for wi, ws := range gs.WQs {
			name := ws.Name
			if name == "" {
				name = fmt.Sprintf("%s/wq%d.%d", spec.Name, gi, wi)
			}
			if _, dup := ent.wqs[name]; dup {
				return fmt.Errorf("idxd: duplicate WQ name %q", name)
			}
			ent.wqs[name] = g.WQs[wi]
		}
	}
	ent.State = Configured
	return nil
}

// ConfigureJSON parses an accel-config-style JSON document (an array of
// device specs) and applies every spec.
func (r *Registry) ConfigureJSON(data []byte) error {
	var specs []DeviceSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return fmt.Errorf("idxd: parsing config: %w", err)
	}
	for _, s := range specs {
		if err := r.Configure(s); err != nil {
			return err
		}
	}
	return nil
}

// Enable transitions a configured device to Enabled.
func (r *Registry) Enable(name string) error {
	ent, err := r.Get(name)
	if err != nil {
		return err
	}
	if ent.State != Configured {
		return fmt.Errorf("idxd: %s is %v, want configured", name, ent.State)
	}
	if err := ent.Dev.Enable(); err != nil {
		return err
	}
	ent.State = Enabled
	return nil
}

// OpenWQ returns the named WQ for client use — the analog of opening the WQ
// char device and mmapping its portal. The device must be enabled.
func (r *Registry) OpenWQ(device, wq string) (*dsa.WQ, error) {
	ent, err := r.Get(device)
	if err != nil {
		return nil, err
	}
	if ent.State != Enabled {
		return nil, fmt.Errorf("idxd: %s is %v, not enabled", device, ent.State)
	}
	w, ok := ent.wqs[wq]
	if !ok {
		return nil, fmt.Errorf("idxd: no WQ %q on %s", wq, device)
	}
	return w, nil
}

// WQNames lists the configured WQ names of a device in sorted order.
func (r *Registry) WQNames(device string) ([]string, error) {
	ent, err := r.Get(device)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ent.wqs))
	for n := range ent.wqs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// EnabledWQs returns every WQ of every enabled device, in device-name order
// — what DML's device discovery iterates.
func (r *Registry) EnabledWQs() []*dsa.WQ {
	var out []*dsa.WQ
	for _, name := range r.Names() {
		ent := r.devs[name]
		if ent.State != Enabled {
			continue
		}
		wqn, _ := r.WQNames(name)
		for _, w := range wqn {
			out = append(out, ent.wqs[w])
		}
	}
	return out
}

// DefaultSpec returns the configuration the paper's microbenchmarks use: one
// group with all four engines and one 32-entry dedicated WQ (§4.1, G6).
func DefaultSpec(name string) DeviceSpec {
	return DeviceSpec{
		Name: name,
		Groups: []GroupSpec{{
			Engines: 4,
			WQs:     []WQSpec{{Mode: "dedicated", Size: 32}},
		}},
	}
}
