package cachesim

import (
	"testing"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

func testSystem(e *sim.Engine) *mem.System {
	return mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
}

// fourSWQs builds the paper's CacheLib DSA setup: four groups, each one
// shared WQ and one engine.
func fourSWQs(t *testing.T, e *sim.Engine, sys *mem.System) []*dsa.WQ {
	t.Helper()
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	for i := 0; i < 4; i++ {
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines: 1,
			WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 16}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	return dev.WQs()
}

func TestCacheLRUSemantics(t *testing.T) {
	e := sim.New()
	sys := testSystem(e)
	as := mem.NewAddressSpace(1)
	c := NewCache(as, sys.Node(0), 1<<20)

	a := c.Allocate(1, 256<<10)
	copy(a.Bytes(), []byte("itemA"))
	c.Allocate(2, 256<<10)
	c.Allocate(3, 256<<10)
	c.Allocate(4, 256<<10) // cache now full
	if _, _, ok := c.Find(1); !ok {
		t.Fatal("item 1 missing before overflow")
	}
	c.Allocate(5, 256<<10) // evicts LRU = 2 (1 was just touched)
	if _, _, ok := c.Find(2); ok {
		t.Fatal("LRU item 2 not evicted")
	}
	if _, _, ok := c.Find(1); !ok {
		t.Fatal("recently used item 1 evicted")
	}
	if c.Used() > 1<<20 {
		t.Fatalf("Used %d exceeds capacity", c.Used())
	}
	if c.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}

func TestCacheReplaceSameKey(t *testing.T) {
	e := sim.New()
	sys := testSystem(e)
	as := mem.NewAddressSpace(1)
	c := NewCache(as, sys.Node(0), 1<<20)
	c.Allocate(1, 1024)
	c.Allocate(1, 2048)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
	if c.Used() != 2048 {
		t.Fatalf("Used = %d, want 2048", c.Used())
	}
}

func TestBufferRecycling(t *testing.T) {
	e := sim.New()
	sys := testSystem(e)
	as := mem.NewAddressSpace(1)
	c := NewCache(as, sys.Node(0), 4096)
	b1 := c.Allocate(1, 1000) // class 1024
	c.Allocate(2, 4000)       // evicts 1
	b3 := c.Allocate(3, 900)  // class 1024: must reuse b1's buffer
	if b1 != b3 {
		t.Fatal("slab class did not recycle evicted buffer")
	}
}

func TestSizeDistributionMatchesPaper(t *testing.T) {
	g := NewSizeGen(1)
	var big, total int64
	var bigBytes, allBytes int64
	for i := 0; i < 200000; i++ {
		s := g.Next()
		total++
		allBytes += s
		if s >= 8<<10 {
			big++
			bigBytes += s
		}
	}
	bigFrac := float64(big) / float64(total)
	if bigFrac < 0.040 || bigFrac > 0.056 {
		t.Fatalf("big-op fraction = %.3f, want ≈0.048", bigFrac)
	}
	byteFrac := float64(bigBytes) / float64(allBytes)
	if byteFrac < 0.55 {
		t.Fatalf("big ops carry %.2f of bytes, want the dominant share", byteFrac)
	}
}

func TestRunCPUBaseline(t *testing.T) {
	e := sim.New()
	sys := testSystem(e)
	res, err := Run(e, sys, sys.Node(0), cpu.SPRModel(), Config{
		HWCores: 2, Threads: 2, OpsPerThd: 400,
		CacheSize: 32 << 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GetRate <= 0 || res.SetRate <= 0 {
		t.Fatalf("rates = %+v", res)
	}
	if res.Corrupt != 0 {
		t.Fatalf("%d corrupted items", res.Corrupt)
	}
	if res.Verified == 0 {
		t.Fatal("no items verified")
	}
}

func TestDSARaisesRateAndCutsTail(t *testing.T) {
	// Fig 19: offloading the big copies raises op rate and slashes tail
	// latency for moderate core counts.
	run := func(useDSA bool) Result {
		e := sim.New()
		sys := testSystem(e)
		cfg := Config{
			HWCores: 4, Threads: 4, OpsPerThd: 600,
			CacheSize: 64 << 20, Seed: 99,
		}
		if useDSA {
			cfg.WQs = fourSWQs(t, e, sys)
		}
		res, err := Run(e, sys, sys.Node(0), cpu.SPRModel(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cpuRes := run(false)
	dsaRes := run(true)
	if dsaRes.GetRate <= cpuRes.GetRate {
		t.Fatalf("DSA get rate %.0f should beat CPU %.0f", dsaRes.GetRate, cpuRes.GetRate)
	}
	if dsaRes.AllocTail >= cpuRes.AllocTail {
		t.Fatalf("DSA alloc tail %v should be below CPU %v", dsaRes.AllocTail, cpuRes.AllocTail)
	}
	if dsaRes.Corrupt != 0 {
		t.Fatalf("corruption with DSA path: %d", dsaRes.Corrupt)
	}
}

func TestOversubscriptionLowersPerThreadRate(t *testing.T) {
	run := func(threads int) Result {
		e := sim.New()
		sys := testSystem(e)
		res, err := Run(e, sys, sys.Node(0), cpu.SPRModel(), Config{
			HWCores: 2, Threads: threads, OpsPerThd: 300,
			CacheSize: 32 << 20, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	matched := run(2)
	oversub := run(8)
	// Total op rate should not scale 4× when threads quadruple over the
	// same two cores. (Get/set mix shifts as the cache warms, so compare
	// the combined rate.)
	m := matched.GetRate + matched.SetRate
	o := oversub.GetRate + oversub.SetRate
	if o > 1.5*m {
		t.Fatalf("oversubscribed rate %.0f vs matched %.0f: time-sharing not modelled", o, m)
	}
}
