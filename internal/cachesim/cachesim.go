// Package cachesim reimplements the paper's CacheLib/CacheBench case study
// (Appendix B, Fig 19): an LRU item cache whose get/set paths perform real
// memory copies of a bimodal size distribution, driven by a configurable
// number of software threads over a configurable number of hardware cores.
// Copies at or above the DTO threshold (8 KB) are offloaded to DSA through
// four shared work queues; the paper's measured distribution — ~4.8% of
// memcpy() calls are ≥8 KB but carry ~96.4% of the bytes — is reproduced by
// the size generator.
package cachesim

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/dto"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// Cache is a byte-capacity LRU item cache in simulated memory.
type Cache struct {
	as       *mem.AddressSpace
	node     *mem.Node
	capacity int64
	used     int64
	items    map[uint64]*list.Element
	lru      *list.List              // front = most recent
	pool     map[int64][]*mem.Buffer // recycled buffers by power-of-two class

	Hits, Misses, Evictions int64
}

// classOf rounds size up to its power-of-two allocation class (CacheLib's
// slab-class analog).
func classOf(size int64) int64 {
	c := int64(64)
	for c < size {
		c <<= 1
	}
	return c
}

type entry struct {
	key  uint64
	buf  *mem.Buffer
	size int64
}

// NewCache creates a cache of the given byte capacity.
func NewCache(as *mem.AddressSpace, node *mem.Node, capacity int64) *Cache {
	return &Cache{
		as: as, node: node, capacity: capacity,
		items: make(map[uint64]*list.Element),
		lru:   list.New(),
		pool:  make(map[int64][]*mem.Buffer),
	}
}

// Used returns the bytes currently stored.
func (c *Cache) Used() int64 { return c.used }

// Len returns the number of items.
func (c *Cache) Len() int { return len(c.items) }

// Find returns the item's buffer and size, promoting it in LRU order.
func (c *Cache) Find(key uint64) (*mem.Buffer, int64, bool) {
	el, ok := c.items[key]
	if !ok {
		c.Misses++
		return nil, 0, false
	}
	c.Hits++
	c.lru.MoveToFront(el)
	en := el.Value.(*entry)
	return en.buf, en.size, true
}

// Allocate inserts (or replaces) an item of the given size, evicting LRU
// items as needed, and returns its buffer. Backing buffers are recycled
// through power-of-two slab classes, as CacheLib's allocator does.
func (c *Cache) Allocate(key uint64, size int64) *mem.Buffer {
	if el, ok := c.items[key]; ok {
		c.lru.Remove(el)
		c.release(el.Value.(*entry))
		delete(c.items, key)
	}
	for c.used+size > c.capacity && c.lru.Len() > 0 {
		back := c.lru.Back()
		en := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.items, en.key)
		c.release(en)
		c.Evictions++
	}
	class := classOf(size)
	var buf *mem.Buffer
	if free := c.pool[class]; len(free) > 0 {
		buf = free[len(free)-1]
		c.pool[class] = free[:len(free)-1]
	} else {
		buf = c.as.Alloc(class, mem.OnNode(c.node))
	}
	en := &entry{key: key, buf: buf, size: size}
	c.items[key] = c.lru.PushFront(en)
	c.used += size
	return buf
}

// release returns an entry's buffer to its slab class.
func (c *Cache) release(en *entry) {
	c.used -= en.size
	class := classOf(en.size)
	c.pool[class] = append(c.pool[class], en.buf)
}

// SizeGen draws item sizes from the paper's bimodal distribution.
type SizeGen struct {
	r *sim.Rand
	// BigFrac is the fraction of operations with sizes ≥ 8 KB (paper:
	// 0.048, carrying 96.4% of copied bytes).
	BigFrac float64
}

// NewSizeGen seeds a generator with the paper's distribution.
func NewSizeGen(seed uint64) *SizeGen {
	return &SizeGen{r: sim.NewRand(seed), BigFrac: 0.048}
}

// Next draws one item size.
func (g *SizeGen) Next() int64 {
	if g.r.Float64() < g.BigFrac {
		// 8 KB .. 136 KB; mean ≈ 72 KB.
		return 8<<10 + g.r.Int63n(128<<10)
	}
	// 64 B .. 4 KB; mean ≈ 2 KB.
	return 64 + g.r.Int63n(4<<10-64)
}

// Config drives one benchmark run (one bar group in Fig 19).
type Config struct {
	HWCores   int // h: hardware cores available
	Threads   int // s: software threads
	OpsPerThd int
	CacheSize int64
	KeySpace  int
	GetRatio  float64 // fraction of ops that are gets
	Seed      uint64

	// UseDSA routes ≥8 KB copies through DTO over the given WQs (the
	// paper's four shared WQs); nil WQs means CPU-only.
	WQs []*dsa.WQ

	// LookupCost and InsertCost are the cache bookkeeping CPU costs per
	// operation (hash, LRU, allocator).
	LookupCost time.Duration
	InsertCost time.Duration
}

// Result reports rates and tail latencies (Fig 19's four panels).
type Result struct {
	GetRate   float64       // gets per second
	SetRate   float64       // sets per second
	FindTail  time.Duration // highest-percentile find() latency observed
	AllocTail time.Duration // highest-percentile allocate() latency observed
	Verified  int64         // items whose content check passed
	Corrupt   int64
}

// Run executes the benchmark on engine e over system sys, with items and
// scratch buffers on node.
func Run(e *sim.Engine, sys *mem.System, node *mem.Node, model cpu.Model, cfg Config) (Result, error) {
	if cfg.HWCores <= 0 || cfg.Threads <= 0 {
		return Result{}, fmt.Errorf("cachesim: cores and threads must be positive")
	}
	if cfg.LookupCost == 0 {
		cfg.LookupCost = 250 * time.Nanosecond
	}
	if cfg.InsertCost == 0 {
		cfg.InsertCost = 400 * time.Nanosecond
	}
	if cfg.GetRatio == 0 {
		cfg.GetRatio = 0.8
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 4096
	}
	as := mem.NewAddressSpace(100)
	cache := NewCache(as, node, cfg.CacheSize)

	// One offload service fronts the shared WQs for every thread; each
	// thread is a tenant sharing the process address space.
	var svc *offload.Service
	if len(cfg.WQs) > 0 {
		var err error
		svc, err = offload.NewService(e, sys, cfg.WQs, offload.WithCPUModel(model))
		if err != nil {
			return Result{}, err
		}
	}

	// Oversubscription: s threads time-share h cores; CPU time inflates
	// by s/h when s > h. DSA wait time does not (the device runs
	// regardless of core scheduling).
	inflate := 1.0
	if cfg.Threads > cfg.HWCores {
		inflate = float64(cfg.Threads) / float64(cfg.HWCores)
	}

	res := Result{}
	var gets, sets int64
	var findLat, allocLat []time.Duration
	var endTime sim.Time
	var runErr error

	for th := 0; th < cfg.Threads; th++ {
		th := th
		core := cpu.NewCore(th, 0, sys, as, model)
		var inter *dto.Interposer
		if svc != nil {
			tn, err := svc.NewTenant(offload.SharedSpace(as), offload.OnCore(core))
			if err != nil {
				return Result{}, err
			}
			inter = dto.New(tn)
		}
		scratch := as.Alloc(144<<10, mem.OnNode(node))
		sizes := NewSizeGen(cfg.Seed + uint64(th)*7919)
		keys := sim.NewRand(cfg.Seed + uint64(th)*104729 + 1)

		e.Go(fmt.Sprintf("cachethread%d", th), func(p *sim.Proc) {
			chargedSleep := func(d time.Duration) {
				d = time.Duration(float64(d) * inflate)
				p.Sleep(d)
				core.ChargeBusy(d)
			}
			memcpy := func(dst, src mem.Addr, n int64) error {
				if inter != nil {
					return inter.Memcpy(p, dst, src, n)
				}
				dur, err := core.Memcpy(dst, src, n)
				if err != nil {
					return err
				}
				p.Sleep(time.Duration(float64(dur) * inflate))
				return nil
			}
			set := func(key uint64, size int64) error {
				start := p.Now()
				chargedSleep(cfg.InsertCost)
				// Stage the new value in scratch, stamp it, then copy
				// into the cache item (allocate() + payload copy).
				binary.LittleEndian.PutUint64(scratch.Bytes(), key)
				buf := cache.Allocate(key, size)
				if err := memcpy(buf.Addr(0), scratch.Addr(0), size); err != nil {
					return err
				}
				sets++
				allocLat = append(allocLat, p.Now()-start)
				return nil
			}
			for i := 0; i < cfg.OpsPerThd; i++ {
				key := uint64(keys.Intn(cfg.KeySpace))
				if keys.Float64() < cfg.GetRatio {
					start := p.Now()
					chargedSleep(cfg.LookupCost)
					buf, size, ok := cache.Find(key)
					if ok {
						if err := memcpy(scratch.Addr(0), buf.Addr(0), size); err != nil {
							runErr = err
							return
						}
						if binary.LittleEndian.Uint64(scratch.Bytes()) == key {
							res.Verified++
						} else {
							res.Corrupt++
						}
						gets++
						findLat = append(findLat, p.Now()-start)
					} else if err := set(key, sizes.Next()); err != nil {
						runErr = err
						return
					}
				} else if err := set(key, sizes.Next()); err != nil {
					runErr = err
					return
				}
			}
			if p.Now() > endTime {
				endTime = p.Now()
			}
		})
	}
	e.Run()
	if runErr != nil {
		return Result{}, runErr
	}
	if endTime > 0 {
		secs := float64(endTime) / 1e9
		res.GetRate = float64(gets) / secs
		res.SetRate = float64(sets) / secs
	}
	res.FindTail = tail(findLat, 0.99999)
	res.AllocTail = tail(allocLat, 0.99999)
	return res, nil
}

// tail returns the q-quantile of samples (or the max when too few samples
// exist to resolve q).
func tail(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(len(samples)))
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}
