package mem

import (
	"fmt"
	"sort"
)

// LLC models the shared last-level cache of one socket at occupancy
// granularity: it tracks how many bytes each owner (a core, a process, or
// the DDIO partition used by I/O agents) holds, evicting proportionally from
// other owners when capacity is exceeded. This is the level of detail Figs
// 12/13 require — who occupies the cache and by how much — without
// simulating individual lines.
type LLC struct {
	capacity int64
	ways     int
	ddioWays int

	occ   map[string]int64
	total int64

	// evictions counts bytes evicted per victim owner, for telemetry.
	evictions map[string]int64
}

// LLCConfig sizes an LLC.
type LLCConfig struct {
	Capacity int64 // bytes
	Ways     int   // total ways (SPR: 15)
	DDIOWays int   // ways available to DDIO / cache-control writes (default 2)
}

// NewLLC builds an LLC from cfg.
func NewLLC(cfg LLCConfig) *LLC {
	if cfg.Capacity <= 0 {
		panic("mem: LLC capacity must be positive")
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 15
	}
	if cfg.DDIOWays <= 0 {
		cfg.DDIOWays = 2
	}
	if cfg.DDIOWays > cfg.Ways {
		panic(fmt.Sprintf("mem: DDIO ways %d exceed total ways %d", cfg.DDIOWays, cfg.Ways))
	}
	return &LLC{
		capacity:  cfg.Capacity,
		ways:      cfg.Ways,
		ddioWays:  cfg.DDIOWays,
		occ:       make(map[string]int64),
		evictions: make(map[string]int64),
	}
}

// Capacity returns the LLC size in bytes.
func (c *LLC) Capacity() int64 { return c.capacity }

// DDIOCapacity returns the bytes available to DDIO-steered writes.
func (c *LLC) DDIOCapacity() int64 {
	return c.capacity / int64(c.ways) * int64(c.ddioWays)
}

// SetDDIOWays reconfigures the DDIO partition (the §6.2 tuning knob).
func (c *LLC) SetDDIOWays(n int) {
	if n <= 0 || n > c.ways {
		panic(fmt.Sprintf("mem: invalid DDIO ways %d", n))
	}
	c.ddioWays = n
}

// Insert allocates n bytes in the cache on behalf of owner, evicting
// proportionally from all owners if the cache overflows. It returns the
// bytes evicted from owners other than the inserter (the pollution damage).
func (c *LLC) Insert(owner string, n int64) int64 {
	if n <= 0 {
		return 0
	}
	c.occ[owner] += n
	c.total += n
	return c.shrinkTo(c.capacity, owner)
}

// InsertDDIO allocates n bytes via the DDIO partition: the owner's DDIO
// footprint is capped at the partition size, so streaming writes cannot
// displace more than the DDIO ways (the §4.5 non-pollution property). It
// returns the bytes that overflowed ("leaked") past the partition to memory.
func (c *LLC) InsertDDIO(owner string, n int64) (leaked int64) {
	if n <= 0 {
		return 0
	}
	cap := c.DDIOCapacity()
	cur := c.occ[owner]
	fit := cap - cur
	if fit <= 0 {
		return n
	}
	if fit > n {
		fit = n
	}
	c.occ[owner] += fit
	c.total += fit
	c.shrinkTo(c.capacity, owner)
	return n - fit
}

// Evict removes up to n bytes owned by owner (as a cache-flush or natural
// invalidation would) and returns the bytes actually removed.
func (c *LLC) Evict(owner string, n int64) int64 {
	cur := c.occ[owner]
	if n > cur {
		n = cur
	}
	c.occ[owner] = cur - n
	c.total -= n
	if c.occ[owner] == 0 {
		delete(c.occ, owner)
	}
	return n
}

// Occupancy returns the bytes currently held by owner.
func (c *LLC) Occupancy(owner string) int64 { return c.occ[owner] }

// Total returns the total occupied bytes.
func (c *LLC) Total() int64 { return c.total }

// Evicted returns cumulative bytes evicted from owner by other inserters.
func (c *LLC) Evicted(owner string) int64 { return c.evictions[owner] }

// Owners returns the current owners sorted by name (deterministic order for
// reports).
func (c *LLC) Owners() []string {
	names := make([]string, 0, len(c.occ))
	for k := range c.occ {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// shrinkTo evicts proportionally from owners other than inserter until total
// occupancy fits in limit; if the inserter alone exceeds the limit it is
// trimmed too. Returns bytes evicted from others.
func (c *LLC) shrinkTo(limit int64, inserter string) int64 {
	if c.total <= limit {
		return 0
	}
	excess := c.total - limit
	othersTotal := c.total - c.occ[inserter]
	var victims int64
	if othersTotal > 0 {
		names := c.Owners()
		for _, name := range names {
			if name == inserter {
				continue
			}
			share := float64(c.occ[name]) / float64(othersTotal)
			take := int64(share * float64(excess))
			if take > c.occ[name] {
				take = c.occ[name]
			}
			c.occ[name] -= take
			c.total -= take
			c.evictions[name] += take
			victims += take
			if c.occ[name] == 0 {
				delete(c.occ, name)
			}
		}
	}
	// Rounding or a dominant inserter can leave residual excess: trim it.
	if c.total > limit {
		over := c.total - limit
		c.occ[inserter] -= over
		c.total -= over
		c.evictions[inserter] += over
		if c.occ[inserter] <= 0 {
			delete(c.occ, inserter)
		}
	}
	return victims
}
