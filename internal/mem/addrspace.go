package mem

import (
	"fmt"
	"sort"
)

// Addr is a virtual address in a shared-virtual-memory address space.
type Addr uint64

// Page sizes supported by the address space (Fig 8 sweeps these).
const (
	Page4K int64 = 4 << 10
	Page2M int64 = 2 << 20
	Page1G int64 = 1 << 30
)

// AddressSpace is one process's shared virtual address space (one PASID).
// Both CPU cores and the DSA device dereference the same addresses, which is
// the property SVM provides on real hardware (§3.2, F1). Buffers are backed
// by real byte slices so operations are functionally verifiable.
type AddressSpace struct {
	PASID   int
	regions []*Buffer // sorted by base address
	next    Addr
}

// NewAddressSpace creates an empty address space with the given PASID.
func NewAddressSpace(pasid int) *AddressSpace {
	return &AddressSpace{PASID: pasid, next: 0x10_0000_0000}
}

// Buffer is a virtually contiguous allocation.
type Buffer struct {
	Base     Addr
	Size     int64
	Node     *Node // home NUMA node of the backing pages
	PageSize int64

	// CacheResident marks the buffer as warm in the LLC, used to model
	// source/destination placement in Fig 15. It affects timing only.
	CacheResident bool

	data    []byte
	present []bool // per page; false pages fault on device access
	as      *AddressSpace
}

// AllocOption customizes Alloc.
type AllocOption func(*allocCfg)

type allocCfg struct {
	pageSize int64
	node     *Node
	lazy     bool
}

// OnNode homes the buffer's pages on node n. The default is the address
// space's first-touched node, or nil (timing queries then panic, keeping
// purely functional tests independent of topology).
func OnNode(n *Node) AllocOption { return func(c *allocCfg) { c.node = n } }

// WithPageSize backs the buffer with the given page size (Page4K, Page2M,
// Page1G).
func WithPageSize(ps int64) AllocOption { return func(c *allocCfg) { c.pageSize = ps } }

// Lazy leaves the buffer's pages unmapped: the first device access faults
// (exercising block-on-fault or partial completion), while CPU access maps
// pages on touch.
func Lazy() AllocOption { return func(c *allocCfg) { c.lazy = true } }

// Alloc reserves size bytes of virtual address space and returns the buffer.
func (as *AddressSpace) Alloc(size int64, opts ...AllocOption) *Buffer {
	if size <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	cfg := allocCfg{pageSize: Page4K}
	for _, o := range opts {
		o(&cfg)
	}
	base := align(as.next, Addr(cfg.pageSize))
	npages := (size + cfg.pageSize - 1) / cfg.pageSize
	b := &Buffer{
		Base:     base,
		Size:     size,
		Node:     cfg.node,
		PageSize: cfg.pageSize,
		data:     make([]byte, size),
		present:  make([]bool, npages),
		as:       as,
	}
	if !cfg.lazy {
		for i := range b.present {
			b.present[i] = true
		}
	}
	as.next = base + Addr(npages*cfg.pageSize)
	as.regions = append(as.regions, b)
	sort.Slice(as.regions, func(i, j int) bool { return as.regions[i].Base < as.regions[j].Base })
	return b
}

func align(a, to Addr) Addr {
	if to == 0 {
		return a
	}
	return (a + to - 1) / to * to
}

// NodeAt returns the home NUMA node of the buffer containing addr, or nil
// when addr is unmapped or the buffer was allocated without placement. It
// is the submission hot path's data-home lookup — called once or twice per
// descriptor — so it is allocation-free: a manual binary search instead of
// Lookup's error-wrapping path.
func (as *AddressSpace) NodeAt(addr Addr) *Node {
	lo, hi := 0, len(as.regions)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		r := as.regions[mid]
		if addr >= r.Base+Addr(r.Size) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(as.regions) || addr < as.regions[lo].Base {
		return nil
	}
	return as.regions[lo].Node
}

// Lookup resolves addr to its containing buffer and the offset within it.
func (as *AddressSpace) Lookup(addr Addr) (*Buffer, int64, error) {
	i := sort.Search(len(as.regions), func(i int) bool {
		r := as.regions[i]
		return addr < r.Base+Addr(r.Size)
	})
	if i == len(as.regions) || addr < as.regions[i].Base {
		return nil, 0, fmt.Errorf("mem: address %#x not mapped in PASID %d", addr, as.PASID)
	}
	return as.regions[i], int64(addr - as.regions[i].Base), nil
}

// Bytes exposes the buffer's backing storage. Mutating it mutates simulated
// memory directly (useful for initializing workloads).
func (b *Buffer) Bytes() []byte { return b.data }

// Addr returns the virtual address of byte offset off within the buffer.
func (b *Buffer) Addr(off int64) Addr {
	if off < 0 || off > b.Size {
		panic(fmt.Sprintf("mem: offset %d outside buffer of %d bytes", off, b.Size))
	}
	return b.Base + Addr(off)
}

// Slice returns the backing bytes in [off, off+n).
func (b *Buffer) Slice(off, n int64) []byte { return b.data[off : off+n] }

// PresentAt reports whether the page containing buffer offset off is mapped.
func (b *Buffer) PresentAt(off int64) bool { return b.present[off/b.PageSize] }

// TouchAll maps every page of the buffer (resolving any pending faults).
func (b *Buffer) TouchAll() {
	for i := range b.present {
		b.present[i] = true
	}
}

// PageFaultError reports a device access to an unmapped page. The faulting
// address lets the OS model resolve exactly that page.
type PageFaultError struct {
	Addr  Addr
	PASID int
}

// Error implements error.
func (e *PageFaultError) Error() string {
	return fmt.Sprintf("mem: page fault at %#x (PASID %d)", e.Addr, e.PASID)
}

// CheckMapped verifies that every page backing [addr, addr+n) is present,
// returning a PageFaultError for the first unmapped page. Device reads and
// writes call this before moving data.
func (as *AddressSpace) CheckMapped(addr Addr, n int64) error {
	if n == 0 {
		return nil
	}
	b, off, err := as.Lookup(addr)
	if err != nil {
		return err
	}
	if off+n > b.Size {
		return fmt.Errorf("mem: access [%#x,+%d) overruns buffer end", addr, n)
	}
	for p := off / b.PageSize; p <= (off+n-1)/b.PageSize; p++ {
		if !b.present[p] {
			return &PageFaultError{Addr: b.Base + Addr(p*b.PageSize), PASID: as.PASID}
		}
	}
	return nil
}

// ResolveFault maps the page containing addr, as the OS page-fault handler
// would.
func (as *AddressSpace) ResolveFault(addr Addr) error {
	b, off, err := as.Lookup(addr)
	if err != nil {
		return err
	}
	b.present[off/b.PageSize] = true
	return nil
}

// Read copies n bytes at addr into p (functional data path). It does not
// check page presence: callers model faults via CheckMapped first.
func (as *AddressSpace) Read(addr Addr, p []byte) error {
	b, off, err := as.Lookup(addr)
	if err != nil {
		return err
	}
	if off+int64(len(p)) > b.Size {
		return fmt.Errorf("mem: read [%#x,+%d) overruns buffer end", addr, len(p))
	}
	copy(p, b.data[off:])
	return nil
}

// Write copies p into memory at addr.
func (as *AddressSpace) Write(addr Addr, p []byte) error {
	b, off, err := as.Lookup(addr)
	if err != nil {
		return err
	}
	if off+int64(len(p)) > b.Size {
		return fmt.Errorf("mem: write [%#x,+%d) overruns buffer end", addr, len(p))
	}
	copy(b.data[off:], p)
	return nil
}

// View returns a zero-copy window onto the n bytes at addr, erroring if the
// range spans buffers or overruns. Device operations use View to avoid
// double-copying payloads.
func (as *AddressSpace) View(addr Addr, n int64) ([]byte, error) {
	b, off, err := as.Lookup(addr)
	if err != nil {
		return nil, err
	}
	if off+n > b.Size {
		return nil, fmt.Errorf("mem: view [%#x,+%d) overruns buffer end", addr, n)
	}
	return b.data[off : off+n], nil
}
