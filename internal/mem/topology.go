package mem

import (
	"fmt"
	"time"

	"dsasim/internal/sim"
)

// System is the platform memory topology: sockets, NUMA nodes, the UPI
// cross-socket interconnect, and per-socket LLCs. A System also owns the
// IOMMU used for device-side address translation.
type System struct {
	E       *sim.Engine
	Sockets []*Socket
	Nodes   []*Node
	IOMMU   *IOMMU

	// UPILat is the added latency for one cross-socket hop.
	UPILat time.Duration
	// upi is the shared cross-socket bandwidth pipe (one per direction is
	// not modelled; contention is symmetric in our experiments).
	upi *sim.Pipe
	// upiGBps records the configured link rate, exposed to placement
	// policies that price a cross-socket detour (load-aware G4).
	upiGBps float64
}

// UPIGBps returns the configured cross-socket link rate (zero when no UPI
// pipe is modelled).
func (s *System) UPIGBps() float64 { return s.upiGBps }

// Socket groups the resources of one physical package.
type Socket struct {
	ID    int
	LLC   *LLC
	Nodes []*Node // nodes homed to this socket (DRAM first, then CXL if any)
}

// SystemConfig describes a platform to construct.
type SystemConfig struct {
	Sockets  int
	LLC      LLCConfig
	UPILat   time.Duration
	UPIGBps  float64
	IOMMU    IOMMUConfig
	NodeDefs []NodeConfig
}

// NewSystem builds a System from cfg on engine e.
func NewSystem(e *sim.Engine, cfg SystemConfig) *System {
	if cfg.Sockets <= 0 {
		panic("mem: system needs at least one socket")
	}
	s := &System{
		E:      e,
		UPILat: cfg.UPILat,
		IOMMU:  NewIOMMU(e, cfg.IOMMU),
	}
	if cfg.UPIGBps > 0 {
		s.upi = sim.NewPipe(e, cfg.UPIGBps)
		s.upiGBps = cfg.UPIGBps
	}
	for i := 0; i < cfg.Sockets; i++ {
		s.Sockets = append(s.Sockets, &Socket{ID: i, LLC: NewLLC(cfg.LLC)})
	}
	for _, nc := range cfg.NodeDefs {
		s.AddNode(nc)
	}
	return s
}

// AddNode creates a node from nc, registers it, and returns it.
func (s *System) AddNode(nc NodeConfig) *Node {
	if nc.Socket < 0 || nc.Socket >= len(s.Sockets) {
		panic(fmt.Sprintf("mem: node socket %d out of range", nc.Socket))
	}
	n := &Node{
		ID:        len(s.Nodes),
		Socket:    nc.Socket,
		Kind:      nc.Kind,
		ReadLat:   nc.ReadLat,
		WriteLat:  nc.WriteLat,
		readGBps:  nc.ReadGBps,
		writeGBps: nc.WriteGBps,
		read:      sim.NewPipe(s.E, nc.ReadGBps),
		write:     sim.NewPipe(s.E, nc.WriteGBps),
	}
	s.Nodes = append(s.Nodes, n)
	sock := s.Sockets[nc.Socket]
	sock.Nodes = append(sock.Nodes, n)
	return n
}

// Node returns the node with the given ID.
func (s *System) Node(id int) *Node {
	if id < 0 || id >= len(s.Nodes) {
		panic(fmt.Sprintf("mem: no node %d", id))
	}
	return s.Nodes[id]
}

// AccessLat returns the idle first-word latency for an agent on socket
// fromSocket reading (write=false) or writing (write=true) memory on node n,
// including the UPI hop when the node is remote.
func (s *System) AccessLat(fromSocket int, n *Node, write bool) time.Duration {
	lat := n.ReadLat
	if write {
		lat = n.WriteLat
	}
	if n.Socket != fromSocket {
		lat += s.UPILat
	}
	return lat
}

// ReserveTraffic books read or write traffic on node n from an agent on
// fromSocket, routing through the UPI pipe when crossing sockets. It returns
// the completion instant of the transfer under current contention.
func (s *System) ReserveTraffic(fromSocket int, n *Node, bytes int64, write bool) sim.Time {
	return s.ReserveTrafficAt(s.E.Now(), fromSocket, n, bytes, write)
}

// ReserveTrafficAt is ReserveTraffic with an explicit earliest start instant,
// for agents (such as the DSA engines) that book traffic for a transfer
// starting later in their pipeline.
func (s *System) ReserveTrafficAt(t sim.Time, fromSocket int, n *Node, bytes int64, write bool) sim.Time {
	var done sim.Time
	if write {
		done = n.ReserveWriteAt(t, bytes)
	} else {
		done = n.ReserveReadAt(t, bytes)
	}
	if n.Socket != fromSocket && s.upi != nil {
		upiDone := s.upi.ReserveAt(t, bytes)
		if upiDone > done {
			done = upiDone
		}
	}
	return done
}

// HomeNode returns the memory node an agent on the given socket is
// closest to: the socket's first DRAM node, its first node of any medium,
// or — for a socket with no memory (or out of range) — the system's first
// node. Returns nil only on a node-less system.
func (s *System) HomeNode(socket int) *Node {
	if socket >= 0 && socket < len(s.Sockets) {
		for _, n := range s.Sockets[socket].Nodes {
			if n.Kind == DRAM {
				return n
			}
		}
		if nodes := s.Sockets[socket].Nodes; len(nodes) > 0 {
			return nodes[0]
		}
	}
	if len(s.Nodes) > 0 {
		return s.Nodes[0]
	}
	return nil
}

// SocketOf returns the socket structure with the given ID.
func (s *System) SocketOf(id int) *Socket {
	if id < 0 || id >= len(s.Sockets) {
		panic(fmt.Sprintf("mem: no socket %d", id))
	}
	return s.Sockets[id]
}
