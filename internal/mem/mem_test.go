package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dsasim/internal/sim"
)

func testSystem(e *sim.Engine) *System {
	return NewSystem(e, SystemConfig{
		Sockets: 2,
		LLC:     LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []NodeConfig{
			{Socket: 0, Kind: DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 0, Kind: CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
		},
	})
}

func TestAllocAndRoundTrip(t *testing.T) {
	as := NewAddressSpace(1)
	b := as.Alloc(4096)
	msg := []byte("hello, dsa")
	if err := as.Write(b.Addr(100), msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(b.Addr(100), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q, want %q", got, msg)
	}
}

func TestNodeAtResolvesHomeNode(t *testing.T) {
	e := sim.New()
	sys := testSystem(e)
	as := NewAddressSpace(1)
	dram := as.Alloc(8192, OnNode(sys.Node(1)))
	cxl := as.Alloc(4096, OnNode(sys.Node(2)))
	bare := as.Alloc(4096) // no placement
	if n := as.NodeAt(dram.Addr(0)); n != sys.Node(1) {
		t.Fatalf("NodeAt(dram base) = %v, want node 1", n)
	}
	if n := as.NodeAt(dram.Addr(8191)); n != sys.Node(1) {
		t.Fatalf("NodeAt(dram last byte) = %v, want node 1", n)
	}
	if n := as.NodeAt(cxl.Addr(100)); n != sys.Node(2) {
		t.Fatalf("NodeAt(cxl) = %v, want node 2", n)
	}
	if n := as.NodeAt(bare.Addr(0)); n != nil {
		t.Fatalf("NodeAt(unplaced buffer) = %v, want nil", n)
	}
	if n := as.NodeAt(Addr(0x10)); n != nil {
		t.Fatalf("NodeAt(unmapped) = %v, want nil", n)
	}
}

func TestNodeAtZeroAllocs(t *testing.T) {
	e := sim.New()
	sys := testSystem(e)
	as := NewAddressSpace(1)
	var addrs []Addr
	for i := 0; i < 16; i++ {
		addrs = append(addrs, as.Alloc(4096, OnNode(sys.Node(i%3))).Addr(1))
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, a := range addrs {
			if as.NodeAt(a) == nil {
				t.Fatal("mapped address resolved to nil node")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("NodeAt allocated %.1f times per run, want 0", allocs)
	}
}

func TestNodeBandwidthAccessors(t *testing.T) {
	e := sim.New()
	sys := testSystem(e)
	if got := sys.Node(0).WriteGBps(); got != 75 {
		t.Fatalf("DRAM WriteGBps = %v, want 75", got)
	}
	if got := sys.Node(2).ReadGBps(); got != 16 {
		t.Fatalf("CXL ReadGBps = %v, want 16", got)
	}
}

func TestLookupUnmappedFails(t *testing.T) {
	as := NewAddressSpace(1)
	as.Alloc(4096)
	if _, _, err := as.Lookup(Addr(0x10)); err == nil {
		t.Fatal("Lookup of unmapped address succeeded")
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	as := NewAddressSpace(1)
	var bufs []*Buffer
	sizes := []int64{1, 4095, 4096, 4097, 1 << 20, 3}
	for _, sz := range sizes {
		bufs = append(bufs, as.Alloc(sz))
	}
	for i, a := range bufs {
		for j, b := range bufs {
			if i == j {
				continue
			}
			if a.Base < b.Base+Addr(b.Size) && b.Base < a.Base+Addr(a.Size) {
				t.Fatalf("buffers %d and %d overlap", i, j)
			}
		}
	}
}

func TestAllocRespectsPageAlignment(t *testing.T) {
	as := NewAddressSpace(1)
	b := as.Alloc(100, WithPageSize(Page2M))
	if uint64(b.Base)%uint64(Page2M) != 0 {
		t.Fatalf("2M buffer base %#x not 2M-aligned", b.Base)
	}
	b2 := as.Alloc(100, WithPageSize(Page1G))
	if uint64(b2.Base)%uint64(Page1G) != 0 {
		t.Fatalf("1G buffer base %#x not 1G-aligned", b2.Base)
	}
}

func TestCrossBufferAccessRejected(t *testing.T) {
	as := NewAddressSpace(1)
	b := as.Alloc(4096)
	if err := as.Write(b.Addr(4090), make([]byte, 100)); err == nil {
		t.Fatal("overrunning write succeeded")
	}
	if _, err := as.View(b.Addr(0), 8192); err == nil {
		t.Fatal("overrunning view succeeded")
	}
}

func TestLazyBufferFaultsForDevice(t *testing.T) {
	as := NewAddressSpace(7)
	b := as.Alloc(3*Page4K, Lazy())
	err := as.CheckMapped(b.Addr(0), b.Size)
	var pf *PageFaultError
	if !errors.As(err, &pf) {
		t.Fatalf("CheckMapped = %v, want PageFaultError", err)
	}
	if pf.PASID != 7 {
		t.Fatalf("fault PASID = %d, want 7", pf.PASID)
	}
	if err := as.ResolveFault(pf.Addr); err != nil {
		t.Fatal(err)
	}
	// Next fault is the second page.
	err = as.CheckMapped(b.Addr(0), b.Size)
	if !errors.As(err, &pf) {
		t.Fatalf("second CheckMapped = %v, want PageFaultError", err)
	}
	if pf.Addr != b.Addr(Page4K) {
		t.Fatalf("second fault at %#x, want %#x", pf.Addr, b.Addr(Page4K))
	}
	b.TouchAll()
	if err := as.CheckMapped(b.Addr(0), b.Size); err != nil {
		t.Fatalf("CheckMapped after TouchAll = %v", err)
	}
}

func TestViewAliasesBackingStore(t *testing.T) {
	as := NewAddressSpace(1)
	b := as.Alloc(64)
	v, err := as.View(b.Addr(8), 8)
	if err != nil {
		t.Fatal(err)
	}
	v[0] = 0xAB
	if b.Bytes()[8] != 0xAB {
		t.Fatal("View did not alias backing store")
	}
}

func TestReadWriteRoundTripQuick(t *testing.T) {
	as := NewAddressSpace(1)
	b := as.Alloc(1 << 16)
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		o := int64(off) % (b.Size - int64(len(payload)))
		if o < 0 {
			o = 0
		}
		if err := as.Write(b.Addr(o), payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := as.Read(b.Addr(o), got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemAccessLatency(t *testing.T) {
	e := sim.New()
	s := testSystem(e)
	local := s.Node(0)
	remote := s.Node(1)
	cxl := s.Node(2)
	if got := s.AccessLat(0, local, false); got != 110*time.Nanosecond {
		t.Fatalf("local read lat = %v", got)
	}
	if got := s.AccessLat(0, remote, false); got != 180*time.Nanosecond {
		t.Fatalf("remote read lat = %v, want 180ns", got)
	}
	if got := s.AccessLat(0, cxl, true); got != 400*time.Nanosecond {
		t.Fatalf("CXL write lat = %v, want 400ns", got)
	}
	if s.AccessLat(0, cxl, true) <= s.AccessLat(0, cxl, false) {
		t.Fatal("CXL writes must be slower than reads (Fig 6b asymmetry)")
	}
}

func TestRemoteTrafficBoundByUPI(t *testing.T) {
	e := sim.New()
	s := testSystem(e)
	remote := s.Node(1)
	// 62 GB/s UPI < 120 GB/s node read: UPI must dominate.
	done := s.ReserveTraffic(0, remote, 62_000_000, false) // 1ms at 62 GB/s
	if done < 990*time.Microsecond || done > 1010*time.Microsecond {
		t.Fatalf("remote transfer done at %v, want ~1ms (UPI bound)", done)
	}
}

func TestLocalTrafficBoundByNode(t *testing.T) {
	e := sim.New()
	s := testSystem(e)
	local := s.Node(0)
	done := s.ReserveTraffic(0, local, 120_000_000, false) // 1ms at 120 GB/s
	if done < 990*time.Microsecond || done > 1010*time.Microsecond {
		t.Fatalf("local transfer done at %v, want ~1ms", done)
	}
}

func TestLLCInsertAndEviction(t *testing.T) {
	c := NewLLC(LLCConfig{Capacity: 1000, Ways: 10, DDIOWays: 2})
	c.Insert("a", 600)
	c.Insert("b", 300)
	if c.Total() != 900 {
		t.Fatalf("Total = %d, want 900", c.Total())
	}
	evicted := c.Insert("b", 400) // overflows by 300, evicted from a
	if evicted == 0 {
		t.Fatal("overflow evicted nothing from other owners")
	}
	if c.Total() > 1000 {
		t.Fatalf("Total = %d exceeds capacity", c.Total())
	}
	if c.Occupancy("a") >= 600 {
		t.Fatalf("a's occupancy %d not reduced by pollution", c.Occupancy("a"))
	}
}

func TestLLCDDIOPartitionCapsStreamingWrites(t *testing.T) {
	c := NewLLC(LLCConfig{Capacity: 1500, Ways: 15, DDIOWays: 2}) // DDIO = 200
	c.Insert("app", 1200)
	leaked := c.InsertDDIO("dsa", 10_000)
	if got := c.Occupancy("dsa"); got != 200 {
		t.Fatalf("DDIO occupancy = %d, want 200 (partition cap)", got)
	}
	if leaked != 9800 {
		t.Fatalf("leaked = %d, want 9800", leaked)
	}
	// The app keeps nearly all of its footprint: only the DDIO share is at risk.
	if c.Occupancy("app") < 1200-200 {
		t.Fatalf("app occupancy %d, DDIO displaced too much", c.Occupancy("app"))
	}
}

func TestLLCEvictExplicit(t *testing.T) {
	c := NewLLC(LLCConfig{Capacity: 1000, Ways: 10, DDIOWays: 2})
	c.Insert("a", 500)
	if got := c.Evict("a", 200); got != 200 {
		t.Fatalf("Evict = %d, want 200", got)
	}
	if got := c.Evict("a", 1000); got != 300 {
		t.Fatalf("Evict clamped = %d, want 300", got)
	}
	if c.Total() != 0 {
		t.Fatalf("Total = %d, want 0", c.Total())
	}
}

func TestLLCInvariantNeverExceedsCapacity(t *testing.T) {
	c := NewLLC(LLCConfig{Capacity: 4096, Ways: 16, DDIOWays: 2})
	r := sim.NewRand(42)
	owners := []string{"a", "b", "c", "d"}
	for i := 0; i < 5000; i++ {
		o := owners[r.Intn(len(owners))]
		switch r.Intn(3) {
		case 0:
			c.Insert(o, int64(r.Intn(1000)+1))
		case 1:
			c.InsertDDIO(o, int64(r.Intn(1000)+1))
		case 2:
			c.Evict(o, int64(r.Intn(500)))
		}
		if c.Total() > c.Capacity() {
			t.Fatalf("iteration %d: total %d exceeds capacity %d", i, c.Total(), c.Capacity())
		}
		var sum int64
		for _, name := range c.Owners() {
			occ := c.Occupancy(name)
			if occ < 0 {
				t.Fatalf("iteration %d: negative occupancy for %s", i, name)
			}
			sum += occ
		}
		if sum != c.Total() {
			t.Fatalf("iteration %d: owner sum %d != total %d", i, sum, c.Total())
		}
	}
}

func TestIOMMUCounters(t *testing.T) {
	e := sim.New()
	m := NewIOMMU(e, IOMMUConfig{})
	if m.WalkLat() <= 0 || m.FaultLat() <= 0 {
		t.Fatal("default latencies must be positive")
	}
	if m.FaultLat() <= m.WalkLat() {
		t.Fatal("fault handling must cost more than a walk")
	}
	if m.Walks() != 2 || m.Faults() != 2 {
		t.Fatalf("counters = %d walks, %d faults; want 2, 2", m.Walks(), m.Faults())
	}
}

func TestDDIOCapacityScalesWithWays(t *testing.T) {
	c := NewLLC(LLCConfig{Capacity: 15000, Ways: 15, DDIOWays: 2})
	if got := c.DDIOCapacity(); got != 2000 {
		t.Fatalf("DDIOCapacity = %d, want 2000", got)
	}
	c.SetDDIOWays(4)
	if got := c.DDIOCapacity(); got != 4000 {
		t.Fatalf("after SetDDIOWays(4) = %d, want 4000", got)
	}
}
