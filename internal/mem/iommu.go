package mem

import (
	"time"

	"dsasim/internal/sim"
)

// IOMMU models the SoC IOMMU the DSA's address translation cache falls back
// to: translation requests either hit recently used mappings or pay a page
// walk, and accesses to unmapped pages raise faults that the OS resolves
// after a handling delay (§3.2: the ATC "interacts with the IOMMU on the
// SoC"; §4.3 motivates multiple PEs with "lengthy page fault handling").
type IOMMU struct {
	e   *sim.Engine
	cfg IOMMUConfig

	walks  int64
	faults int64
}

// IOMMUConfig holds the translation timing parameters.
type IOMMUConfig struct {
	// WalkLat is the page-table walk latency on an ATC miss.
	WalkLat time.Duration
	// FaultLat is the OS page-fault resolution latency (device blocked
	// when the descriptor sets block-on-fault).
	FaultLat time.Duration
}

// NewIOMMU builds an IOMMU with cfg, applying defaults for zero fields.
func NewIOMMU(e *sim.Engine, cfg IOMMUConfig) *IOMMU {
	if cfg.WalkLat == 0 {
		cfg.WalkLat = 200 * time.Nanosecond
	}
	if cfg.FaultLat == 0 {
		cfg.FaultLat = 20 * time.Microsecond
	}
	return &IOMMU{e: e, cfg: cfg}
}

// WalkLat returns the page-walk latency and counts the walk.
func (m *IOMMU) WalkLat() time.Duration {
	m.walks++
	return m.cfg.WalkLat
}

// FaultLat returns the fault-resolution latency and counts the fault.
func (m *IOMMU) FaultLat() time.Duration {
	m.faults++
	return m.cfg.FaultLat
}

// Walks returns the cumulative number of page walks served.
func (m *IOMMU) Walks() int64 { return m.walks }

// Faults returns the cumulative number of page faults handled.
func (m *IOMMU) Faults() int64 { return m.faults }
