// Package mem models the memory system of the evaluated platforms: the
// shared-virtual-memory address space applications and the DSA device both
// operate on, NUMA nodes of different mediums (local DRAM, remote-socket
// DRAM behind UPI, CXL-attached memory), the shared last-level cache with
// its DDIO partition, and the IOMMU used for device address translation.
//
// Functional state (real bytes) and timing state (latency/bandwidth) are
// kept together: every buffer is backed by real memory so operations are
// verifiable, while access-time queries feed the event simulation.
package mem

import (
	"fmt"
	"time"

	"dsasim/internal/sim"
)

// Kind classifies the medium backing a NUMA node.
type Kind int

const (
	// DRAM is conventional direct-attached DDR memory.
	DRAM Kind = iota
	// CXL is memory attached over a CXL.mem link (exposed as a CPU-less
	// NUMA node, as on Sapphire Rapids with an Agilex-I card).
	CXL
)

// String returns the medium name.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case CXL:
		return "CXL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one NUMA node: a pool of physical memory with a fixed medium,
// latency profile, and bandwidth pipes shared by every agent in the system.
type Node struct {
	ID     int
	Socket int
	Kind   Kind

	// ReadLat and WriteLat are idle access latencies observed by a local
	// agent (first-word latency, before bandwidth serialization).
	ReadLat  time.Duration
	WriteLat time.Duration

	// readGBps and writeGBps record the configured pipe rates, exposed to
	// placement policies that compare media (DRAM vs CXL write speed, G4).
	readGBps  float64
	writeGBps float64

	// read and write are the node's bandwidth pipes. Reads and writes use
	// separate pipes: CXL memory in particular has asymmetric read/write
	// bandwidth (Fig 6b), and DRAM write traffic competes with reads only
	// past the controller, which separate pipes approximate well.
	read  *sim.Pipe
	write *sim.Pipe
}

// NodeConfig describes a node to be added to a System.
type NodeConfig struct {
	Socket    int
	Kind      Kind
	ReadLat   time.Duration
	WriteLat  time.Duration
	ReadGBps  float64
	WriteGBps float64
}

// ReadGBps returns the node's configured read bandwidth.
func (n *Node) ReadGBps() float64 { return n.readGBps }

// WriteGBps returns the node's configured write bandwidth.
func (n *Node) WriteGBps() float64 { return n.writeGBps }

// ReserveRead books n bytes of read traffic at the node and returns the
// completion instant under current contention.
func (n *Node) ReserveRead(bytes int64) sim.Time { return n.read.Reserve(bytes) }

// ReserveWrite books n bytes of write traffic at the node.
func (n *Node) ReserveWrite(bytes int64) sim.Time { return n.write.Reserve(bytes) }

// ReserveReadAt books read traffic starting no earlier than t.
func (n *Node) ReserveReadAt(t sim.Time, bytes int64) sim.Time { return n.read.ReserveAt(t, bytes) }

// ReserveWriteAt books write traffic starting no earlier than t.
func (n *Node) ReserveWriteAt(t sim.Time, bytes int64) sim.Time { return n.write.ReserveAt(t, bytes) }

// ReadBacklog reports how far in the future the read pipe is booked.
func (n *Node) ReadBacklog() sim.Time { return n.read.Backlog() }

// WriteBacklog reports how far in the future the write pipe is booked.
func (n *Node) WriteBacklog() sim.Time { return n.write.Backlog() }

// ReadBytes returns cumulative read traffic served by the node.
func (n *Node) ReadBytes() int64 { return n.read.BytesMoved() }

// WriteBytes returns cumulative write traffic served by the node.
func (n *Node) WriteBytes() int64 { return n.write.BytesMoved() }
