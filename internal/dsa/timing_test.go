package dsa

import (
	"testing"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// asyncThroughput drives count copies of size bytes through wq with a
// client-side window of qd outstanding descriptors and returns GB/s.
func asyncThroughput(t *testing.T, r *rig, wq *WQ, src, dst *mem.Buffer, size int64, count, qd int, flags Flags) float64 {
	t.Helper()
	cl := NewClient(wq, nil)
	var elapsed sim.Time
	r.e.Go("bench", func(p *sim.Proc) {
		start := p.Now()
		var window []*Completion
		for i := 0; i < count; i++ {
			cl.Prepare(p)
			comp, err := cl.Submit(p, Descriptor{
				Op: OpMemmove, Flags: flags, PASID: 1,
				Src: src.Addr(0), Dst: dst.Addr(0), Size: size,
			})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			window = append(window, comp)
			if len(window) >= qd {
				window[0].Wait(p)
				window = window[1:]
			}
		}
		for _, c := range window {
			c.Wait(p)
		}
		elapsed = p.Now() - start
	})
	r.e.Run()
	return sim.Rate(size*int64(count), elapsed)
}

// syncLatency measures the average full sync-offload latency (prepare +
// submit + wait) over count iterations.
func syncLatency(t *testing.T, r *rig, size int64, count int) sim.Time {
	t.Helper()
	src := r.alloc(size)
	dst := r.alloc(size)
	wq := r.dev.WQs()[0]
	cl := NewClient(wq, nil)
	var total sim.Time
	r.e.Go("bench", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			start := p.Now()
			if _, err := cl.RunSync(p, Descriptor{
				Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: size,
			}, Poll); err != nil {
				t.Error(err)
				return
			}
			total += p.Now() - start
		}
	})
	r.e.Run()
	return total / sim.Time(count)
}

func TestSyncLatency4KBAnchor(t *testing.T) {
	r := newRig(t)
	lat := syncLatency(t, r, 4096, 50)
	// Calibration anchor: low-single-digit µs for a 4 KB sync offload
	// (Figs 5/6a), around the CPU's ~1.3 µs crossover.
	if lat < 500*time.Nanosecond || lat > 2*time.Microsecond {
		t.Fatalf("4KB sync latency = %v, want ~0.5–2µs", lat)
	}
}

func TestSyncCrossoverNear4KB(t *testing.T) {
	// Below ~4 KB the CPU wins synchronously; above, DSA wins (Fig 2a).
	r := newRig(t)
	as2 := r.as
	core := cpu.NewCore(0, 0, r.sys, as2, cpu.SPRModel())

	cpuTime := func(size int64) sim.Time {
		s := r.alloc(size)
		d := r.alloc(size)
		dur, err := core.Memcpy(d.Addr(0), s.Addr(0), size)
		if err != nil {
			t.Fatal(err)
		}
		return dur
	}
	small := syncLatency(t, r, 256, 20)
	if cpu256 := cpuTime(256); small <= cpu256 {
		t.Fatalf("DSA sync 256B (%v) should lose to CPU (%v)", small, cpu256)
	}
	big := syncLatency(t, r, 16384, 20)
	if cpu16k := cpuTime(16384); big >= cpu16k {
		t.Fatalf("DSA sync 16KB (%v) should beat CPU (%v)", big, cpu16k)
	}
}

func TestAsyncSaturatesFabric(t *testing.T) {
	r := newRig(t)
	size := int64(64 << 10)
	src := r.alloc(size)
	dst := r.alloc(size)
	got := asyncThroughput(t, r, r.dev.WQs()[0], src, dst, size, 200, 32, 0)
	if got < 25 || got > 30.5 {
		t.Fatalf("async 64KB throughput = %.1f GB/s, want ~30 (fabric limit)", got)
	}
}

func TestAsyncSmallTransfersSubmissionBound(t *testing.T) {
	r := newRig(t)
	src := r.alloc(256)
	dst := r.alloc(256)
	got := asyncThroughput(t, r, r.dev.WQs()[0], src, dst, 256, 500, 32, 0)
	if got < 1.5 || got > 6 {
		t.Fatalf("async 256B throughput = %.1f GB/s, want ~2.5–3 (submission bound)", got)
	}
}

func TestDeeperWindowRaisesThroughput(t *testing.T) {
	// Fig 4: more in-flight descriptors hide per-descriptor latency.
	size := int64(4096)
	r1 := newRig(t)
	s1, d1 := r1.alloc(size), r1.alloc(size)
	qd1 := asyncThroughput(t, r1, r1.dev.WQs()[0], s1, d1, size, 200, 1, 0)
	r2 := newRig(t)
	s2, d2 := r2.alloc(size), r2.alloc(size)
	qd32 := asyncThroughput(t, r2, r2.dev.WQs()[0], s2, d2, size, 200, 32, 0)
	if qd32 < 3*qd1 {
		t.Fatalf("QD32 (%.1f) should be ≥3× QD1 (%.1f) at 4KB", qd32, qd1)
	}
}

func TestBatchingBoostsSyncSmallTransfers(t *testing.T) {
	// Fig 3: synchronous 256B offloads gain enormously from batching.
	size := int64(256)
	bs := 64

	r1 := newRig(t)
	seq := syncLatency(t, r1, size, bs) * sim.Time(bs) // bs sequential syncs

	r2 := newRig(t)
	src := r2.alloc(size * int64(bs))
	dst := r2.alloc(size * int64(bs))
	var subs []Descriptor
	for i := 0; i < bs; i++ {
		subs = append(subs, Descriptor{
			Op: OpMemmove, Src: src.Addr(int64(i) * size), Dst: dst.Addr(int64(i) * size), Size: size,
		})
	}
	cl := NewClient(r2.dev.WQs()[0], nil)
	var batched sim.Time
	r2.e.Go("bench", func(p *sim.Proc) {
		start := p.Now()
		if _, err := cl.RunSync(p, Descriptor{Op: OpBatch, PASID: 1, Descs: subs}, Poll); err != nil {
			t.Error(err)
			return
		}
		batched = p.Now() - start
	})
	r2.e.Run()
	if batched*4 >= seq {
		t.Fatalf("batched 64×256B (%v) should be ≥4× faster than sequential (%v)", batched, seq)
	}
}

func TestPEScalingForSmallBatchedTransfers(t *testing.T) {
	// Fig 7: more engines per group raise small-transfer batch throughput.
	run := func(engines int) float64 {
		r := newRig(t, GroupConfig{Engines: engines, WQs: []WQConfig{{Mode: Dedicated, Size: 32}}})
		size := int64(256)
		bs := 64
		src := r.alloc(size * int64(bs))
		dst := r.alloc(size * int64(bs))
		var subs []Descriptor
		for i := 0; i < bs; i++ {
			subs = append(subs, Descriptor{
				Op: OpMemmove, Src: src.Addr(int64(i) * size), Dst: dst.Addr(int64(i) * size), Size: size,
			})
		}
		cl := NewClient(r.dev.WQs()[0], nil)
		count := 30
		var elapsed sim.Time
		r.e.Go("bench", func(p *sim.Proc) {
			start := p.Now()
			var window []*Completion
			for i := 0; i < count; i++ {
				cl.Prepare(p)
				comp, err := cl.Submit(p, Descriptor{Op: OpBatch, PASID: 1, Descs: subs})
				if err != nil {
					t.Error(err)
					return
				}
				window = append(window, comp)
				if len(window) >= 8 {
					window[0].Wait(p)
					window = window[1:]
				}
			}
			for _, c := range window {
				c.Wait(p)
			}
			elapsed = p.Now() - start
		})
		r.e.Run()
		return sim.Rate(size*int64(bs)*int64(count), elapsed)
	}
	one := run(1)
	four := run(4)
	if four < 2*one {
		t.Fatalf("4 PEs (%.1f GB/s) should be ≥2× 1 PE (%.1f GB/s) for 256B batches", four, one)
	}
}

func TestSWQSlowerThanDWQSingleThread(t *testing.T) {
	// Fig 9: ENQCMD's non-posted round trip makes a single-thread SWQ
	// slower than a DWQ at small/medium sizes.
	size := int64(1024)
	rd := newRig(t, GroupConfig{Engines: 1, WQs: []WQConfig{{Mode: Dedicated, Size: 32}}})
	sd, dd := rd.alloc(size), rd.alloc(size)
	dwq := asyncThroughput(t, rd, rd.dev.WQs()[0], sd, dd, size, 300, 32, 0)

	rs := newRig(t, GroupConfig{Engines: 1, WQs: []WQConfig{{Mode: Shared, Size: 32}}})
	ss, ds := rs.alloc(size), rs.alloc(size)
	swq := asyncThroughput(t, rs, rs.dev.WQs()[0], ss, ds, size, 300, 32, 0)
	if swq >= dwq {
		t.Fatalf("SWQ (%.1f GB/s) should be slower than DWQ (%.1f GB/s) for one thread", swq, dwq)
	}
}

func TestSWQRetriesWhenFull(t *testing.T) {
	r := newRig(t, GroupConfig{Engines: 1, WQs: []WQConfig{{Mode: Shared, Size: 2}}})
	size := int64(1 << 20) // long transfers keep the queue busy
	src, dst := r.alloc(size), r.alloc(size)
	_ = asyncThroughput(t, r, r.dev.WQs()[0], src, dst, size, 20, 16, 0)
	if r.dev.Stats().Retries == 0 {
		t.Fatal("flooding a 2-entry SWQ produced no ENQCMD retries")
	}
}

func TestWQPriorityLowersLatency(t *testing.T) {
	// §3.4 F3: higher-priority WQs are dispatched more frequently.
	r := newRig(t, GroupConfig{
		Engines: 1,
		WQs: []WQConfig{
			{Mode: Dedicated, Size: 32, Priority: 15},
			{Mode: Dedicated, Size: 32, Priority: 1},
		},
	})
	size := int64(32 << 10)
	srcH, dstH := r.alloc(size), r.alloc(size)
	srcL, dstL := r.alloc(size), r.alloc(size)
	wqs := r.dev.WQs()
	var hiLat, loLat sim.Time
	runLoad := func(wq *WQ, src, dst *mem.Buffer, lat *sim.Time, n int) {
		cl := NewClient(wq, nil)
		r.e.Go("load", func(p *sim.Proc) {
			var comps []*Completion
			for i := 0; i < n; i++ {
				cl.Prepare(p)
				c, err := cl.Submit(p, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: size})
				if err != nil {
					t.Error(err)
					return
				}
				comps = append(comps, c)
			}
			var total sim.Time
			for _, c := range comps {
				c.Wait(p)
				total += c.QueueTime()
			}
			*lat = total / sim.Time(n)
		})
	}
	runLoad(wqs[0], srcH, dstH, &hiLat, 30)
	runLoad(wqs[1], srcL, dstL, &loLat, 30)
	r.e.Run()
	if hiLat >= loLat {
		t.Fatalf("high-priority queue time (%v) should beat low-priority (%v)", hiLat, loLat)
	}
}

func TestReadBufferStarvationLimitsThroughput(t *testing.T) {
	// §3.4 F3: a group starved of read buffers cannot sustain fabric rate.
	run := func(bufs int) float64 {
		r := newRig(t, GroupConfig{Engines: 4, ReadBufs: bufs, WQs: []WQConfig{{Mode: Dedicated, Size: 32}}})
		size := int64(64 << 10)
		src, dst := r.alloc(size), r.alloc(size)
		return asyncThroughput(t, r, r.dev.WQs()[0], src, dst, size, 100, 32, 0)
	}
	full := run(96)
	starved := run(8) // 8 × 64B / 110ns ≈ 4.6 GB/s
	if starved >= full/3 {
		t.Fatalf("starved group (%.1f GB/s) should be well below full allocation (%.1f GB/s)", starved, full)
	}
}

func TestMultiDeviceScalesAggregate(t *testing.T) {
	// Fig 10: multiple DSA instances scale near-linearly at medium sizes.
	e := sim.New()
	sys := sprSystem(e)
	as := mem.NewAddressSpace(1)
	size := int64(16 << 10)
	mkDev := func(name string) *Device {
		dev := New(e, sys, DefaultConfig(name, 0))
		if _, err := dev.AddGroup(GroupConfig{Engines: 4, WQs: []WQConfig{{Mode: Dedicated, Size: 32}}}); err != nil {
			t.Fatal(err)
		}
		if err := dev.Enable(); err != nil {
			t.Fatal(err)
		}
		dev.BindPASID(as)
		return dev
	}
	run := func(n int) float64 {
		devs := make([]*Device, n)
		for i := range devs {
			devs[i] = mkDev("dsa" + string(rune('0'+i)))
		}
		count := 150
		begin := e.Now()
		var latest sim.Time
		for _, dev := range devs {
			dev := dev
			src := as.Alloc(size, mem.OnNode(sys.Node(0)))
			dst := as.Alloc(size, mem.OnNode(sys.Node(0)))
			cl := NewClient(dev.WQs()[0], nil)
			e.Go("bench", func(p *sim.Proc) {
				var window []*Completion
				for i := 0; i < count; i++ {
					cl.Prepare(p)
					c, err := cl.Submit(p, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: size})
					if err != nil {
						t.Error(err)
						return
					}
					window = append(window, c)
					if len(window) >= 32 {
						window[0].Wait(p)
						window = window[1:]
					}
				}
				for _, c := range window {
					c.Wait(p)
				}
				if p.Now() > latest {
					latest = p.Now()
				}
			})
		}
		e.Run()
		return sim.Rate(size*int64(count)*int64(n), latest-begin)
	}
	one := run(1)
	two := run(2)
	if two < 1.7*one {
		t.Fatalf("2 devices (%.1f GB/s) should be ≥1.7× one (%.1f GB/s)", two, one)
	}
}

func TestRemoteSocketThroughputClose(t *testing.T) {
	// Fig 6a: pipelining hides UPI latency; remote throughput ≈ local.
	size := int64(256 << 10)
	r1 := newRig(t)
	sL, dL := r1.alloc(size), r1.alloc(size)
	local := asyncThroughput(t, r1, r1.dev.WQs()[0], sL, dL, size, 100, 32, 0)

	r2 := newRig(t)
	remote := r2.sys.Node(1)
	sR := r2.as.Alloc(size, mem.OnNode(remote))
	dR := r2.as.Alloc(size, mem.OnNode(remote))
	rem := asyncThroughput(t, r2, r2.dev.WQs()[0], sR, dR, size, 100, 32, 0)
	if rem < 0.75*local {
		t.Fatalf("remote throughput %.1f too far below local %.1f", rem, local)
	}
}

func TestCXLWriteSlowerThanRead(t *testing.T) {
	// Fig 6b: DRAM→CXL (writes to CXL) is slower than CXL→DRAM.
	size := int64(256 << 10)
	r1 := newRig(t)
	cxl1 := r1.sys.Node(2)
	sD := r1.alloc(size)
	dC := r1.as.Alloc(size, mem.OnNode(cxl1))
	d2c := asyncThroughput(t, r1, r1.dev.WQs()[0], sD, dC, size, 60, 32, 0)

	r2 := newRig(t)
	cxl2 := r2.sys.Node(2)
	sC := r2.as.Alloc(size, mem.OnNode(cxl2))
	dD := r2.alloc(size)
	c2d := asyncThroughput(t, r2, r2.dev.WQs()[0], sC, dD, size, 60, 32, 0)
	if d2c >= c2d {
		t.Fatalf("DRAM→CXL (%.1f GB/s) should be slower than CXL→DRAM (%.1f GB/s)", d2c, c2d)
	}
}

func TestHugePagesNoThroughputEffect(t *testing.T) {
	// Fig 8: page size barely affects DSA throughput.
	run := func(ps int64) float64 {
		r := newRig(t)
		size := int64(256 << 10)
		src := r.as.Alloc(size, mem.OnNode(r.node), mem.WithPageSize(ps))
		dst := r.as.Alloc(size, mem.OnNode(r.node), mem.WithPageSize(ps))
		return asyncThroughput(t, r, r.dev.WQs()[0], src, dst, size, 80, 32, 0)
	}
	small := run(mem.Page4K)
	huge := run(mem.Page2M)
	giant := run(mem.Page1G)
	for _, v := range []float64{huge, giant} {
		ratio := v / small
		if ratio < 0.93 || ratio > 1.07 {
			t.Fatalf("huge-page throughput deviates: 4K=%.1f 2M=%.1f 1G=%.1f", small, huge, giant)
		}
	}
}

func TestCBDMAComparison(t *testing.T) {
	// §4.2: DSA delivers ≈2.1× CBDMA's throughput on average.
	size := int64(64 << 10)
	r := newRig(t)
	s1, d1 := r.alloc(size), r.alloc(size)
	dsaT := asyncThroughput(t, r, r.dev.WQs()[0], s1, d1, size, 100, 32, 0)

	e := sim.New()
	sys := sprSystem(e)
	cfg := DefaultConfig("cbdma0", 0)
	cfg.Timing = CBDMATiming()
	dev := New(e, sys, cfg)
	if _, err := dev.AddGroup(GroupConfig{Engines: 1, WQs: []WQConfig{{Mode: Dedicated, Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace(1)
	dev.BindPASID(as)
	r2 := &rig{e: e, sys: sys, dev: dev, as: as, node: sys.Node(0)}
	s2 := as.Alloc(size, mem.OnNode(sys.Node(0)))
	d2 := as.Alloc(size, mem.OnNode(sys.Node(0)))
	cbT := asyncThroughput(t, r2, dev.WQs()[0], s2, d2, size, 100, 32, 0)

	ratio := dsaT / cbT
	if ratio < 1.7 || ratio > 2.6 {
		t.Fatalf("DSA/CBDMA = %.2f (%.1f vs %.1f GB/s), want ≈2.1", ratio, dsaT, cbT)
	}
}

func TestUMWaitAccountsWaitCycles(t *testing.T) {
	// Fig 11: at 4KB+ most offload cycles sit in UMWAIT.
	r := newRig(t)
	core := cpu.NewCore(0, 0, r.sys, r.as, cpu.SPRModel())
	src := r.alloc(64 << 10)
	dst := r.alloc(64 << 10)
	cl := NewClient(r.dev.WQs()[0], core)
	r.e.Go("bench", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if _, err := cl.RunSync(p, Descriptor{
				Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 64 << 10,
			}, UMWait); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.e.Run()
	frac := float64(core.UMWaitTime()) / float64(core.UMWaitTime()+core.BusyTime())
	if frac < 0.6 {
		t.Fatalf("UMWAIT fraction = %.2f, want > 0.6 for 64KB offloads", frac)
	}
}
