package dsa

import (
	"time"
)

// Timing holds every device-side timing constant of the model. Each field
// notes the paper figure that pins it. The defaults reproduce the Sapphire
// Rapids DSA behaviour; tests assert the resulting anchors (sync crossover
// ~4 KB, async crossover ~256 B, 30 GB/s saturation).
type Timing struct {
	// SubmitMOVDIR64B is the core-side cost of a posted 64-byte portal
	// write to a dedicated WQ (§3.3). Cheap: the store retires without an
	// acknowledgement.
	SubmitMOVDIR64B time.Duration
	// SubmitENQCMD is the core-side cost of a non-posted ENQCMD to a
	// shared WQ, including the round trip that returns the retry status
	// (§3.3; the SWQ penalty visible in Fig 9 below 8 KB).
	SubmitENQCMD time.Duration
	// PortalHop is the on-die fabric latency from core to device portal
	// and back for the completion record (half each way); part of the
	// fixed offload overhead that makes small sync transfers lose to the
	// CPU in Fig 2a.
	PortalHop time.Duration
	// EngineSetup is the work-descriptor processing unit's per-descriptor
	// decode/dispatch occupancy for descriptors arriving from a WQ. It
	// bounds the descriptor rate of one PE.
	EngineSetup time.Duration
	// BatchSubDesc is the (pipelined) per-sub-descriptor issue cost when
	// the batch processing unit feeds an engine — cheaper than EngineSetup
	// because descriptors are fetched in bulk (§3.4 F2, Figs 3/9).
	BatchSubDesc time.Duration
	// ATCHit is the translation latency for a page cached in the device
	// ATC; the IOMMU walk cost on a miss comes from mem.IOMMU. Only the
	// pipeline-fill translation is exposed per descriptor: subsequent
	// pages overlap with data movement, which is why huge pages show no
	// throughput effect (Fig 8).
	ATCHit time.Duration
	// CRWrite is the completion-record write latency (always a DDIO write
	// into the LLC, §6.2).
	CRWrite time.Duration
	// PollGap is the software polling granularity when spinning on a
	// completion record.
	PollGap time.Duration
	// FabricGBps is the device's I/O fabric bandwidth: the 30 GB/s
	// saturation ceiling of Figs 3, 4, 9, 10.
	FabricGBps float64
	// ReadBufLine is the bytes one read buffer holds in flight (a cache
	// line). A group's sustainable read bandwidth is
	// ReadBufs × ReadBufLine / source-latency — Little's law; §3.4 F3.
	ReadBufLine int64
	// DescAlloc is the software descriptor+completion-record allocation
	// cost per allocation call; Fig 5 shows it dominating the naive
	// offload path before software amortizes it.
	DescAlloc time.Duration
	// DescAllocPer is the additional allocation cost per descriptor within
	// one allocation call (touching/zeroing each 64-byte slot).
	DescAllocPer time.Duration
	// DescPrepare is the software cost to fill in a pre-allocated
	// descriptor: "two writes", §4.2.
	DescPrepare time.Duration
	// IntrDeliver is the completion-interrupt delivery latency (MSI-X
	// through the APIC into the handler), and IntrHandler the kernel/user
	// handler cost — the §4.4 alternative to UMWAIT, with higher wake
	// latency but zero polling burn.
	IntrDeliver time.Duration
	IntrHandler time.Duration
	// IntrCoalesceTick is the granularity of the device's interrupt-
	// moderation timer — the hold-off counter production drivers program
	// per queue/vector. A Coalescer's time window rounds up to a whole
	// number of ticks, so software cannot request a tighter bound than
	// the moderation hardware resolves.
	IntrCoalesceTick time.Duration
	// RingPush is the software cost of publishing one prepared descriptor
	// into a WQ's lock-free submission ring (SubmitRing.TryPush): one CAS
	// on the shared tail plus a 64-byte slot write. It is the only point
	// where concurrent submitters to one ring serialize, and it is what a
	// sharded submission plane pays instead of the service mutex's hold
	// time.
	RingPush time.Duration
	// FaultReport is the device-side cost of detecting a page fault and
	// writing the partial completion record (block-on-fault clear). The
	// block-on-fault alternative pays the full OS resolve round trip
	// (IOMMU.FaultLat) instead — the §4.3 QoS hazard.
	FaultReport time.Duration
}

// DefaultTiming returns the Sapphire Rapids DSA calibration.
func DefaultTiming() Timing {
	return Timing{
		SubmitMOVDIR64B:  25 * time.Nanosecond,
		SubmitENQCMD:     400 * time.Nanosecond,
		PortalHop:        500 * time.Nanosecond,
		EngineSetup:      150 * time.Nanosecond,
		BatchSubDesc:     40 * time.Nanosecond,
		ATCHit:           5 * time.Nanosecond,
		CRWrite:          100 * time.Nanosecond,
		PollGap:          200 * time.Nanosecond,
		FabricGBps:       30,
		ReadBufLine:      64,
		DescAlloc:        12 * time.Microsecond,
		DescAllocPer:     200 * time.Nanosecond,
		DescPrepare:      60 * time.Nanosecond,
		IntrDeliver:      2 * time.Microsecond,
		IntrHandler:      600 * time.Nanosecond,
		IntrCoalesceTick: 500 * time.Nanosecond,
		RingPush:         15 * time.Nanosecond,
		FaultReport:      500 * time.Nanosecond,
	}
}

// CBDMATiming returns the Ice Lake CBDMA calibration: the predecessor's
// higher per-descriptor overhead and roughly 2.1× lower delivered copy
// throughput (§4.2 "Comparison with CBDMA").
func CBDMATiming() Timing {
	t := DefaultTiming()
	t.FabricGBps = 16 // large-transfer ratio ≈ 1.9; small-transfer overheads lift the average to ≈2.1 (§4.2)
	t.EngineSetup = 200 * time.Nanosecond
	t.PortalHop = 700 * time.Nanosecond // chipset-heritage ring+doorbell programming path
	t.BatchSubDesc = t.EngineSetup      // no batch processing unit
	return t
}

// trafficProfile describes the memory traffic of one operation as byte
// multiples of the transfer size: how much the device reads, how much it
// writes, and what the device fabric must carry (the larger of the two
// directions, which is what bounds delivered throughput at 30 GB/s).
type trafficProfile struct {
	read  float64
	write float64
}

// profileFor returns the traffic profile of op. Destination-size-changing
// ops (DIF insert/strip, delta) use their dominant stream sizes.
func profileFor(op OpType) trafficProfile {
	switch op {
	case OpMemmove, OpCopyCRC:
		return trafficProfile{1, 1}
	case OpFill:
		return trafficProfile{0, 1}
	case OpCompare, OpCreateDelta:
		return trafficProfile{2, 0} // two source streams
	case OpComparePattern, OpCRCGen, OpDIFCheck:
		return trafficProfile{1, 0}
	case OpApplyDelta:
		return trafficProfile{1, 1}
	case OpDualcast:
		return trafficProfile{1, 2}
	case OpDIFInsert, OpDIFStrip, OpDIFUpdate:
		return trafficProfile{1, 1}
	case OpNop, OpDrain, OpBatch, OpCacheFlush:
		return trafficProfile{0, 0}
	default:
		return trafficProfile{1, 1}
	}
}
