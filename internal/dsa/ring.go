package dsa

import (
	"fmt"
	"sync/atomic"
)

// SubmitRing is a bounded, lock-free, multi-producer single-consumer ring
// feeding one work queue's ENQCMD path. Submitting shards (one per core or
// goroutine) push prepared descriptors concurrently with a single CAS each;
// one drain context pops them in FIFO order and materializes each into the
// WQ. The ring replaces the service-wide mutex that used to serialize every
// submission: producers never share a cache line beyond the tail counter,
// so the software submission plane scales with submitter count instead of
// collapsing onto one lock (the BriskStream partition-the-hot-state
// observation applied to the offload front end).
//
// The implementation is the classic bounded MPMC sequence-number ring
// (Vyukov), restricted here to one consumer. Each slot carries a sequence
// word: a producer claims a slot by CAS-advancing the tail when the slot's
// sequence matches, writes the entry, then publishes by storing sequence =
// tail+1; the consumer reads when sequence = head+1 and releases by storing
// sequence = head+capacity. Entries hold descriptors by value so the
// steady-state push/pop path allocates nothing.
type SubmitRing struct {
	mask  uint64
	slots []ringSlot
	head  atomic.Uint64 // consumer cursor (single consumer)
	tail  atomic.Uint64 // producer cursor (CAS-advanced)
}

// RingEntry is one queued submission: the descriptor by value and an opaque
// tag the producer round-trips to the completion path (the submission
// plane stamps the submit instant so completion latency can be attributed
// without a per-operation closure).
type RingEntry struct {
	D   Descriptor
	Tag uint64
}

// ringSlot is one ring cell: its sequence word and the entry payload.
type ringSlot struct {
	seq atomic.Uint64
	e   RingEntry
}

// NewSubmitRing builds a ring with at least the given capacity, rounded up
// to a power of two (minimum 2) so index math is a mask.
func NewSubmitRing(capacity int) *SubmitRing {
	if capacity < 2 {
		capacity = 2
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &SubmitRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *SubmitRing) Cap() int { return len(r.slots) }

// Len returns the entries currently queued. It is a racy snapshot under
// concurrent producers — good enough for the load signal the submission
// plane's ring choice reads, never used for correctness.
func (r *SubmitRing) Len() int {
	n := int64(r.tail.Load()) - int64(r.head.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// TryPush enqueues one descriptor, returning false when the ring is full.
// Safe to call from many producers concurrently; allocation-free.
func (r *SubmitRing) TryPush(d Descriptor, tag uint64) bool {
	for {
		tail := r.tail.Load()
		slot := &r.slots[tail&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == tail:
			if r.tail.CompareAndSwap(tail, tail+1) {
				slot.e = RingEntry{D: d, Tag: tag}
				slot.seq.Store(tail + 1)
				return true
			}
		case seq < tail:
			// The slot has not been released by the consumer yet: full.
			return false
		default:
			// Another producer claimed this tail; reload and retry.
		}
	}
}

// Pop dequeues the oldest entry. Single consumer only: the drain context
// that owns the ring. Returns ok false when the ring is empty (or the
// oldest claimed slot is still being written — the consumer retries on its
// next pass rather than spinning on the producer).
func (r *SubmitRing) Pop() (RingEntry, bool) {
	head := r.head.Load()
	slot := &r.slots[head&r.mask]
	if slot.seq.Load() != head+1 {
		return RingEntry{}, false
	}
	e := slot.e
	slot.e = RingEntry{}
	slot.seq.Store(head + uint64(len(r.slots)))
	r.head.Store(head + 1)
	return e, true
}

// AttachRing creates and attaches a lock-free submission ring to this WQ
// (capacity rounded up to a power of two). Exactly one submission plane may
// own a WQ's ring — its drain context is the single consumer — so a second
// attach panics rather than silently corrupting the ring.
func (w *WQ) AttachRing(capacity int) *SubmitRing {
	if w.ring != nil {
		panic(fmt.Sprintf("dsa: wq %d of %s already has a submission ring", w.ID, w.Dev.Cfg.Name))
	}
	w.ring = NewSubmitRing(capacity)
	return w.ring
}

// Ring returns the WQ's attached submission ring, or nil.
func (w *WQ) Ring() *SubmitRing { return w.ring }

// DetachRing removes the WQ's submission ring so a later plane may attach
// its own (tenant churn retires planes with their tenants). The caller
// owns the single-consumer side and must have drained the ring first.
func (w *WQ) DetachRing() { w.ring = nil }

// ReattachRing re-installs a previously detached ring: the plane's drain
// failover detaches a dead WQ's ring and re-installs the same ring object
// when the queue heals, so lanes holding the ring pointer resume feeding
// it. Panics if a ring is already attached.
func (w *WQ) ReattachRing(r *SubmitRing) {
	if w.ring != nil {
		panic(fmt.Sprintf("dsa: wq %d of %s already has a submission ring", w.ID, w.Dev.Cfg.Name))
	}
	w.ring = r
}
