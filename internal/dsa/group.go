package dsa

import (
	"dsasim/internal/sim"
)

// Group is the basic operational unit of the device (§3.2): a set of WQs
// whose descriptors are dispatched by the group arbiter onto the group's
// engines, with WQ priorities providing QoS and read buffers bounding
// sustainable read bandwidth.
type Group struct {
	ID       int
	Dev      *Device
	WQs      []*WQ
	Engines  []*Engine
	ReadBufs int

	// readPipe caps the group's aggregate read bandwidth at
	// ReadBufs × line / local-DRAM-latency (Little's law over the read
	// buffers; §3.4 F3).
	readPipe *sim.Pipe

	// batchQ holds sub-descriptors fetched by the batch processing unit,
	// ready for any engine in the group.
	batchQ sim.FIFO[*work]

	// credits implement priority-weighted round-robin among WQs.
	credits []int
	rr      int

	// inflight tracks dispatched-but-incomplete works for Drain ordering.
	inflight int
	drainSig sim.Signal
}

// finalize computes derived state once the device is enabled.
func (g *Group) finalize() {
	t := g.Dev.Cfg.Timing
	// Sustainable read bandwidth from the allocated read buffers, assuming
	// local-DRAM fill latency. 96 bufs × 64 B / 110 ns ≈ 56 GB/s — above
	// the 30 GB/s fabric, so full allocations never bottleneck (§3.4 F3);
	// starving a group of buffers does.
	latNs := 110.0
	if len(g.Dev.Sys.Nodes) > 0 {
		latNs = float64(g.Dev.Sys.Nodes[0].ReadLat)
	}
	gbps := float64(g.ReadBufs) * float64(t.ReadBufLine) / latNs
	if gbps <= 0 {
		gbps = 0.5
	}
	g.readPipe = sim.NewPipe(g.Dev.E, gbps)
	g.credits = make([]int, len(g.WQs))
	g.refillCredits()
}

func (g *Group) refillCredits() {
	for i, wq := range g.WQs {
		g.credits[i] = wq.Priority
	}
}

// nextWork selects the next descriptor for dispatch: batch sub-descriptors
// first (they were already arbitrated when their parent was picked), then
// WQ heads by priority-weighted round-robin.
func (g *Group) nextWork() (*work, bool) {
	if wk, ok := g.batchQ.Pop(); ok {
		return wk, true
	}
	n := len(g.WQs)
	// Two passes: first honoring credits, then ignoring them (prevents
	// starvation when only zero-credit WQs are non-empty).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			idx := (g.rr + i) % n
			wq := g.WQs[idx]
			if wq.q.Len() == 0 {
				continue
			}
			if pass == 0 && g.credits[idx] <= 0 {
				continue
			}
			wk, _ := wq.q.Pop()
			wq.occupied--
			wq.sampleOcc()
			g.credits[idx]--
			g.rr = (idx + 1) % n
			if g.allCreditsSpent() {
				g.refillCredits()
			}
			return wk, true
		}
	}
	return nil, false
}

func (g *Group) allCreditsSpent() bool {
	for i, wq := range g.WQs {
		if wq.q.Len() > 0 && g.credits[i] > 0 {
			return false
		}
	}
	return true
}

// dispatch hands queued descriptors to free engines. It is scheduled as an
// event whenever a descriptor arrives or an engine frees up.
func (g *Group) dispatch() {
	for _, eng := range g.Engines {
		if eng.busy {
			continue
		}
		wk, ok := g.nextWork()
		if !ok {
			return
		}
		eng.execute(wk)
	}
}

// pending reports descriptors waiting in the group's queues.
func (g *Group) pending() int {
	n := g.batchQ.Len()
	for _, wq := range g.WQs {
		n += wq.q.Len()
	}
	return n
}
