package dsa

import (
	"dsasim/internal/sim"
)

// Group is the basic operational unit of the device (§3.2): a set of WQs
// whose descriptors are dispatched by the group arbiter onto the group's
// engines, with WQ priorities providing QoS and read buffers bounding
// sustainable read bandwidth.
type Group struct {
	ID          int
	Dev         *Device
	WQs         []*WQ
	Engines     []*Engine
	ReadBufs    int
	ExpressBufs int // read buffers reserved for the top-priority WQs

	// readPipe caps the group's aggregate read bandwidth at
	// ReadBufs × line / local-DRAM-latency (Little's law over the read
	// buffers; §3.4 F3). When ExpressBufs partitions the allocation,
	// readPipe carries only the bulk share and expressPipe the reserved
	// lane for top-priority WQ reads.
	readPipe    *sim.Pipe
	expressPipe *sim.Pipe
	topPrio     int // highest WQ priority in the group (express lane key)

	// batchQ holds sub-descriptors fetched by the batch processing unit,
	// ready for any engine in the group.
	batchQ sim.FIFO[*work]

	// credits implement priority-weighted round-robin among WQs.
	credits []int
	rr      int

	// inflight tracks dispatched-but-incomplete works for Drain ordering.
	inflight int
	drainSig sim.Signal
}

// finalize computes derived state once the device is enabled.
func (g *Group) finalize() {
	t := g.Dev.Cfg.Timing
	// Sustainable read bandwidth from the allocated read buffers, assuming
	// local-DRAM fill latency. 96 bufs × 64 B / 110 ns ≈ 56 GB/s — above
	// the 30 GB/s fabric, so full allocations never bottleneck (§3.4 F3);
	// starving a group of buffers does.
	latNs := 110.0
	if len(g.Dev.Sys.Nodes) > 0 {
		latNs = float64(g.Dev.Sys.Nodes[0].ReadLat)
	}
	bufGBps := func(bufs int) float64 {
		gbps := float64(bufs) * float64(t.ReadBufLine) / latNs
		if gbps <= 0 {
			gbps = 0.5
		}
		return gbps
	}
	for _, wq := range g.WQs {
		if wq.Priority > g.topPrio {
			g.topPrio = wq.Priority
		}
	}
	// Auto-allocated groups (ReadBufs was 0 until Enable) may request a
	// larger express share than they ended up with; always leave the bulk
	// lane at least one buffer.
	express := g.ExpressBufs
	if express >= g.ReadBufs {
		express = g.ReadBufs - 1
	}
	if express > 0 {
		g.ExpressBufs = express
		g.expressPipe = sim.NewPipe(g.Dev.E, bufGBps(express))
		g.readPipe = sim.NewPipe(g.Dev.E, bufGBps(g.ReadBufs-express))
	} else {
		g.ExpressBufs = 0
		g.readPipe = sim.NewPipe(g.Dev.E, bufGBps(g.ReadBufs))
	}
	g.credits = make([]int, len(g.WQs))
	g.refillCredits()
}

// readPipeFor returns the read-bandwidth lane a descriptor's reads draw
// from: the reserved express partition when the submitting WQ holds the
// group's top priority, the shared/bulk allocation otherwise. Batch
// sub-descriptors inherit their parent's WQ.
func (g *Group) readPipeFor(wk *work) *sim.Pipe {
	if g.expressPipe == nil {
		return g.readPipe
	}
	wq := wk.wq
	if wq == nil && wk.parent != nil {
		wq = wk.parent.wk.wq
	}
	if wq != nil && wq.Priority >= g.topPrio {
		return g.expressPipe
	}
	return g.readPipe
}

func (g *Group) refillCredits() {
	for i, wq := range g.WQs {
		g.credits[i] = wq.Priority
	}
}

// nextWork selects the next descriptor for dispatch: batch sub-descriptors
// first (they were already arbitrated when their parent was picked), then
// WQ heads by priority-weighted round-robin.
func (g *Group) nextWork() (*work, bool) {
	if wk, ok := g.batchQ.Pop(); ok {
		return wk, true
	}
	n := len(g.WQs)
	// Two passes: first honoring credits, then ignoring them (prevents
	// starvation when only zero-credit WQs are non-empty).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			idx := (g.rr + i) % n
			wq := g.WQs[idx]
			if wq.q.Len() == 0 {
				continue
			}
			if pass == 0 && g.credits[idx] <= 0 {
				continue
			}
			wk, _ := wq.q.Pop()
			wq.occupied--
			wq.noteOcc()
			g.credits[idx]--
			g.rr = (idx + 1) % n
			if g.allCreditsSpent() {
				g.refillCredits()
			}
			return wk, true
		}
	}
	return nil, false
}

func (g *Group) allCreditsSpent() bool {
	for i, wq := range g.WQs {
		if wq.q.Len() > 0 && g.credits[i] > 0 {
			return false
		}
	}
	return true
}

// dispatch hands queued descriptors to free engines. It is scheduled as an
// event whenever a descriptor arrives or an engine frees up.
func (g *Group) dispatch() {
	for _, eng := range g.Engines {
		if eng.busy {
			continue
		}
		wk, ok := g.nextWork()
		if !ok {
			return
		}
		eng.execute(wk)
	}
}

// pending reports descriptors waiting in the group's queues.
func (g *Group) pending() int {
	n := g.batchQ.Len()
	for _, wq := range g.WQs {
		n += wq.q.Len()
	}
	return n
}
