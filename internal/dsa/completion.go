package dsa

import (
	"dsasim/internal/sim"
)

// Completion is the software-visible handle for one submitted descriptor:
// the model's stand-in for polling a completion record in memory. It records
// the submit → dispatch → finish timeline used by the latency-breakdown
// experiments (Fig 5).
type Completion struct {
	e    *sim.Engine
	rec  CompletionRecord
	done bool
	sig  sim.Signal

	// coal, when non-nil, moderates this completion's interrupt: the
	// record joins the coalescer's window when written, and intr is set
	// when the (possibly shared) interrupt fires. Poll and UMWAIT waits
	// ignore both — they observe the record directly.
	coal *Coalescer
	intr *intrDelivery

	// onDone, when set, runs after the record is written and waiters are
	// woken, passing back the completion and the tag stamped at
	// submission. The sharded submission plane uses it for completion
	// accounting and fault retries: the hook is one function stored per
	// plane, so arming it costs two word writes and no per-operation
	// closure.
	onDone    func(c *Completion, tag uint64)
	onDoneTag uint64

	// desc is the submitted descriptor, kept so completion hooks can
	// rebuild a remainder submission after a partial completion.
	desc Descriptor

	// Timeline instants (virtual time).
	SubmitTime   sim.Time
	DispatchTime sim.Time
	FinishTime   sim.Time
}

func newCompletion(e *sim.Engine) *Completion {
	return &Completion{e: e}
}

// complete records the result and wakes waiters.
func (c *Completion) complete(rec CompletionRecord) {
	c.rec = rec
	c.done = true
	c.FinishTime = c.e.Now()
	c.sig.Broadcast(c.e)
	if c.coal != nil {
		c.coal.observe(c)
	}
	if c.onDone != nil {
		c.onDone(c, c.onDoneTag)
	}
}

// SetOnDone arms the completion hook: fn(c, tag) runs when the record is
// written, after waiters are woken and the interrupt moderation window has
// observed the record.
func (c *Completion) SetOnDone(fn func(c *Completion, tag uint64), tag uint64) {
	c.onDone, c.onDoneTag = fn, tag
}

// Desc returns the descriptor this completion was created for.
func (c *Completion) Desc() *Descriptor { return &c.desc }

// Done reports whether the completion record has been written.
func (c *Completion) Done() bool { return c.done }

// Record returns the completion record; valid once Done reports true.
func (c *Completion) Record() CompletionRecord { return c.rec }

// Wait parks the calling process until the descriptor completes (event
// driven — the UMWAIT-style wait without the core-side accounting, which
// Client.Wait adds).
func (c *Completion) Wait(p *sim.Proc) {
	for !c.done {
		p.Wait(&c.sig)
	}
}

// Latency returns finish − submit; valid once done.
func (c *Completion) Latency() sim.Time { return c.FinishTime - c.SubmitTime }

// QueueTime returns dispatch − submit; valid once done.
func (c *Completion) QueueTime() sim.Time { return c.DispatchTime - c.SubmitTime }
