package dsa

import (
	"fmt"

	"dsasim/internal/sim"
)

// WQMode selects dedicated or shared work-queue semantics (§3.2).
type WQMode int

// Work queue modes.
const (
	// Dedicated WQs belong to a single client, submitted to with the
	// posted MOVDIR64B write; software tracks occupancy.
	Dedicated WQMode = iota
	// Shared WQs accept ENQCMD from many clients without locking; the
	// non-posted submission returns whether the descriptor was accepted.
	Shared
)

// String returns "dedicated" or "shared".
func (m WQMode) String() string {
	if m == Shared {
		return "shared"
	}
	return "dedicated"
}

// ErrWQFull reports a submission to a full queue. For shared WQs this is the
// ENQCMD retry status; for dedicated WQs it means the client overran the
// occupancy it is responsible for tracking.
var ErrWQFull = fmt.Errorf("dsa: work queue full")

// work is one queued descriptor with its completion handle.
type work struct {
	d         Descriptor
	comp      *Completion
	wq        *WQ         // accepting WQ (nil for batch sub-descriptors)
	parent    *batchState // non-nil for batch sub-descriptors
	fromBatch bool
	enqueued  sim.Time
}

// WQ is one configured work queue.
type WQ struct {
	ID       int
	Dev      *Device
	Mode     WQMode
	Size     int
	Priority int

	group    *Group
	q        sim.FIFO[*work]
	occupied int // entries consumed (freed on dispatch to an engine)

	// statistics
	submitted int64
	maxOcc    int

	// Occupancy and completion-latency history, exposed to schedulers and
	// the adaptive offload threshold (occupancy feedback into G2). Both are
	// exponentially weighted moving averages sampled on queue events, so an
	// idle queue's history decays as traffic drains instead of freezing at
	// its last burst.
	occEWMA float64 // smoothed occupied/Size fraction
	latEWMA float64 // smoothed submit→finish latency, in nanoseconds
}

// wqEWMAAlpha is the smoothing factor of the WQ occupancy and latency
// histories: each sample contributes 1/8, so roughly the last ~16 events
// dominate — long enough to ride out a single burst, short enough that the
// adaptive threshold reacts within tens of descriptors.
const wqEWMAAlpha = 0.125

// Group returns the group this WQ belongs to.
func (w *WQ) Group() *Group { return w.group }

// Occupancy returns the entries currently held.
func (w *WQ) Occupancy() int { return w.occupied }

// MaxOccupancy returns the high-water mark of entries held.
func (w *WQ) MaxOccupancy() int { return w.maxOcc }

// Submitted returns the number of descriptors accepted by this WQ.
func (w *WQ) Submitted() int64 { return w.submitted }

// OccupancyEWMA returns the smoothed occupancy fraction in [0,1], sampled
// at every accept and dispatch event.
func (w *WQ) OccupancyEWMA() float64 { return w.occEWMA }

// LatencyEWMA returns the smoothed submit→finish completion latency of
// descriptors accepted by this WQ (zero until the first completion).
func (w *WQ) LatencyEWMA() sim.Time { return sim.Time(w.latEWMA) }

// sampleOcc folds the current occupancy fraction into the history.
func (w *WQ) sampleOcc() {
	w.occEWMA += wqEWMAAlpha * (float64(w.occupied)/float64(w.Size) - w.occEWMA)
}

// observeLatency folds one completed descriptor's latency into the history.
func (w *WQ) observeLatency(lat sim.Time) {
	if lat <= 0 {
		return
	}
	if w.latEWMA == 0 {
		w.latEWMA = float64(lat)
		return
	}
	w.latEWMA += wqEWMAAlpha * (float64(lat) - w.latEWMA)
}

// Submit places a descriptor in the WQ at the current virtual instant,
// returning a completion handle, or ErrWQFull when no entry is free. Submit
// models only the device side: the core-side instruction cost (MOVDIR64B /
// ENQCMD / retry loops) lives in Client.
func (w *WQ) Submit(d Descriptor) (*Completion, error) {
	if !w.Dev.enabled {
		return nil, fmt.Errorf("dsa: device %s not enabled", w.Dev.Cfg.Name)
	}
	if w.occupied >= w.Size {
		w.Dev.stats.Retries++
		return nil, ErrWQFull
	}
	if d.Size > w.Dev.Cfg.MaxTransfer {
		return nil, fmt.Errorf("dsa: transfer size %d exceeds device max %d", d.Size, w.Dev.Cfg.MaxTransfer)
	}
	if d.Op == OpBatch && len(d.Descs) > w.Dev.Cfg.MaxBatch {
		return nil, fmt.Errorf("dsa: batch of %d exceeds device max %d", len(d.Descs), w.Dev.Cfg.MaxBatch)
	}
	if d.Op == OpBatch && len(d.Descs) < 2 {
		return nil, fmt.Errorf("dsa: batch requires at least 2 descriptors")
	}
	comp := newCompletion(w.Dev.E)
	comp.SubmitTime = w.Dev.E.Now()
	wk := &work{d: d, comp: comp, wq: w, enqueued: w.Dev.E.Now()}
	w.occupied++
	if w.occupied > w.maxOcc {
		w.maxOcc = w.occupied
	}
	w.sampleOcc()
	w.submitted++
	w.Dev.stats.Submitted++
	w.q.Push(wk)
	// The descriptor becomes visible to the group arbiter after the portal
	// fabric hop.
	w.Dev.E.After(w.Dev.Cfg.Timing.PortalHop/2, w.group.dispatch)
	return comp, nil
}
