package dsa

import (
	"fmt"
	"sync/atomic"

	"dsasim/internal/sim"
)

// WQMode selects dedicated or shared work-queue semantics (§3.2).
type WQMode int

// Work queue modes.
const (
	// Dedicated WQs belong to a single client, submitted to with the
	// posted MOVDIR64B write; software tracks occupancy.
	Dedicated WQMode = iota
	// Shared WQs accept ENQCMD from many clients without locking; the
	// non-posted submission returns whether the descriptor was accepted.
	Shared
)

// String returns "dedicated" or "shared".
func (m WQMode) String() string {
	if m == Shared {
		return "shared"
	}
	return "dedicated"
}

// ErrWQFull reports a submission to a full queue. For shared WQs this is the
// ENQCMD retry status; for dedicated WQs it means the client overran the
// occupancy it is responsible for tracking.
var ErrWQFull = fmt.Errorf("dsa: work queue full")

// work is one queued descriptor with its completion handle.
type work struct {
	d         Descriptor
	comp      *Completion
	wq        *WQ         // accepting WQ (nil for batch sub-descriptors)
	parent    *batchState // non-nil for batch sub-descriptors
	childIdx  int         // position within the parent batch's children
	fromBatch bool
	enqueued  sim.Time
}

// WQ is one configured work queue.
type WQ struct {
	ID       int
	Dev      *Device
	Mode     WQMode
	Size     int
	Priority int

	group    *Group
	q        sim.FIFO[*work]
	occupied int // entries consumed (freed on dispatch to an engine)

	// ring, when attached, is the lock-free software submission ring
	// feeding this WQ's ENQCMD path (see SubmitRing / AttachRing).
	ring *SubmitRing

	// disabled marks a transient fault-injector disable window; atomic
	// because host-parallel submission paths read it through Healthy.
	disabled atomic.Bool

	// statistics
	submitted int64
	maxOcc    int
}

// Group returns the group this WQ belongs to.
func (w *WQ) Group() *Group { return w.group }

// Occupancy returns the entries currently held.
func (w *WQ) Occupancy() int { return w.occupied }

// MaxOccupancy returns the high-water mark of entries held.
func (w *WQ) MaxOccupancy() int { return w.maxOcc }

// Submitted returns the number of descriptors accepted by this WQ.
func (w *WQ) Submitted() int64 { return w.submitted }

// Submit places a descriptor in the WQ at the current virtual instant,
// returning a completion handle, or ErrWQFull when no entry is free. Submit
// models only the device side: the core-side instruction cost (MOVDIR64B /
// ENQCMD / retry loops) lives in Client.
func (w *WQ) Submit(d Descriptor) (*Completion, error) {
	if !w.Dev.enabled {
		return nil, fmt.Errorf("dsa: device %s not enabled", w.Dev.Cfg.Name)
	}
	if w.Dev.offline.Load() {
		return nil, fmt.Errorf("dsa: %s: %w", w.Dev.Cfg.Name, ErrDeviceOffline)
	}
	if w.disabled.Load() {
		return nil, fmt.Errorf("dsa: wq %d of %s: %w", w.ID, w.Dev.Cfg.Name, ErrWQDisabled)
	}
	if w.occupied >= w.Size {
		w.Dev.stats.Retries++
		return nil, ErrWQFull
	}
	if d.Size > w.Dev.Cfg.MaxTransfer {
		return nil, fmt.Errorf("dsa: transfer size %d exceeds device max %d", d.Size, w.Dev.Cfg.MaxTransfer)
	}
	if d.Op == OpBatch && len(d.Descs) > w.Dev.Cfg.MaxBatch {
		return nil, fmt.Errorf("dsa: batch of %d exceeds device max %d", len(d.Descs), w.Dev.Cfg.MaxBatch)
	}
	if d.Op == OpBatch && len(d.Descs) < 2 {
		return nil, fmt.Errorf("dsa: batch requires at least 2 descriptors")
	}
	comp := newCompletion(w.Dev.E)
	comp.SubmitTime = w.Dev.E.Now()
	comp.desc = d
	wk := &work{d: d, comp: comp, wq: w, enqueued: w.Dev.E.Now()}
	w.occupied++
	if w.occupied > w.maxOcc {
		w.maxOcc = w.occupied
	}
	w.noteOcc()
	w.submitted++
	w.Dev.stats.Submitted++
	w.q.Push(wk)
	// The descriptor becomes visible to the group arbiter after the portal
	// fabric hop.
	w.Dev.E.After(w.Dev.Cfg.Timing.PortalHop/2, w.group.dispatch)
	return comp, nil
}
