package dsa

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

func TestSubmitRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ want, got int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if c := NewSubmitRing(tc.want).Cap(); c != tc.got {
			t.Errorf("NewSubmitRing(%d).Cap() = %d, want %d", tc.want, c, tc.got)
		}
	}
}

func TestSubmitRingFIFOAndFull(t *testing.T) {
	r := NewSubmitRing(4)
	for i := 0; i < 4; i++ {
		if !r.TryPush(Descriptor{Size: int64(i)}, uint64(i)) {
			t.Fatalf("push %d into empty ring failed", i)
		}
	}
	if r.TryPush(Descriptor{}, 99) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		e, ok := r.Pop()
		if !ok {
			t.Fatalf("pop %d from non-empty ring failed", i)
		}
		if e.D.Size != int64(i) || e.Tag != uint64(i) {
			t.Fatalf("pop %d = {Size %d, Tag %d}, want in-order", i, e.D.Size, e.Tag)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	// Wrapped reuse: the released slots accept a second lap.
	for i := 0; i < 4; i++ {
		if !r.TryPush(Descriptor{}, uint64(i)) {
			t.Fatalf("wrapped push %d failed", i)
		}
	}
}

// TestSubmitRingConcurrent hammers the ring with parallel producers and one
// consumer — the MPSC contract — checking nothing is lost, duplicated, or
// reordered within a producer. Run under -race this is the lock-free
// algorithm's memory-ordering test.
func TestSubmitRingConcurrent(t *testing.T) {
	const producers = 8
	const perProducer = 500
	r := NewSubmitRing(64)

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				// Tag encodes (producer, sequence) so the consumer can check
				// per-producer FIFO order.
				for !r.TryPush(Descriptor{Size: int64(i)}, uint64(pr)<<32|uint64(i)) {
					runtime.Gosched()
				}
			}
		}(pr)
	}

	seen := make([]int, producers)
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < producers*perProducer {
			e, ok := r.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			pr, seq := int(e.Tag>>32), int(e.Tag&0xffffffff)
			if seq != seen[pr] {
				t.Errorf("producer %d: popped seq %d, want %d (reordered or lost)", pr, seq, seen[pr])
				return
			}
			if e.D.Size != int64(seq) {
				t.Errorf("producer %d seq %d: entry payload %d torn", pr, seq, e.D.Size)
				return
			}
			seen[pr]++
			got++
		}
	}()
	wg.Wait()
	<-done
	if got != producers*perProducer {
		t.Fatalf("consumed %d entries, want %d", got, producers*perProducer)
	}
	if r.Len() != 0 {
		t.Fatalf("ring not drained: Len = %d", r.Len())
	}
}

func TestSubmitRingZeroAlloc(t *testing.T) {
	r := NewSubmitRing(8)
	d := Descriptor{Op: OpMemmove, Size: 4096}
	if n := testing.AllocsPerRun(1000, func() {
		r.TryPush(d, 1)
		r.Pop()
	}); n != 0 {
		t.Errorf("push+pop allocated %.1f times per run, want 0", n)
	}
}

// FuzzSubmitRing model-checks the ring against a reference FIFO: each
// script byte drives one operation (low bit selects push vs pop), and
// every observable — push/pop success, payload, tag, Len — must match
// the model exactly, including across arbitrarily many wrap-arounds of
// a tiny ring. The fuzzer owns the schedule; the model owns the truth.
func FuzzSubmitRing(f *testing.F) {
	f.Add(uint8(4), []byte{0, 0, 2, 1, 0, 3, 1, 1})
	f.Add(uint8(1), bytes.Repeat([]byte{0, 1}, 64)) // two-slot ring, many laps
	f.Add(uint8(7), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add(uint8(0), []byte{1, 1, 0, 1, 1})
	f.Fuzz(func(t *testing.T, capacity uint8, script []byte) {
		r := NewSubmitRing(int(capacity))
		var model []RingEntry
		seq := int64(0)
		for i, op := range script {
			if op&1 == 0 {
				d := Descriptor{Op: OpMemmove, Size: seq + 1}
				pushed := r.TryPush(d, uint64(seq))
				if want := len(model) < r.Cap(); pushed != want {
					t.Fatalf("op %d: TryPush = %v with %d/%d occupied, want %v",
						i, pushed, len(model), r.Cap(), want)
				}
				if pushed {
					model = append(model, RingEntry{D: d, Tag: uint64(seq)})
					seq++
				}
			} else {
				e, ok := r.Pop()
				if want := len(model) > 0; ok != want {
					t.Fatalf("op %d: Pop ok = %v with %d occupied, want %v", i, ok, len(model), want)
				}
				if ok {
					head := model[0]
					model = model[1:]
					if e.D.Size != head.D.Size || e.Tag != head.Tag {
						t.Fatalf("op %d: Pop = {Size %d, Tag %d}, want {Size %d, Tag %d} (lost, duplicated, or torn)",
							i, e.D.Size, e.Tag, head.D.Size, head.Tag)
					}
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("op %d: Len = %d, model holds %d", i, r.Len(), len(model))
			}
		}
	})
}

func TestWQAttachRing(t *testing.T) {
	wq := newRig(t).dev.WQs()[0]
	if wq.Ring() != nil {
		t.Fatal("fresh WQ already has a ring")
	}
	r := wq.AttachRing(10)
	if wq.Ring() != r || r.Cap() != 16 {
		t.Fatalf("AttachRing: got %v (cap %d)", wq.Ring(), r.Cap())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second AttachRing did not panic")
		}
	}()
	wq.AttachRing(4)
}
