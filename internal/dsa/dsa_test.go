package dsa

import (
	"bytes"
	"testing"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dif"
	"dsasim/internal/isal"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// rig wires an engine, an SPR-like memory system, one device, and a bound
// address space for tests.
type rig struct {
	e    *sim.Engine
	sys  *mem.System
	dev  *Device
	as   *mem.AddressSpace
	node *mem.Node
}

func sprSystem(e *sim.Engine) *mem.System {
	return mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 0, Kind: mem.CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
		},
	})
}

// newRig builds a device with the given groups (default: one group with 4
// engines and one 32-entry dedicated WQ) and enables it.
func newRig(t *testing.T, groups ...GroupConfig) *rig {
	t.Helper()
	e := sim.New()
	sys := sprSystem(e)
	dev := New(e, sys, DefaultConfig("dsa0", 0))
	if len(groups) == 0 {
		groups = []GroupConfig{{
			Engines: 4,
			WQs:     []WQConfig{{Mode: Dedicated, Size: 32}},
		}}
	}
	for _, g := range groups {
		if _, err := dev.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace(1)
	dev.BindPASID(as)
	return &rig{e: e, sys: sys, dev: dev, as: as, node: sys.Node(0)}
}

// runSync submits one descriptor synchronously and returns its record.
func (r *rig) runSync(t *testing.T, d Descriptor) CompletionRecord {
	t.Helper()
	wq := r.dev.WQs()[0]
	cl := NewClient(wq, nil)
	var rec CompletionRecord
	r.e.Go("sync", func(p *sim.Proc) {
		comp, err := cl.RunSync(p, d, Poll)
		if err != nil {
			t.Errorf("RunSync: %v", err)
			return
		}
		rec = comp.Record()
	})
	r.e.Run()
	return rec
}

func (r *rig) alloc(size int64, opts ...mem.AllocOption) *mem.Buffer {
	opts = append([]mem.AllocOption{mem.OnNode(r.node)}, opts...)
	return r.as.Alloc(size, opts...)
}

func TestMemmoveThroughDevice(t *testing.T) {
	r := newRig(t)
	src := r.alloc(8192)
	dst := r.alloc(8192)
	sim.NewRand(1).Bytes(src.Bytes())

	rec := r.runSync(t, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 8192})
	if rec.Status != StatusSuccess {
		t.Fatalf("status = %v (%v)", rec.Status, rec.Err)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("device copy did not move bytes")
	}
}

func TestFillAndComparePattern(t *testing.T) {
	r := newRig(t)
	buf := r.alloc(4096)
	pat := uint64(0xDEADBEEFCAFEF00D)
	if rec := r.runSync(t, Descriptor{Op: OpFill, PASID: 1, Dst: buf.Addr(0), Size: 4096, Pattern: pat}); rec.Status != StatusSuccess {
		t.Fatalf("fill status = %v", rec.Status)
	}
	rec := r.runSync(t, Descriptor{Op: OpComparePattern, PASID: 1, Src: buf.Addr(0), Size: 4096, Pattern: pat})
	if rec.Status != StatusSuccess || rec.Mismatch {
		t.Fatalf("compare_pattern = %+v", rec)
	}
	buf.Bytes()[1000] ^= 0xFF
	rec = r.runSync(t, Descriptor{Op: OpComparePattern, PASID: 1, Src: buf.Addr(0), Size: 4096, Pattern: pat})
	if !rec.Mismatch || rec.Result != 1000 {
		t.Fatalf("mismatch detection = %+v", rec)
	}
}

func TestCompareThroughDevice(t *testing.T) {
	r := newRig(t)
	a := r.alloc(2048)
	b := r.alloc(2048)
	sim.NewRand(2).Bytes(a.Bytes())
	copy(b.Bytes(), a.Bytes())
	rec := r.runSync(t, Descriptor{Op: OpCompare, PASID: 1, Src: a.Addr(0), Src2: b.Addr(0), Size: 2048})
	if rec.Mismatch {
		t.Fatal("identical buffers reported mismatch")
	}
	b.Bytes()[77] ^= 1
	rec = r.runSync(t, Descriptor{Op: OpCompare, PASID: 1, Src: a.Addr(0), Src2: b.Addr(0), Size: 2048})
	if !rec.Mismatch || rec.Result != 77 {
		t.Fatalf("compare mismatch = %+v", rec)
	}
}

func TestCRCAndCopyCRC(t *testing.T) {
	r := newRig(t)
	src := r.alloc(4096)
	dst := r.alloc(4096)
	sim.NewRand(3).Bytes(src.Bytes())
	want := uint64(isal.CRC32(0, src.Bytes()))

	rec := r.runSync(t, Descriptor{Op: OpCRCGen, PASID: 1, Src: src.Addr(0), Size: 4096})
	if rec.Status != StatusSuccess || rec.Result != want {
		t.Fatalf("crc_gen = %+v, want result %#x", rec, want)
	}
	rec = r.runSync(t, Descriptor{Op: OpCopyCRC, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 4096})
	if rec.Result != want || !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatalf("copy_crc result %#x want %#x", rec.Result, want)
	}
}

func TestDualcast(t *testing.T) {
	r := newRig(t)
	src := r.alloc(1024)
	d1 := r.alloc(1024)
	d2 := r.alloc(1024)
	sim.NewRand(4).Bytes(src.Bytes())
	rec := r.runSync(t, Descriptor{Op: OpDualcast, PASID: 1, Src: src.Addr(0), Dst: d1.Addr(0), Dst2: d2.Addr(0), Size: 1024})
	if rec.Status != StatusSuccess {
		t.Fatalf("dualcast = %+v", rec)
	}
	if !bytes.Equal(d1.Bytes(), src.Bytes()) || !bytes.Equal(d2.Bytes(), src.Bytes()) {
		t.Fatal("dualcast destinations differ from source")
	}
}

func TestDeltaThroughDevice(t *testing.T) {
	r := newRig(t)
	orig := r.alloc(1024)
	mod := r.alloc(1024)
	recbuf := r.alloc(2048)
	sim.NewRand(5).Bytes(orig.Bytes())
	copy(mod.Bytes(), orig.Bytes())
	mod.Bytes()[8] ^= 0xFF
	mod.Bytes()[512] ^= 0x0F

	rec := r.runSync(t, Descriptor{Op: OpCreateDelta, PASID: 1,
		Src: orig.Addr(0), Src2: mod.Addr(0), Dst: recbuf.Addr(0), Size: 1024, MaxDst: 2048})
	if rec.Status != StatusSuccess {
		t.Fatalf("create_delta = %+v", rec)
	}
	used := int64(rec.Result)
	if used == 0 {
		t.Fatal("no delta entries recorded")
	}
	rec = r.runSync(t, Descriptor{Op: OpApplyDelta, PASID: 1,
		Src: recbuf.Addr(0), Dst: orig.Addr(0), Size: used, MaxDst: 1024})
	if rec.Status != StatusSuccess {
		t.Fatalf("apply_delta = %+v", rec)
	}
	if !bytes.Equal(orig.Bytes(), mod.Bytes()) {
		t.Fatal("delta round trip failed")
	}
}

func TestDeltaRecordFullStatus(t *testing.T) {
	r := newRig(t)
	orig := r.alloc(1024)
	mod := r.alloc(1024)
	recbuf := r.alloc(16) // fits 1 entry only
	for i := range mod.Bytes() {
		mod.Bytes()[i] = 0xFF
	}
	rec := r.runSync(t, Descriptor{Op: OpCreateDelta, PASID: 1,
		Src: orig.Addr(0), Src2: mod.Addr(0), Dst: recbuf.Addr(0), Size: 1024, MaxDst: 16})
	if rec.Status != StatusRecordFull {
		t.Fatalf("status = %v, want record_full", rec.Status)
	}
}

func TestDIFThroughDevice(t *testing.T) {
	r := newRig(t)
	raw := r.alloc(4096)
	prot := r.alloc(dif.Block512.Protected() * 8)
	out := r.alloc(4096)
	sim.NewRand(6).Bytes(raw.Bytes())
	tags := dif.Tags{AppTag: 0xAA55, RefTag: 9, IncrementRef: true}

	rec := r.runSync(t, Descriptor{Op: OpDIFInsert, PASID: 1, Src: raw.Addr(0), Dst: prot.Addr(0),
		Size: 4096, DIFBlock: dif.Block512, DIFTags: tags})
	if rec.Status != StatusSuccess {
		t.Fatalf("dif_insert = %+v", rec)
	}
	rec = r.runSync(t, Descriptor{Op: OpDIFCheck, PASID: 1, Src: prot.Addr(0),
		Size: prot.Size, DIFBlock: dif.Block512, DIFTags: tags})
	if rec.Status != StatusSuccess {
		t.Fatalf("dif_check = %+v", rec)
	}
	rec = r.runSync(t, Descriptor{Op: OpDIFStrip, PASID: 1, Src: prot.Addr(0), Dst: out.Addr(0),
		Size: prot.Size, DIFBlock: dif.Block512, DIFTags: tags})
	if rec.Status != StatusSuccess || !bytes.Equal(out.Bytes(), raw.Bytes()) {
		t.Fatalf("dif_strip failed: %+v", rec)
	}
	// Corrupt one block: check must flag DIF error with the block index.
	prot.Bytes()[520+3] ^= 0x80
	rec = r.runSync(t, Descriptor{Op: OpDIFCheck, PASID: 1, Src: prot.Addr(0),
		Size: prot.Size, DIFBlock: dif.Block512, DIFTags: tags})
	if rec.Status != StatusDIFError || rec.Result != 1 {
		t.Fatalf("corrupted dif_check = %+v, want DIF error at block 1", rec)
	}
}

func TestDIFUpdateThroughDevice(t *testing.T) {
	r := newRig(t)
	raw := r.alloc(1024)
	prot := r.alloc(dif.Block512.Protected() * 2)
	out := r.alloc(dif.Block512.Protected() * 2)
	sim.NewRand(7).Bytes(raw.Bytes())
	oldTags := dif.Tags{AppTag: 1, RefTag: 5}
	newTags := dif.Tags{AppTag: 2, RefTag: 50, IncrementRef: true}

	if rec := r.runSync(t, Descriptor{Op: OpDIFInsert, PASID: 1, Src: raw.Addr(0), Dst: prot.Addr(0),
		Size: 1024, DIFBlock: dif.Block512, DIFTags: oldTags}); rec.Status != StatusSuccess {
		t.Fatalf("insert: %+v", rec)
	}
	rec := r.runSync(t, Descriptor{Op: OpDIFUpdate, PASID: 1, Src: prot.Addr(0), Dst: out.Addr(0),
		Size: prot.Size, DIFBlock: dif.Block512, DIFTags: oldTags, DIFTags2: newTags})
	if rec.Status != StatusSuccess {
		t.Fatalf("dif_update = %+v", rec)
	}
	if rec := r.runSync(t, Descriptor{Op: OpDIFCheck, PASID: 1, Src: out.Addr(0),
		Size: out.Size, DIFBlock: dif.Block512, DIFTags: newTags}); rec.Status != StatusSuccess {
		t.Fatalf("check with new tags: %+v", rec)
	}
}

func TestNopAndBadOpcode(t *testing.T) {
	r := newRig(t)
	if rec := r.runSync(t, Descriptor{Op: OpNop, PASID: 1}); rec.Status != StatusSuccess {
		t.Fatalf("nop = %+v", rec)
	}
	if rec := r.runSync(t, Descriptor{Op: OpType(0x7F), PASID: 1, Size: 64}); rec.Status != StatusError {
		t.Fatalf("bad opcode = %+v, want error", rec)
	}
}

func TestUnboundPASIDFails(t *testing.T) {
	r := newRig(t)
	buf := r.alloc(64)
	rec := r.runSync(t, Descriptor{Op: OpMemmove, PASID: 42, Src: buf.Addr(0), Dst: buf.Addr(0), Size: 64})
	if rec.Status != StatusError {
		t.Fatalf("unbound PASID = %+v, want error", rec)
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.New()
	sys := sprSystem(e)
	dev := New(e, sys, DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(GroupConfig{Engines: 5, WQs: []WQConfig{{Size: 8}}}); err == nil {
		t.Fatal("engine overcommit accepted")
	}
	if _, err := dev.AddGroup(GroupConfig{Engines: 1, WQs: []WQConfig{{Size: 256}}}); err == nil {
		t.Fatal("WQ entry overcommit accepted")
	}
	if _, err := dev.AddGroup(GroupConfig{Engines: 1}); err == nil {
		t.Fatal("group without WQs accepted")
	}
	if _, err := dev.AddGroup(GroupConfig{Engines: 1, WQs: []WQConfig{{Size: 8, Priority: 99}}}); err == nil {
		t.Fatal("invalid priority accepted")
	}
	if err := dev.Enable(); err == nil {
		t.Fatal("enabling empty device succeeded")
	}
	if _, err := dev.AddGroup(GroupConfig{Engines: 2, WQs: []WQConfig{{Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err == nil {
		t.Fatal("double enable succeeded")
	}
	if _, err := dev.AddGroup(GroupConfig{Engines: 1, WQs: []WQConfig{{Size: 8}}}); err == nil {
		t.Fatal("AddGroup after enable succeeded")
	}
}

func TestSubmitBeforeEnableFails(t *testing.T) {
	e := sim.New()
	dev := New(e, sprSystem(e), DefaultConfig("dsa0", 0))
	g, err := dev.AddGroup(GroupConfig{Engines: 1, WQs: []WQConfig{{Size: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WQs[0].Submit(Descriptor{Op: OpNop}); err == nil {
		t.Fatal("submit before enable succeeded")
	}
}

func TestReadBufferAutoDistribution(t *testing.T) {
	e := sim.New()
	dev := New(e, sprSystem(e), DefaultConfig("dsa0", 0))
	g1, _ := dev.AddGroup(GroupConfig{Engines: 1, ReadBufs: 32, WQs: []WQConfig{{Size: 8}}})
	g2, _ := dev.AddGroup(GroupConfig{Engines: 1, WQs: []WQConfig{{Size: 8}}})
	g3, _ := dev.AddGroup(GroupConfig{Engines: 1, WQs: []WQConfig{{Size: 8}}})
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	if g1.ReadBufs != 32 {
		t.Fatalf("explicit allocation changed: %d", g1.ReadBufs)
	}
	if g2.ReadBufs+g3.ReadBufs != 96-32 {
		t.Fatalf("auto allocation = %d+%d, want 64 total", g2.ReadBufs, g3.ReadBufs)
	}
}

func TestBatchFunctionalAndCR(t *testing.T) {
	r := newRig(t)
	n := 8
	src := r.alloc(int64(n) * 1024)
	dst := r.alloc(int64(n) * 1024)
	sim.NewRand(8).Bytes(src.Bytes())
	var subs []Descriptor
	for i := 0; i < n; i++ {
		subs = append(subs, Descriptor{
			Op: OpMemmove, Src: src.Addr(int64(i) * 1024), Dst: dst.Addr(int64(i) * 1024), Size: 1024,
		})
	}
	rec := r.runSync(t, Descriptor{Op: OpBatch, PASID: 1, Descs: subs})
	if rec.Status != StatusSuccess {
		t.Fatalf("batch = %+v", rec)
	}
	if rec.Result != uint64(n) {
		t.Fatalf("batch completed %d, want %d", rec.Result, n)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("batch copies incomplete")
	}
}

func TestBatchPartialFailure(t *testing.T) {
	r := newRig(t)
	buf := r.alloc(1024)
	subs := []Descriptor{
		{Op: OpMemmove, Src: buf.Addr(0), Dst: buf.Addr(512), Size: 512},
		{Op: OpType(0x7F), Size: 64}, // bad
	}
	rec := r.runSync(t, Descriptor{Op: OpBatch, PASID: 1, Descs: subs})
	if rec.Status != StatusBatchFail {
		t.Fatalf("batch status = %v, want batch_fail", rec.Status)
	}
	if rec.Result != 1 {
		t.Fatalf("succeeded = %d, want 1", rec.Result)
	}
}

func TestBatchValidation(t *testing.T) {
	r := newRig(t)
	wq := r.dev.WQs()[0]
	if _, err := wq.Submit(Descriptor{Op: OpBatch, PASID: 1, Descs: []Descriptor{{Op: OpNop}}}); err == nil {
		t.Fatal("batch of 1 accepted")
	}
	big := make([]Descriptor, r.dev.Cfg.MaxBatch+1)
	if _, err := wq.Submit(Descriptor{Op: OpBatch, PASID: 1, Descs: big}); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestBatchFenceOrdersChildren(t *testing.T) {
	r := newRig(t)
	a := r.alloc(4096)
	b := r.alloc(4096)
	c := r.alloc(4096)
	sim.NewRand(9).Bytes(a.Bytes())
	// copy a→b, FENCE, copy b→c: without the fence, b→c could read stale b.
	subs := []Descriptor{
		{Op: OpMemmove, Src: a.Addr(0), Dst: b.Addr(0), Size: 4096},
		{Op: OpMemmove, Flags: FlagFence, Src: b.Addr(0), Dst: c.Addr(0), Size: 4096},
	}
	rec := r.runSync(t, Descriptor{Op: OpBatch, PASID: 1, Descs: subs})
	if rec.Status != StatusSuccess {
		t.Fatalf("fenced batch = %+v", rec)
	}
	if !bytes.Equal(c.Bytes(), a.Bytes()) {
		t.Fatal("fence did not order dependent copies")
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	r := newRig(t)
	src := r.alloc(1 << 20)
	dst := r.alloc(1 << 20)
	wq := r.dev.WQs()[0]
	cl := NewClient(wq, nil)
	var copyDone, drainDone sim.Time
	r.e.Go("bench", func(p *sim.Proc) {
		comp, err := cl.Submit(p, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 1 << 20})
		if err != nil {
			t.Error(err)
			return
		}
		drain, err := cl.Submit(p, Descriptor{Op: OpDrain, PASID: 1})
		if err != nil {
			t.Error(err)
			return
		}
		drain.Wait(p)
		drainDone = drain.FinishTime
		copyDone = comp.FinishTime
		if !comp.Done() {
			t.Error("drain completed before earlier copy")
		}
	})
	r.e.Run()
	if drainDone < copyDone {
		t.Fatalf("drain at %v before copy at %v", drainDone, copyDone)
	}
}

func TestPageFaultPartialCompletion(t *testing.T) {
	r := newRig(t)
	src := r.alloc(3 * mem.Page4K)
	dst := r.alloc(3*mem.Page4K, mem.Lazy())
	sim.NewRand(10).Bytes(src.Bytes())

	rec := r.runSync(t, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 3 * mem.Page4K})
	if rec.Status != StatusPageFault {
		t.Fatalf("status = %v, want page_fault", rec.Status)
	}
	if rec.BytesCompleted != 0 {
		t.Fatalf("BytesCompleted = %d, want 0 (first page unmapped)", rec.BytesCompleted)
	}
	if rec.FaultAddr != dst.Addr(0) {
		t.Fatalf("FaultAddr = %#x, want %#x", rec.FaultAddr, dst.Addr(0))
	}
}

func TestPageFaultBlockOnFaultResolves(t *testing.T) {
	r := newRig(t)
	src := r.alloc(3 * mem.Page4K)
	dst := r.alloc(3*mem.Page4K, mem.Lazy())
	sim.NewRand(11).Bytes(src.Bytes())

	recNoFault := r.runSync(t, Descriptor{Op: OpMemmove, Flags: FlagBlockOnFault, PASID: 1,
		Src: src.Addr(0), Dst: dst.Addr(0), Size: 3 * mem.Page4K})
	if recNoFault.Status != StatusSuccess {
		t.Fatalf("block-on-fault status = %v (%v)", recNoFault.Status, recNoFault.Err)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("block-on-fault copy incomplete")
	}
	if r.dev.Stats().PageFaults != 3 {
		t.Fatalf("faults = %d, want 3", r.dev.Stats().PageFaults)
	}
}

func TestPartialPrefixApplied(t *testing.T) {
	r := newRig(t)
	src := r.alloc(2 * mem.Page4K)
	dst := r.alloc(2*mem.Page4K, mem.Lazy())
	sim.NewRand(12).Bytes(src.Bytes())
	// Map only the first destination page: the copy should complete 4K.
	if err := r.as.ResolveFault(dst.Addr(0)); err != nil {
		t.Fatal(err)
	}
	rec := r.runSync(t, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 2 * mem.Page4K})
	if rec.Status != StatusPageFault || rec.BytesCompleted != mem.Page4K {
		t.Fatalf("partial completion = %+v, want 4096 bytes", rec)
	}
	if !bytes.Equal(dst.Slice(0, mem.Page4K), src.Slice(0, mem.Page4K)) {
		t.Fatal("completed prefix not applied")
	}
}

func TestATCHitsAndMisses(t *testing.T) {
	r := newRig(t)
	buf := r.alloc(64)
	dst := r.alloc(64)
	d := Descriptor{Op: OpMemmove, PASID: 1, Src: buf.Addr(0), Dst: dst.Addr(0), Size: 64}
	r.runSync(t, d)
	first := r.dev.Stats()
	if first.ATCMisses == 0 {
		t.Fatal("first access did not miss the ATC")
	}
	r.runSync(t, d)
	second := r.dev.Stats()
	if second.ATCHits <= first.ATCHits {
		t.Fatal("repeat access did not hit the ATC")
	}
	r.dev.FlushATC()
	r.runSync(t, d)
	third := r.dev.Stats()
	if third.ATCMisses <= second.ATCMisses {
		t.Fatal("flushed ATC still hit")
	}
}

func TestDeviceStatsTraffic(t *testing.T) {
	r := newRig(t)
	src := r.alloc(4096)
	dst := r.alloc(4096)
	r.runSync(t, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 4096})
	st := r.dev.Stats()
	if st.BytesRead != 4096 || st.BytesWritten != 4096 {
		t.Fatalf("traffic = %d read / %d written, want 4096/4096", st.BytesRead, st.BytesWritten)
	}
	if st.Completed != 1 || st.Submitted != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

func TestCacheControlSteersToDDIO(t *testing.T) {
	r := newRig(t)
	src := r.alloc(1 << 20)
	dst := r.alloc(1 << 20)
	llc := r.sys.SocketOf(0).LLC
	rec := r.runSync(t, Descriptor{Op: OpMemmove, Flags: FlagCacheControl, PASID: 1,
		Src: src.Addr(0), Dst: dst.Addr(0), Size: 1 << 20})
	if rec.Status != StatusSuccess {
		t.Fatalf("status = %v", rec.Status)
	}
	if got := llc.Occupancy(r.dev.Owner()); got == 0 {
		t.Fatal("cache-control write did not allocate in LLC")
	}
	if got := llc.Occupancy(r.dev.Owner()); got > llc.DDIOCapacity() {
		t.Fatalf("device occupancy %d exceeds DDIO partition %d", got, llc.DDIOCapacity())
	}
}

func TestNoCacheControlNoLLCFootprint(t *testing.T) {
	r := newRig(t)
	src := r.alloc(1 << 20)
	dst := r.alloc(1 << 20)
	r.runSync(t, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 1 << 20})
	if got := r.sys.SocketOf(0).LLC.Occupancy(r.dev.Owner()); got != 0 {
		t.Fatalf("memory-steered write left %d bytes in LLC", got)
	}
}

func TestCompletionTimelineMonotonic(t *testing.T) {
	r := newRig(t)
	src := r.alloc(4096)
	dst := r.alloc(4096)
	wq := r.dev.WQs()[0]
	cl := NewClient(wq, nil)
	r.e.Go("bench", func(p *sim.Proc) {
		comp, err := cl.RunSync(p, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 4096}, Poll)
		if err != nil {
			t.Error(err)
			return
		}
		if !(comp.SubmitTime <= comp.DispatchTime && comp.DispatchTime <= comp.FinishTime) {
			t.Errorf("timeline not monotonic: %v / %v / %v",
				comp.SubmitTime, comp.DispatchTime, comp.FinishTime)
		}
		if comp.Latency() <= 0 {
			t.Errorf("latency = %v", comp.Latency())
		}
	})
	r.e.Run()
}

// The batch processing unit fetches the descriptor array from the
// submitting core's memory, so a batch submitted from the remote socket
// pays the UPI round trip on the fetch that a local submitter does not.
// Data placement is identical in both runs; only the submitter moves.
func TestBatchFetchPricedAgainstSubmitterSocket(t *testing.T) {
	run := func(socket int) sim.Time {
		e := sim.New()
		sys := sprSystem(e)
		dev := New(e, sys, DefaultConfig("dsa0", 0))
		if _, err := dev.AddGroup(GroupConfig{
			Engines: 4,
			WQs:     []WQConfig{{Mode: Dedicated, Size: 32}},
		}); err != nil {
			t.Fatal(err)
		}
		if err := dev.Enable(); err != nil {
			t.Fatal(err)
		}
		as := mem.NewAddressSpace(1)
		dev.BindPASID(as)
		core := cpu.NewCore(0, socket, sys, as, cpu.SPRModel())
		n := int64(4 << 10)
		src := as.Alloc(2*n, mem.OnNode(sys.Node(0)))
		dst := as.Alloc(2*n, mem.OnNode(sys.Node(0)))
		cl := NewClient(dev.WQs()[0], core)
		var lat sim.Time
		e.Go("batch", func(p *sim.Proc) {
			comp, err := cl.Submit(p, Descriptor{Op: OpBatch, PASID: 1, Descs: []Descriptor{
				{Op: OpMemmove, Src: src.Addr(0), Dst: dst.Addr(0), Size: n},
				{Op: OpMemmove, Src: src.Addr(n), Dst: dst.Addr(n), Size: n},
			}})
			if err != nil {
				t.Error(err)
				return
			}
			comp.Wait(p)
			lat = comp.Latency()
		})
		e.Run()
		return lat
	}
	local := run(0)
	remote := run(1)
	if remote <= local {
		t.Fatalf("remote-submitter batch latency %v not above local %v", remote, local)
	}
	if diff := remote - local; diff < 70*time.Nanosecond {
		t.Fatalf("remote fetch penalty %v below the 70ns UPI hop", diff)
	}
}
