package dsa

import (
	"fmt"

	"dsasim/internal/cpu"
	"dsasim/internal/sim"
)

// WaitMode selects how a client discovers completion (§3.3, §4.4).
type WaitMode int

// Completion wait modes.
const (
	// Poll spins on the completion record, burning core cycles at PollGap
	// granularity.
	Poll WaitMode = iota
	// UMWait parks the core in the UMONITOR/UMWAIT optimized wait state
	// until the completion record is written, then pays the wake latency.
	UMWait
	// Interrupt blocks on a completion interrupt: the core is fully free
	// while waiting but pays delivery latency plus handler cost — the
	// trade-off §4.4 describes against UMWAIT.
	Interrupt
)

// Client models the software side of DSA usage from one thread: descriptor
// allocation, preparation, portal submission (MOVDIR64B or ENQCMD with
// retries), and completion waiting, all with their core-side costs. Phase
// times are accumulated for the latency-breakdown and UMWAIT experiments
// (Figs 5 and 11).
type Client struct {
	WQ   *WQ
	Core *cpu.Core // optional: phase costs also charge this core

	// Coal, when non-nil, moderates this client's completion interrupts:
	// every submitted completion is tracked, and Interrupt-mode waits pay
	// one delivery + handler per coalescer window instead of one per
	// descriptor (§4.4 made cheap for small operations). Poll and UMWAIT
	// waits are unaffected. Several clients may share one Coalescer —
	// their completions then coalesce across WQs and devices.
	Coal *Coalescer

	// Cumulative phase times.
	AllocTime   sim.Time
	PrepareTime sim.Time
	SubmitTime  sim.Time
	WaitTime    sim.Time
	Retries     int64
}

// NewClient pairs a work queue with a submitting core.
func NewClient(wq *WQ, core *cpu.Core) *Client {
	return &Client{WQ: wq, Core: core}
}

func (c *Client) chargeBusy(d sim.Time) {
	if c.Core != nil {
		c.Core.ChargeBusy(d)
	}
}

// AllocDescriptors models allocating space for n descriptors plus completion
// records (the dominant naive-path cost in Fig 5, amortized away by
// preallocating in real deployments).
func (c *Client) AllocDescriptors(p *sim.Proc, n int) {
	t := c.WQ.Dev.Cfg.Timing
	d := t.DescAlloc + sim.Time(n)*t.DescAllocPer
	p.Sleep(d)
	c.AllocTime += d
	c.chargeBusy(d)
}

// Prepare models filling in one pre-allocated descriptor ("two writes",
// §4.2).
func (c *Client) Prepare(p *sim.Proc) {
	t := c.WQ.Dev.Cfg.Timing
	p.Sleep(t.DescPrepare)
	c.PrepareTime += t.DescPrepare
	c.chargeBusy(t.DescPrepare)
}

// Submit submits d through the WQ's portal with the mode-appropriate
// instruction, retrying until accepted: ENQCMD re-issues on a retry status;
// a dedicated-WQ client spins on its occupancy count. It returns the
// completion handle.
func (c *Client) Submit(p *sim.Proc, d Descriptor) (*Completion, error) {
	return c.TrySubmit(p, d, -1)
}

// TrySubmit submits like Submit but gives up after maxRetries full-WQ
// rejections, returning an error wrapping ErrWQFull so callers can
// re-schedule onto another queue or shed load. maxRetries < 0 retries
// until the descriptor is accepted.
func (c *Client) TrySubmit(p *sim.Proc, d Descriptor, maxRetries int) (*Completion, error) {
	t := c.WQ.Dev.Cfg.Timing
	if c.Core != nil {
		// Stamp the submitter's socket so the device prices batch
		// descriptor-array fetches against the right memory.
		d.SubmitterSocket = c.Core.Socket
	}
	rejected := 0
	for {
		instr := t.SubmitMOVDIR64B
		if c.WQ.Mode == Shared {
			instr = t.SubmitENQCMD
		}
		p.Sleep(instr)
		c.SubmitTime += instr
		c.chargeBusy(instr)
		comp, err := c.WQ.Submit(d)
		if err == ErrWQFull {
			c.Retries++
			rejected++
			if maxRetries >= 0 && rejected > maxRetries {
				return nil, fmt.Errorf("dsa: %s WQ %d rejected descriptor %d times: %w",
					c.WQ.Dev.Cfg.Name, c.WQ.ID, rejected, ErrWQFull)
			}
			if c.WQ.Mode == Dedicated {
				// Software waits for an entry to free before rewriting
				// the portal.
				p.Sleep(t.PollGap)
				c.WaitTime += t.PollGap
				c.chargeBusy(t.PollGap)
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		if c.Coal != nil {
			// Steer the interrupt through the moderation vector while the
			// descriptor is still in flight (same event as the portal
			// write, so the record cannot have been written yet).
			c.Coal.Track(comp)
		}
		return comp, nil
	}
}

// Wait blocks the calling process until comp finishes, accounting the wait
// according to mode. It returns the wait duration.
func (c *Client) Wait(p *sim.Proc, comp *Completion, mode WaitMode) sim.Time {
	t := c.WQ.Dev.Cfg.Timing
	start := p.Now()
	switch mode {
	case Interrupt:
		// Follow the completion's own moderation vector, not the client's
		// current one: a policy swap may have re-pointed c.Coal while this
		// descriptor was in flight, and its delivery still belongs to the
		// vector that tracked it — the old coalescer's timer/threshold will
		// announce it, and falling back to the per-descriptor path here
		// would bill a second, phantom delivery.
		if k := comp.coal; k != nil {
			// Coalesced delivery: block until the record is written, then
			// until its (shared) interrupt fires. The first waiter of each
			// interrupt pays the delivery latency and handler cost; every
			// sibling record announced by the same interrupt was harvested
			// in that handler pass and resolves for free.
			comp.Wait(p)
			d := k.waitDelivered(p, comp)
			if !d.paid {
				d.paid = true
				p.SleepUntil(d.at + t.IntrDeliver)
				p.Sleep(t.IntrHandler)
				c.chargeBusy(t.IntrHandler)
			} else {
				// A sibling's record is harvested by the payer's handler
				// pass: it cannot be observed before that pass completes,
				// only read for free afterwards.
				p.SleepUntil(d.at + t.IntrDeliver + t.IntrHandler)
			}
			waited := p.Now() - start
			c.WaitTime += waited
			return waited
		}
		comp.Wait(p)
		p.Sleep(t.IntrDeliver + t.IntrHandler)
		waited := p.Now() - start
		c.WaitTime += waited
		// Only the handler burns core cycles; the wait itself is free
		// (the core ran other work or slept).
		c.chargeBusy(t.IntrHandler)
		return waited
	case UMWait:
		comp.Wait(p)
		p.Sleep(cpu.UMWaitWake)
		waited := p.Now() - start
		c.WaitTime += waited
		if c.Core != nil {
			c.Core.UMWait(waited - cpu.UMWaitWake)
			c.Core.ChargeBusy(cpu.UMWaitWake)
		}
		return waited
	default: // Poll
		for !comp.Done() {
			p.Sleep(t.PollGap)
		}
		waited := p.Now() - start
		c.WaitTime += waited
		c.chargeBusy(waited)
		return waited
	}
}

// RunSync performs one synchronous offload: prepare, submit, wait. It
// returns the completion handle after it finished.
func (c *Client) RunSync(p *sim.Proc, d Descriptor, mode WaitMode) (*Completion, error) {
	c.Prepare(p)
	comp, err := c.Submit(p, d)
	if err != nil {
		return nil, err
	}
	c.Wait(p, comp, mode)
	return comp, nil
}
