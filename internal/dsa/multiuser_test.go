package dsa

import (
	"bytes"
	"testing"
	"time"

	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// These tests cover §3.4 F1: multiple applications (PASIDs) share one
// device simultaneously and independently through SVM, plus the
// interrupt-completion alternative of §4.4.

func TestMultiplePASIDsShareOneSWQ(t *testing.T) {
	r := newRig(t, GroupConfig{Engines: 4, WQs: []WQConfig{{Mode: Shared, Size: 32}}})
	wq := r.dev.WQs()[0]

	type app struct {
		as       *mem.AddressSpace
		src, dst *mem.Buffer
	}
	apps := make([]*app, 4)
	for i := range apps {
		as := mem.NewAddressSpace(10 + i)
		r.dev.BindPASID(as)
		a := &app{
			as:  as,
			src: as.Alloc(64<<10, mem.OnNode(r.node)),
			dst: as.Alloc(64<<10, mem.OnNode(r.node)),
		}
		sim.NewRand(uint64(100 + i)).Bytes(a.src.Bytes())
		apps[i] = a
	}
	for i, a := range apps {
		a := a
		cl := NewClient(wq, nil)
		r.e.Go("app", func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 50 * time.Nanosecond)
			for k := 0; k < 10; k++ {
				if _, err := cl.RunSync(p, Descriptor{
					Op: OpMemmove, PASID: a.as.PASID,
					Src: a.src.Addr(0), Dst: a.dst.Addr(0), Size: 64 << 10,
				}, Poll); err != nil {
					t.Errorf("PASID %d: %v", a.as.PASID, err)
					return
				}
			}
		})
	}
	r.e.Run()
	for i, a := range apps {
		if !bytes.Equal(a.dst.Bytes(), a.src.Bytes()) {
			t.Fatalf("app %d data corrupted under concurrent sharing", i)
		}
	}
}

func TestPASIDAddressSpacesAreIsolated(t *testing.T) {
	r := newRig(t)
	other := mem.NewAddressSpace(2)
	r.dev.BindPASID(other)
	foreign := other.Alloc(4096, mem.OnNode(r.node))
	// PASID 1 submitting PASID-2 addresses must fail translation.
	rec := r.runSync(t, Descriptor{
		Op: OpMemmove, PASID: 1,
		Src: foreign.Addr(0), Dst: foreign.Addr(0), Size: 4096,
	})
	if rec.Status != StatusError {
		t.Fatalf("cross-PASID access = %v, want error", rec.Status)
	}
}

func TestInterruptCompletionMode(t *testing.T) {
	r := newRig(t)
	src := r.alloc(64 << 10)
	dst := r.alloc(64 << 10)
	cl := NewClient(r.dev.WQs()[0], nil)
	var intrLat, pollLat sim.Time
	r.e.Go("bench", func(p *sim.Proc) {
		start := p.Now()
		if _, err := cl.RunSync(p, Descriptor{
			Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 64 << 10,
		}, Interrupt); err != nil {
			t.Error(err)
			return
		}
		intrLat = p.Now() - start
		start = p.Now()
		if _, err := cl.RunSync(p, Descriptor{
			Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 64 << 10,
		}, Poll); err != nil {
			t.Error(err)
			return
		}
		pollLat = p.Now() - start
	})
	r.e.Run()
	if intrLat <= pollLat {
		t.Fatalf("interrupt completion (%v) should cost more wake latency than polling (%v)", intrLat, pollLat)
	}
	if intrLat > pollLat+5*time.Microsecond {
		t.Fatalf("interrupt overhead too large: %v vs %v", intrLat, pollLat)
	}
}

func TestWQOccupancyHighWaterMark(t *testing.T) {
	r := newRig(t, GroupConfig{Engines: 1, WQs: []WQConfig{{Mode: Dedicated, Size: 16}}})
	wq := r.dev.WQs()[0]
	src := r.alloc(1 << 20)
	dst := r.alloc(1 << 20)
	cl := NewClient(wq, nil)
	r.e.Go("flood", func(p *sim.Proc) {
		var comps []*Completion
		for i := 0; i < 16; i++ {
			c, err := cl.Submit(p, Descriptor{
				Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 1 << 20,
			})
			if err != nil {
				t.Error(err)
				return
			}
			comps = append(comps, c)
		}
		for _, c := range comps {
			c.Wait(p)
		}
	})
	r.e.Run()
	if wq.MaxOccupancy() < 8 {
		t.Fatalf("flooded 16-entry WQ high-water = %d, want near capacity", wq.MaxOccupancy())
	}
	if wq.Occupancy() != 0 {
		t.Fatalf("occupancy after drain = %d, want 0", wq.Occupancy())
	}
	if wq.Submitted() != 16 {
		t.Fatalf("submitted = %d, want 16", wq.Submitted())
	}
}

func TestLowPriorityNotStarved(t *testing.T) {
	r := newRig(t, GroupConfig{
		Engines: 1,
		WQs: []WQConfig{
			{Mode: Dedicated, Size: 32, Priority: 15},
			{Mode: Dedicated, Size: 32, Priority: 1},
		},
	})
	size := int64(16 << 10)
	wqs := r.dev.WQs()
	done := make([]int, 2)
	for i, wq := range wqs {
		i := i
		cl := NewClient(wq, nil)
		src := r.alloc(size)
		dst := r.alloc(size)
		r.e.Go("load", func(p *sim.Proc) {
			var comps []*Completion
			for k := 0; k < 40; k++ {
				c, err := cl.Submit(p, Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: size})
				if err != nil {
					t.Error(err)
					return
				}
				comps = append(comps, c)
			}
			for _, c := range comps {
				c.Wait(p)
				done[i]++
			}
		})
	}
	r.e.Run()
	if done[0] != 40 || done[1] != 40 {
		t.Fatalf("completions = %v, want all 40+40 (no starvation)", done)
	}
}

func TestATCEvictionUnderPressure(t *testing.T) {
	// Touch more pages than the ATC holds: misses must keep occurring.
	e := sim.New()
	sys := sprSystem(e)
	cfg := DefaultConfig("dsa0", 0)
	cfg.ATCEntries = 8
	dev := New(e, sys, cfg)
	if _, err := dev.AddGroup(GroupConfig{Engines: 4, WQs: []WQConfig{{Mode: Dedicated, Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace(1)
	dev.BindPASID(as)
	node := sys.Node(0)
	// 20 source pages against 8 ATC entries keeps the cache thrashing.
	bufs := make([]*mem.Buffer, 40)
	for i := range bufs {
		bufs[i] = as.Alloc(64, mem.OnNode(node))
	}
	cl := NewClient(dev.WQs()[0], nil)
	e.Go("sweep", func(p *sim.Proc) {
		for round := 0; round < 3; round++ {
			for i := 0; i+1 < len(bufs); i += 2 {
				if _, err := cl.RunSync(p, Descriptor{
					Op: OpMemmove, PASID: 1, Src: bufs[i].Addr(0), Dst: bufs[i+1].Addr(0), Size: 64,
				}, Poll); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})
	e.Run()
	st := dev.Stats()
	if st.ATCMisses <= 8 {
		t.Fatalf("ATC misses = %d; a working set beyond capacity must keep missing", st.ATCMisses)
	}
}
