package dsa

import "dsasim/internal/sim"

// Probe receives the device's raw queue and completion events. It is the
// feed of the streaming-telemetry subsystem: the device reports what
// happened (occupancy transitions, completion latencies) and keeps no
// smoothed history of its own — windowing, EWMAs, and quantiles live in
// the consumer. A nil probe (the default) makes every hook a single
// branch, so unobserved devices pay nothing.
//
// Probe implementations must not call back into the device synchronously;
// hooks fire inside Submit and completion events.
type Probe interface {
	// WQOccupancy reports a queue's occupancy after an accept or dispatch
	// transition.
	WQOccupancy(wq *WQ, at sim.Time, occupied, size int)
	// Completed reports one finished descriptor (batch parents included,
	// batch children excluded — they carry no WQ) with its submit→finish
	// latency and the submitting PASID.
	Completed(wq *WQ, at sim.Time, pasid int, lat sim.Time)
}

// SetProbe installs the device's event probe (nil to detach). Installed
// once at service construction, before traffic.
func (d *Device) SetProbe(p Probe) { d.probe = p }

// noteOcc reports an occupancy transition to the probe, if any.
func (w *WQ) noteOcc() {
	if p := w.Dev.probe; p != nil {
		p.WQOccupancy(w, w.Dev.E.Now(), w.occupied, w.Size)
	}
}

// noteCompleted reports a completed descriptor to the probe, if any.
func (w *WQ) noteCompleted(pasid int, lat sim.Time) {
	if p := w.Dev.probe; p != nil {
		p.Completed(w, w.Dev.E.Now(), pasid, lat)
	}
}
