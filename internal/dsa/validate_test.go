package dsa

import (
	"testing"

	"dsasim/internal/dif"
	"dsasim/internal/mem"
)

// Error-path coverage: malformed descriptors must complete with
// StatusError (or the specific failure status) rather than corrupting
// state or panicking the device.

func TestDescriptorValidationErrors(t *testing.T) {
	r := newRig(t)
	buf := r.alloc(4096)
	small := r.alloc(64)

	cases := []struct {
		name string
		d    Descriptor
		want Status
	}{
		{
			"unmapped source",
			Descriptor{Op: OpMemmove, PASID: 1, Src: mem.Addr(0xdead), Dst: buf.Addr(0), Size: 64},
			StatusError,
		},
		{
			"source overrun",
			Descriptor{Op: OpMemmove, PASID: 1, Src: small.Addr(0), Dst: buf.Addr(0), Size: 4096},
			StatusError,
		},
		{
			"destination overrun",
			Descriptor{Op: OpMemmove, PASID: 1, Src: buf.Addr(0), Dst: small.Addr(0), Size: 4096},
			StatusError,
		},
		{
			"dif bad block size",
			Descriptor{Op: OpDIFInsert, PASID: 1, Src: buf.Addr(0), Dst: buf.Addr(0), Size: 4096,
				DIFBlock: dif.BlockSize(777)},
			StatusError,
		},
		{
			"delta unaligned region",
			Descriptor{Op: OpCreateDelta, PASID: 1, Src: buf.Addr(0), Src2: buf.Addr(0),
				Dst: buf.Addr(0), Size: 37, MaxDst: 1024},
			StatusError,
		},
		{
			"compare missing second source",
			Descriptor{Op: OpCompare, PASID: 1, Src: buf.Addr(0), Src2: mem.Addr(0xbad), Size: 64},
			StatusError,
		},
		{
			"dualcast missing second destination",
			Descriptor{Op: OpDualcast, PASID: 1, Src: buf.Addr(0), Dst: buf.Addr(0), Dst2: mem.Addr(0xbad), Size: 64},
			StatusError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := r.runSync(t, tc.d)
			if rec.Status != tc.want {
				t.Fatalf("status = %v (err=%v), want %v", rec.Status, rec.Err, tc.want)
			}
		})
	}
	// The device must still work after all the failures.
	rec := r.runSync(t, Descriptor{Op: OpMemmove, PASID: 1, Src: buf.Addr(0), Dst: buf.Addr(64), Size: 64})
	if rec.Status != StatusSuccess {
		t.Fatalf("device wedged after error descriptors: %v", rec.Status)
	}
}

func TestTransferSizeLimitEnforced(t *testing.T) {
	r := newRig(t)
	wq := r.dev.WQs()[0]
	big := r.dev.Cfg.MaxTransfer + 1
	if _, err := wq.Submit(Descriptor{Op: OpMemmove, PASID: 1, Size: big}); err == nil {
		t.Fatal("oversized transfer accepted")
	}
}
