package dsa

import (
	"testing"

	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// expressRig builds a read-buffer-starved group (16 bufs ≈ 9 GB/s, well
// under the fabric) with a priority-10 express WQ and a priority-1 bulk
// WQ, optionally carving an express partition. The starved allocation
// makes the read buffers the binding constraint, so the partition's
// isolation is observable.
func expressRig(t *testing.T, expressBufs int) *rig {
	t.Helper()
	e := sim.New()
	sys := sprSystem(e)
	cfg := DefaultConfig("dsa0", 0)
	cfg.ReadBufs = 16
	dev := New(e, sys, cfg)
	if _, err := dev.AddGroup(GroupConfig{
		Engines:     4,
		ReadBufs:    16,
		ExpressBufs: expressBufs,
		WQs: []WQConfig{
			{Mode: Dedicated, Size: 16, Priority: 10},
			{Mode: Dedicated, Size: 16, Priority: 1},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace(1)
	dev.BindPASID(as)
	return &rig{e: e, sys: sys, dev: dev, as: as, node: sys.Node(0)}
}

// TestExpressBufsValidation rejects partitions that leave bulk nothing.
func TestExpressBufsValidation(t *testing.T) {
	e := sim.New()
	dev := New(e, sprSystem(e), DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(GroupConfig{
		Engines:     1,
		ReadBufs:    8,
		ExpressBufs: 8,
		WQs:         []WQConfig{{Mode: Dedicated, Size: 8}},
	}); err == nil {
		t.Fatal("express share equal to the group allocation was accepted")
	}
	if _, err := dev.AddGroup(GroupConfig{
		Engines:     1,
		ExpressBufs: -1,
		WQs:         []WQConfig{{Mode: Dedicated, Size: 8}},
	}); err == nil {
		t.Fatal("negative express share was accepted")
	}
}

// TestExpressBufsAutoGroupClamped checks that a group left to the
// automatic buffer distribution still honors (and bounds) its express
// request: the share is clamped to leave the bulk lane at least one
// buffer.
func TestExpressBufsAutoGroupClamped(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig("dsa0", 0)
	cfg.ReadBufs = 4
	dev := New(e, sprSystem(e), cfg)
	if _, err := dev.AddGroup(GroupConfig{
		Engines:     1,
		ExpressBufs: 99, // far beyond the auto share
		WQs:         []WQConfig{{Mode: Dedicated, Size: 8, Priority: 10}, {Mode: Dedicated, Size: 8, Priority: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	g := dev.Groups()[0]
	if g.ReadBufs != 4 {
		t.Fatalf("auto allocation gave %d bufs, want 4", g.ReadBufs)
	}
	if g.ExpressBufs != 3 {
		t.Errorf("express share = %d, want clamp to 3 (bulk keeps one buffer)", g.ExpressBufs)
	}
	if g.expressPipe == nil {
		t.Error("clamped express partition built no reserved pipe")
	}
}

// TestExpressReadPartitionProtectsReservedLane floods the bulk WQ with
// reads deep enough to back the group read pipe up for hundreds of
// microseconds, then measures when a concurrent express copy completes.
// With ExpressBufs carved out, the express read draws from its own
// partition and finishes long before the bulk backlog drains; without it,
// the shared read pipe queues the express read behind the flood.
func TestExpressReadPartitionProtectsReservedLane(t *testing.T) {
	finish := func(expressBufs int) sim.Time {
		r := expressRig(t, expressBufs)
		wqs := r.dev.WQs()
		express, bulk := wqs[0], wqs[1]
		if express.Priority < bulk.Priority {
			t.Fatal("rig WQ order changed")
		}
		const bulkN = 1 << 20
		const exprN = 256 << 10
		bsrc, bdst := r.alloc(bulkN), r.alloc(bulkN)
		esrc, edst := r.alloc(exprN), r.alloc(exprN)
		var done sim.Time
		r.e.Go("flood", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				if _, err := bulk.Submit(Descriptor{
					Op: OpMemmove, PASID: 1, Src: bsrc.Addr(0), Dst: bdst.Addr(0), Size: bulkN,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		})
		r.e.Go("express", func(p *sim.Proc) {
			// Let the flood land first so the express read truly contends.
			p.Sleep(sim.Time(1000))
			comp, err := express.Submit(Descriptor{
				Op: OpMemmove, PASID: 1, Src: esrc.Addr(0), Dst: edst.Addr(0), Size: exprN,
			})
			if err != nil {
				t.Error(err)
				return
			}
			comp.Wait(p)
			done = p.Now()
		})
		r.e.Run()
		return done
	}

	shared := finish(0)
	partitioned := finish(8)
	if partitioned >= shared {
		t.Errorf("express completion with partition (%v) not earlier than shared read pipe (%v)",
			partitioned, shared)
	}
	// The win must be structural (the flood holds the shared pipe for
	// hundreds of microseconds; the residual gap is engine contention),
	// not a scheduling wobble.
	if 4*shared < 5*partitioned {
		t.Errorf("partition advantage too small: shared %v vs partitioned %v", shared, partitioned)
	}
}
