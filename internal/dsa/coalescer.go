package dsa

import (
	"fmt"

	"dsasim/internal/sim"
)

// Coalescer moderates completion interrupts the way production drivers
// program per-queue/per-vector interrupt throttling: finished completion
// records are held until either Count of them have accumulated or Window
// virtual time has passed since the first undelivered record, then one
// interrupt announces the whole batch. N completions in a window cost one
// IntrDeliver + IntrHandler instead of N — the §4.4 delivery latency that
// otherwise dominates small-operation offload (Fig 11's trade-off, paid
// per descriptor on the naive path).
//
// The Coalescer models the software-visible MSI-X vector a client's
// completions are steered to: attach one to a Client (Client.Coal) and
// every completion the client submits is tracked. Only Interrupt-mode
// waits consult it — a polling client reads the completion record the
// instant it is written, and UMWAIT monitors the record's cache line
// directly, so neither is delayed by interrupt moderation.
//
// Sharing one Coalescer across several Clients (as the offload layer does
// per tenant) coalesces across work queues and devices too: the model's
// stand-in for steering every vector of a process to one interrupt thread.
type Coalescer struct {
	e      *sim.Engine
	count  int
	window sim.Time

	// ready holds finished-but-unannounced completions; the backing array
	// is reused across delivery windows so steady-state tracking does not
	// allocate.
	ready []*Completion

	// seq numbers the current accumulation window; a pending timer event
	// captures the seq it was armed for and fires only if the window was
	// not already delivered by the count trigger.
	seq uint64

	// sig wakes Interrupt-mode waiters parked for the next delivery.
	sig sim.Signal

	deliveries int64
	coalesced  int64
}

// intrDelivery is one fired interrupt: the instant it was raised and
// whether a waiter has already paid the delivery + handler cost. Every
// completion announced by the same interrupt shares one intrDelivery, so
// the cost is charged exactly once however many futures drain from it.
type intrDelivery struct {
	at   sim.Time
	paid bool
}

// NewCoalescer builds an interrupt coalescer delivering one interrupt per
// count completions, or per window when fewer accumulate — the timer bound
// is what keeps a tail of fewer-than-count records from waiting forever,
// so count > 1 requires a positive window. tick is the device's moderation
// timer granularity (Timing.IntrCoalesceTick); the window rounds up to a
// whole number of ticks, and zero tick leaves it exact.
func NewCoalescer(e *sim.Engine, count int, window, tick sim.Time) *Coalescer {
	if count < 1 {
		count = 1
	}
	if count > 1 && window <= 0 {
		panic(fmt.Sprintf("dsa: coalescer count %d needs a positive window (the timer bound delivers the tail)", count))
	}
	if tick > 0 && window > 0 {
		if rem := window % tick; rem != 0 {
			window += tick - rem
		}
	}
	return &Coalescer{e: e, count: count, window: window}
}

// Count returns the delivery batch size.
func (k *Coalescer) Count() int { return k.count }

// Window returns the (tick-rounded) delivery time bound.
func (k *Coalescer) Window() sim.Time { return k.window }

// Deliveries returns the number of interrupts fired.
func (k *Coalescer) Deliveries() int64 { return k.deliveries }

// CoalescedRecords returns the completions that shared an interrupt with
// an earlier record instead of costing their own delivery.
func (k *Coalescer) CoalescedRecords() int64 { return k.coalesced }

// Pending returns finished completions whose interrupt has not fired yet.
func (k *Coalescer) Pending() int { return len(k.ready) }

// Track steers a submitted completion's interrupt through this coalescer.
// It must be called before the completion can finish (Client.TrySubmit
// calls it in the same event as the portal write).
func (k *Coalescer) Track(c *Completion) {
	c.coal = k
}

// observe is called by Completion.complete when a tracked record is
// written: the record joins the current window, which is delivered when
// it reaches count records, or by the timer armed when it opened.
func (k *Coalescer) observe(c *Completion) {
	k.ready = append(k.ready, c)
	if len(k.ready) >= k.count {
		k.deliver()
		return
	}
	if len(k.ready) == 1 {
		seq := k.seq
		k.e.After(k.window, func() {
			if k.seq == seq {
				k.deliver()
			}
		})
	}
}

// deliver fires one interrupt for every ready record and wakes waiters.
func (k *Coalescer) deliver() {
	k.seq++
	d := &intrDelivery{at: k.e.Now()}
	k.deliveries++
	k.coalesced += int64(len(k.ready) - 1)
	for _, c := range k.ready {
		c.intr = d
	}
	k.ready = k.ready[:0]
	k.sig.Broadcast(k.e)
}

// waitDelivered parks p until comp's interrupt has fired. The record is
// already written (comp.done); it is either in the current window — the
// next deliver assigns it — or already announced.
func (k *Coalescer) waitDelivered(p *sim.Proc, comp *Completion) *intrDelivery {
	for comp.intr == nil {
		p.Wait(&k.sig)
	}
	return comp.intr
}
