package dsa

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// faultRun drives n sequential copies through a rig whose injector is
// seeded with seed and returns each completion's (status, bytes) pair.
func faultRun(t *testing.T, seed uint64, n int) []CompletionRecord {
	t.Helper()
	r := newRig(t)
	if _, err := r.dev.InjectFaults(FaultConfig{Seed: seed, PageFaultPer4K: 0.02}); err != nil {
		t.Fatal(err)
	}
	size := int64(16 * mem.Page4K)
	src := r.alloc(size)
	dst := r.alloc(size)
	wq := r.dev.WQs()[0]
	cl := NewClient(wq, nil)
	recs := make([]CompletionRecord, 0, n)
	r.e.Go("load", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			comp, err := cl.RunSync(p, Descriptor{
				Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: size,
			}, Poll)
			if err != nil {
				t.Errorf("RunSync %d: %v", i, err)
				return
			}
			recs = append(recs, comp.Record())
		}
	})
	r.e.Run()
	return recs
}

// The injector's whole fault schedule is a function of its seed: the same
// seed reproduces every (status, offset) bit-for-bit, a different seed
// produces a different schedule. This is what lets the chaos scenarios
// gate CI on numbers measured under faults.
func TestInjectedFaultDeterminism(t *testing.T) {
	const n = 200
	a := faultRun(t, 7, n)
	b := faultRun(t, 7, n)
	c := faultRun(t, 8, n)
	faults := 0
	for i := range a {
		if a[i].Status != b[i].Status || a[i].BytesCompleted != b[i].BytesCompleted {
			t.Fatalf("op %d diverged under one seed: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Status == StatusPageFault {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no injected faults in 200 16-page copies at p=0.02/page")
	}
	same := true
	for i := range a {
		if a[i].Status != c[i].Status || a[i].BytesCompleted != c[i].BytesCompleted {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical fault schedules")
	}
	t.Logf("%d/%d ops faulted", faults, n)
}

// An injected fault resolves exactly like a real one: with Block-On-Fault
// the engine stalls for the OS round trip and the op still succeeds
// (slower than fault-free); without it the device reports a partial
// completion at a page boundary with the completed prefix applied.
func TestInjectedFaultBlockOnFaultVsPartial(t *testing.T) {
	size := int64(8 * mem.Page4K)
	run := func(inject bool, flags Flags) (CompletionRecord, sim.Time, []byte, []byte) {
		r := newRig(t)
		if inject {
			if _, err := r.dev.InjectFaults(FaultConfig{Seed: 3, PageFaultPer4K: 1}); err != nil {
				t.Fatal(err)
			}
		}
		src := r.alloc(size)
		dst := r.alloc(size)
		sim.NewRand(9).Bytes(src.Bytes())
		cl := NewClient(r.dev.WQs()[0], nil)
		var rec CompletionRecord
		var lat sim.Time
		r.e.Go("op", func(p *sim.Proc) {
			comp, err := cl.RunSync(p, Descriptor{
				Op: OpMemmove, PASID: 1, Flags: flags, Src: src.Addr(0), Dst: dst.Addr(0), Size: size,
			}, Poll)
			if err != nil {
				t.Error(err)
				return
			}
			rec, lat = comp.Record(), comp.Latency()
		})
		r.e.Run()
		return rec, lat, src.Bytes(), dst.Bytes()
	}

	clean, cleanLat, _, _ := run(false, 0)
	if clean.Status != StatusSuccess {
		t.Fatalf("fault-free copy = %+v", clean)
	}

	bof, bofLat, bsrc, bdst := run(true, FlagBlockOnFault)
	if bof.Status != StatusSuccess {
		t.Fatalf("block-on-fault copy = %+v", bof)
	}
	if !bytes.Equal(bdst, bsrc) {
		t.Fatal("block-on-fault copy incomplete")
	}
	if bofLat <= cleanLat {
		t.Fatalf("block-on-fault latency %v not above fault-free %v (no OS round trip charged)", bofLat, cleanLat)
	}

	part, _, psrc, pdst := run(true, 0)
	if part.Status != StatusPageFault {
		t.Fatalf("partial-mode copy = %+v, want page_fault", part)
	}
	if part.BytesCompleted < 0 || part.BytesCompleted >= size || part.BytesCompleted%mem.Page4K != 0 {
		t.Fatalf("BytesCompleted = %d, want a page-aligned prefix below %d", part.BytesCompleted, size)
	}
	if n := part.BytesCompleted; n > 0 && !bytes.Equal(pdst[:n], psrc[:n]) {
		t.Fatal("completed prefix not applied")
	}
}

// A WQ disable window fails queued-but-undispatched descriptors with
// StatusWQError, rejects submissions with ErrWQDisabled while it lasts,
// and lets work already on an engine drain; the queue accepts again after
// the window.
func TestWQDisableWindow(t *testing.T) {
	r := newRig(t, GroupConfig{Engines: 1, WQs: []WQConfig{{Mode: Dedicated, Size: 32}}})
	if _, err := r.dev.InjectFaults(FaultConfig{WQDisables: []WQDisable{
		{WQ: 0, At: sim.Time(2 * time.Microsecond), Dur: sim.Time(10 * time.Microsecond)},
	}}); err != nil {
		t.Fatal(err)
	}
	size := int64(256 << 10)
	src := r.alloc(6 * size)
	dst := r.alloc(6 * size)
	wq := r.dev.WQs()[0]
	r.e.Go("load", func(p *sim.Proc) {
		comps := make([]*Completion, 6)
		for i := range comps {
			c, err := wq.Submit(Descriptor{
				Op: OpMemmove, PASID: 1,
				Src: src.Addr(int64(i) * size), Dst: dst.Addr(int64(i) * size), Size: size,
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			comps[i] = c
		}
		p.SleepUntil(sim.Time(3 * time.Microsecond)) // inside the window
		if wq.Healthy() {
			t.Error("WQ healthy inside its disable window")
		}
		if _, err := wq.Submit(Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 64}); !errors.Is(err, ErrWQDisabled) {
			t.Errorf("submit in window: %v, want ErrWQDisabled", err)
		}
		failed := 0
		for i, c := range comps {
			c.Wait(p)
			rec := c.Record()
			switch rec.Status {
			case StatusSuccess:
			case StatusWQError:
				failed++
				if !errors.Is(rec.Err, ErrWQDisabled) {
					t.Errorf("op %d record err = %v, want ErrWQDisabled", i, rec.Err)
				}
			default:
				t.Errorf("op %d = %+v", i, rec)
			}
		}
		// The op on the engine at disable time drains; the queued rest die.
		if failed == 0 || failed == len(comps) {
			t.Errorf("failed = %d of %d, want some queued failures and some drained successes", failed, len(comps))
		}
		p.SleepUntil(sim.Time(13 * time.Microsecond)) // past the window
		if !wq.Healthy() {
			t.Error("WQ still unhealthy after its disable window")
		}
		c, err := wq.Submit(Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 64})
		if err != nil {
			t.Errorf("submit after heal: %v", err)
			return
		}
		c.Wait(p)
		if c.Record().Status != StatusSuccess {
			t.Errorf("post-heal op = %+v", c.Record())
		}
	})
	r.e.Run()
	if got := r.dev.Stats().WQDisables; got != 1 {
		t.Fatalf("WQDisables = %d, want 1", got)
	}
}

// A device outage fails every WQ's queued work with StatusDeviceOffline,
// rejects submissions with ErrDeviceOffline, and heals at the window end.
func TestDeviceOutageWindow(t *testing.T) {
	r := newRig(t, GroupConfig{Engines: 1, WQs: []WQConfig{{Mode: Dedicated, Size: 32}}})
	if _, err := r.dev.InjectFaults(FaultConfig{Outages: []Outage{
		{At: sim.Time(2 * time.Microsecond), Dur: sim.Time(10 * time.Microsecond)},
	}}); err != nil {
		t.Fatal(err)
	}
	size := int64(256 << 10)
	src := r.alloc(4 * size)
	dst := r.alloc(4 * size)
	wq := r.dev.WQs()[0]
	r.e.Go("load", func(p *sim.Proc) {
		comps := make([]*Completion, 4)
		for i := range comps {
			c, err := wq.Submit(Descriptor{
				Op: OpMemmove, PASID: 1,
				Src: src.Addr(int64(i) * size), Dst: dst.Addr(int64(i) * size), Size: size,
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			comps[i] = c
		}
		p.SleepUntil(sim.Time(3 * time.Microsecond))
		if !r.dev.Offline() || wq.Healthy() {
			t.Error("device not offline inside its outage window")
		}
		if _, err := wq.Submit(Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 64}); !errors.Is(err, ErrDeviceOffline) {
			t.Errorf("submit in outage: %v, want ErrDeviceOffline", err)
		}
		offline := 0
		for i, c := range comps {
			c.Wait(p)
			rec := c.Record()
			switch rec.Status {
			case StatusSuccess:
			case StatusDeviceOffline:
				offline++
				if !errors.Is(rec.Err, ErrDeviceOffline) {
					t.Errorf("op %d record err = %v, want ErrDeviceOffline", i, rec.Err)
				}
			default:
				t.Errorf("op %d = %+v", i, rec)
			}
		}
		if offline == 0 {
			t.Error("no queued op completed with device_offline")
		}
		p.SleepUntil(sim.Time(13 * time.Microsecond))
		if r.dev.Offline() {
			t.Error("device still offline after its outage window")
		}
		c, err := wq.Submit(Descriptor{Op: OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: 64})
		if err != nil {
			t.Errorf("submit after heal: %v", err)
			return
		}
		c.Wait(p)
		if c.Record().Status != StatusSuccess {
			t.Errorf("post-heal op = %+v", c.Record())
		}
	})
	r.e.Run()
	if got := r.dev.Stats().Outages; got != 1 {
		t.Fatalf("Outages = %d, want 1", got)
	}
}

// A faulting batch child fails the parent with StatusBatchFail, records
// the per-child outcomes, and fence-poisons everything ordered behind the
// fault: the fenced child never issues and keeps its zero-value
// StatusNone record.
func TestBatchChildFaultPoisonsFence(t *testing.T) {
	r := newRig(t)
	src := r.alloc(3 * mem.Page4K)
	okDst := r.alloc(mem.Page4K)
	lazyDst := r.alloc(mem.Page4K, mem.Lazy())
	tailDst := r.alloc(mem.Page4K)
	sim.NewRand(13).Bytes(src.Bytes())

	subs := []Descriptor{
		{Op: OpMemmove, Src: src.Addr(0), Dst: okDst.Addr(0), Size: mem.Page4K},
		{Op: OpMemmove, Flags: FlagFence, Src: src.Addr(mem.Page4K), Dst: lazyDst.Addr(0), Size: mem.Page4K},
		{Op: OpMemmove, Flags: FlagFence, Src: src.Addr(2 * mem.Page4K), Dst: tailDst.Addr(0), Size: mem.Page4K},
	}
	rec := r.runSync(t, Descriptor{Op: OpBatch, PASID: 1, Descs: subs})
	if rec.Status != StatusBatchFail {
		t.Fatalf("batch = %+v, want batch_fail", rec)
	}
	if rec.Result != 1 {
		t.Fatalf("succeeded = %d, want 1 (the pre-fence child)", rec.Result)
	}
	if len(rec.Children) != 3 {
		t.Fatalf("children records = %d, want 3", len(rec.Children))
	}
	if rec.Children[0].Status != StatusSuccess {
		t.Errorf("child 0 = %+v, want success", rec.Children[0])
	}
	if rec.Children[1].Status != StatusPageFault {
		t.Errorf("child 1 = %+v, want page_fault", rec.Children[1])
	}
	if rec.Children[2].Status != StatusNone {
		t.Errorf("child 2 = %+v, want the fence-poisoned zero record", rec.Children[2])
	}
}
