package dsa

import (
	"fmt"
	"sync/atomic"

	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Config sizes one DSA device instance. The zero value is not valid; use
// DefaultConfig for the Sapphire Rapids resource counts (Table 2: 8 WQs,
// 4 engines; spec: 128 WQ entries, 96 read buffers).
type Config struct {
	Name        string
	Socket      int   // socket the device is integrated on
	Engines     int   // processing engines available for grouping
	MaxWQs      int   // work queues available for grouping
	WQEntries   int   // total WQ entries to divide among WQs
	ReadBufs    int   // read buffers to divide among groups
	MaxBatch    int   // maximum descriptors per batch
	MaxTransfer int64 // maximum transfer size per descriptor
	ATCEntries  int   // device address-translation-cache entries
	Timing      Timing
}

// DefaultConfig returns the SPR DSA resource configuration.
func DefaultConfig(name string, socket int) Config {
	return Config{
		Name:        name,
		Socket:      socket,
		Engines:     4,
		MaxWQs:      8,
		WQEntries:   128,
		ReadBufs:    96,
		MaxBatch:    1024,
		MaxTransfer: 1 << 31,
		ATCEntries:  1024,
		Timing:      DefaultTiming(),
	}
}

// Device is one DSA instance (§3.2, Fig 1a): an RCiEP exposing portals,
// holding configured groups of WQs and engines, with an ATC in front of the
// platform IOMMU.
type Device struct {
	Cfg Config
	E   *sim.Engine
	Sys *mem.System

	fabric *sim.Pipe
	groups []*Group
	wqs    []*WQ

	// enabled latches configuration: groups and WQs cannot change after
	// Enable, mirroring the idxd driver's device state machine.
	enabled bool

	spaces map[int]*mem.AddressSpace // PASID → bound address space (SVM)

	atc        map[atcKey]int // page → LRU tick
	atcTick    int
	atcEntries int

	// ddio tracks how many bytes of each destination buffer are currently
	// resident in the LLC's DDIO partition, so streaming rewrites of hot
	// buffers hit the cache while footprints beyond the partition leak to
	// memory (§4.3's "leaky DMA", Fig 10).
	ddio map[mem.Addr]int64

	// probe, when installed, receives raw occupancy and completion events
	// for the streaming-telemetry subsystem (see probe.go).
	probe Probe

	// faults, when armed, injects deterministic page faults, WQ disable
	// windows, and outages (see fault.go). offline is the outage flag,
	// atomic because host-parallel submission paths read it.
	faults  *FaultInjector
	offline atomic.Bool

	stats DeviceStats
}

type atcKey struct {
	pasid int
	page  mem.Addr
}

// DeviceStats aggregates the device's hardware counters (read by the
// internal/pcm telemetry package).
type DeviceStats struct {
	Submitted      int64 // descriptors accepted into WQs (incl. batch parents)
	Retries        int64 // ENQCMD rejections due to full shared WQs
	Completed      int64 // work descriptors completed (incl. batch children)
	BatchesFetched int64
	ATCHits        int64
	ATCMisses      int64
	PageFaults     int64
	BytesRead      int64 // inbound traffic
	BytesWritten   int64 // outbound traffic
	DDIOLeaked     int64 // destination bytes that overflowed the DDIO ways
	InjectedFaults int64 // synthetic page faults taken from the injector
	WQDisables     int64 // WQ disable windows entered
	Outages        int64 // device outage windows entered
}

// New creates a device on system sys. The device starts unconfigured: add
// groups and WQs, then call Enable.
func New(e *sim.Engine, sys *mem.System, cfg Config) *Device {
	if cfg.Engines <= 0 || cfg.MaxWQs <= 0 || cfg.WQEntries <= 0 {
		panic("dsa: invalid device config")
	}
	if cfg.Timing.FabricGBps == 0 {
		cfg.Timing = DefaultTiming()
	}
	return &Device{
		Cfg:        cfg,
		E:          e,
		Sys:        sys,
		fabric:     sim.NewPipe(e, cfg.Timing.FabricGBps),
		spaces:     make(map[int]*mem.AddressSpace),
		atc:        make(map[atcKey]int),
		atcEntries: cfg.ATCEntries,
		ddio:       make(map[mem.Addr]int64),
	}
}

// ddioWrite models a cache-control destination write of n bytes into buf:
// bytes already resident in the DDIO partition are rewritten in place; the
// cold remainder allocates into the partition, and whatever does not fit
// leaks to memory. It returns the bytes that must go to DRAM.
func (d *Device) ddioWrite(buf *mem.Buffer, n int64) (leaked int64) {
	llc := d.Sys.SocketOf(d.Cfg.Socket).LLC
	res := d.ddio[buf.Base]
	cold := buf.Size - res
	if cold > n {
		cold = n
	}
	if cold <= 0 {
		return 0 // fully resident: pure LLC rewrite
	}
	leaked = llc.InsertDDIO(d.Owner(), cold)
	d.ddio[buf.Base] += cold - leaked
	return leaked
}

// BindPASID attaches an address space to the device, as binding a process
// for SVM does (§3.4 F1). Descriptors carry the PASID that selects it.
func (d *Device) BindPASID(as *mem.AddressSpace) {
	d.spaces[as.PASID] = as
}

// space resolves a PASID to its bound address space.
func (d *Device) space(pasid int) (*mem.AddressSpace, error) {
	as, ok := d.spaces[pasid]
	if !ok {
		return nil, fmt.Errorf("dsa: PASID %d not bound to %s", pasid, d.Cfg.Name)
	}
	return as, nil
}

// Stats returns a copy of the device counters.
func (d *Device) Stats() DeviceStats { return d.stats }

// Groups returns the configured groups.
func (d *Device) Groups() []*Group { return d.groups }

// WQs returns every configured work queue on the device.
func (d *Device) WQs() []*WQ { return d.wqs }

// Enabled reports whether the device configuration is latched.
func (d *Device) Enabled() bool { return d.enabled }

// GroupConfig describes one group to configure on a device.
type GroupConfig struct {
	Engines  int // engines assigned to the group
	ReadBufs int // read buffers assigned (0 = fair share of remainder)
	// ExpressBufs carves a guaranteed share of the group's read buffers
	// for its highest-priority WQs (§3.4 F3's second knob): reads from
	// top-priority queues draw from the reserved partition, so bulk reads
	// saturating the remaining buffers cannot throttle the express lane.
	// 0 keeps the single shared allocation.
	ExpressBufs int
	WQs         []WQConfig
}

// WQConfig describes one work queue within a group.
type WQConfig struct {
	Mode     WQMode
	Size     int // entries
	Priority int // 1 (low) .. 15 (high); 0 = default 5
}

// AddGroup configures a group before Enable. It validates resource limits
// the way the idxd driver does and returns the new group.
func (d *Device) AddGroup(cfg GroupConfig) (*Group, error) {
	if d.enabled {
		return nil, fmt.Errorf("dsa: %s already enabled", d.Cfg.Name)
	}
	if cfg.Engines <= 0 {
		return nil, fmt.Errorf("dsa: group needs at least one engine")
	}
	usedEngines, usedWQs, usedEntries, usedBufs := d.usage()
	if usedEngines+cfg.Engines > d.Cfg.Engines {
		return nil, fmt.Errorf("dsa: engine overcommit: %d configured + %d requested > %d",
			usedEngines, cfg.Engines, d.Cfg.Engines)
	}
	if usedWQs+len(cfg.WQs) > d.Cfg.MaxWQs {
		return nil, fmt.Errorf("dsa: WQ overcommit: %d configured + %d requested > %d",
			usedWQs, len(cfg.WQs), d.Cfg.MaxWQs)
	}
	if cfg.ReadBufs < 0 || usedBufs+cfg.ReadBufs > d.Cfg.ReadBufs {
		return nil, fmt.Errorf("dsa: read buffer overcommit")
	}
	if cfg.ExpressBufs < 0 {
		return nil, fmt.Errorf("dsa: negative express read-buffer share")
	}
	if cfg.ReadBufs > 0 && cfg.ExpressBufs >= cfg.ReadBufs {
		return nil, fmt.Errorf("dsa: express share %d must leave bulk read buffers (group has %d)",
			cfg.ExpressBufs, cfg.ReadBufs)
	}
	if len(cfg.WQs) == 0 {
		return nil, fmt.Errorf("dsa: group needs at least one WQ")
	}
	g := &Group{
		ID:          len(d.groups),
		Dev:         d,
		ReadBufs:    cfg.ReadBufs,
		ExpressBufs: cfg.ExpressBufs,
	}
	for i := 0; i < cfg.Engines; i++ {
		g.Engines = append(g.Engines, &Engine{ID: usedEngines + i, group: g})
	}
	for _, wc := range cfg.WQs {
		if wc.Size <= 0 {
			return nil, fmt.Errorf("dsa: WQ size must be positive")
		}
		if usedEntries+wc.Size > d.Cfg.WQEntries {
			return nil, fmt.Errorf("dsa: WQ entry overcommit: %d + %d > %d",
				usedEntries, wc.Size, d.Cfg.WQEntries)
		}
		usedEntries += wc.Size
		prio := wc.Priority
		if prio == 0 {
			prio = 5
		}
		if prio < 1 || prio > 15 {
			return nil, fmt.Errorf("dsa: WQ priority %d out of range [1,15]", prio)
		}
		wq := &WQ{
			ID:       len(d.wqs),
			Dev:      d,
			Mode:     wc.Mode,
			Size:     wc.Size,
			Priority: prio,
			group:    g,
		}
		g.WQs = append(g.WQs, wq)
		d.wqs = append(d.wqs, wq)
	}
	d.groups = append(d.groups, g)
	return g, nil
}

// usage totals the currently configured resources.
func (d *Device) usage() (engines, wqs, entries, bufs int) {
	for _, g := range d.groups {
		engines += len(g.Engines)
		bufs += g.ReadBufs
		for _, wq := range g.WQs {
			wqs++
			entries += wq.Size
		}
	}
	return
}

// Enable latches the configuration and distributes unassigned read buffers
// evenly across groups (the hardware's automatic allocation mode). The
// device then accepts descriptors.
func (d *Device) Enable() error {
	if d.enabled {
		return fmt.Errorf("dsa: %s already enabled", d.Cfg.Name)
	}
	if len(d.groups) == 0 {
		return fmt.Errorf("dsa: %s has no groups configured", d.Cfg.Name)
	}
	_, _, _, usedBufs := d.usage()
	spare := d.Cfg.ReadBufs - usedBufs
	var auto []*Group
	for _, g := range d.groups {
		if g.ReadBufs == 0 {
			auto = append(auto, g)
		}
	}
	for i, g := range auto {
		share := spare / len(auto)
		if i < spare%len(auto) {
			share++
		}
		g.ReadBufs = share
	}
	for _, g := range d.groups {
		g.finalize()
	}
	d.enabled = true
	return nil
}

// translate models an ATC lookup for the page containing addr, returning the
// translation latency (ATC hit or IOMMU walk) and updating the LRU cache.
func (d *Device) translate(pasid int, addr mem.Addr) sim.Time {
	key := atcKey{pasid, addr &^ mem.Addr(mem.Page4K-1)}
	d.atcTick++
	if _, ok := d.atc[key]; ok {
		d.atc[key] = d.atcTick
		d.stats.ATCHits++
		return d.Cfg.Timing.ATCHit
	}
	d.stats.ATCMisses++
	if len(d.atc) >= d.atcEntries {
		// Evict the least recently used entry.
		var victim atcKey
		min := int(^uint(0) >> 1)
		for k, tick := range d.atc {
			if tick < min {
				min, victim = tick, k
			}
		}
		delete(d.atc, victim)
	}
	d.atc[key] = d.atcTick
	return d.Sys.IOMMU.WalkLat()
}

// FlushATC clears the device translation cache (as an IOMMU TLB shootdown
// would).
func (d *Device) FlushATC() {
	d.atc = make(map[atcKey]int)
}

// Owner is the LLC occupancy tag for the device's DDIO writes.
func (d *Device) Owner() string { return d.Cfg.Name }
