package dsa

import (
	"errors"
	"time"

	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// llcLat is the access latency of LLC-resident data for the device (Fig 15's
// "L" placements) and for DDIO-steered destination writes.
const llcLat = 33 * time.Nanosecond

// Engine is one processing engine (PE). A PE processes one descriptor at a
// time (§3.2): decode/translate, then data movement through the device
// fabric and memory pipes — with memory-level parallelism inside one
// descriptor supplied by the group's read buffers — and is held until the
// descriptor's data movement completes. Throughput scaling beyond one
// descriptor therefore comes from multiple PEs per group (Fig 7) and from
// deeper in-flight windows (Fig 4). Page faults with block-on-fault stall
// the engine, which is the QoS hazard §4.3 describes.
type Engine struct {
	ID    int
	group *Group
	busy  bool

	processed int64
	busyTime  sim.Time
}

// Processed returns the number of descriptors this engine has issued.
func (eng *Engine) Processed() int64 { return eng.processed }

// BusyTime returns the cumulative engine front-end occupancy.
func (eng *Engine) BusyTime() sim.Time { return eng.busyTime }

// free releases the engine and re-arms dispatch.
func (eng *Engine) free(at sim.Time) {
	e := eng.group.Dev.E
	e.At(at, func() {
		eng.busy = false
		eng.group.dispatch()
	})
}

// execute runs one descriptor on the engine. Called from dispatch with the
// engine marked free; it must set busy and eventually free the engine.
// Every execute increments the group's inflight count exactly once; the
// matching decrement happens when the work's completion record is written.
func (eng *Engine) execute(wk *work) {
	eng.busy = true
	g := eng.group
	d := g.Dev
	e := d.E
	now := e.Now()
	wk.comp.DispatchTime = now
	eng.processed++
	g.inflight++

	switch wk.d.Op {
	case OpBatch:
		eng.executeBatch(wk)
		return
	case OpDrain:
		eng.executeDrain(wk)
		return
	}

	t := d.Cfg.Timing
	issue := t.EngineSetup
	if wk.fromBatch {
		issue = t.BatchSubDesc
	}

	as, err := d.space(wk.d.PASID)
	if err != nil {
		eng.finish(wk, now+issue, CompletionRecord{Status: StatusError, Err: err})
		eng.free(now + issue)
		return
	}

	spans, err := spansOf(&wk.d)
	if err != nil {
		eng.finish(wk, now+issue, CompletionRecord{Status: StatusError, Err: err})
		eng.free(now + issue)
		return
	}

	// Validate addresses up front (descriptor sanity, not faults).
	for _, sp := range spans {
		if sp.n == 0 {
			continue
		}
		if _, err := as.View(sp.addr, sp.n); err != nil {
			eng.finish(wk, now+issue, CompletionRecord{Status: StatusError, Err: err})
			eng.free(now + issue)
			return
		}
	}

	// Address translation: the pipeline-fill translation of the first
	// page. Later pages overlap with data movement (why page size barely
	// matters, Fig 8).
	var trans sim.Time
	if len(spans) > 0 {
		trans = d.translate(wk.d.PASID, spans[0].addr)
	}

	// Page faults.
	var faultDelay sim.Time
	upTo := wk.d.Size
	faulted := false
	var faultAddr mem.Addr
	for _, sp := range spans {
		if sp.n == 0 {
			continue
		}
		for {
			err := as.CheckMapped(sp.addr, sp.n)
			if err == nil {
				break
			}
			var pf *mem.PageFaultError
			if !errors.As(err, &pf) {
				eng.finish(wk, now+issue, CompletionRecord{Status: StatusError, Err: err})
				eng.free(now + issue)
				return
			}
			d.stats.PageFaults++
			if wk.d.Flags&FlagBlockOnFault != 0 {
				// The engine stalls while the OS resolves the fault.
				faultDelay += d.Sys.IOMMU.FaultLat()
				if err := as.ResolveFault(pf.Addr); err != nil {
					eng.finish(wk, now+issue, CompletionRecord{Status: StatusError, Err: err})
					eng.free(now + issue)
					return
				}
				continue
			}
			// Partial completion at the faulting offset.
			faulted = true
			faultAddr = pf.Addr
			if off := int64(pf.Addr - sp.addr); off < upTo {
				upTo = off
			}
			break
		}
		if faulted {
			break
		}
	}

	// Synthetic faults from the injector, resolved exactly like real ones:
	// block-on-fault stalls the engine for the OS round trip; otherwise
	// the device reports a partial completion after the fault-report cost.
	if !faulted && d.faults != nil {
		if off, hit := d.faults.roll(&wk.d, now); hit {
			d.stats.PageFaults++
			d.stats.InjectedFaults++
			if wk.d.Flags&FlagBlockOnFault != 0 {
				faultDelay += d.Sys.IOMMU.FaultLat()
			} else {
				faulted = true
				upTo = off
				if len(spans) > 0 {
					faultAddr = spans[0].addr + mem.Addr(off)
				}
				faultDelay += t.FaultReport
			}
		}
	}

	frontEnd := issue + trans + faultDelay
	dataStart := now + frontEnd

	dataDone := dataStart
	if !faulted {
		dataDone = eng.reserveData(wk, spans, dataStart)
	}
	// Completion record write plus the fabric hop back to the host LLC,
	// where software observes it.
	finishAt := dataDone + t.CRWrite + t.PortalHop/2

	rec := CompletionRecord{}
	if faulted {
		rec = CompletionRecord{Status: StatusPageFault, BytesCompleted: upTo, FaultAddr: faultAddr}
		if upTo > 0 {
			// Apply the completed prefix functionally for ops with
			// byte-wise prefixes (copy/fill); result-producing ops
			// report the fault without side effects.
			switch wk.d.Op {
			case OpMemmove, OpFill, OpCopyCRC, OpDualcast:
				pr := execute(as, &wk.d, upTo)
				pr.Status = StatusPageFault
				pr.BytesCompleted = upTo
				pr.FaultAddr = faultAddr
				rec = pr
			}
		}
		eng.finish(wk, finishAt, rec)
	} else {
		// Defer functional execution to completion time so overlapping
		// descriptors apply in completion order.
		eng.finishFunc(wk, finishAt, func() CompletionRecord {
			return execute(as, &wk.d, wk.d.Size)
		})
	}
	eng.busyTime += dataDone - now
	eng.free(dataDone)
}

// reserveData books every shared resource the descriptor's data movement
// needs, starting at dataStart, and returns the data completion instant.
func (eng *Engine) reserveData(wk *work, spans []span, dataStart sim.Time) sim.Time {
	g := eng.group
	d := g.Dev
	t := d.Cfg.Timing
	as, _ := d.space(wk.d.PASID)

	var readBytes, writeBytes int64
	done := dataStart
	for _, sp := range spans {
		if sp.n == 0 {
			continue
		}
		buf, _, err := as.Lookup(sp.addr)
		if err != nil {
			continue
		}
		var spDone sim.Time
		if buf.CacheResident && !sp.write {
			// LLC-resident source: no memory traffic, short latency.
			spDone = dataStart + llcLat + sim.GBps(sp.n, t.FabricGBps)
			readBytes += sp.n
		} else if sp.write {
			writeBytes += sp.n
			memBytes := sp.n
			start := dataStart
			if buf.CacheResident {
				// Fig 15 "L" destination: the lines are already hot in
				// the LLC; writes are pure cache updates.
				memBytes = 0
				spDone = start + llcLat + sim.GBps(sp.n, t.FabricGBps)
			} else if wk.d.Flags&FlagCacheControl != 0 {
				// Destination steered to the LLC via the DDIO ways
				// (§6.2 G3): only the footprint overflow leaks to memory.
				leaked := d.ddioWrite(buf, sp.n)
				d.stats.DDIOLeaked += leaked
				memBytes = leaked
				spDone = start + llcLat + sim.GBps(sp.n-leaked, t.FabricGBps)
			}
			if memBytes > 0 && buf.Node != nil {
				lat := d.Sys.AccessLat(d.Cfg.Socket, buf.Node, true)
				nd := d.Sys.ReserveTrafficAt(start, d.Cfg.Socket, buf.Node, memBytes, true)
				if nd+lat > spDone {
					spDone = nd + lat
				}
			}
			d.stats.BytesWritten += sp.n
		} else {
			readBytes += sp.n
			if buf.Node != nil {
				lat := d.Sys.AccessLat(d.Cfg.Socket, buf.Node, false)
				nd := d.Sys.ReserveTrafficAt(dataStart, d.Cfg.Socket, buf.Node, sp.n, false)
				spDone = nd + lat
			}
			d.stats.BytesRead += sp.n
		}
		if spDone > done {
			done = spDone
		}
	}

	// Device fabric carries the dominant direction.
	fb := readBytes
	if writeBytes > fb {
		fb = writeBytes
	}
	if fb > 0 {
		if fd := d.fabric.ReserveAt(dataStart, fb); fd > done {
			done = fd
		}
	}
	// Group read buffers bound sustainable read bandwidth; with an express
	// partition, top-priority reads draw from their reserved lane.
	if readBytes > 0 {
		if pipe := g.readPipeFor(wk); pipe != nil {
			if rd := pipe.ReserveAt(dataStart, readBytes); rd > done {
				done = rd
			}
		}
	}
	return done
}

// finish schedules the completion record write at instant at.
func (eng *Engine) finish(wk *work, at sim.Time, rec CompletionRecord) {
	eng.finishFunc(wk, at, func() CompletionRecord { return rec })
}

// finishFunc schedules fn to produce the completion record at instant at and
// delivers it.
func (eng *Engine) finishFunc(wk *work, at sim.Time, fn func() CompletionRecord) {
	g := eng.group
	d := g.Dev
	d.E.At(at, func() {
		rec := fn()
		d.stats.Completed++
		g.inflight--
		wk.comp.complete(rec)
		if wk.wq != nil {
			wk.wq.noteCompleted(wk.d.PASID, wk.comp.Latency())
		}
		if wk.parent != nil {
			wk.parent.childDone(wk.childIdx, rec)
		}
		g.drainSig.Broadcast(d.E)
	})
}

// executeDrain completes once every previously dispatched descriptor in the
// group has finished (inflight drops to 1 — the drain itself). The engine is
// held for the duration, as the drain descriptor occupies its slot.
func (eng *Engine) executeDrain(wk *work) {
	g := eng.group
	d := g.Dev
	t := d.Cfg.Timing
	complete := func() {
		at := d.E.Now() + t.EngineSetup + t.CRWrite
		eng.finish(wk, at, CompletionRecord{Status: StatusSuccess})
		eng.free(at)
	}
	if g.inflight <= 1 {
		complete()
		return
	}
	d.E.Go("drain-wait", func(p *sim.Proc) {
		for g.inflight > 1 {
			p.Wait(&g.drainSig)
		}
		complete()
	})
}

// batchState aggregates a batch descriptor's children (§3.4 F2).
type batchState struct {
	eng       *Engine
	wk        *work
	children  []Descriptor
	childRecs []CompletionRecord // per-child records, indexed by child position
	nextIssue int
	completed int
	succeeded int
	failed    bool
	// poisoned marks a fence reached after an earlier child failed: the
	// remaining children are never attempted (their records stay
	// StatusNone) and the parent completes as soon as the issued children
	// drain. This is how a fused pipeline chain stops feeding garbage to
	// downstream stages.
	poisoned bool
}

// executeBatch models the batch processing unit: fetch the descriptor array
// from memory in one read, then stream sub-descriptors to the group's
// engines at BatchSubDesc intervals (cheaper than portal-submitted
// descriptors, which is the Fig 3/9 batching win).
func (eng *Engine) executeBatch(wk *work) {
	g := eng.group
	d := g.Dev
	t := d.Cfg.Timing
	now := d.E.Now()
	d.stats.BatchesFetched++

	n := int64(len(wk.d.Descs)) * 64
	// Fetch the descriptor array: one memory round trip plus fabric
	// occupancy for 64×N bytes. The array lives in the submitting core's
	// local memory, so the round trip is priced against the submitter's
	// home node — a device on the other socket pays the UPI hop.
	var fetchLat sim.Time = 110 * time.Nanosecond
	if home := d.Sys.HomeNode(wk.d.SubmitterSocket); home != nil {
		fetchLat = d.Sys.AccessLat(d.Cfg.Socket, home, false)
	}
	fetchDone := d.fabric.ReserveAt(now+t.EngineSetup+fetchLat, n)

	bs := &batchState{
		eng:       eng,
		wk:        wk,
		children:  wk.d.Descs,
		childRecs: make([]CompletionRecord, len(wk.d.Descs)),
	}
	d.E.At(fetchDone, func() {
		bs.issueReady()
		// The fetching engine frees once the children are queued; it can
		// then pick children itself.
		eng.busy = false
		g.dispatch()
	})
}

// issueReady queues children up to (and including) the next fence barrier.
// Children after a fence wait until everything issued so far completes; a
// fence reached after a failure poisons the remainder of the batch.
func (bs *batchState) issueReady() {
	g := bs.eng.group
	for bs.nextIssue < len(bs.children) {
		child := bs.children[bs.nextIssue]
		if child.Flags&FlagFence != 0 {
			if bs.completed < bs.nextIssue {
				return // barrier: wait for earlier children
			}
			if bs.failed {
				bs.poisoned = true
				return
			}
		}
		child.PASID = bs.wk.d.PASID
		cw := &work{
			d:         child,
			comp:      newCompletion(g.Dev.E),
			parent:    bs,
			childIdx:  bs.nextIssue,
			fromBatch: true,
			enqueued:  g.Dev.E.Now(),
		}
		cw.comp.SubmitTime = bs.wk.comp.SubmitTime
		bs.nextIssue++
		g.batchQ.Push(cw)
	}
}

// childDone records a child completion and, when the batch is complete,
// writes the batch-granular completion record. Children can finish out of
// submission order (several engines drain the batch queue), so the record
// lands at the child's own index.
func (bs *batchState) childDone(idx int, rec CompletionRecord) {
	bs.completed++
	bs.childRecs[idx] = rec
	if rec.Status == StatusSuccess {
		bs.succeeded++
	} else {
		bs.failed = true
	}
	g := bs.eng.group
	if !bs.poisoned && bs.nextIssue < len(bs.children) {
		bs.issueReady() // may poison at a fence after a failed child
		if !bs.poisoned {
			g.dispatch()
			return
		}
	}
	if bs.completed < bs.nextIssue {
		return // issued children still in flight
	}
	if bs.poisoned || bs.completed == len(bs.children) {
		d := g.Dev
		status := StatusSuccess
		if bs.failed {
			status = StatusBatchFail
		}
		at := d.E.Now() + d.Cfg.Timing.CRWrite
		d.E.At(at, func() {
			d.stats.Completed++
			g.inflight-- // the batch parent's own inflight slot
			bs.wk.comp.complete(CompletionRecord{
				Status:   status,
				Result:   uint64(bs.succeeded),
				Children: bs.childRecs,
			})
			if bs.wk.wq != nil {
				bs.wk.wq.noteCompleted(bs.wk.d.PASID, bs.wk.comp.Latency())
			}
			g.drainSig.Broadcast(d.E)
		})
	}
}
