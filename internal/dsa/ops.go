package dsa

import (
	"errors"
	"fmt"

	"dsasim/internal/delta"
	"dsasim/internal/dif"
	"dsasim/internal/isal"
	"dsasim/internal/mem"
)

// span is one memory range a descriptor accesses, used for fault checking
// and traffic accounting.
type span struct {
	addr  mem.Addr
	n     int64
	write bool
}

// spansOf enumerates the ranges descriptor d touches. Destination sizes for
// size-changing operations (DIF, delta) are derived from the transfer size.
func spansOf(d *Descriptor) ([]span, error) {
	s := d.Size
	switch d.Op {
	case OpNop, OpDrain, OpBatch:
		return nil, nil
	case OpMemmove, OpCopyCRC:
		return []span{{d.Src, s, false}, {d.Dst, s, true}}, nil
	case OpFill:
		return []span{{d.Dst, s, true}}, nil
	case OpCompare:
		return []span{{d.Src, s, false}, {d.Src2, s, false}}, nil
	case OpComparePattern, OpCRCGen, OpCacheFlush:
		return []span{{d.Src, s, false}}, nil
	case OpCreateDelta:
		return []span{{d.Src, s, false}, {d.Src2, s, false}, {d.Dst, d.MaxDst, true}}, nil
	case OpApplyDelta:
		// Src is the delta record (Size bytes); Dst is the buffer being
		// patched (MaxDst bytes).
		return []span{{d.Src, s, false}, {d.Dst, d.MaxDst, true}}, nil
	case OpDualcast:
		return []span{{d.Src, s, false}, {d.Dst, s, true}, {d.Dst2, s, true}}, nil
	case OpDIFInsert:
		if !d.DIFBlock.Valid() {
			return nil, fmt.Errorf("dsa: invalid DIF block size %d", d.DIFBlock)
		}
		out := s / int64(d.DIFBlock) * d.DIFBlock.Protected()
		return []span{{d.Src, s, false}, {d.Dst, out, true}}, nil
	case OpDIFCheck:
		if !d.DIFBlock.Valid() {
			return nil, fmt.Errorf("dsa: invalid DIF block size %d", d.DIFBlock)
		}
		return []span{{d.Src, s, false}}, nil
	case OpDIFStrip:
		if !d.DIFBlock.Valid() {
			return nil, fmt.Errorf("dsa: invalid DIF block size %d", d.DIFBlock)
		}
		out := s / d.DIFBlock.Protected() * int64(d.DIFBlock)
		return []span{{d.Src, s, false}, {d.Dst, out, true}}, nil
	case OpDIFUpdate:
		if !d.DIFBlock.Valid() {
			return nil, fmt.Errorf("dsa: invalid DIF block size %d", d.DIFBlock)
		}
		return []span{{d.Src, s, false}, {d.Dst, s, true}}, nil
	default:
		return nil, fmt.Errorf("dsa: unsupported opcode %v", d.Op)
	}
}

// execute performs descriptor d's operation on address space as, moving real
// bytes, and returns the completion record. upTo limits the bytes processed
// (partial completion after a page fault); pass d.Size for full execution.
func execute(as *mem.AddressSpace, d *Descriptor, upTo int64) CompletionRecord {
	rec := CompletionRecord{Status: StatusSuccess, BytesCompleted: upTo}
	fail := func(err error) CompletionRecord {
		return CompletionRecord{Status: StatusError, Err: err}
	}
	switch d.Op {
	case OpNop, OpDrain, OpCacheFlush:
		// CacheFlush's timing effect is modelled at the LLC level by the
		// engine; there is no byte-level effect to apply here.
		rec.BytesCompleted = 0
		return rec

	case OpMemmove:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		dst, err := as.View(d.Dst, d.Size)
		if err != nil {
			return fail(err)
		}
		copy(dst[:upTo], src[:upTo])
		return rec

	case OpFill:
		dst, err := as.View(d.Dst, d.Size)
		if err != nil {
			return fail(err)
		}
		isal.Fill(dst[:upTo], d.Pattern)
		return rec

	case OpCompare:
		a, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		b, err := as.View(d.Src2, d.Size)
		if err != nil {
			return fail(err)
		}
		off, eq := isal.Compare(a[:upTo], b[:upTo])
		rec.Mismatch = !eq
		rec.Result = uint64(off)
		return rec

	case OpComparePattern:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		off, eq := isal.ComparePattern(src[:upTo], d.Pattern)
		rec.Mismatch = !eq
		rec.Result = uint64(off)
		return rec

	case OpCRCGen:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		rec.Result = uint64(isal.CRC32(d.CRCSeed, src[:upTo]))
		return rec

	case OpCopyCRC:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		dst, err := as.View(d.Dst, d.Size)
		if err != nil {
			return fail(err)
		}
		copy(dst[:upTo], src[:upTo])
		rec.Result = uint64(isal.CRC32(d.CRCSeed, src[:upTo]))
		return rec

	case OpDualcast:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		d1, err := as.View(d.Dst, d.Size)
		if err != nil {
			return fail(err)
		}
		d2, err := as.View(d.Dst2, d.Size)
		if err != nil {
			return fail(err)
		}
		copy(d1[:upTo], src[:upTo])
		copy(d2[:upTo], src[:upTo])
		return rec

	case OpCreateDelta:
		orig, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		mod, err := as.View(d.Src2, d.Size)
		if err != nil {
			return fail(err)
		}
		out, err := as.View(d.Dst, d.MaxDst)
		if err != nil {
			return fail(err)
		}
		used, err := delta.Create(out, orig, mod)
		if errors.Is(err, delta.ErrRecordFull) {
			return CompletionRecord{Status: StatusRecordFull, Err: err}
		}
		if err != nil {
			return fail(err)
		}
		rec.Result = uint64(used)
		return rec

	case OpApplyDelta:
		recBytes, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		dst, err := as.View(d.Dst, d.MaxDst)
		if err != nil {
			return fail(err)
		}
		if err := delta.Apply(dst, recBytes, int(d.Size)); err != nil {
			return fail(err)
		}
		return rec

	case OpDIFInsert:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		out := d.Size / int64(d.DIFBlock) * d.DIFBlock.Protected()
		dst, err := as.View(d.Dst, out)
		if err != nil {
			return fail(err)
		}
		if err := dif.Insert(dst, src, d.DIFBlock, d.DIFTags); err != nil {
			return fail(err)
		}
		return rec

	case OpDIFCheck:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		if err := dif.Check(src, d.DIFBlock, d.DIFTags); err != nil {
			var ce *dif.CheckError
			if errors.As(err, &ce) {
				return CompletionRecord{Status: StatusDIFError, Err: err, Result: uint64(ce.Block)}
			}
			return fail(err)
		}
		return rec

	case OpDIFStrip:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		out := d.Size / d.DIFBlock.Protected() * int64(d.DIFBlock)
		dst, err := as.View(d.Dst, out)
		if err != nil {
			return fail(err)
		}
		if err := dif.Strip(dst, src, d.DIFBlock, d.DIFTags); err != nil {
			var ce *dif.CheckError
			if errors.As(err, &ce) {
				return CompletionRecord{Status: StatusDIFError, Err: err, Result: uint64(ce.Block)}
			}
			return fail(err)
		}
		return rec

	case OpDIFUpdate:
		src, err := as.View(d.Src, d.Size)
		if err != nil {
			return fail(err)
		}
		dst, err := as.View(d.Dst, d.Size)
		if err != nil {
			return fail(err)
		}
		if err := dif.Update(dst, src, d.DIFBlock, d.DIFTags, d.DIFTags2); err != nil {
			var ce *dif.CheckError
			if errors.As(err, &ce) {
				return CompletionRecord{Status: StatusDIFError, Err: err, Result: uint64(ce.Block)}
			}
			return fail(err)
		}
		return rec

	default:
		return CompletionRecord{Status: StatusBadOpcode, Err: fmt.Errorf("dsa: opcode %v", d.Op)}
	}
}
