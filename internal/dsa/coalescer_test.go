package dsa

import (
	"testing"
	"time"

	"dsasim/internal/sim"
)

// coalRig builds a device plus a client whose interrupts are moderated by
// a coalescer with the given count/window.
func coalRig(t *testing.T, count int, window sim.Time) (*rig, *Client) {
	t.Helper()
	r := newRig(t)
	cl := NewClient(r.dev.WQs()[0], nil)
	cl.Coal = NewCoalescer(r.e, count, window, r.dev.Cfg.Timing.IntrCoalesceTick)
	return r, cl
}

// submitCopies issues n size-byte copies back to back and returns their
// completions (buffers rotate within one allocation).
func submitCopies(t *testing.T, r *rig, cl *Client, p *sim.Proc, n int, size int64) []*Completion {
	t.Helper()
	src := r.alloc(size)
	dst := r.alloc(size)
	comps := make([]*Completion, 0, n)
	for i := 0; i < n; i++ {
		cl.Prepare(p)
		comp, err := cl.Submit(p, Descriptor{
			Op: OpMemmove, PASID: r.as.PASID, Src: src.Addr(0), Dst: dst.Addr(0), Size: size,
		})
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
			return comps
		}
		comps = append(comps, comp)
	}
	return comps
}

// Eight completions inside one window must cost a single interrupt: the
// first waiter pays delivery + handler once, and the seven siblings drain
// at the same virtual instant for free.
func TestCoalescerCountTriggerSharesOneDelivery(t *testing.T) {
	const n = 8
	r, cl := coalRig(t, n, 100*time.Microsecond)
	tm := r.dev.Cfg.Timing
	r.e.Go("bulk", func(p *sim.Proc) {
		comps := submitCopies(t, r, cl, p, n, 4<<10)
		first := cl.Wait(p, comps[0], Interrupt)
		if first < tm.IntrDeliver+tm.IntrHandler {
			t.Errorf("first wait %v did not pay the delivery latency", first)
		}
		drainStart := p.Now()
		for _, comp := range comps[1:] {
			cl.Wait(p, comp, Interrupt)
		}
		if p.Now() != drainStart {
			t.Errorf("sibling drains advanced time by %v, want 0 (records already harvested)", p.Now()-drainStart)
		}
	})
	r.e.Run()
	if got := cl.Coal.Deliveries(); got != 1 {
		t.Errorf("Deliveries = %d, want 1", got)
	}
	if got := cl.Coal.CoalescedRecords(); got != n-1 {
		t.Errorf("CoalescedRecords = %d, want %d", got, n-1)
	}
}

// A tail of fewer-than-count records must be announced by the window
// timer: the wait resolves at first-finish + window + delivery, never
// hangs, and still costs one interrupt for the whole tail.
func TestCoalescerWindowTriggerDeliversTail(t *testing.T) {
	window := 20 * time.Microsecond
	r, cl := coalRig(t, 64, window)
	tm := r.dev.Cfg.Timing
	r.e.Go("tail", func(p *sim.Proc) {
		comps := submitCopies(t, r, cl, p, 3, 4<<10)
		comps[2].Wait(p) // all records written, none announced
		if cl.Coal.Pending() != 3 {
			t.Errorf("Pending = %d before the window expired, want 3", cl.Coal.Pending())
		}
		firstFinish := comps[0].FinishTime
		cl.Wait(p, comps[0], Interrupt)
		want := firstFinish + cl.Coal.Window() + tm.IntrDeliver + tm.IntrHandler
		if p.Now() != want {
			t.Errorf("tail wait resolved at %v, want %v (first finish %v + window %v + delivery)",
				p.Now(), want, firstFinish, cl.Coal.Window())
		}
	})
	r.e.Run()
	if got := cl.Coal.Deliveries(); got != 1 {
		t.Errorf("Deliveries = %d, want 1", got)
	}
}

// Poll and UMWAIT waits observe the completion record directly: interrupt
// moderation must not delay them even when the client carries a coalescer.
func TestCoalescerDoesNotDelayPollOrUMWait(t *testing.T) {
	for _, mode := range []WaitMode{Poll, UMWait} {
		r, cl := coalRig(t, 64, 500*time.Microsecond)
		r.e.Go("poller", func(p *sim.Proc) {
			comps := submitCopies(t, r, cl, p, 2, 4<<10)
			cl.Wait(p, comps[0], mode)
			cl.Wait(p, comps[1], mode)
			// Both records read well before the 500µs window could expire.
			if p.Now() >= 500*time.Microsecond {
				t.Errorf("mode %v: wait stretched to %v — moderated like an interrupt", mode, p.Now())
			}
		})
		r.e.Run()
	}
}

// The moderation window rounds up to the device's timer granularity.
func TestCoalescerWindowRoundsToTick(t *testing.T) {
	e := sim.New()
	k := NewCoalescer(e, 8, 1100*time.Nanosecond, 500*time.Nanosecond)
	if got := k.Window(); got != 1500*time.Nanosecond {
		t.Errorf("Window = %v, want 1.5µs (1.1µs rounded up to the 500ns tick)", got)
	}
	exact := NewCoalescer(e, 8, 1500*time.Nanosecond, 500*time.Nanosecond)
	if got := exact.Window(); got != 1500*time.Nanosecond {
		t.Errorf("aligned Window = %v, want unchanged 1.5µs", got)
	}
	free := NewCoalescer(e, 8, 1100*time.Nanosecond, 0)
	if got := free.Window(); got != 1100*time.Nanosecond {
		t.Errorf("tickless Window = %v, want exact 1.1µs", got)
	}
}

// A count-only coalescer would strand a tail forever; the constructor
// refuses it.
func TestCoalescerRequiresWindowWithCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCoalescer(count>1, window=0) did not panic")
		}
	}()
	NewCoalescer(sim.New(), 8, 0, 0)
}

// A waiter arriving long after its interrupt fired pays only the handler
// residue, not a fresh delivery: the record was harvested when the
// interrupt ran.
func TestCoalescerLateWaiterPaysNoSecondDelivery(t *testing.T) {
	r, cl := coalRig(t, 2, 50*time.Microsecond)
	tm := r.dev.Cfg.Timing
	r.e.Go("late", func(p *sim.Proc) {
		comps := submitCopies(t, r, cl, p, 2, 4<<10)
		comps[1].Wait(p)
		p.Sleep(200 * time.Microsecond) // busy elsewhere while the interrupt fires
		start := p.Now()
		cl.Wait(p, comps[0], Interrupt)
		// First wait of the epoch still charges the handler cost, but the
		// delivery instant is long past: no 2µs delivery stall.
		if got := p.Now() - start; got != tm.IntrHandler {
			t.Errorf("late wait cost %v, want the %v handler charge only", got, tm.IntrHandler)
		}
		if got := cl.Wait(p, comps[1], Interrupt); got != 0 {
			t.Errorf("second record cost %v, want 0", got)
		}
	})
	r.e.Run()
}

// Two processes parked on completions of the same window both wake at the
// interrupt: the payer charges delivery + handler, and the sibling — whose
// record is harvested by that same handler pass — resolves no earlier than
// the pass completes, not at the raise instant.
func TestCoalescerParkedSiblingResolvesAfterHandlerPass(t *testing.T) {
	r, cl := coalRig(t, 2, 50*time.Microsecond)
	tm := r.dev.Cfg.Timing
	var comps []*Completion
	var payerAt, siblingAt sim.Time
	r.e.Go("submit", func(p *sim.Proc) {
		comps = submitCopies(t, r, cl, p, 2, 4<<10)
	})
	r.e.Go("payer", func(p *sim.Proc) {
		for comps == nil {
			p.Sleep(100 * time.Nanosecond)
		}
		cl.Wait(p, comps[0], Interrupt)
		payerAt = p.Now()
	})
	r.e.Go("sibling", func(p *sim.Proc) {
		for comps == nil {
			p.Sleep(100 * time.Nanosecond)
		}
		cl.Wait(p, comps[1], Interrupt)
		siblingAt = p.Now()
	})
	r.e.Run()
	if cl.Coal.Deliveries() != 1 {
		t.Fatalf("Deliveries = %d, want 1", cl.Coal.Deliveries())
	}
	if siblingAt != payerAt {
		t.Errorf("sibling resolved at %v, payer at %v — both must resolve when the handler pass completes", siblingAt, payerAt)
	}
	if wantMin := comps[1].FinishTime + tm.IntrDeliver + tm.IntrHandler; siblingAt < wantMin {
		t.Errorf("sibling resolved at %v, before the delivery+handler pass could finish (%v)", siblingAt, wantMin)
	}
}
