package dsa

import (
	"testing"

	"dsasim/internal/isal"
	"dsasim/internal/sim"
)

// A fence on the FIRST batch child orders it against nothing (no prior
// children exist), so it must issue immediately rather than deadlock the
// batch processing unit waiting for zero completions.
func TestBatchFenceOnFirstChild(t *testing.T) {
	r := newRig(t)
	src := r.alloc(8192)
	dst := r.alloc(8192)
	sim.NewRand(20).Bytes(src.Bytes())
	subs := []Descriptor{
		{Op: OpMemmove, Flags: FlagFence, Src: src.Addr(0), Dst: dst.Addr(0), Size: 4096},
		{Op: OpMemmove, Src: src.Addr(4096), Dst: dst.Addr(4096), Size: 4096},
	}
	rec := r.runSync(t, Descriptor{Op: OpBatch, PASID: 1, Descs: subs})
	if rec.Status != StatusSuccess || rec.Result != 2 {
		t.Fatalf("fence-first batch = %+v", rec)
	}
}

// Back-to-back fences fully serialize a chain: each child waits for every
// earlier one, so a 4-child fenced chain on a 4-engine group takes longer
// than the same chain unfenced (which spreads across the engines). This is
// exactly the chain shape pipeline compilation emits for a linear DAG.
func TestBatchBackToBackFencesSerialize(t *testing.T) {
	run := func(flags Flags) sim.Time {
		r := newRig(t)
		n := int64(64 << 10)
		src := r.alloc(4 * n)
		dst := r.alloc(4 * n)
		var subs []Descriptor
		for i := int64(0); i < 4; i++ {
			f := flags
			if i == 0 {
				f = 0 // nothing to order against
			}
			subs = append(subs, Descriptor{
				Op: OpMemmove, Flags: f, Src: src.Addr(i * n), Dst: dst.Addr(i * n), Size: n,
			})
		}
		wq := r.dev.WQs()[0]
		cl := NewClient(wq, nil)
		var lat sim.Time
		r.e.Go("bench", func(p *sim.Proc) {
			comp, err := cl.RunSync(p, Descriptor{Op: OpBatch, PASID: 1, Descs: subs}, Poll)
			if err != nil {
				t.Error(err)
				return
			}
			if comp.Record().Status != StatusSuccess {
				t.Errorf("batch = %+v", comp.Record())
			}
			lat = comp.Latency()
		})
		r.e.Run()
		return lat
	}
	fenced := run(FlagFence)
	parallel := run(0)
	if fenced <= parallel {
		t.Fatalf("fully fenced chain latency %v not above parallel %v", fenced, parallel)
	}
}

// The batch parent surfaces one completion record per child (real DSA
// writes a CR for every batch child that requests one), in submission
// order — pipeline result scatter depends on both the presence and the
// ordering, even when out-of-order engines finish children out of order.
func TestBatchChildCompletionRecords(t *testing.T) {
	r := newRig(t)
	n := 4
	bufs := make([][]byte, n)
	var subs []Descriptor
	for i := 0; i < n; i++ {
		// Mixed sizes so children finish out of submission order.
		size := int64(1024 << (n - 1 - i))
		b := r.alloc(size)
		sim.NewRand(uint64(30 + i)).Bytes(b.Bytes())
		bufs[i] = b.Bytes()
		subs = append(subs, Descriptor{Op: OpCRCGen, Src: b.Addr(0), Size: size})
	}
	rec := r.runSync(t, Descriptor{Op: OpBatch, PASID: 1, Descs: subs})
	if rec.Status != StatusSuccess {
		t.Fatalf("batch = %+v", rec)
	}
	if len(rec.Children) != n {
		t.Fatalf("children records = %d, want %d", len(rec.Children), n)
	}
	for i, cr := range rec.Children {
		if cr.Status != StatusSuccess {
			t.Errorf("child %d status = %v", i, cr.Status)
		}
		if want := uint64(isal.CRC32(0, bufs[i])); cr.Result != want {
			t.Errorf("child %d CRC = %#x, want %#x (records out of order?)", i, cr.Result, want)
		}
	}
}

// Non-batch descriptors carry no child records.
func TestSingleDescriptorHasNoChildRecords(t *testing.T) {
	r := newRig(t)
	buf := r.alloc(1024)
	rec := r.runSync(t, Descriptor{Op: OpFill, PASID: 1, Dst: buf.Addr(0), Size: 1024, Pattern: 7})
	if rec.Status != StatusSuccess || rec.Children != nil {
		t.Fatalf("single-descriptor record = %+v, want nil Children", rec)
	}
}
