// Package dsa models the Intel Data Streaming Accelerator as described in
// §3 of the paper: an on-chip device with configurable groups of work queues
// (WQs) and processing engines (PEs), accepting 64-byte work descriptors via
// memory-mapped portals, executing data-streaming operations on shared
// virtual memory, and reporting results through completion records.
//
// The model is functional *and* timed: descriptors really move bytes in a
// mem.AddressSpace (so results are verifiable), while a calibrated cost
// model in timing.go produces the latency/throughput behaviour measured in
// the paper's Figs 2–15.
package dsa

import (
	"fmt"

	"dsasim/internal/dif"
	"dsasim/internal/mem"
)

// OpType is a DSA operation code (Table 1; numbering follows the DSA
// architecture specification's opcode groups).
type OpType uint8

// Operation codes supported by the device.
const (
	OpNop            OpType = 0x00
	OpBatch          OpType = 0x01
	OpDrain          OpType = 0x02
	OpMemmove        OpType = 0x03
	OpFill           OpType = 0x04
	OpCompare        OpType = 0x05
	OpComparePattern OpType = 0x06
	OpCreateDelta    OpType = 0x07
	OpApplyDelta     OpType = 0x08
	OpDualcast       OpType = 0x09
	OpCRCGen         OpType = 0x10
	OpCopyCRC        OpType = 0x11
	OpDIFCheck       OpType = 0x12
	OpDIFInsert      OpType = 0x13
	OpDIFStrip       OpType = 0x14
	OpDIFUpdate      OpType = 0x15
	OpCacheFlush     OpType = 0x20
)

// String returns the spec-style operation name.
func (o OpType) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpBatch:
		return "batch"
	case OpDrain:
		return "drain"
	case OpMemmove:
		return "memmove"
	case OpFill:
		return "fill"
	case OpCompare:
		return "compare"
	case OpComparePattern:
		return "compare_pattern"
	case OpCreateDelta:
		return "create_delta"
	case OpApplyDelta:
		return "apply_delta"
	case OpDualcast:
		return "dualcast"
	case OpCRCGen:
		return "crc_gen"
	case OpCopyCRC:
		return "copy_crc"
	case OpDIFCheck:
		return "dif_check"
	case OpDIFInsert:
		return "dif_insert"
	case OpDIFStrip:
		return "dif_strip"
	case OpDIFUpdate:
		return "dif_update"
	case OpCacheFlush:
		return "cache_flush"
	default:
		return fmt.Sprintf("op(%#x)", uint8(o))
	}
}

// Flags alter descriptor processing (a subset of the specification's
// descriptor flag word — the ones with performance-visible semantics).
type Flags uint32

// Descriptor flag bits.
const (
	// FlagBlockOnFault makes the device wait for the OS to resolve a page
	// fault and continue, instead of partially completing (§3.4 F1).
	FlagBlockOnFault Flags = 1 << iota
	// FlagCacheControl steers the destination write into the LLC (DDIO
	// path) rather than memory (§6.2 G3).
	FlagCacheControl
	// FlagReqCompletion requests a completion record write (always set by
	// the helper constructors; cleared only in ablation tests).
	FlagReqCompletion
	// FlagFence orders this descriptor after all previous descriptors in
	// the same batch have completed.
	FlagFence
	// FlagInterrupt requests a completion interrupt in addition to the
	// record write (the paper's clients poll or UMWAIT instead).
	FlagInterrupt
)

// Descriptor is the 64-byte work descriptor software submits through a
// portal (§3.2). Addresses are virtual addresses in the submitting process's
// address space, translated by the device through the ATC/IOMMU (PASID).
type Descriptor struct {
	Op     OpType
	Flags  Flags
	PASID  int
	Src    mem.Addr // source buffer (original buffer for delta ops)
	Src2   mem.Addr // second source: Compare's b, delta ops' modified buffer
	Dst    mem.Addr // destination buffer / delta record
	Dst2   mem.Addr // second destination (Dualcast)
	Size   int64    // transfer size in bytes
	MaxDst int64    // destination capacity (delta record limit)

	Pattern uint64 // Fill / ComparePattern 8-byte pattern
	CRCSeed uint32 // CRCGen / CopyCRC seed

	DIFBlock dif.BlockSize // DIF operations: data block size
	DIFTags  dif.Tags      // DIF tags to generate / check
	DIFTags2 dif.Tags      // DIFUpdate: the new tags

	// Batch fields (Op == OpBatch): Descs addresses an in-memory array of
	// work descriptors prepared by software; the device's batch processing
	// unit fetches and executes them (§3.4 F2).
	Descs []Descriptor

	// SubmitterSocket is the socket of the submitting core (filled by the
	// client submission path). The descriptor array a batch parent points
	// at lives in the submitter's pages, so the batch processing unit
	// prices its fetch against this socket's memory — a cross-socket
	// sub-batch pays the real UPI round trip, not node 0's latency.
	SubmitterSocket int

	// CompletionAddr is where the completion record is written. The model
	// delivers completions through a *Completion handle instead of raw
	// memory, but the address participates in timing (DDIO write).
	CompletionAddr mem.Addr
}

// Status is the completion status byte.
type Status uint8

// Completion statuses.
const (
	// StatusNone means the descriptor has not completed yet.
	StatusNone Status = iota
	// StatusSuccess is a fully successful completion.
	StatusSuccess
	// StatusPageFault reports a partial completion at a faulting address
	// (block-on-fault clear).
	StatusPageFault
	// StatusBadOpcode reports an unsupported operation.
	StatusBadOpcode
	// StatusBatchFail reports that one or more descriptors in a batch did
	// not complete successfully.
	StatusBatchFail
	// StatusRecordFull reports delta-record overflow (differences exceeded
	// MaxDst).
	StatusRecordFull
	// StatusDIFError reports a protection-information mismatch.
	StatusDIFError
	// StatusError is a catch-all for invalid descriptors (bad addresses,
	// misaligned sizes).
	StatusError
	// StatusWQError reports that the accepting work queue was disabled
	// while the descriptor was still queued; the descriptor was never
	// dispatched to an engine.
	StatusWQError
	// StatusDeviceOffline reports that the whole device went offline with
	// the descriptor still queued.
	StatusDeviceOffline
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusSuccess:
		return "success"
	case StatusPageFault:
		return "page_fault"
	case StatusBadOpcode:
		return "bad_opcode"
	case StatusBatchFail:
		return "batch_fail"
	case StatusRecordFull:
		return "record_full"
	case StatusDIFError:
		return "dif_error"
	case StatusError:
		return "error"
	case StatusWQError:
		return "wq_error"
	case StatusDeviceOffline:
		return "device_offline"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// CompletionRecord is the result block the device writes when a descriptor
// finishes (§3.2 step 4).
type CompletionRecord struct {
	Status         Status
	BytesCompleted int64    // bytes processed before a partial completion
	Result         uint64   // CRC value, delta-record size, or mismatch offset
	Mismatch       bool     // Compare/ComparePattern: buffers differed
	FaultAddr      mem.Addr // faulting address for StatusPageFault
	Err            error    // model-level detail (not in real HW; aids tests)

	// Children holds the per-child completion records of a batch parent, in
	// submission order. Real DSA writes each batch child's record to its own
	// completion-record address; the model surfaces them on the parent so
	// result-producing children (CRC, compare, delta) keep their values when
	// fused into one batch — fenced pipeline chains read per-stage results
	// from here. Nil for non-batch descriptors.
	Children []CompletionRecord
}
