package dsa

import (
	"errors"
	"fmt"
	"math"

	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Fault sentinels. WQ.Submit returns them (wrapped) when the front end is
// down, so submission planes can tell "retry this queue later" (ErrWQFull)
// from "this queue is dead, fail over" without string matching.
var (
	// ErrWQDisabled reports a submission to a work queue inside a
	// transient disable window.
	ErrWQDisabled = errors.New("dsa: work queue disabled")
	// ErrDeviceOffline reports a submission to a device inside an outage
	// window.
	ErrDeviceOffline = errors.New("dsa: device offline")
)

// FaultBurst elevates the injector's per-page fault probability inside a
// window (a chaos phase: think a cold-page storm after a container migration).
type FaultBurst struct {
	At    sim.Time
	Dur   sim.Time
	Per4K float64 // added to the baseline per-4KB-page probability
}

// WQDisable is one transient work-queue disable window: at At the queue
// stops accepting submissions and every queued-but-undispatched descriptor
// completes with StatusWQError; at At+Dur the queue accepts again.
type WQDisable struct {
	WQ  int // index into Device.WQs()
	At  sim.Time
	Dur sim.Time
}

// Outage is one whole-device offline window: submissions fail with
// ErrDeviceOffline, queued descriptors complete with StatusDeviceOffline,
// and work already dispatched to engines (or fetched into a batch) drains.
type Outage struct {
	At  sim.Time
	Dur sim.Time
}

// FaultConfig parameterizes a device's FaultInjector. All randomness comes
// from one seeded stream consumed in engine-event order, so a given seed
// reproduces the exact fault schedule run after run.
type FaultConfig struct {
	Seed uint64
	// PageFaultPer4K is the baseline probability that any one 4KB page a
	// descriptor touches is unmapped on arrival. A descriptor's fault
	// probability therefore grows with its size: 1-(1-p)^pages.
	PageFaultPer4K float64
	// OpWeight scales the per-page probability per op type (default 1.0);
	// e.g. weight OpCompare at 0 to keep verification paths clean.
	OpWeight map[OpType]float64
	// Bursts are windows of elevated per-page probability.
	Bursts []FaultBurst
	// WQDisables are transient per-queue disable windows.
	WQDisables []WQDisable
	// Outages are whole-device offline windows.
	Outages []Outage
}

// FaultInjector deterministically injects faults into one device: synthetic
// page faults at execute time (resolved like real ones — block-on-fault
// stalls the engine for the OS round trip, otherwise the device writes a
// partial completion after Timing.FaultReport), plus scheduled WQ disable
// windows and device outages. Attach with Device.InjectFaults.
type FaultInjector struct {
	dev *Device
	cfg FaultConfig
	rng *sim.Rand
}

// InjectFaults arms a fault injector on the device and schedules its WQ
// disable windows and outages. Call after Enable, before traffic.
func (d *Device) InjectFaults(cfg FaultConfig) (*FaultInjector, error) {
	if !d.enabled {
		return nil, fmt.Errorf("dsa: %s not enabled", d.Cfg.Name)
	}
	if d.faults != nil {
		return nil, fmt.Errorf("dsa: %s already has a fault injector", d.Cfg.Name)
	}
	inj := &FaultInjector{dev: d, cfg: cfg, rng: sim.NewRand(cfg.Seed | 1)}
	d.faults = inj
	for _, w := range cfg.WQDisables {
		if w.WQ < 0 || w.WQ >= len(d.wqs) {
			return nil, fmt.Errorf("dsa: fault config disables WQ %d of %d", w.WQ, len(d.wqs))
		}
		wq, dur := d.wqs[w.WQ], w.Dur
		d.E.At(w.At, func() {
			wq.disabled.Store(true)
			d.stats.WQDisables++
			wq.failQueued(StatusWQError, ErrWQDisabled)
		})
		d.E.At(w.At+dur, func() { wq.disabled.Store(false) })
	}
	for _, o := range cfg.Outages {
		dur := o.Dur
		d.E.At(o.At, func() {
			d.offline.Store(true)
			d.stats.Outages++
			for _, wq := range d.wqs {
				wq.failQueued(StatusDeviceOffline, ErrDeviceOffline)
			}
		})
		d.E.At(o.At+dur, func() { d.offline.Store(false) })
	}
	return inj, nil
}

// Faults returns the device's fault injector, or nil.
func (d *Device) Faults() *FaultInjector { return d.faults }

// per4KAt returns the per-page probability in effect at instant now.
func (inj *FaultInjector) per4KAt(now sim.Time) float64 {
	p := inj.cfg.PageFaultPer4K
	for _, b := range inj.cfg.Bursts {
		if now >= b.At && now < b.At+b.Dur {
			p += b.Per4K
		}
	}
	return p
}

// roll decides whether this descriptor execution takes a synthetic page
// fault and, if so, at which offset. One probability draw per execution
// (plus one for the faulting page), consumed in engine-event order.
func (inj *FaultInjector) roll(d *Descriptor, now sim.Time) (off int64, ok bool) {
	if d.Size <= 0 {
		return 0, false
	}
	p := inj.per4KAt(now)
	if w, found := inj.cfg.OpWeight[d.Op]; found {
		p *= w
	}
	if p <= 0 {
		return 0, false
	}
	pages := (d.Size + mem.Page4K - 1) / mem.Page4K
	pOp := 1 - math.Pow(1-math.Min(p, 1), float64(pages))
	if inj.rng.Float64() >= pOp {
		return 0, false
	}
	off = inj.rng.Int63n(pages) * mem.Page4K
	if off >= d.Size {
		off = 0
	}
	return off, true
}

// Healthy reports whether the WQ front end accepts submissions right now:
// the device is enabled and neither a WQ disable window nor a device
// outage is in effect. Safe to read from host-parallel submission paths
// (plane lanes, scheduler Picks); the flags are written only by
// engine-domain fault events.
func (w *WQ) Healthy() bool {
	return w.Dev.enabled && !w.disabled.Load() && !w.Dev.offline.Load()
}

// Offline reports whether the device is inside an outage window.
func (d *Device) Offline() bool { return d.offline.Load() }

// failQueued completes every queued-but-undispatched descriptor with the
// given terminal status. Dispatched work (on engines, or fetched into a
// batch) is unaffected and drains normally.
func (w *WQ) failQueued(status Status, err error) {
	for {
		wk, ok := w.q.Pop()
		if !ok {
			return
		}
		w.occupied--
		w.noteOcc()
		rec := CompletionRecord{Status: status, Err: err}
		wk.comp.complete(rec)
		w.noteCompleted(wk.d.PASID, wk.comp.Latency())
		if wk.parent != nil {
			wk.parent.childDone(wk.childIdx, rec)
		}
	}
}
