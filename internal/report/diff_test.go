package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// doc builds a one-table BenchDoc with the placement-experiment shape.
func doc(id string, ys map[string]float64) BenchDoc {
	tbl := BenchTable{ID: id}
	for key, y := range ys {
		// key is "series/xlabel".
		parts := strings.SplitN(key, "/", 2)
		tbl.Points = append(tbl.Points, BenchPoint{Series: parts[0], Label: parts[1], Y: y})
	}
	return BenchDoc{Experiment: id, Tables: []BenchTable{tbl}}
}

func TestCompareGatesPassAndFail(t *testing.T) {
	g := Gate{Experiment: "placement", Table: "placement", X: "skew", Series: "placement-load", Against: "placement"}
	baseline := map[string]BenchDoc{
		"placement": doc("placement", map[string]float64{"placement-load/skew": 56.0, "placement/skew": 30.0}),
	}

	// Current run preserves the ~1.87x speedup (raw numbers may shift).
	pass := map[string]BenchDoc{
		"placement": doc("placement", map[string]float64{"placement-load/skew": 46.0, "placement/skew": 25.0}),
	}
	res := CompareGates([]Gate{g}, baseline, pass, 0.15)
	if len(res) != 1 || res[0].Failed {
		t.Fatalf("preserved speedup failed the gate: %+v", res)
	}

	// An injected regression: the load-aware win collapses to 1.2x,
	// a >15% drop from the asserted 1.87x.
	fail := map[string]BenchDoc{
		"placement": doc("placement", map[string]float64{"placement-load/skew": 36.0, "placement/skew": 30.0}),
	}
	res = CompareGates([]Gate{g}, baseline, fail, 0.15)
	if len(res) != 1 || !res[0].Failed {
		t.Fatalf("collapsed speedup passed the gate: %+v", res)
	}
	if res[0].Reason == "" {
		t.Fatal("failed gate carries no reason")
	}

	// Exactly at the threshold edge: 85% of baseline passes, just below
	// fails.
	edge := map[string]BenchDoc{
		"placement": doc("placement", map[string]float64{"placement-load/skew": 30.0 * 0.85 * 56.0 / 30.0, "placement/skew": 30.0}),
	}
	res = CompareGates([]Gate{g}, baseline, edge, 0.15)
	if res[0].Failed {
		t.Fatalf("speedup at exactly 85%% of baseline failed: %+v", res[0])
	}
}

func TestCompareGatesMinRatio(t *testing.T) {
	g := Gate{Experiment: "contention", Table: "contention", X: "64",
		Series: "sharded", Against: "ideal", MinRatio: 0.7}

	// Baseline and current agree at 0.95 efficiency: both checks pass.
	good := map[string]BenchDoc{
		"contention": doc("contention", map[string]float64{"sharded/64": 38.0, "ideal/64": 40.0}),
	}
	res := CompareGates([]Gate{g}, good, good, 0.15)
	if len(res) != 1 || res[0].Failed {
		t.Fatalf("0.95 efficiency failed the 0.7 floor: %+v", res)
	}

	// Baseline drifted down to 0.60: the relative check alone would pass
	// an equally bad current run, but the absolute floor must not.
	drifted := map[string]BenchDoc{
		"contention": doc("contention", map[string]float64{"sharded/64": 24.0, "ideal/64": 40.0}),
	}
	res = CompareGates([]Gate{g}, drifted, drifted, 0.15)
	if len(res) != 1 || !res[0].Failed {
		t.Fatalf("0.60 efficiency passed the 0.7 floor: %+v", res)
	}
	if !strings.Contains(res[0].Reason, "floor") {
		t.Fatalf("floor failure reason = %q", res[0].Reason)
	}

	// Without MinRatio the drifted pair passes (relative check only).
	g.MinRatio = 0
	res = CompareGates([]Gate{g}, drifted, drifted, 0.15)
	if res[0].Failed {
		t.Fatalf("floorless gate failed on matching baseline/current: %+v", res)
	}
}

func TestCompareGatesMissingDataFails(t *testing.T) {
	g := Gate{Experiment: "placement", Table: "placement", X: "skew", Series: "placement-load", Against: "placement"}
	full := map[string]BenchDoc{
		"placement": doc("placement", map[string]float64{"placement-load/skew": 56.0, "placement/skew": 30.0}),
	}
	cases := []struct {
		name    string
		current map[string]BenchDoc
	}{
		{"missing experiment", map[string]BenchDoc{}},
		{"missing table", map[string]BenchDoc{"placement": {Experiment: "placement"}}},
		{"missing series point", map[string]BenchDoc{
			"placement": doc("placement", map[string]float64{"placement/skew": 30.0}),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := CompareGates([]Gate{g}, full, tc.current, 0.15)
			if len(res) != 1 || !res[0].Failed {
				t.Fatalf("gate with %s passed: %+v", tc.name, res)
			}
		})
	}
}

// TestPipelineGatesCatchInjectedRegression runs the committed gates file
// against the committed BENCH_pipeline.json baseline — once unmodified
// (every pipeline gate must pass against itself) and once with an injected
// regression that collapses the fused series to the sequential one, which
// every pipeline gate must catch. This pins the CI wiring end-to-end: the
// gate entries name real tables, rows, and series, and the min_ratio
// floors actually bite.
func TestPipelineGatesCatchInjectedRegression(t *testing.T) {
	gateData, err := os.ReadFile(filepath.Join("..", "..", "bench", "baseline", "gates.json"))
	if err != nil {
		t.Fatal(err)
	}
	all, err := ParseGates(gateData)
	if err != nil {
		t.Fatal(err)
	}
	var gates []Gate
	for _, g := range all {
		if g.Experiment == "pipeline" {
			gates = append(gates, g)
		}
	}
	if len(gates) < 2 {
		t.Fatalf("gates.json asserts %d pipeline gates, want >= 2", len(gates))
	}
	for _, g := range gates {
		if g.MinRatio <= 1 {
			t.Errorf("pipeline gate %v has no absolute floor above 1x (min_ratio=%v)", g, g.MinRatio)
		}
	}

	benchData, err := os.ReadFile(filepath.Join("..", "..", "bench", "baseline", "BENCH_pipeline.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base BenchDoc
	if err := json.Unmarshal(benchData, &base); err != nil {
		t.Fatal(err)
	}
	docs := map[string]BenchDoc{"pipeline": base}
	for _, r := range CompareGates(gates, docs, docs, 0.15) {
		if r.Failed {
			t.Errorf("committed baseline fails its own gate %v: %s", r.Gate, r.Reason)
		}
	}

	// Inject the regression fusion exists to prevent: the fused series
	// falls back to sequential throughput (the chain decomposed into
	// per-stage submissions). Every gate must fail.
	broken := base
	broken.Tables = make([]BenchTable, len(base.Tables))
	copy(broken.Tables, base.Tables)
	for i := range broken.Tables {
		tbl := &broken.Tables[i]
		seq := make(map[string]float64)
		for _, p := range tbl.Points {
			if p.Series == "sequential" {
				seq[p.Label] = p.Y
			}
		}
		pts := make([]BenchPoint, len(tbl.Points))
		copy(pts, tbl.Points)
		for j := range pts {
			if pts[j].Series == "fused" {
				pts[j].Y = seq[pts[j].Label]
			}
		}
		tbl.Points = pts
	}
	res := CompareGates(gates, docs, map[string]BenchDoc{"pipeline": broken}, 0.15)
	for _, r := range res {
		if !r.Failed {
			t.Errorf("defused pipeline (1.0x) passed gate %v (current %.2fx)", r.Gate, r.Current)
		}
	}
}

// TestMissingDataClassifiedDistinctly pins the Missing flag: a gate
// whose series vanished from the candidate documents is a wiring break
// and must not read as a measured regression (bench-diff exits 3 on it,
// not 1).
func TestMissingDataClassifiedDistinctly(t *testing.T) {
	g := Gate{Experiment: "placement", Table: "placement", X: "skew", Series: "placement-load", Against: "placement"}
	full := map[string]BenchDoc{
		"placement": doc("placement", map[string]float64{"placement-load/skew": 56.0, "placement/skew": 30.0}),
	}

	// Series renamed away in the candidate: Missing, with the current-side
	// reason naming the absent point.
	renamed := map[string]BenchDoc{
		"placement": doc("placement", map[string]float64{"placement-loadaware/skew": 56.0, "placement/skew": 30.0}),
	}
	res := CompareGates([]Gate{g}, full, renamed, 0.15)
	if len(res) != 1 || !res[0].Failed || !res[0].Missing {
		t.Fatalf("missing series not classified Missing: %+v", res)
	}
	if !strings.Contains(res[0].Reason, "current") {
		t.Fatalf("missing-series reason does not name the candidate side: %q", res[0].Reason)
	}

	// A genuine regression is NOT Missing.
	slow := map[string]BenchDoc{
		"placement": doc("placement", map[string]float64{"placement-load/skew": 31.0, "placement/skew": 30.0}),
	}
	res = CompareGates([]Gate{g}, full, slow, 0.15)
	if len(res) != 1 || !res[0].Failed || res[0].Missing {
		t.Fatalf("measured regression misclassified: %+v", res)
	}

	// Absent on the baseline side is Missing too.
	res = CompareGates([]Gate{g}, map[string]BenchDoc{}, full, 0.15)
	if len(res) != 1 || !res[0].Missing || !strings.Contains(res[0].Reason, "baseline") {
		t.Fatalf("missing baseline not classified: %+v", res)
	}
}

func TestMarkdownGates(t *testing.T) {
	pass := GateResult{Gate: Gate{Experiment: "e", Table: "t", X: "x", Series: "a", Against: "b"}, Baseline: 2, Current: 2.1}
	fail := pass
	fail.Failed, fail.Reason, fail.Current = true, "speedup 1.00x below floor", 1.0
	miss := pass
	miss.Failed, miss.Missing, miss.Reason = true, true, `current: table "t" has no point (a, x)`

	md := MarkdownGates([]GateResult{pass}, 0.15)
	if !strings.Contains(md, "✅") || !strings.Contains(md, "| e/t[x] a vs b |") {
		t.Fatalf("pass summary malformed:\n%s", md)
	}
	md = MarkdownGates([]GateResult{pass, fail}, 0.15)
	if !strings.Contains(md, "❌") || !strings.Contains(md, "**FAIL**") || !strings.Contains(md, "1 of 2") {
		t.Fatalf("fail summary malformed:\n%s", md)
	}
	md = MarkdownGates([]GateResult{miss}, 0.15)
	if !strings.Contains(md, "**MISSING**") || !strings.Contains(md, "unevaluable") {
		t.Fatalf("missing summary malformed:\n%s", md)
	}
}

// TestFleetGatesCatchInjectedRegression pins the fleet headline's CI
// wiring the way the pipeline test pins fusion's: the committed
// gates.json entries must pass against the committed BENCH_fleet.json
// baseline, and an injected capacity regression — SLO-attained
// throughput collapsing to the design load, i.e. the ramp failing right
// above Mult=1.0 — must trip every fleet-slo floor.
func TestFleetGatesCatchInjectedRegression(t *testing.T) {
	gateData, err := os.ReadFile(filepath.Join("..", "..", "bench", "baseline", "gates.json"))
	if err != nil {
		t.Fatal(err)
	}
	all, err := ParseGates(gateData)
	if err != nil {
		t.Fatal(err)
	}
	var gates, sloGates []Gate
	for _, g := range all {
		if g.Experiment == "fleet" {
			gates = append(gates, g)
			if g.Table == "fleet-slo" {
				sloGates = append(sloGates, g)
			}
		}
	}
	if len(sloGates) < 2 {
		t.Fatalf("gates.json asserts %d fleet-slo gates, want one per scenario", len(sloGates))
	}
	for _, g := range sloGates {
		if g.MinRatio <= 1 {
			t.Errorf("fleet-slo gate %v has no absolute floor above 1x (min_ratio=%v)", g, g.MinRatio)
		}
	}

	benchData, err := os.ReadFile(filepath.Join("..", "..", "bench", "baseline", "BENCH_fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base BenchDoc
	if err := json.Unmarshal(benchData, &base); err != nil {
		t.Fatal(err)
	}
	docs := map[string]BenchDoc{"fleet": base}
	for _, r := range CompareGates(gates, docs, docs, 0.15) {
		if r.Failed {
			t.Errorf("committed baseline fails its own gate %v: %s", r.Gate, r.Reason)
		}
	}

	// Inject the regression: attained falls back to the base offered load
	// (the service can no longer carry anything beyond its design point).
	broken := base
	broken.Tables = make([]BenchTable, len(base.Tables))
	copy(broken.Tables, base.Tables)
	for i := range broken.Tables {
		tbl := &broken.Tables[i]
		if tbl.ID != "fleet-slo" {
			continue
		}
		basis := make(map[string]float64)
		for _, p := range tbl.Points {
			if p.Series == "base" {
				basis[p.Label] = p.Y
			}
		}
		pts := make([]BenchPoint, len(tbl.Points))
		copy(pts, tbl.Points)
		for j := range pts {
			if pts[j].Series == "attained" {
				pts[j].Y = basis[pts[j].Label]
			}
		}
		tbl.Points = pts
	}
	for _, r := range CompareGates(sloGates, docs, map[string]BenchDoc{"fleet": broken}, 0.15) {
		if !r.Failed {
			t.Errorf("attained collapsed to 1.0x base yet passed gate %v (current %.2fx)", r.Gate, r.Current)
		}
		if r.Missing {
			t.Errorf("injected regression misclassified as missing data: %v", r.Gate)
		}
	}
}

// TestChaosGatesCatchInjectedRegression pins the chaos gates the same
// way: the committed baseline passes its own gates, a defused-recovery
// regression (attained collapsing to the negative control) fails the
// SLO-preservation gate, and a recovery slowdown past the window budget
// fails the bounded-recovery gate.
func TestChaosGatesCatchInjectedRegression(t *testing.T) {
	gateData, err := os.ReadFile(filepath.Join("..", "..", "bench", "baseline", "gates.json"))
	if err != nil {
		t.Fatal(err)
	}
	all, err := ParseGates(gateData)
	if err != nil {
		t.Fatal(err)
	}
	var gates, sloGates, recGates []Gate
	for _, g := range all {
		if g.Experiment != "chaos" {
			continue
		}
		gates = append(gates, g)
		switch g.Table {
		case "chaos-slo":
			sloGates = append(sloGates, g)
		case "chaos-recovery":
			recGates = append(recGates, g)
		}
	}
	if len(sloGates) < 2 || len(recGates) < 1 {
		t.Fatalf("gates.json asserts %d chaos-slo and %d chaos-recovery gates, want >=2 and >=1",
			len(sloGates), len(recGates))
	}

	benchData, err := os.ReadFile(filepath.Join("..", "..", "bench", "baseline", "BENCH_chaos.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base BenchDoc
	if err := json.Unmarshal(benchData, &base); err != nil {
		t.Fatal(err)
	}
	docs := map[string]BenchDoc{"chaos": base}
	for _, r := range CompareGates(gates, docs, docs, 0.15) {
		if r.Failed {
			t.Errorf("committed baseline fails its own gate %v: %s", r.Gate, r.Reason)
		}
	}

	// retable deep-copies the baseline doc so each injection is isolated.
	retable := func() BenchDoc {
		broken := base
		broken.Tables = make([]BenchTable, len(base.Tables))
		copy(broken.Tables, base.Tables)
		for i := range broken.Tables {
			pts := make([]BenchPoint, len(broken.Tables[i].Points))
			copy(pts, broken.Tables[i].Points)
			broken.Tables[i].Points = pts
		}
		return broken
	}

	// Regression 1: recovery defused — attained collapses to the negative
	// control's value. The attained/faultfree preservation gate must trip.
	defused := retable()
	for i := range defused.Tables {
		tbl := &defused.Tables[i]
		if tbl.ID != "chaos-slo" {
			continue
		}
		control := make(map[string]float64)
		for _, p := range tbl.Points {
			if p.Series == "defused" {
				control[p.Label] = p.Y
			}
		}
		for j := range tbl.Points {
			if tbl.Points[j].Series == "attained" {
				tbl.Points[j].Y = control[tbl.Points[j].Label]
			}
		}
	}
	caught := false
	for _, r := range CompareGates(sloGates, docs, map[string]BenchDoc{"chaos": defused}, 0.15) {
		if r.Missing {
			t.Errorf("defused regression misclassified as missing data: %v", r.Gate)
		}
		caught = caught || r.Failed
	}
	if !caught {
		t.Error("attained collapsed to the defused control yet every chaos-slo gate passed")
	}

	// Regression 2: recovery takes longer than the budgeted windows.
	slow := retable()
	for i := range slow.Tables {
		tbl := &slow.Tables[i]
		if tbl.ID != "chaos-recovery" {
			continue
		}
		var budget float64
		for _, p := range tbl.Points {
			if p.Series == "recovery-budget-w" {
				budget = p.Y
			}
		}
		for j := range tbl.Points {
			if tbl.Points[j].Series == "recovery-spent-w" {
				tbl.Points[j].Y = budget + 6
			}
		}
	}
	for _, r := range CompareGates(recGates, docs, map[string]BenchDoc{"chaos": slow}, 0.15) {
		if !r.Failed {
			t.Errorf("recovery blew its window budget yet passed gate %v (current %.2fx)", r.Gate, r.Current)
		}
	}
}

func TestParseGates(t *testing.T) {
	gates, err := ParseGates([]byte(`{"gates":[{"experiment":"skew","table":"skew","x":"16","series":"placement-load","against":"placement"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 1 || gates[0].Series != "placement-load" {
		t.Fatalf("parsed gates = %+v", gates)
	}
	if _, err := ParseGates([]byte(`{"gates":[]}`)); err == nil {
		t.Fatal("empty gates file accepted")
	}
	if _, err := ParseGates([]byte(`not json`)); err == nil {
		t.Fatal("malformed gates file accepted")
	}
}
