package report

import (
	"strings"
	"testing"
)

func TestSetGetAndOrdering(t *testing.T) {
	tb := New("id", "title", "x", "y")
	tb.Set("b", 1024, 2.5)
	tb.Set("a", 256, 1.0)
	tb.Set("a", 1024, 3.0)
	if got := tb.Series(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("series order = %v, want insertion order [b a]", got)
	}
	xs := tb.Xs()
	if len(xs) != 2 || xs[0] != 256 || xs[1] != 1024 {
		t.Fatalf("xs = %v, want sorted [256 1024]", xs)
	}
	if v, ok := tb.Get("a", 1024); !ok || v != 3.0 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := tb.Get("a", 999); ok {
		t.Fatal("Get of absent x succeeded")
	}
	if _, ok := tb.Get("z", 256); ok {
		t.Fatal("Get of absent series succeeded")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		256:      "256",
		1 << 10:  "1K",
		64 << 10: "64K",
		1 << 20:  "1M",
		4 << 20:  "4M",
		1 << 30:  "1G",
		1000:     "1000",
		2.5:      "2.50",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	tb := New("fig", "demo", "xfer", "GB/s")
	tb.Set("DSA", 4096, 29.5)
	tb.Set("CPU", 4096, 3.2)
	tb.Note("hello %d", 42)
	out := tb.String()
	for _, want := range []string{"fig", "demo", "GB/s", "4K", "29.50", "3.20", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Missing cells render as dashes.
	tb.Set("DSA", 8192, 30)
	if !strings.Contains(tb.String(), "-") {
		t.Fatal("missing cell not rendered as dash")
	}
}

func TestNamedCategories(t *testing.T) {
	tb := New("id", "t", "cfg", "ratio")
	tb.SetNamed("s", "1h1s", 0, 1.5)
	tb.SetNamed("s", "2h2s", 1, 1.7)
	if !strings.Contains(tb.String(), "1h1s") {
		t.Fatal("categorical label not rendered")
	}
}

func TestCSV(t *testing.T) {
	tb := New("id", "t", "xfer", "GB/s")
	tb.Set("a,b", 256, 1.5) // comma in series name must be escaped
	tb.Set("c", 256, 2)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2:\n%s", len(lines), csv)
	}
	if lines[0] != "xfer,a;b,c" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "256,1.5,2" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestValueFormatting(t *testing.T) {
	for in, want := range map[float64]string{
		0:        "0",
		0.123:    "0.123",
		12.3456:  "12.35",
		1234:     "1234",
		12345678: "1.23e+07",
	} {
		if got := formatVal(in); got != want {
			t.Errorf("formatVal(%v) = %q, want %q", in, got, want)
		}
	}
}
