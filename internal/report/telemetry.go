package report

// StreamRow is one telemetry stream's windowed summary, flattened to plain
// numbers so callers outside the telemetry package (experiments, the CLI)
// can render digests without importing it.
type StreamRow struct {
	Name       string
	Count      int64
	RatePerSec float64
	MeanUs     float64
	P50Us      float64
	P95Us      float64
	P99Us      float64
	Drifts     int64
}

// TelemetryTable renders stream digests as a table: one row per stream,
// one column per summary statistic.
func TelemetryTable(id, title string, rows []StreamRow) *Table {
	t := New(id, title, "stream", "value")
	for i, r := range rows {
		x := float64(i)
		t.SetNamed("count", r.Name, x, float64(r.Count))
		t.SetNamed("rate_s", r.Name, x, r.RatePerSec)
		t.SetNamed("mean_us", r.Name, x, r.MeanUs)
		t.SetNamed("p50_us", r.Name, x, r.P50Us)
		t.SetNamed("p95_us", r.Name, x, r.P95Us)
		t.SetNamed("p99_us", r.Name, x, r.P99Us)
		t.SetNamed("drifts", r.Name, x, float64(r.Drifts))
	}
	return t
}
