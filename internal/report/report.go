// Package report renders experiment results as paper-style tables and data
// series: fixed-width text for the terminal and CSV for plotting. Every
// experiment in internal/exp produces a report.Table.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a titled grid of series: one row per x value, one column per
// series.
type Table struct {
	ID     string // experiment id, e.g. "fig3"
	Title  string
	XLabel string
	YLabel string
	Notes  []string

	xs     []float64
	xNames map[float64]string // optional categorical x labels
	series []string
	data   map[string]map[float64]float64
}

// New creates an empty table.
func New(id, title, xlabel, ylabel string) *Table {
	return &Table{
		ID: id, Title: title, XLabel: xlabel, YLabel: ylabel,
		xNames: make(map[float64]string),
		data:   make(map[string]map[float64]float64),
	}
}

// Note appends a free-form annotation rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Set records y for (series, x), creating the series and x row as needed.
func (t *Table) Set(series string, x, y float64) {
	if _, ok := t.data[series]; !ok {
		t.data[series] = make(map[float64]float64)
		t.series = append(t.series, series)
	}
	if _, seen := t.data[series][x]; !seen {
		if !t.hasX(x) {
			t.xs = append(t.xs, x)
			sort.Float64s(t.xs)
		}
	}
	t.data[series][x] = y
}

// SetNamed records y for (series, x) with a categorical x label.
func (t *Table) SetNamed(series, xname string, x, y float64) {
	t.Set(series, x, y)
	t.xNames[x] = xname
}

func (t *Table) hasX(x float64) bool {
	i := sort.SearchFloat64s(t.xs, x)
	return i < len(t.xs) && t.xs[i] == x
}

// Get returns the value for (series, x) and whether it exists.
func (t *Table) Get(series string, x float64) (float64, bool) {
	m, ok := t.data[series]
	if !ok {
		return 0, false
	}
	v, ok := m[x]
	return v, ok
}

// Series returns the series names in insertion order.
func (t *Table) Series() []string { return t.series }

// Xs returns the sorted x values.
func (t *Table) Xs() []float64 { return t.xs }

// xLabel formats an x value, preferring a categorical name, then
// power-of-two byte formatting.
func (t *Table) xLabel(x float64) string {
	if n, ok := t.xNames[x]; ok {
		return n
	}
	return FormatBytes(x)
}

// FormatBytes renders sizes like the paper's axes (256, 1K, 64K, 1M).
func FormatBytes(v float64) string {
	switch {
	case v >= 1<<30 && float64(int64(v)>>30)*float64(1<<30) == v:
		return fmt.Sprintf("%dG", int64(v)>>30)
	case v >= 1<<20 && float64(int64(v)>>20)*float64(1<<20) == v:
		return fmt.Sprintf("%dM", int64(v)>>20)
	case v >= 1<<10 && float64(int64(v)>>10)*float64(1<<10) == v:
		return fmt.Sprintf("%dK", int64(v)>>10)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the fixed-width table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "(y = %s)\n", t.YLabel)
	w := 12
	fmt.Fprintf(&b, "%-*s", w, t.XLabel)
	for _, s := range t.series {
		fmt.Fprintf(&b, "%*s", w, s)
	}
	b.WriteByte('\n')
	for _, x := range t.xs {
		fmt.Fprintf(&b, "%-*s", w, t.xLabel(x))
		for _, s := range t.series {
			if v, ok := t.data[s][x]; ok {
				fmt.Fprintf(&b, "%*s", w, formatVal(v))
			} else {
				fmt.Fprintf(&b, "%*s", w, "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func formatVal(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s, ",", ";"))
	}
	b.WriteByte('\n')
	for _, x := range t.xs {
		b.WriteString(t.xLabel(x))
		for _, s := range t.series {
			if v, ok := t.data[s][x]; ok {
				fmt.Fprintf(&b, ",%g", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
