package report

import "encoding/json"

// BenchDoc is the machine-readable rendering of one experiment's tables.
// cmd/dsa-bench writes one per experiment (BENCH_<id>.json) and CI
// archives them, giving future PRs a perf trajectory to diff against
// instead of eyeballing the fixed-width text tables.
type BenchDoc struct {
	Experiment string       `json:"experiment"`
	Title      string       `json:"title"`
	Tables     []BenchTable `json:"tables"`
}

// BenchTable is one table flattened into (series, x, y) points.
type BenchTable struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	Notes  []string     `json:"notes,omitempty"`
	Points []BenchPoint `json:"points"`
}

// BenchPoint is one measured cell. Label carries the categorical x name
// (or the power-of-two byte rendering) so diffs stay readable without the
// raw x value.
type BenchPoint struct {
	Series string  `json:"series"`
	X      float64 `json:"x"`
	Label  string  `json:"x_label"`
	Y      float64 `json:"y"`
}

// MarshalBench renders one experiment's tables as indented JSON.
func MarshalBench(expID, title string, tables []*Table) ([]byte, error) {
	doc := BenchDoc{Experiment: expID, Title: title}
	for _, t := range tables {
		bt := BenchTable{
			ID:     t.ID,
			Title:  t.Title,
			XLabel: t.XLabel,
			YLabel: t.YLabel,
			Notes:  t.Notes,
		}
		for _, s := range t.Series() {
			for _, x := range t.Xs() {
				if y, ok := t.Get(s, x); ok {
					bt.Points = append(bt.Points, BenchPoint{Series: s, X: x, Label: t.xLabel(x), Y: y})
				}
			}
		}
		doc.Tables = append(doc.Tables, bt)
	}
	return json.MarshalIndent(doc, "", "  ")
}
