package report

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Gate asserts one speedup of a benchmark trajectory: the ratio of the
// Series point's y over the Against point's y, at the row labelled X of
// table Table in experiment Experiment. CI compares the ratio measured
// from the current BENCH_<id>.json files against the one recorded in the
// committed baselines and fails when it regressed by more than the
// threshold — the gate tracks the *speedup*, not raw GB/s, so a uniform
// cost-model recalibration moves both series and passes, while a change
// that erodes what the experiment asserts (placement beating numa-local,
// load-aware beating data-only) fails.
type Gate struct {
	Experiment string `json:"experiment"`
	Table      string `json:"table"`
	X          string `json:"x"`       // categorical x label (BenchPoint.Label)
	Series     string `json:"series"`  // numerator: the series whose win is asserted
	Against    string `json:"against"` // denominator: the baseline series it must beat
	Note       string `json:"note,omitempty"`

	// MinRatio, when positive, is an absolute floor on the current ratio
	// in addition to the relative regression check: the gate fails when
	// the measured speedup drops below it even if the committed baseline
	// has drifted down with it. Scaling gates use this to pin a property
	// of the design itself (e.g. ≥0.7 efficiency at 64 submitters)
	// rather than a property of the last committed run.
	MinRatio float64 `json:"min_ratio,omitempty"`
}

// String renders the gate's identity for reports.
func (g Gate) String() string {
	return fmt.Sprintf("%s/%s[%s] %s vs %s", g.Experiment, g.Table, g.X, g.Series, g.Against)
}

// GateFile is the committed list of asserted speedups (bench/gates.json).
type GateFile struct {
	Gates []Gate `json:"gates"`
}

// ParseGates decodes a gates file.
func ParseGates(data []byte) ([]Gate, error) {
	var gf GateFile
	if err := json.Unmarshal(data, &gf); err != nil {
		return nil, fmt.Errorf("report: parsing gates: %w", err)
	}
	if len(gf.Gates) == 0 {
		return nil, fmt.Errorf("report: gates file asserts nothing")
	}
	return gf.Gates, nil
}

// GateResult is one gate's verdict.
type GateResult struct {
	Gate
	Baseline float64 // the speedup recorded in the committed baseline
	Current  float64 // the speedup measured from the current run
	Failed   bool
	Reason   string // why the gate failed (regression or missing data)

	// Missing distinguishes a gate that could not be evaluated — the
	// experiment, table, or series point is absent from the baseline or
	// candidate documents — from a measured regression. A renamed series
	// or a dropped experiment is a wiring break, not a slowdown, and CI
	// reports it as such.
	Missing bool
}

// CompareGates evaluates every gate against the baseline and current
// BENCH documents (keyed by experiment id). maxRegression is the allowed
// fractional drop of each asserted speedup (0.15 = fail below 85% of the
// baseline ratio). Missing experiments, tables, or points fail the gate:
// a silently skipped assertion is a regression in disguise.
func CompareGates(gates []Gate, baseline, current map[string]BenchDoc, maxRegression float64) []GateResult {
	results := make([]GateResult, 0, len(gates))
	for _, g := range gates {
		r := GateResult{Gate: g}
		base, err := speedupOf(g, baseline)
		if err != nil {
			r.Failed, r.Missing, r.Reason = true, true, fmt.Sprintf("baseline: %v", err)
			results = append(results, r)
			continue
		}
		cur, err := speedupOf(g, current)
		if err != nil {
			r.Failed, r.Missing, r.Reason = true, true, fmt.Sprintf("current: %v", err)
			results = append(results, r)
			continue
		}
		r.Baseline, r.Current = base, cur
		if cur < (1-maxRegression)*base {
			r.Failed = true
			r.Reason = fmt.Sprintf("speedup %.2fx below %.0f%% of baseline %.2fx",
				cur, (1-maxRegression)*100, base)
		} else if g.MinRatio > 0 && cur < g.MinRatio {
			r.Failed = true
			r.Reason = fmt.Sprintf("speedup %.2fx below absolute floor %.2fx", cur, g.MinRatio)
		}
		results = append(results, r)
	}
	return results
}

// MarkdownGates renders the per-gate verdict table as GitHub-flavored
// markdown for CI step summaries — written on pass and fail alike, so
// every run leaves the measured ratios where a reviewer sees them.
func MarkdownGates(results []GateResult, maxRegression float64) string {
	var b strings.Builder
	failed, missing := 0, 0
	for _, r := range results {
		if r.Missing {
			missing++
		} else if r.Failed {
			failed++
		}
	}
	switch {
	case missing > 0:
		fmt.Fprintf(&b, "### ❌ Bench gates: %d unevaluable, %d regressed (of %d)\n\n", missing, failed, len(results))
	case failed > 0:
		fmt.Fprintf(&b, "### ❌ Bench gates: %d of %d regressed\n\n", failed, len(results))
	default:
		fmt.Fprintf(&b, "### ✅ Bench gates: all %d within %.0f%% of baseline\n\n", len(results), maxRegression*100)
	}
	b.WriteString("| gate | baseline | current | delta | verdict |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, r := range results {
		verdict := "ok"
		switch {
		case r.Missing:
			verdict = "**MISSING**: " + r.Reason
		case r.Failed:
			verdict = "**FAIL**: " + r.Reason
		}
		base, cur, delta := "-", "-", "-"
		if !r.Missing {
			base = fmt.Sprintf("%.2fx", r.Baseline)
			cur = fmt.Sprintf("%.2fx", r.Current)
			if r.Baseline > 0 {
				delta = fmt.Sprintf("%+.1f%%", (r.Current/r.Baseline-1)*100)
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", r.Gate.String(), base, cur, delta, verdict)
	}
	return b.String()
}

// speedupOf resolves one gate's ratio from a document set.
func speedupOf(g Gate, docs map[string]BenchDoc) (float64, error) {
	doc, ok := docs[g.Experiment]
	if !ok {
		return 0, fmt.Errorf("no BENCH document for experiment %q", g.Experiment)
	}
	var tbl *BenchTable
	for i := range doc.Tables {
		if doc.Tables[i].ID == g.Table {
			tbl = &doc.Tables[i]
			break
		}
	}
	if tbl == nil {
		return 0, fmt.Errorf("experiment %q has no table %q", g.Experiment, g.Table)
	}
	num, err := pointY(tbl, g.Series, g.X)
	if err != nil {
		return 0, err
	}
	den, err := pointY(tbl, g.Against, g.X)
	if err != nil {
		return 0, err
	}
	if den == 0 {
		return 0, fmt.Errorf("table %q point (%s, %s) is zero", g.Table, g.Against, g.X)
	}
	return num / den, nil
}

// pointY finds the y of (series, x label) in a table.
func pointY(tbl *BenchTable, series, label string) (float64, error) {
	for _, p := range tbl.Points {
		if p.Series == series && p.Label == label {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("table %q has no point (%s, %s)", tbl.ID, series, label)
}
