package fleet

import (
	"reflect"
	"testing"
	"time"

	"dsasim/internal/sim"
)

// testScale shrinks the shipped scenarios for unit tests: same rates,
// sizes, and budgets (the operating point), a fraction of the virtual
// time and connection count.
const testScale = 0.2

func TestZipfSampler(t *testing.T) {
	z := newZipf(16, 1.1)
	rng := sim.NewRand(7)
	var counts [16]int
	n := 20000
	for i := 0; i < n; i++ {
		r := z.sample(rng)
		if r < 0 || r >= 16 {
			t.Fatalf("sample %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must dominate rank 8 by roughly (9/1)^1.1 ≈ 11×; allow slack.
	if counts[0] < 5*counts[8] {
		t.Fatalf("zipf skew too flat: rank0=%d rank8=%d", counts[0], counts[8])
	}
	// Uniform degenerates: every rank within 2× of the mean.
	u := newZipf(8, 0)
	var uc [8]int
	for i := 0; i < n; i++ {
		uc[u.sample(rng)]++
	}
	for r, c := range uc {
		if c < n/16 || c > n/4 {
			t.Fatalf("uniform zipf rank %d count %d, want ≈%d", r, c, n/8)
		}
	}
}

func TestArrivalRates(t *testing.T) {
	// Mean arrival rate over a long window tracks the configured rate for
	// each phase kind (diurnal and MMPP modulate around the same mean).
	for _, kind := range []PhaseKind{Steady, Diurnal, Burst, Overload} {
		gen := newArrivals(11)
		ph := Phase{Kind: kind, Mult: 1.0, Dur: 100 * time.Millisecond}
		rate := 1e6 // ops/s
		var at sim.Time
		n := 0
		for at < sim.Time(ph.Dur) {
			at += gen.next(ph, rate, at, sim.Time(ph.Dur))
			n++
		}
		want := rate * ph.Dur.Seconds()
		if float64(n) < 0.85*want || float64(n) > 1.15*want {
			t.Fatalf("kind %d: %d arrivals over %v at %v ops/s, want ≈%v", kind, n, ph.Dur, rate, want)
		}
	}
}

func TestSameSeedSameTables(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc.Scaled(testScale)
		a := Run(sc)
		b := Run(sc)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different results:\n%+v\n%+v", sc.Name, a, b)
		}
		if a.SLOOk+a.SLOMiss == 0 {
			t.Fatalf("%s: offload-layer SLO accounting saw no operations", sc.Name)
		}
	}
}

// TestChaosScenarioFaultRecovery pins the chaos phase run's contract at
// test scale: fault injection is seed-deterministic (same seed, same
// result, bit for bit), the armed default recovery policy does real work
// absorbing the plan, the tails come home inside the run, and defusing
// recovery demonstrably surfaces terminal failures the armed run
// avoids. Matched by CI's fault-recovery -race pass.
func TestChaosScenarioFaultRecovery(t *testing.T) {
	sc := Chaos().Scaled(testScale)
	a := Run(sc)
	b := Run(sc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: same seed produced different results:\n%+v\n%+v", sc.Name, a, b)
	}
	if a.Faults == 0 || a.Retries == 0 {
		t.Fatalf("faults=%d retries=%d, want both nonzero under the fault plan", a.Faults, a.Retries)
	}
	if !a.Recovered {
		t.Errorf("armed run never recovered (spent %d windows)", a.RecoveryWindows)
	}
	failed := func(r Result) int64 {
		var n int64
		for _, ph := range r.Phases {
			n += ph.Failed[FG] + ph.Failed[BG]
		}
		return n
	}
	df := sc
	df.DefuseRecovery = true
	d := Run(df)
	if af, dfN := failed(a), failed(d); dfN <= af {
		t.Errorf("defused run failed %d ops vs armed %d: recovery is not what absorbs the plan", dfN, af)
	}
}

func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, sc := range Scenarios() {
		sc := sc.Scaled(testScale)
		r := Run(sc)
		t.Logf("%s:", sc.Name)
		for _, ph := range r.Phases {
			t.Logf("  %-9s fg: off=%8.1f good=%8.1f shed=%6d p99=%9v | bg: off=%8.1f good=%8.1f shed=%6d p99=%9v",
				ph.Name, ph.Offered[FG], ph.Goodput[FG], ph.Shed[FG], ph.P99[FG],
				ph.Offered[BG], ph.Goodput[BG], ph.Shed[BG], ph.P99[BG])
		}
		t.Logf("  sloOk=%d sloMiss=%d", r.SLOOk, r.SLOMiss)
	}
}
