package fleet

import (
	"fmt"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// bufSlots is how many payload slots each shard buffer rotates through,
// so consecutive operations touch distinct addresses within one
// allocation instead of one hot line.
const bufSlots = 4

// crossMod/crossCut: connections with conn%crossMod < crossCut deliver
// to the remote socket (~30% cross-socket traffic), which is what makes
// the placement scheduler's socket decisions matter.
const (
	crossMod = 10
	crossCut = 3
)

// reapItem is one outstanding submission a shard's reaper must resolve:
// the future, the scheduled arrival instant of every operation it
// carries (one for a foreground op, Burst for a broker pipeline), and
// the class the latencies score against.
type reapItem struct {
	fut  *offload.Future
	arrs []sim.Time
	cls  Class
}

// pendingMsg is a broker message waiting for its burst to fill.
type pendingMsg struct {
	arr  sim.Time
	conn int
}

// shardBufs is one shard's payload slabs in the frontend's address
// space, one src/dst pair per socket.
type shardBufs struct {
	src [2]*mem.Buffer
	dst [2]*mem.Buffer
}

// driver is one scenario run: the rig, the tenant population, and the
// per-(phase, class) accumulators. The engine is single-threaded, so the
// shared slices need no locking — determinism falls out of the seeded
// generators plus the engine's deterministic event order.
type driver struct {
	sc  Scenario
	e   *sim.Engine
	svc *offload.Service

	front *offload.Tenant
	plane *offload.Plane
	fg    []*fgTenant
	pop   *zipf
	conns []int // connection -> foreground tenant slot

	bufs []shardBufs

	bounds []sim.Time // cumulative phase end instants
	acc    [][nClasses]classAcc

	reapQ   [][]reapItem
	reapSig []sim.Signal
	subDone []bool

	// retired holds churned-out tenants so their SLO counters are
	// harvested at the end, after late futures resolve.
	retired []*offload.Tenant

	// win tracks windowed per-class latency for the recovery metric;
	// non-nil only when the scenario arms a fault plan.
	win *winTrack
}

// Run executes one scenario and returns its measurement. A fixed
// Scenario (seed included) reproduces the Result bit-for-bit.
func Run(sc Scenario) Result {
	d := newDriver(sc)
	for s := 0; s < sc.Shards; s++ {
		s := s
		d.e.Go(fmt.Sprintf("fleet-sub-%d", s), d.submitter(s))
		d.e.Go(fmt.Sprintf("fleet-reap-%d", s), d.reaper(s))
	}
	d.e.Run()
	return d.result()
}

func newDriver(sc Scenario) *driver {
	e, svc, devs := fleetRig()
	d := &driver{sc: sc, e: e, svc: svc}
	if sc.Faults != nil {
		d.win = newWinTrack()
		for di, dev := range devs {
			if _, err := dev.InjectFaults(sc.Faults.config(sc.Seed, di)); err != nil {
				panic(err)
			}
		}
	}

	front, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.Bulk), offload.TenantPolicy(frontPolicy(sc)))
	if err != nil {
		panic(err)
	}
	d.front = front
	if !sc.Pipeline {
		pl, err := front.NewPlane(sc.Shards)
		if err != nil {
			panic(err)
		}
		pl.OnCompletion(d.bgCompleted)
		d.plane = pl
	}

	d.bufs = make([]shardBufs, sc.Shards)
	for s := range d.bufs {
		for sock := 0; sock < 2; sock++ {
			d.bufs[s].src[sock] = front.AllocOn(sock, sc.BgSize*bufSlots)
			d.bufs[s].dst[sock] = front.AllocOn(sock, sc.BgSize*bufSlots)
		}
	}

	d.fg = make([]*fgTenant, sc.Tenants)
	for i := range d.fg {
		d.fg[i] = newFgTenant(svc, sc, i%2)
	}
	d.pop = newZipf(sc.Tenants, sc.ZipfS)
	rng := sim.NewRand(sc.Seed)
	d.conns = make([]int, sc.Conns)
	for i := range d.conns {
		d.conns[i] = d.pop.sample(rng)
	}

	d.bounds = make([]sim.Time, len(sc.Phases))
	at := sim.Time(0)
	for i, ph := range sc.Phases {
		at += sim.Time(ph.Dur)
		d.bounds[i] = at
	}
	d.acc = make([][nClasses]classAcc, len(sc.Phases))
	d.reapQ = make([][]reapItem, sc.Shards)
	d.reapSig = make([]sim.Signal, sc.Shards)
	d.subDone = make([]bool, sc.Shards)
	return d
}

// phaseAt attributes an instant to the phase it was scheduled in;
// anything past the last boundary (a backlog draining after the
// schedule) belongs to the final phase.
func (d *driver) phaseAt(t sim.Time) int {
	for i, b := range d.bounds {
		if t < b {
			return i
		}
	}
	return len(d.bounds) - 1
}

// bgCompleted is the plane's completion observer: the stamp is the
// scheduled arrival, so the stamped latency is already open-loop, and
// the arrival instant (and with it the phase) is recovered from it. ok
// is false for terminal faults (retry budget spent, or shed during
// failover redistribution) — those score as failures, not goodput.
func (d *driver) bgCompleted(lat sim.Time, ok bool) {
	arr := d.e.Now() - lat
	d.record(arr, BG, lat, d.sc.BgSLO, !ok)
}

// record scores one completion against its arrival's phase cell and, when
// a fault plan is armed, the windowed recovery tracker.
func (d *driver) record(arr sim.Time, cls Class, lat sim.Time, budget time.Duration, failed bool) {
	d.acc[d.phaseAt(arr)][cls].record(lat, budget, failed)
	if d.win != nil {
		d.win.add(arr, cls, lat, failed)
	}
}

// submitter drives one shard's open-loop arrival schedule through every
// phase. SleepUntil is a no-op when the shard is already behind its
// schedule, which is exactly the open-loop property: arrivals do not
// slow down because the shard is slow, the backlog just shows up in the
// arrival-stamped latencies.
func (d *driver) submitter(s int) func(p *sim.Proc) {
	sc := d.sc
	return func(p *sim.Proc) {
		rng := sim.NewRand(sc.Seed ^ 0x9E3779B97F4A7C15*uint64(s+1))
		gen := newArrivals(sc.Seed ^ 0xD1B54A32D192ED03*uint64(s+1))
		shardRate := sc.BaseRate / float64(sc.Shards)
		var pending []pendingMsg
		count := 0
		next, start := sim.Time(0), sim.Time(0)
		for pi, ph := range sc.Phases {
			for {
				next += gen.next(ph, shardRate, next-start, sim.Time(ph.Dur))
				if next >= d.bounds[pi] {
					break
				}
				p.SleepUntil(next)
				d.arrive(p, s, rng, pi, next, &pending)
				count++
				if sc.ConnChurn > 0 && count%sc.ConnChurn == 0 {
					d.conns[rng.Intn(len(d.conns))] = d.pop.sample(rng)
				}
				if sc.TenantChurn > 0 && count%sc.TenantChurn == 0 {
					d.churnTenant(p, rng)
				}
			}
			start = d.bounds[pi]
		}
		d.flushBurst(p, s, &pending)
		d.subDone[s] = true
		d.reapSig[s].Broadcast(d.e)
	}
}

// arrive dispatches one arrival: pick a connection, pick a class, route.
func (d *driver) arrive(p *sim.Proc, s int, rng *sim.Rand, pi int, at sim.Time, pending *[]pendingMsg) {
	ci := rng.Intn(len(d.conns))
	if rng.Float64() < d.sc.FgShare {
		d.fgOp(p, s, pi, at, ci)
		return
	}
	d.bgOp(p, s, pi, at, ci, pending)
}

// fgOp submits one foreground request on the connection's tenant: an
// express-lane hardware copy, reaped by the shard's reaper so the
// submitter never blocks on a completion.
func (d *driver) fgOp(p *sim.Proc, s, pi int, at sim.Time, ci int) {
	a := &d.acc[pi][FG]
	a.arrivals++
	ft := d.fg[d.conns[ci]]
	f, err := ft.tn.Copy(p, ft.dst.Addr(0), ft.src.Addr(0), d.sc.FgSize, offload.On(offload.Hardware))
	if err != nil {
		a.shed++
		return
	}
	d.enqueue(s, reapItem{fut: f, arrs: []sim.Time{at}, cls: FG})
}

// route maps a connection to its source socket, destination socket, and
// payload slot offset — pure functions of the connection index so churn
// re-homing does not need per-connection state.
func (d *driver) route(ci int) (srcSock, dstSock int, off int64) {
	srcSock = ci & 1
	dstSock = srcSock
	if ci%crossMod < crossCut {
		dstSock = 1 - srcSock
	}
	return srcSock, dstSock, int64(ci%bufSlots) * d.sc.BgSize
}

// bgOp routes one background payload: through the shard's plane lane
// (packet switch), or into the shard's pending burst (message broker).
func (d *driver) bgOp(p *sim.Proc, s, pi int, at sim.Time, ci int, pending *[]pendingMsg) {
	a := &d.acc[pi][BG]
	a.arrivals++
	if d.sc.Pipeline {
		*pending = append(*pending, pendingMsg{arr: at, conn: ci})
		if len(*pending) >= d.sc.Burst {
			d.flushBurst(p, s, pending)
		}
		return
	}
	srcSock, dstSock, off := d.route(ci)
	b := &d.bufs[s]
	err := d.plane.Lane(s).SubmitStamped(p, dsa.Descriptor{
		Op:   dsa.OpMemmove,
		Src:  b.src[srcSock].Addr(off),
		Dst:  b.dst[dstSock].Addr(off),
		Size: d.sc.BgSize,
	}, at)
	if err != nil {
		a.shed++
	}
}

// flushBurst fuses the shard's pending broker messages into one
// CRC→copy pipeline DAG (per message: CopyCRC into scratch, fenced copy
// to the consumer slab) and submits it for one admission token. A shed
// DAG sheds every message it carried, each against its own arrival's
// phase.
func (d *driver) flushBurst(p *sim.Proc, s int, pending *[]pendingMsg) {
	msgs := *pending
	if len(msgs) == 0 {
		return
	}
	pl := d.front.NewPipeline()
	arrs := make([]sim.Time, len(msgs))
	b := &d.bufs[s]
	for i, m := range msgs {
		arrs[i] = m.arr
		srcSock, dstSock, off := d.route(m.conn)
		staged := pl.Scratch(d.sc.BgSize)
		crc := pl.CopyCRC(staged, offload.At(b.src[srcSock].Addr(off)), d.sc.BgSize, 0)
		pl.Copy(offload.At(b.dst[dstSock].Addr(off)), staged, d.sc.BgSize, offload.After(crc))
	}
	*pending = msgs[:0]
	fut, err := pl.Submit(p)
	if err != nil {
		for _, arr := range arrs {
			d.acc[d.phaseAt(arr)][BG].shed++
		}
		return
	}
	d.enqueue(s, reapItem{fut: fut, arrs: arrs, cls: BG})
}

// churnTenant retires one random foreground tenant and binds a
// replacement. The replacement takes the slot before the close, so no
// shard ever routes to a closed tenant; the retiree's in-flight futures
// keep resolving and its SLO counters are harvested at the end. The
// shard stalls for BindCost — the PASID bind is control-plane work that
// lands on the data path's tail.
func (d *driver) churnTenant(p *sim.Proc, rng *sim.Rand) {
	slot := rng.Intn(len(d.fg))
	old := d.fg[slot]
	d.fg[slot] = newFgTenant(d.svc, d.sc, slot%2)
	if err := old.tn.Close(p); err != nil {
		panic(err)
	}
	d.retired = append(d.retired, old.tn)
	p.Sleep(sim.Time(d.sc.BindCost))
}

// enqueue hands a submission to the shard's reaper.
func (d *driver) enqueue(s int, it reapItem) {
	d.reapQ[s] = append(d.reapQ[s], it)
	d.reapSig[s].Broadcast(d.e)
}

// reaper resolves one shard's outstanding futures in FIFO order,
// recording each carried operation's open-loop latency (completion −
// scheduled arrival) against its arrival's phase and class budget.
func (d *driver) reaper(s int) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		for {
			if len(d.reapQ[s]) == 0 {
				if d.subDone[s] {
					return
				}
				p.Wait(&d.reapSig[s])
				continue
			}
			it := d.reapQ[s][0]
			d.reapQ[s] = d.reapQ[s][1:]
			_, err := it.fut.Wait(p, offload.Interrupt)
			end := p.Now()
			budget := d.sc.FgSLO
			if it.cls == BG {
				budget = d.sc.BgSLO
			}
			for _, arr := range it.arrs {
				d.record(arr, it.cls, end-arr, budget, err != nil)
			}
		}
	}
}

// result assembles the per-phase tables and the offload-layer SLO
// cross-check once the engine has drained.
func (d *driver) result() Result {
	res := Result{Scenario: d.sc.Name}
	for pi, ph := range d.sc.Phases {
		ps := PhaseStats{Name: ph.Name}
		durS := ph.Dur.Seconds()
		for c := Class(0); c < nClasses; c++ {
			a := &d.acc[pi][c]
			ps.Offered[c] = float64(a.arrivals) / durS / 1e3
			ps.Goodput[c] = float64(a.good) / durS / 1e3
			ps.Shed[c] = a.shed
			ps.Failed[c] = a.failed
			if a.done > 0 {
				ps.P99[c] = time.Duration(a.lat.Quantile(0.99))
				ps.P999[c] = time.Duration(a.lat.Quantile(0.999))
				ps.Max[c] = time.Duration(a.lat.Max())
			}
		}
		res.Phases = append(res.Phases, ps)
	}
	tally := func(tn *offload.Tenant) {
		st := tn.Stats()
		res.SLOOk += st.SLOOk
		res.SLOMiss += st.SLOMiss
		res.Faults += st.Faults
		res.Retries += st.Retries
		res.Fallbacks += st.Fallbacks
		res.Failovers += st.Failovers
	}
	tally(d.front)
	for _, ft := range d.fg {
		tally(ft.tn)
	}
	for _, tn := range d.retired {
		tally(tn)
	}
	if d.win != nil {
		res.RecoveryWindows, res.Recovered =
			d.win.recoveredAfter(d.sc.Faults.injectEnd(), d.sc.FgSLO, d.sc.BgSLO)
	}
	return res
}
