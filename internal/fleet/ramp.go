package fleet

import (
	"fmt"
	"time"
)

// shedCeil is the shed fraction a ramp step may incur per class and
// still count as meeting SLO: a service that sheds more than half a
// percent of a class has not attained that load.
const shedCeil = 0.005

// RampStep is one load-ramp measurement.
type RampStep struct {
	Mult   float64
	Kops   float64 // offered load at this step, kops/s
	Pass   bool
	Result Result
}

// Attained walks the scenario's load ramp from below: each multiplier
// runs as its own steady-phase scenario of RampDur, and a step passes
// when every class meets its p99 budget with shed below shedCeil. The
// SLO-attained throughput is the highest passing offered load before
// the first failure — the capacity-planning headline. Returns the
// attained throughput (kops/s), the base offered load (kops/s, the
// Mult=1.0 point the gates normalize against), and the per-step trace.
func Attained(sc Scenario) (attained, base float64, steps []RampStep) {
	base = sc.BaseRate / 1e3
	for i, m := range sc.Ramp {
		r := Run(rampStep(sc, i, m))
		st := RampStep{Mult: m, Kops: m * base, Pass: meetsSLO(&r, sc), Result: r}
		steps = append(steps, st)
		if !st.Pass {
			break
		}
		attained = st.Kops
	}
	return attained, base, steps
}

// rampStep derives one ramp run: a single steady phase at the given
// multiplier, seeded per step so runs stay independent yet reproducible.
func rampStep(sc Scenario, i int, m float64) Scenario {
	out := sc
	out.Name = fmt.Sprintf("%s-ramp%d", sc.Name, i)
	out.Seed = sc.Seed + uint64(i)*0x9E3779B9 + 1
	out.Phases = []Phase{{Name: "ramp", Kind: Steady, Mult: m, Dur: sc.RampDur}}
	out.Ramp = nil
	return out
}

// meetsSLO scores a single-phase run against the scenario's class
// budgets.
func meetsSLO(r *Result, sc Scenario) bool {
	ph := &r.Phases[0]
	if ph.P99[FG] > sc.FgSLO || ph.P99[BG] > sc.BgSLO {
		return false
	}
	durS := sc.RampDur.Seconds()
	for c := Class(0); c < nClasses; c++ {
		arrivals := ph.Offered[c] * durS * 1e3
		// Terminal faults are held to the same ceiling as sheds: an
		// operation the service lost past its retry budget is no more
		// attained than one it refused.
		if arrivals > 0 && float64(ph.Shed[c]+ph.Failed[c]) > shedCeil*arrivals {
			return false
		}
	}
	return true
}

// budgets returns the class budgets in class order (for reporting).
func (sc Scenario) budgets() [nClasses]time.Duration {
	return [nClasses]time.Duration{FG: sc.FgSLO, BG: sc.BgSLO}
}
