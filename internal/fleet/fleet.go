// Package fleet is the million-client workload frontend: an open-loop
// traffic driver that runs fleet-service scenarios — a packet switch, a
// message broker — against the full production offload stack instead of
// the closed synthetic loops the experiment figures use. Tens of
// thousands of simulated connections, with Zipf-distributed popularity
// across a churning foreground tenant population, offer load through
// Poisson/MMPP arrival processes shaped by phase schedules (steady,
// diurnal, bursty, overload); the work flows through sharded submission
// plane lanes, fused CRC→copy pipelines, the QoS express lane, admission
// control, and the telemetry-driven adaptive policies, exactly as a
// deployment would drive them.
//
// The headline measurement is SLO-attained throughput: the highest
// offered load at which every QoS class still meets its p99 latency
// budget (found by a load ramp), the number a capacity planner actually
// buys. Latency is measured open-loop — from each operation's scheduled
// arrival instant, not its submit instant — so time spent queued behind
// an overloaded shard counts against the SLO the way a waiting client
// observes it (no coordinated omission). Everything is driven by seeded
// sim.Rand generators threaded through the Zipf, arrival, and phase
// machinery: the same seed reproduces every table bit-for-bit, which is
// what lets CI gate on the numbers.
package fleet

import (
	"time"

	"dsasim/internal/sim"
	"dsasim/internal/telemetry"
)

// Class indexes the two service classes a scenario carries: foreground
// (latency-sensitive request/metadata traffic, per-tenant) and background
// (the bulk data plane the service itself operates).
type Class int

// Service classes.
const (
	FG Class = iota
	BG
	nClasses
)

// PhaseKind selects one phase's arrival process shape.
type PhaseKind int

// Phase kinds.
const (
	// Steady is a homogeneous Poisson process at Mult × the base rate.
	Steady PhaseKind = iota
	// Diurnal modulates the Poisson rate sinusoidally across the phase
	// (trough→peak→trough, ±40% around Mult), the compressed day/night
	// swing of a fleet service.
	Diurnal
	// Burst is a two-state MMPP: a slow state at 0.6×Mult and a burst
	// state at 3×Mult, with exponentially distributed dwell times — the
	// flash-crowd shape that defeats statically tuned policies.
	Burst
	// Overload is Steady beyond capacity; admission control sheds or the
	// backlog grows, and the phase exists to measure which.
	Overload
)

// Phase is one segment of a scenario's load schedule.
type Phase struct {
	Name string
	Kind PhaseKind
	// Mult scales Scenario.BaseRate for this phase.
	Mult float64
	// Dur is the phase's virtual duration.
	Dur time.Duration
}

// Scenario parameterizes one fleet workload. The two shipped instances
// are Packetswitch and Msgbroker; tests run Scaled copies.
type Scenario struct {
	Name string
	Seed uint64

	// Conns is the simulated connection count. Connections are cheap
	// state (most of a fleet's connections are idle at any instant);
	// arrivals pick connections, and each connection is homed on a
	// foreground tenant and a socket.
	Conns int
	// Shards is the submission shard count: one submitter process and
	// one reaper process per shard, and one plane lane per shard when
	// the background path is the sharded submission plane.
	Shards int
	// Tenants is the foreground tenant population size. Connection
	// popularity across tenants is Zipf(ZipfS)-distributed.
	Tenants int
	ZipfS   float64

	// BaseRate is the total offered load (both classes) at multiplier
	// 1.0, in operations per second of virtual time.
	BaseRate float64
	// FgShare is the fraction of arrivals in the foreground class.
	FgShare float64

	FgSize int64 // foreground op payload bytes
	BgSize int64 // background op payload bytes

	FgSLO time.Duration // foreground p99 budget
	BgSLO time.Duration // background p99 budget

	// AdmitCap is the background admission-control ceiling in logical
	// submissions per second (plane submissions, or pipelines for the
	// broker). It sits above the base background rate and below
	// overload, so steady traffic never sheds and overload does.
	AdmitCap float64

	// ConnChurn, when positive, re-homes one random connection onto a
	// freshly sampled tenant every ConnChurn arrivals per shard.
	ConnChurn int
	// TenantChurn, when positive, retires one foreground tenant (with
	// whatever futures it has in flight) and binds a replacement every
	// TenantChurn arrivals per shard. The shard stalls for BindCost
	// while the replacement's PASID is bound — control-plane cost that
	// lands on the data path's tail, which is exactly what per-op
	// microbenchmarks hide.
	TenantChurn int
	BindCost    time.Duration

	// Pipeline selects the background data path: false routes each op
	// through a plane lane (packet switch); true fuses Burst messages
	// into one CRC→copy pipeline DAG per flush (message broker).
	Pipeline bool
	Burst    int

	Phases []Phase

	// Ramp is the SLO-attained-throughput schedule: ascending load
	// multipliers, each run as a steady phase of RampDur. The attained
	// throughput is the highest multiplier whose run meets every class
	// SLO (walked from below; the first failing step stops the ramp).
	Ramp    []float64
	RampDur time.Duration

	// Faults, when non-nil, arms every device's fault injector with this
	// plan (times relative to run start; Scaled scales them with the
	// phases) and enables the default retry/failover policy knobs — the
	// chaos scenarios measure what the recovery plane preserves.
	Faults *FaultPlan

	// DefuseRecovery zeroes the retry and fallback knobs while keeping
	// the fault plan armed: the chaos gate's negative control, proving
	// the recovery machinery (not luck) is what passes the SLO floor.
	DefuseRecovery bool
}

// Scaled returns a copy with every duration (phases and ramp steps)
// multiplied by f and the connection count scaled to match, for tests
// that need the same dynamics at a fraction of the event budget. Rates,
// sizes, and budgets are untouched — scaling those would change the
// operating point, not the runtime.
func (sc Scenario) Scaled(f float64) Scenario {
	out := sc
	out.Phases = make([]Phase, len(sc.Phases))
	copy(out.Phases, sc.Phases)
	for i := range out.Phases {
		out.Phases[i].Dur = time.Duration(float64(out.Phases[i].Dur) * f)
	}
	out.RampDur = time.Duration(float64(sc.RampDur) * f)
	if c := int(float64(sc.Conns) * f); c > 0 {
		out.Conns = c
	}
	if sc.Faults != nil {
		out.Faults = sc.Faults.scaled(f)
	}
	return out
}

// PhaseStats is one phase's measurement. Rates are in kops/s of virtual
// time; latencies are the per-class quantiles of the open-loop (arrival→
// completion) latency distribution. Operations are attributed to the
// phase their arrival was scheduled in, so an overload phase's backlog
// draining into the next phase still counts against overload.
type PhaseStats struct {
	Name string

	Offered [nClasses]float64 // scheduled arrivals / phase duration
	Goodput [nClasses]float64 // completions within the class SLO / duration
	Shed    [nClasses]int64   // arrivals shed by admission or full rings
	Failed  [nClasses]int64   // terminal faults past the retry budget

	P99  [nClasses]time.Duration
	P999 [nClasses]time.Duration
	Max  [nClasses]time.Duration
}

// Result is one scenario run's full measurement.
type Result struct {
	Scenario string
	Phases   []PhaseStats

	// SLOOk/SLOMiss aggregate the offload layer's own per-tenant SLO
	// accounting (Stats.SLOOk/SLOMiss) across the frontend and the
	// foreground population — the cross-check that the driver's sketches
	// and the stack's accounting agree on what was served in budget.
	SLOOk, SLOMiss int64

	// Fault-recovery totals across the frontend and foreground
	// population (zero without an armed fault plan).
	Faults, Retries, Fallbacks, Failovers int64

	// RecoveryWindows is how many recoveryWindow buckets after the fault
	// plan's last scheduled failure window the fleet needed before both
	// classes' windowed p99 sat inside budget again with no terminal
	// failures; Recovered is false when the run ended first. Zero-valued
	// without an armed fault plan.
	RecoveryWindows int
	Recovered       bool
}

// classAcc accumulates one (phase, class) cell during a run.
type classAcc struct {
	arrivals int64
	done     int64
	good     int64
	shed     int64
	failed   int64
	lat      telemetry.Sketch // open-loop latency, ns
}

// record scores one completion against the class budget. failed marks an
// operation that resolved with a terminal error (fault past the retry
// budget): it counts toward done and the latency sketch but never toward
// goodput, and meetsSLO holds failures to the same ceiling as sheds.
func (a *classAcc) record(lat sim.Time, budget time.Duration, failed bool) {
	a.done++
	a.lat.Add(int64(lat))
	if failed {
		a.failed++
		return
	}
	if lat <= sim.Time(budget) {
		a.good++
	}
}
