package fleet

import "time"

// rampMults is the shared load ramp: ~15-20% steps so the attained
// throughput moves at most one step under small perturbations, which is
// what lets CI hold an absolute floor on it.
var rampMults = []float64{0.5, 0.7, 0.85, 1.0, 1.15, 1.3, 1.5, 1.7, 2.0}

// fleetPhases is the shared phase schedule: a steady warm period, the
// compressed diurnal swing, a flash-crowd MMPP phase, an overload spike
// past the admission ceiling, and a post-overload recovery that shows
// whether the backlog drains.
func fleetPhases() []Phase {
	return []Phase{
		{Name: "steady", Kind: Steady, Mult: 1.0, Dur: 5 * time.Millisecond},
		{Name: "diurnal", Kind: Diurnal, Mult: 1.1, Dur: 6 * time.Millisecond},
		{Name: "burst", Kind: Burst, Mult: 1.0, Dur: 5 * time.Millisecond},
		{Name: "overload", Kind: Overload, Mult: 2.2, Dur: 4 * time.Millisecond},
		{Name: "recovery", Kind: Steady, Mult: 0.8, Dur: 4 * time.Millisecond},
	}
}

// Packetswitch is the packet-switch fleet scenario: a soft switch whose
// background plane forwards 32 KB frame batches through per-shard
// submission-plane lanes while foreground tenants issue 4 KB
// latency-sensitive lookups through the express path. ~30% of frames
// cross sockets, so the load-aware placement actually routes.
func Packetswitch() Scenario {
	return Scenario{
		Name:    "packetswitch-fleet",
		Seed:    0x5EED_F1EE7,
		Conns:   20000,
		Shards:  16,
		Tenants: 24,
		ZipfS:   1.1,

		BaseRate: 1.55e6,
		FgShare:  0.65,
		FgSize:   4 << 10,
		BgSize:   32 << 10,

		FgSLO: 30 * time.Microsecond,
		BgSLO: 120 * time.Microsecond,

		// 1.6× the base background rate: steady never sheds, the 2.2×
		// overload spike does.
		AdmitCap: 1.55e6 * 0.35 * 1.6,

		ConnChurn:   400,
		TenantChurn: 2500,
		BindCost:    6 * time.Microsecond,

		Phases:  fleetPhases(),
		Ramp:    rampMults,
		RampDur: 4 * time.Millisecond,
	}
}

// Msgbroker is the message-broker fleet scenario: producers append 16 KB
// messages that the broker checksums into a staging log and replicates
// to a consumer slab — per burst of four messages, one fused CRC→copy
// pipeline DAG — while foreground tenants run the metadata/ack path.
// The background budget is loose (500µs) because it deliberately
// includes the burst accumulation delay: an arrival waits for its batch,
// and the open-loop measurement charges that wait to the broker.
func Msgbroker() Scenario {
	return Scenario{
		Name:    "msgbroker-fleet",
		Seed:    0xB0C_A5EED,
		Conns:   12000,
		Shards:  12,
		Tenants: 16,
		ZipfS:   1.05,

		BaseRate: 1.2e6,
		FgShare:  0.5,
		FgSize:   4 << 10,
		BgSize:   16 << 10,

		FgSLO: 30 * time.Microsecond,
		BgSLO: 500 * time.Microsecond,

		// The admission unit is one pipeline DAG (Burst messages), so the
		// ceiling is on the DAG rate: 1.6× its base.
		AdmitCap: 1.2e6 * 0.5 / 4 * 1.6,

		ConnChurn:   400,
		TenantChurn: 2500,
		BindCost:    6 * time.Microsecond,

		Pipeline: true,
		Burst:    4,

		Phases:  fleetPhases(),
		Ramp:    rampMults,
		RampDur: 4 * time.Millisecond,
	}
}

// Chaos is the packet switch under injected failures: a steady trickle
// of page faults (cold destination pages), a cold-page storm, a
// transient express-WQ disable on socket 0 overlapping the storm, and a
// full outage of socket 1's device. The plan fits inside one RampDur so
// every SLO-attained ramp step experiences the complete fault sequence;
// in the phase run the injection ends early and the recovery tracker
// measures how long the tails take to come home. The default
// retry/fallback/failover policy is armed (DefuseRecovery is the
// negative control), and the chaos experiment gates on how much of the
// fault-free SLO-attained throughput survives. Not part of Scenarios():
// the fault-free tables stay fault-free.
func Chaos() Scenario {
	sc := Packetswitch()
	sc.Name = "chaos-fleet"
	sc.Seed = 0xC4A0_5EED
	sc.Faults = &FaultPlan{
		PageFaultPer4K: 0.0004,

		BurstPer4K: 0.02,
		BurstAt:    500 * time.Microsecond,
		BurstDur:   1 * time.Millisecond,

		// Express-WQ disable on socket 1: the foreground tenants homed
		// there reroute through the bulk queue or across UPI.
		DisableDev: 1,
		DisableWQ:  0,
		DisableAt:  1 * time.Millisecond,
		DisableDur: 800 * time.Microsecond,

		// Whole-device outage on socket 0 — the background plane's home
		// socket, so every lane and the drain must fail over cross-socket
		// onto device 1's rings and back when it heals.
		OutageDev: 0,
		OutageAt:  1800 * time.Microsecond,
		OutageDur: 1200 * time.Microsecond,
	}
	return sc
}

// Scenarios returns the shipped fleet scenarios in experiment order.
func Scenarios() []Scenario {
	return []Scenario{Packetswitch(), Msgbroker()}
}
