package fleet

import (
	"math"

	"dsasim/internal/sim"
)

// arrivals generates one shard's open-loop arrival instants: exponential
// inter-arrival gaps whose instantaneous rate follows the active phase's
// kind — homogeneous Poisson (Steady/Overload), a sinusoidally modulated
// rate (Diurnal), or a two-state MMPP (Burst). The generator owns its
// seeded sim.Rand; together with the Zipf sampler this is the entire
// randomness surface of a run, so a fixed scenario seed reproduces every
// arrival bit-for-bit.
type arrivals struct {
	rng *sim.Rand

	// MMPP state for Burst phases: burst=true is the high-rate state.
	burst     bool
	dwellLeft sim.Time
}

// MMPP shape: the slow state idles at 60% of the phase rate, the burst
// state fires at 3×, and dwell times are exponential with these means —
// a flash crowd every few hundred microseconds of virtual time.
const (
	mmppSlowMult  = 0.6
	mmppBurstMult = 3.0
	mmppSlowDwell = 150 * 1000 // ns
	mmppFastDwell = 40 * 1000  // ns
)

func newArrivals(seed uint64) *arrivals {
	return &arrivals{rng: sim.NewRand(seed)}
}

// exp draws an exponential variate with the given mean (ns).
func (a *arrivals) exp(mean float64) sim.Time {
	// 1-Float64 ∈ (0,1]: log never sees zero.
	return sim.Time(-mean * math.Log(1-a.rng.Float64()))
}

// next returns the gap to the following arrival, given the active phase,
// the shard's base rate at multiplier 1.0 (ops/s), and the offset of the
// current instant into the phase (for diurnal modulation).
func (a *arrivals) next(ph Phase, shardRate float64, into, dur sim.Time) sim.Time {
	rate := shardRate * ph.Mult
	switch ph.Kind {
	case Diurnal:
		// Trough→peak→trough across the phase: ±40% around Mult.
		frac := 0.0
		if dur > 0 {
			frac = float64(into) / float64(dur)
		}
		rate *= 1 + 0.4*math.Sin(2*math.Pi*frac-math.Pi/2)
	case Burst:
		for a.dwellLeft <= 0 {
			a.burst = !a.burst
			mean := float64(mmppSlowDwell)
			if a.burst {
				mean = mmppFastDwell
			}
			a.dwellLeft += a.exp(mean)
		}
		if a.burst {
			rate *= mmppBurstMult
		} else {
			rate *= mmppSlowMult
		}
	}
	if rate <= 0 {
		return sim.Time(math.MaxInt64 / 4)
	}
	gap := a.exp(1e9 / rate)
	if gap < 1 {
		gap = 1
	}
	if ph.Kind == Burst {
		a.dwellLeft -= gap
	}
	return gap
}
