package fleet

import (
	"math"
	"sort"

	"dsasim/internal/sim"
)

// zipf samples ranks 0..n-1 with probability ∝ 1/(rank+1)^s from a
// precomputed CDF — the tenant-popularity distribution (BriskStream's
// observation: shared-memory streaming systems only show their real
// bottlenecks under skewed load, and fleet tenant popularity is the
// canonical skew). Sampling is a binary search over the CDF, driven by a
// caller-owned seeded sim.Rand so every consumer stays deterministic.
type zipf struct {
	cdf []float64
}

// newZipf builds the rank CDF. s = 0 degenerates to uniform.
func newZipf(n int, s float64) *zipf {
	z := &zipf{cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// sample draws one rank.
func (z *zipf) sample(rng *sim.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
