package fleet

import "testing"

func TestAttainedRampShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ramp run")
	}
	for _, sc := range Scenarios() {
		sc := sc.Scaled(testScale)
		att, base, steps := Attained(sc)
		t.Logf("%s: attained=%.0f base=%.0f", sc.Name, att, base)
		for _, st := range steps {
			ph := st.Result.Phases[0]
			t.Logf("  x%.2f kops=%7.0f pass=%v fgP99=%9v bgP99=%9v bgShed=%d",
				st.Mult, st.Kops, st.Pass, ph.P99[FG], ph.P99[BG], ph.Shed[BG])
		}
		if base != sc.BaseRate/1e3 {
			t.Fatalf("%s: base = %v, want %v", sc.Name, base, sc.BaseRate/1e3)
		}
		if att < base {
			t.Fatalf("%s: attained %.0f below base %.0f — the scenario cannot carry its own design load", sc.Name, att, base)
		}
		// The walk stops at the first failure: every step but the last
		// passed, and a failing last step is the knee.
		for i, st := range steps[:len(steps)-1] {
			if !st.Pass {
				t.Fatalf("%s: non-final step %d (x%.2f) failed", sc.Name, i, st.Mult)
			}
		}
	}
}

// TestDefusedAdmissionLowersAttained injects the regression the CI floor
// exists to catch: collapsing the background admission ceiling to a
// fraction of the design load (an over-throttling misconfiguration)
// must drag the SLO-attained throughput below the healthy scenario's —
// the headline metric sees the control-plane break, not just raw GB/s.
func TestDefusedAdmissionLowersAttained(t *testing.T) {
	if testing.Short() {
		t.Skip("ramp run")
	}
	sc := Packetswitch().Scaled(testScale)
	healthy, _, _ := Attained(sc)

	broken := sc
	broken.AdmitCap = sc.BaseRate * (1 - sc.FgShare) * 0.3
	degraded, _, _ := Attained(broken)

	t.Logf("healthy attained=%.0f, defused-admission attained=%.0f", healthy, degraded)
	// The bucket's initial burst can carry the lowest step or two even
	// over-throttled, but the knee must collapse well below healthy.
	if degraded > 0.6*healthy {
		t.Fatalf("collapsed admission ceiling barely moved attained throughput (%.0f vs healthy %.0f)", degraded, healthy)
	}
}
