// Chaos machinery: the fault plan a scenario injects and the windowed
// recovery tracker that measures how long the fleet takes to pull its
// tails back inside budget after the injected failures end.
package fleet

import (
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/sim"
	"dsasim/internal/telemetry"
)

// FaultPlan is a scenario's injected-failure schedule, expressed in
// durations from run start so Scenario.Scaled can shrink it with the
// phases. The driver arms one dsa.FaultInjector per device from it,
// seeded off the scenario seed, so a given (scenario, plan) reproduces
// the exact fault sequence run after run.
type FaultPlan struct {
	// PageFaultPer4K is the steady per-4KB-page probability that a page a
	// descriptor touches is unmapped (dsa.FaultConfig.PageFaultPer4K).
	PageFaultPer4K float64

	// Burst elevates the per-page probability by BurstPer4K inside
	// [BurstAt, BurstAt+BurstDur) — the cold-page storm phase.
	BurstPer4K float64
	BurstAt    time.Duration
	BurstDur   time.Duration

	// Outage takes one whole device offline for [OutageAt,
	// OutageAt+OutageDur): submissions to it fail, queued descriptors
	// complete with StatusDeviceOffline, and the plane/scheduler paths
	// must fail over to the surviving socket. OutageDev indexes the
	// rig's devices (one per socket).
	OutageDev int
	OutageAt  time.Duration
	OutageDur time.Duration

	// Disable is a transient single-WQ disable window on device
	// DisableDev, queue index DisableWQ — the partial-failure case where
	// the device survives but one queue dies under the scheduler.
	DisableDev int
	DisableWQ  int
	DisableAt  time.Duration
	DisableDur time.Duration
}

// scaled returns the plan with every instant and window multiplied by f,
// matching Scenario.Scaled's treatment of phase durations.
func (fp *FaultPlan) scaled(f float64) *FaultPlan {
	out := *fp
	s := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	out.BurstAt, out.BurstDur = s(fp.BurstAt), s(fp.BurstDur)
	out.OutageAt, out.OutageDur = s(fp.OutageAt), s(fp.OutageDur)
	out.DisableAt, out.DisableDur = s(fp.DisableAt), s(fp.DisableDur)
	return &out
}

// injectEnd returns the instant the last scheduled failure window closes
// — where recovery measurement starts. Steady background page faults
// (PageFaultPer4K) keep running; recovery means the service holds its
// tails under that steady fault rate again.
func (fp *FaultPlan) injectEnd() sim.Time {
	end := fp.BurstAt + fp.BurstDur
	if e := fp.OutageAt + fp.OutageDur; e > end {
		end = e
	}
	if e := fp.DisableAt + fp.DisableDur; e > end {
		end = e
	}
	return sim.Time(end)
}

// config assembles the dsa.FaultConfig for device dev (index into the
// rig's per-socket devices), seeded per device off the scenario seed.
func (fp *FaultPlan) config(seed uint64, dev int) dsa.FaultConfig {
	cfg := dsa.FaultConfig{
		Seed:           seed ^ 0xFA017CA05<<uint(dev) ^ uint64(dev+1)*0x9E3779B97F4A7C15,
		PageFaultPer4K: fp.PageFaultPer4K,
	}
	if fp.BurstDur > 0 {
		cfg.Bursts = []dsa.FaultBurst{{
			At: sim.Time(fp.BurstAt), Dur: sim.Time(fp.BurstDur), Per4K: fp.BurstPer4K,
		}}
	}
	if fp.OutageDur > 0 && fp.OutageDev == dev {
		cfg.Outages = []dsa.Outage{{At: sim.Time(fp.OutageAt), Dur: sim.Time(fp.OutageDur)}}
	}
	if fp.DisableDur > 0 && fp.DisableDev == dev {
		cfg.WQDisables = []dsa.WQDisable{{
			WQ: fp.DisableWQ, At: sim.Time(fp.DisableAt), Dur: sim.Time(fp.DisableDur),
		}}
	}
	return cfg
}

// recoveryWindow is the tracker's bucketing granularity: fine enough to
// resolve recovery within a few-millisecond run, coarse enough that each
// window's p99 rests on hundreds of completions at fleet rates.
const recoveryWindow = 250 * time.Microsecond

// winTrack buckets per-class open-loop latencies by arrival window so
// the run can be scored for recovery time afterwards. Only armed when
// the scenario injects faults; the fault-free paths never touch it.
type winTrack struct {
	win  sim.Time
	lat  [][nClasses]telemetry.Sketch
	fail [][nClasses]int64
}

func newWinTrack() *winTrack { return &winTrack{win: sim.Time(recoveryWindow)} }

// add records one completion under its arrival's window.
func (w *winTrack) add(arr sim.Time, cls Class, lat sim.Time, failed bool) {
	i := int(arr / w.win)
	for len(w.lat) <= i {
		w.lat = append(w.lat, [nClasses]telemetry.Sketch{})
		w.fail = append(w.fail, [nClasses]int64{})
	}
	w.lat[i][cls].Add(int64(lat))
	if failed {
		w.fail[i][cls]++
	}
}

// recoveredAfter counts the windows past `from` until the service holds
// both classes' p99 inside budget with no terminal failures — the
// recovery time in windows. A window with no completions counts as
// recovered (nothing missed its budget). Returns the window count and
// whether recovery was observed before the run ended.
func (w *winTrack) recoveredAfter(from sim.Time, fg, bg time.Duration) (int, bool) {
	start := int(from / w.win)
	if from%w.win != 0 {
		start++ // partial window still contains injected-fault arrivals
	}
	for i := start; i < len(w.lat); i++ {
		cell := &w.lat[i]
		if w.fail[i][FG] == 0 && w.fail[i][BG] == 0 &&
			cell[FG].Quantile(0.99) <= int64(sim.Time(fg)) &&
			cell[BG].Quantile(0.99) <= int64(sim.Time(bg)) {
			return i - start, true
		}
	}
	return len(w.lat) - start, false
}
