package fleet

import (
	"fmt"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// fleetSystem is the two-socket SPR memory system the scenarios run on
// (Table 2 DRAM latencies/bandwidths; no CXL tier — the fleet scenarios
// exercise socket placement, not memory tiering).
func fleetSystem(e *sim.Engine) *mem.System {
	return mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
}

// fleetRig builds the scenario platform: one DSA per socket with two
// engines and an express/bulk shared-WQ pair (the adaptive experiment's
// QoS layout, downsized to two engines so the overload phases actually
// exceed capacity within a tractable event budget), behind the
// placement-qos scheduler. Returns the engine and service.
func fleetRig() (*sim.Engine, *offload.Service, []*dsa.Device) {
	e := sim.New()
	sys := fleetSystem(e)
	var wqs []*dsa.WQ
	var devs []*dsa.Device
	for socket := 0; socket < 2; socket++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig(fmt.Sprintf("dsa%d", socket), socket))
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines:     2,
			ExpressBufs: 24,
			WQs: []dsa.WQConfig{
				{Mode: dsa.Shared, Size: 8, Priority: 15},
				{Mode: dsa.Shared, Size: 24, Priority: 5},
			},
		}); err != nil {
			panic(err)
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		wqs = append(wqs, dev.WQs()...)
		devs = append(devs, dev)
	}
	svc, err := offload.NewService(e, sys, wqs,
		offload.WithScheduler(offload.NewPlacementQoS()), offload.WithCPUModel(cpu.SPRModel()))
	if err != nil {
		panic(err)
	}
	return e, svc, devs
}

// frontPolicy is the background data plane's policy: telemetry-driven
// load-aware placement, coalesced interrupt completions with adaptive
// window sizing, and shedding admission control at the scenario's cap —
// the production knobs, not a benchmark special.
func frontPolicy(sc Scenario) offload.Policy {
	pol := offload.DefaultPolicy()
	pol.LoadAware = true
	pol.Wait = offload.Interrupt
	pol.CoalesceCount = 16
	pol.CoalesceWindow = 8 * time.Microsecond
	pol.CoalesceAdaptive = true
	pol.AdmitRate = sc.AdmitCap
	// Burst deep enough that Poisson clumping never sheds below the cap;
	// only sustained over-rate does.
	pol.AdmitBurst = 16 * sc.Shards
	pol.AdmitWait = false
	pol.MaxRetries = 2
	pol.SLOBudget = sc.BgSLO
	armRecovery(&pol, sc)
	return pol
}

// armRecovery turns on the default fault-recovery knobs when the
// scenario injects faults — unless it is the defused negative control,
// which keeps the fault plan armed but recovery off so the chaos gate
// can prove the recovery machinery is what preserves the SLO floor.
func armRecovery(pol *offload.Policy, sc Scenario) {
	if sc.Faults == nil || sc.DefuseRecovery {
		return
	}
	pol.RetryMax = 2
	pol.FallbackAfter = 3
}

// fgPolicy is a foreground tenant's policy: per-descriptor interrupt
// delivery (the LatencySensitive class bypasses moderation), load-aware
// placement, and the class latency budget for SLO accounting.
func fgPolicy(sc Scenario) offload.Policy {
	pol := offload.DefaultPolicy()
	pol.LoadAware = true
	pol.Wait = offload.Interrupt
	pol.SLOBudget = sc.FgSLO
	armRecovery(&pol, sc)
	return pol
}

// fgTenant is one foreground tenant slot: the tenant and its payload
// buffers (replaced wholesale on churn — a new tenant is a new address
// space).
type fgTenant struct {
	tn       *offload.Tenant
	src, dst *mem.Buffer
}

// newFgTenant binds one foreground tenant on the given socket.
func newFgTenant(svc *offload.Service, sc Scenario, socket int) *fgTenant {
	tn, err := svc.NewTenant(offload.OnSocket(socket),
		offload.WithClass(offload.LatencySensitive), offload.TenantPolicy(fgPolicy(sc)))
	if err != nil {
		panic(err)
	}
	return &fgTenant{tn: tn, src: tn.Alloc(sc.FgSize), dst: tn.Alloc(sc.FgSize)}
}
