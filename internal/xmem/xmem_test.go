package xmem

import (
	"testing"

	"dsasim/internal/mem"
)

func newLLC() *mem.LLC {
	return mem.NewLLC(mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2})
}

func TestLatencyRisesWithWorkingSet(t *testing.T) {
	llc := newLLC()
	small := NewProbe(llc, "s", 1<<20)
	latSmall := small.Step()

	llc2 := newLLC()
	// Eight instances of 15 MB overflow a 105 MB LLC.
	probes := make([]*Probe, 8)
	for i := range probes {
		probes[i] = NewProbe(llc2, string(rune('a'+i)), 15<<20)
	}
	latBig := probes[0].Step()
	if latBig <= latSmall {
		t.Fatalf("latency at overflow (%v) should exceed L2-resident (%v)", latBig, latSmall)
	}
}

func TestPollutionRaisesLatency(t *testing.T) {
	// A co-running polluter that inserts aggressively must raise probe
	// latency; re-fetching restores occupancy each round.
	llc := newLLC()
	probes := make([]*Probe, 8)
	for i := range probes {
		probes[i] = NewProbe(llc, string(rune('a'+i)), 4<<20)
	}
	clean := probes[0].Step()

	// Polluter steals a large share.
	llc.Insert("memcpy", 80<<20)
	polluted := probes[0].Step()
	if polluted <= clean {
		t.Fatalf("polluted latency %v should exceed clean %v", polluted, clean)
	}
	// After re-fetching (Step reinserts), latency recovers next round if
	// the polluter stops.
	recovered := probes[0].Step()
	if recovered >= polluted {
		t.Fatalf("latency should recover after refetch: %v vs %v", recovered, polluted)
	}
}

func TestDDIOBoundedPolluterBarelyHurts(t *testing.T) {
	// §4.5: DSA writes confined to the DDIO ways cannot displace more
	// than the partition.
	llcSW := newLLC()
	llcDSA := newLLC()
	var sw, ds *Probe
	sw = NewProbe(llcSW, "probe", 8<<20)
	ds = NewProbe(llcDSA, "probe", 8<<20)

	llcSW.Insert("memcpy", 60<<20)
	for i := 0; i < 3; i++ {
		llcSW.Insert("memcpy", 20<<20)
		sw.Step()
	}
	llcDSA.InsertDDIO("dsa0", 60<<20)
	for i := 0; i < 3; i++ {
		llcDSA.InsertDDIO("dsa0", 20<<20)
		ds.Step()
	}
	if ds.Avg() >= sw.Avg() {
		t.Fatalf("DSA-co-run latency %v should be below software co-run %v", ds.Avg(), sw.Avg())
	}
}

func TestHistoryAndAvg(t *testing.T) {
	llc := newLLC()
	p := NewProbe(llc, "p", 1<<20)
	for i := 0; i < 5; i++ {
		p.Step()
	}
	if p.Rounds() != 5 || len(p.History()) != 5 {
		t.Fatalf("rounds = %d, history = %d", p.Rounds(), len(p.History()))
	}
	if p.Avg() <= 0 {
		t.Fatal("avg latency not positive")
	}
}
