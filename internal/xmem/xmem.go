// Package xmem reimplements the X-Mem memory-characterization probe the
// paper uses for its cache-pollution study (§4.5, Figs 12/13): instances
// with a configurable working set measure average access latency while
// co-running workloads (software memcpy vs DSA offload) compete for the
// shared LLC.
//
// The probe works at occupancy granularity: each measurement round it
// observes how much of its working set survived in the LLC, derives the
// average access latency from the L2/LLC/DRAM hit fractions, and re-fetches
// the evicted part (which is what a real pointer-chasing probe does by
// touching its buffer).
package xmem

import (
	"time"

	"dsasim/internal/mem"
)

// Latency constants for the probe's hit classes. The DRAM value reflects
// X-Mem's dependent (random) access pattern, which exposes full memory
// latency rather than streaming bandwidth.
const (
	DefaultL2     = 2 << 20 // private L2 per core (SPR: 2 MB, Table 2)
	DefaultL2Lat  = 14 * time.Nanosecond
	DefaultLLCLat = 33 * time.Nanosecond
	DefaultMemLat = 130 * time.Nanosecond
)

// Probe is one X-Mem instance.
type Probe struct {
	LLC   *mem.LLC
	Owner string
	WS    int64 // working-set bytes

	L2     int64
	L2Lat  time.Duration
	LLCLat time.Duration
	MemLat time.Duration

	rounds  int
	total   time.Duration
	history []time.Duration
}

// NewProbe creates a probe with default latency constants and warms its
// working set into the LLC.
func NewProbe(llc *mem.LLC, owner string, ws int64) *Probe {
	p := &Probe{
		LLC: llc, Owner: owner, WS: ws,
		L2: DefaultL2, L2Lat: DefaultL2Lat, LLCLat: DefaultLLCLat, MemLat: DefaultMemLat,
	}
	llc.Insert(owner, ws)
	return p
}

// Step performs one measurement round: compute the average access latency
// from the current occupancy, then re-fetch whatever co-runners evicted.
func (p *Probe) Step() time.Duration {
	occ := p.LLC.Occupancy(p.Owner)
	if occ > p.WS {
		occ = p.WS
	}
	l2b := p.L2
	if l2b > p.WS {
		l2b = p.WS
	}
	missB := p.WS - occ
	llcB := occ - l2b
	if llcB < 0 {
		// L2 holds part of what the LLC lost credit for; the probe's
		// hottest lines live in the private L2 regardless.
		llcB = 0
	}
	ws := float64(p.WS)
	lat := time.Duration(
		float64(p.L2Lat)*float64(l2b)/ws +
			float64(p.LLCLat)*float64(llcB)/ws +
			float64(p.MemLat)*float64(missB)/ws)
	// Re-fetch the evicted bytes: the probe touches its whole buffer every
	// round, re-allocating lost lines (and evicting others in turn).
	if missB > 0 {
		p.LLC.Insert(p.Owner, missB)
	}
	p.rounds++
	p.total += lat
	p.history = append(p.history, lat)
	return lat
}

// Avg returns the mean latency over all rounds.
func (p *Probe) Avg() time.Duration {
	if p.rounds == 0 {
		return 0
	}
	return p.total / time.Duration(p.rounds)
}

// History returns the per-round latencies.
func (p *Probe) History() []time.Duration { return p.history }

// Rounds returns the number of completed rounds.
func (p *Probe) Rounds() int { return p.rounds }
