package vhost

import (
	"bytes"
	"testing"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/isal"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

type rig struct {
	e    *sim.Engine
	sys  *mem.System
	as   *mem.AddressSpace
	core *cpu.Core
	wq   *dsa.WQ
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 1,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Enable(); err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace(1)
	core := cpu.NewCore(0, 0, sys, as, cpu.SPRModel())
	return &rig{e: e, sys: sys, as: as, core: core, wq: dev.WQs()[0]}
}

// forward pushes bursts×32 packets of size through a backend and returns
// achieved Mpps.
func forward(t *testing.T, r *rig, mode Mode, size int64, bursts int) (float64, *Backend) {
	t.Helper()
	vq := NewVirtqueue(r.as, r.sys.Node(0), 256, 2048)
	var wq *dsa.WQ
	if mode == DSACopy {
		wq = r.wq
	}
	b, err := NewBackend(mode, vq, r.core, r.as, wq)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(size, 42)
	var elapsed sim.Time
	r.e.Go("fwd", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < bursts; i++ {
			pkts := gen.Burst(32)
			off := 0
			for off < len(pkts) {
				n, err := b.EnqueueBurst(p, pkts[off:])
				if err != nil {
					t.Error(err)
					return
				}
				if n == 0 {
					// Ring full: drain the guest side.
					for vq.UsedLen() > 0 {
						vq.PopUsed()
					}
					if mode == DSACopy {
						b.reap(p)
					}
					p.Sleep(100 * time.Nanosecond)
					continue
				}
				off += n
				for vq.UsedLen() > 0 {
					vq.PopUsed()
				}
			}
		}
		b.Drain(p)
		elapsed = p.Now() - start
	})
	r.e.Run()
	pkts := float64(bursts * 32)
	return pkts / (float64(elapsed) / 1e3), b // packets per µs == Mpps
}

func TestPacketsArriveIntactCPU(t *testing.T) {
	r := newRig(t)
	vq := NewVirtqueue(r.as, r.sys.Node(0), 64, 2048)
	b, err := NewBackend(CPUCopy, vq, r.core, r.as, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(1024, 7)
	pkts := gen.Burst(16)
	r.e.Go("fwd", func(p *sim.Proc) {
		n, err := b.EnqueueBurst(p, pkts)
		if err != nil || n != 16 {
			t.Errorf("EnqueueBurst = %d, %v", n, err)
		}
	})
	r.e.Run()
	for i := 0; i < 16; i++ {
		ue, ok := vq.PopUsed()
		if !ok {
			t.Fatalf("used ring short at %d", i)
		}
		if ue.Seq != uint64(i) {
			t.Fatalf("out of order: got seq %d at %d", ue.Seq, i)
		}
		if !bytes.Equal(vq.Buffers[ue.Desc].Slice(0, ue.Len), pkts[i].Data) {
			t.Fatalf("packet %d corrupted", i)
		}
	}
}

func TestPacketsArriveIntactAndOrderedDSA(t *testing.T) {
	r := newRig(t)
	vq := NewVirtqueue(r.as, r.sys.Node(0), 128, 2048)
	b, err := NewBackend(DSACopy, vq, r.core, r.as, r.wq)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(512, 9)
	var sent []*Packet
	r.e.Go("fwd", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			pkts := gen.Burst(32)
			sent = append(sent, pkts...)
			if n, err := b.EnqueueBurst(p, pkts); err != nil || n != 32 {
				t.Errorf("burst %d: %d, %v", i, n, err)
				return
			}
		}
		b.Drain(p)
	})
	r.e.Run()
	if !b.InOrder() {
		t.Fatal("used ring written out of order")
	}
	if b.Forwarded != uint64(len(sent)) {
		t.Fatalf("forwarded %d of %d", b.Forwarded, len(sent))
	}
	for i := range sent {
		ue, ok := vq.PopUsed()
		if !ok || ue.Seq != uint64(i) {
			t.Fatalf("used entry %d: ok=%v seq=%d", i, ok, ue.Seq)
		}
		if !bytes.Equal(vq.Buffers[ue.Desc].Slice(0, ue.Len), sent[i].Data) {
			t.Fatalf("packet %d corrupted", i)
		}
	}
}

func TestCPURateFallsWithPacketSizeDSAFlat(t *testing.T) {
	// Fig 16b shape: CPU forwarding drops with packet size; DSA stays
	// nearly constant and wins above ~256B.
	r1 := newRig(t)
	cpu64, _ := forward(t, r1, CPUCopy, 64, 40)
	r2 := newRig(t)
	cpu1518, _ := forward(t, r2, CPUCopy, 1518, 40)
	r3 := newRig(t)
	dsa64, _ := forward(t, r3, DSACopy, 64, 40)
	r4 := newRig(t)
	dsa1518, _ := forward(t, r4, DSACopy, 1518, 40)

	if cpu1518 >= cpu64/2 {
		t.Fatalf("CPU rate should drop sharply with size: 64B %.2f vs 1518B %.2f Mpps", cpu64, cpu1518)
	}
	flat := dsa1518 / dsa64
	if flat < 0.7 || flat > 1.3 {
		t.Fatalf("DSA rate should stay near-constant: 64B %.2f vs 1518B %.2f Mpps", dsa64, dsa1518)
	}
	if dsa1518 < 1.14*cpu1518 {
		t.Fatalf("DSA at 1518B (%.2f) should beat CPU (%.2f) by ≥1.14×", dsa1518, cpu1518)
	}
	if cpu64 < dsa64 {
		t.Fatalf("CPU should win at 64B: %.2f vs %.2f", cpu64, dsa64)
	}
}

// PipelineCopy: compressed ingress inflates, digests, and lands in guest
// memory in order, with every payload CRC verified — the whole burst fused
// into one pipeline submission.
func TestPipelineCopyInflatesVerifiesAndOrders(t *testing.T) {
	r := newRig(t)
	svc, err := offload.NewService(r.e, r.sys, []*dsa.WQ{r.wq}, offload.WithScheduler(offload.NewPlacement()))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := svc.NewTenant()
	if err != nil {
		t.Fatal(err)
	}
	vq := NewVirtqueue(tn.AS, r.sys.Node(0), 128, 2048)
	b, err := NewPipelineBackend(vq, tn)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewCompressedGenerator(1024, 11)
	var sent []*Packet
	r.e.Go("fwd", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			pkts := gen.Burst(32)
			sent = append(sent, pkts...)
			if n, err := b.EnqueueBurst(p, pkts); err != nil || n != 32 {
				t.Errorf("burst %d: %d, %v", i, n, err)
				return
			}
		}
		b.Drain(p)
	})
	r.e.Run()
	if !b.InOrder() {
		t.Fatal("used ring written out of order")
	}
	if b.Forwarded != uint64(len(sent)) {
		t.Fatalf("forwarded %d of %d", b.Forwarded, len(sent))
	}
	if b.Verified != uint64(len(sent)) || b.Mismatched != 0 {
		t.Fatalf("CRC verification: %d verified, %d mismatched of %d", b.Verified, b.Mismatched, len(sent))
	}
	// The whole 32-packet burst fuses into one pipeline (one admission);
	// per-packet inflate output must land inflated, not compressed.
	if got := tn.Stats().Pipelines; got != 3 {
		t.Fatalf("Pipelines = %d, want 3 (one per burst)", got)
	}
	for i := range sent {
		ue, ok := vq.PopUsed()
		if !ok || ue.Seq != uint64(i) {
			t.Fatalf("used entry %d: ok=%v seq=%d", i, ok, ue.Seq)
		}
		if ue.Len != sent[i].RawLen {
			t.Fatalf("packet %d landed %d bytes, want inflated %d", i, ue.Len, sent[i].RawLen)
		}
		want := make([]byte, sent[i].RawLen)
		if _, err := isal.Decompress(want, sent[i].Data); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vq.Buffers[ue.Desc].Slice(0, ue.Len), want) {
			t.Fatalf("packet %d corrupted in guest memory", i)
		}
	}
}

func TestRingFullDropsGracefully(t *testing.T) {
	r := newRig(t)
	vq := NewVirtqueue(r.as, r.sys.Node(0), 8, 2048)
	b, err := NewBackend(CPUCopy, vq, r.core, r.as, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(256, 3)
	r.e.Go("fwd", func(p *sim.Proc) {
		n, err := b.EnqueueBurst(p, gen.Burst(32))
		if err != nil {
			t.Error(err)
		}
		if n != 8 {
			t.Errorf("accepted %d with an 8-slot ring, want 8", n)
		}
	})
	r.e.Run()
}
