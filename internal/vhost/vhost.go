// Package vhost reimplements the paper's DPDK Vhost case study (§6.4, Fig
// 16): a VirtIO backend moving packets between host buffers and guest (VM)
// memory through a virtqueue, with packet copies executed either by the CPU
// or offloaded to DSA using the paper's optimized design — a three-stage
// software pipeline, one batch descriptor per 32-packet burst (G1/G2), and
// a reorder ("recording") array that preserves in-order used-ring
// write-back when completions arrive out of order.
package vhost

import (
	"fmt"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/isal"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/sim"
)

// Mode selects the packet-copy engine.
type Mode int

// Copy modes.
const (
	// CPUCopy copies packets with the core (the baseline in Fig 16b).
	CPUCopy Mode = iota
	// DSACopy offloads packet copies as batch descriptors.
	DSACopy
	// PipelineCopy serves compressed ingress through fused offload DAGs:
	// per burst, one pipeline runs ISA-L inflate (software stage), a DSA
	// CRC over the inflated payload, and the DSA move into guest memory —
	// the device stages of the whole burst fuse into one fenced batch, one
	// admission and one completion window instead of per-stage round trips.
	PipelineCopy
)

// Packet is one network packet with a sequence number for ordering checks.
// Compressed packets (PipelineCopy ingress) carry the RLE image in Data
// plus the expected inflated length and payload CRC for verification.
type Packet struct {
	Seq  uint64
	Data []byte

	RawLen int64  // inflated length (0: Data is uncompressed)
	CRC    uint32 // CRC32 of the inflated payload
}

// Virtqueue is the guest-shared descriptor ring: a table of guest buffers,
// an available ring of free buffer indices, and a used ring of filled ones.
type Virtqueue struct {
	Buffers []*mem.Buffer // guest memory, one per descriptor slot
	avail   sim.FIFO[int]
	used    sim.FIFO[UsedElem]
}

// UsedElem is one used-ring entry: which descriptor completed and the
// sequence number of the packet written to it.
type UsedElem struct {
	Desc int
	Seq  uint64
	Len  int64
}

// NewVirtqueue allocates a ring of size slots of bufSize guest memory each.
func NewVirtqueue(as *mem.AddressSpace, node *mem.Node, size int, bufSize int64) *Virtqueue {
	vq := &Virtqueue{}
	for i := 0; i < size; i++ {
		vq.Buffers = append(vq.Buffers, as.Alloc(bufSize, mem.OnNode(node)))
		vq.avail.Push(i)
	}
	return vq
}

// PopUsed removes the next used element, as the guest driver would, and
// returns the descriptor to the available ring (the guest has consumed the
// packet and refilled the buffer).
func (vq *Virtqueue) PopUsed() (UsedElem, bool) {
	ue, ok := vq.used.Pop()
	if ok {
		vq.recycle(ue.Desc)
	}
	return ue, ok
}

// UsedLen returns the used-ring backlog.
func (vq *Virtqueue) UsedLen() int { return vq.used.Len() }

// recycle returns a descriptor to the available ring (guest refilled it).
func (vq *Virtqueue) recycle(desc int) { vq.avail.Push(desc) }

// Costs holds the backend's per-stage CPU costs, calibrated to the paper's
// §6.4 profile: packet copying is 30% of CPU cycles at 512 B and 50+% above
// 1024 B for the CPU backend, and the DSA backend's rate is bound by the
// descriptor-management pipeline rather than the copy (Fig 16b flatness).
type Costs struct {
	// FetchDesc is the per-packet cost of reading an available descriptor
	// and its buffer address (step 1 of enqueue).
	FetchDesc time.Duration
	// Protocol is the per-packet virtio/mbuf bookkeeping cost.
	Protocol time.Duration
	// UsedWriteBack is the per-packet used-ring write cost (step 3).
	UsedWriteBack time.Duration
	// PrepareDSA is the per-packet cost of assembling a DSA work
	// descriptor in the batch array (DSA mode only).
	PrepareDSA time.Duration
	// ReorderScan is the per-packet cost of scanning the recording array
	// for completed copies (DSA mode only).
	ReorderScan time.Duration
}

// DefaultCosts returns the calibration used for Fig 16.
func DefaultCosts() Costs {
	return Costs{
		FetchDesc:     35 * time.Nanosecond,
		Protocol:      55 * time.Nanosecond,
		UsedWriteBack: 30 * time.Nanosecond,
		PrepareDSA:    95 * time.Nanosecond,
		ReorderScan:   65 * time.Nanosecond,
	}
}

// Backend is the Vhost enqueue path for one virtqueue.
type Backend struct {
	Mode  Mode
	VQ    *Virtqueue
	Core  *cpu.Core
	AS    *mem.AddressSpace
	Costs Costs

	// DSA mode state.
	client  *dsa.Client
	stage   []*mem.Buffer // host-side staging buffers, one per VQ slot
	pending []pendingCopy // the recording array (§6.4 packet ordering)

	// PipelineCopy mode state.
	tenant *offload.Tenant

	// Stats.
	Forwarded  uint64
	Bytes      int64
	Verified   uint64 // PipelineCopy: payload CRCs matching the sender's
	Mismatched uint64
	nextSeq    uint64 // next sequence expected in the used ring (order check)
	ordered    bool
}

// pendingCopy tracks one in-flight burst in the recording array: a raw
// batch completion (DSACopy) or a pipeline future with the burst's CRC
// stages (PipelineCopy).
type pendingCopy struct {
	comp  *dsa.Completion
	fut   *offload.Future
	crcs  []*offload.Stage
	wants []uint32
	descs []int
	seqs  []uint64
	sizes []int64
}

// done reports whether the burst's copies have landed.
func (pc *pendingCopy) done() bool {
	if pc.fut != nil {
		return pc.fut.Done()
	}
	return pc.comp.Done()
}

// NewBackend builds a backend. wq may be nil for CPUCopy mode.
func NewBackend(mode Mode, vq *Virtqueue, core *cpu.Core, as *mem.AddressSpace, wq *dsa.WQ) (*Backend, error) {
	b := &Backend{Mode: mode, VQ: vq, Core: core, AS: as, Costs: DefaultCosts(), ordered: true}
	if mode == DSACopy {
		if wq == nil {
			return nil, fmt.Errorf("vhost: DSA mode needs a work queue")
		}
		wq.Dev.BindPASID(as)
		b.client = dsa.NewClient(wq, core)
		// Host-side packet staging (mbuf) pool, one per ring slot.
		for _, gb := range vq.Buffers {
			b.stage = append(b.stage, as.Alloc(gb.Size, mem.OnNode(gb.Node)))
		}
	}
	return b, nil
}

// NewPipelineBackend builds a PipelineCopy backend submitting through the
// offload tenant tn. The virtqueue's guest buffers must live in tn's
// address space (build the Virtqueue with tn.AS) so the device resolves
// them under the tenant's PASID. Staging mbufs are sized for the RLE
// worst case (2 bytes per input byte).
func NewPipelineBackend(vq *Virtqueue, tn *offload.Tenant) (*Backend, error) {
	if tn == nil {
		return nil, fmt.Errorf("vhost: pipeline mode needs an offload tenant")
	}
	b := &Backend{
		Mode: PipelineCopy, VQ: vq, Core: tn.Core, AS: tn.AS,
		Costs: DefaultCosts(), tenant: tn, ordered: true,
	}
	for _, gb := range vq.Buffers {
		b.stage = append(b.stage, tn.Alloc(2*gb.Size+2, mem.OnNode(gb.Node)))
	}
	return b, nil
}

// InOrder reports whether every used-ring write-back so far was in packet
// sequence order (the §6.4 reorder-array guarantee).
func (b *Backend) InOrder() bool { return b.ordered }

// EnqueueBurst processes one burst of packets through the three-stage
// pipeline, returning how many packets were accepted (the rest are dropped,
// as a full ring drops packets in DPDK).
func (b *Backend) EnqueueBurst(p *sim.Proc, pkts []*Packet) (int, error) {
	switch b.Mode {
	case DSACopy:
		return b.enqueueDSA(p, pkts)
	case PipelineCopy:
		return b.enqueuePipeline(p, pkts)
	default:
		return b.enqueueCPU(p, pkts)
	}
}

// enqueueCPU is the baseline: fetch, copy on core, write back, per packet.
func (b *Backend) enqueueCPU(p *sim.Proc, pkts []*Packet) (int, error) {
	accepted := 0
	for _, pkt := range pkts {
		desc, ok := b.VQ.avail.Pop()
		if !ok {
			break
		}
		busy := b.Costs.FetchDesc + b.Costs.Protocol + b.Costs.UsedWriteBack
		p.Sleep(busy)
		b.Core.ChargeBusy(busy)
		buf := b.VQ.Buffers[desc]
		copy(buf.Bytes(), pkt.Data)
		dur := b.copyCost(int64(len(pkt.Data)), buf)
		p.Sleep(dur)
		b.Core.ChargeBusy(dur)
		b.completeUsed(desc, pkt.Seq, int64(len(pkt.Data)))
		accepted++
	}
	return accepted, nil
}

// copyCost models the packet copy on the core: guest buffers are cold (VM
// memory), so the cold curve applies.
func (b *Backend) copyCost(n int64, _ *mem.Buffer) time.Duration {
	return sim.GBps(n, b.Core.M.Cold.At(n))
}

// enqueueDSA is the paper's optimized pipeline:
//  1. Reap completions from earlier bursts and write back used descriptors
//     in order via the recording array.
//  2. Fetch available descriptors, assemble one batch descriptor for the
//     whole burst, submit it, and continue (asynchronous, G2).
func (b *Backend) enqueueDSA(p *sim.Proc, pkts []*Packet) (int, error) {
	b.reap(p)

	var descs []int
	var seqs []uint64
	var sizes []int64
	var subs []dsa.Descriptor
	for _, pkt := range pkts {
		desc, ok := b.VQ.avail.Pop()
		if !ok {
			break
		}
		busy := b.Costs.FetchDesc + b.Costs.Protocol + b.Costs.PrepareDSA + b.Costs.ReorderScan
		p.Sleep(busy)
		b.Core.ChargeBusy(busy)

		// Stage the packet in the host mbuf for this slot: the copy the
		// NIC already performed; DSA then moves it into guest memory.
		buf := b.VQ.Buffers[desc]
		stage := b.stage[desc]
		copy(stage.Bytes(), pkt.Data)
		subs = append(subs, dsa.Descriptor{
			Op: dsa.OpMemmove,
			// G3: packets are consumed promptly by the VM — keep them in
			// the LLC.
			Flags: dsa.FlagCacheControl,
			Src:   stage.Addr(0),
			Dst:   buf.Addr(0),
			Size:  int64(len(pkt.Data)),
		})
		descs = append(descs, desc)
		seqs = append(seqs, pkt.Seq)
		sizes = append(sizes, int64(len(pkt.Data)))
	}
	if len(subs) == 0 {
		return 0, nil
	}
	var comp *dsa.Completion
	var err error
	if len(subs) == 1 {
		d := subs[0]
		d.PASID = b.AS.PASID
		comp, err = b.client.Submit(p, d)
	} else {
		comp, err = b.client.Submit(p, dsa.Descriptor{Op: dsa.OpBatch, PASID: b.AS.PASID, Descs: subs})
	}
	if err != nil {
		return 0, err
	}
	b.pending = append(b.pending, pendingCopy{comp: comp, descs: descs, seqs: seqs, sizes: sizes})
	return len(subs), nil
}

// enqueuePipeline is the fused variant of the optimized design: the whole
// burst becomes ONE pipeline DAG — per packet an inflate stage (software,
// run by the pipeline driver on this backend's core), a CRC over the
// inflated payload, and the move into guest memory, chained with After.
// The burst's device stages compile into one fenced batch: one admission,
// one submission, one completion window; the recording array then reaps
// the pipeline future exactly like a raw batch completion.
func (b *Backend) enqueuePipeline(p *sim.Proc, pkts []*Packet) (int, error) {
	b.reap(p)

	pl := b.tenant.NewPipeline()
	var pc pendingCopy
	for _, pkt := range pkts {
		desc, ok := b.VQ.avail.Pop()
		if !ok {
			break
		}
		busy := b.Costs.FetchDesc + b.Costs.Protocol + b.Costs.PrepareDSA + b.Costs.ReorderScan
		p.Sleep(busy)
		b.Core.ChargeBusy(busy)

		buf := b.VQ.Buffers[desc]
		stage := b.stage[desc]
		copy(stage.Bytes(), pkt.Data)
		rawLen := pkt.RawLen
		if rawLen == 0 || rawLen > buf.Size {
			rawLen = buf.Size
		}
		inflated := pl.Scratch(buf.Size)
		d := pl.Decompress(inflated, offload.At(stage.Addr(0)), int64(len(pkt.Data)), buf.Size)
		crc := pl.CRC32(inflated, rawLen, 0, offload.After(d))
		pl.Copy(offload.At(buf.Addr(0)), inflated, rawLen, offload.After(crc))

		pc.crcs = append(pc.crcs, crc)
		pc.wants = append(pc.wants, pkt.CRC)
		pc.descs = append(pc.descs, desc)
		pc.seqs = append(pc.seqs, pkt.Seq)
		pc.sizes = append(pc.sizes, rawLen)
	}
	if len(pc.descs) == 0 {
		return 0, nil
	}
	fut, err := pl.Submit(p)
	if err != nil {
		return 0, err
	}
	pc.fut = fut
	b.pending = append(b.pending, pc)
	return len(pc.descs), nil
}

// reap writes back used descriptors for completed copies, stopping at the
// first uncompleted burst so packets are never reordered.
func (b *Backend) reap(p *sim.Proc) {
	for len(b.pending) > 0 {
		head := b.pending[0]
		if !head.done() {
			return
		}
		busy := time.Duration(len(head.descs)) * b.Costs.UsedWriteBack
		p.Sleep(busy)
		b.Core.ChargeBusy(busy)
		for i, desc := range head.descs {
			b.completeUsed(desc, head.seqs[i], head.sizes[i])
		}
		for i, crc := range head.crcs {
			if uint32(crc.Result()) == head.wants[i] {
				b.Verified++
			} else {
				b.Mismatched++
			}
		}
		b.pending = b.pending[1:]
	}
}

// Drain waits for all in-flight copies and writes back their descriptors.
func (b *Backend) Drain(p *sim.Proc) {
	for len(b.pending) > 0 {
		head := b.pending[0]
		if head.fut != nil {
			head.fut.Wait(p, offload.Poll)
		} else {
			head.comp.Wait(p)
		}
		b.reap(p)
	}
}

// completeUsed records a used-ring entry; the guest recycles the descriptor
// when it pops the entry.
func (b *Backend) completeUsed(desc int, seq uint64, n int64) {
	if seq != b.nextSeq {
		b.ordered = false
	}
	b.nextSeq = seq + 1
	b.VQ.used.Push(UsedElem{Desc: desc, Seq: seq, Len: n})
	b.Forwarded++
	b.Bytes += n
}

// Generator produces packets of a fixed size with sequential payloads.
// Compressed generators emit RLE-compressed payloads (runs, as bulk
// transfer traffic compresses) with the inflated length and CRC attached
// for the PipelineCopy backend's end-to-end verification.
type Generator struct {
	Size       int64
	compressed bool
	next       uint64
	rng        *sim.Rand
}

// NewGenerator creates a packet generator.
func NewGenerator(size int64, seed uint64) *Generator {
	return &Generator{Size: size, rng: sim.NewRand(seed)}
}

// NewCompressedGenerator creates a generator of RLE-compressed size-byte
// payloads for PipelineCopy ingress.
func NewCompressedGenerator(size int64, seed uint64) *Generator {
	return &Generator{Size: size, compressed: true, rng: sim.NewRand(seed)}
}

// Burst returns n fresh packets.
func (g *Generator) Burst(n int) []*Packet {
	pkts := make([]*Packet, n)
	for i := range pkts {
		if g.compressed {
			pkts[i] = g.compressedPacket()
		} else {
			data := make([]byte, g.Size)
			g.rng.Bytes(data)
			pkts[i] = &Packet{Seq: g.next, Data: data}
		}
		g.next++
	}
	return pkts
}

// compressedPacket builds one runs-heavy payload and its RLE image.
func (g *Generator) compressedPacket() *Packet {
	raw := make([]byte, g.Size)
	for i := 0; i < len(raw); {
		run := 16 + g.rng.Intn(48)
		if i+run > len(raw) {
			run = len(raw) - i
		}
		v := byte(g.rng.Uint64())
		for j := 0; j < run; j++ {
			raw[i+j] = v
		}
		i += run
	}
	comp := make([]byte, 2*g.Size+2)
	clen, err := isal.Compress(comp, raw)
	if err != nil {
		// Worst-case sizing above makes this unreachable.
		panic(err)
	}
	return &Packet{Seq: g.next, Data: comp[:clen], RawLen: g.Size, CRC: isal.CRC32(0, raw)}
}
