package exp

import (
	"fmt"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// Coalesce quantifies the completion-path overhaul (§4.4 made cheap): a
// bulk tenant draining Interrupt-mode completions pays ~2.6µs of delivery
// latency plus handler cost per descriptor, which dominates small-op
// offload the way Fig 11 shows polling burn does — the drain loop, not
// the device, becomes the bottleneck. Interrupt coalescing
// (Policy.CoalesceCount/CoalesceWindow) announces a window of finished
// records with one interrupt, so the delivery cost amortizes across the
// window. Three tables:
//
//   - coalesce: throughput vs op size, per delivery mode. Small ops gain
//     multiples — the 2.6µs wait dwarfs a 4KB transfer's device time —
//     while 256KB ops barely notice (delivery was already amortized by
//     the transfer itself).
//   - coalesce-window: throughput vs window depth at 4KB: the win rises
//     steeply then saturates once delivery stops being the bottleneck.
//   - coalesce-mix: what moderation would cost a latency-sensitive
//     tenant's p99 if it did NOT bypass the window (Policy.CoalesceAll)
//     while a bulk tenant coalesces next to it — the reason the QoS
//     resolution exempts the express classes.
func Coalesce() []*report.Table {
	sizes := []int64{1 << 10, 4 << 10, 16 << 10, 256 << 10}
	modes := []struct {
		name  string
		count int
	}{
		{"per-desc", 1},
		{"window-4", 4},
		{"window-16", 16},
		{"window-64", 64},
	}

	t1 := report.New("coalesce", "Interrupt coalescing: bulk async copy throughput vs op size (Interrupt waits, qd 128)", "size", "GB/s")
	for _, size := range sizes {
		for _, m := range modes {
			t1.SetNamed(m.name, sizeLabel(size), float64(size), coalesceThroughput(size, m.count))
		}
	}
	t1.Note("per-descriptor delivery caps the drain at ~1/(IntrDeliver+IntrHandler) completions per second; coalescing amortizes one delivery over the window (§4.4)")
	t1.Note("large transfers barely gain: the device time per op already dwarfs the delivery latency")

	t2 := report.New("coalesce-window", "Interrupt coalescing: 4KB bulk throughput vs window depth", "window", "GB/s")
	for _, count := range []int{1, 2, 4, 8, 16, 32, 64} {
		t2.Set("4KB", float64(count), coalesceThroughput(4<<10, count))
	}
	t2.Note("the win saturates once delivery stops being the bottleneck and submission/device time takes over")

	t3 := report.New("coalesce-mix", "QoS mix: latency-sensitive p99 vs the bulk tenant's coalescing depth", "bulk window", "p99 us")
	for _, count := range []int{1, 16, 64} {
		t3.Set("ls-bypass", float64(count), float64(coalesceMixP99(count, false))/1e3)
		t3.Set("ls-coalesced", float64(count), float64(coalesceMixP99(count, true))/1e3)
	}
	t3.Note("ls-bypass: the class resolution exempts latency-sensitive tenants, so bulk coalescing never touches the foreground p99")
	t3.Note("ls-coalesced (Policy.CoalesceAll): riding the moderation window trades the foreground tail for deliveries it could afford to pay per descriptor")
	return []*report.Table{t1, t2, t3}
}

// sizeLabel renders a power-of-two byte count.
func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// coalesceRig builds the single-socket QoS device layout (express 8 @ prio
// 15, bulk 24 @ prio 5, shared mode) behind a PriorityAware service.
func coalesceRig() (*sim.Engine, *offload.Service) {
	e := sim.New()
	sys := sprSystem(e)
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{
		Engines: 4,
		WQs: []dsa.WQConfig{
			{Mode: dsa.Shared, Size: 8, Priority: 15},
			{Mode: dsa.Shared, Size: 24, Priority: 5},
		},
	}); err != nil {
		panic(err)
	}
	if err := dev.Enable(); err != nil {
		panic(err)
	}
	svc, err := offload.NewService(e, sys, dev.WQs(),
		offload.WithScheduler(offload.NewPriorityAware()), offload.WithCPUModel(cpu.SPRModel()))
	if err != nil {
		panic(err)
	}
	return e, svc
}

// coalescePol returns a policy coalescing count completions per delivery.
func coalescePol(count int) offload.Policy {
	pol := offload.DefaultPolicy()
	pol.CoalesceCount = count
	pol.CoalesceWindow = 8 * time.Microsecond
	return pol
}

// coalesceThroughput measures the GB/s a bulk tenant sustains streaming
// size-byte hardware copies with a 128-deep in-flight window, draining
// every completion with an Interrupt-mode wait coalesced count-deep
// (count ≤ 1 is per-descriptor delivery, the uncoalesced baseline).
func coalesceThroughput(size int64, count int) float64 {
	const (
		ops = 768
		qd  = 128
	)
	e, svc := coalesceRig()
	tn, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.Bulk), offload.TenantPolicy(coalescePol(count)))
	if err != nil {
		panic(err)
	}
	src := tn.Alloc(size)
	dst := tn.Alloc(size)
	var end sim.Time
	e.Go("bulk", func(p *sim.Proc) {
		var window []*offload.Future
		for i := 0; i < ops; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), size, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			window = append(window, f)
			if len(window) >= qd {
				if _, err := window[0].Wait(p, offload.Interrupt); err != nil {
					panic(err)
				}
				window = window[1:]
			}
		}
		for _, f := range window {
			if _, err := f.Wait(p, offload.Interrupt); err != nil {
				panic(err)
			}
		}
		end = p.Now()
	})
	e.Run()
	return sim.Rate(size*ops, end)
}

// coalesceMixP99 measures a latency-sensitive tenant's p99 completion
// latency (paced 16KB copies, Interrupt waits) while a bulk tenant keeps
// a 32-deep window of 64KB copies in flight coalesced bulkCount-deep.
// With lsCoalesced the foreground tenant is opted into the same
// moderation window (Policy.CoalesceAll) instead of taking the class
// default bypass — the ablation that shows why the bypass exists.
func coalesceMixP99(bulkCount int, lsCoalesced bool) sim.Time {
	const (
		lsOps  = 200
		lsSize = int64(16 << 10)
		bkSize = int64(64 << 10)
		bulkQD = 32
	)
	e, svc := coalesceRig()
	lsPol := coalescePol(bulkCount)
	lsPol.CoalesceAll = lsCoalesced
	ls, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.LatencySensitive), offload.TenantPolicy(lsPol))
	if err != nil {
		panic(err)
	}
	bulk, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.Bulk), offload.TenantPolicy(coalescePol(bulkCount)))
	if err != nil {
		panic(err)
	}
	lsSrc, lsDst := ls.Alloc(lsSize), ls.Alloc(lsSize)
	bkSrc, bkDst := bulk.Alloc(bkSize), bulk.Alloc(bkSize)

	var lats []sim.Time
	done := false
	e.Go("latency-sensitive", func(p *sim.Proc) {
		for i := 0; i < lsOps; i++ {
			f, err := ls.Copy(p, lsDst.Addr(0), lsSrc.Addr(0), lsSize, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			res, err := f.Wait(p, offload.Interrupt)
			if err != nil {
				panic(err)
			}
			lats = append(lats, res.Duration)
			p.Sleep(2 * time.Microsecond) // paced foreground, not a saturating stream
		}
		done = true
	})
	e.Go("bulk", func(p *sim.Proc) {
		var window []*offload.Future
		for !done {
			f, err := bulk.Copy(p, bkDst.Addr(0), bkSrc.Addr(0), bkSize, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			window = append(window, f)
			if len(window) >= bulkQD {
				if _, err := window[0].Wait(p, offload.Interrupt); err != nil {
					panic(err)
				}
				window = window[1:]
			}
		}
		for _, f := range window {
			if _, err := f.Wait(p, offload.Interrupt); err != nil {
				panic(err)
			}
		}
	})
	e.Run()
	return percentile(lats, 99)
}
