package exp

import "testing"

// TestAdaptiveClosedLoopMatchesHandTuning is the tentpole acceptance
// check: the one unchanged adaptive policy must score within 10% of the
// static policy hand-retuned for each regime, and the bursty regime's
// phase changes must be flagged by the telemetry drift detector.
func TestAdaptiveClosedLoopMatchesHandTuning(t *testing.T) {
	tables := Adaptive()
	t1 := tables[0]
	if t1.ID != "adaptive" {
		t.Fatalf("first table = %q, want adaptive", t1.ID)
	}
	for _, x := range t1.Xs() {
		st, ok := t1.Get("static", x)
		if !ok {
			t.Fatalf("missing static score at x=%v", x)
		}
		ad, ok := t1.Get("adaptive", x)
		if !ok {
			t.Fatalf("missing adaptive score at x=%v", x)
		}
		if st <= 0 || ad <= 0 {
			t.Fatalf("non-positive scores at x=%v: static %v adaptive %v", x, st, ad)
		}
		if ad < 0.9*st {
			t.Errorf("regime %v: adaptive score %.3f below 90%% of hand-tuned static %.3f", x, ad, st)
		}
	}

	t2 := tables[1]
	if t2.ID != "adaptive-drift" {
		t.Fatalf("second table = %q, want adaptive-drift", t2.ID)
	}
	xs := t2.Xs()
	burst := xs[len(xs)-1]
	if d, _ := t2.Get("drifts", burst); d < 1 {
		t.Errorf("bursty regime flagged %v drifts, want >= 1", d)
	}

	t3 := tables[2]
	if t3.ID != "adaptive-streams" {
		t.Fatalf("third table = %q, want adaptive-streams", t3.ID)
	}
	if len(t3.Xs()) == 0 {
		t.Error("telemetry stream table is empty")
	}
}
