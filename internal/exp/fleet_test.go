package exp

import (
	"testing"

	"dsasim/internal/fleet"
)

// TestFleetExperimentShape runs the fleet experiment at reduced scale
// and pins what the CI gates rely on: the headline table carries an
// attained and a base point per scenario, both scenarios attain at
// least their design load, and every phase row is populated for both
// classes.
func TestFleetExperimentShape(t *testing.T) {
	old := FleetScale
	FleetScale = 0.2
	defer func() { FleetScale = old }()

	tables := Fleet()
	if len(tables) != 3 || tables[0].ID != "fleet-slo" {
		t.Fatalf("tables = %d, want [fleet-slo fleet-packetswitch fleet-msgbroker]", len(tables))
	}
	slo := tables[0]
	for i, sc := range fleet.Scenarios() {
		x := float64(i)
		att, ok := slo.Get("attained", x)
		if !ok {
			t.Fatalf("%s: no attained point", sc.Name)
		}
		base, ok := slo.Get("base", x)
		if !ok || base != sc.BaseRate/1e3 {
			t.Fatalf("%s: base = %v (ok=%v), want %v", sc.Name, base, ok, sc.BaseRate/1e3)
		}
		t.Logf("%s: attained %.0f kops/s (%.2fx base)", sc.Name, att, att/base)
		if att < base {
			t.Errorf("%s: attained %.0f below design load %.0f", sc.Name, att, base)
		}
	}

	for _, pt := range tables[1:] {
		if got := len(pt.Xs()); got != 5 {
			t.Fatalf("%s: %d phase rows, want 5", pt.ID, got)
		}
		for _, series := range []string{"fg-offered", "fg-goodput", "bg-offered", "bg-goodput", "fg-p99us", "bg-p99us"} {
			for _, x := range pt.Xs() {
				if v, ok := pt.Get(series, x); !ok || v <= 0 {
					t.Errorf("%s: missing or non-positive (%s, phase %v)", pt.ID, series, x)
				}
			}
		}
	}
}
