package exp

import (
	"sort"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// QoS runs a two-tenant interference sweep on one SPR socket (§3.4 F3):
// a latency-sensitive tenant issues paced 16 KB copies while a bulk tenant
// keeps a window of 1 MB copies in flight. The device exposes a small
// high-priority shared WQ next to a large bulk shared WQ. Series compare
// plain least-loaded scheduling (QoS-blind: the bulk backlog queues ahead
// of foreground operations) against the PriorityAware scheduler combined
// with token-bucket admission control on the bulk tenant — the reserved
// express WQ plus rate limiting keep the foreground p99 flat as bulk
// inflight grows.
func QoS() []*report.Table {
	t := report.New("qos", "Two-tenant interference: latency-sensitive p99 copy latency", "bulk inflight", "p99 us")
	for _, qd := range []int{0, 8, 24} {
		for _, cfg := range qosConfigs() {
			p99 := qosP99(cfg, qd)
			t.Set(cfg.name, float64(qd), float64(p99)/1e3)
		}
	}
	t.Note("priority-aware + admission keeps the foreground p99 nearly flat under bulk interference; least-loaded lets megabyte transfers queue ahead of it (WQ priorities, §3.4 F3)")
	return []*report.Table{t}
}

// qosCfg selects the scheduler and the bulk tenant's admission policy for
// one series of the interference sweep.
type qosCfg struct {
	name  string
	sched func() offload.Scheduler
	// admitRate rate-limits the bulk tenant (ops/second of virtual time,
	// 0 = unlimited); over-limit submissions are delayed, not shed.
	admitRate float64
}

// qosConfigs returns the baseline (QoS-blind) and QoS-enabled series.
func qosConfigs() []qosCfg {
	return []qosCfg{
		{name: "least-loaded", sched: func() offload.Scheduler { return offload.NewLeastLoaded() }},
		{
			name:  "qos",
			sched: func() offload.Scheduler { return offload.NewPriorityAware() },
			// ~1 MB every 200 µs: a sixth of the ~30 GB/s device fabric,
			// leaving express slots and engine time for the foreground.
			admitRate: 5000,
		},
	}
}

// qosP99 measures the latency-sensitive tenant's p99 completion latency
// under cfg with bulkQD megabyte copies kept in flight by the bulk tenant.
func qosP99(cfg qosCfg, bulkQD int) sim.Time {
	e := sim.New()
	sys := sprSystem(e)
	dev := dsa.New(e, sys, dsa.DefaultConfig("dsa0", 0))
	if _, err := dev.AddGroup(dsa.GroupConfig{
		Engines: 4,
		WQs: []dsa.WQConfig{
			{Mode: dsa.Shared, Size: 8, Priority: 15},
			{Mode: dsa.Shared, Size: 24, Priority: 5},
		},
	}); err != nil {
		panic(err)
	}
	if err := dev.Enable(); err != nil {
		panic(err)
	}
	svc, err := offload.NewService(e, sys, dev.WQs(),
		offload.WithScheduler(cfg.sched()), offload.WithCPUModel(cpu.SPRModel()))
	if err != nil {
		panic(err)
	}

	ls, err := svc.NewTenant(offload.OnSocket(0), offload.WithClass(offload.LatencySensitive))
	if err != nil {
		panic(err)
	}
	bulkPol := offload.DefaultPolicy()
	bulkPol.AdmitRate = cfg.admitRate
	bulkPol.AdmitBurst = 4
	bulkPol.AdmitWait = true // backpressure the bulk stream, never error
	bulk, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.Bulk), offload.TenantPolicy(bulkPol))
	if err != nil {
		panic(err)
	}

	const (
		lsOps  = 200
		lsSize = int64(16 << 10)
		bkSize = int64(1 << 20)
	)
	lsSrc, lsDst := ls.Alloc(lsSize), ls.Alloc(lsSize)
	bkSrc, bkDst := bulk.Alloc(bkSize), bulk.Alloc(bkSize)

	var lats []sim.Time
	done := false
	e.Go("latency-sensitive", func(p *sim.Proc) {
		for i := 0; i < lsOps; i++ {
			f, err := ls.Copy(p, lsDst.Addr(0), lsSrc.Addr(0), lsSize)
			if err != nil {
				panic(err)
			}
			res, err := f.Wait(p, offload.Poll)
			if err != nil {
				panic(err)
			}
			lats = append(lats, res.Duration)
			p.Sleep(2 * time.Microsecond) // paced foreground, not a saturating stream
		}
		done = true
	})
	if bulkQD > 0 {
		e.Go("bulk", func(p *sim.Proc) {
			var window []*offload.Future
			for !done {
				f, err := bulk.Copy(p, bkDst.Addr(0), bkSrc.Addr(0), bkSize, offload.On(offload.Hardware))
				if err != nil {
					panic(err)
				}
				window = append(window, f)
				if len(window) >= bulkQD {
					if _, err := window[0].Wait(p, offload.Poll); err != nil {
						panic(err)
					}
					window = window[1:]
				}
			}
		})
	}
	e.Run()
	return percentile(lats, 99)
}

// percentile returns the pth percentile (nearest-rank) of the latencies.
func percentile(lats []sim.Time, p int) sim.Time {
	s := append([]sim.Time(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * p / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
