package exp

import (
	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// pipeline workload shape: a closed serial loop — one request in flight,
// measuring end-to-end chain latency. Small transfers make the per-op
// software window (admission, placement, portal write, completion wait)
// the dominant cost, which is exactly what fusion amortizes: a fused
// chain pays it once per DAG, the sequential baseline once per stage.
var (
	pipelineDepths = []int{2, 3, 4}
	pipelineSizes  = []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10}
)

const (
	pipeIters = 300         // chain executions per measurement
	pipeSize  = int64(4096) // payload for the depth sweep
)

// Pipeline measures fused multi-op DAG submission against stage-at-a-time
// submission over two tables:
//
//   - "pipeline": a depth-d move/digest chain (d-1 copies feeding a CRC32)
//     at 4 KB, fused into one fenced batch vs submitted one hardware op at
//     a time with a Wait between stages. y is chain throughput in GB/s.
//   - "pipeline-size": the storage DIF-strip→write chain (protected read
//     stripped to payload, payload written out) across payload sizes.
//
// The fused series submits each chain as ONE batch — one admission charge,
// one portal write, one completion window — with FlagFence expressing the
// stage ordering on-device. The sequential series is the same descriptors
// through the classic one-op path. CI gates fused/sequential at depth 3
// (absolute ≥1.5x floor) and at 4 KB for the storage chain (≥1.2x).
func Pipeline() []*report.Table {
	depth := report.New("pipeline", "Fused pipeline vs per-stage submission vs chain depth",
		"stages", "GB/s")
	for _, d := range pipelineDepths {
		x := float64(d)
		depth.Set("fused", x, chainRun(d, pipeSize, true))
		depth.Set("sequential", x, chainRun(d, pipeSize, false))
	}
	depth.Note("chain = %d-1 copies feeding a CRC32 digest, %s payload, serial closed loop; fused pays one submit+wait per chain, sequential one per stage", pipelineDepths[len(pipelineDepths)-1], report.FormatBytes(float64(pipeSize)))
	depth.Note("intermediates are pipeline Scratch refs: placement scores the chain's fixed endpoints only and the scratch hops follow to the chosen socket")
	depth.Note("CI gates fused/sequential at 3 stages with an absolute 1.5x floor")

	size := report.New("pipeline-size", "Fused DIF-strip→write chain vs payload size",
		"payload", "GB/s")
	for _, n := range pipelineSizes {
		x := float64(n)
		size.Set("fused", x, difRun(n, true))
		size.Set("sequential", x, difRun(n, false))
	}
	size.Note("protected 520B-block input stripped to a scratch payload, then written out; the fusion win shrinks as device time overtakes the per-op software window")
	size.Note("CI gates fused/sequential at 4K with an absolute 1.2x floor")
	return []*report.Table{depth, size}
}

// pipelineEnv builds the experiment platform: one 4-engine device behind a
// shared WQ on each socket, under an offload service with the placement
// scheduler (so fused chains exercise intermediate-buffer-aware placement).
func pipelineEnv() (*env, *offload.Tenant) {
	e := sim.New()
	sys := sprSystem(e)
	v := &env{e: e, sys: sys}
	var wqs []*dsa.WQ
	for s := 0; s < 2; s++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", s))
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines: 4,
			WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 64}},
		}); err != nil {
			panic(err)
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		v.devs = append(v.devs, dev)
		wqs = append(wqs, dev.WQs()...)
	}
	svc, err := offload.NewService(e, sys, wqs, offload.WithScheduler(offload.NewPlacement()))
	if err != nil {
		panic(err)
	}
	tn, err := svc.NewTenant()
	if err != nil {
		panic(err)
	}
	return v, tn
}

// chainRun executes pipeIters depth-stage move/digest chains (depth-1
// copies feeding a CRC32) over a fresh platform and returns chain
// throughput in GB/s (payload bytes touched per stage, summed).
func chainRun(depth int, size int64, fused bool) float64 {
	v, tn := pipelineEnv()
	src := tn.Alloc(size)
	dst := tn.Alloc(size)
	rng := sim.NewRand(17)
	rng.Bytes(src.Bytes())

	var elapsed sim.Time
	v.e.Go("chain", func(p *sim.Proc) {
		start := p.Now()
		if fused {
			pl := tn.NewPipeline()
			cur, prev := offload.At(src.Addr(0)), (*offload.Stage)(nil)
			for i := 0; i < depth-1; i++ {
				next := offload.At(dst.Addr(0))
				if i < depth-2 {
					next = pl.Scratch(size)
				}
				if prev == nil {
					prev = pl.Copy(next, cur, size)
				} else {
					prev = pl.Copy(next, cur, size, offload.After(prev))
				}
				cur = next
			}
			pl.CRC32(cur, size, 0, offload.After(prev))
			for i := 0; i < pipeIters; i++ {
				fut, err := pl.Submit(p)
				if err != nil {
					panic(err)
				}
				if _, err := fut.Wait(p, offload.Poll); err != nil {
					panic(err)
				}
			}
		} else {
			// Same chain, one hardware op at a time. Intermediates are
			// plain tenant buffers: the sequential path has no scratch
			// plumbing to hand placement.
			hops := make([]*mem.Buffer, 0, depth-2)
			for i := 0; i < depth-2; i++ {
				hops = append(hops, tn.Alloc(size))
			}
			for i := 0; i < pipeIters; i++ {
				cur := src.Addr(0)
				for j := 0; j < depth-1; j++ {
					next := dst.Addr(0)
					if j < depth-2 {
						next = hops[j].Addr(0)
					}
					fut, err := tn.Copy(p, next, cur, size, offload.On(offload.Hardware), offload.NoBatch())
					seqOp(p, fut, err)
					cur = next
				}
				fut, err := tn.CRC32(p, cur, size, 0, offload.On(offload.Hardware), offload.NoBatch())
				seqOp(p, fut, err)
			}
		}
		elapsed = p.Now() - start
	})
	v.e.Run()
	return sim.Rate(size*int64(depth)*pipeIters, elapsed)
}

// difRun executes pipeIters DIF-strip→write chains: a protected 520B-block
// input is verified and stripped to payload, and the payload written to its
// destination. Returns GB/s over the payload bytes each stage touches.
func difRun(payload int64, fused bool) float64 {
	v, tn := pipelineEnv()
	blocks := payload / int64(dif.Block512)
	protSize := blocks * int64(dif.Block512.Protected())
	tags := dif.Tags{AppTag: 0x1D, RefTag: 9, IncrementRef: true}

	prot := tn.Alloc(protSize)
	dst := tn.Alloc(payload)
	raw := make([]byte, payload)
	rng := sim.NewRand(23)
	rng.Bytes(raw)
	if err := dif.Insert(prot.Bytes(), raw, dif.Block512, tags); err != nil {
		panic(err)
	}

	var elapsed sim.Time
	v.e.Go("dif", func(p *sim.Proc) {
		start := p.Now()
		if fused {
			pl := tn.NewPipeline()
			stripped := pl.Scratch(payload)
			st := pl.DIFStrip(stripped, offload.At(prot.Addr(0)), protSize, dif.Block512, tags)
			pl.Copy(offload.At(dst.Addr(0)), stripped, payload, offload.After(st))
			for i := 0; i < pipeIters; i++ {
				fut, err := pl.Submit(p)
				if err != nil {
					panic(err)
				}
				if _, err := fut.Wait(p, offload.Poll); err != nil {
					panic(err)
				}
			}
		} else {
			hop := tn.Alloc(payload)
			for i := 0; i < pipeIters; i++ {
				fut, err := tn.DIFStrip(p, hop.Addr(0), prot.Addr(0), protSize, dif.Block512, tags,
					offload.On(offload.Hardware), offload.NoBatch())
				seqOp(p, fut, err)
				fut, err = tn.Copy(p, dst.Addr(0), hop.Addr(0), payload,
					offload.On(offload.Hardware), offload.NoBatch())
				seqOp(p, fut, err)
			}
		}
		elapsed = p.Now() - start
	})
	v.e.Run()
	return sim.Rate(payload*2*pipeIters, elapsed)
}

// seqOp waits out one sequential-baseline hardware op.
func seqOp(p *sim.Proc, fut *offload.Future, err error) {
	if err != nil {
		panic(err)
	}
	if _, err := fut.Wait(p, offload.Poll); err != nil {
		panic(err)
	}
}
