package exp

import (
	"testing"

	"dsasim/internal/dsa"
)

// The paper distills its analysis into guidelines G1–G6 (§6). Each test
// restates one guideline as a measurable predicate of the model, so a
// regression that breaks a guideline's mechanism fails loudly.

// G1: keep a balanced batch size and transfer size — for a fixed total,
// oversplitting into many small descriptors loses to fewer larger ones.
func TestG1BalancedBatchBeatsOversplitting(t *testing.T) {
	total := int64(64 << 10)
	run := func(bs int) float64 {
		v := newEnv(1)
		return v.runCopy(copyCfg{size: total / int64(bs), batch: bs, count: 40, qd: 1}).gbps
	}
	modest := run(4)
	shredded := run(128)
	if modest <= shredded {
		t.Fatalf("G1 violated: BS4 (%.1f GB/s) should beat BS128 (%.1f GB/s) for a fixed 64KB total", modest, shredded)
	}
}

// G2: use DSA asynchronously when possible — async throughput dominates
// sync at every size; below ~4KB the core beats synchronous offload.
func TestG2AsyncDominatesSync(t *testing.T) {
	for _, size := range []int64{256, 4 << 10, 64 << 10, 1 << 20} {
		vs := newEnv(1)
		sync := vs.runCopy(copyCfg{size: size, count: 30, qd: 1}).gbps
		va := newEnv(1)
		async := va.runCopy(copyCfg{size: size, count: 150, qd: 32}).gbps
		if async < sync {
			t.Fatalf("G2 violated at %d bytes: async %.1f < sync %.1f", size, async, sync)
		}
	}
	// The sync path below the threshold belongs on the core.
	v := newEnv(1)
	dsaSmall := v.runCopy(copyCfg{size: 1024, count: 30, qd: 1}).gbps
	vc := newEnv(0)
	cpuSmall := 1024.0 / float64(vc.swTime(dsa.OpMemmove, 1024, nil, nil, false, false))
	if dsaSmall >= cpuSmall {
		t.Fatalf("G2 violated: sync 1KB offload (%.2f GB/s) should lose to the core (%.2f GB/s)", dsaSmall, cpuSmall)
	}
}

// G3: control the data destination wisely — cache-control steers writes
// into the LLC (bounded by the DDIO ways); without it the LLC stays clean.
func TestG3DestinationSteering(t *testing.T) {
	v := newEnv(1)
	llc := v.sys.SocketOf(0).LLC
	v.runCopy(copyCfg{size: 1 << 20, count: 10, qd: 1})
	if got := llc.Occupancy(v.devs[0].Owner()); got != 0 {
		t.Fatalf("G3: memory-steered writes left %d bytes in LLC", got)
	}
	v2 := newEnv(1)
	llc2 := v2.sys.SocketOf(0).LLC
	v2.runCopy(copyCfg{size: 1 << 20, count: 10, qd: 1, flags: dsa.FlagCacheControl})
	occ := llc2.Occupancy(v2.devs[0].Owner())
	if occ == 0 {
		t.Fatal("G3: cache-control writes did not allocate in LLC")
	}
	if occ > llc2.DDIOCapacity() {
		t.Fatalf("G3: device occupancy %d exceeds DDIO partition %d", occ, llc2.DDIOCapacity())
	}
}

// G4: DSA is the right engine for heterogeneous-memory moves — its
// advantage over the core is larger on CXL than on DRAM, and the faster-
// write medium belongs on the destination side.
func TestG4HeterogeneousMemoryMoves(t *testing.T) {
	size := int64(256 << 10)

	vd := newEnv(1)
	dsaDD := vd.runCopy(copyCfg{size: size, count: 30, qd: 32}).gbps
	vc := newEnv(0)
	cpuDD := float64(size) / float64(vc.swTime(dsa.OpMemmove, size, vc.node(0), vc.node(0), false, false))

	vx := newEnv(1)
	dsaCD := vx.runCopy(copyCfg{size: size, count: 30, qd: 32, srcNode: vx.node(2), dstNode: vx.node(0)}).gbps
	vcx := newEnv(0)
	cpuCD := float64(size) / float64(vcx.swTime(dsa.OpMemmove, size, vcx.node(2), vcx.node(0), false, false))

	if dsaCD/cpuCD <= dsaDD/cpuDD {
		t.Fatalf("G4 violated: CXL speedup (%.1fx) should exceed DRAM speedup (%.1fx)",
			dsaCD/cpuCD, dsaDD/cpuDD)
	}

	// Destination on the faster-write medium (DRAM) wins.
	vy := newEnv(1)
	dsaDC := vy.runCopy(copyCfg{size: size, count: 30, qd: 32, srcNode: vy.node(0), dstNode: vy.node(2)}).gbps
	if dsaDC >= dsaCD {
		t.Fatalf("G4 violated: D→C (%.1f GB/s) should trail C→D (%.1f GB/s)", dsaDC, dsaCD)
	}
}

// G5: leverage PE-level parallelism — more engines raise small-transfer
// throughput.
func TestG5PEParallelism(t *testing.T) {
	run := func(engines int) float64 {
		v := newEnv(1, dsa.GroupConfig{
			Engines: engines,
			WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
		})
		return v.runCopy(copyCfg{size: 1 << 10, batch: 16, count: 60, qd: 16}).gbps
	}
	one := run(1)
	four := run(4)
	if four < 2*one {
		t.Fatalf("G5 violated: 4 PEs (%.1f GB/s) should be ≥2x 1 PE (%.1f GB/s)", four, one)
	}
}

// G6: optimize WQ configuration — 32 WQ entries deliver nearly the maximum
// throughput; a single-thread SWQ trails a DWQ.
func TestG6WQConfiguration(t *testing.T) {
	run := func(entries int) float64 {
		v := newEnv(1, dsa.GroupConfig{
			Engines: 4,
			WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: entries}},
		})
		return v.runCopy(copyCfg{size: 16 << 10, count: 150, qd: entries}).gbps
	}
	if w32, w128 := run(32), run(128); w32 < 0.95*w128 {
		t.Fatalf("G6 violated: 32 entries (%.1f GB/s) should reach ≥95%% of 128 (%.1f GB/s)", w32, w128)
	}

	vs := newEnv(1, dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Shared, Size: 32}}})
	swq := vs.runCopy(copyCfg{size: 1 << 10, count: 200, qd: 32}).gbps
	vd := newEnv(1, dsa.GroupConfig{Engines: 4, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}})
	dwq := vd.runCopy(copyCfg{size: 1 << 10, count: 200, qd: 32}).gbps
	if swq >= dwq {
		t.Fatalf("G6 violated: single-thread SWQ (%.1f GB/s) should trail DWQ (%.1f GB/s)", swq, dwq)
	}
}
