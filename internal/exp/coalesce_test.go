package exp

import "testing"

// The PR's acceptance experiment: coalescing Interrupt-mode deliveries
// must buy small-op bulk tenants a material throughput win at a deep
// window, leave large transfers essentially untouched, and — because the
// QoS resolution exempts latency-sensitive tenants — must not move the
// foreground p99 at all.
func TestCoalescingSpeedsBulkWithoutHurtingForegroundTail(t *testing.T) {
	// Small ops at a deep window: one delivery per 16 completions instead
	// of one each must be worth well over the asserted 1.5x.
	perDesc := coalesceThroughput(4<<10, 1)
	deep := coalesceThroughput(4<<10, 16)
	if deep < 1.5*perDesc {
		t.Errorf("4KB: window-16 %.2f GB/s not ≥1.5x per-descriptor %.2f GB/s", deep, perDesc)
	}

	// Large transfers already amortize the delivery latency; coalescing
	// must not cost them anything.
	bigBase := coalesceThroughput(256<<10, 1)
	bigDeep := coalesceThroughput(256<<10, 16)
	if bigDeep < 0.95*bigBase {
		t.Errorf("256KB: window-16 %.2f GB/s regressed vs per-descriptor %.2f GB/s", bigDeep, bigBase)
	}

	// The latency-sensitive tenant bypasses moderation, so its p99 under
	// a deeply coalescing bulk neighbor stays within 5% of the
	// uncoalesced baseline.
	base := coalesceMixP99(1, false)
	deepMix := coalesceMixP99(64, false)
	if float64(deepMix) > 1.05*float64(base) {
		t.Errorf("foreground p99 %v under bulk window-64 not within 5%% of uncoalesced %v", deepMix, base)
	}
	// ...and the bypass is load-bearing: opting the foreground into the
	// window (Policy.CoalesceAll) visibly costs its tail.
	coalesced := coalesceMixP99(64, true)
	if float64(coalesced) < 1.2*float64(deepMix) {
		t.Errorf("ls-coalesced p99 %v not ≥1.2x the bypass p99 %v — the ablation should show the bypass matters", coalesced, deepMix)
	}
}
