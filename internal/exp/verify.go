package exp

import (
	"bytes"

	"dsasim/internal/delta"
	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/isal"
	"dsasim/internal/sim"
)

// opCheck is one Table 1 verification outcome.
type opCheck struct {
	name string
	ok   bool
}

// verifyOps runs every Table 1 operation through the device and checks the
// functional result against the software kernels.
func verifyOps() []opCheck {
	v := newEnv(1)
	wq := v.devs[0].WQs()[0]
	cl := dsa.NewClient(wq, nil)
	node := v.node(0)

	const n = 4096
	src := v.buf(n, node, false, 0)
	src2 := v.buf(n, node, false, 0)
	dst := v.buf(n, node, false, 0)
	dst2 := v.buf(n, node, false, 0)
	prot := v.buf(n/512*520, node, false, 0)
	prot2 := v.buf(n/512*520, node, false, 0)
	rec := v.buf(2*n, node, false, 0)
	sim.NewRand(17).Bytes(src.Bytes())
	copy(src2.Bytes(), src.Bytes())
	src2.Bytes()[99] ^= 0xFF
	tags := dif.Tags{AppTag: 0xD15A, RefTag: 7, IncrementRef: true}
	newTags := dif.Tags{AppTag: 0xBEEF, RefTag: 100}

	var out []opCheck
	run := func(name string, d dsa.Descriptor, check func(r dsa.CompletionRecord) bool) {
		var rcd dsa.CompletionRecord
		v.e.Go(name, func(p *sim.Proc) {
			comp, err := cl.RunSync(p, d, dsa.Poll)
			if err != nil {
				return
			}
			rcd = comp.Record()
		})
		v.e.Run()
		out = append(out, opCheck{name: name, ok: check(rcd)})
	}

	run("memory_copy", dsa.Descriptor{Op: dsa.OpMemmove, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: n},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && bytes.Equal(dst.Bytes(), src.Bytes())
		})
	run("dualcast", dsa.Descriptor{Op: dsa.OpDualcast, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Dst2: dst2.Addr(0), Size: n},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && bytes.Equal(dst2.Bytes(), src.Bytes())
		})
	run("crc_generation", dsa.Descriptor{Op: dsa.OpCRCGen, PASID: 1, Src: src.Addr(0), Size: n},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && uint32(r.Result) == isal.CRC32(0, src.Bytes())
		})
	run("copy_crc", dsa.Descriptor{Op: dsa.OpCopyCRC, PASID: 1, Src: src.Addr(0), Dst: dst.Addr(0), Size: n},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && uint32(r.Result) == isal.CRC32(0, src.Bytes())
		})
	run("dif_insert", dsa.Descriptor{Op: dsa.OpDIFInsert, PASID: 1, Src: src.Addr(0), Dst: prot.Addr(0), Size: n, DIFBlock: dif.Block512, DIFTags: tags},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && dif.Check(prot.Bytes(), dif.Block512, tags) == nil
		})
	run("dif_check", dsa.Descriptor{Op: dsa.OpDIFCheck, PASID: 1, Src: prot.Addr(0), Size: prot.Size, DIFBlock: dif.Block512, DIFTags: tags},
		func(r dsa.CompletionRecord) bool { return r.Status == dsa.StatusSuccess })
	run("dif_update", dsa.Descriptor{Op: dsa.OpDIFUpdate, PASID: 1, Src: prot.Addr(0), Dst: prot2.Addr(0), Size: prot.Size, DIFBlock: dif.Block512, DIFTags: tags, DIFTags2: newTags},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && dif.Check(prot2.Bytes(), dif.Block512, newTags) == nil
		})
	run("dif_strip", dsa.Descriptor{Op: dsa.OpDIFStrip, PASID: 1, Src: prot.Addr(0), Dst: dst.Addr(0), Size: prot.Size, DIFBlock: dif.Block512, DIFTags: tags},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && bytes.Equal(dst.Bytes(), src.Bytes())
		})
	run("memory_fill", dsa.Descriptor{Op: dsa.OpFill, PASID: 1, Dst: dst.Addr(0), Size: n, Pattern: 0x1122334455667788},
		func(r dsa.CompletionRecord) bool {
			_, eq := isal.ComparePattern(dst.Bytes(), 0x1122334455667788)
			return r.Status == dsa.StatusSuccess && eq
		})
	run("memory_compare", dsa.Descriptor{Op: dsa.OpCompare, PASID: 1, Src: src.Addr(0), Src2: src2.Addr(0), Size: n},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && r.Mismatch && r.Result == 99
		})
	run("compare_pattern", dsa.Descriptor{Op: dsa.OpComparePattern, PASID: 1, Src: dst.Addr(0), Size: n, Pattern: 0x1122334455667788},
		func(r dsa.CompletionRecord) bool { return r.Status == dsa.StatusSuccess && !r.Mismatch })

	var deltaLen int64
	run("create_delta", dsa.Descriptor{Op: dsa.OpCreateDelta, PASID: 1, Src: src.Addr(0), Src2: src2.Addr(0), Dst: rec.Addr(0), Size: n, MaxDst: rec.Size},
		func(r dsa.CompletionRecord) bool {
			deltaLen = int64(r.Result)
			return r.Status == dsa.StatusSuccess && delta.Count(int(deltaLen)) == 1
		})
	run("apply_delta", dsa.Descriptor{Op: dsa.OpApplyDelta, PASID: 1, Src: rec.Addr(0), Dst: src.Addr(0), Size: deltaLen, MaxDst: n},
		func(r dsa.CompletionRecord) bool {
			return r.Status == dsa.StatusSuccess && bytes.Equal(src.Bytes(), src2.Bytes())
		})
	run("cache_flush", dsa.Descriptor{Op: dsa.OpCacheFlush, PASID: 1, Src: src.Addr(0), Size: n},
		func(r dsa.CompletionRecord) bool { return r.Status == dsa.StatusSuccess })
	run("drain", dsa.Descriptor{Op: dsa.OpDrain, PASID: 1},
		func(r dsa.CompletionRecord) bool { return r.Status == dsa.StatusSuccess })
	run("nop", dsa.Descriptor{Op: dsa.OpNop, PASID: 1},
		func(r dsa.CompletionRecord) bool { return r.Status == dsa.StatusSuccess })

	return out
}
