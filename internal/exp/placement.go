package exp

import (
	"fmt"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// Placement compares tenant-socket routing (NUMALocal) against data-home
// routing (the Placement scheduler) on a two-socket SPR system with one
// DSA per socket and a CXL expander on socket 0 (G4, Figs 6a/6b):
//
//   - local: tenant and data on socket 0 — every policy agrees (the
//     ~27 GB/s device-fabric ceiling anchors the scale).
//   - xsock: two tenants whose data is homed on the *other* socket.
//     NUMALocal keeps each tenant on its own socket's device, so every
//     byte crosses UPI twice (once per leg) and the shared link halves
//     aggregate throughput (Fig 6a); Placement follows the data and never
//     touches UPI.
//   - cxl-mix: tiered-memory flush cycles whose batches mix socket-0
//     compaction, socket-1 compaction, and DRAM↔CXL migration. NUMALocal
//     (and Placement without splitting) serializes each flush behind one
//     device fabric; splitting shards it into per-socket sub-batches that
//     run on both devices in parallel.
//   - demote/promote: DRAM↔CXL streams with both ends on socket 0 — the
//     CXL pipes bound throughput wherever the device sits (Fig 6b), so
//     the policies tie and the rows anchor the media crossover.
//   - skew: one tenant saturates socket 0 (all data socket-0 DRAM, a deep
//     in-flight window) while socket 1's DSA idles. Data-only placement
//     serializes behind the home device; load-aware placement
//     (Policy.LoadAware) detours submissions across UPI once the modelled
//     queueing delay exceeds the transfer penalty, running both devices.
func Placement() []*report.Table {
	t := report.New("placement", "Data-home placement: 2 sockets, 1 DSA each, CXL on socket 0", "workload", "GB/s")
	for i, wl := range placementWorkloads() {
		for _, cfg := range placementConfigs() {
			t.SetNamed(cfg.name, wl.name, float64(i), placementThroughput(cfg, wl))
		}
	}
	t.Note("xsock: routing on the data's home instead of the tenant's socket keeps both legs off UPI (Fig 6a, G4)")
	t.Note("cxl-mix: splitting a mixed-home batch puts each slice on its local device and runs the devices in parallel")
	t.Note("demote/promote: the CXL pipes bound throughput wherever the device sits (Fig 6b)")
	t.Note("skew: load-aware placement rides the idle remote device once queueing delay dwarfs the UPI penalty (§3.3/§5)")
	return []*report.Table{t}
}

// placementCfg is one scheduler series of the sweep.
type placementCfg struct {
	name      string
	sched     func() offload.Scheduler
	split     bool
	loadAware bool
}

// placementConfigs returns the compared policies: the NUMALocal baseline,
// data-home routing without batch splitting, the full placement path, and
// placement with the load-aware fallback on.
func placementConfigs() []placementCfg {
	return []placementCfg{
		{name: "numa-local", sched: func() offload.Scheduler { return offload.NewNUMALocal() }},
		{name: "placement-nosplit", sched: func() offload.Scheduler { return offload.NewPlacement() }},
		{name: "placement", sched: func() offload.Scheduler { return offload.NewPlacement() }, split: true},
		{name: "placement-load", sched: func() offload.Scheduler { return offload.NewPlacement() }, split: true, loadAware: true},
	}
}

// placementWorkload drives one traffic pattern on the prepared service,
// running the engine to completion, and returns the payload bytes moved
// and the finish instant.
type placementWorkload struct {
	name string
	run  func(e *sim.Engine, svc *offload.Service) (int64, sim.Time)
}

// placementWorkloads returns the sweep's traffic patterns. Node ids follow
// the SPR layout: 0 = socket-0 DRAM, 1 = socket-1 DRAM, 2 = CXL (socket 0).
func placementWorkloads() []placementWorkload {
	return []placementWorkload{
		{name: "local", run: func(e *sim.Engine, svc *offload.Service) (int64, sim.Time) {
			return copyStreams(e, svc, []copyStream{{tenantSocket: 0, srcNode: 0, dstNode: 0, size: 256 << 10, count: 40}})
		}},
		{name: "xsock", run: func(e *sim.Engine, svc *offload.Service) (int64, sim.Time) {
			return copyStreams(e, svc, []copyStream{
				{tenantSocket: 0, srcNode: 1, dstNode: 1, size: 256 << 10, count: 40},
				{tenantSocket: 1, srcNode: 0, dstNode: 0, size: 256 << 10, count: 40},
			})
		}},
		{name: "cxl-mix", run: mixedMigrationBatches},
		{name: "demote", run: func(e *sim.Engine, svc *offload.Service) (int64, sim.Time) {
			return copyStreams(e, svc, []copyStream{{tenantSocket: 0, srcNode: 0, dstNode: 2, size: 1 << 20, count: 12}})
		}},
		{name: "promote", run: func(e *sim.Engine, svc *offload.Service) (int64, sim.Time) {
			return copyStreams(e, svc, []copyStream{{tenantSocket: 0, srcNode: 2, dstNode: 0, size: 1 << 20, count: 12}})
		}},
		{name: "skew", run: func(e *sim.Engine, svc *offload.Service) (int64, sim.Time) {
			return skewedLoad(e, svc, 16)
		}},
	}
}

// skewedLoad saturates socket 0: one bulk tenant whose data is all homed
// on socket-0 DRAM keeps qd 256 KB copies in flight while socket 1's
// device idles. Data-only placement follows the data onto the backlogged
// device; with Policy.LoadAware the cost model detours submissions to the
// idle remote device once the home WQ's queueing delay (latency EWMA ×
// occupancy) exceeds the UPI transfer penalty, so both devices run.
func skewedLoad(e *sim.Engine, svc *offload.Service, qd int) (int64, sim.Time) {
	const (
		size  = int64(256 << 10)
		count = 96
	)
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		panic(err)
	}
	src := tn.AllocOn(0, size)
	dst := tn.AllocOn(0, size)
	var end sim.Time
	e.Go("bulk", func(p *sim.Proc) {
		var window []*offload.Future
		for k := 0; k < count; k++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), size, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			window = append(window, f)
			if len(window) >= qd {
				if _, err := window[0].Wait(p, offload.Poll); err != nil {
					panic(err)
				}
				window = window[1:]
			}
		}
		for _, f := range window {
			if _, err := f.Wait(p, offload.Poll); err != nil {
				panic(err)
			}
		}
		end = p.Now()
	})
	e.Run()
	return size * count, end
}

// copyStream is one tenant streaming synchronous hardware copies.
type copyStream struct {
	tenantSocket     int
	srcNode, dstNode int
	size             int64
	count            int
}

// copyStreams runs every stream concurrently and returns the aggregate
// bytes and the instant the last stream finished.
func copyStreams(e *sim.Engine, svc *offload.Service, streams []copyStream) (int64, sim.Time) {
	var total int64
	var end sim.Time
	for i, s := range streams {
		s := s
		tn, err := svc.NewTenant(offload.OnSocket(s.tenantSocket))
		if err != nil {
			panic(err)
		}
		src := tn.AllocOn(s.srcNode, s.size)
		dst := tn.AllocOn(s.dstNode, s.size)
		total += s.size * int64(s.count)
		e.Go(fmt.Sprintf("stream%d", i), func(p *sim.Proc) {
			for k := 0; k < s.count; k++ {
				f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), s.size, offload.On(offload.Hardware))
				if err != nil {
					panic(err)
				}
				if _, err := f.Wait(p, offload.Poll); err != nil {
					panic(err)
				}
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	e.Run()
	return total, end
}

// mixedMigrationBatches models a tiered-memory manager's flush cycle: each
// batch compacts six 1 MB regions within each socket's DRAM and migrates
// two cold/hot 128 KB regions between socket-0 DRAM and CXL. The homes
// mix, so a data-aware scheduler with splitting shards every flush across
// both devices, while a single-WQ policy serializes ~12.5 MB behind one
// device fabric (and pushes the socket-1 slice through UPI twice).
func mixedMigrationBatches(e *sim.Engine, svc *offload.Service) (int64, sim.Time) {
	const (
		batches   = 6
		compacts  = 6 // per socket, 1 MB each
		compactSz = int64(1 << 20)
		migrates  = 2 // demote + promote, 128 KB each
		migrateSz = int64(128 << 10)
	)
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		panic(err)
	}
	s1src := tn.AllocOn(1, compacts*compactSz)
	s1dst := tn.AllocOn(1, compacts*compactSz)
	s0src := tn.AllocOn(0, compacts*compactSz)
	s0dst := tn.AllocOn(0, compacts*compactSz)
	demoteSrc := tn.AllocOn(0, migrateSz)
	demoteDst := tn.AllocOn(2, migrateSz)
	promoteSrc := tn.AllocOn(2, migrateSz)
	promoteDst := tn.AllocOn(0, migrateSz)

	perBatch := 2*compacts*compactSz + int64(migrates)*migrateSz
	var end sim.Time
	e.Go("migrator", func(p *sim.Proc) {
		for i := 0; i < batches; i++ {
			b := tn.NewBatch()
			// Socket-1 compaction first: a data-blind (or no-split) policy
			// then routes the whole flush by the tenant's socket or the
			// first child's home — one device either way.
			for j := int64(0); j < compacts; j++ {
				b.Copy(s1dst.Addr(j*compactSz), s1src.Addr(j*compactSz), compactSz)
				b.Copy(s0dst.Addr(j*compactSz), s0src.Addr(j*compactSz), compactSz)
			}
			b.Copy(demoteDst.Addr(0), demoteSrc.Addr(0), migrateSz)
			b.Copy(promoteDst.Addr(0), promoteSrc.Addr(0), migrateSz)
			f, err := b.Submit(p)
			if err != nil {
				panic(err)
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				panic(err)
			}
		}
		end = p.Now()
	})
	e.Run()
	return int64(batches) * perBatch, end
}

// Skew sweeps the skewed-load scenario's in-flight window: data-only
// placement (the PR-3 behavior) against load-aware placement
// (Policy.LoadAware) with socket 0 saturated and socket 1 idle. At a
// shallow window the home WQ barely queues and the two policies tie; as
// the window deepens, queueing delay on the home device grows linearly
// while the UPI penalty stays flat, so the load-aware detour buys an
// increasing share of the idle device's bandwidth — the trajectory CI's
// bench-gate asserts on.
func Skew() []*report.Table {
	t := report.New("skew", "Skewed load: socket 0 saturated, socket 1 idle — data-only vs load-aware placement", "inflight", "GB/s")
	for _, qd := range []int{4, 8, 16, 24} {
		for _, cfg := range placementConfigs() {
			if cfg.name != "placement" && cfg.name != "placement-load" {
				continue
			}
			wl := placementWorkload{name: "skew", run: func(e *sim.Engine, svc *offload.Service) (int64, sim.Time) {
				return skewedLoad(e, svc, qd)
			}}
			t.Set(cfg.name, float64(qd), placementThroughput(cfg, wl))
		}
	}
	t.Note("queueing delay grows with the window while the UPI penalty stays flat: the deeper the backlog, the more the detour wins (§3.3/§5)")
	return []*report.Table{t}
}

// placementThroughput measures aggregate GB/s of the workload under cfg on
// the two-device SPR system.
func placementThroughput(cfg placementCfg, wl placementWorkload) float64 {
	e := sim.New()
	sys := sprSystem(e)
	var wqs []*dsa.WQ
	for s := 0; s < 2; s++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", s))
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines: 4,
			WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
		}); err != nil {
			panic(err)
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		wqs = append(wqs, dev.WQs()...)
	}
	pol := offload.DefaultPolicy()
	pol.SplitBatches = cfg.split
	pol.LoadAware = cfg.loadAware
	svc, err := offload.NewService(e, sys, wqs,
		offload.WithScheduler(cfg.sched()), offload.WithPolicy(pol), offload.WithCPUModel(cpu.SPRModel()))
	if err != nil {
		panic(err)
	}
	bytes, end := wl.run(e, svc)
	return sim.Rate(bytes, end)
}
