package exp

import (
	"fmt"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/report"
	"dsasim/internal/sim"
	"dsasim/internal/telemetry"
)

// Adaptive closes the loop on the telemetry plane: one adaptive policy
// (pressure-scaled threshold, load-aware placement, rate-sized interrupt
// coalescing — every knob reading internal/telemetry digests) is run
// unchanged across three traffic regimes, against a static policy
// hand-retuned for each regime. Three tables:
//
//   - adaptive: score per regime (uniform GB/s, latmix 1000/p99µs so
//     higher is better throughout, burst GB/s), series static vs
//     adaptive. The closed loop must stay within 10% of the per-regime
//     hand tuning — the "no retuning" claim, gated in CI. On the uniform
//     regime it wins outright: the load-aware detour spills the
//     saturating stream onto the second socket's device, which no fixed
//     policy knob reaches.
//   - adaptive-drift: regime shifts the telemetry drift detector flagged
//     on the adaptive run's tenant streams. The bursty regime's fast/slow
//     phase changes must be caught; the steady regimes see at most the
//     initial idle-to-saturated ramp.
//   - adaptive-streams: the bursty adaptive run's raw telemetry digests
//     (per-WQ, per-socket, per-tenant), the observability surface the
//     control loop steers by.
func Adaptive() []*report.Table {
	regimes := []struct {
		name   string
		static offload.Policy
		run    func(offload.Policy) adaptiveResult
	}{
		// Hand tuning per regime (each value is the best its knob sweep
		// found): the steady regimes sit at moderate coalescing depth,
		// the bursty phases at per-descriptor delivery, so slow-phase
		// completions are never held to the moderation timer.
		{"uniform", staticPol(16, 8*time.Microsecond), adaptiveUniform},
		{"latmix", staticPol(16, 8*time.Microsecond), adaptiveLatmix},
		{"burst", staticPol(1, 8*time.Microsecond), adaptiveBurst},
	}

	t1 := report.New("adaptive", "Closed loop vs hand-tuned static policy per traffic regime", "regime", "score (higher better)")
	t2 := report.New("adaptive-drift", "Regime shifts flagged by the telemetry drift detector (adaptive run)", "regime", "drifts")
	var burstRows []report.StreamRow
	for i, rg := range regimes {
		x := float64(i)
		st := rg.run(rg.static)
		ad := rg.run(adaptivePol())
		t1.SetNamed("static", rg.name, x, st.score)
		t1.SetNamed("adaptive", rg.name, x, ad.score)
		t2.SetNamed("drifts", rg.name, x, float64(ad.drifts))
		if rg.name == "burst" {
			burstRows = ad.rows
		}
	}
	t1.Note("static is retuned for every regime; adaptive is one unchanged policy steering by telemetry (occupancy/latency EWMAs, tenant completion rate)")
	t1.Note("uniform: the closed loop's load-aware detour finds the second socket a fixed data-home policy leaves idle")
	t1.Note("uniform and burst score GB/s; latmix scores 1000/p99µs of the latency-sensitive tenant")
	t2.Note("the bursty regime's fast/slow phase changes shift the tenant's completion rate by >2x sustained — the drift detector must flag them")
	t3 := report.TelemetryTable("adaptive-streams", "Telemetry digests after the bursty adaptive run", burstRows)
	t3.Note("occupancy streams are in per-mille of the WQ size; latency and inter-arrival streams in us")
	return []*report.Table{t1, t2, t3}
}

// adaptiveResult is one regime measurement.
type adaptiveResult struct {
	score  float64
	drifts int64
	rows   []report.StreamRow
}

// adaptivePol is the one closed-loop policy every regime runs unchanged.
func adaptivePol() offload.Policy {
	pol := offload.DefaultPolicy()
	pol.AdaptiveThreshold = true
	pol.LoadAware = true
	pol.Wait = offload.Interrupt
	pol.CoalesceCount = 16
	pol.CoalesceWindow = 8 * time.Microsecond
	pol.CoalesceAdaptive = true
	return pol
}

// staticPol is a hand-tuned fixed policy: Interrupt waits with the given
// coalescing depth, no telemetry feedback.
func staticPol(count int, window time.Duration) offload.Policy {
	pol := offload.DefaultPolicy()
	pol.Wait = offload.Interrupt
	pol.CoalesceCount = count
	pol.CoalesceWindow = window
	return pol
}

// adaptiveRig builds the SPR-Adaptive device layout: one DSA per socket,
// each with an express/bulk shared-WQ pair and part of the group read
// buffers reserved for the express lane, behind the placement-qos
// scheduler.
func adaptiveRig() (*sim.Engine, *offload.Service) {
	e := sim.New()
	sys := sprSystem(e)
	var wqs []*dsa.WQ
	for socket := 0; socket < 2; socket++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig(fmt.Sprintf("dsa%d", socket), socket))
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines:     4,
			ExpressBufs: 24,
			WQs: []dsa.WQConfig{
				{Mode: dsa.Shared, Size: 8, Priority: 15},
				{Mode: dsa.Shared, Size: 24, Priority: 5},
			},
		}); err != nil {
			panic(err)
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		wqs = append(wqs, dev.WQs()...)
	}
	svc, err := offload.NewService(e, sys, wqs,
		offload.WithScheduler(offload.NewPlacementQoS()), offload.WithCPUModel(cpu.SPRModel()))
	if err != nil {
		panic(err)
	}
	return e, svc
}

// streamRows flattens every telemetry digest into report rows at the
// engine's final instant (ns-valued streams rendered as µs).
func streamRows(e *sim.Engine, svc *offload.Service) []report.StreamRow {
	hub := svc.Telemetry()
	now := e.Now()
	rows := make([]report.StreamRow, 0, hub.Streams())
	for id := 0; id < hub.Streams(); id++ {
		d := hub.Digest(telemetry.ID(id))
		rows = append(rows, report.StreamRow{
			Name:       hub.Name(telemetry.ID(id)),
			Count:      d.Count(),
			RatePerSec: d.Rate(now),
			MeanUs:     d.Mean() / 1e3,
			P50Us:      float64(d.Quantile(now, 0.50)) / 1e3,
			P95Us:      float64(d.Quantile(now, 0.95)) / 1e3,
			P99Us:      float64(d.Quantile(now, 0.99)) / 1e3,
			Drifts:     d.Drifts(),
		})
	}
	return rows
}

// adaptiveUniform is the steady bulk regime: one tenant streaming 256KB
// hardware copies 64 deep. Score: GB/s.
func adaptiveUniform(pol offload.Policy) adaptiveResult {
	const (
		ops  = 256
		size = int64(256 << 10)
		qd   = 64
	)
	e, svc := adaptiveRig()
	tn, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		panic(err)
	}
	src, dst := tn.Alloc(size), tn.Alloc(size)
	var end sim.Time
	e.Go("bulk", func(p *sim.Proc) {
		var window []*offload.Future
		for i := 0; i < ops; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), size, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			window = append(window, f)
			if len(window) >= qd {
				if _, err := window[0].Wait(p, offload.Interrupt); err != nil {
					panic(err)
				}
				window = window[1:]
			}
		}
		for _, f := range window {
			if _, err := f.Wait(p, offload.Interrupt); err != nil {
				panic(err)
			}
		}
		end = p.Now()
	})
	e.Run()
	return adaptiveResult{score: sim.Rate(size*ops, end), drifts: tn.Stats().Drifts}
}

// adaptiveLatmix is the QoS mix regime: a paced latency-sensitive tenant
// next to a saturating bulk tenant. Score: 1000/p99µs of the foreground
// tenant (higher is better, so the CI ratio gate composes with the other
// regimes' throughput scores).
func adaptiveLatmix(pol offload.Policy) adaptiveResult {
	const (
		lsOps  = 150
		lsSize = int64(16 << 10)
		bkSize = int64(64 << 10)
		bulkQD = 32
	)
	e, svc := adaptiveRig()
	ls, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.LatencySensitive), offload.TenantPolicy(pol))
	if err != nil {
		panic(err)
	}
	bulk, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		panic(err)
	}
	lsSrc, lsDst := ls.Alloc(lsSize), ls.Alloc(lsSize)
	bkSrc, bkDst := bulk.Alloc(bkSize), bulk.Alloc(bkSize)

	var lats []sim.Time
	done := false
	e.Go("latency-sensitive", func(p *sim.Proc) {
		for i := 0; i < lsOps; i++ {
			f, err := ls.Copy(p, lsDst.Addr(0), lsSrc.Addr(0), lsSize, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			res, err := f.Wait(p, offload.Interrupt)
			if err != nil {
				panic(err)
			}
			lats = append(lats, res.Duration)
			p.Sleep(2 * time.Microsecond)
		}
		done = true
	})
	e.Go("bulk", func(p *sim.Proc) {
		var window []*offload.Future
		for !done {
			f, err := bulk.Copy(p, bkDst.Addr(0), bkSrc.Addr(0), bkSize, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			window = append(window, f)
			if len(window) >= bulkQD {
				if _, err := window[0].Wait(p, offload.Interrupt); err != nil {
					panic(err)
				}
				window = window[1:]
			}
		}
		for _, f := range window {
			if _, err := f.Wait(p, offload.Interrupt); err != nil {
				panic(err)
			}
		}
	})
	e.Run()
	p99us := float64(percentile(lats, 99)) / 1e3
	return adaptiveResult{score: 1000 / p99us, drifts: ls.Stats().Drifts}
}

// adaptiveBurst is the bursty skew regime: one tenant alternating
// saturating 16KB bursts with slow paced phases (20µs per op), four phase
// changes in all — each shifts the completion rate by well over the drift
// detector's 2x threshold. Score: GB/s over the whole phased run.
func adaptiveBurst(pol offload.Policy) adaptiveResult {
	const (
		size    = int64(16 << 10)
		fastOps = 96
		slowOps = 32
		qd      = 32
	)
	e, svc := adaptiveRig()
	tn, err := svc.NewTenant(offload.OnSocket(0),
		offload.WithClass(offload.Bulk), offload.TenantPolicy(pol))
	if err != nil {
		panic(err)
	}
	src, dst := tn.Alloc(size), tn.Alloc(size)
	var end sim.Time
	var total int64
	e.Go("burst", func(p *sim.Proc) {
		submit := func() *offload.Future {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), size, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			total += size
			return f
		}
		for phase := 0; phase < 4; phase++ {
			if phase%2 == 0 {
				var window []*offload.Future
				for i := 0; i < fastOps; i++ {
					window = append(window, submit())
					if len(window) >= qd {
						if _, err := window[0].Wait(p, offload.Interrupt); err != nil {
							panic(err)
						}
						window = window[1:]
					}
				}
				for _, f := range window {
					if _, err := f.Wait(p, offload.Interrupt); err != nil {
						panic(err)
					}
				}
			} else {
				for i := 0; i < slowOps; i++ {
					f := submit()
					if _, err := f.Wait(p, offload.Interrupt); err != nil {
						panic(err)
					}
					p.Sleep(20 * time.Microsecond)
				}
			}
		}
		end = p.Now()
	})
	e.Run()
	return adaptiveResult{
		score:  sim.Rate(total, end),
		drifts: tn.Stats().Drifts,
		rows:   streamRows(e, svc),
	}
}
