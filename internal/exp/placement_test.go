package exp

import "testing"

// The PR's acceptance experiment: data-home routing plus batch splitting
// must beat tenant-socket routing where data and tenant part ways, and
// must never lose where they coincide.
func TestPlacementBeatsNUMALocal(t *testing.T) {
	cfgs := placementConfigs()
	if cfgs[0].name != "numa-local" || cfgs[1].name != "placement-nosplit" ||
		cfgs[2].name != "placement" || cfgs[3].name != "placement-load" {
		t.Fatalf("unexpected config order: %q, %q, %q, %q",
			cfgs[0].name, cfgs[1].name, cfgs[2].name, cfgs[3].name)
	}
	measure := func(wlName string, cfg placementCfg) float64 {
		t.Helper()
		for _, wl := range placementWorkloads() {
			if wl.name == wlName {
				return placementThroughput(cfg, wl)
			}
		}
		t.Fatalf("no workload %q", wlName)
		return 0
	}

	// Cross-socket traffic: NUMALocal pays UPI on both legs of every copy
	// (Fig 6a halves throughput); Placement follows the data.
	baseX := measure("xsock", cfgs[0])
	placeX := measure("xsock", cfgs[2])
	if placeX < 1.5*baseX {
		t.Errorf("xsock: placement %.2f GB/s not ≥1.5x numa-local %.2f GB/s", placeX, baseX)
	}

	// CXL-mixed migration flushes: the split shards each batch across both
	// devices; routing alone (nosplit) cannot, so it must be the split
	// that buys the win.
	baseM := measure("cxl-mix", cfgs[0])
	nosplitM := measure("cxl-mix", cfgs[1])
	placeM := measure("cxl-mix", cfgs[2])
	if placeM < 1.5*baseM {
		t.Errorf("cxl-mix: placement %.2f GB/s not ≥1.5x numa-local %.2f GB/s", placeM, baseM)
	}
	if placeM < 1.3*nosplitM {
		t.Errorf("cxl-mix: split %.2f GB/s not ≥1.3x nosplit %.2f GB/s", placeM, nosplitM)
	}

	// Where tenant and data agree, data-home routing must cost nothing.
	for _, wl := range []string{"local", "demote", "promote"} {
		base := measure(wl, cfgs[0])
		place := measure(wl, cfgs[2])
		if place < 0.95*base {
			t.Errorf("%s: placement %.2f GB/s regressed vs numa-local %.2f GB/s", wl, place, base)
		}
	}
}

// The PR's acceptance experiment for load-aware placement: with socket 0
// saturated and socket 1 idle, the cost model's UPI detour must buy a
// material win over data-only placement — and must cost nothing where no
// backlog builds.
func TestLoadAwareBeatsDataOnlyUnderSkew(t *testing.T) {
	cfgs := placementConfigs()
	measure := func(wlName string, cfg placementCfg) float64 {
		t.Helper()
		for _, wl := range placementWorkloads() {
			if wl.name == wlName {
				return placementThroughput(cfg, wl)
			}
		}
		t.Fatalf("no workload %q", wlName)
		return 0
	}
	dataOnly := measure("skew", cfgs[2])
	loadAware := measure("skew", cfgs[3])
	if loadAware < 1.5*dataOnly {
		t.Errorf("skew: load-aware %.2f GB/s not ≥1.5x data-only %.2f GB/s", loadAware, dataOnly)
	}
	// Never-queued workloads must not regress: the detour engages only
	// under backlog, so load-aware ties data-only placement elsewhere.
	for _, wl := range []string{"local", "xsock", "cxl-mix", "demote", "promote"} {
		place := measure(wl, cfgs[2])
		load := measure(wl, cfgs[3])
		if load < 0.95*place {
			t.Errorf("%s: load-aware %.2f GB/s regressed vs data-only %.2f GB/s", wl, load, place)
		}
	}
}
