package exp

import (
	"fmt"
	"time"

	"dsasim/internal/dsa"
	"dsasim/internal/offload"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// ContentionSweep is the submitter counts the contention experiment
// measures. cmd/dsa-bench -submitters narrows it for quick local runs;
// the committed baseline and the CI scale gate use the full sweep.
var ContentionSweep = []int{1, 4, 16, 64}

// contention workload shape: a closed loop per submitter — think, submit
// one 1 KB copy, keep a small per-submitter window in flight. Small
// transfers with think time make the submission path itself the
// bottleneck candidate: device capacity (4 devices × 4 engines) stays
// well above even 64 submitters' demand, so any scaling loss is
// submission-plane serialization, which is exactly what the experiment
// isolates.
const (
	contOps      = 400                    // submissions per submitter
	contSize     = 1024                   // bytes per copy
	contThink    = 1500 * time.Nanosecond // per-op application work
	contQD       = 4                      // in-flight window per submitter
	contLockHold = 75 * time.Nanosecond   // monolithic plane's critical section
)

// Contention measures Submit/Wait scaling versus concurrent submitters
// over one table (id "contention", y in Mops/s):
//
//   - sharded: the per-shard submission plane — lane-local admission,
//     lock-free per-WQ rings, snapshot routing. Each submitter pays its
//     own portal write in parallel; the only serialization is the
//     ring's slot-publish CAS (Timing.RingPush per push).
//   - global-lock: the same workload through the classic shared-state
//     tenant path, with the shared mutable state (bucket, scheduler
//     pick, telemetry sync) modeled as a single 75 ns critical section
//     every submission crosses — the monolithic submission plane.
//   - ideal: the sharded single-submitter rate times the submitter
//     count; linear scaling with zero contention.
//
// The CI scale gate asserts sharded/ideal ≥ 0.7 at 64 submitters (an
// absolute floor, not just a baseline ratio) and sharded > global-lock.
func Contention() []*report.Table {
	t := report.New("contention", "Submission-plane scaling vs concurrent submitters",
		"submitters", "Mops/s")
	var base float64
	for _, n := range ContentionSweep {
		sharded := contentionRun(n, true)
		lock := contentionRun(n, false)
		if base == 0 {
			// The ideal anchor is the sharded single-submitter rate; a
			// narrowed sweep (-submitters) anchors on its smallest point.
			base = sharded / float64(ContentionSweep[0])
		}
		x := float64(n)
		t.Set("sharded", x, sharded)
		t.Set("global-lock", x, lock)
		t.Set("ideal", x, base*float64(n))
	}
	t.Note("closed loop per submitter: %v think, %dB copies, window %d; 4 shared-WQ devices (2/socket) keep device capacity above demand, isolating the submission plane", contThink, contSize, contQD)
	t.Note("global-lock models the monolithic plane's shared state as one %v critical section per submission; sharded serializes only on the %v ring-slot CAS", contLockHold, dsa.DefaultTiming().RingPush)
	t.Note("ideal is the sharded 1-submitter rate x N; CI gates sharded/ideal at 64 submitters with an absolute 0.7 floor")
	return []*report.Table{t}
}

// contentionEnv builds the experiment platform: 4 devices, two per
// socket, each with 4 engines behind one 128-entry shared WQ, under an
// offload service with admission off and the default scheduler.
func contentionEnv() (*env, *offload.Service, *offload.Tenant) {
	e := sim.New()
	sys := sprSystem(e)
	v := &env{e: e, sys: sys}
	var wqs []*dsa.WQ
	for i := 0; i < 4; i++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig(fmt.Sprintf("dsa%d", i), i%2))
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines: 4,
			WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 128}},
		}); err != nil {
			panic(err)
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		v.devs = append(v.devs, dev)
		wqs = append(wqs, dev.WQs()...)
	}
	svc, err := offload.NewService(e, sys, wqs)
	if err != nil {
		panic(err)
	}
	tn, err := svc.NewTenant()
	if err != nil {
		panic(err)
	}
	return v, svc, tn
}

// contentionRun drives n submitters to completion and returns the
// aggregate submission rate in Mops/s.
func contentionRun(n int, sharded bool) float64 {
	v, _, tn := contentionEnv()
	src := tn.Alloc(contSize)
	dst := tn.Alloc(contSize)

	var end sim.Time
	if sharded {
		pl, err := tn.NewPlane(n)
		if err != nil {
			panic(err)
		}
		d := dsa.Descriptor{Op: dsa.OpMemmove, Src: src.Addr(0), Dst: dst.Addr(0), Size: contSize}
		for i := 0; i < n; i++ {
			lane := pl.Lane(i)
			v.e.Go(fmt.Sprintf("shard%d", i), func(p *sim.Proc) {
				for j := 0; j < contOps; j++ {
					p.Sleep(sim.Time(contThink))
					if err := lane.Submit(p, d); err != nil {
						panic(err)
					}
					pl.WaitInflight(p, int64(n*contQD))
				}
				pl.WaitInflight(p, 0)
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
	} else {
		lock := sim.NewToken(1)
		for i := 0; i < n; i++ {
			v.e.Go(fmt.Sprintf("mono%d", i), func(p *sim.Proc) {
				window := make([]*offload.Future, 0, contQD)
				for j := 0; j < contOps; j++ {
					p.Sleep(sim.Time(contThink))
					// The monolithic plane's shared state: every
					// submission serializes through one critical section.
					at := lock.Acquire(p.Now(), sim.Time(contLockHold))
					p.SleepUntil(at + sim.Time(contLockHold))
					fut, err := tn.Copy(p, dst.Addr(0), src.Addr(0), contSize,
						offload.On(offload.Hardware), offload.NoBatch())
					if err != nil {
						panic(err)
					}
					window = append(window, fut)
					if len(window) >= contQD {
						if _, err := window[0].Wait(p, offload.Poll); err != nil {
							panic(err)
						}
						window = window[1:]
					}
				}
				for _, fut := range window {
					if _, err := fut.Wait(p, offload.Poll); err != nil {
						panic(err)
					}
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
	}
	v.e.Run()
	ops := float64(n * contOps)
	return ops / float64(end) * 1e3 // events/ns → Mops/s
}
