package exp

import (
	"math"
	"testing"
)

// TestAllExperimentsProduceSaneTables runs every experiment once and checks
// structural sanity: at least one table, every table non-empty, every value
// finite and non-negative.
func TestAllExperimentsProduceSaneTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is long; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run()
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Series()) == 0 || len(tab.Xs()) == 0 {
					t.Fatalf("table %s empty", tab.ID)
				}
				for _, s := range tab.Series() {
					for _, x := range tab.Xs() {
						v, ok := tab.Get(s, x)
						if !ok {
							continue
						}
						if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
							t.Fatalf("table %s series %s x=%v: bad value %v", tab.ID, s, x, v)
						}
					}
				}
				if tab.String() == "" || tab.CSV() == "" {
					t.Fatalf("table %s failed to render", tab.ID)
				}
			}
		})
	}
}

// TestByID covers the registry lookups.
func TestByID(t *testing.T) {
	if _, err := ByID("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	seen := make(map[string]bool)
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestTable1AllVerified asserts every Table 1 operation verifies.
func TestTable1AllVerified(t *testing.T) {
	for _, r := range verifyOps() {
		if !r.ok {
			t.Errorf("operation %s failed functional verification", r.name)
		}
	}
}
