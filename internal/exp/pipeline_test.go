package exp

import "testing"

// TestPipelineFusionSpeedup is the tentpole acceptance check: fusing a
// 3-stage chain into one fenced batch submission must beat stage-at-a-time
// hardware submission by ≥1.5x — the property the CI gate pins with an
// absolute floor — and the win must grow with chain depth (more per-stage
// software windows amortized into the single fused one).
func TestPipelineFusionSpeedup(t *testing.T) {
	tables := Pipeline()
	if len(tables) != 2 || tables[0].ID != "pipeline" || tables[1].ID != "pipeline-size" {
		t.Fatalf("tables = %v, want [pipeline pipeline-size]", tables)
	}
	depth := tables[0]
	for _, x := range depth.Xs() {
		for _, s := range []string{"fused", "sequential"} {
			if v, ok := depth.Get(s, x); !ok || v <= 0 {
				t.Fatalf("missing or non-positive point (%s, %v)", s, x)
			}
		}
	}

	ratioAt := func(x float64) float64 {
		f, _ := depth.Get("fused", x)
		s, _ := depth.Get("sequential", x)
		return f / s
	}
	if r := ratioAt(3); r < 1.5 {
		t.Errorf("fused/sequential at 3 stages = %.3fx, want >= 1.5x", r)
	}
	// Deeper chains amortize more per-stage windows: the win is monotone.
	prev := 0.0
	for _, x := range depth.Xs() {
		r := ratioAt(x)
		t.Logf("depth %v: fused/sequential = %.3fx", x, r)
		if r < prev {
			t.Errorf("fusion win fell from %.3fx to %.3fx at depth %v", prev, r, x)
		}
		prev = r
	}

	// The storage chain: fused DIF-strip→write must hold the 4K floor the
	// second CI gate pins, and every size must still win.
	size := tables[1]
	for _, x := range size.Xs() {
		f, okf := size.Get("fused", x)
		s, oks := size.Get("sequential", x)
		if !okf || !oks || s <= 0 {
			t.Fatalf("missing pipeline-size point at %v", x)
		}
		t.Logf("size %v: fused/sequential = %.3fx", x, f/s)
		if f <= s {
			t.Errorf("fused DIF-strip→write (%.2f GB/s) does not beat sequential (%.2f GB/s) at %v", f, s, x)
		}
	}
	f4, _ := size.Get("fused", 4096)
	s4, _ := size.Get("sequential", 4096)
	if r := f4 / s4; r < 1.2 {
		t.Errorf("fused/sequential DIF chain at 4K = %.3fx, want >= 1.2x", r)
	}
}
