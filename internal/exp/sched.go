package exp

import (
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// Sched compares the offload service's WQ-selection policies on a
// two-socket SPR system with one DSA instance per socket: a socket-0
// tenant streams synchronous copies between socket-local buffers.
// Round-robin sends every other descriptor across UPI and pays the
// remote-socket latency on each leg (Fig 6a); NUMA-local keeps the tenant
// on its own socket's device; least-loaded sits between (at queue depth 1
// occupancy never differentiates the queues, so its tie-break alternates
// like round-robin — it pulls ahead only under backlog, see the offload
// package tests); placement routes on the data's home, which for
// socket-local buffers coincides with NUMA-local (its advantage appears
// when data and tenant part ways — see the placement experiment), and
// placement-load (Policy.LoadAware) must coincide with placement here:
// sequential traffic never queues, so the cost model never detours.
func Sched() []*report.Table {
	t := report.New("sched", "Offload scheduler comparison: 2 sockets, 1 DSA each, socket-local tenant", "xfer", "GB/s")
	sizes := []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	scheds := []struct {
		name      string
		mk        func() offload.Scheduler
		loadAware bool
	}{
		{"round-robin", func() offload.Scheduler { return offload.NewRoundRobin() }, false},
		{"numa-local", func() offload.Scheduler { return offload.NewNUMALocal() }, false},
		{"least-loaded", func() offload.Scheduler { return offload.NewLeastLoaded() }, false},
		{"placement", func() offload.Scheduler { return offload.NewPlacement() }, false},
		{"placement-load", func() offload.Scheduler { return offload.NewPlacement() }, true},
	}
	for _, sc := range scheds {
		for _, size := range sizes {
			pol := offload.DefaultPolicy()
			pol.LoadAware = sc.loadAware
			gbps := schedThroughput(sc.mk(), pol, size, 60)
			t.Set(sc.name, float64(size), gbps)
		}
	}
	t.Note("NUMA-local ≥ round-robin at every size: blind balancing pays the UPI hop on half the submissions (guideline: schedule for locality first)")
	t.Note("placement-load ties placement on never-queued traffic: the load-aware detour engages only under backlog (see the skew experiment)")
	return []*report.Table{t}
}

// schedThroughput measures GB/s of a socket-0 tenant running count
// synchronous copies under the given scheduler and policy.
func schedThroughput(sched offload.Scheduler, pol offload.Policy, size int64, count int) float64 {
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	var wqs []*dsa.WQ
	for s := 0; s < 2; s++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", s))
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines: 4,
			WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
		}); err != nil {
			panic(err)
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		wqs = append(wqs, dev.WQs()...)
	}
	svc, err := offload.NewService(e, sys, wqs,
		offload.WithScheduler(sched), offload.WithPolicy(pol), offload.WithCPUModel(cpu.SPRModel()))
	if err != nil {
		panic(err)
	}
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		panic(err)
	}
	src := tn.Alloc(size)
	dst := tn.Alloc(size)
	var end sim.Time
	e.Go(tn.Core.Owner(), func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), size, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				panic(err)
			}
		}
		end = p.Now()
	})
	e.Run()
	return sim.Rate(size*int64(count), end)
}
