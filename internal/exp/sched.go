package exp

import (
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/offload"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// Sched compares the offload service's WQ-selection policies on a
// two-socket SPR system with one DSA instance per socket: a socket-0
// tenant streams synchronous copies between socket-local buffers.
// Round-robin sends every other descriptor across UPI and pays the
// remote-socket latency on each leg (Fig 6a); NUMA-local keeps the tenant
// on its own socket's device; least-loaded sits between (at queue depth 1
// occupancy never differentiates the queues, so its tie-break alternates
// like round-robin — it pulls ahead only under backlog, see the offload
// package tests); placement routes on the data's home, which for
// socket-local buffers coincides with NUMA-local (its advantage appears
// when data and tenant part ways — see the placement experiment).
func Sched() []*report.Table {
	t := report.New("sched", "Offload scheduler comparison: 2 sockets, 1 DSA each, socket-local tenant", "xfer", "GB/s")
	sizes := []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	scheds := []func() offload.Scheduler{
		func() offload.Scheduler { return offload.NewRoundRobin() },
		func() offload.Scheduler { return offload.NewNUMALocal() },
		func() offload.Scheduler { return offload.NewLeastLoaded() },
		func() offload.Scheduler { return offload.NewPlacement() },
	}
	for _, mk := range scheds {
		for _, size := range sizes {
			sched := mk()
			gbps := schedThroughput(sched, size, 60)
			t.Set(sched.Name(), float64(size), gbps)
		}
	}
	t.Note("NUMA-local ≥ round-robin at every size: blind balancing pays the UPI hop on half the submissions (guideline: schedule for locality first)")
	return []*report.Table{t}
}

// schedThroughput measures GB/s of a socket-0 tenant running count
// synchronous copies under the given scheduler.
func schedThroughput(sched offload.Scheduler, size int64, count int) float64 {
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
		},
	})
	var wqs []*dsa.WQ
	for s := 0; s < 2; s++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig("dsa", s))
		if _, err := dev.AddGroup(dsa.GroupConfig{
			Engines: 4,
			WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
		}); err != nil {
			panic(err)
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		wqs = append(wqs, dev.WQs()...)
	}
	svc, err := offload.NewService(e, sys, wqs,
		offload.WithScheduler(sched), offload.WithCPUModel(cpu.SPRModel()))
	if err != nil {
		panic(err)
	}
	tn, err := svc.NewTenant(offload.OnSocket(0))
	if err != nil {
		panic(err)
	}
	src := tn.Alloc(size)
	dst := tn.Alloc(size)
	var end sim.Time
	e.Go(tn.Core.Owner(), func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			f, err := tn.Copy(p, dst.Addr(0), src.Addr(0), size, offload.On(offload.Hardware))
			if err != nil {
				panic(err)
			}
			if _, err := f.Wait(p, offload.Poll); err != nil {
				panic(err)
			}
		}
		end = p.Now()
	})
	e.Run()
	return sim.Rate(size*int64(count), end)
}
