package exp

import "testing"

// TestContentionScaling is the tentpole acceptance check: the sharded
// submission plane must hold ≥ 0.7 of ideal (linear) scaling at the
// largest submitter count and beat the global-lock monolithic plane
// there — the property the CI scale gate pins with an absolute floor.
func TestContentionScaling(t *testing.T) {
	old := ContentionSweep
	ContentionSweep = []int{1, 64}
	defer func() { ContentionSweep = old }()

	tables := Contention()
	if len(tables) != 1 || tables[0].ID != "contention" {
		t.Fatalf("tables = %v, want one table 'contention'", tables)
	}
	tbl := tables[0]
	for _, x := range tbl.Xs() {
		for _, s := range []string{"sharded", "global-lock", "ideal"} {
			if v, ok := tbl.Get(s, x); !ok || v <= 0 {
				t.Fatalf("missing or non-positive point (%s, %v)", s, x)
			}
		}
	}

	xs := tbl.Xs()
	max := xs[len(xs)-1]
	if max != 64 {
		t.Fatalf("largest sweep point = %v, want 64", max)
	}
	sharded, _ := tbl.Get("sharded", max)
	ideal, _ := tbl.Get("ideal", max)
	lock, _ := tbl.Get("global-lock", max)
	if eff := sharded / ideal; eff < 0.7 {
		t.Errorf("sharded efficiency at %v submitters = %.3f, want >= 0.7 (sharded %.2f, ideal %.2f Mops/s)",
			max, eff, sharded, ideal)
	}
	if sharded <= lock {
		t.Errorf("sharded plane (%.2f Mops/s) does not beat global-lock (%.2f Mops/s) at %v submitters",
			sharded, lock, max)
	}

	// Scaling must be monotone: more submitters never lose throughput
	// under the sharded plane within the sweep.
	prev := 0.0
	for _, x := range xs {
		v, _ := tbl.Get("sharded", x)
		if v < prev {
			t.Errorf("sharded throughput fell from %.2f to %.2f Mops/s at %v submitters", prev, v, x)
		}
		prev = v
	}
}
