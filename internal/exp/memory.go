package exp

import (
	"fmt"

	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// placement runs the Fig 6/15 pattern: sync copies between two placements,
// reporting CPU and DSA throughput and latency per transfer size.
func placement(id, title string, combos []struct {
	name             string
	srcNode, dstNode int
	srcLLC, dstLLC   bool
	flags            dsa.Flags
}) []*report.Table {
	tp := report.New(id+"_tp", title+" (throughput)", "xfer", "GB/s")
	lat := report.New(id+"_lat", title+" (latency)", "xfer", "µs")
	for _, c := range combos {
		for _, size := range stdSizes {
			v := newEnv(1)
			res := v.runCopy(copyCfg{
				size: size, count: 30, qd: 1, flags: c.flags,
				srcNode: v.node(c.srcNode), dstNode: v.node(c.dstNode),
				srcLLC: c.srcLLC, dstLLC: c.dstLLC,
			})
			tp.Set("DSA:"+c.name, float64(size), res.gbps)
			lat.Set("DSA:"+c.name, float64(size), float64(res.avgLat)/1e3)

			vc := newEnv(0)
			d := vc.swTime(dsa.OpMemmove, size, vc.node(c.srcNode), vc.node(c.dstNode), c.srcLLC, c.dstLLC)
			tp.Set("CPU:"+c.name, float64(size), sim.Rate(size, d))
			lat.Set("CPU:"+c.name, float64(size), float64(d)/1e3)
		}
	}
	return []*report.Table{tp, lat}
}

// Fig6a reproduces local/remote socket placement (synchronous, batch 1).
func Fig6a() []*report.Table {
	ts := placement("fig6a", "Copy between local (L) and remote (R) sockets", []struct {
		name             string
		srcNode, dstNode int
		srcLLC, dstLLC   bool
		flags            dsa.Flags
	}{
		{"L,L", 0, 0, false, false, 0},
		{"L,R", 0, 1, false, false, 0},
		{"R,L", 1, 0, false, false, 0},
		{"R,R", 1, 1, false, false, 0},
	})
	ts[0].Note("DSA pipelining hides UPI latency: remote throughput ≈ local (paper Fig 6a)")
	ts[1].Note("latency break-even with the CPU falls between 4–10KB")
	return ts
}

// Fig6b reproduces DRAM/CXL placement.
func Fig6b() []*report.Table {
	ts := placement("fig6b", "Copy between DRAM (D) and CXL (C)", []struct {
		name             string
		srcNode, dstNode int
		srcLLC, dstLLC   bool
		flags            dsa.Flags
	}{
		{"D,D", 0, 0, false, false, 0},
		{"D,C", 0, 2, false, false, 0},
		{"C,D", 2, 0, false, false, 0},
		{"C,C", 2, 2, false, false, 0},
	})
	ts[0].Note("CXL writes are slower than reads, so D,C trails C,D (paper Fig 6b, guideline G4)")
	return ts
}

// Fig15 reproduces LLC-resident vs DRAM source/destination placement.
func Fig15() []*report.Table {
	ts := placement("fig15", "Copy between LLC (L) and local DRAM (D)", []struct {
		name             string
		srcNode, dstNode int
		srcLLC, dstLLC   bool
		flags            dsa.Flags
	}{
		{"L,L", 0, 0, true, true, dsa.FlagCacheControl},
		{"L,D", 0, 0, true, false, 0},
		{"D,L", 0, 0, false, true, dsa.FlagCacheControl},
		{"D,D", 0, 0, false, false, 0},
	})
	ts[0].Note("cache-resident operands favor the CPU below ~4KB; DSA wins beyond (guideline G3)")
	return ts
}

// Fig8 reproduces the huge-page sweep.
func Fig8() []*report.Table {
	t := report.New("fig8", "Async copy throughput vs page size", "xfer", "GB/s")
	pages := []struct {
		name string
		size int64
	}{{"4KB", mem.Page4K}, {"2MB", mem.Page2M}, {"1GB", mem.Page1G}}
	for _, pg := range pages {
		for _, size := range stdSizes {
			v := newEnv(1)
			res := v.runCopy(copyCfg{size: size, count: 120, qd: 32, pageSize: pg.size})
			t.Set(pg.name, float64(size), res.gbps)
		}
	}
	t.Note("page size has almost no effect: translations pipeline with data movement (paper Fig 8)")
	return []*report.Table{t}
}

// Fig10 reproduces multi-instance scaling with the leaky-DMA knee.
func Fig10() []*report.Table {
	t := report.New("fig10", "Aggregate throughput with multiple DSA instances", "xfer", "GB/s")
	sizes := append(append([]int64{}, stdSizes...), 4<<20)
	for _, ndev := range []int{1, 2, 3, 4} {
		for _, size := range sizes {
			for _, async := range []bool{false, true} {
				qd := 1
				label := "S"
				if async {
					qd, label = 32, "A"
				}
				v := newEnv(ndev)
				var wqs []*dsa.WQ
				for _, dev := range v.devs {
					wqs = append(wqs, dev.WQs()...)
				}
				count := 60
				if async {
					count = 120
				}
				// One thread per device; destination spans size×qd so the
				// write footprint grows with transfer size (leaky DMA).
				res := v.runCopy(copyCfg{
					size: size, count: count * ndev, qd: qd,
					threads: ndev, wqs: wqs,
					flags: dsa.FlagCacheControl,
					span:  size * int64(qd),
				})
				t.Set(fmt.Sprintf("%s:%d", label, ndev), float64(size), res.gbps)
			}
		}
	}
	t.Note("async scales linearly to ~120 GB/s below 64KB; beyond, write footprints overflow the DDIO ways and DRAM write bandwidth caps aggregate throughput (paper Fig 10)")
	return []*report.Table{t}
}

// CBDMAComparison reproduces the §4.2 DSA-vs-CBDMA average.
func CBDMAComparison() []*report.Table {
	t := report.New("cbdma", "DSA (SPR) vs CBDMA (ICX) copy throughput", "xfer", "GB/s")
	var ratioSum float64
	var points int
	for _, size := range stdSizes {
		v := newEnv(1)
		dsaRes := v.runCopy(copyCfg{size: size, count: 120, qd: 32})
		t.Set("DSA", float64(size), dsaRes.gbps)

		e := sim.New()
		sys := sprSystem(e)
		cfg := dsa.DefaultConfig("cbdma0", 0)
		cfg.Timing = dsa.CBDMATiming()
		cfg.Engines = 1
		dev := dsa.New(e, sys, cfg)
		if _, err := dev.AddGroup(dsa.GroupConfig{Engines: 1, WQs: []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}}}); err != nil {
			panic(err)
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		as := mem.NewAddressSpace(1)
		dev.BindPASID(as)
		vb := &env{e: e, sys: sys, as: as}
		vb.devs = []*dsa.Device{dev}
		cbRes := vb.runCopy(copyCfg{size: size, count: 120, qd: 32})
		t.Set("CBDMA", float64(size), cbRes.gbps)
		if cbRes.gbps > 0 {
			ratioSum += dsaRes.gbps / cbRes.gbps
			points++
		}
	}
	t.Note("average DSA/CBDMA ratio = %.2f (paper: 2.1x)", ratioSum/float64(points))
	return []*report.Table{t}
}

// Table1 exercises every Table 1 operation through the device and reports
// functional verification.
func Table1() []*report.Table {
	t := report.New("table1", "Supported operations, verified end to end", "op", "1 = verified")
	results := verifyOps()
	for i, r := range results {
		status := 0.0
		if r.ok {
			status = 1.0
		}
		t.SetNamed("verified", r.name, float64(i), status)
	}
	t.Note("each operation ran on the device model and its functional result was checked against the software kernel")
	return []*report.Table{t}
}
