// Package exp regenerates every table and figure of the paper's evaluation
// (§4, §6, appendices) on the simulated platform. Each experiment is a
// self-contained function returning report tables with the same axes and
// series as the paper's artifact; cmd/dsa-bench renders them and
// EXPERIMENTS.md records paper-vs-measured shapes.
package exp

import (
	"fmt"
	"time"

	"dsasim/internal/cpu"
	"dsasim/internal/dif"
	"dsasim/internal/dsa"
	"dsasim/internal/mem"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func() []*report.Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: supported operations (functional verification)", Table1},
		{"cbdma", "§4.2: DSA vs CBDMA copy throughput", CBDMAComparison},
		{"fig2a", "Fig 2a: sync speedup over software vs transfer size", Fig2a},
		{"fig2b", "Fig 2b: async speedup over software vs transfer size", Fig2b},
		{"fig3", "Fig 3: copy throughput vs transfer size and batch size", Fig3},
		{"fig4", "Fig 4: async copy throughput vs WQ size", Fig4},
		{"fig5", "Fig 5: 4KB offload latency breakdown vs batch size", Fig5},
		{"fig6a", "Fig 6a: local/remote socket placement", Fig6a},
		{"fig6b", "Fig 6b: DRAM/CXL placement", Fig6b},
		{"fig7", "Fig 7: throughput vs engines per group", Fig7},
		{"fig8", "Fig 8: huge pages", Fig8},
		{"fig9", "Fig 9: WQ configuration (batch vs DWQs vs SWQ)", Fig9},
		{"fig10", "Fig 10: multiple DSA instances", Fig10},
		{"fig11", "Fig 11: cycles spent in UMWAIT", Fig11},
		{"fig12", "Fig 12: LLC occupancy over time", Fig12},
		{"fig13", "Fig 13: X-Mem latency under co-running copies", Fig13},
		{"fig14", "Fig 14: balancing transfer size and batch size", Fig14},
		{"fig15", "Fig 15: LLC vs DRAM source/destination", Fig15},
		{"fig16", "Fig 16b: DPDK Vhost packet forwarding", Fig16},
		{"fig17a", "Fig 17a: libfabric pingpong / RMA", Fig17a},
		{"fig17b", "Fig 17b: OSU bandwidth / AllReduce", Fig17b},
		{"fig18", "Fig 18: BERT phase timings", Fig18},
		{"fig19", "Fig 19: CacheLib rates and tail latency", Fig19},
		{"fig21", "Fig 21: SPDK NVMe/TCP target IOPS", Fig21},
		{"sched", "Offload scheduler comparison (round-robin vs NUMA-local vs least-loaded vs placement)", Sched},
		{"qos", "QoS scheduling: latency-sensitive p99 under bulk interference (§3.4 F3)", QoS},
		{"placement", "Data-home placement: CXL/NUMA-aware routing and batch splitting (G4)", Placement},
		{"skew", "Skewed load: data-only vs load-aware placement vs in-flight window", Skew},
		{"coalesce", "Completion path: QoS-aware interrupt coalescing (§4.4)", Coalesce},
		{"adaptive", "Streaming telemetry: one closed-loop policy vs per-regime hand tuning", Adaptive},
		{"contention", "Sharded submission plane: Submit/Wait scaling vs submitters", Contention},
		{"pipeline", "Operation pipelines: fused multi-op DAGs vs per-stage submission (§4/§6)", Pipeline},
		{"fleet", "Fleet-scale service scenarios: SLO-attained throughput under phased open-loop load", Fleet},
		{"chaos", "Chaos: SLO-attained throughput and recovery time under injected faults", Chaos},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// env is a fresh SPR platform for one measurement point.
type env struct {
	e    *sim.Engine
	sys  *mem.System
	as   *mem.AddressSpace
	core *cpu.Core
	devs []*dsa.Device
}

// sprSystem builds the Table 2 SPR memory system.
func sprSystem(e *sim.Engine) *mem.System {
	return mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 0, Kind: mem.CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
		},
	})
}

// newEnv builds a fresh environment with ndev devices, each configured with
// the given groups (default: one group, 4 engines, one 32-entry DWQ).
func newEnv(ndev int, groups ...dsa.GroupConfig) *env {
	e := sim.New()
	sys := sprSystem(e)
	as := mem.NewAddressSpace(1)
	core := cpu.NewCore(0, 0, sys, as, cpu.SPRModel())
	v := &env{e: e, sys: sys, as: as, core: core}
	if len(groups) == 0 {
		groups = []dsa.GroupConfig{{
			Engines: 4,
			WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
		}}
	}
	for i := 0; i < ndev; i++ {
		dev := dsa.New(e, sys, dsa.DefaultConfig(fmt.Sprintf("dsa%d", i), 0))
		for _, g := range groups {
			if _, err := dev.AddGroup(g); err != nil {
				panic(err)
			}
		}
		if err := dev.Enable(); err != nil {
			panic(err)
		}
		dev.BindPASID(as)
		v.devs = append(v.devs, dev)
	}
	return v
}

// node returns platform node i (0 local DRAM, 1 remote DRAM, 2 CXL).
func (v *env) node(i int) *mem.Node { return v.sys.Node(i) }

// buf allocates a buffer with placement options.
func (v *env) buf(size int64, node *mem.Node, llc bool, pageSize int64) *mem.Buffer {
	opts := []mem.AllocOption{mem.OnNode(node)}
	if pageSize != 0 {
		opts = append(opts, mem.WithPageSize(pageSize))
	}
	b := v.as.Alloc(size, opts...)
	b.CacheResident = llc
	return b
}

// copyCfg parameterizes the generic copy-throughput runner used by most
// microbenchmark figures.
type copyCfg struct {
	op    dsa.OpType
	size  int64 // transfer size per work descriptor
	batch int   // work descriptors per batch descriptor (1 = no batching)
	count int   // number of submissions (each carries batch descriptors)
	qd    int   // client-side submissions in flight (1 = synchronous)
	flags dsa.Flags

	srcNode, dstNode *mem.Node
	srcLLC, dstLLC   bool
	pageSize         int64

	// span overrides the working-buffer size (default size×batch);
	// submissions rotate through it, growing the write footprint for the
	// leaky-DMA experiment (Fig 10).
	span int64

	wqs     []*dsa.WQ // submission targets (round-robin per thread)
	threads int       // concurrent submitting threads (default 1)
}

// descFor builds one work descriptor of cfg.op over the given offsets.
func descFor(cfg copyCfg, src, src2, dst, dst2 *mem.Buffer, off int64) dsa.Descriptor {
	d := dsa.Descriptor{Op: cfg.op, Flags: cfg.flags, Size: cfg.size}
	switch cfg.op {
	case dsa.OpFill:
		d.Dst = dst.Addr(off)
		d.Pattern = 0xA5A5A5A5A5A5A5A5
	case dsa.OpCompare:
		d.Src = src.Addr(off)
		d.Src2 = src2.Addr(off)
	case dsa.OpComparePattern:
		d.Src = src.Addr(off)
	case dsa.OpCRCGen:
		d.Src = src.Addr(off)
	case dsa.OpDualcast:
		d.Src = src.Addr(off)
		d.Dst = dst.Addr(off)
		d.Dst2 = dst2.Addr(off)
	case dsa.OpDIFInsert:
		d.Src = src.Addr(off)
		d.Dst = dst.Addr(off / 512 * 520)
		d.DIFBlock = dif.Block512
	default: // Memmove, CopyCRC
		d.Src = src.Addr(off)
		d.Dst = dst.Addr(off)
	}
	return d
}

// copyResult is the runner's measurement.
type copyResult struct {
	gbps   float64
	avgLat time.Duration // per-submission completion latency
}

// runCopy drives the configured workload to completion and measures it.
func (v *env) runCopy(cfg copyCfg) copyResult {
	if cfg.op == 0 {
		cfg.op = dsa.OpMemmove
	}
	if cfg.threads == 0 {
		cfg.threads = 1
	}
	if cfg.qd == 0 {
		cfg.qd = 1
	}
	if cfg.batch == 0 {
		cfg.batch = 1
	}
	if cfg.srcNode == nil {
		cfg.srcNode = v.node(0)
	}
	if cfg.dstNode == nil {
		cfg.dstNode = v.node(0)
	}
	if len(cfg.wqs) == 0 {
		cfg.wqs = v.devs[0].WQs()
	}

	perThread := cfg.count / cfg.threads
	if perThread == 0 {
		perThread = 1
	}
	var start, end sim.Time
	var totalLat sim.Time
	var completions int64
	started := false

	for th := 0; th < cfg.threads; th++ {
		wq := cfg.wqs[th%len(cfg.wqs)]
		cl := dsa.NewClient(wq, nil)
		unit := cfg.size * int64(cfg.batch)
		span := unit
		if cfg.span > span {
			span = cfg.span / unit * unit
		}
		rot := span / unit
		// DIF expansion factor covers the largest destination an op needs.
		src := v.buf(span, cfg.srcNode, cfg.srcLLC, cfg.pageSize)
		src2 := v.buf(span, cfg.srcNode, cfg.srcLLC, cfg.pageSize)
		dst := v.buf(span/512*520+520, cfg.dstNode, cfg.dstLLC, cfg.pageSize)
		dst2 := v.buf(span, cfg.dstNode, cfg.dstLLC, cfg.pageSize)
		v.e.Go(fmt.Sprintf("load%d", th), func(p *sim.Proc) {
			if !started {
				start = p.Now()
				started = true
			}
			mk := func(iter int) dsa.Descriptor {
				base := (int64(iter) % rot) * unit
				if cfg.batch == 1 {
					d := descFor(cfg, src, src2, dst, dst2, base)
					d.PASID = v.as.PASID
					return d
				}
				subs := make([]dsa.Descriptor, cfg.batch)
				for i := range subs {
					subs[i] = descFor(cfg, src, src2, dst, dst2, base+int64(i)*cfg.size)
				}
				return dsa.Descriptor{Op: dsa.OpBatch, PASID: v.as.PASID, Descs: subs}
			}
			var window []*dsa.Completion
			for i := 0; i < perThread; i++ {
				cl.Prepare(p)
				comp, err := cl.Submit(p, mk(i))
				if err != nil {
					panic(err)
				}
				window = append(window, comp)
				if len(window) >= cfg.qd {
					w := window[0]
					window = window[1:]
					w.Wait(p)
					totalLat += w.Latency()
					completions++
				}
			}
			for _, w := range window {
				w.Wait(p)
				totalLat += w.Latency()
				completions++
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	v.e.Run()
	bytes := cfg.size * int64(cfg.batch) * int64(perThread) * int64(cfg.threads)
	res := copyResult{gbps: sim.Rate(bytes, end-start)}
	if completions > 0 {
		res.avgLat = time.Duration(int64(totalLat) / completions)
	}
	return res
}

// swTime measures the software counterpart of a DSA op at the given size on
// this environment's core. Buffers are placed on srcNode/dstNode with the
// given LLC residency.
func (v *env) swTime(op dsa.OpType, size int64, srcNode, dstNode *mem.Node, srcLLC, dstLLC bool) time.Duration {
	if srcNode == nil {
		srcNode = v.node(0)
	}
	if dstNode == nil {
		dstNode = v.node(0)
	}
	// Generous sizing covers DIF expansion.
	src := v.buf(size*2+64, srcNode, srcLLC, 0)
	dst := v.buf(size*2+64, dstNode, dstLLC, 0)
	src2 := v.buf(size*2+64, srcNode, srcLLC, 0)

	var d time.Duration
	var err error
	switch op {
	case dsa.OpMemmove:
		d, err = v.core.Memcpy(dst.Addr(0), src.Addr(0), size)
	case dsa.OpFill:
		d, err = v.core.Memset(dst.Addr(0), size, 0xA5A5A5A5A5A5A5A5)
	case dsa.OpCompare:
		_, _, d, err = v.core.Memcmp(src.Addr(0), src2.Addr(0), size)
	case dsa.OpComparePattern:
		_, _, d, err = v.core.ComparePattern(src.Addr(0), size, 0)
	case dsa.OpCRCGen:
		_, d, err = v.core.CRC32(src.Addr(0), size, 0)
	case dsa.OpCopyCRC:
		_, d, err = v.core.CopyCRC(dst.Addr(0), src.Addr(0), size, 0)
	case dsa.OpDualcast:
		d, err = v.core.Dualcast(dst.Addr(0), src2.Addr(0), src.Addr(0), size)
	case dsa.OpDIFInsert:
		blocks := size / 512
		if blocks == 0 {
			blocks = 1
		}
		d, err = v.core.DIFInsert(dst.Addr(0), src.Addr(0), blocks*512, dif.Block512, dif.Tags{})
	default:
		panic(fmt.Sprintf("exp: no software counterpart for %v", op))
	}
	if err != nil {
		panic(err)
	}
	return d
}
