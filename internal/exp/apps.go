package exp

import (
	"fmt"
	"time"

	"dsasim/internal/cachesim"
	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/fabric"
	"dsasim/internal/report"
	"dsasim/internal/sim"
	"dsasim/internal/spdknvme"
	"dsasim/internal/vhost"
	"dsasim/internal/xmem"
)

// pollutionScenario identifies the Fig 12/13 co-running configurations.
type pollutionScenario int

const (
	scenNone pollutionScenario = iota
	scenSoftware
	scenDSA
)

func (s pollutionScenario) String() string {
	switch s {
	case scenSoftware:
		return "Software"
	case scenDSA:
		return "DSA"
	default:
		return "None"
	}
}

// runPollution runs 8 X-Mem probes of the given working set against the
// scenario's background copies and returns (avg latency, occupancy samples).
// The timeline is compressed relative to the paper's 60 s run: copiers run
// [0, 30ms], probes measure [5ms, 25ms], sampled every 1 ms.
func runPollution(scen pollutionScenario, ws int64) (time.Duration, *report.Table) {
	v := newEnv(1)
	llc := v.sys.SocketOf(0).LLC

	// The co-runners copy 4 KB buffers, as in the paper's setup (Fig 13
	// caption: transfer size 4 KB).
	const (
		copyStop  = 30 * time.Millisecond
		probeFrom = 5 * time.Millisecond
		probeTo   = 25 * time.Millisecond
		copySize  = 4 << 10
	)

	// Background copiers: four cores (software) or four DSA clients.
	if scen != scenNone {
		for c := 0; c < 4; c++ {
			c := c
			switch scen {
			case scenSoftware:
				core := cpu.NewCore(10+c, 0, v.sys, v.as, cpu.SPRModel())
				src := v.buf(copySize, v.node(0), false, 0)
				dst := v.buf(copySize, v.node(0), false, 0)
				v.e.Go(fmt.Sprintf("memcpy%d", c), func(p *sim.Proc) {
					for p.Now() < copyStop {
						d, err := core.Memcpy(dst.Addr(0), src.Addr(0), copySize)
						if err != nil {
							panic(err)
						}
						p.Sleep(d)
					}
				})
			case scenDSA:
				cl := dsa.NewClient(v.devs[0].WQs()[0], nil)
				src := v.buf(copySize, v.node(0), false, 0)
				dst := v.buf(copySize, v.node(0), false, 0)
				v.e.Go(fmt.Sprintf("dsacopy%d", c), func(p *sim.Proc) {
					for p.Now() < copyStop {
						comp, err := cl.Submit(p, dsa.Descriptor{
							Op: dsa.OpMemmove, Flags: dsa.FlagCacheControl, PASID: v.as.PASID,
							Src: src.Addr(0), Dst: dst.Addr(0), Size: copySize,
						})
						if err != nil {
							panic(err)
						}
						comp.Wait(p)
					}
				})
			}
		}
	}

	// Probes.
	probes := make([]*xmem.Probe, 8)
	for i := range probes {
		i := i
		v.e.Go(fmt.Sprintf("xmem%d", i), func(p *sim.Proc) {
			p.SleepUntil(probeFrom)
			probes[i] = xmem.NewProbe(llc, fmt.Sprintf("xmem%d", i), ws)
			for p.Now() < probeTo {
				probes[i].Step()
				p.Sleep(200 * time.Microsecond)
			}
		})
	}

	// Occupancy sampler.
	occ := report.New("fig12_"+scen.String(), "LLC occupancy over time ("+scen.String()+")", "ms", "MB")
	v.e.Go("sampler", func(p *sim.Proc) {
		for p.Now() < copyStop {
			var x int64
			for i := 0; i < 8; i++ {
				x += llc.Occupancy(fmt.Sprintf("xmem%d", i))
			}
			var bg int64
			for c := 0; c < 4; c++ {
				bg += llc.Occupancy(fmt.Sprintf("core%d", 10+c))
			}
			bg += llc.Occupancy(v.devs[0].Owner())
			ms := float64(p.Now()) / 1e6
			occ.Set("xmem", ms, float64(x)/(1<<20))
			occ.Set("copies", ms, float64(bg)/(1<<20))
			p.Sleep(time.Millisecond)
		}
	})
	v.e.Run()

	var total time.Duration
	var rounds int
	for _, pr := range probes {
		if pr == nil {
			continue
		}
		total += pr.Avg() * time.Duration(pr.Rounds())
		rounds += pr.Rounds()
	}
	if rounds == 0 {
		return 0, occ
	}
	return total / time.Duration(rounds), occ
}

// Fig12 reproduces the LLC occupancy timelines for the three co-running
// scenarios (4 MB probe working set).
func Fig12() []*report.Table {
	var out []*report.Table
	for _, s := range []pollutionScenario{scenNone, scenSoftware, scenDSA} {
		_, occ := runPollution(s, 4<<20)
		switch s {
		case scenSoftware:
			occ.Note("software memcpy dominates LLC occupancy (paper Fig 12b)")
		case scenDSA:
			occ.Note("DSA copies hold at most the DDIO partition (paper Fig 12c)")
		}
		out = append(out, occ)
	}
	return out
}

// Fig13 reproduces X-Mem latency across working sets for the three
// scenarios.
func Fig13() []*report.Table {
	t := report.New("fig13", "X-Mem average access latency under co-running copies", "ws", "ns")
	sets := []int64{2500 << 10, 5000 << 10, 7500 << 10, 10000 << 10, 12500 << 10, 15000 << 10}
	for _, scen := range []pollutionScenario{scenNone, scenSoftware, scenDSA} {
		for _, ws := range sets {
			lat, _ := runPollution(scen, ws)
			t.SetNamed(scen.String(), fmt.Sprintf("%dK", ws>>10), float64(ws), float64(lat))
		}
	}
	t.Note("software copies inflate probe latency (paper: +43%% at 4MB); DSA offload tracks the no-co-runner line (paper Fig 13)")
	return []*report.Table{t}
}

// Fig16 reproduces the DPDK Vhost forwarding-rate comparison.
func Fig16() []*report.Table {
	t := report.New("fig16", "Vhost packet forwarding rate", "pkt", "Mpps")
	sizes := []int64{64, 128, 256, 512, 1024, 1280, 1518}
	for _, mode := range []vhost.Mode{vhost.CPUCopy, vhost.DSACopy} {
		name := "CPU"
		if mode == vhost.DSACopy {
			name = "DSA"
		}
		for _, size := range sizes {
			v := newEnv(1)
			core := cpu.NewCore(0, 0, v.sys, v.as, cpu.SPRModel())
			vq := vhost.NewVirtqueue(v.as, v.node(0), 256, 2048)
			var wq *dsa.WQ
			if mode == vhost.DSACopy {
				wq = v.devs[0].WQs()[0]
			}
			b, err := vhost.NewBackend(mode, vq, core, v.as, wq)
			if err != nil {
				panic(err)
			}
			gen := vhost.NewGenerator(size, 42)
			bursts := 60
			var elapsed sim.Time
			v.e.Go("fwd", func(p *sim.Proc) {
				start := p.Now()
				for i := 0; i < bursts; i++ {
					pkts := gen.Burst(32)
					off := 0
					for off < len(pkts) {
						n, err := b.EnqueueBurst(p, pkts[off:])
						if err != nil {
							panic(err)
						}
						off += n
						for vq.UsedLen() > 0 {
							vq.PopUsed()
						}
						if n == 0 {
							p.Sleep(100 * time.Nanosecond)
						}
					}
				}
				b.Drain(p)
				elapsed = p.Now() - start
			})
			v.e.Run()
			mpps := float64(bursts*32) / (float64(elapsed) / 1e3)
			t.Set(name, float64(size), mpps)
			if !b.InOrder() {
				t.Note("WARNING: %s at %dB delivered packets out of order", name, size)
			}
		}
	}
	t.Note("CPU rate falls with packet size; DSA stays flat and wins ≥256B by 1.14–2.29x (paper Fig 16b)")
	return []*report.Table{t}
}

// fabricDomain builds a fresh fabric domain; DSA mode uses the socket's
// full four DSA instances.
func fabricDomain(mode fabric.Mode) *fabric.Domain {
	ndev := 0
	if mode == fabric.DSACopy {
		ndev = 4
	}
	v := newEnv(ndev, dsa.GroupConfig{
		Engines: 4,
		WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 64}},
	})
	var wqs []*dsa.WQ
	for _, dev := range v.devs {
		wqs = append(wqs, dev.WQs()...)
	}
	d, err := fabric.NewDomain(v.e, v.sys, v.node(0), cpu.SPRModel(), mode, wqs)
	if err != nil {
		panic(err)
	}
	return d
}

// Fig17a reproduces the libfabric pingpong and RMA throughput curves.
func Fig17a() []*report.Table {
	t := report.New("fig17a", "libfabric SAR pingpong / RMA throughput", "msg", "GB/s")
	sizes := []int64{8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20}
	for _, size := range sizes {
		cpp, err := fabric.Pingpong(fabricDomain(fabric.CPUCopy), size, 6)
		if err != nil {
			panic(err)
		}
		dpp, err := fabric.Pingpong(fabricDomain(fabric.DSACopy), size, 6)
		if err != nil {
			panic(err)
		}
		crma, err := fabric.RMA(fabricDomain(fabric.CPUCopy), size, 6)
		if err != nil {
			panic(err)
		}
		drma, err := fabric.RMA(fabricDomain(fabric.DSACopy), size, 6)
		if err != nil {
			panic(err)
		}
		t.Set("CPU PP", float64(size), cpp)
		t.Set("DSA PP", float64(size), dpp)
		t.Set("CPU RMA", float64(size), crma)
		t.Set("DSA RMA", float64(size), drma)
	}
	t.Note("DSA overtakes the CPU beyond ~32KB messages (paper Fig 17a)")
	return []*report.Table{t}
}

// Fig17b reproduces the OSU-style bandwidth improvement and AllReduce
// speedups.
func Fig17b() []*report.Table {
	t := report.New("fig17b", "OSU bandwidth improvement and AllReduce speedup", "msg", "DSA/CPU ratio")
	sizes := []int64{1 << 20, 4 << 20, 16 << 20}
	for _, size := range sizes {
		cbw, err := fabric.RMA(fabricDomain(fabric.CPUCopy), size, 4)
		if err != nil {
			panic(err)
		}
		dbw, err := fabric.RMA(fabricDomain(fabric.DSACopy), size, 4)
		if err != nil {
			panic(err)
		}
		t.Set("BW", float64(size), dbw/cbw)
		for _, ranks := range []int{2, 4, 8} {
			car, err := fabric.AllReduce(fabricDomain(fabric.CPUCopy), ranks, size, 1)
			if err != nil {
				panic(err)
			}
			dar, err := fabric.AllReduce(fabricDomain(fabric.DSACopy), ranks, size, 1)
			if err != nil {
				panic(err)
			}
			t.Set(fmt.Sprintf("AR,R:%d", ranks), float64(size), float64(car.Duration)/float64(dar.Duration))
		}
	}
	t.Note("paper reports ~5x at large messages; the model reaches ~2–6x depending on ranks (see EXPERIMENTS.md)")
	return []*report.Table{t}
}

// Fig18 reproduces the BERT phase timings.
func Fig18() []*report.Table {
	t := report.New("fig18", "BERT pretraining phase timings", "phase", "seconds/iteration")
	for _, ranks := range []int{2, 8} {
		for _, mode := range []fabric.Mode{fabric.CPUCopy, fabric.DSACopy} {
			name := "CPU"
			if mode == fabric.DSACopy {
				name = "DSA"
			}
			res, err := fabric.BERT(fabricDomain(mode), fabric.BERTConfig{Ranks: ranks, SimBytes: 8 << 20})
			if err != nil {
				panic(err)
			}
			series := fmt.Sprintf("%s,R:%d", name, ranks)
			t.SetNamed(series, "AR", 0, res.AllReduce.Seconds())
			t.SetNamed(series, "FT", 1, res.Forward.Seconds())
			t.SetNamed(series, "BT", 2, res.Backward.Seconds())
			t.SetNamed(series, "TT", 3, res.Total.Seconds())
		}
	}
	t.Note("only the AllReduce phase changes with the copy engine; end-to-end gains are single-digit percent (paper Fig 18, §A)")
	return []*report.Table{t}
}

// Fig19 reproduces the CacheLib rate and tail-latency grids.
func Fig19() []*report.Table {
	rate := report.New("fig19_rate", "CacheBench op rate, DSA relative to CPU", "config", "relative rate")
	tail := report.New("fig19_tail", "CacheBench p99.999 latency, DSA relative to CPU", "config", "relative latency")
	cfgs := []struct{ h, s int }{
		{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16},
		{1, 2}, {2, 4}, {4, 8}, {8, 16}, {16, 32},
		{1, 4}, {2, 8}, {4, 16}, {8, 32}, {16, 64},
	}
	for i, c := range cfgs {
		name := fmt.Sprintf("%dh%ds", c.h, c.s)
		run := func(useDSA bool) cachesim.Result {
			v := newEnv(0)
			cfg := cachesim.Config{
				HWCores: c.h, Threads: c.s, OpsPerThd: 300,
				CacheSize: 64 << 20, Seed: uint64(100 + i),
			}
			if useDSA {
				// The paper's setup: four shared WQs, one group+engine each.
				dev := dsa.New(v.e, v.sys, dsa.DefaultConfig("dsa0", 0))
				for g := 0; g < 4; g++ {
					if _, err := dev.AddGroup(dsa.GroupConfig{
						Engines: 1,
						WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 16}},
					}); err != nil {
						panic(err)
					}
				}
				if err := dev.Enable(); err != nil {
					panic(err)
				}
				cfg.WQs = dev.WQs()
			}
			res, err := cachesim.Run(v.e, v.sys, v.node(0), cpu.SPRModel(), cfg)
			if err != nil {
				panic(err)
			}
			return res
		}
		cpuRes := run(false)
		dsaRes := run(true)
		x := float64(i)
		rate.SetNamed("DSA Get", name, x, dsaRes.GetRate/cpuRes.GetRate)
		rate.SetNamed("DSA Set", name, x, dsaRes.SetRate/cpuRes.SetRate)
		rate.SetNamed("CPU", name, x, 1)
		tail.SetNamed("DSA Find", name, x, float64(dsaRes.FindTail)/float64(cpuRes.FindTail))
		tail.SetNamed("DSA Alloc", name, x, float64(dsaRes.AllocTail)/float64(cpuRes.AllocTail))
		tail.SetNamed("CPU", name, x, 1)
	}
	rate.Note("offloading ≥8KB copies lifts get/set rates; gains shrink when threads far exceed the four WQs (paper Fig 19a)")
	tail.Note("tail latency collapses because the rare huge copies leave the cores (paper Fig 19b)")
	return []*report.Table{rate, tail}
}

// Fig21 reproduces the SPDK NVMe/TCP target IOPS scaling.
func Fig21() []*report.Table {
	var out []*report.Table
	for _, wl := range []struct {
		name string
		size int64
	}{{"16KB random reads", 16 << 10}, {"128KB sequential reads", 128 << 10}} {
		t := report.New("fig21_"+report.FormatBytes(float64(wl.size)), "SPDK NVMe/TCP target: "+wl.name, "cores", "relative IOPS")
		// Normalize to the NoDigest 8-core ceiling, as the paper does.
		var ceiling float64
		for _, mode := range []spdknvme.DigestMode{spdknvme.NoDigest, spdknvme.ISAL, spdknvme.DSA} {
			for cores := 1; cores <= 8; cores++ {
				v := newEnv(1, dsa.GroupConfig{
					Engines: 4,
					WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 64}},
				})
				cfg := spdknvme.Config{
					TargetCores: cores, IOSize: wl.size, Mode: mode, IOs: 1200, Seed: 7,
				}
				if mode == spdknvme.DSA {
					cfg.WQs = v.devs[0].WQs()
				}
				res, err := spdknvme.Run(v.e, v.sys, v.node(0), cpu.SPRModel(), cfg)
				if err != nil {
					panic(err)
				}
				if mode == spdknvme.NoDigest && cores == 8 {
					ceiling = res.IOPS
				}
				t.Set(mode.String(), float64(cores), res.IOPS)
				if res.Mismatched > 0 {
					t.Note("WARNING: %d digest mismatches (%s, %d cores)", res.Mismatched, mode, cores)
				}
			}
		}
		// Second pass to normalize (ceiling known only after NoDigest@8).
		norm := report.New(t.ID, t.Title, "cores", "relative IOPS")
		for _, s := range t.Series() {
			for _, x := range t.Xs() {
				if val, ok := t.Get(s, x); ok {
					norm.Set(s, x, val/ceiling)
				}
			}
		}
		norm.Note("DSA tracks NoDigest; ISA-L needs several more cores to saturate (paper Fig 21)")
		out = append(out, norm)
	}
	return out
}
