package exp

import (
	"strings"

	"dsasim/internal/fleet"
	"dsasim/internal/report"
)

// FleetScale shrinks the fleet scenarios' virtual durations and
// connection counts (rates, sizes, and budgets are untouched — the
// operating point is the scenario). 1.0 is the committed-baseline scale;
// cmd/dsa-bench -fleetscale narrows it for quick local runs, mirroring
// -submitters for the contention sweep.
var FleetScale = 1.0

// Fleet runs the fleet-scale service scenarios (internal/fleet) and
// reports three tables:
//
//   - "fleet-slo": the headline — SLO-attained throughput per scenario
//     (the highest offered load, found by a load ramp, at which every
//     QoS class meets its p99 budget with negligible shed) next to the
//     scenario's base offered load. CI holds absolute min_ratio floors
//     on attained/base per scenario.
//   - "fleet-<scenario>": per-phase breakdown across the steady /
//     diurnal / burst / overload / recovery schedule — offered and
//     goodput per class (kops/s), open-loop p99 per class (µs), and
//     shed counts.
//
// Latencies are open-loop (scheduled arrival → completion), so backlog
// and admission shed show up instead of hiding behind slowed submitters.
func Fleet() []*report.Table {
	slo := report.New("fleet-slo", "SLO-attained throughput per fleet scenario",
		"scenario", "kops/s")
	tables := []*report.Table{slo}
	for i, sc := range fleet.Scenarios() {
		sc = sc.Scaled(FleetScale)
		attained, base, steps := fleet.Attained(sc)
		slo.SetNamed("attained", sc.Name, float64(i), attained)
		slo.SetNamed("base", sc.Name, float64(i), base)
		slo.Note("%s: ramp %s, attained %.0f kops/s (%.2fx base)",
			sc.Name, rampTrace(steps), attained, attained/base)

		r := fleet.Run(sc)
		short := strings.TrimSuffix(sc.Name, "-fleet")
		pt := report.New("fleet-"+short, "Fleet phases: "+sc.Name, "phase", "kops/s (rates), µs (p99)")
		for pi, ph := range r.Phases {
			x := float64(pi)
			pt.SetNamed("fg-offered", ph.Name, x, ph.Offered[fleet.FG])
			pt.SetNamed("fg-goodput", ph.Name, x, ph.Goodput[fleet.FG])
			pt.SetNamed("bg-offered", ph.Name, x, ph.Offered[fleet.BG])
			pt.SetNamed("bg-goodput", ph.Name, x, ph.Goodput[fleet.BG])
			pt.SetNamed("fg-p99us", ph.Name, x, float64(ph.P99[fleet.FG].Nanoseconds())/1e3)
			pt.SetNamed("bg-p99us", ph.Name, x, float64(ph.P99[fleet.BG].Nanoseconds())/1e3)
			pt.SetNamed("bg-shed", ph.Name, x, float64(ph.Shed[fleet.BG]))
		}
		pt.Note("open-loop latencies (arrival-stamped); ops attributed to their arrival's phase")
		pt.Note("offload-layer SLO cross-check: ok=%d miss=%d", r.SLOOk, r.SLOMiss)
		tables = append(tables, pt)
	}
	slo.Note("attained = highest ramp step where fg and bg p99 meet budget with <0.5%% shed; base = the Mult=1.0 offered load the floors normalize against")
	return tables
}

// rampTrace renders a ramp walk compactly for the table notes.
func rampTrace(steps []fleet.RampStep) string {
	var b strings.Builder
	for i, st := range steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		mark := "+"
		if !st.Pass {
			mark = "-"
		}
		b.WriteString(mark)
		b.WriteString(report.FormatBytes(st.Mult))
	}
	return b.String()
}
