package exp

import "testing"

// TestChaosExperimentShape runs the chaos experiment at reduced scale
// and pins what the CI gates rely on: the recovery plane preserves at
// least 70% of the fault-free SLO-attained headline, the defused
// negative control demonstrably fails that floor (so the gate measures
// the machinery, not luck), and the phase run recovers inside the gated
// window budget with nonzero fault-handling work behind it.
func TestChaosExperimentShape(t *testing.T) {
	old := FleetScale
	FleetScale = 0.2
	defer func() { FleetScale = old }()

	tables := Chaos()
	if len(tables) != 2 || tables[0].ID != "chaos-slo" || tables[1].ID != "chaos-recovery" {
		t.Fatalf("tables = %v, want [chaos-slo chaos-recovery]", tables)
	}
	slo := tables[0]
	get := func(series string) float64 {
		t.Helper()
		v, ok := slo.Get(series, 0)
		if !ok {
			t.Fatalf("chaos-slo: no %q point", series)
		}
		return v
	}
	att, base, ff, df := get("attained"), get("base"), get("faultfree"), get("defused")
	t.Logf("attained %.0f, base %.0f, faultfree %.0f, defused %.0f kops/s", att, base, ff, df)
	if att < 0.7*ff {
		t.Errorf("attained %.0f < 0.7x fault-free %.0f: recovery does not preserve the headline", att, ff)
	}
	if att < base {
		t.Errorf("attained %.0f below design load %.0f under faults", att, base)
	}
	if df >= 0.7*ff {
		t.Errorf("defused control attained %.0f >= 0.7x fault-free %.0f: the gate would pass without recovery", df, ff)
	}

	rec := tables[1]
	rget := func(series string) float64 {
		t.Helper()
		v, ok := rec.Get(series, 0)
		if !ok {
			t.Fatalf("chaos-recovery: no %q point", series)
		}
		return v
	}
	budget, spent := rget("recovery-budget-w"), rget("recovery-spent-w")
	if spent > budget {
		t.Errorf("recovery spent %v windows of %v budget: not bounded", spent-1, budget-1)
	}
	if rget("faults") == 0 || rget("retries") == 0 {
		t.Errorf("faults=%v retries=%v, want both nonzero under the fault plan", rget("faults"), rget("retries"))
	}
}
