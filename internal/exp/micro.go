package exp

import (
	"fmt"

	"dsasim/internal/cpu"
	"dsasim/internal/dsa"
	"dsasim/internal/report"
	"dsasim/internal/sim"
)

// stdSizes is the transfer-size sweep used by most figures (256 B – 1 MB).
var stdSizes = []int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// fig2Ops are the data-streaming operations whose speedup Fig 2 plots.
// NT-Memory Fill is the non-allocating (cache-control clear) variant.
var fig2Ops = []struct {
	name  string
	op    dsa.OpType
	flags dsa.Flags
}{
	{"memcpy", dsa.OpMemmove, 0},
	{"fill", dsa.OpFill, dsa.FlagCacheControl},
	{"nt-fill", dsa.OpFill, 0},
	{"memcmp", dsa.OpCompare, 0},
	{"cmp-pattern", dsa.OpComparePattern, 0},
	{"crc32", dsa.OpCRCGen, 0},
	{"copy-crc", dsa.OpCopyCRC, 0},
	{"dualcast", dsa.OpDualcast, 0},
	{"dif-insert", dsa.OpDIFInsert, 0},
}

// fig2Size rounds a sweep size for ops with block constraints.
func fig2Size(op dsa.OpType, size int64) int64 {
	if op == dsa.OpDIFInsert {
		if size < 512 {
			return 512
		}
		return size / 512 * 512
	}
	return size
}

// fig2 builds one Fig 2 panel; async selects panel (b).
func fig2(id, title string, async bool) []*report.Table {
	t := report.New(id, title, "xfer", "DSA/CPU throughput ratio")
	for _, o := range fig2Ops {
		for _, size := range stdSizes {
			sz := fig2Size(o.op, size)

			v := newEnv(1)
			qd, count := 1, 30
			if async {
				qd, count = 32, 150
			}
			res := v.runCopy(copyCfg{op: o.op, flags: o.flags, size: sz, count: count, qd: qd})

			vc := newEnv(0)
			swDur := vc.swTime(o.op, sz, nil, nil, false, false)
			swGBps := sim.Rate(sz, swDur)

			t.Set(o.name, float64(size), res.gbps/swGBps)
		}
	}
	t.Note("values > 1 mean DSA beats the software baseline; sync crossover ~4KB, async ~256B–512B (paper Fig 2)")
	return []*report.Table{t}
}

// Fig2a reproduces the synchronous-offload speedup panel.
func Fig2a() []*report.Table {
	return fig2("fig2a", "Sync speedup over software counterparts", false)
}

// Fig2b reproduces the asynchronous-offload speedup panel.
func Fig2b() []*report.Table {
	return fig2("fig2b", "Async speedup over software counterparts", true)
}

// Fig3 reproduces copy throughput across transfer size × batch size, sync
// and async.
func Fig3() []*report.Table {
	t := report.New("fig3", "Memory Copy throughput vs transfer and batch size", "xfer", "GB/s")
	for _, bs := range []int{1, 4, 16, 64} {
		for _, size := range stdSizes {
			count := 2000 / bs
			if count < 8 {
				count = 8
			}
			vs := newEnv(1)
			sync := vs.runCopy(copyCfg{size: size, batch: bs, count: count, qd: 1})
			t.Set(fmt.Sprintf("Sync,BS:%d", bs), float64(size), sync.gbps)

			va := newEnv(1)
			async := va.runCopy(copyCfg{size: size, batch: bs, count: count, qd: 32})
			t.Set(fmt.Sprintf("Async,BS:%d", bs), float64(size), async.gbps)
		}
	}
	t.Note("throughput saturates at the 30 GB/s fabric: sync needs 256KB×BS64, async 4KB×BS4 (paper Fig 3)")
	return []*report.Table{t}
}

// Fig4 reproduces async throughput against WQ size (the in-flight window).
func Fig4() []*report.Table {
	t := report.New("fig4", "Async Memory Copy throughput vs WQ size", "xfer", "GB/s")
	for _, wqs := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		for _, size := range stdSizes {
			v := newEnv(1, dsa.GroupConfig{
				Engines: 4,
				WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: wqs}},
			})
			res := v.runCopy(copyCfg{size: size, count: 150, qd: wqs})
			t.Set(fmt.Sprintf("WQS:%d", wqs), float64(size), res.gbps)
		}
	}
	t.Note("32 entries reach near-max throughput (guideline G6)")
	return []*report.Table{t}
}

// Fig5 reproduces the 4 KB offload latency breakdown against batch size.
func Fig5() []*report.Table {
	t := report.New("fig5", "Latency per 4KB offload: CPU vs DSA phases", "batch", "µs per 4KB")
	const size = 4 << 10
	for _, bs := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		// CPU bar: plain memcpy.
		vc := newEnv(0)
		cpuDur := vc.swTime(dsa.OpMemmove, size, nil, nil, false, false)
		t.Set("CPU", float64(bs), float64(cpuDur)/1e3)

		// DSA stacked bar: allocate, prepare, submit, wait — amortized
		// per 4 KB descriptor.
		v := newEnv(1)
		wq := v.devs[0].WQs()[0]
		cl := dsa.NewClient(wq, nil)
		src := v.buf(size*int64(bs), v.node(0), false, 0)
		dst := v.buf(size*int64(bs), v.node(0), false, 0)
		iters := 20
		v.e.Go("fig5", func(p *sim.Proc) {
			for i := 0; i < iters; i++ {
				cl.AllocDescriptors(p, bs)
				var d dsa.Descriptor
				if bs == 1 {
					cl.Prepare(p)
					d = dsa.Descriptor{Op: dsa.OpMemmove, PASID: v.as.PASID,
						Src: src.Addr(0), Dst: dst.Addr(0), Size: size}
				} else {
					subs := make([]dsa.Descriptor, bs)
					for j := range subs {
						cl.Prepare(p)
						off := int64(j) * size
						subs[j] = dsa.Descriptor{Op: dsa.OpMemmove,
							Src: src.Addr(off), Dst: dst.Addr(off), Size: size}
					}
					d = dsa.Descriptor{Op: dsa.OpBatch, PASID: v.as.PASID, Descs: subs}
				}
				comp, err := cl.Submit(p, d)
				if err != nil {
					panic(err)
				}
				cl.Wait(p, comp, dsa.Poll)
			}
		})
		v.e.Run()
		per := float64(iters * bs)
		t.Set("alloc", float64(bs), float64(cl.AllocTime)/per/1e3)
		t.Set("prepare", float64(bs), float64(cl.PrepareTime)/per/1e3)
		t.Set("submit", float64(bs), float64(cl.SubmitTime)/per/1e3)
		t.Set("wait", float64(bs), float64(cl.WaitTime)/per/1e3)
	}
	t.Note("descriptor allocation dominates the naive path and amortizes with batching (paper Fig 5)")
	return []*report.Table{t}
}

// Fig7 reproduces throughput scaling with engines per group.
func Fig7() []*report.Table {
	t := report.New("fig7", "Memory Copy throughput vs engines per group", "PEs", "GB/s")
	for _, pes := range []int{1, 2, 3, 4} {
		for _, ts := range []int64{256, 1 << 10} {
			for _, bs := range []int{1, 4, 16, 64} {
				v := newEnv(1, dsa.GroupConfig{
					Engines: pes,
					WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
				})
				count := 1500 / bs
				if count < 10 {
					count = 10
				}
				res := v.runCopy(copyCfg{size: ts, batch: bs, count: count, qd: 16})
				t.Set(fmt.Sprintf("TS:%s,BS:%d", report.FormatBytes(float64(ts)), bs),
					float64(pes), res.gbps)
			}
		}
	}
	t.Note("small transfers scale with PEs; large transfers saturate one PE (guideline G5)")
	return []*report.Table{t}
}

// Fig9 reproduces the WQ-configuration comparison: one batched DWQ vs N
// DWQs with N threads vs one SWQ with N threads.
func Fig9() []*report.Table {
	t := report.New("fig9", "Throughput of WQ configurations", "xfer", "GB/s")
	sizes := []int64{256, 512, 1 << 10, 2 << 10, 4 << 10, 8 << 10}
	for _, n := range []int{1, 4, 8} {
		for _, size := range sizes {
			eng := n
			if eng > 4 {
				eng = 4
			}
			// BS:N — one DWQ, one thread, batches of N.
			vb := newEnv(1, dsa.GroupConfig{
				Engines: eng,
				WQs:     []dsa.WQConfig{{Mode: dsa.Dedicated, Size: 32}},
			})
			bres := vb.runCopy(copyCfg{size: size, batch: n, count: 1200 / n, qd: 16})
			t.Set(fmt.Sprintf("BS:%d", n), float64(size), bres.gbps)

			// DWQ:N — N dedicated WQs, one thread and engine each.
			wqcfg := make([]dsa.WQConfig, n)
			for i := range wqcfg {
				wqcfg[i] = dsa.WQConfig{Mode: dsa.Dedicated, Size: 16}
			}
			vd := newEnv(1, dsa.GroupConfig{Engines: eng, WQs: wqcfg})
			dres := vd.runCopy(copyCfg{size: size, count: 1200, qd: 16, threads: n})
			t.Set(fmt.Sprintf("DWQ:%d", n), float64(size), dres.gbps)

			// SWQ:N — one shared WQ, N submitting threads.
			vs := newEnv(1, dsa.GroupConfig{
				Engines: eng,
				WQs:     []dsa.WQConfig{{Mode: dsa.Shared, Size: 32}},
			})
			sres := vs.runCopy(copyCfg{size: size, count: 1200, qd: 16, threads: n})
			t.Set(fmt.Sprintf("SWQ:%d", n), float64(size), sres.gbps)
		}
	}
	t.Note("batching ≈ multiple DWQs; single-thread SWQ lags below 8KB from the ENQCMD round trip (guideline G6)")
	return []*report.Table{t}
}

// Fig11 reproduces the fraction of CPU cycles spent in UMWAIT.
func Fig11() []*report.Table {
	t := report.New("fig11", "CPU cycles in UMWAIT during offload", "xfer", "% cycles in UMWAIT")
	for _, bs := range []int{1, 4, 16, 64} {
		for _, size := range stdSizes {
			v := newEnv(1)
			core := cpu.NewCore(0, 0, v.sys, v.as, cpu.SPRModel())
			wq := v.devs[0].WQs()[0]
			cl := dsa.NewClient(wq, core)
			src := v.buf(size*int64(bs), v.node(0), false, 0)
			dst := v.buf(size*int64(bs), v.node(0), false, 0)
			iters := 12
			v.e.Go("fig11", func(p *sim.Proc) {
				for i := 0; i < iters; i++ {
					var d dsa.Descriptor
					if bs == 1 {
						d = dsa.Descriptor{Op: dsa.OpMemmove, PASID: v.as.PASID,
							Src: src.Addr(0), Dst: dst.Addr(0), Size: size}
					} else {
						subs := make([]dsa.Descriptor, bs)
						for j := range subs {
							off := int64(j) * size
							subs[j] = dsa.Descriptor{Op: dsa.OpMemmove,
								Src: src.Addr(off), Dst: dst.Addr(off), Size: size}
						}
						d = dsa.Descriptor{Op: dsa.OpBatch, PASID: v.as.PASID, Descs: subs}
					}
					if _, err := cl.RunSync(p, d, dsa.UMWait); err != nil {
						panic(err)
					}
				}
			})
			v.e.Run()
			frac := float64(core.UMWaitTime()) / float64(core.UMWaitTime()+core.BusyTime())
			t.Set(fmt.Sprintf("BS:%d", bs), float64(size), frac*100)
		}
	}
	t.Note("≥4KB or batched offloads park the core in UMWAIT for most cycles (paper Fig 11, §4.4)")
	return []*report.Table{t}
}

// Fig14 reproduces the transfer-size/batch-size balance for fixed total
// offload sizes.
func Fig14() []*report.Table {
	t := report.New("fig14", "Throughput for fixed totals split across TS:BS", "total", "GB/s")
	totals := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10}
	ratios := []int{1, 2, 4, 8, 16, 32, 64, 128}
	xi := 0.0
	for _, syncMode := range []bool{true, false} {
		label := "S"
		qd := 1
		if !syncMode {
			label, qd = "A", 16
		}
		for _, total := range totals {
			x := xi
			xi++
			name := fmt.Sprintf("%s:%s", label, report.FormatBytes(float64(total)))
			for _, bs := range ratios {
				ts := total / int64(bs)
				if ts < 64 {
					continue
				}
				v := newEnv(1)
				res := v.runCopy(copyCfg{size: ts, batch: bs, count: 60, qd: qd})
				t.SetNamed(fmt.Sprintf("BS:%d", bs), name, x, res.gbps)
			}
		}
	}
	t.Note("for a fixed total, modest batching (4–8) is optimal synchronously; oversplitting wastes descriptor overhead (guideline G1)")
	return []*report.Table{t}
}
