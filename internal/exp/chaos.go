package exp

import (
	"dsasim/internal/fleet"
	"dsasim/internal/report"
)

// chaosRecoveryBudget is the bounded-recovery assertion: after the fault
// plan's last scheduled failure window closes, the fleet must pull both
// classes' windowed p99 back inside budget (with no terminal failures)
// within this many recovery windows (250µs each — 3ms of virtual time at
// the committed scale). The chaos gate holds budget/spent ≥ 1.
const chaosRecoveryBudget = 12

// Chaos runs the chaos-engineering scenario (internal/fleet.Chaos): the
// packet-switch fleet under injected failures — steady page faults, a
// cold-page storm, a transient WQ disable, and a whole-device outage —
// and reports what the recovery plane preserves:
//
//   - "chaos-slo": SLO-attained throughput for three variants of the
//     same scenario: "attained" (faults + the default retry/fallback/
//     failover policy), "faultfree" (no faults — the headline ceiling),
//     and "defused" (faults with recovery zeroed — the negative
//     control). CI gates attained/faultfree ≥ 0.7: the recovery plane
//     must preserve at least 70% of the fault-free headline. The
//     defused variant demonstrably fails that floor (asserted by the
//     package test), proving the machinery — not luck — carries it.
//   - "chaos-recovery": the phase run's recovery-time measurement
//     (windows until both classes' windowed p99 sat back inside budget
//     with no terminal failures, against the budget the gate holds) and
//     the fault/retry/fallback/failover totals behind it.
//
// Ramp latencies are open-loop, so retry round trips and failover
// detours land on the SLO exactly as a waiting client observes them.
func Chaos() []*report.Table {
	sc := fleet.Chaos().Scaled(FleetScale)

	slo := report.New("chaos-slo", "SLO-attained throughput under injected faults",
		"variant", "kops/s")
	// The ramp measures degraded-mode capacity under recoverable faults —
	// the page-fault storm and the express-WQ disable — with the
	// whole-device outage zeroed: an N-1-capacity window inside every
	// step would gate the ramp on raw capacity (one device's), not on
	// recovery quality. The outage's cost is measured where it belongs,
	// as the phase run's recovery time below.
	rampSc := sc
	rampPlan := *sc.Faults
	rampPlan.OutageDur = 0
	rampSc.Faults = &rampPlan
	attained, base, steps := fleet.Attained(rampSc)
	slo.SetNamed("attained", sc.Name, 0, attained)
	slo.SetNamed("base", sc.Name, 0, base)
	slo.Note("%s: ramp %s, attained %.0f kops/s (%.2fx base)",
		sc.Name, rampTrace(steps), attained, attained/base)

	ff := sc
	ff.Faults = nil
	ffAttained, _, ffSteps := fleet.Attained(ff)
	slo.SetNamed("faultfree", sc.Name, 0, ffAttained)
	slo.Note("fault-free ceiling: ramp %s, attained %.0f kops/s", rampTrace(ffSteps), ffAttained)

	df := rampSc
	df.DefuseRecovery = true
	dfAttained, _, dfSteps := fleet.Attained(df)
	slo.SetNamed("defused", sc.Name, 0, dfAttained)
	slo.Note("defused (recovery off): ramp %s, attained %.0f kops/s — the negative control",
		rampTrace(dfSteps), dfAttained)
	slo.Note("gate: attained/faultfree ≥ 0.7 — the recovery plane must preserve ≥70%% of the fault-free headline")

	r := fleet.Run(sc)
	rec := report.New("chaos-recovery", "Recovery time and fault-handling totals (phase run)",
		"scenario", "windows (250µs), counts")
	// Gate-friendly encoding: both points are +1 so instant recovery
	// (zero windows) still divides; budget/spent ≥ 1 ⇔ spent ≤ budget.
	rec.SetNamed("recovery-budget-w", sc.Name, 0, chaosRecoveryBudget+1)
	spent := r.RecoveryWindows
	if !r.Recovered {
		// Never recovered before the run ended: score the whole remaining
		// run plus the budget so the margin gate fails decisively.
		spent += chaosRecoveryBudget
	}
	rec.SetNamed("recovery-spent-w", sc.Name, 0, float64(spent+1))
	rec.SetNamed("faults", sc.Name, 0, float64(r.Faults))
	rec.SetNamed("retries", sc.Name, 0, float64(r.Retries))
	rec.SetNamed("fallbacks", sc.Name, 0, float64(r.Fallbacks))
	rec.SetNamed("failovers", sc.Name, 0, float64(r.Failovers))
	rec.Note("recovered=%v in %d windows of %d budget after the last injected failure window",
		r.Recovered, r.RecoveryWindows, chaosRecoveryBudget)
	rec.Note("faults=%d retries=%d fallbacks=%d failovers=%d; offload SLO cross-check ok=%d miss=%d",
		r.Faults, r.Retries, r.Fallbacks, r.Failovers, r.SLOOk, r.SLOMiss)
	return []*report.Table{slo, rec}
}
