package exp

import "testing"

// The PR's acceptance experiment: under bulk interference (24 megabyte
// copies in flight), the latency-sensitive tenant's p99 completion latency
// must be materially lower with PriorityAware scheduling + admission
// control than with QoS-blind least-loaded scheduling. The probe runs at
// half the sweep's deepest point to keep tier-1 time modest.
func TestQoSProtectsLatencySensitiveTail(t *testing.T) {
	cfgs := qosConfigs()
	if cfgs[0].name != "least-loaded" || cfgs[1].name != "qos" {
		t.Fatalf("unexpected config order: %q, %q", cfgs[0].name, cfgs[1].name)
	}
	base := qosP99(cfgs[0], 24)
	qos := qosP99(cfgs[1], 24)
	if qos >= base {
		t.Fatalf("QoS p99 (%v) not lower than least-loaded p99 (%v) under bulk interference", qos, base)
	}
	if float64(qos)*2 > float64(base) {
		t.Errorf("QoS advantage too small: %v vs %v (want at least 2x)", qos, base)
	}
	// Without interference the two configurations are equivalent: the
	// express lane buys nothing when nothing competes.
	idleBase := qosP99(cfgs[0], 0)
	idleQoS := qosP99(cfgs[1], 0)
	if float64(idleQoS) > 2*float64(idleBase) {
		t.Errorf("QoS config slower when unloaded: %v vs %v", idleQoS, idleBase)
	}
}
