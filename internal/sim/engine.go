// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in timestamp order.
// Virtual instants and durations are both expressed as time.Duration offsets
// from the start of the simulation, which keeps arithmetic trivial and makes
// log output readable. Two styles of simulated activity are supported:
//
//   - plain callbacks scheduled with At/After, and
//   - cooperative processes (Proc) that read like straight-line code and
//     park themselves on the clock or on Signals (see proc.go).
//
// Execution is fully deterministic: ties in timestamp are broken by a
// monotonically increasing sequence number, and processes run one at a time
// under the engine's control.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual instant, expressed as the duration elapsed since the
// start of the simulation. Durations and instants share this representation.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (at, seq). It is a hand-rolled binary heap
// rather than container/heap: the interface-based API boxes every pushed
// and popped event into an interface{}, which allocates on each schedule.
// Event scheduling is the innermost loop of the simulator — every Sleep of
// a polling wait loop goes through it — so the heap works on the concrete
// slice and the steady-state cost of At/After is zero allocations once the
// backing array has grown to the live event count.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// up restores the heap property after appending at index i.
func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// down restores the heap property after replacing the root.
func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// push appends an event and restores heap order.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	e.events.up(len(e.events) - 1)
}

// pop removes and returns the earliest event. The caller checks emptiness.
func (e *Engine) pop() event {
	ev := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = event{} // drop the fn reference so the GC can reclaim it
	e.events = e.events[:n]
	e.events.down(0)
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with New.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	procs   int // live processes, for leak detection
	stopped bool
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at virtual instant t. Scheduling in the past panics:
// it is always a bug in the simulation model.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// step executes the earliest event. It reports false when no events remain.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain. It panics if processes are still
// parked when the event queue drains — that is a deadlocked model.
func (e *Engine) Run() {
	for e.step() {
		if e.stopped {
			e.stopped = false
			return
		}
	}
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events", e.procs))
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		if !e.step() {
			break
		}
		if e.stopped {
			e.stopped = false
			return
		}
	}
	if t > e.now {
		e.now = t
	}
}

// Stop makes the current Run/RunUntil call return after the current event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// GBps converts a byte count moved at rate gigabytesPerSecond into a
// duration. 1 GB/s is exactly 1 byte/ns, so the math stays in nanoseconds.
func GBps(bytes int64, gigabytesPerSecond float64) Time {
	if gigabytesPerSecond <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return Time(float64(bytes) / gigabytesPerSecond)
}

// Rate converts a byte count and a duration into achieved GB/s.
func Rate(bytes int64, d Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / float64(d)
}
