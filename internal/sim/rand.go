package sim

// Rand is a small deterministic pseudo-random generator (xorshift64*), used
// by workload generators so experiment runs are reproducible without pulling
// global math/rand state into the model.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero is remapped: the
// xorshift state must be non-zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bytes fills b with pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
