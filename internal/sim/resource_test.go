package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: a pipe's cumulative busy time equals bytes moved divided by its
// rate, and completion times never decrease for FIFO reservations.
func TestPipeConservationQuick(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := New()
		p := NewPipe(e, 2) // 2 bytes per ns
		var last Time
		var total int64
		for _, s := range sizes {
			n := int64(s) + 1
			done := p.Reserve(n)
			if done < last {
				return false // completions must be monotone
			}
			last = done
			total += n
		}
		if p.BytesMoved() != total {
			return false
		}
		// busy = total / rate
		want := Time(float64(total) / 2)
		diff := p.BusyTime() - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= Time(len(sizes)) // rounding slack, 1ns per reservation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeSetRateAffectsFutureOnly(t *testing.T) {
	e := New()
	p := NewPipe(e, 1)
	first := p.Reserve(100) // 100ns at 1 B/ns
	p.SetRate(10)
	second := p.Reserve(100) // 10ns at 10 B/ns, queued behind first
	if first != 100*time.Nanosecond {
		t.Fatalf("first done at %v", first)
	}
	if second != 110*time.Nanosecond {
		t.Fatalf("second done at %v, want 110ns", second)
	}
}

func TestPipeRejectsBadRates(t *testing.T) {
	e := New()
	for _, bad := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v accepted", bad)
				}
			}()
			NewPipe(e, bad)
		}()
	}
	p := NewPipe(e, 1)
	defer func() {
		if recover() == nil {
			t.Error("SetRate(0) accepted")
		}
	}()
	p.SetRate(0)
}

// Property: a token pool never admits more than its size concurrently — at
// any instant, overlapping holds ≤ pool size.
func TestTokenConcurrencyBoundQuick(t *testing.T) {
	f := func(holds []uint8, size uint8) bool {
		n := int(size%4) + 1
		tk := NewToken(n)
		type iv struct{ s, e Time }
		var ivs []iv
		for i, h := range holds {
			hold := Time(h) + 1
			start := tk.Acquire(Time(i), hold)
			if start < Time(i) {
				return false // cannot start before requested
			}
			ivs = append(ivs, iv{start, start + hold})
		}
		// Check overlap count at every start point.
		for _, probe := range ivs {
			overlap := 0
			for _, o := range ivs {
				if o.s <= probe.s && probe.s < o.e {
					overlap++
				}
			}
			if overlap > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReserveAtFutureStart(t *testing.T) {
	e := New()
	p := NewPipe(e, 1)
	done := p.ReserveAt(500*time.Nanosecond, 100)
	if done != 600*time.Nanosecond {
		t.Fatalf("future reservation done at %v, want 600ns", done)
	}
	// A subsequent now-reservation queues behind it (FIFO ordering).
	if got := p.Reserve(10); got != 610*time.Nanosecond {
		t.Fatalf("queued reservation done at %v, want 610ns", got)
	}
}
