package sim

// Pipe models a serialized bandwidth resource (a link, port, or memory
// channel). Transfers are granted in request order: each reservation starts
// no earlier than the previous one finished, which yields fair FIFO
// bandwidth sharing with O(1) state.
type Pipe struct {
	e        *Engine
	nsPerByt float64 // nanoseconds per byte
	free     Time    // instant the pipe next becomes idle
	busy     Time    // cumulative busy time, for utilization accounting
	moved    int64   // cumulative bytes moved
}

// NewPipe creates a pipe with capacity gbps gigabytes per second.
func NewPipe(e *Engine, gbps float64) *Pipe {
	if gbps <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{e: e, nsPerByt: 1.0 / gbps}
}

// Reserve books a transfer of n bytes beginning no earlier than the current
// time and returns the instant the transfer completes.
func (p *Pipe) Reserve(n int64) Time { return p.ReserveAt(p.e.now, n) }

// ReserveAt books a transfer of n bytes beginning no earlier than instant t
// and returns the completion instant.
func (p *Pipe) ReserveAt(t Time, n int64) Time {
	start := t
	if p.free > start {
		start = p.free
	}
	d := Time(float64(n) * p.nsPerByt)
	p.free = start + d
	p.busy += d
	p.moved += n
	return p.free
}

// Backlog returns how far in the future the pipe is already booked.
func (p *Pipe) Backlog() Time {
	if p.free <= p.e.now {
		return 0
	}
	return p.free - p.e.now
}

// BytesMoved returns the cumulative bytes reserved through the pipe.
func (p *Pipe) BytesMoved() int64 { return p.moved }

// BusyTime returns the cumulative busy duration of the pipe.
func (p *Pipe) BusyTime() Time { return p.busy }

// SetRate changes the pipe's capacity (in GB/s) for future reservations.
func (p *Pipe) SetRate(gbps float64) {
	if gbps <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	p.nsPerByt = 1.0 / gbps
}

// Token is a counting semaphore over virtual time: it tracks when each of a
// fixed pool of slots next becomes free. It models pools such as DMA read
// buffers or in-flight descriptor windows analytically.
type Token struct {
	free []Time // next-free instant per slot
}

// NewToken creates a pool with n slots, all free at time zero.
func NewToken(n int) *Token {
	return &Token{free: make([]Time, n)}
}

// Acquire books the earliest-available slot from instant t until t+hold
// (starting no earlier than the slot frees) and returns the instant the slot
// became available to the caller.
func (tk *Token) Acquire(t Time, hold Time) Time {
	best := 0
	for i, f := range tk.free {
		if f < tk.free[best] {
			best = i
		}
		_ = f
	}
	start := t
	if tk.free[best] > start {
		start = tk.free[best]
	}
	tk.free[best] = start + hold
	return start
}

// Size returns the number of slots in the pool.
func (tk *Token) Size() int { return len(tk.free) }

// FIFO is an unbounded deterministic queue of arbitrary items, used as the
// backing store for work queues and ring buffers in the model.
type FIFO[T any] struct {
	items []T
}

// Push appends v to the tail of the queue.
func (q *FIFO[T]) Push(v T) { q.items = append(q.items, v) }

// Pop removes and returns the head of the queue; ok is false when empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	// Shift rather than reslice forever; queues in this model stay small.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// Peek returns the head without removing it.
func (q *FIFO[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return len(q.items) }
