package sim

import "fmt"

// Proc is a cooperative simulated process. A Proc runs on its own goroutine,
// but exactly one goroutine (either the engine or a single process) executes
// at any moment, so models using Procs remain deterministic and data-race
// free without locking.
//
// Inside the process function, call Sleep, Wait, or Yield to give control
// back to the engine; the process resumes when its wake condition fires.
type Proc struct {
	e      *Engine
	name   string
	resume chan struct{}
	parked chan struct{}
	done   bool

	// wake is p.transfer captured once at creation: scheduling a method
	// value allocates a fresh closure per call, and the wait loops (a
	// polling client re-arms itself every PollGap) schedule one wake per
	// iteration. With the closure cached, Sleep/Yield/Wait run without
	// allocating in steady state.
	wake func()
}

// Go starts fn as a simulated process at the current virtual time. The name
// appears in deadlock panics only.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	p.wake = p.transfer
	e.procs++
	go func() {
		<-p.resume // first transfer from the engine
		fn(p)
		p.done = true
		p.e.procs--
		p.parked <- struct{}{}
	}()
	e.After(0, p.wake)
	return p
}

// transfer hands control from the engine goroutine to the process and blocks
// until the process parks again (or finishes).
func (p *Proc) transfer() {
	if p.done {
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.parked
}

// park returns control to the engine and blocks until the next transfer.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Time) {
	p.e.After(d, p.wake)
	p.park()
}

// SleepUntil suspends the process until virtual instant t (no-op if t has
// passed).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.e.now {
		return
	}
	p.e.At(t, p.wake)
	p.park()
}

// Yield reschedules the process at the current instant, letting other events
// with the same timestamp run first.
func (p *Proc) Yield() {
	p.e.After(0, p.wake)
	p.park()
}

// Wait parks the process until s is signalled.
func (p *Proc) Wait(s *Signal) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Signal is a broadcast wake-up point for processes, akin to a condition
// variable. The zero value is ready to use.
type Signal struct {
	waiters []*Proc
}

// Broadcast wakes every process currently waiting on s. Wake-ups are
// scheduled at the current instant in wait order.
func (s *Signal) Broadcast(e *Engine) {
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		e.After(0, p.wake)
	}
}

// Waiters reports how many processes are parked on s.
func (s *Signal) Waiters() int { return len(s.waiters) }
