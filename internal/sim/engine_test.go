package sim

import (
	"testing"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := New()
	var order []int
	e.At(30*time.Nanosecond, func() { order = append(order, 3) })
	e.At(10*time.Nanosecond, func() { order = append(order, 1) })
	e.At(20*time.Nanosecond, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30*time.Nanosecond {
		t.Fatalf("Now = %v, want 30ns", e.Now())
	}
}

func TestEngineTieBreaksBySequence(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*time.Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	hits := 0
	e.After(time.Microsecond, func() {
		hits++
		e.After(time.Microsecond, func() { hits++ })
	})
	e.Run()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if e.Now() != 2*time.Microsecond {
		t.Fatalf("Now = %v, want 2µs", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.After(10*time.Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*time.Nanosecond, func() {})
	})
	e.Run()
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := New()
	ran := false
	e.At(100*time.Nanosecond, func() { ran = true })
	e.RunUntil(50 * time.Nanosecond)
	if ran {
		t.Fatal("event after boundary ran")
	}
	if e.Now() != 50*time.Nanosecond {
		t.Fatalf("Now = %v, want 50ns", e.Now())
	}
	e.RunUntil(100 * time.Nanosecond)
	if !ran {
		t.Fatal("event at boundary did not run")
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Time(i)*time.Nanosecond, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count after Stop = %d, want 2", count)
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count after resume = %d, want 5", count)
	}
}

func TestGBpsRoundTrip(t *testing.T) {
	// 30 GB/s moving 3 MB should take 100 µs.
	d := GBps(3_000_000, 30)
	if d != 100*time.Microsecond {
		t.Fatalf("GBps = %v, want 100µs", d)
	}
	if got := Rate(3_000_000, d); got < 29.99 || got > 30.01 {
		t.Fatalf("Rate = %v, want 30", got)
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := New()
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Microsecond)
		woke = p.Now()
	})
	e.Run()
	if woke != 42*time.Microsecond {
		t.Fatalf("woke at %v, want 42µs", woke)
	}
}

func TestProcInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(10 * time.Nanosecond)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, got)
			}
		}
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	e := New()
	var s Signal
	woke := 0
	for i := 0; i < 4; i++ {
		e.Go("waiter", func(p *Proc) {
			p.Wait(&s)
			woke++
		})
	}
	e.Go("signaller", func(p *Proc) {
		p.Sleep(time.Microsecond)
		if s.Waiters() != 4 {
			t.Errorf("Waiters = %d, want 4", s.Waiters())
		}
		s.Broadcast(e)
	})
	e.Run()
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestProcSleepUntilPastIsNoop(t *testing.T) {
	e := New()
	e.Go("p", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		p.SleepUntil(5 * time.Nanosecond) // already past
		if p.Now() != 10*time.Nanosecond {
			t.Errorf("Now = %v, want 10ns", p.Now())
		}
	})
	e.Run()
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("deadlocked process did not panic the engine")
		}
	}()
	e := New()
	var s Signal
	e.Go("stuck", func(p *Proc) { p.Wait(&s) })
	e.Run()
}

func TestPipeSerializesTransfers(t *testing.T) {
	e := New()
	p := NewPipe(e, 1) // 1 GB/s = 1 byte per ns
	d1 := p.Reserve(100)
	d2 := p.Reserve(50)
	if d1 != 100*time.Nanosecond {
		t.Fatalf("first reservation done at %v, want 100ns", d1)
	}
	if d2 != 150*time.Nanosecond {
		t.Fatalf("second reservation done at %v, want 150ns", d2)
	}
	if p.Backlog() != 150*time.Nanosecond {
		t.Fatalf("Backlog = %v, want 150ns", p.Backlog())
	}
	if p.BytesMoved() != 150 {
		t.Fatalf("BytesMoved = %d, want 150", p.BytesMoved())
	}
}

func TestPipeIdleGapDoesNotAccumulate(t *testing.T) {
	e := New()
	p := NewPipe(e, 2)     // 2 bytes per ns
	done := p.Reserve(100) // 50ns
	e.At(done+100*time.Nanosecond, func() {
		// Pipe has been idle for 100ns; next transfer starts now.
		if got := p.Reserve(100); got != e.Now()+50*time.Nanosecond {
			t.Errorf("post-idle reservation done at %v, want %v", got, e.Now()+50*time.Nanosecond)
		}
	})
	e.Run()
}

func TestTokenPoolParallelism(t *testing.T) {
	tk := NewToken(2)
	// Three holds of 100ns each from t=0: first two run in parallel,
	// third waits for a slot.
	s1 := tk.Acquire(0, 100)
	s2 := tk.Acquire(0, 100)
	s3 := tk.Acquire(0, 100)
	if s1 != 0 || s2 != 0 {
		t.Fatalf("first two acquisitions start at %v, %v; want 0,0", s1, s2)
	}
	if s3 != 100 {
		t.Fatalf("third acquisition starts at %v, want 100", s3)
	}
}

func TestFIFO(t *testing.T) {
	var q FIFO[int]
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	if v, _ := q.Peek(); v != 0 {
		t.Fatalf("Peek = %d, want 0", v)
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v", i, v, ok)
		}
	}
}

func TestRandDeterminismAndRange(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	buf := make([]byte, 33)
	r.Bytes(buf)
	zero := 0
	for _, c := range buf {
		if c == 0 {
			zero++
		}
	}
	if zero == len(buf) {
		t.Fatal("Bytes produced all zeros")
	}
}

func TestRandZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

// The event path is the simulator's innermost loop: once the heap's backing
// array has grown, scheduling and executing an event must not allocate —
// this is what keeps a polling wait loop (Sleep per PollGap) alloc-free.
func TestEventPathZeroAllocsSteadyState(t *testing.T) {
	e := New()
	fired := 0
	fn := func() { fired++ }
	// Warm the heap's backing array past the live event count used below.
	for i := 0; i < 64; i++ {
		e.After(Time(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			e.After(Time(i), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("schedule+run allocated %.1f times per run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("events never fired")
	}
}

// Heap ordering must survive the container/heap removal: events run in
// (time, schedule-order) sequence even when pushed out of order.
func TestEventOrderingAfterManualHeap(t *testing.T) {
	e := New()
	var got []int
	times := []Time{5, 1, 3, 1, 4, 0, 5, 2}
	for i, at := range times {
		i, at := i, at
		e.After(at, func() { got = append(got, i) })
	}
	e.Run()
	want := []int{5, 1, 3, 7, 2, 4, 0, 6} // sorted by (at, seq)
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

// A sleeping process must not allocate per iteration: the cached wake
// closure and the boxed-interface-free heap together make the classic
// poll-gap spin loop zero-alloc in steady state.
func TestProcSleepLoopZeroAllocs(t *testing.T) {
	e := New()
	var allocs float64
	e.Go("spinner", func(p *Proc) {
		// Warm up inside the proc so the measurement sees steady state.
		for i := 0; i < 64; i++ {
			p.Sleep(1)
		}
		allocs = testing.AllocsPerRun(100, func() { p.Sleep(1) })
	})
	e.Run()
	if allocs != 0 {
		t.Errorf("Proc.Sleep allocated %.1f times per iteration, want 0", allocs)
	}
}
