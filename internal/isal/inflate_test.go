package isal

import (
	"bytes"
	"testing"
)

func TestCompressRoundTrip(t *testing.T) {
	cases := [][]byte{
		[]byte("aaaaabbbcc"),
		bytes.Repeat([]byte{0x7f}, 1000),
		{1, 2, 3, 4, 5},
		{},
	}
	for _, src := range cases {
		comp := make([]byte, 2*len(src)+2)
		cn, err := Compress(comp, src)
		if err != nil {
			t.Fatalf("Compress(%d bytes): %v", len(src), err)
		}
		out := make([]byte, len(src))
		dn, err := Decompress(out, comp[:cn])
		if err != nil {
			t.Fatalf("Decompress: %v", err)
		}
		if dn != len(src) || !bytes.Equal(out[:dn], src) {
			t.Fatalf("round trip mismatch: got %d bytes %q, want %q", dn, out[:dn], src)
		}
	}
}

func TestCompressRatio(t *testing.T) {
	// A long run compresses ~128x; compressible inputs must shrink.
	src := bytes.Repeat([]byte{0xaa}, 4096)
	comp := make([]byte, 2*len(src))
	cn, err := Compress(comp, src)
	if err != nil {
		t.Fatal(err)
	}
	if cn >= len(src)/64 {
		t.Fatalf("4KB run compressed to %d bytes, want < %d", cn, len(src)/64)
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress(make([]byte, 16), []byte{5}); err == nil {
		t.Error("truncated image: want error")
	}
	if _, err := Decompress(make([]byte, 16), []byte{0, 1}); err == nil {
		t.Error("zero run: want error")
	}
	if _, err := Decompress(make([]byte, 2), []byte{5, 1}); err == nil {
		t.Error("overflow: want error")
	}
}
