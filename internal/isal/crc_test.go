package isal

import (
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestCRC32MatchesStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		[]byte("a"),
		[]byte("123456789"),
		[]byte("The quick brown fox jumps over the lazy dog"),
		make([]byte, 4096),
	}
	for i := range cases[len(cases)-1] {
		cases[len(cases)-1][i] = byte(i * 7)
	}
	for _, c := range cases {
		want := crc32.ChecksumIEEE(c)
		if got := CRC32(0, c); got != want {
			t.Errorf("CRC32(%q) = %#x, want %#x", c, got, want)
		}
	}
}

func TestCRC32KnownVector(t *testing.T) {
	// The canonical check value for CRC-32/ISO-HDLC.
	if got := CRC32(0, []byte("123456789")); got != 0xCBF43926 {
		t.Fatalf("CRC32 check = %#x, want 0xCBF43926", got)
	}
}

func TestCRC32SlicedMatchesBitwiseQuick(t *testing.T) {
	f := func(p []byte, seed uint32) bool {
		return CRC32(seed, p) == CRC32Bitwise(seed, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32SeedContinuation(t *testing.T) {
	data := []byte("hello world, this is a two-part checksum")
	whole := CRC32(0, data)
	part := CRC32(CRC32(0, data[:13]), data[13:])
	if whole != part {
		t.Fatalf("continued CRC %#x != whole %#x", part, whole)
	}
}

func TestCRC16T10DIFKnownVector(t *testing.T) {
	// CRC-16/T10-DIF check value.
	if got := CRC16T10DIF(0, []byte("123456789")); got != 0xD0DB {
		t.Fatalf("CRC16T10DIF check = %#x, want 0xD0DB", got)
	}
}

func TestCRC16ZeroBlock(t *testing.T) {
	// All-zero input with zero seed yields zero (property of the
	// non-inverted T10 CRC) — a classic DIF edge case.
	if got := CRC16T10DIF(0, make([]byte, 512)); got != 0 {
		t.Fatalf("CRC16 of zeros = %#x, want 0", got)
	}
}

func TestFillPatterns(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 100, 4096} {
		dst := make([]byte, n)
		Fill(dst, 0x0807060504030201)
		for i, b := range dst {
			if b != byte(i%8+1) {
				t.Fatalf("n=%d: dst[%d] = %#x, want %#x", n, i, b, i%8+1)
			}
		}
	}
}

func TestFillThenComparePatternQuick(t *testing.T) {
	f := func(pattern uint64, size uint16) bool {
		dst := make([]byte, int(size)%5000)
		Fill(dst, pattern)
		_, eq := ComparePattern(dst, pattern)
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComparePatternFindsMismatch(t *testing.T) {
	dst := make([]byte, 64)
	Fill(dst, 0x1111111111111111)
	dst[37] ^= 0xFF
	off, eq := ComparePattern(dst, 0x1111111111111111)
	if eq || off != 37 {
		t.Fatalf("ComparePattern = (%d,%v), want (37,false)", off, eq)
	}
}

func TestCompare(t *testing.T) {
	a := []byte("identical bytes here")
	b := append([]byte(nil), a...)
	if off, eq := Compare(a, b); !eq || off != 0 {
		t.Fatalf("Compare equal = (%d,%v)", off, eq)
	}
	b[5] ^= 1
	if off, eq := Compare(a, b); eq || off != 5 {
		t.Fatalf("Compare mismatch = (%d,%v), want (5,false)", off, eq)
	}
	if off, eq := Compare(a, a[:10]); eq || off != 10 {
		t.Fatalf("Compare length mismatch = (%d,%v), want (10,false)", off, eq)
	}
}

func BenchmarkCRC32Sliced4K(b *testing.B) {
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		CRC32(0, buf)
	}
}

func BenchmarkCRC32Bitwise4K(b *testing.B) {
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		CRC32Bitwise(0, buf)
	}
}
