// Package isal implements the optimized software kernels the paper uses as
// CPU baselines (named after Intel ISA-L, the library the authors benchmark
// against, §4.1). Kernels are pure functions over byte slices; both the
// simulated CPU baseline and the DSA device model call them so that hardware
// and software results are bit-identical and verifiable against each other.
package isal

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) via slicing-by-8 —
// the same algorithmic family ISA-L uses before vectorizing. The DSA CRC
// Generation operation produces this CRC (with configurable seed).

const crc32Poly = 0xEDB88320

var crc32Tables = buildCRC32Tables()

func buildCRC32Tables() *[8][256]uint32 {
	var t [8][256]uint32
	for i := 0; i < 256; i++ {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ crc32Poly
			} else {
				crc >>= 1
			}
		}
		t[0][i] = crc
	}
	for i := 0; i < 256; i++ {
		crc := t[0][i]
		for j := 1; j < 8; j++ {
			crc = t[0][crc&0xFF] ^ (crc >> 8)
			t[j][i] = crc
		}
	}
	return &t
}

// CRC32 computes the CRC-32 of p seeded with seed. A seed of 0 computes the
// standard checksum; passing a previous return value continues it.
func CRC32(seed uint32, p []byte) uint32 {
	crc := ^seed
	t := crc32Tables
	for len(p) >= 8 {
		crc ^= uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
		hi := uint32(p[4]) | uint32(p[5])<<8 | uint32(p[6])<<16 | uint32(p[7])<<24
		crc = t[7][crc&0xFF] ^
			t[6][(crc>>8)&0xFF] ^
			t[5][(crc>>16)&0xFF] ^
			t[4][crc>>24] ^
			t[3][hi&0xFF] ^
			t[2][(hi>>8)&0xFF] ^
			t[1][(hi>>16)&0xFF] ^
			t[0][hi>>24]
		p = p[8:]
	}
	for _, b := range p {
		crc = t[0][(crc^uint32(b))&0xFF] ^ (crc >> 8)
	}
	return ^crc
}

// CRC32Bitwise is the unoptimized reference implementation, kept for
// cross-checking the sliced version in tests.
func CRC32Bitwise(seed uint32, p []byte) uint32 {
	crc := ^seed
	for _, b := range p {
		crc ^= uint32(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ crc32Poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// CRC-16 T10-DIF (polynomial 0x8BB7, no reflection, zero init/xorout), the
// guard-tag CRC used by the DIF operations (Table 1).

const crc16Poly = 0x8BB7

var crc16Table = buildCRC16Table()

func buildCRC16Table() *[256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for j := 0; j < 8; j++ {
			if crc&0x8000 != 0 {
				crc = (crc << 1) ^ crc16Poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return &t
}

// CRC16T10DIF computes the T10-DIF guard CRC of p seeded with seed.
func CRC16T10DIF(seed uint16, p []byte) uint16 {
	crc := seed
	for _, b := range p {
		crc = crc16Table[byte(crc>>8)^b] ^ (crc << 8)
	}
	return crc
}
