package isal

import "bytes"

// The remaining kernels mirror the memory routines the paper's software
// baselines use (glibc memcpy/memset/memcmp and pattern compare). They exist
// so device and baseline share one functional implementation.

// Fill writes the 8-byte little-endian pattern repeatedly across dst,
// truncating the final word, exactly as the DSA Memory Fill operation does.
func Fill(dst []byte, pattern uint64) {
	var pat [8]byte
	for i := 0; i < 8; i++ {
		pat[i] = byte(pattern >> (8 * i))
	}
	n := copy(dst, pat[:])
	// Double the initialized prefix each iteration (log n copies).
	for n < len(dst) {
		n += copy(dst[n:], dst[:n])
	}
}

// Compare returns the offset of the first differing byte and false, or
// (0, true) if a and b are identical. It mirrors the DSA Memory Compare
// result fields (match flag + mismatch offset in the completion record).
func Compare(a, b []byte) (mismatch int64, equal bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return int64(i), false
		}
	}
	if len(a) != len(b) {
		return int64(n), false
	}
	return 0, true
}

// ComparePattern checks src against a repeated 8-byte pattern, returning the
// offset of the first mismatching byte, as the DSA Compare Pattern operation
// reports.
func ComparePattern(src []byte, pattern uint64) (mismatch int64, equal bool) {
	var pat [8]byte
	for i := 0; i < 8; i++ {
		pat[i] = byte(pattern >> (8 * i))
	}
	for i := 0; i < len(src); i++ {
		if src[i] != pat[i%8] {
			return int64(i), false
		}
	}
	return 0, true
}

// Equal reports whether a and b have identical contents (memcmp == 0).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
