package isal

import "fmt"

// Byte-RLE compression, the functional stand-in for the ISA-L igzip
// inflate/deflate pair the paper's streaming pipelines use. DSA has no
// (de)compression opcode — compression is the canonical *software* stage of
// a heterogeneous pipeline (decompress on the core, then CRC and move on
// the accelerator) — so only a simple, deterministic format is needed: the
// image is a sequence of (count, value) byte pairs, count in [1, 255].

// Compress writes the RLE image of src into dst and returns the compressed
// length. It fails when dst is too small (worst case 2×len(src)).
func Compress(dst, src []byte) (int, error) {
	w := 0
	for i := 0; i < len(src); {
		run := 1
		for i+run < len(src) && run < 255 && src[i+run] == src[i] {
			run++
		}
		if w+2 > len(dst) {
			return 0, fmt.Errorf("isal: compress overflow: need more than %d bytes", len(dst))
		}
		dst[w] = byte(run)
		dst[w+1] = src[i]
		w += 2
		i += run
	}
	return w, nil
}

// Decompress expands the n-byte RLE image at src into dst and returns the
// produced length. It fails on a truncated image (odd length or zero run)
// or when dst cannot hold the expansion.
func Decompress(dst, src []byte) (int, error) {
	w := 0
	for i := 0; i < len(src); i += 2 {
		if i+1 >= len(src) {
			return 0, fmt.Errorf("isal: truncated compressed image at byte %d", i)
		}
		run := int(src[i])
		if run == 0 {
			return 0, fmt.Errorf("isal: zero-length run at byte %d", i)
		}
		if w+run > len(dst) {
			return 0, fmt.Errorf("isal: decompress overflow: output exceeds %d bytes", len(dst))
		}
		for j := 0; j < run; j++ {
			dst[w+j] = src[i+1]
		}
		w += run
	}
	return w, nil
}
