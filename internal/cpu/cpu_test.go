package cpu

import (
	"bytes"
	"testing"
	"time"

	"dsasim/internal/dif"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

func testRig(t *testing.T) (*sim.Engine, *mem.System, *Core) {
	t.Helper()
	e := sim.New()
	sys := mem.NewSystem(e, mem.SystemConfig{
		Sockets: 2,
		LLC:     mem.LLCConfig{Capacity: 105 << 20, Ways: 15, DDIOWays: 2},
		UPILat:  70 * time.Nanosecond,
		UPIGBps: 62,
		NodeDefs: []mem.NodeConfig{
			{Socket: 0, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 1, Kind: mem.DRAM, ReadLat: 110 * time.Nanosecond, WriteLat: 110 * time.Nanosecond, ReadGBps: 120, WriteGBps: 75},
			{Socket: 0, Kind: mem.CXL, ReadLat: 250 * time.Nanosecond, WriteLat: 400 * time.Nanosecond, ReadGBps: 16, WriteGBps: 10},
		},
	})
	as := mem.NewAddressSpace(1)
	core := NewCore(0, 0, sys, as, SPRModel())
	return e, sys, core
}

func TestCurveInterpolation(t *testing.T) {
	c := Curve{{256, 1}, {1024, 3}, {4096, 5}}
	if got := c.At(100); got != 1 {
		t.Fatalf("below range = %v, want clamp to 1", got)
	}
	if got := c.At(100000); got != 5 {
		t.Fatalf("above range = %v, want clamp to 5", got)
	}
	if got := c.At(512); got <= 1 || got >= 3 {
		t.Fatalf("midpoint = %v, want in (1,3)", got)
	}
	if got := c.At(1024); got != 3 {
		t.Fatalf("anchor = %v, want 3", got)
	}
	// Monotone between anchors.
	prev := 0.0
	for n := int64(256); n <= 4096; n *= 2 {
		v := c.At(n)
		if v < prev {
			t.Fatalf("curve not monotone at %d: %v < %v", n, v, prev)
		}
		prev = v
	}
}

func TestMemcpyFunctionalAndTimed(t *testing.T) {
	_, _, core := testRig(t)
	node := core.Sys.Node(0)
	src := core.AS.Alloc(4096, mem.OnNode(node))
	dst := core.AS.Alloc(4096, mem.OnNode(node))
	sim.NewRand(3).Bytes(src.Bytes())

	d, err := core.Memcpy(dst.Addr(0), src.Addr(0), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("Memcpy did not copy bytes")
	}
	// Calibration anchor: cold 4KB memcpy ≈ 1.2µs + access latency.
	if d < 800*time.Nanosecond || d > 2*time.Microsecond {
		t.Fatalf("cold 4KB memcpy = %v, want ~1.2µs", d)
	}
	if core.BusyTime() != d {
		t.Fatalf("BusyTime = %v, want %v", core.BusyTime(), d)
	}
}

func TestColdBandwidthGrowsWithSize(t *testing.T) {
	_, _, core := testRig(t)
	node := core.Sys.Node(0)
	prev := 0.0
	for _, n := range []int64{256, 4096, 65536, 1 << 20} {
		src := core.AS.Alloc(n, mem.OnNode(node))
		dst := core.AS.Alloc(n, mem.OnNode(node))
		d, err := core.Memcpy(dst.Addr(0), src.Addr(0), n)
		if err != nil {
			t.Fatal(err)
		}
		bw := sim.Rate(n, d)
		if bw <= prev {
			t.Fatalf("effective bandwidth not increasing: %v GB/s at %d bytes (prev %v)", bw, n, prev)
		}
		prev = bw
	}
	// Large-copy plateau ~10.5 GB/s (Fig 2 CPU baseline).
	if prev < 8 || prev > 13 {
		t.Fatalf("1MB cold copy bandwidth = %.1f GB/s, want ~10.5", prev)
	}
}

func TestWarmBuffersFaster(t *testing.T) {
	_, _, core := testRig(t)
	node := core.Sys.Node(0)
	n := int64(4096)
	cold1 := core.AS.Alloc(n, mem.OnNode(node))
	cold2 := core.AS.Alloc(n, mem.OnNode(node))
	warm1 := core.AS.Alloc(n, mem.OnNode(node))
	warm2 := core.AS.Alloc(n, mem.OnNode(node))
	warm1.CacheResident = true
	warm2.CacheResident = true

	dCold, _ := core.Memcpy(cold2.Addr(0), cold1.Addr(0), n)
	dWarm, _ := core.Memcpy(warm2.Addr(0), warm1.Addr(0), n)
	if dWarm >= dCold {
		t.Fatalf("warm copy %v not faster than cold %v", dWarm, dCold)
	}
}

func TestRemoteAndCXLPenalties(t *testing.T) {
	_, _, core := testRig(t)
	local := core.Sys.Node(0)
	remote := core.Sys.Node(1)
	cxl := core.Sys.Node(2)
	n := int64(64 << 10)

	mk := func(node *mem.Node) (mem.Addr, mem.Addr) {
		s := core.AS.Alloc(n, mem.OnNode(node))
		d := core.AS.Alloc(n, mem.OnNode(local))
		return d.Addr(0), s.Addr(0)
	}
	dl, sl := mk(local)
	tLocal, _ := core.Memcpy(dl, sl, n)
	dr, sr := mk(remote)
	tRemote, _ := core.Memcpy(dr, sr, n)
	dc, sc := mk(cxl)
	tCXL, _ := core.Memcpy(dc, sc, n)

	if tRemote <= tLocal {
		t.Fatalf("remote copy %v not slower than local %v", tRemote, tLocal)
	}
	if tCXL <= tRemote {
		t.Fatalf("CXL copy %v not slower than remote %v", tCXL, tRemote)
	}
}

func TestPollutionChargesLLC(t *testing.T) {
	_, sys, core := testRig(t)
	node := core.Sys.Node(0)
	n := int64(1 << 20)
	src := core.AS.Alloc(n, mem.OnNode(node))
	dst := core.AS.Alloc(n, mem.OnNode(node))
	if _, err := core.Memcpy(dst.Addr(0), src.Addr(0), n); err != nil {
		t.Fatal(err)
	}
	occ := sys.SocketOf(0).LLC.Occupancy(core.Owner())
	if occ != 2*n {
		t.Fatalf("LLC occupancy = %d, want %d (src+dst)", occ, 2*n)
	}
	core.NoPollute = true
	before := occ
	if _, err := core.Memcpy(dst.Addr(0), src.Addr(0), n); err != nil {
		t.Fatal(err)
	}
	if got := sys.SocketOf(0).LLC.Occupancy(core.Owner()); got != before {
		t.Fatalf("NoPollute still changed occupancy: %d -> %d", before, got)
	}
}

func TestOpFactorsOrdering(t *testing.T) {
	_, _, core := testRig(t)
	node := core.Sys.Node(0)
	n := int64(256 << 10)
	a := core.AS.Alloc(n, mem.OnNode(node))
	b := core.AS.Alloc(n, mem.OnNode(node))
	c2 := core.AS.Alloc(n, mem.OnNode(node))

	dCopy, _ := core.Memcpy(b.Addr(0), a.Addr(0), n)
	dSet, _ := core.Memset(b.Addr(0), n, 0)
	dDual, _ := core.Dualcast(b.Addr(0), c2.Addr(0), a.Addr(0), n)
	if dSet >= dCopy {
		t.Fatalf("memset %v not faster than memcpy %v", dSet, dCopy)
	}
	if dDual <= dCopy {
		t.Fatalf("dualcast %v not slower than memcpy %v", dDual, dCopy)
	}
}

func TestCRCAndCompareResults(t *testing.T) {
	_, _, core := testRig(t)
	node := core.Sys.Node(0)
	a := core.AS.Alloc(1024, mem.OnNode(node))
	b := core.AS.Alloc(1024, mem.OnNode(node))
	sim.NewRand(9).Bytes(a.Bytes())
	copy(b.Bytes(), a.Bytes())

	crc, _, err := core.CRC32(a.Addr(0), 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	crc2, _, _ := core.CRC32(b.Addr(0), 1024, 0)
	if crc != crc2 {
		t.Fatal("CRC of identical buffers differs")
	}
	if _, eq, _, _ := core.Memcmp(a.Addr(0), b.Addr(0), 1024); !eq {
		t.Fatal("Memcmp of identical buffers reports mismatch")
	}
	b.Bytes()[17] ^= 1
	off, eq, _, _ := core.Memcmp(a.Addr(0), b.Addr(0), 1024)
	if eq || off != 17 {
		t.Fatalf("Memcmp = (%d,%v), want (17,false)", off, eq)
	}
}

func TestDIFRoundTripOnCore(t *testing.T) {
	_, _, core := testRig(t)
	node := core.Sys.Node(0)
	raw := core.AS.Alloc(4096, mem.OnNode(node))
	prot := core.AS.Alloc(dif.Block512.Protected()*8, mem.OnNode(node))
	out := core.AS.Alloc(4096, mem.OnNode(node))
	sim.NewRand(11).Bytes(raw.Bytes())
	tags := dif.Tags{AppTag: 7, RefTag: 3, IncrementRef: true}

	if _, err := core.DIFInsert(prot.Addr(0), raw.Addr(0), 4096, dif.Block512, tags); err != nil {
		t.Fatal(err)
	}
	if _, err := core.DIFCheck(prot.Addr(0), prot.Size, dif.Block512, tags); err != nil {
		t.Fatal(err)
	}
	if _, err := core.DIFStrip(out.Addr(0), prot.Addr(0), prot.Size, dif.Block512, tags); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), raw.Bytes()) {
		t.Fatal("DIF round trip lost data")
	}
}

func TestDeltaOnCore(t *testing.T) {
	_, _, core := testRig(t)
	node := core.Sys.Node(0)
	orig := core.AS.Alloc(1024, mem.OnNode(node))
	mod := core.AS.Alloc(1024, mem.OnNode(node))
	rec := core.AS.Alloc(2048, mem.OnNode(node))
	sim.NewRand(13).Bytes(orig.Bytes())
	copy(mod.Bytes(), orig.Bytes())
	mod.Bytes()[64] ^= 0xFF

	used, _, err := core.DeltaCreate(rec.Addr(0), orig.Addr(0), mod.Addr(0), 1024, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.DeltaApply(orig.Addr(0), rec.Addr(0), used, 1024); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), mod.Bytes()) {
		t.Fatal("delta round trip failed")
	}
}

func TestUMWaitAccounting(t *testing.T) {
	_, _, core := testRig(t)
	core.UMWait(10 * time.Microsecond)
	core.ChargeBusy(5 * time.Microsecond)
	if core.UMWaitTime() != 10*time.Microsecond {
		t.Fatalf("UMWaitTime = %v", core.UMWaitTime())
	}
	if core.BusyTime() != 5*time.Microsecond {
		t.Fatalf("BusyTime = %v", core.BusyTime())
	}
}

func TestCacheFlushEvicts(t *testing.T) {
	_, sys, core := testRig(t)
	node := core.Sys.Node(0)
	buf := core.AS.Alloc(1<<20, mem.OnNode(node))
	if _, err := core.Memset(buf.Addr(0), buf.Size, 0xAB); err != nil {
		t.Fatal(err)
	}
	if sys.SocketOf(0).LLC.Occupancy(core.Owner()) == 0 {
		t.Fatal("memset did not allocate in LLC")
	}
	if _, err := core.CacheFlush(buf.Addr(0), buf.Size); err != nil {
		t.Fatal(err)
	}
	if got := sys.SocketOf(0).LLC.Occupancy(core.Owner()); got != 0 {
		t.Fatalf("occupancy after flush = %d, want 0", got)
	}
}
