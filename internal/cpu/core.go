package cpu

import (
	"fmt"
	"time"

	"dsasim/internal/delta"
	"dsasim/internal/dif"
	"dsasim/internal/isal"
	"dsasim/internal/mem"
	"dsasim/internal/sim"
)

// Core is one simulated CPU core executing software baseline routines. Every
// routine performs the real operation on simulated memory and returns the
// modelled execution time; it also charges LLC occupancy (cache pollution)
// and memory-node bandwidth, which is how software copies degrade co-running
// applications in Figs 12/13.
type Core struct {
	ID     int
	Socket int
	Sys    *mem.System
	AS     *mem.AddressSpace
	M      Model

	// NoPollute disables LLC allocation for this core's accesses, e.g. to
	// model non-temporal (streaming) load/store variants.
	NoPollute bool

	busy   sim.Time
	umwait sim.Time
}

// NewCore creates a core on the given socket running address space as.
func NewCore(id, socket int, sys *mem.System, as *mem.AddressSpace, m Model) *Core {
	return &Core{ID: id, Socket: socket, Sys: sys, AS: as, M: m}
}

// Owner returns the LLC occupancy owner tag for this core.
func (c *Core) Owner() string { return fmt.Sprintf("core%d", c.ID) }

// BusyTime returns cumulative modelled execution time.
func (c *Core) BusyTime() sim.Time { return c.busy }

// UMWaitTime returns cumulative time spent in the UMWAIT optimized wait
// state (§3.3, Fig 11).
func (c *Core) UMWaitTime() sim.Time { return c.umwait }

// ChargeBusy adds d to the core's busy time (for workload-level costs that
// are not memory routines).
func (c *Core) ChargeBusy(d sim.Time) { c.busy += d }

// UMWait accounts d spent parked in UMWAIT. The core burns almost no dynamic
// power and frees pipeline resources; it is *not* busy time.
func (c *Core) UMWait(d sim.Time) { c.umwait += d }

// UMWaitWake is the latency to exit the UMWAIT wait state once the monitored
// line is written (C0.2 exit, ~order of a hundred ns).
const UMWaitWake = 150 * time.Nanosecond

// operand describes one buffer operand of a routine for timing purposes.
type operand struct {
	addr  mem.Addr
	n     int64
	write bool
}

// routineTime computes the modelled duration of op over the given operands,
// charges LLC pollution and node bandwidth, and accumulates busy time. When
// the memory pipes are contended (other cores or devices streaming), the
// returned duration stretches to the booked traffic's completion: a core
// cannot copy faster than the memory system serves it.
func (c *Core) routineTime(op Op, transfer int64, operands ...operand) sim.Time {
	warm := true
	mult := c.M.factor(op)
	var lat time.Duration
	start := c.Sys.E.Now()
	var trafficDone sim.Time
	for _, o := range operands {
		buf, _, err := c.AS.Lookup(o.addr)
		if err != nil {
			panic(fmt.Sprintf("cpu: routine on unmapped address: %v", err))
		}
		if !buf.CacheResident {
			warm = false
		}
		if buf.Node != nil {
			// Medium penalties: the LD/ST path tolerates remote DRAM
			// moderately but saturates the load-store queue on CXL (§5).
			switch {
			case buf.Node.Kind == mem.CXL && o.write:
				mult *= 0.22
			case buf.Node.Kind == mem.CXL:
				mult *= 0.35
			case buf.Node.Socket != c.Socket && o.write:
				mult *= 0.75
			case buf.Node.Socket != c.Socket:
				mult *= 0.85
			}
			if l := c.Sys.AccessLat(c.Socket, buf.Node, o.write); l > lat && !buf.CacheResident {
				lat = l
			}
			if !buf.CacheResident {
				done := c.Sys.ReserveTraffic(c.Socket, buf.Node, o.n, o.write)
				if done > trafficDone {
					trafficDone = done
				}
			}
		}
		if !c.NoPollute {
			// Core loads and stores allocate into the LLC: this is the
			// pollution DSA avoids (§4.5).
			c.Sys.SocketOf(c.Socket).LLC.Insert(c.Owner(), o.n)
		}
	}
	curve := c.M.Cold
	if warm {
		curve = c.M.Warm
		lat = 0
	}
	bw := curve.At(transfer) * mult
	d := lat + sim.GBps(transfer, bw)
	if trafficDone > start+d {
		d = trafficDone - start
	}
	c.busy += d
	return d
}

// Memcpy copies n bytes from src to dst and returns the modelled duration.
func (c *Core) Memcpy(dst, src mem.Addr, n int64) (sim.Time, error) {
	s, err := c.AS.View(src, n)
	if err != nil {
		return 0, err
	}
	d, err := c.AS.View(dst, n)
	if err != nil {
		return 0, err
	}
	copy(d, s)
	return c.routineTime(OpMemcpy, n, operand{src, n, false}, operand{dst, n, true}), nil
}

// Memset fills n bytes at dst with the repeating 8-byte pattern.
func (c *Core) Memset(dst mem.Addr, n int64, pattern uint64) (sim.Time, error) {
	d, err := c.AS.View(dst, n)
	if err != nil {
		return 0, err
	}
	isal.Fill(d, pattern)
	return c.routineTime(OpMemset, n, operand{dst, n, true}), nil
}

// Memcmp compares n bytes at a and b, returning the first mismatch offset
// and equality flag.
func (c *Core) Memcmp(a, b mem.Addr, n int64) (off int64, equal bool, d sim.Time, err error) {
	av, err := c.AS.View(a, n)
	if err != nil {
		return 0, false, 0, err
	}
	bv, err := c.AS.View(b, n)
	if err != nil {
		return 0, false, 0, err
	}
	off, equal = isal.Compare(av, bv)
	d = c.routineTime(OpMemcmp, n, operand{a, n, false}, operand{b, n, false})
	return off, equal, d, nil
}

// ComparePattern checks n bytes at src against the repeating pattern.
func (c *Core) ComparePattern(src mem.Addr, n int64, pattern uint64) (off int64, equal bool, d sim.Time, err error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, false, 0, err
	}
	off, equal = isal.ComparePattern(sv, pattern)
	d = c.routineTime(OpComparePattern, n, operand{src, n, false})
	return off, equal, d, nil
}

// CRC32 computes the seeded CRC-32 of n bytes at src (ISA-L style baseline).
func (c *Core) CRC32(src mem.Addr, n int64, seed uint32) (crc uint32, d sim.Time, err error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, 0, err
	}
	crc = isal.CRC32(seed, sv)
	d = c.routineTime(OpCRC32, n, operand{src, n, false})
	return crc, d, nil
}

// CopyCRC copies src to dst while computing the CRC-32 of the data.
func (c *Core) CopyCRC(dst, src mem.Addr, n int64, seed uint32) (crc uint32, d sim.Time, err error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, 0, err
	}
	dv, err := c.AS.View(dst, n)
	if err != nil {
		return 0, 0, err
	}
	copy(dv, sv)
	crc = isal.CRC32(seed, sv)
	d = c.routineTime(OpCopyCRC, n, operand{src, n, false}, operand{dst, n, true})
	return crc, d, nil
}

// Dualcast copies n bytes from src to both dst1 and dst2.
func (c *Core) Dualcast(dst1, dst2, src mem.Addr, n int64) (sim.Time, error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, err
	}
	d1, err := c.AS.View(dst1, n)
	if err != nil {
		return 0, err
	}
	d2, err := c.AS.View(dst2, n)
	if err != nil {
		return 0, err
	}
	copy(d1, sv)
	copy(d2, sv)
	return c.routineTime(OpDualcast, n, operand{src, n, false}, operand{dst1, n, true}, operand{dst2, n, true}), nil
}

// DIFInsert generates protected blocks from raw data (see internal/dif).
func (c *Core) DIFInsert(dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags) (sim.Time, error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, err
	}
	outLen := n / int64(bs) * bs.Protected()
	dv, err := c.AS.View(dst, outLen)
	if err != nil {
		return 0, err
	}
	if err := dif.Insert(dv, sv, bs, tags); err != nil {
		return 0, err
	}
	return c.routineTime(OpDIFInsert, n, operand{src, n, false}, operand{dst, outLen, true}), nil
}

// DIFCheck verifies protected blocks at src.
func (c *Core) DIFCheck(src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags) (sim.Time, error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, err
	}
	d := c.routineTime(OpDIFCheck, n, operand{src, n, false})
	return d, dif.Check(sv, bs, tags)
}

// DIFStrip verifies and removes PI from protected blocks.
func (c *Core) DIFStrip(dst, src mem.Addr, n int64, bs dif.BlockSize, tags dif.Tags) (sim.Time, error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, err
	}
	outLen := n / bs.Protected() * int64(bs)
	dv, err := c.AS.View(dst, outLen)
	if err != nil {
		return 0, err
	}
	if err := dif.Strip(dv, sv, bs, tags); err != nil {
		return 0, err
	}
	return c.routineTime(OpDIFStrip, n, operand{src, n, false}, operand{dst, outLen, true}), nil
}

// DIFUpdate rewrites PI on protected blocks.
func (c *Core) DIFUpdate(dst, src mem.Addr, n int64, bs dif.BlockSize, old, new dif.Tags) (sim.Time, error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, err
	}
	dv, err := c.AS.View(dst, n)
	if err != nil {
		return 0, err
	}
	if err := dif.Update(dv, sv, bs, old, new); err != nil {
		return 0, err
	}
	return c.routineTime(OpDIFUpdate, n, operand{src, n, false}, operand{dst, n, true}), nil
}

// DeltaCreate builds a delta record of the differences between orig and mod.
func (c *Core) DeltaCreate(record, orig, mod mem.Addr, n, maxRecord int64) (used int64, d sim.Time, err error) {
	ov, err := c.AS.View(orig, n)
	if err != nil {
		return 0, 0, err
	}
	mv, err := c.AS.View(mod, n)
	if err != nil {
		return 0, 0, err
	}
	rv, err := c.AS.View(record, maxRecord)
	if err != nil {
		return 0, 0, err
	}
	u, err := delta.Create(rv, ov, mv)
	if err != nil {
		return 0, 0, err
	}
	d = c.routineTime(OpDeltaCreate, 2*n,
		operand{orig, n, false}, operand{mod, n, false}, operand{record, int64(u), true})
	return int64(u), d, nil
}

// DeltaApply replays a delta record onto dst.
func (c *Core) DeltaApply(dst, record mem.Addr, recordLen, dstLen int64) (sim.Time, error) {
	dv, err := c.AS.View(dst, dstLen)
	if err != nil {
		return 0, err
	}
	rv, err := c.AS.View(record, recordLen)
	if err != nil {
		return 0, err
	}
	if err := delta.Apply(dv, rv, int(recordLen)); err != nil {
		return 0, err
	}
	return c.routineTime(OpDeltaApply, recordLen, operand{record, recordLen, false}, operand{dst, recordLen, true}), nil
}

// Decompress inflates the n-byte compressed image at src into dst (at most
// maxDst bytes), returning the produced length. The functional kernel is
// internal/isal's RLE inflate; the cost is charged per *output* byte — an
// igzip-style decoder streams the decoded data through the store pipe, so
// the produced size, not the compressed size, bounds its bandwidth.
func (c *Core) Decompress(dst, src mem.Addr, n, maxDst int64) (int64, sim.Time, error) {
	sv, err := c.AS.View(src, n)
	if err != nil {
		return 0, 0, err
	}
	dv, err := c.AS.View(dst, maxDst)
	if err != nil {
		return 0, 0, err
	}
	m, err := isal.Decompress(dv, sv)
	if err != nil {
		return 0, 0, err
	}
	d := c.routineTime(OpDecompress, int64(m),
		operand{src, n, false}, operand{dst, int64(m), true})
	return int64(m), d, nil
}

// CacheFlush evicts the address range from the LLC (CLFLUSHOPT sweep).
func (c *Core) CacheFlush(addr mem.Addr, n int64) (sim.Time, error) {
	if _, _, err := c.AS.Lookup(addr); err != nil {
		return 0, err
	}
	llc := c.Sys.SocketOf(c.Socket).LLC
	llc.Evict(c.Owner(), n)
	d := c.routineTime(OpCacheFlush, n)
	return d, nil
}
