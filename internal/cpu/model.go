// Package cpu models the software baselines the paper compares DSA against:
// simulated cores executing optimized library routines (glibc-style memcpy /
// memset / memcmp, ISA-L-style CRC32) with empirically shaped cost curves,
// LLC pollution side effects, and UMONITOR/UMWAIT wait-state accounting.
//
// Functional results come from the shared kernels in internal/isal so CPU
// and DSA outputs are bit-identical; only the timing differs.
package cpu

import (
	"fmt"
	"math"
	"sort"
)

// Curve is a piecewise log-linear interpolation of effective bandwidth
// (GB/s) over transfer size. Anchor points are calibrated to the paper's CPU
// baseline lines (Figs 2, 6, 15): small transfers are latency-bound, large
// ones stream-bound.
type Curve []CurvePoint

// CurvePoint anchors the effective bandwidth at one transfer size.
type CurvePoint struct {
	Size int64
	GBps float64
}

// At returns the interpolated bandwidth for a transfer of n bytes. Sizes
// outside the anchored range clamp to the end points.
func (c Curve) At(n int64) float64 {
	if len(c) == 0 {
		panic("cpu: empty bandwidth curve")
	}
	if n <= c[0].Size {
		return c[0].GBps
	}
	if n >= c[len(c)-1].Size {
		return c[len(c)-1].GBps
	}
	i := sort.Search(len(c), func(i int) bool { return c[i].Size >= n }) // first >= n
	lo, hi := c[i-1], c[i]
	// Linear interpolation in log2(size) keeps decade sweeps smooth.
	frac := (math.Log2(float64(n)) - math.Log2(float64(lo.Size))) /
		(math.Log2(float64(hi.Size)) - math.Log2(float64(lo.Size)))
	return lo.GBps + frac*(hi.GBps-lo.GBps)
}

// Op identifies a software baseline routine. The set mirrors Table 1.
type Op int

// Software counterparts of the DSA operations (Table 1).
const (
	OpMemcpy Op = iota
	OpMemset
	OpMemcmp
	OpComparePattern
	OpCRC32
	OpCopyCRC
	OpDualcast
	OpDIFCheck
	OpDIFInsert
	OpDIFStrip
	OpDIFUpdate
	OpDeltaCreate
	OpDeltaApply
	OpCacheFlush
	OpDecompress
)

// String returns the routine name.
func (o Op) String() string {
	names := [...]string{"memcpy", "memset", "memcmp", "compare_pattern", "crc32",
		"copy_crc", "dualcast", "dif_check", "dif_insert", "dif_strip", "dif_update",
		"delta_create", "delta_apply", "cache_flush", "decompress"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Model holds the software cost model for one platform generation.
type Model struct {
	// FreqGHz is the core clock, used to convert durations to cycles.
	FreqGHz float64
	// Cold is the effective bandwidth curve for cache-cold buffers (the
	// paper flushes descriptors and data between iterations, §4.1).
	Cold Curve
	// Warm is the curve when the buffers are LLC-resident (Fig 15 "L").
	Warm Curve
	// OpFactor scales the memcpy curve per operation: write-only routines
	// run faster, dual-destination and per-block-CRC routines slower.
	OpFactor map[Op]float64
}

// factor returns the op's bandwidth multiplier (default 1).
func (m Model) factor(op Op) float64 {
	if f, ok := m.OpFactor[op]; ok {
		return f
	}
	return 1
}

// SPRModel returns the Sapphire Rapids software baseline (Table 2: 56 cores,
// DDR5). Anchors are calibrated so that a cold 4 KB memcpy costs ~1.2 µs and
// a 1 MB memcpy ~10.5 GB/s, matching the paper's CPU lines in Figs 2/6.
func SPRModel() Model {
	return Model{
		FreqGHz: 2.0,
		Cold: Curve{
			{256, 1.2}, {512, 2.0}, {1 << 10, 2.8}, {4 << 10, 3.5},
			{16 << 10, 5.5}, {64 << 10, 8.0}, {256 << 10, 9.5},
			{1 << 20, 10.5}, {4 << 20, 11.0},
		},
		Warm: Curve{
			{256, 8}, {512, 12}, {1 << 10, 16}, {4 << 10, 25},
			{16 << 10, 30}, {64 << 10, 30}, {256 << 10, 27},
			{1 << 20, 22}, {4 << 20, 14},
		},
		OpFactor: map[Op]float64{
			OpMemset:         1.6,  // write-only, no source reads
			OpMemcmp:         0.85, // two source streams
			OpComparePattern: 1.5,  // single stream, no writes
			OpCRC32:          1.3,  // ISA-L PCLMUL-style, read-only
			OpCopyCRC:        0.8,
			OpDualcast:       0.6, // two destination streams
			OpDIFCheck:       0.9,
			OpDIFInsert:      0.7,
			OpDIFStrip:       0.8,
			OpDIFUpdate:      0.65,
			OpDeltaCreate:    0.7,
			OpDeltaApply:     1.0,
			OpCacheFlush:     2.0,  // CLFLUSHOPT sweep, no data movement
			OpDecompress:     0.45, // igzip-style inflate: branchy decode per output byte
		},
	}
}

// ICXModel returns the Ice Lake software baseline (Table 2: 40 cores, DDR4);
// roughly 15% lower streaming bandwidth than SPR.
func ICXModel() Model {
	m := SPRModel()
	scaled := make(Curve, len(m.Cold))
	for i, p := range m.Cold {
		scaled[i] = CurvePoint{p.Size, p.GBps * 0.85}
	}
	m.Cold = scaled
	return m
}
